#include "core/confidence.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace maywsd::core {

namespace {

/// Union-find over component indexes, used to group components linked by
/// tuple slots that span several of them.
class UnionFind {
 public:
  int Find(int x) {
    auto it = parent_.find(x);
    if (it == parent_.end()) {
      parent_[x] = x;
      return x;
    }
    int root = x;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[x] != root) {
      int next = parent_[x];
      parent_[x] = root;
      x = next;
    }
    return root;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::map<int, int> parent_;
};

/// A candidate slot and the per-attribute field locations.
struct Slot {
  TupleId tid;
  std::vector<FieldLoc> locs;  // one per schema attribute
  std::vector<FieldKey> presence_fields;
  std::vector<FieldLoc> presence_locs;
};

/// Collects the present slots of `relation` with their field locations.
Result<std::vector<Slot>> CollectSlots(const Wsd& wsd,
                                       const WsdRelation& rel) {
  std::vector<Slot> slots;
  for (TupleId t = 0; t < rel.max_tuples; ++t) {
    Slot slot;
    slot.tid = t;
    bool present = true;
    for (size_t a = 0; a < rel.schema.arity(); ++a) {
      FieldKey f(rel.name_sym, t, rel.schema.attr(a).name);
      auto loc = wsd.Locate(f);
      if (!loc.ok()) {
        present = false;
        break;
      }
      slot.locs.push_back(loc.value());
    }
    if (!present) continue;
    for (const FieldKey& pf : wsd.PresenceFieldsOfTuple(rel, t)) {
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(pf));
      slot.presence_fields.push_back(pf);
      slot.presence_locs.push_back(loc);
    }
    slots.push_back(std::move(slot));
  }
  return slots;
}

/// Composes the projections of the group's components onto the columns in
/// `keep_cols_per_comp`, compressing between steps. Fails when the product
/// exceeds kMaxTupleLevelWorlds rows.
Result<Component> ComposeGroup(
    const Wsd& wsd, const std::vector<int>& comps,
    const std::map<int, std::set<size_t>>& keep_cols_per_comp) {
  Component acc;
  bool first = true;
  for (int ci : comps) {
    const Component& comp = wsd.component(static_cast<size_t>(ci));
    std::vector<size_t> cols(keep_cols_per_comp.at(ci).begin(),
                             keep_cols_per_comp.at(ci).end());
    Component proj = comp.ProjectColumns(cols);
    proj.Compress();
    if (first) {
      acc = std::move(proj);
      first = false;
    } else {
      if (static_cast<uint64_t>(acc.NumWorlds()) * proj.NumWorlds() >
          kMaxTupleLevelWorlds) {
        return Status::ResourceExhausted(
            "tuple-level normalization exceeds the blow-up guard");
      }
      acc = Component::Compose(acc, proj);
      acc.Compress();
    }
  }
  return acc;
}

}  // namespace

Result<double> TupleConfidence(const Wsd& wsd, const std::string& relation,
                               std::span<const rel::Value> tuple) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel, wsd.FindRelation(relation));
  if (tuple.size() != rel->schema.arity()) {
    return Status::InvalidArgument("tuple arity mismatch for " + relation);
  }
  MAYWSD_ASSIGN_OR_RETURN(std::vector<Slot> slots, CollectSlots(wsd, *rel));

  // Candidate slots: every attribute's component column contains the probe
  // value in at least one local world.
  std::vector<Slot> candidates;
  for (Slot& slot : slots) {
    bool possible = true;
    for (size_t a = 0; a < slot.locs.size() && possible; ++a) {
      const Component& comp = wsd.component(slot.locs[a].comp);
      size_t col = static_cast<size_t>(slot.locs[a].col);
      bool found = false;
      for (size_t w = 0; w < comp.NumWorlds() && !found; ++w) {
        if (comp.at(w, col) == tuple[a]) found = true;
      }
      possible = found;
    }
    if (possible) candidates.push_back(std::move(slot));
  }
  if (candidates.empty()) return 0.0;

  // Group components connected via candidate slots (including their
  // presence fields, which decide tuple existence).
  UnionFind uf;
  for (const Slot& slot : candidates) {
    for (size_t a = 1; a < slot.locs.size(); ++a) {
      uf.Union(slot.locs[0].comp, slot.locs[a].comp);
    }
    for (const FieldLoc& loc : slot.presence_locs) {
      uf.Union(slot.locs[0].comp, loc.comp);
    }
  }
  // Per group: the components involved and, per component, the columns of
  // candidate-slot fields (the pruning step of Figure 17).
  std::map<int, std::vector<int>> group_comps;
  std::map<int, std::map<int, std::set<size_t>>> group_cols;
  std::map<int, std::vector<const Slot*>> group_slots;
  for (const Slot& slot : candidates) {
    int g = uf.Find(slot.locs[0].comp);
    group_slots[g].push_back(&slot);
    auto note = [&](const FieldLoc& loc) {
      auto& comps = group_comps[g];
      if (std::find(comps.begin(), comps.end(), loc.comp) == comps.end()) {
        comps.push_back(loc.comp);
      }
      group_cols[g][loc.comp].insert(static_cast<size_t>(loc.col));
    };
    for (const FieldLoc& loc : slot.locs) note(loc);
    for (const FieldLoc& loc : slot.presence_locs) note(loc);
  }

  double not_conf = 1.0;
  for (const auto& [g, comps] : group_comps) {
    MAYWSD_ASSIGN_OR_RETURN(Component combined,
                            ComposeGroup(wsd, comps, group_cols.at(g)));
    // Column positions of each slot's fields within the combined component.
    double conf_c = 0.0;
    for (size_t w = 0; w < combined.NumWorlds(); ++w) {
      bool any_match = false;
      for (const Slot* slot : group_slots.at(g)) {
        bool match = true;
        for (size_t a = 0; a < slot->locs.size() && match; ++a) {
          FieldKey f(rel->name_sym, slot->tid, rel->schema.attr(a).name);
          int col = combined.FindField(f);
          if (col < 0 || !(combined.at(w, static_cast<size_t>(col)) ==
                           tuple[a])) {
            match = false;
          }
        }
        // A ⊥ presence field deletes the tuple in this local world.
        for (size_t p = 0; p < slot->presence_fields.size() && match; ++p) {
          int col = combined.FindField(slot->presence_fields[p]);
          if (col < 0 ||
              combined.at(w, static_cast<size_t>(col)).is_bottom()) {
            match = false;
          }
        }
        if (match) {
          any_match = true;
          break;
        }
      }
      if (any_match) conf_c += combined.prob(w);
    }
    not_conf *= (1.0 - conf_c);
  }
  return 1.0 - not_conf;
}

Result<rel::Relation> PossibleTuples(const Wsd& wsd,
                                     const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel, wsd.FindRelation(relation));
  MAYWSD_ASSIGN_OR_RETURN(std::vector<Slot> slots, CollectSlots(wsd, *rel));
  rel::Relation out(rel->schema, "possible_" + relation);
  std::vector<rel::Value> row(rel->schema.arity());
  for (const Slot& slot : slots) {
    // Compose the components this slot spans (fields plus presence
    // fields), projected onto its columns.
    std::vector<int> comps;
    std::map<int, std::set<size_t>> cols;
    auto note = [&](const FieldLoc& loc) {
      if (std::find(comps.begin(), comps.end(), loc.comp) == comps.end()) {
        comps.push_back(loc.comp);
      }
      cols[loc.comp].insert(static_cast<size_t>(loc.col));
    };
    for (const FieldLoc& loc : slot.locs) note(loc);
    for (const FieldLoc& loc : slot.presence_locs) note(loc);
    MAYWSD_ASSIGN_OR_RETURN(Component combined,
                            ComposeGroup(wsd, comps, cols));
    // Map schema attributes to combined columns once.
    std::vector<int> attr_col(rel->schema.arity(), -1);
    for (size_t a = 0; a < rel->schema.arity(); ++a) {
      FieldKey f(rel->name_sym, slot.tid, rel->schema.attr(a).name);
      attr_col[a] = combined.FindField(f);
      if (attr_col[a] < 0) {
        return Status::Internal("missing column in tuple-level component");
      }
    }
    std::vector<int> presence_col;
    for (const FieldKey& pf : slot.presence_fields) {
      presence_col.push_back(combined.FindField(pf));
    }
    for (size_t w = 0; w < combined.NumWorlds(); ++w) {
      if (combined.prob(w) <= 0.0) continue;  // zero-mass local world
      bool has_bottom = false;
      for (int pc : presence_col) {
        if (pc < 0 || combined.at(w, static_cast<size_t>(pc)).is_bottom()) {
          has_bottom = true;
          break;
        }
      }
      for (size_t a = 0; a < rel->schema.arity() && !has_bottom; ++a) {
        const rel::Value& v =
            combined.at(w, static_cast<size_t>(attr_col[a]));
        if (v.is_bottom()) {
          has_bottom = true;
          break;
        }
        row[a] = v;
      }
      if (!has_bottom) out.AppendRow(row);
    }
  }
  out.SortDedup();
  return out;
}

Result<rel::Relation> PossibleTuplesWithConfidence(
    const Wsd& wsd, const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation possible,
                          PossibleTuples(wsd, relation));
  rel::Schema out_schema = possible.schema();
  MAYWSD_RETURN_IF_ERROR(
      out_schema.AddAttribute(rel::Attribute("conf", rel::AttrType::kDouble)));
  rel::Relation out(out_schema, "possible_p_" + relation);
  std::vector<rel::Value> row(out_schema.arity());
  for (size_t i = 0; i < possible.NumRows(); ++i) {
    rel::TupleRef t = possible.row(i);
    MAYWSD_ASSIGN_OR_RETURN(double conf,
                            TupleConfidence(wsd, relation, t.span()));
    for (size_t a = 0; a < t.arity(); ++a) row[a] = t[a];
    row[t.arity()] = rel::Value::Double(conf);
    out.AppendRow(row);
  }
  return out;
}

Result<bool> TupleCertain(const Wsd& wsd, const std::string& relation,
                          std::span<const rel::Value> tuple) {
  MAYWSD_ASSIGN_OR_RETURN(double conf,
                          TupleConfidence(wsd, relation, tuple));
  return conf >= 1.0 - 1e-9;
}

Result<rel::Relation> CertainTuples(const Wsd& wsd,
                                    const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation possible,
                          PossibleTuples(wsd, relation));
  rel::Relation out(possible.schema(), "certain_" + relation);
  for (size_t i = 0; i < possible.NumRows(); ++i) {
    MAYWSD_ASSIGN_OR_RETURN(
        bool certain, TupleCertain(wsd, relation, possible.row(i).span()));
    if (certain) out.AppendRow(possible.row(i).span());
  }
  return out;
}

}  // namespace maywsd::core
