// UpdateGuard<Rep>: the shared world-condition analysis of the update
// operators, templated over the representation.
//
// Both WSDs and WSDTs carry "does the guard relation have a row in this
// world" the same way — a ⊥ in a component column marks conditional
// presence — and expose the identical surface the analysis needs
// (Locate, component, ComposeInPlace). The only representation-specific
// step is enumerating which fields of the guard relation can carry a ⊥:
// a WSD probes every field (schema and presence attributes) of each alive
// tuple slot, a WSDT only the '?' placeholders of each template row. That
// step is the GuardSlotCandidates customization point, resolved by ADL;
// everything else — the presence scan, the compose-into-one, the
// per-local-world selection bitmap — lives here once.
//
// The driver materializes the world condition into a snapshot relation
// first (engine/update_plan.h), so the guard never sees a condition plan.

#ifndef MAYWSD_CORE_UPDATE_GUARD_H_
#define MAYWSD_CORE_UPDATE_GUARD_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/component.h"
#include "core/field.h"
#include "core/wsd.h"  // FieldLoc

namespace maywsd::core {

/// How a world condition restricts an update on representation `Rep`.
///
/// `Rep` must expose Locate(FieldKey) → Result<FieldLoc>,
/// component(size_t) → const Component&, and ComposeInPlace(a, b), and an
/// ADL-visible overload
///   GuardSlotCandidates(const Rep&, const std::string& guard_rel)
///       → Result<std::vector<std::vector<FieldKey>>>
/// returning, per alive tuple slot of the guard relation, the fields that
/// could carry conditional presence (empty outer vector = no alive slots).
template <typename Rep>
class UpdateGuard {
 public:
  enum class Mode {
    kAlways,       ///< unconditional, or the guard is non-empty in every world
    kNever,        ///< the guard is empty in every world: the update is a no-op
    kConditional,  ///< non-emptiness varies; `comp()` correlates it
  };

  /// The unconditional guard.
  static UpdateGuard Always() { return UpdateGuard(Mode::kAlways); }

  /// Analyzes relation `guard_rel`: kAlways when some slot exists in every
  /// world, kNever when there are no alive slots, otherwise kConditional
  /// with all of the relation's presence-carrying components composed into
  /// one.
  static Result<UpdateGuard> Analyze(Rep& rep, const std::string& guard_rel) {
    MAYWSD_ASSIGN_OR_RETURN(std::vector<std::vector<FieldKey>> candidates,
                            GuardSlotCandidates(std::as_const(rep),
                                                guard_rel));
    if (candidates.empty()) return UpdateGuard(Mode::kNever);

    std::vector<std::vector<FieldKey>> slots;
    std::set<int32_t> comps;
    for (std::vector<FieldKey>& fields : candidates) {
      std::vector<FieldKey> presence_fields;
      for (const FieldKey& f : fields) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, rep.Locate(f));
        if (rep.component(static_cast<size_t>(loc.comp))
                .ColumnHasBottom(static_cast<size_t>(loc.col))) {
          presence_fields.push_back(f);
          comps.insert(loc.comp);
        }
      }
      // A slot with no ⊥-carrying field exists in every world: the guard
      // relation is certainly non-empty.
      if (presence_fields.empty()) return UpdateGuard(Mode::kAlways);
      slots.push_back(std::move(presence_fields));
    }

    UpdateGuard guard(Mode::kConditional);
    auto it = comps.begin();
    guard.comp_ = static_cast<size_t>(*it);
    for (++it; it != comps.end(); ++it) {
      MAYWSD_RETURN_IF_ERROR(
          rep.ComposeInPlace(guard.comp_, static_cast<size_t>(*it)));
    }
    guard.slot_presence_fields_ = std::move(slots);
    return guard;
  }

  Mode mode() const { return mode_; }

  /// The component the guard's world selection lives in (kConditional).
  size_t comp() const { return comp_; }

  /// Recomputes the per-local-world selection bitmap of comp() — one entry
  /// per local world, true where the guard relation is non-empty. Call
  /// after composing further components into comp() (composition changes
  /// the local-world count).
  Result<std::vector<bool>> Selected(const Rep& rep) const {
    const Component& comp = rep.component(comp_);
    std::vector<bool> selected(comp.NumWorlds(), false);
    for (const std::vector<FieldKey>& fields : slot_presence_fields_) {
      std::vector<size_t> cols;
      for (const FieldKey& f : fields) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, rep.Locate(f));
        if (static_cast<size_t>(loc.comp) != comp_) {
          return Status::Internal("guard field " + f.ToString() +
                                  " escaped the guard component");
        }
        cols.push_back(static_cast<size_t>(loc.col));
      }
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        if (selected[w]) continue;
        bool present = true;
        for (size_t c : cols) {
          if (comp.at(w, c).is_bottom()) {
            present = false;
            break;
          }
        }
        if (present) selected[w] = true;
      }
    }
    return selected;
  }

 private:
  explicit UpdateGuard(Mode mode) : mode_(mode) {}

  Mode mode_;
  size_t comp_ = 0;
  /// Per alive guard slot: the fields whose component column carried ⊥ at
  /// analysis time (all of them live in comp()).
  std::vector<std::vector<FieldKey>> slot_presence_fields_;
};

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_UPDATE_GUARD_H_
