// Relational algebra on WSDTs/UWSDTs — Section 5.
//
// These are the scale-path operators the paper's experiments run: they scan
// template relations once, touch components only for placeholder fields,
// and implement the Section 5 optimizations — selections and projections on
// the same relation are merged into one pass (WsdtSelect evaluates an
// arbitrary predicate tree with three-valued logic over '?'), and σ(×) is
// fused into a hash join over certain-and-possible values instead of a
// materialized product.
//
// Semantics are identical to the Figure 9 WSD operators (the test suite
// checks WsdtEvaluate ≡ WsdEvaluate ≡ per-world evaluation on random
// world-sets); conditional tuple membership is encoded by ⊥ values inside
// components, exactly as "a placeholder with different amounts of values in
// different worlds".

#ifndef MAYWSD_CORE_WSDT_ALGEBRA_H_
#define MAYWSD_CORE_WSDT_ALGEBRA_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/algebra.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// Kleene three-valued truth over templates: '?' fields are unknown.
enum class Tri { kFalse, kTrue, kUnknown };

/// Evaluates `pred` on a template row; '?' cells make comparisons unknown.
/// Attribute references must exist in `schema`.
Result<Tri> TriEvalPredicate(const rel::Predicate& pred,
                             const rel::Schema& schema, rel::TupleRef row);

/// Evaluates `pred` two-valued with a resolver mapping attribute names to
/// concrete values — the per-local-world evaluation used once a row's
/// placeholder components are composed (select and the update operators).
bool EvalPredicateResolved(
    const rel::Predicate& pred,
    const std::function<rel::Value(const std::string&)>& get);

/// P := R (identity copy; fresh template rows and component columns).
Status WsdtCopy(Wsdt& wsdt, const std::string& src, const std::string& out);

/// P := σ_pred(R) for an arbitrary predicate tree in one template pass.
/// Rows that certainly fail are dropped; rows that possibly fail get ⊥
/// markers in the (composed) components of the referenced placeholders.
Status WsdtSelect(Wsdt& wsdt, const std::string& src, const std::string& out,
                  const rel::Predicate& pred);

/// P := π_attrs(R). Fully-certain duplicate rows are merged; placeholders
/// with ⊥ in dropped columns are composed into kept columns (or into a
/// presence-helper placeholder when the projection keeps only certain
/// fields) so deleted tuples are not resurrected.
Status WsdtProject(Wsdt& wsdt, const std::string& src, const std::string& out,
                   const std::vector<std::string>& attrs);

/// T := R ∪ S (schemas must match; duplicate certain rows merged).
Status WsdtUnion(Wsdt& wsdt, const std::string& left, const std::string& right,
                 const std::string& out);

/// T := R × S (attribute sets must be disjoint).
Status WsdtProduct(Wsdt& wsdt, const std::string& left,
                   const std::string& right, const std::string& out);

/// T := R ⋈_{A=B} S — hash join on certain and possible key values; pairs
/// involving placeholders get their components composed and non-matching
/// local worlds ⊥-marked (the Section 5 "merge product and join selection"
/// optimization).
Status WsdtJoin(Wsdt& wsdt, const std::string& left, const std::string& right,
                const std::string& out, const std::string& left_attr,
                const std::string& right_attr);

/// P := δ(R) for several renames at once.
Status WsdtRename(Wsdt& wsdt, const std::string& src, const std::string& out,
                  const std::vector<std::pair<std::string, std::string>>&
                      renames);

/// P := R − S. Certain-certain deletions drop template rows; uncertain
/// matches are resolved through component composition.
Status WsdtDifference(Wsdt& wsdt, const std::string& left,
                      const std::string& right, const std::string& out);

/// Evaluates a full rel::Plan over the WSDT through the shared engine
/// driver (core/engine/plan_driver.h); the WSDT backend advertises native
/// predicate selection and the fused σ(×) hash join, so the driver uses
/// them instead of the generic lowering. The result is added under `out`;
/// temporaries are dropped unless `keep_temps`.
///
/// Compatibility shim: new code should open an api::Session over the Wsdt
/// (Session::Open) and call Run(); this entry point remains for
/// callers that already hold a bare Wsdt.
Status WsdtEvaluate(Wsdt& wsdt, const rel::Plan& plan, const std::string& out,
                    bool keep_temps = false);

/// Runs the Section 5 logical optimizations first (merge selections, fuse
/// σ(×) into joins, distribute over unions — see rel::Optimize) against the
/// template schemas, then evaluates the rewritten plan.
Status WsdtEvaluateOptimized(Wsdt& wsdt, const rel::Plan& plan,
                             const std::string& out);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSDT_ALGEBRA_H_
