// Component: one factor of a world-set decomposition (Definition 1).
//
// A component is a relation over a set of fields (its columns, identified by
// FieldKey) whose rows — the paper's *local worlds* — each carry a
// probability. The world-set represented by a WSD is the product of its
// components: one local world is chosen per component, independently.
//
// The local-world payload is a refcounted handle into the shared component
// store (core/component_store.h): copying a Component shares the payload,
// Compose/ext record O(1) nodes in a composition DAG, reads force and
// memoize lazily, and writers privatize the payload copy-on-write. The
// public surface below is unchanged from the eager implementation; only
// the cost model moved. Mutating a Component still requires external
// synchronization; sharing and reading are thread-safe.

#ifndef MAYWSD_CORE_COMPONENT_H_
#define MAYWSD_CORE_COMPONENT_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/component_store.h"
#include "core/field.h"
#include "rel/value.h"

namespace maywsd::core {

/// Probabilities within this tolerance of each other compare equal; a
/// component's probabilities must sum to 1 within this tolerance.
inline constexpr double kProbEpsilon = 1e-7;

/// One factor of a WSD: columns are fields, rows are local worlds.
class Component {
 public:
  Component() = default;

  /// Creates a component with the given field columns and no rows.
  explicit Component(std::vector<FieldKey> fields)
      : fields_(std::move(fields)) {}

  /// The certain singleton [value | 1.0] under `field`, interned: equal
  /// values across the store share one payload node.
  static Component Certain(const FieldKey& field, const rel::Value& value);

  size_t NumFields() const { return fields_.size(); }
  size_t NumWorlds() const { return node_ ? node_->worlds : 0; }
  bool empty() const { return NumWorlds() == 0; }

  const std::vector<FieldKey>& fields() const { return fields_; }
  const FieldKey& field(size_t col) const { return fields_[col]; }

  /// Column index of `field`, or -1.
  int FindField(const FieldKey& field) const;

  /// Appends a local world. `values` must match the field count.
  void AddWorld(std::span<const rel::Value> values, double prob);
  void AddWorld(std::initializer_list<rel::Value> values, double prob);

  /// Field value in local world `world` (forces a lazy payload).
  const rel::Value& at(size_t world, size_t col) const {
    const store::Node& n = store::ForcedRef(node_);
    return n.values[world * n.width + col];
  }
  rel::Value& at(size_t world, size_t col) {
    EnsureMutable();
    return node_->values[world * node_->width + col];
  }

  double prob(size_t world) const {
    return store::ForcedRef(node_).probs[world];
  }
  void set_prob(size_t world, double p) {
    EnsureMutable();
    node_->probs[world] = p;
  }

  /// Sum of local-world probabilities (should be 1 for a valid component).
  /// Computed structurally — never forces a lazy payload.
  double ProbSum() const { return store::ProbSum(node_.get()); }

  /// Scales all probabilities by 1/ProbSum(); fails if the sum is 0.
  Status NormalizeProbs();

  /// Appends a column that duplicates column `src_col` under a new field
  /// name — the paper's ext(C, A, B) primitive (Section 4). O(1) beyond
  /// the store's eager-materialization threshold.
  void ExtDuplicateColumn(size_t src_col, const FieldKey& new_field);

  /// Appends a column with the same value in every local world.
  void ExtConstantColumn(const FieldKey& new_field, const rel::Value& value);

  /// Appends a column with explicit per-local-world values (size must equal
  /// NumWorlds()).
  void ExtColumn(const FieldKey& new_field,
                 std::span<const rel::Value> values);

  /// The paper's compose(C1, C2): the product of the local-world sets with
  /// multiplied probabilities (Section 4). Records an O(1) DAG node; the
  /// product is materialized only when a read forces it.
  static Component Compose(const Component& a, const Component& b);

  /// Removes the columns listed in `cols` (the "project away" step of the
  /// WSD projection and normalization algorithms). Does not merge rows.
  void DropColumns(const std::vector<size_t>& cols);

  /// Keeps only the columns in `cols` (in that order).
  Component ProjectColumns(const std::vector<size_t>& cols) const;

  /// This component's payload shared as-is under `fields` (which must
  /// match the field count): the copy-on-write slice primitive — O(1), no
  /// materialization, mutations on either side privatize first.
  Component WithFields(std::vector<FieldKey> fields) const;

  /// True when `other` shares this component's payload node.
  bool SharesPayloadWith(const Component& other) const {
    return node_ != nullptr && node_ == other.node_;
  }

  /// Removes local world `world` (swap-remove; order is not meaningful).
  void RemoveWorld(size_t world);

  /// Merges identical rows by summing probabilities (Figure 20, compress).
  void Compress();

  /// The paper's propagate-⊥ (Figure 12): within every local world, if any
  /// field of tuple R.tᵢ is ⊥, all fields of R.tᵢ in this component become ⊥.
  /// Probes the payload structurally first: a component with no ⊥ anywhere
  /// (or no two columns of the same tuple) returns without forcing.
  void PropagateBottom();

  /// True if every value in column `col` is ⊥. Never forces.
  bool ColumnAllBottom(size_t col) const {
    return store::ColumnAllBottom(node_.get(), col);
  }

  /// True if column `col` contains at least one ⊥. Never forces.
  bool ColumnHasBottom(size_t col) const {
    return store::ColumnHasBottom(node_.get(), col);
  }

  /// True if every value in column `col` equals the value in its first row
  /// (i.e. the field is certain). False for empty components. Never forces.
  bool ColumnConstant(size_t col) const {
    return store::ColumnConstant(node_.get(), col);
  }

  /// The value a constant column holds in every local world, or null when
  /// the column is not constant (or the component is empty). Never forces;
  /// the pointer is valid until this component is mutated or destroyed.
  const rel::Value* ColumnConstantValue(size_t col) const {
    return store::ColumnConstantValue(node_.get(), col);
  }

  /// Renames the field of a column (δ on WSDs renames component attributes).
  void RenameField(size_t col, const FieldKey& new_field);

  std::string ToString() const;

 private:
  /// Guarantees node_ is a uniquely held mutable leaf (creating an empty
  /// one when the component has no payload yet). unique() is an acquire
  /// probe, so in-place mutation is sound even when the other owners were
  /// forked sessions releasing from other threads.
  void EnsureMutable() {
    if (node_ != nullptr && node_->kind == store::NodeKind::kLeaf &&
        !node_->interned && node_.unique()) {
      return;
    }
    PrivatizePayload();
  }
  void PrivatizePayload();

  std::vector<FieldKey> fields_;
  store::NodePtr node_;  ///< null = no local worlds
};

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_COMPONENT_H_
