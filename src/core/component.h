// Component: one factor of a world-set decomposition (Definition 1).
//
// A component is a relation over a set of fields (its columns, identified by
// FieldKey) whose rows — the paper's *local worlds* — each carry a
// probability. The world-set represented by a WSD is the product of its
// components: one local world is chosen per component, independently.

#ifndef MAYWSD_CORE_COMPONENT_H_
#define MAYWSD_CORE_COMPONENT_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/value.h"
#include "core/field.h"

namespace maywsd::core {

/// Probabilities within this tolerance of each other compare equal; a
/// component's probabilities must sum to 1 within this tolerance.
inline constexpr double kProbEpsilon = 1e-7;

/// One factor of a WSD: columns are fields, rows are local worlds.
class Component {
 public:
  Component() = default;

  /// Creates a component with the given field columns and no rows.
  explicit Component(std::vector<FieldKey> fields)
      : fields_(std::move(fields)) {}

  size_t NumFields() const { return fields_.size(); }
  size_t NumWorlds() const {
    return fields_.empty() ? probs_.size() : values_.size() / fields_.size();
  }
  bool empty() const { return NumWorlds() == 0; }

  const std::vector<FieldKey>& fields() const { return fields_; }
  const FieldKey& field(size_t col) const { return fields_[col]; }

  /// Column index of `field`, or -1.
  int FindField(const FieldKey& field) const;

  /// Appends a local world. `values` must match the field count.
  void AddWorld(std::span<const rel::Value> values, double prob);
  void AddWorld(std::initializer_list<rel::Value> values, double prob);

  /// Field value in local world `world`.
  const rel::Value& at(size_t world, size_t col) const {
    return values_[world * fields_.size() + col];
  }
  rel::Value& at(size_t world, size_t col) {
    return values_[world * fields_.size() + col];
  }

  double prob(size_t world) const { return probs_[world]; }
  void set_prob(size_t world, double p) { probs_[world] = p; }

  /// Sum of local-world probabilities (should be 1 for a valid component).
  double ProbSum() const;

  /// Scales all probabilities by 1/ProbSum(); fails if the sum is 0.
  Status NormalizeProbs();

  /// Appends a column that duplicates column `src_col` under a new field
  /// name — the paper's ext(C, A, B) primitive (Section 4).
  void ExtDuplicateColumn(size_t src_col, const FieldKey& new_field);

  /// Appends a column with the same value in every local world.
  void ExtConstantColumn(const FieldKey& new_field, const rel::Value& value);

  /// Appends a column with explicit per-local-world values (size must equal
  /// NumWorlds()).
  void ExtColumn(const FieldKey& new_field,
                 std::span<const rel::Value> values);

  /// The paper's compose(C1, C2): the product of the local-world sets with
  /// multiplied probabilities (Section 4).
  static Component Compose(const Component& a, const Component& b);

  /// Removes the columns listed in `cols` (the "project away" step of the
  /// WSD projection and normalization algorithms). Does not merge rows.
  void DropColumns(const std::vector<size_t>& cols);

  /// Keeps only the columns in `cols` (in that order).
  Component ProjectColumns(const std::vector<size_t>& cols) const;

  /// Removes local world `world` (swap-remove; order is not meaningful).
  void RemoveWorld(size_t world);

  /// Merges identical rows by summing probabilities (Figure 20, compress).
  void Compress();

  /// The paper's propagate-⊥ (Figure 12): within every local world, if any
  /// field of tuple R.tᵢ is ⊥, all fields of R.tᵢ in this component become ⊥.
  void PropagateBottom();

  /// True if every value in column `col` is ⊥.
  bool ColumnAllBottom(size_t col) const;

  /// True if column `col` contains at least one ⊥.
  bool ColumnHasBottom(size_t col) const;

  /// True if every value in column `col` equals the value in its first row
  /// (i.e. the field is certain). False for empty components.
  bool ColumnConstant(size_t col) const;

  /// Renames the field of a column (δ on WSDs renames component attributes).
  void RenameField(size_t col, const FieldKey& new_field);

  std::string ToString() const;

 private:
  std::vector<FieldKey> fields_;
  std::vector<rel::Value> values_;  // row-major: world * NumFields() + col
  std::vector<double> probs_;
};

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_COMPONENT_H_
