#include "core/wsdt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace maywsd::core {

Status Wsdt::AddTemplateRelation(rel::Relation relation) {
  const std::string& name = relation.name();
  if (name.empty()) {
    return Status::InvalidArgument("template relation must be named");
  }
  if (templates_.count(name)) {
    return Status::AlreadyExists("template relation " + name);
  }
  templates_.emplace(name, std::move(relation));
  return Status::Ok();
}

Result<const rel::Relation*> Wsdt::Template(const std::string& name) const {
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template relation " + name);
  }
  return &it->second;
}

Result<rel::Relation*> Wsdt::MutableTemplate(const std::string& name) {
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template relation " + name);
  }
  return &it->second;
}

bool Wsdt::HasRelation(const std::string& name) const {
  return templates_.count(name) > 0;
}

std::vector<std::string> Wsdt::RelationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, rel] : templates_) out.push_back(name);
  return out;
}

Status Wsdt::DropRelation(const std::string& name) {
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template relation " + name);
  }
  Symbol sym = InternString(name);
  std::vector<FieldKey> to_drop;
  for (const auto& [field, loc] : field_index_) {
    if (field.rel == sym) to_drop.push_back(field);
  }
  for (const FieldKey& f : to_drop) {
    MAYWSD_RETURN_IF_ERROR(DropField(f));
  }
  templates_.erase(it);
  return Status::Ok();
}

Status Wsdt::AddComponent(Component component) {
  if (component.NumFields() == 0 || component.empty()) {
    return Status::InvalidArgument("component must be non-empty");
  }
  for (const FieldKey& f : component.fields()) {
    if (field_index_.count(f)) {
      return Status::AlreadyExists("field " + f.ToString() +
                                   " already covered");
    }
  }
  int32_t idx = static_cast<int32_t>(components_.size());
  for (size_t c = 0; c < component.NumFields(); ++c) {
    field_index_[component.field(c)] =
        FieldLoc{idx, static_cast<int32_t>(c)};
  }
  components_.push_back(std::move(component));
  alive_.push_back(true);
  return Status::Ok();
}

std::vector<size_t> Wsdt::LiveComponents() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (alive_[i]) out.push_back(i);
  }
  return out;
}

Result<FieldLoc> Wsdt::Locate(const FieldKey& field) const {
  auto it = field_index_.find(field);
  if (it == field_index_.end()) {
    return Status::NotFound("field " + field.ToString() + " not present");
  }
  return it->second;
}

bool Wsdt::HasField(const FieldKey& field) const {
  return field_index_.count(field) > 0;
}

Status Wsdt::ComposeInPlace(size_t a, size_t b) {
  if (a == b) return Status::Ok();
  if (a >= components_.size() || b >= components_.size() || !alive_[a] ||
      !alive_[b]) {
    return Status::InvalidArgument("compose of dead or invalid component");
  }
  Component composed = Component::Compose(components_[a], components_[b]);
  size_t offset = components_[a].NumFields();
  components_[a] = std::move(composed);
  alive_[b] = false;
  const Component& merged = components_[a];
  for (size_t c = offset; c < merged.NumFields(); ++c) {
    field_index_[merged.field(c)] =
        FieldLoc{static_cast<int32_t>(a), static_cast<int32_t>(c)};
  }
  components_[b] = Component();
  return Status::Ok();
}

Status Wsdt::CopyFieldInto(const FieldKey& src, const FieldKey& dst) {
  auto it = field_index_.find(src);
  if (it == field_index_.end()) {
    return Status::NotFound("source field " + src.ToString());
  }
  if (field_index_.count(dst)) {
    return Status::AlreadyExists("destination field " + dst.ToString());
  }
  FieldLoc loc = it->second;
  Component& comp = components_[loc.comp];
  comp.ExtDuplicateColumn(static_cast<size_t>(loc.col), dst);
  field_index_[dst] =
      FieldLoc{loc.comp, static_cast<int32_t>(comp.NumFields() - 1)};
  return Status::Ok();
}

Status Wsdt::AddFieldComponent(const FieldKey& dst,
                               std::vector<rel::Value> values,
                               std::vector<double> probs) {
  if (values.empty() || values.size() != probs.size()) {
    return Status::InvalidArgument("values/probs mismatch for " +
                                   dst.ToString());
  }
  Component comp({dst});
  for (size_t i = 0; i < values.size(); ++i) {
    comp.AddWorld({values[i]}, probs[i]);
  }
  return AddComponent(std::move(comp));
}

Status Wsdt::AddColumnToComponent(size_t comp_index, const FieldKey& dst,
                                  std::span<const rel::Value> values) {
  if (comp_index >= components_.size() || !alive_[comp_index]) {
    return Status::InvalidArgument("dead or invalid component");
  }
  if (field_index_.count(dst)) {
    return Status::AlreadyExists("field " + dst.ToString());
  }
  Component& comp = components_[comp_index];
  if (values.size() != comp.NumWorlds()) {
    return Status::InvalidArgument("derived column size mismatch");
  }
  comp.ExtColumn(dst, values);
  field_index_[dst] = FieldLoc{static_cast<int32_t>(comp_index),
                               static_cast<int32_t>(comp.NumFields() - 1)};
  return Status::Ok();
}

Status Wsdt::DropField(const FieldKey& field) {
  auto it = field_index_.find(field);
  if (it == field_index_.end()) {
    return Status::NotFound("field " + field.ToString());
  }
  FieldLoc loc = it->second;
  Component& comp = components_[loc.comp];
  comp.DropColumns({static_cast<size_t>(loc.col)});
  field_index_.erase(it);
  for (size_t c = static_cast<size_t>(loc.col); c < comp.NumFields(); ++c) {
    field_index_[comp.field(c)] = FieldLoc{loc.comp, static_cast<int32_t>(c)};
  }
  if (comp.NumFields() == 0) {
    alive_[loc.comp] = false;
    components_[loc.comp] = Component();
  }
  return Status::Ok();
}

Status Wsdt::RenameFieldKey(const FieldKey& from, const FieldKey& to) {
  auto it = field_index_.find(from);
  if (it == field_index_.end()) {
    return Status::NotFound("field " + from.ToString());
  }
  if (field_index_.count(to)) {
    return Status::AlreadyExists("field " + to.ToString());
  }
  FieldLoc loc = it->second;
  components_[loc.comp].RenameField(static_cast<size_t>(loc.col), to);
  field_index_.erase(it);
  field_index_[to] = loc;
  return Status::Ok();
}

Status Wsdt::ReplaceComponent(size_t index, std::vector<Component> parts) {
  if (index >= components_.size() || !alive_[index]) {
    return Status::InvalidArgument("replacing dead or invalid component");
  }
  std::vector<FieldKey> old_fields = components_[index].fields();
  std::vector<FieldKey> new_fields;
  for (const Component& part : parts) {
    for (const FieldKey& f : part.fields()) new_fields.push_back(f);
  }
  auto sorted = [](std::vector<FieldKey> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  if (sorted(old_fields) != sorted(new_fields)) {
    return Status::InvalidArgument(
        "replacement components do not cover the same fields");
  }
  for (const FieldKey& f : old_fields) field_index_.erase(f);
  alive_[index] = false;
  components_[index] = Component();
  for (Component& part : parts) {
    int32_t idx = static_cast<int32_t>(components_.size());
    for (size_t c = 0; c < part.NumFields(); ++c) {
      field_index_[part.field(c)] = FieldLoc{idx, static_cast<int32_t>(c)};
    }
    components_.push_back(std::move(part));
    alive_.push_back(true);
  }
  return Status::Ok();
}

void Wsdt::CompactComponents() {
  std::vector<Component> live;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (alive_[i]) live.push_back(std::move(components_[i]));
  }
  components_ = std::move(live);
  alive_.assign(components_.size(), true);
  field_index_.clear();
  for (size_t i = 0; i < components_.size(); ++i) {
    for (size_t c = 0; c < components_[i].NumFields(); ++c) {
      field_index_[components_[i].field(c)] =
          FieldLoc{static_cast<int32_t>(i), static_cast<int32_t>(c)};
    }
  }
}

Status Wsdt::Validate() const {
  // Every '?' cell covered by exactly one component column, and vice versa.
  size_t question_cells = 0;
  for (const auto& [name, rel] : templates_) {
    Symbol sym = InternString(name);
    for (size_t r = 0; r < rel.NumRows(); ++r) {
      for (size_t a = 0; a < rel.arity(); ++a) {
        if (rel.row(r)[a].is_question()) {
          ++question_cells;
          FieldKey f(sym, static_cast<TupleId>(r), rel.schema().attr(a).name);
          if (!field_index_.count(f)) {
            return Status::Internal("placeholder " + f.ToString() +
                                    " has no component column");
          }
        }
      }
    }
  }
  if (question_cells != field_index_.size()) {
    return Status::Internal("component columns (" +
                            std::to_string(field_index_.size()) +
                            ") != placeholders (" +
                            std::to_string(question_cells) + ")");
  }
  for (const auto& [field, loc] : field_index_) {
    if (loc.comp < 0 || static_cast<size_t>(loc.comp) >= components_.size() ||
        !alive_[loc.comp]) {
      return Status::Internal("index points at dead component: " +
                              field.ToString());
    }
    const Component& comp = components_[loc.comp];
    if (loc.col < 0 || static_cast<size_t>(loc.col) >= comp.NumFields() ||
        comp.field(loc.col) != field) {
      return Status::Internal("index column mismatch: " + field.ToString());
    }
    auto t = templates_.find(std::string(SymbolName(field.rel)));
    if (t == templates_.end() ||
        field.tuple >= static_cast<TupleId>(t->second.NumRows())) {
      return Status::Internal("component field outside template: " +
                              field.ToString());
    }
  }
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!alive_[i]) continue;
    double sum = components_[i].ProbSum();
    if (std::abs(sum - 1.0) > 1e-4) {
      return Status::Internal("component probabilities sum to " +
                              std::to_string(sum));
    }
  }
  return Status::Ok();
}

Result<Wsd> Wsdt::ToWsd() const {
  Wsd wsd;
  for (const auto& [name, rel] : templates_) {
    MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(
        name, rel.schema(), static_cast<TupleId>(rel.NumRows())));
  }
  // Uncertain fields: copy components as-is.
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!alive_[i]) continue;
    MAYWSD_RETURN_IF_ERROR(wsd.AddComponent(components_[i]));
  }
  // Certain fields: singleton components.
  for (const auto& [name, rel] : templates_) {
    Symbol sym = InternString(name);
    for (size_t r = 0; r < rel.NumRows(); ++r) {
      for (size_t a = 0; a < rel.arity(); ++a) {
        const rel::Value& v = rel.row(r)[a];
        if (v.is_question()) continue;
        MAYWSD_RETURN_IF_ERROR(wsd.AddCertainField(
            FieldKey(sym, static_cast<TupleId>(r), rel.schema().attr(a).name),
            v));
      }
    }
  }
  return wsd;
}

Result<Wsdt> Wsdt::FromWsd(const Wsd& wsd) {
  if (wsd.HasPresenceFields()) {
    // Templates encode conditional presence through ⊥s in value columns;
    // fold the "exists" columns back in first.
    Wsd copy = wsd;
    MAYWSD_RETURN_IF_ERROR(copy.EliminatePresenceFields());
    return FromWsd(copy);
  }
  Wsdt out;
  // Tuple-slot remapping: slots invalid in every world are removed; the
  // rest are renumbered densely as template rows.
  std::map<std::pair<Symbol, TupleId>, TupleId> remap;
  for (const std::string& name : wsd.RelationNames()) {
    MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel, wsd.FindRelation(name));
    rel::Relation tmpl(rel->schema, name);
    std::vector<rel::Value> row(rel->schema.arity());
    TupleId next = 0;
    for (TupleId t = 0; t < rel->max_tuples; ++t) {
      if (!wsd.SlotPresent(*rel, t)) continue;
      bool invalid = false;
      for (size_t a = 0; a < rel->schema.arity(); ++a) {
        FieldKey f(rel->name_sym, t, rel->schema.attr(a).name);
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f));
        const Component& comp = wsd.component(loc.comp);
        size_t col = static_cast<size_t>(loc.col);
        if (comp.ColumnAllBottom(col)) {
          invalid = true;
          break;
        }
        if (comp.ColumnConstant(col)) {
          row[a] = comp.at(0, col);
        } else {
          row[a] = rel::Value::Question();
        }
      }
      if (invalid) continue;
      tmpl.AppendRow(row);
      remap[{rel->name_sym, t}] = next++;
    }
    MAYWSD_RETURN_IF_ERROR(out.AddTemplateRelation(std::move(tmpl)));
  }
  // Components: keep only non-constant columns, remapping tuple ids.
  for (size_t i : wsd.LiveComponents()) {
    const Component& comp = wsd.component(i);
    std::vector<size_t> keep;
    for (size_t c = 0; c < comp.NumFields(); ++c) {
      auto it = remap.find({comp.field(c).rel, comp.field(c).tuple});
      if (it == remap.end()) continue;  // invalid slot dropped entirely
      if (!comp.ColumnConstant(c)) keep.push_back(c);
    }
    if (keep.empty()) continue;
    Component proj = comp.ProjectColumns(keep);
    proj.Compress();
    for (size_t c = 0; c < proj.NumFields(); ++c) {
      FieldKey f = proj.field(c);
      proj.RenameField(c, FieldKey(f.rel, remap.at({f.rel, f.tuple}), f.attr));
    }
    MAYWSD_RETURN_IF_ERROR(out.AddComponent(std::move(proj)));
  }
  return out;
}

WsdtStats Wsdt::ComputeStats() const {
  WsdtStats stats;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!alive_[i]) continue;
    const Component& comp = components_[i];
    ++stats.num_components;
    if (comp.NumFields() > 1) ++stats.num_components_multi;
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      for (size_t c = 0; c < comp.NumFields(); ++c) {
        if (!comp.at(w, c).is_bottom()) ++stats.c_size;
      }
    }
  }
  for (const auto& [name, rel] : templates_) {
    stats.template_rows += rel.NumRows();
  }
  return stats;
}

Result<WsdtStats> Wsdt::StatsForRelation(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, Template(name));
  Symbol sym = InternString(name);
  WsdtStats stats;
  stats.template_rows = tmpl->NumRows();
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!alive_[i]) continue;
    const Component& comp = components_[i];
    size_t own_cols = 0;
    for (size_t c = 0; c < comp.NumFields(); ++c) {
      if (comp.field(c).rel != sym) continue;
      ++own_cols;
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        if (!comp.at(w, c).is_bottom()) ++stats.c_size;
      }
    }
    if (own_cols > 0) ++stats.num_components;
    if (own_cols > 1) ++stats.num_components_multi;
  }
  return stats;
}

std::vector<size_t> Wsdt::ComponentSizeHistogram() const {
  std::vector<size_t> hist;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!alive_[i]) continue;
    size_t size = components_[i].NumFields();
    if (hist.size() <= size) hist.resize(size + 1, 0);
    ++hist[size];
  }
  return hist;
}

std::string Wsdt::ToString() const {
  std::ostringstream os;
  for (const auto& [name, rel] : templates_) {
    os << "Template " << rel.ToString();
  }
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!alive_[i]) continue;
    os << "C" << i << " " << components_[i].ToString();
  }
  return os.str();
}

}  // namespace maywsd::core
