#include "core/wsdt.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace maywsd::core {

Status Wsdt::AddTemplateRelation(rel::Relation relation) {
  const std::string& name = relation.name();
  if (name.empty()) {
    return Status::InvalidArgument("template relation must be named");
  }
  if (templates_.count(name)) {
    return Status::AlreadyExists("template relation " + name);
  }
  templates_.emplace(name, std::move(relation));
  return Status::Ok();
}

Result<const rel::Relation*> Wsdt::Template(const std::string& name) const {
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template relation " + name);
  }
  return &it->second;
}

Result<rel::Relation*> Wsdt::MutableTemplate(const std::string& name) {
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template relation " + name);
  }
  return &it->second;
}

bool Wsdt::HasRelation(const std::string& name) const {
  return templates_.count(name) > 0;
}

std::vector<std::string> Wsdt::RelationNames() const {
  std::vector<std::string> out;
  for (const auto& [name, rel] : templates_) out.push_back(name);
  return out;
}

Status Wsdt::DropRelation(const std::string& name) {
  auto it = templates_.find(name);
  if (it == templates_.end()) {
    return Status::NotFound("template relation " + name);
  }
  Symbol sym = InternString(name);
  std::vector<FieldKey> to_drop;
  for (const auto& [field, loc] : pool().field_index) {
    if (field.rel == sym) to_drop.push_back(field);
  }
  for (const FieldKey& f : to_drop) {
    MAYWSD_RETURN_IF_ERROR(DropField(f));
  }
  templates_.erase(it);
  return Status::Ok();
}

Status Wsdt::AddComponent(Component component) {
  if (component.NumFields() == 0 || component.empty()) {
    return Status::InvalidArgument("component must be non-empty");
  }
  for (const FieldKey& f : component.fields()) {
    if (pool().field_index.count(f)) {
      return Status::AlreadyExists("field " + f.ToString() +
                                   " already covered");
    }
  }
  int32_t idx = static_cast<int32_t>(pool().components.size());
  for (size_t c = 0; c < component.NumFields(); ++c) {
    pool().field_index[component.field(c)] =
        FieldLoc{idx, static_cast<int32_t>(c)};
  }
  pool().components.push_back(std::move(component));
  pool().alive.push_back(true);
  return Status::Ok();
}

std::vector<size_t> Wsdt::LiveComponents() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (pool().alive[i]) out.push_back(i);
  }
  return out;
}

Result<FieldLoc> Wsdt::Locate(const FieldKey& field) const {
  auto it = pool().field_index.find(field);
  if (it == pool().field_index.end()) {
    return Status::NotFound("field " + field.ToString() + " not present");
  }
  return it->second;
}

bool Wsdt::HasField(const FieldKey& field) const {
  return pool().field_index.count(field) > 0;
}

Status Wsdt::ComposeInPlace(size_t a, size_t b) {
  if (a == b) return Status::Ok();
  if (a >= pool().components.size() || b >= pool().components.size() || !pool().alive[a] ||
      !pool().alive[b]) {
    return Status::InvalidArgument("compose of dead or invalid component");
  }
  Component composed = Component::Compose(pool().components[a], pool().components[b]);
  size_t offset = pool().components[a].NumFields();
  pool().components[a] = std::move(composed);
  pool().alive[b] = false;
  const Component& merged = pool().components[a];
  for (size_t c = offset; c < merged.NumFields(); ++c) {
    pool().field_index[merged.field(c)] =
        FieldLoc{static_cast<int32_t>(a), static_cast<int32_t>(c)};
  }
  pool().components[b] = Component();
  return Status::Ok();
}

Status Wsdt::CopyFieldInto(const FieldKey& src, const FieldKey& dst) {
  auto it = pool().field_index.find(src);
  if (it == pool().field_index.end()) {
    return Status::NotFound("source field " + src.ToString());
  }
  if (pool().field_index.count(dst)) {
    return Status::AlreadyExists("destination field " + dst.ToString());
  }
  FieldLoc loc = it->second;
  Component& comp = pool().components[loc.comp];
  comp.ExtDuplicateColumn(static_cast<size_t>(loc.col), dst);
  pool().field_index[dst] =
      FieldLoc{loc.comp, static_cast<int32_t>(comp.NumFields() - 1)};
  return Status::Ok();
}

Status Wsdt::AddFieldComponent(const FieldKey& dst,
                               std::vector<rel::Value> values,
                               std::vector<double> probs) {
  if (values.empty() || values.size() != probs.size()) {
    return Status::InvalidArgument("values/probs mismatch for " +
                                   dst.ToString());
  }
  Component comp({dst});
  for (size_t i = 0; i < values.size(); ++i) {
    comp.AddWorld({values[i]}, probs[i]);
  }
  return AddComponent(std::move(comp));
}

Status Wsdt::AddColumnToComponent(size_t comp_index, const FieldKey& dst,
                                  std::span<const rel::Value> values) {
  if (comp_index >= pool().components.size() || !pool().alive[comp_index]) {
    return Status::InvalidArgument("dead or invalid component");
  }
  if (pool().field_index.count(dst)) {
    return Status::AlreadyExists("field " + dst.ToString());
  }
  Component& comp = pool().components[comp_index];
  if (values.size() != comp.NumWorlds()) {
    return Status::InvalidArgument("derived column size mismatch");
  }
  comp.ExtColumn(dst, values);
  pool().field_index[dst] = FieldLoc{static_cast<int32_t>(comp_index),
                               static_cast<int32_t>(comp.NumFields() - 1)};
  return Status::Ok();
}

Status Wsdt::DropField(const FieldKey& field) {
  auto it = pool().field_index.find(field);
  if (it == pool().field_index.end()) {
    return Status::NotFound("field " + field.ToString());
  }
  FieldLoc loc = it->second;
  Component& comp = pool().components[loc.comp];
  comp.DropColumns({static_cast<size_t>(loc.col)});
  pool().field_index.erase(it);
  for (size_t c = static_cast<size_t>(loc.col); c < comp.NumFields(); ++c) {
    pool().field_index[comp.field(c)] = FieldLoc{loc.comp, static_cast<int32_t>(c)};
  }
  if (comp.NumFields() == 0) {
    pool().alive[loc.comp] = false;
    pool().components[loc.comp] = Component();
  }
  return Status::Ok();
}

Status Wsdt::RenameFieldKey(const FieldKey& from, const FieldKey& to) {
  auto it = pool().field_index.find(from);
  if (it == pool().field_index.end()) {
    return Status::NotFound("field " + from.ToString());
  }
  if (pool().field_index.count(to)) {
    return Status::AlreadyExists("field " + to.ToString());
  }
  FieldLoc loc = it->second;
  pool().components[loc.comp].RenameField(static_cast<size_t>(loc.col), to);
  pool().field_index.erase(it);
  pool().field_index[to] = loc;
  return Status::Ok();
}

Status Wsdt::ReplaceComponent(size_t index, std::vector<Component> parts) {
  if (index >= pool().components.size() || !pool().alive[index]) {
    return Status::InvalidArgument("replacing dead or invalid component");
  }
  std::vector<FieldKey> old_fields = pool().components[index].fields();
  std::vector<FieldKey> new_fields;
  for (const Component& part : parts) {
    for (const FieldKey& f : part.fields()) new_fields.push_back(f);
  }
  auto sorted = [](std::vector<FieldKey> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  if (sorted(old_fields) != sorted(new_fields)) {
    return Status::InvalidArgument(
        "replacement components do not cover the same fields");
  }
  for (const FieldKey& f : old_fields) pool().field_index.erase(f);
  pool().alive[index] = false;
  pool().components[index] = Component();
  for (Component& part : parts) {
    int32_t idx = static_cast<int32_t>(pool().components.size());
    for (size_t c = 0; c < part.NumFields(); ++c) {
      pool().field_index[part.field(c)] = FieldLoc{idx, static_cast<int32_t>(c)};
    }
    pool().components.push_back(std::move(part));
    pool().alive.push_back(true);
  }
  return Status::Ok();
}

void Wsdt::CompactComponents() {
  std::vector<Component> live;
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (pool().alive[i]) live.push_back(std::move(pool().components[i]));
  }
  pool().components = std::move(live);
  pool().alive.assign(pool().components.size(), true);
  pool().field_index.clear();
  for (size_t i = 0; i < pool().components.size(); ++i) {
    for (size_t c = 0; c < pool().components[i].NumFields(); ++c) {
      pool().field_index[pool().components[i].field(c)] =
          FieldLoc{static_cast<int32_t>(i), static_cast<int32_t>(c)};
    }
  }
}

Status Wsdt::Validate() const {
  // Every '?' cell covered by exactly one component column, and vice versa.
  size_t question_cells = 0;
  for (const auto& [name, rel] : templates_) {
    Symbol sym = InternString(name);
    for (size_t r = 0; r < rel.NumRows(); ++r) {
      for (size_t a = 0; a < rel.arity(); ++a) {
        if (rel.row(r)[a].is_question()) {
          ++question_cells;
          FieldKey f(sym, static_cast<TupleId>(r), rel.schema().attr(a).name);
          if (!pool().field_index.count(f)) {
            return Status::Internal("placeholder " + f.ToString() +
                                    " has no component column");
          }
        }
      }
    }
  }
  if (question_cells != pool().field_index.size()) {
    return Status::Internal("component columns (" +
                            std::to_string(pool().field_index.size()) +
                            ") != placeholders (" +
                            std::to_string(question_cells) + ")");
  }
  for (const auto& [field, loc] : pool().field_index) {
    if (loc.comp < 0 || static_cast<size_t>(loc.comp) >= pool().components.size() ||
        !pool().alive[loc.comp]) {
      return Status::Internal("index points at dead component: " +
                              field.ToString());
    }
    const Component& comp = pool().components[loc.comp];
    if (loc.col < 0 || static_cast<size_t>(loc.col) >= comp.NumFields() ||
        comp.field(loc.col) != field) {
      return Status::Internal("index column mismatch: " + field.ToString());
    }
    auto t = templates_.find(std::string(SymbolName(field.rel)));
    if (t == templates_.end() ||
        field.tuple >= static_cast<TupleId>(t->second.NumRows())) {
      return Status::Internal("component field outside template: " +
                              field.ToString());
    }
  }
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    double sum = pool().components[i].ProbSum();
    if (std::abs(sum - 1.0) > 1e-4) {
      return Status::Internal("component probabilities sum to " +
                              std::to_string(sum));
    }
  }
  return Status::Ok();
}

Result<Wsd> Wsdt::ToWsd() const {
  Wsd wsd;
  for (const auto& [name, rel] : templates_) {
    MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(
        name, rel.schema(), static_cast<TupleId>(rel.NumRows())));
  }
  // Uncertain fields: copy components as-is.
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    MAYWSD_RETURN_IF_ERROR(wsd.AddComponent(pool().components[i]));
  }
  // Certain fields: singleton components.
  for (const auto& [name, rel] : templates_) {
    Symbol sym = InternString(name);
    for (size_t r = 0; r < rel.NumRows(); ++r) {
      for (size_t a = 0; a < rel.arity(); ++a) {
        const rel::Value& v = rel.row(r)[a];
        if (v.is_question()) continue;
        MAYWSD_RETURN_IF_ERROR(wsd.AddCertainField(
            FieldKey(sym, static_cast<TupleId>(r), rel.schema().attr(a).name),
            v));
      }
    }
  }
  return wsd;
}

Result<Wsdt> Wsdt::FromWsd(const Wsd& wsd) {
  if (wsd.HasPresenceFields()) {
    // Templates encode conditional presence through ⊥s in value columns;
    // fold the "exists" columns back in first.
    Wsd copy = wsd;
    MAYWSD_RETURN_IF_ERROR(copy.EliminatePresenceFields());
    return FromWsd(copy);
  }
  Wsdt out;
  // Tuple-slot remapping: slots invalid in every world are removed; the
  // rest are renumbered densely as template rows.
  std::map<std::pair<Symbol, TupleId>, TupleId> remap;
  for (const std::string& name : wsd.RelationNames()) {
    MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel, wsd.FindRelation(name));
    rel::Relation tmpl(rel->schema, name);
    std::vector<rel::Value> row(rel->schema.arity());
    TupleId next = 0;
    for (TupleId t = 0; t < rel->max_tuples; ++t) {
      if (!wsd.SlotPresent(*rel, t)) continue;
      bool invalid = false;
      for (size_t a = 0; a < rel->schema.arity(); ++a) {
        FieldKey f(rel->name_sym, t, rel->schema.attr(a).name);
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f));
        const Component& comp = wsd.component(loc.comp);
        size_t col = static_cast<size_t>(loc.col);
        if (comp.ColumnAllBottom(col)) {
          invalid = true;
          break;
        }
        if (comp.ColumnConstant(col)) {
          row[a] = comp.at(0, col);
        } else {
          row[a] = rel::Value::Question();
        }
      }
      if (invalid) continue;
      tmpl.AppendRow(row);
      remap[{rel->name_sym, t}] = next++;
    }
    MAYWSD_RETURN_IF_ERROR(out.AddTemplateRelation(std::move(tmpl)));
  }
  // Components: keep only non-constant columns, remapping tuple ids.
  for (size_t i : wsd.LiveComponents()) {
    const Component& comp = wsd.component(i);
    std::vector<size_t> keep;
    for (size_t c = 0; c < comp.NumFields(); ++c) {
      auto it = remap.find({comp.field(c).rel, comp.field(c).tuple});
      if (it == remap.end()) continue;  // invalid slot dropped entirely
      if (!comp.ColumnConstant(c)) keep.push_back(c);
    }
    if (keep.empty()) continue;
    Component proj = comp.ProjectColumns(keep);
    proj.Compress();
    for (size_t c = 0; c < proj.NumFields(); ++c) {
      FieldKey f = proj.field(c);
      proj.RenameField(c, FieldKey(f.rel, remap.at({f.rel, f.tuple}), f.attr));
    }
    MAYWSD_RETURN_IF_ERROR(out.AddComponent(std::move(proj)));
  }
  return out;
}

WsdtStats Wsdt::ComputeStats() const {
  WsdtStats stats;
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    const Component& comp = pool().components[i];
    ++stats.num_components;
    if (comp.NumFields() > 1) ++stats.num_components_multi;
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      for (size_t c = 0; c < comp.NumFields(); ++c) {
        if (!comp.at(w, c).is_bottom()) ++stats.c_size;
      }
    }
  }
  for (const auto& [name, rel] : templates_) {
    stats.template_rows += rel.NumRows();
  }
  return stats;
}

Result<WsdtStats> Wsdt::StatsForRelation(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, Template(name));
  Symbol sym = InternString(name);
  WsdtStats stats;
  stats.template_rows = tmpl->NumRows();
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    const Component& comp = pool().components[i];
    size_t own_cols = 0;
    for (size_t c = 0; c < comp.NumFields(); ++c) {
      if (comp.field(c).rel != sym) continue;
      ++own_cols;
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        if (!comp.at(w, c).is_bottom()) ++stats.c_size;
      }
    }
    if (own_cols > 0) ++stats.num_components;
    if (own_cols > 1) ++stats.num_components_multi;
  }
  return stats;
}

std::vector<size_t> Wsdt::ComponentSizeHistogram() const {
  std::vector<size_t> hist;
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    size_t size = pool().components[i].NumFields();
    if (hist.size() <= size) hist.resize(size + 1, 0);
    ++hist[size];
  }
  return hist;
}

std::string Wsdt::ToString() const {
  std::ostringstream os;
  for (const auto& [name, rel] : templates_) {
    os << "Template " << rel.ToString();
  }
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    os << "C" << i << " " << pool().components[i].ToString();
  }
  return os.str();
}

}  // namespace maywsd::core
