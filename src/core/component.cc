#include "core/component.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace maywsd::core {

int Component::FindField(const FieldKey& field) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] == field) return static_cast<int>(i);
  }
  return -1;
}

void Component::AddWorld(std::span<const rel::Value> values, double prob) {
  assert(values.size() == fields_.size());
  values_.insert(values_.end(), values.begin(), values.end());
  probs_.push_back(prob);
}

void Component::AddWorld(std::initializer_list<rel::Value> values,
                         double prob) {
  AddWorld(std::span<const rel::Value>(values.begin(), values.size()), prob);
}

double Component::ProbSum() const {
  double sum = 0;
  for (double p : probs_) sum += p;
  return sum;
}

Status Component::NormalizeProbs() {
  double sum = ProbSum();
  if (sum <= 0) {
    return Status::Inconsistent("component has zero probability mass");
  }
  for (double& p : probs_) p /= sum;
  return Status::Ok();
}

void Component::ExtDuplicateColumn(size_t src_col, const FieldKey& new_field) {
  size_t old_width = fields_.size();
  size_t n = NumWorlds();
  fields_.push_back(new_field);
  std::vector<rel::Value> out;
  out.reserve(n * (old_width + 1));
  for (size_t w = 0; w < n; ++w) {
    const rel::Value* row = values_.data() + w * old_width;
    out.insert(out.end(), row, row + old_width);
    out.push_back(row[src_col]);
  }
  values_ = std::move(out);
}

void Component::ExtConstantColumn(const FieldKey& new_field,
                                  const rel::Value& value) {
  size_t old_width = fields_.size();
  size_t n = NumWorlds();
  fields_.push_back(new_field);
  std::vector<rel::Value> out;
  out.reserve(n * (old_width + 1));
  for (size_t w = 0; w < n; ++w) {
    const rel::Value* row = values_.data() + w * old_width;
    out.insert(out.end(), row, row + old_width);
    out.push_back(value);
  }
  values_ = std::move(out);
}

void Component::ExtColumn(const FieldKey& new_field,
                          std::span<const rel::Value> values) {
  size_t old_width = fields_.size();
  size_t n = NumWorlds();
  assert(values.size() == n);
  fields_.push_back(new_field);
  std::vector<rel::Value> out;
  out.reserve(n * (old_width + 1));
  for (size_t w = 0; w < n; ++w) {
    const rel::Value* row = values_.data() + w * old_width;
    out.insert(out.end(), row, row + old_width);
    out.push_back(values[w]);
  }
  values_ = std::move(out);
}

Component Component::Compose(const Component& a, const Component& b) {
  std::vector<FieldKey> fields = a.fields_;
  fields.insert(fields.end(), b.fields_.begin(), b.fields_.end());
  Component out(std::move(fields));
  size_t na = a.NumWorlds();
  size_t nb = b.NumWorlds();
  out.values_.reserve(na * nb * out.fields_.size());
  out.probs_.reserve(na * nb);
  for (size_t i = 0; i < na; ++i) {
    const rel::Value* ra = a.values_.data() + i * a.fields_.size();
    for (size_t j = 0; j < nb; ++j) {
      const rel::Value* rb = b.values_.data() + j * b.fields_.size();
      out.values_.insert(out.values_.end(), ra, ra + a.fields_.size());
      out.values_.insert(out.values_.end(), rb, rb + b.fields_.size());
      out.probs_.push_back(a.probs_[i] * b.probs_[j]);
    }
  }
  return out;
}

void Component::DropColumns(const std::vector<size_t>& cols) {
  if (cols.empty()) return;
  std::vector<bool> drop(fields_.size(), false);
  for (size_t c : cols) drop[c] = true;
  std::vector<size_t> keep;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!drop[i]) keep.push_back(i);
  }
  *this = ProjectColumns(keep);
}

Component Component::ProjectColumns(const std::vector<size_t>& cols) const {
  std::vector<FieldKey> fields;
  fields.reserve(cols.size());
  for (size_t c : cols) fields.push_back(fields_[c]);
  Component out(std::move(fields));
  size_t n = NumWorlds();
  out.values_.reserve(n * cols.size());
  out.probs_ = probs_;
  for (size_t w = 0; w < n; ++w) {
    const rel::Value* row = values_.data() + w * fields_.size();
    for (size_t c : cols) out.values_.push_back(row[c]);
  }
  return out;
}

void Component::RemoveWorld(size_t world) {
  size_t n = NumWorlds();
  size_t k = fields_.size();
  assert(world < n);
  if (world != n - 1) {
    if (k > 0) {
      std::copy(values_.begin() + (n - 1) * k, values_.begin() + n * k,
                values_.begin() + world * k);
    }
    probs_[world] = probs_[n - 1];
  }
  values_.resize((n - 1) * k);
  probs_.resize(n - 1);
}

void Component::Compress() {
  size_t n = NumWorlds();
  size_t k = fields_.size();
  if (n <= 1) return;
  // Hash rows; merge duplicates by summing probabilities.
  struct RowRef {
    const rel::Value* data;
    size_t len;
  };
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  std::vector<rel::Value> out_vals;
  std::vector<double> out_probs;
  auto row_hash = [&](size_t w) {
    size_t seed = 0x165667b1u;
    for (size_t c = 0; c < k; ++c) HashCombine(seed, at(w, c).Hash());
    return seed;
  };
  auto rows_equal_out = [&](size_t out_row, size_t w) {
    for (size_t c = 0; c < k; ++c) {
      if (!(out_vals[out_row * k + c] == at(w, c))) return false;
    }
    return true;
  };
  for (size_t w = 0; w < n; ++w) {
    size_t h = row_hash(w);
    auto& bucket = buckets[h];
    bool merged = false;
    for (size_t out_row : bucket) {
      if (rows_equal_out(out_row, w)) {
        out_probs[out_row] += probs_[w];
        merged = true;
        break;
      }
    }
    if (!merged) {
      size_t out_row = out_probs.size();
      for (size_t c = 0; c < k; ++c) out_vals.push_back(at(w, c));
      out_probs.push_back(probs_[w]);
      bucket.push_back(out_row);
    }
  }
  values_ = std::move(out_vals);
  probs_ = std::move(out_probs);
}

void Component::PropagateBottom() {
  size_t n = NumWorlds();
  size_t k = fields_.size();
  // Columns grouped by (relation, tuple-id): ⊥ spreads within a group.
  for (size_t w = 0; w < n; ++w) {
    for (size_t c = 0; c < k; ++c) {
      if (!at(w, c).is_bottom()) continue;
      const FieldKey& f = fields_[c];
      for (size_t c2 = 0; c2 < k; ++c2) {
        if (fields_[c2].rel == f.rel && fields_[c2].tuple == f.tuple) {
          at(w, c2) = rel::Value::Bottom();
        }
      }
    }
  }
}

bool Component::ColumnAllBottom(size_t col) const {
  size_t n = NumWorlds();
  if (n == 0) return false;
  for (size_t w = 0; w < n; ++w) {
    if (!at(w, col).is_bottom()) return false;
  }
  return true;
}

bool Component::ColumnHasBottom(size_t col) const {
  size_t n = NumWorlds();
  for (size_t w = 0; w < n; ++w) {
    if (at(w, col).is_bottom()) return true;
  }
  return false;
}

bool Component::ColumnConstant(size_t col) const {
  size_t n = NumWorlds();
  if (n == 0) return false;
  for (size_t w = 1; w < n; ++w) {
    if (!(at(w, col) == at(0, col))) return false;
  }
  return true;
}

void Component::RenameField(size_t col, const FieldKey& new_field) {
  fields_[col] = new_field;
}

std::string Component::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t c = 0; c < fields_.size(); ++c) {
    if (c > 0) os << " ";
    os << fields_[c].ToString();
  }
  os << " | P]\n";
  for (size_t w = 0; w < NumWorlds(); ++w) {
    os << "  ";
    for (size_t c = 0; c < fields_.size(); ++c) {
      os << at(w, c) << " ";
    }
    os << "| " << probs_[w] << "\n";
  }
  return os.str();
}

}  // namespace maywsd::core
