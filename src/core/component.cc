#include "core/component.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>
#include <unordered_map>

namespace maywsd::core {

Component Component::Certain(const FieldKey& field, const rel::Value& value) {
  Component out({field});
  out.node_ = store::CertainLeaf(value);
  return out;
}

void Component::PrivatizePayload() {
  if (node_ == nullptr) {
    node_ = store::NewLeaf(fields_.size());
    return;
  }
  node_ = store::MutableLeaf(std::move(node_));
}

int Component::FindField(const FieldKey& field) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] == field) return static_cast<int>(i);
  }
  return -1;
}

void Component::AddWorld(std::span<const rel::Value> values, double prob) {
  assert(values.size() == fields_.size());
  EnsureMutable();
  assert(node_->width == fields_.size());
  node_->values.insert(node_->values.end(), values.begin(), values.end());
  node_->probs.push_back(prob);
  ++node_->worlds;
  store::Account(*node_);
}

void Component::AddWorld(std::initializer_list<rel::Value> values,
                         double prob) {
  AddWorld(std::span<const rel::Value>(values.begin(), values.size()), prob);
}

Status Component::NormalizeProbs() {
  double sum = ProbSum();
  if (sum <= 0) {
    return Status::Inconsistent("component has zero probability mass");
  }
  if (std::abs(sum - 1.0) < kProbEpsilon * kProbEpsilon) return Status::Ok();
  EnsureMutable();
  for (double& p : node_->probs) p /= sum;
  return Status::Ok();
}

void Component::ExtDuplicateColumn(size_t src_col, const FieldKey& new_field) {
  fields_.push_back(new_field);
  if (node_ == nullptr) return;  // no local worlds: the column is virtual
  if (node_->worlds == 0) {
    EnsureMutable();
    ++node_->width;
    return;
  }
  node_ = store::ExtDup(node_, src_col);
}

void Component::ExtConstantColumn(const FieldKey& new_field,
                                  const rel::Value& value) {
  fields_.push_back(new_field);
  if (node_ == nullptr) return;
  if (node_->worlds == 0) {
    EnsureMutable();
    ++node_->width;
    return;
  }
  node_ = store::ExtConst(node_, value);
}

void Component::ExtColumn(const FieldKey& new_field,
                          std::span<const rel::Value> values) {
  assert(values.size() == NumWorlds());
  EnsureMutable();
  size_t old_width = node_->width;
  size_t n = node_->worlds;
  std::vector<rel::Value> out;
  out.reserve(n * (old_width + 1));
  for (size_t w = 0; w < n; ++w) {
    const rel::Value* row = node_->values.data() + w * old_width;
    out.insert(out.end(), row, row + old_width);
    out.push_back(values[w]);
  }
  node_->values = std::move(out);
  ++node_->width;
  fields_.push_back(new_field);
  store::Account(*node_);
}

Component Component::Compose(const Component& a, const Component& b) {
  std::vector<FieldKey> fields = a.fields_;
  fields.insert(fields.end(), b.fields_.begin(), b.fields_.end());
  Component out(std::move(fields));
  out.node_ = store::Compose(a.node_, b.node_);
  return out;
}

void Component::DropColumns(const std::vector<size_t>& cols) {
  if (cols.empty()) return;
  std::vector<bool> drop(fields_.size(), false);
  for (size_t c : cols) drop[c] = true;
  std::vector<size_t> keep;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (!drop[i]) keep.push_back(i);
  }
  *this = ProjectColumns(keep);
}

Component Component::ProjectColumns(const std::vector<size_t>& cols) const {
  std::vector<FieldKey> fields;
  fields.reserve(cols.size());
  for (size_t c : cols) fields.push_back(fields_[c]);
  Component out(std::move(fields));
  if (node_ == nullptr) return out;
  const store::Node& n = store::ForcedRef(node_);
  out.node_ = store::NewLeaf(cols.size());
  out.node_->worlds = n.worlds;
  out.node_->probs = n.probs;
  out.node_->values.reserve(n.worlds * cols.size());
  for (size_t w = 0; w < n.worlds; ++w) {
    const rel::Value* row = n.values.data() + w * n.width;
    for (size_t c : cols) out.node_->values.push_back(row[c]);
  }
  store::Account(*out.node_);
  return out;
}

Component Component::WithFields(std::vector<FieldKey> fields) const {
  assert(fields.size() == fields_.size());
  Component out(std::move(fields));
  out.node_ = node_;
  return out;
}

void Component::RemoveWorld(size_t world) {
  EnsureMutable();
  size_t n = node_->worlds;
  size_t k = node_->width;
  assert(world < n);
  if (world != n - 1) {
    if (k > 0) {
      std::copy(node_->values.begin() + (n - 1) * k,
                node_->values.begin() + n * k,
                node_->values.begin() + world * k);
    }
    node_->probs[world] = node_->probs[n - 1];
  }
  node_->values.resize((n - 1) * k);
  node_->probs.resize(n - 1);
  --node_->worlds;
  store::Account(*node_);
}

void Component::Compress() {
  if (NumWorlds() <= 1) return;
  EnsureMutable();
  size_t n = node_->worlds;
  size_t k = node_->width;
  const std::vector<rel::Value>& vals = node_->values;
  const std::vector<double>& probs = node_->probs;
  // Hash rows; merge duplicates by summing probabilities.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  std::vector<rel::Value> out_vals;
  std::vector<double> out_probs;
  auto row_hash = [&](size_t w) {
    size_t seed = 0x165667b1u;
    for (size_t c = 0; c < k; ++c) HashCombine(seed, vals[w * k + c].Hash());
    return seed;
  };
  auto rows_equal_out = [&](size_t out_row, size_t w) {
    for (size_t c = 0; c < k; ++c) {
      if (!(out_vals[out_row * k + c] == vals[w * k + c])) return false;
    }
    return true;
  };
  for (size_t w = 0; w < n; ++w) {
    size_t h = row_hash(w);
    auto& bucket = buckets[h];
    bool merged = false;
    for (size_t out_row : bucket) {
      if (rows_equal_out(out_row, w)) {
        out_probs[out_row] += probs[w];
        merged = true;
        break;
      }
    }
    if (!merged) {
      size_t out_row = out_probs.size();
      for (size_t c = 0; c < k; ++c) out_vals.push_back(vals[w * k + c]);
      out_probs.push_back(probs[w]);
      bucket.push_back(out_row);
    }
  }
  node_->worlds = out_probs.size();
  node_->values = std::move(out_vals);
  node_->probs = std::move(out_probs);
  store::Account(*node_);
}

void Component::PropagateBottom() {
  size_t k = fields_.size();
  if (k == 0 || node_ == nullptr || node_->worlds == 0) return;
  // Columns grouped by (relation, tuple-id): ⊥ spreads within a group.
  std::vector<int> group(k, 0);
  int num_groups = 0;
  bool multi_column_group = false;
  {
    std::map<std::pair<Symbol, TupleId>, int> ids;
    for (size_t c = 0; c < k; ++c) {
      auto [it, inserted] = ids.emplace(
          std::make_pair(fields_[c].rel, fields_[c].tuple), num_groups);
      if (inserted) {
        ++num_groups;
      } else {
        multi_column_group = true;
      }
      group[c] = it->second;
    }
  }
  // Propagation is a no-op unless some multi-column tuple group exists and
  // some column carries a ⊥ — both probed without forcing.
  if (!multi_column_group) return;
  bool any_bottom = false;
  for (size_t c = 0; c < k && !any_bottom; ++c) {
    any_bottom = store::ColumnHasBottom(node_.get(), c);
  }
  if (!any_bottom) return;

  EnsureMutable();
  size_t n = node_->worlds;
  std::vector<rel::Value>& vals = node_->values;
  std::vector<char> group_bottom(static_cast<size_t>(num_groups));
  for (size_t w = 0; w < n; ++w) {
    std::fill(group_bottom.begin(), group_bottom.end(), 0);
    rel::Value* row = vals.data() + w * k;
    bool any = false;
    for (size_t c = 0; c < k; ++c) {
      if (row[c].is_bottom()) {
        group_bottom[static_cast<size_t>(group[c])] = 1;
        any = true;
      }
    }
    if (!any) continue;
    for (size_t c = 0; c < k; ++c) {
      if (group_bottom[static_cast<size_t>(group[c])] != 0) {
        row[c] = rel::Value::Bottom();
      }
    }
  }
}

void Component::RenameField(size_t col, const FieldKey& new_field) {
  fields_[col] = new_field;
}

std::string Component::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t c = 0; c < fields_.size(); ++c) {
    if (c > 0) os << " ";
    os << fields_[c].ToString();
  }
  os << " | P]\n";
  for (size_t w = 0; w < NumWorlds(); ++w) {
    os << "  ";
    for (size_t c = 0; c < fields_.size(); ++c) {
      os << at(w, c) << " ";
    }
    os << "| " << prob(w) << "\n";
  }
  return os.str();
}

}  // namespace maywsd::core
