#include "core/normalize.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/hash.h"

namespace maywsd::core {

namespace {

/// Hashable key for a sub-row of a component (the values of the columns in
/// `cols` for local world `w`).
std::string SubRowKey(const Component& c, size_t w,
                      const std::vector<size_t>& cols) {
  std::string key;
  key.reserve(cols.size() * 8);
  for (size_t col : cols) {
    const rel::Value& v = c.at(w, col);
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

/// Marginal distribution of the projection of `c` onto `cols`:
/// distinct sub-rows with summed probabilities.
std::unordered_map<std::string, double> Marginal(
    const Component& c, const std::vector<size_t>& cols) {
  std::unordered_map<std::string, double> out;
  for (size_t w = 0; w < c.NumWorlds(); ++w) {
    out[SubRowKey(c, w, cols)] += c.prob(w);
  }
  return out;
}

/// True if splitting `c` into (cols_s, cols_rest) is a valid product
/// decomposition: the distinct-row counts multiply out AND every row's
/// probability is the product of its marginals.
bool IsSeparator(const Component& c, const std::vector<size_t>& cols_s,
                 const std::vector<size_t>& cols_rest) {
  auto ms = Marginal(c, cols_s);
  auto mr = Marginal(c, cols_rest);
  // `c` is compressed (distinct rows), so the set-size test is exact.
  if (ms.size() * mr.size() != c.NumWorlds()) return false;
  for (size_t w = 0; w < c.NumWorlds(); ++w) {
    double p = c.prob(w);
    double expected = ms[SubRowKey(c, w, cols_s)] * mr[SubRowKey(c, w, cols_rest)];
    if (std::abs(p - expected) > 1e-6 * std::max(1.0, std::abs(expected))) {
      return false;
    }
  }
  return true;
}

/// Builds the projected factor component for `cols` (compressed marginal).
Component MakeFactor(const Component& c, const std::vector<size_t>& cols) {
  Component out = c.ProjectColumns(cols);
  out.Compress();
  return out;
}

/// Enumerates subsets of {1..k-1} joined with column 0, by increasing size,
/// looking for the minimal separator containing column 0. k ≤
/// kMaxExactFactorColumns so the 2^(k-1) enumeration is bounded.
bool FindMinimalSeparator(const Component& c, std::vector<size_t>* sep,
                          std::vector<size_t>* rest) {
  size_t k = c.NumFields();
  // Candidate masks over columns 1..k-1 (column 0 always in the separator),
  // ordered by popcount so the first hit is minimal.
  std::vector<uint32_t> masks;
  uint32_t limit = 1u << (k - 1);
  for (uint32_t m = 0; m + 1 < limit; ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    int pa = __builtin_popcount(a);
    int pb = __builtin_popcount(b);
    return pa != pb ? pa < pb : a < b;
  });
  for (uint32_t m : masks) {
    std::vector<size_t> s{0};
    std::vector<size_t> r;
    for (size_t i = 1; i < k; ++i) {
      if (m & (1u << (i - 1))) {
        s.push_back(i);
      } else {
        r.push_back(i);
      }
    }
    if (IsSeparator(c, s, r)) {
      *sep = std::move(s);
      *rest = std::move(r);
      return true;
    }
  }
  return false;
}

/// Splits off columns that are individually independent of the rest —
/// linear number of separator tests; used above kMaxExactFactorColumns.
void FactorFallback(const Component& c, std::vector<Component>* out) {
  size_t k = c.NumFields();
  std::vector<size_t> remaining(k);
  for (size_t i = 0; i < k; ++i) remaining[i] = i;
  Component cur = c;
  bool progress = true;
  while (progress && cur.NumFields() > 1) {
    progress = false;
    for (size_t col = 0; col < cur.NumFields(); ++col) {
      std::vector<size_t> s{col};
      std::vector<size_t> r;
      for (size_t i = 0; i < cur.NumFields(); ++i) {
        if (i != col) r.push_back(i);
      }
      if (IsSeparator(cur, s, r)) {
        out->push_back(MakeFactor(cur, s));
        cur = MakeFactor(cur, r);
        progress = true;
        break;
      }
    }
  }
  out->push_back(std::move(cur));
}

void FactorRecursive(Component c, std::vector<Component>* out) {
  c.Compress();
  if (c.NumFields() <= 1) {
    out->push_back(std::move(c));
    return;
  }
  if (c.NumFields() > kMaxExactFactorColumns) {
    FactorFallback(c, out);
    return;
  }
  std::vector<size_t> sep, rest;
  if (!FindMinimalSeparator(c, &sep, &rest)) {
    out->push_back(std::move(c));  // prime
    return;
  }
  // The minimal separator containing column 0 is a prime block; recurse on
  // the complement only.
  out->push_back(MakeFactor(c, sep));
  FactorRecursive(MakeFactor(c, rest), out);
}

}  // namespace

std::vector<Component> FactorComponent(const Component& component) {
  std::vector<Component> out;
  FactorRecursive(component, &out);
  return out;
}

Status RemoveInvalidTuples(Wsd& wsd) {
  for (const std::string& name : wsd.RelationNames()) {
    MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel, wsd.FindRelation(name));
    Symbol sym = rel->name_sym;
    rel::Schema schema = rel->schema;
    TupleId max_tuples = rel->max_tuples;
    for (TupleId t = 0; t < max_tuples; ++t) {
      bool invalid = false;
      for (size_t a = 0; a < schema.arity() && !invalid; ++a) {
        FieldKey f(sym, t, schema.attr(a).name);
        auto loc_or = wsd.Locate(f);
        if (!loc_or.ok()) break;  // slot already removed
        FieldLoc loc = loc_or.value();
        if (wsd.component(loc.comp).ColumnAllBottom(
                static_cast<size_t>(loc.col))) {
          invalid = true;
        }
      }
      std::vector<FieldKey> presence = wsd.PresenceFieldsOfTuple(*rel, t);
      for (size_t p = 0; p < presence.size() && !invalid; ++p) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(presence[p]));
        if (wsd.component(loc.comp).ColumnAllBottom(
                static_cast<size_t>(loc.col))) {
          invalid = true;
        }
      }
      if (!invalid) continue;
      for (size_t a = 0; a < schema.arity(); ++a) {
        FieldKey f(sym, t, schema.attr(a).name);
        if (wsd.HasField(f)) {
          MAYWSD_RETURN_IF_ERROR(wsd.DropField(f));
        }
      }
      for (const FieldKey& pf : presence) {
        MAYWSD_RETURN_IF_ERROR(wsd.DropField(pf));
      }
    }
  }
  return Status::Ok();
}

Status DecomposeComponents(Wsd& wsd) {
  // Components appended by ReplaceComponent are already prime; remember the
  // current live set before we start.
  std::vector<size_t> live = wsd.LiveComponents();
  for (size_t idx : live) {
    if (!wsd.IsLiveComponent(idx)) continue;
    if (wsd.component(idx).NumFields() <= 1) {
      // Still compress singleton components.
      wsd.mutable_component(idx).Compress();
      continue;
    }
    std::vector<Component> parts = FactorComponent(wsd.component(idx));
    if (parts.size() == 1) {
      wsd.mutable_component(idx) = std::move(parts[0]);
      continue;
    }
    MAYWSD_RETURN_IF_ERROR(wsd.ReplaceComponent(idx, std::move(parts)));
  }
  return Status::Ok();
}

Status CompressComponents(Wsd& wsd) {
  for (size_t idx : wsd.LiveComponents()) {
    wsd.mutable_component(idx).Compress();
  }
  return Status::Ok();
}

Status DropZeroProbabilityWorlds(Wsd& wsd, double threshold) {
  for (size_t idx : wsd.LiveComponents()) {
    Component& comp = wsd.mutable_component(idx);
    for (size_t w = comp.NumWorlds(); w-- > 0;) {
      if (comp.prob(w) <= threshold) comp.RemoveWorld(w);
    }
    if (comp.empty()) {
      return Status::Inconsistent("component lost all probability mass");
    }
    MAYWSD_RETURN_IF_ERROR(comp.NormalizeProbs());
  }
  return Status::Ok();
}

Status NormalizeWsd(Wsd& wsd) {
  MAYWSD_RETURN_IF_ERROR(CompressComponents(wsd));
  MAYWSD_RETURN_IF_ERROR(RemoveInvalidTuples(wsd));
  MAYWSD_RETURN_IF_ERROR(DecomposeComponents(wsd));
  wsd.CompactComponents();
  return Status::Ok();
}

}  // namespace maywsd::core
