#include "core/wsd_algebra.h"

#include <algorithm>
#include <set>

#include "core/engine/plan_driver.h"
#include "core/engine/wsd_backend.h"

namespace maywsd::core {

namespace {

/// Fields of relation `rel` for slot `tid`, one per schema attribute, in
/// schema order; empty if the slot was removed.
std::vector<FieldKey> SlotFields(const Wsd& wsd, const WsdRelation& rel,
                                 TupleId tid) {
  std::vector<FieldKey> out;
  for (size_t a = 0; a < rel.schema.arity(); ++a) {
    FieldKey f(rel.name_sym, tid, rel.schema.attr(a).name);
    if (!wsd.HasField(f)) return {};
    out.push_back(f);
  }
  return out;
}

/// Copies the presence ("exists") fields of slot (src, src_tid) to slot
/// (out, out_tid), creating fresh presence attributes on `out`.
Status CopyPresenceFields(Wsd& wsd, const WsdRelation& src_rel,
                          TupleId src_tid, const std::string& out,
                          TupleId out_tid) {
  for (const FieldKey& pf : wsd.PresenceFieldsOfTuple(src_rel, src_tid)) {
    MAYWSD_ASSIGN_OR_RETURN(FieldKey dst, wsd.MakePresenceField(out, out_tid));
    MAYWSD_RETURN_IF_ERROR(wsd.CopyFieldInto(pf, dst));
  }
  return Status::Ok();
}

}  // namespace

Status WsdCopy(Wsd& wsd, const std::string& src, const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(src));
  rel::Schema schema = r->schema;
  TupleId max_tuples = r->max_tuples;
  Symbol src_sym = r->name_sym;
  MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(out, schema, max_tuples));
  Symbol out_sym = InternString(out);
  for (TupleId t = 0; t < max_tuples; ++t) {
    bool present = false;
    for (size_t a = 0; a < schema.arity(); ++a) {
      FieldKey sf(src_sym, t, schema.attr(a).name);
      if (!wsd.HasField(sf)) continue;  // removed slot stays removed
      present = true;
      MAYWSD_RETURN_IF_ERROR(
          wsd.CopyFieldInto(sf, FieldKey(out_sym, t, schema.attr(a).name)));
    }
    if (present) {
      MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* src_rel,
                              wsd.FindRelation(src));
      MAYWSD_RETURN_IF_ERROR(CopyPresenceFields(wsd, *src_rel, t, out, t));
    }
  }
  return Status::Ok();
}

Status WsdSelectConst(Wsd& wsd, const std::string& src, const std::string& out,
                      const std::string& attr, rel::CmpOp op,
                      const rel::Value& constant) {
  MAYWSD_RETURN_IF_ERROR(WsdCopy(wsd, src, out));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(out));
  if (!r->schema.Contains(attr)) {
    return Status::NotFound("no attribute " + attr + " in " + src);
  }
  Symbol attr_sym = InternString(attr);
  for (TupleId t = 0; t < r->max_tuples; ++t) {
    FieldKey f(r->name_sym, t, attr_sym);
    auto loc_or = wsd.Locate(f);
    if (!loc_or.ok()) continue;  // removed slot
    FieldLoc loc = loc_or.value();
    Component& comp = wsd.mutable_component(loc.comp);
    size_t col = static_cast<size_t>(loc.col);
    // Certain column: one evaluation decides every local world. A pass is
    // a no-op (no forcing, no write); a fail deletes the tuple everywhere.
    if (const rel::Value* cv = comp.ColumnConstantValue(col)) {
      if (cv->Satisfies(op, constant)) continue;
    }
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (!comp.at(w, col).Satisfies(op, constant)) {
        comp.at(w, col) = rel::Value::Bottom();
      }
    }
    comp.PropagateBottom();
  }
  return Status::Ok();
}

Status WsdSelectAttrAttr(Wsd& wsd, const std::string& src,
                         const std::string& out, const std::string& attr_a,
                         rel::CmpOp op, const std::string& attr_b) {
  MAYWSD_RETURN_IF_ERROR(WsdCopy(wsd, src, out));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(out));
  if (!r->schema.Contains(attr_a) || !r->schema.Contains(attr_b)) {
    return Status::NotFound("no attribute " + attr_a + "/" + attr_b + " in " +
                            src);
  }
  Symbol a_sym = InternString(attr_a);
  Symbol b_sym = InternString(attr_b);
  for (TupleId t = 0; t < r->max_tuples; ++t) {
    FieldKey fa(r->name_sym, t, a_sym);
    FieldKey fb(r->name_sym, t, b_sym);
    auto la_or = wsd.Locate(fa);
    if (!la_or.ok()) continue;
    FieldLoc la = la_or.value();
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc lb, wsd.Locate(fb));
    if (la.comp != lb.comp) {
      // Certain-column fast paths: a ⊥ in any one field deletes the tuple
      // (EnumerateWorlds), so the predicate can be decided — and a failing
      // world marked — inside a single component, with no compose.
      const Component& ca_ref = wsd.component(la.comp);
      const Component& cb_ref = wsd.component(lb.comp);
      const rel::Value* av =
          ca_ref.ColumnConstantValue(static_cast<size_t>(la.col));
      const rel::Value* bv =
          cb_ref.ColumnConstantValue(static_cast<size_t>(lb.col));
      if (av != nullptr && bv != nullptr) {
        if (av->Satisfies(op, *bv)) continue;  // holds in every world
        // Fails everywhere: delete the tuple in all of A's local worlds.
        Component& comp = wsd.mutable_component(la.comp);
        size_t col = static_cast<size_t>(la.col);
        for (size_t w = 0; w < comp.NumWorlds(); ++w) {
          comp.at(w, col) = rel::Value::Bottom();
        }
        comp.PropagateBottom();
        continue;
      }
      if (av != nullptr || bv != nullptr) {
        // Exactly one side is certain: the outcome depends only on the
        // uncertain component's local world, so mark ⊥ there.
        const rel::Value* cv = av != nullptr ? av : bv;
        FieldLoc lu = av != nullptr ? lb : la;
        Component& comp = wsd.mutable_component(lu.comp);
        size_t col = static_cast<size_t>(lu.col);
        bool a_const = av != nullptr;
        for (size_t w = 0; w < comp.NumWorlds(); ++w) {
          const rel::Value& uv = comp.at(w, col);
          bool pass = a_const ? cv->Satisfies(op, uv) : uv.Satisfies(op, *cv);
          if (!pass) comp.at(w, col) = rel::Value::Bottom();
        }
        comp.PropagateBottom();
        continue;
      }
      MAYWSD_RETURN_IF_ERROR(
          wsd.ComposeInPlace(static_cast<size_t>(la.comp),
                             static_cast<size_t>(lb.comp)));
      MAYWSD_ASSIGN_OR_RETURN(la, wsd.Locate(fa));
      MAYWSD_ASSIGN_OR_RETURN(lb, wsd.Locate(fb));
    }
    Component& comp = wsd.mutable_component(la.comp);
    size_t ca = static_cast<size_t>(la.col);
    size_t cb = static_cast<size_t>(lb.col);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (!comp.at(w, ca).Satisfies(op, comp.at(w, cb))) {
        comp.at(w, ca) = rel::Value::Bottom();
      }
    }
    comp.PropagateBottom();
  }
  return Status::Ok();
}

Status WsdProduct(Wsd& wsd, const std::string& left, const std::string& right,
                  const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* l, wsd.FindRelation(left));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(right));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema out_schema,
                          l->schema.Concat(r->schema));
  TupleId lmax = l->max_tuples;
  TupleId rmax = r->max_tuples;
  rel::Schema l_schema = l->schema;
  rel::Schema r_schema = r->schema;
  MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(out, out_schema, lmax * rmax));
  Symbol out_sym = InternString(out);
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* l2, wsd.FindRelation(left));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r2, wsd.FindRelation(right));
  for (TupleId i = 0; i < lmax; ++i) {
    std::vector<FieldKey> lf = SlotFields(wsd, *l2, i);
    if (lf.empty()) continue;
    for (TupleId j = 0; j < rmax; ++j) {
      std::vector<FieldKey> rf = SlotFields(wsd, *r2, j);
      if (rf.empty()) continue;
      TupleId tij = i * rmax + j;
      for (size_t a = 0; a < l_schema.arity(); ++a) {
        MAYWSD_RETURN_IF_ERROR(wsd.CopyFieldInto(
            lf[a], FieldKey(out_sym, tij, l_schema.attr(a).name)));
      }
      for (size_t a = 0; a < r_schema.arity(); ++a) {
        MAYWSD_RETURN_IF_ERROR(wsd.CopyFieldInto(
            rf[a], FieldKey(out_sym, tij, r_schema.attr(a).name)));
      }
      // tᵢⱼ exists iff both factors exist: inherit both presence sets.
      MAYWSD_RETURN_IF_ERROR(CopyPresenceFields(wsd, *l2, i, out, tij));
      MAYWSD_RETURN_IF_ERROR(CopyPresenceFields(wsd, *r2, j, out, tij));
    }
  }
  return Status::Ok();
}

Status WsdUnion(Wsd& wsd, const std::string& left, const std::string& right,
                const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* l, wsd.FindRelation(left));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(right));
  if (l->schema != r->schema) {
    return Status::InvalidArgument("union of incompatible schemas: " +
                                   l->schema.ToString() + " vs " +
                                   r->schema.ToString());
  }
  rel::Schema schema = l->schema;
  TupleId lmax = l->max_tuples;
  TupleId rmax = r->max_tuples;
  MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(out, schema, lmax + rmax));
  Symbol out_sym = InternString(out);
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* l2, wsd.FindRelation(left));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r2, wsd.FindRelation(right));
  for (TupleId i = 0; i < lmax; ++i) {
    std::vector<FieldKey> lf = SlotFields(wsd, *l2, i);
    if (lf.empty()) continue;
    for (size_t a = 0; a < schema.arity(); ++a) {
      MAYWSD_RETURN_IF_ERROR(wsd.CopyFieldInto(
          lf[a], FieldKey(out_sym, i, schema.attr(a).name)));
    }
    MAYWSD_RETURN_IF_ERROR(CopyPresenceFields(wsd, *l2, i, out, i));
  }
  for (TupleId j = 0; j < rmax; ++j) {
    std::vector<FieldKey> rf = SlotFields(wsd, *r2, j);
    if (rf.empty()) continue;
    for (size_t a = 0; a < schema.arity(); ++a) {
      MAYWSD_RETURN_IF_ERROR(wsd.CopyFieldInto(
          rf[a], FieldKey(out_sym, lmax + j, schema.attr(a).name)));
    }
    MAYWSD_RETURN_IF_ERROR(CopyPresenceFields(wsd, *r2, j, out, lmax + j));
  }
  return Status::Ok();
}

Status WsdProject(Wsd& wsd, const std::string& src, const std::string& out,
                  const std::vector<std::string>& attrs) {
  MAYWSD_RETURN_IF_ERROR(WsdCopy(wsd, src, out));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(out));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema out_schema, r->schema.Project(attrs));
  Symbol out_sym = r->name_sym;
  TupleId max_tuples = r->max_tuples;
  rel::Schema full_schema = r->schema;

  std::set<Symbol> keep;
  for (const std::string& a : attrs) keep.insert(InternString(a));
  std::vector<Symbol> drop_attrs;
  for (size_t a = 0; a < full_schema.arity(); ++a) {
    Symbol s = full_schema.attr(a).name;
    if (!keep.count(s)) drop_attrs.push_back(s);
  }

  for (TupleId t = 0; t < max_tuples; ++t) {
    // Skip removed slots.
    FieldKey probe(out_sym, t, full_schema.attr(0).name);
    if (!wsd.HasField(probe)) continue;

    // Fixpoint: while some dropped attribute with a ⊥ lives outside every
    // kept component of this tuple, compose it into the first kept one
    // (Figure 9's project[U] inner loop).
    while (true) {
      std::set<int32_t> keep_comps;
      for (Symbol a : keep) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc,
                                wsd.Locate(FieldKey(out_sym, t, a)));
        keep_comps.insert(loc.comp);
      }
      bool composed = false;
      for (Symbol b : drop_attrs) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc,
                                wsd.Locate(FieldKey(out_sym, t, b)));
        if (keep_comps.count(loc.comp)) continue;
        const Component& comp = wsd.component(loc.comp);
        if (!comp.ColumnHasBottom(static_cast<size_t>(loc.col))) continue;
        MAYWSD_RETURN_IF_ERROR(wsd.ComposeInPlace(
            static_cast<size_t>(*keep_comps.begin()),
            static_cast<size_t>(loc.comp)));
        composed = true;
        break;
      }
      if (!composed) break;
    }

    // Propagate ⊥ within every component touching this tuple, so dropping
    // the non-projected columns cannot resurrect deleted tuples.
    std::set<int32_t> tuple_comps;
    for (size_t a = 0; a < full_schema.arity(); ++a) {
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc,
          wsd.Locate(FieldKey(out_sym, t, full_schema.attr(a).name)));
      tuple_comps.insert(loc.comp);
    }
    for (int32_t c : tuple_comps) {
      wsd.mutable_component(static_cast<size_t>(c)).PropagateBottom();
    }
    for (Symbol b : drop_attrs) {
      MAYWSD_RETURN_IF_ERROR(wsd.DropField(FieldKey(out_sym, t, b)));
    }
  }
  return wsd.UpdateRelationSchema(out, out_schema);
}

Status WsdProjectExists(Wsd& wsd, const std::string& src,
                        const std::string& out,
                        const std::vector<std::string>& attrs) {
  MAYWSD_RETURN_IF_ERROR(WsdCopy(wsd, src, out));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(out));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema out_schema, r->schema.Project(attrs));
  Symbol out_sym = r->name_sym;
  TupleId max_tuples = r->max_tuples;
  rel::Schema full_schema = r->schema;

  std::set<Symbol> keep;
  for (const std::string& a : attrs) keep.insert(InternString(a));
  std::vector<Symbol> drop_attrs;
  for (size_t a = 0; a < full_schema.arity(); ++a) {
    Symbol s = full_schema.attr(a).name;
    if (!keep.count(s)) drop_attrs.push_back(s);
  }

  for (TupleId t = 0; t < max_tuples; ++t) {
    FieldKey probe(out_sym, t, full_schema.attr(0).name);
    if (!wsd.HasField(probe)) continue;

    std::set<int32_t> keep_comps;
    for (Symbol a : keep) {
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc,
                              wsd.Locate(FieldKey(out_sym, t, a)));
      keep_comps.insert(loc.comp);
    }
    for (Symbol b : drop_attrs) {
      FieldKey f(out_sym, t, b);
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f));
      Component& comp = wsd.mutable_component(loc.comp);
      size_t col = static_cast<size_t>(loc.col);
      if (comp.ColumnHasBottom(col) && !keep_comps.count(loc.comp)) {
        // Keep the ⊥ pattern as an extra-schema presence field: rename the
        // column in place and collapse its values to a marker.
        MAYWSD_ASSIGN_OR_RETURN(FieldKey pf, wsd.MakePresenceField(out, t));
        MAYWSD_RETURN_IF_ERROR(wsd.RenameField(f, pf));
        for (size_t w = 0; w < comp.NumWorlds(); ++w) {
          if (!comp.at(w, col).is_bottom()) {
            comp.at(w, col) = rel::Value::Int(1);
          }
        }
      } else {
        // ⊥s (if any) live next to kept fields: propagate, then drop.
        comp.PropagateBottom();
        MAYWSD_RETURN_IF_ERROR(wsd.DropField(f));
      }
    }
  }
  return wsd.UpdateRelationSchema(out, out_schema);
}

Status WsdRename(Wsd& wsd, const std::string& src, const std::string& out,
                 const std::vector<std::pair<std::string, std::string>>&
                     renames) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(src));
  rel::Schema out_schema = r->schema;
  for (const auto& [from, to] : renames) {
    MAYWSD_ASSIGN_OR_RETURN(out_schema, out_schema.Rename(from, to));
  }
  rel::Schema src_schema = r->schema;
  Symbol src_sym = r->name_sym;
  TupleId max_tuples = r->max_tuples;
  MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(out, out_schema, max_tuples));
  Symbol out_sym = InternString(out);
  for (TupleId t = 0; t < max_tuples; ++t) {
    bool present = false;
    for (size_t a = 0; a < src_schema.arity(); ++a) {
      FieldKey sf(src_sym, t, src_schema.attr(a).name);
      if (!wsd.HasField(sf)) continue;
      present = true;
      MAYWSD_RETURN_IF_ERROR(wsd.CopyFieldInto(
          sf, FieldKey(out_sym, t, out_schema.attr(a).name)));
    }
    if (present) {
      MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* src_rel,
                              wsd.FindRelation(src));
      MAYWSD_RETURN_IF_ERROR(CopyPresenceFields(wsd, *src_rel, t, out, t));
    }
  }
  return Status::Ok();
}

Status WsdDifference(Wsd& wsd, const std::string& left,
                     const std::string& right, const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* l, wsd.FindRelation(left));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(right));
  if (l->schema != r->schema) {
    return Status::InvalidArgument("difference of incompatible schemas: " +
                                   l->schema.ToString() + " vs " +
                                   r->schema.ToString());
  }
  MAYWSD_RETURN_IF_ERROR(WsdCopy(wsd, left, out));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* p, wsd.FindRelation(out));
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* s, wsd.FindRelation(right));
  rel::Schema schema = p->schema;
  Symbol p_sym = p->name_sym;
  Symbol s_sym = s->name_sym;
  TupleId pmax = p->max_tuples;
  TupleId smax = s->max_tuples;

  for (TupleId i = 0; i < pmax; ++i) {
    FieldKey probe(p_sym, i, schema.attr(0).name);
    if (!wsd.HasField(probe)) continue;
    for (TupleId j = 0; j < smax; ++j) {
      FieldKey sprobe(s_sym, j, schema.attr(0).name);
      if (!wsd.HasField(sprobe)) continue;
      // Certain fast path: when every column the subtraction reads is
      // constant (P.tᵢ and S.tⱼ attributes plus S.tⱼ's presence fields),
      // the decision is made once with no compose — a ⊥ in any single
      // field deletes P.tᵢ (EnumerateWorlds), so a positive decision marks
      // one column of P.tᵢ across its own component's local worlds.
      {
        bool all_const = true;
        bool equal = true;
        bool s_present = true;
        FieldLoc lp0{};
        for (size_t a = 0; a < schema.arity(); ++a) {
          MAYWSD_ASSIGN_OR_RETURN(
              FieldLoc lp,
              wsd.Locate(FieldKey(p_sym, i, schema.attr(a).name)));
          MAYWSD_ASSIGN_OR_RETURN(
              FieldLoc ls,
              wsd.Locate(FieldKey(s_sym, j, schema.attr(a).name)));
          if (a == 0) lp0 = lp;
          const rel::Value* pv = wsd.component(lp.comp).ColumnConstantValue(
              static_cast<size_t>(lp.col));
          const rel::Value* sv = wsd.component(ls.comp).ColumnConstantValue(
              static_cast<size_t>(ls.col));
          if (pv == nullptr || sv == nullptr) {
            all_const = false;
            break;
          }
          if (sv->is_bottom()) s_present = false;
          if (!(*pv == *sv)) equal = false;
        }
        if (all_const) {
          for (const FieldKey& pf : wsd.PresenceFieldsOfTuple(*s, j)) {
            MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(pf));
            const rel::Value* v = wsd.component(loc.comp).ColumnConstantValue(
                static_cast<size_t>(loc.col));
            if (v == nullptr) {
              all_const = false;
              break;
            }
            if (v->is_bottom()) s_present = false;
          }
        }
        if (all_const) {
          if (equal && s_present) {
            Component& comp = wsd.mutable_component(lp0.comp);
            size_t col = static_cast<size_t>(lp0.col);
            for (size_t w = 0; w < comp.NumWorlds(); ++w) {
              comp.at(w, col) = rel::Value::Bottom();
            }
            comp.PropagateBottom();
          }
          continue;
        }
      }
      // Compose every component holding a field of P.tᵢ or S.tⱼ (including
      // their presence fields, which decide existence).
      std::set<int32_t> comps;
      for (size_t a = 0; a < schema.arity(); ++a) {
        MAYWSD_ASSIGN_OR_RETURN(
            FieldLoc lp, wsd.Locate(FieldKey(p_sym, i, schema.attr(a).name)));
        MAYWSD_ASSIGN_OR_RETURN(
            FieldLoc ls, wsd.Locate(FieldKey(s_sym, j, schema.attr(a).name)));
        comps.insert(lp.comp);
        comps.insert(ls.comp);
      }
      std::vector<FieldKey> s_presence = wsd.PresenceFieldsOfTuple(*s, j);
      for (const FieldKey& pf : wsd.PresenceFieldsOfTuple(*p, i)) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(pf));
        comps.insert(loc.comp);
      }
      for (const FieldKey& pf : s_presence) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(pf));
        comps.insert(loc.comp);
      }
      auto it = comps.begin();
      size_t target = static_cast<size_t>(*it);
      for (++it; it != comps.end(); ++it) {
        MAYWSD_RETURN_IF_ERROR(
            wsd.ComposeInPlace(target, static_cast<size_t>(*it)));
      }
      // Mark P.tᵢ as deleted in local worlds where it equals S.tⱼ.
      std::vector<size_t> p_cols, s_cols;
      for (size_t a = 0; a < schema.arity(); ++a) {
        MAYWSD_ASSIGN_OR_RETURN(
            FieldLoc lp, wsd.Locate(FieldKey(p_sym, i, schema.attr(a).name)));
        MAYWSD_ASSIGN_OR_RETURN(
            FieldLoc ls, wsd.Locate(FieldKey(s_sym, j, schema.attr(a).name)));
        p_cols.push_back(static_cast<size_t>(lp.col));
        s_cols.push_back(static_cast<size_t>(ls.col));
        target = static_cast<size_t>(lp.comp);
      }
      std::vector<size_t> s_presence_cols;
      for (const FieldKey& pf : s_presence) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(pf));
        s_presence_cols.push_back(static_cast<size_t>(loc.col));
      }
      Component& comp = wsd.mutable_component(target);
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        bool equal = true;
        bool s_present = true;
        for (size_t c : s_presence_cols) {
          if (comp.at(w, c).is_bottom()) s_present = false;
        }
        for (size_t a = 0; a < schema.arity(); ++a) {
          if (comp.at(w, s_cols[a]).is_bottom()) s_present = false;
          if (!(comp.at(w, p_cols[a]) == comp.at(w, s_cols[a]))) {
            equal = false;
            break;
          }
        }
        if (equal && s_present) {
          for (size_t a = 0; a < schema.arity(); ++a) {
            comp.at(w, p_cols[a]) = rel::Value::Bottom();
          }
        }
      }
      comp.PropagateBottom();
    }
  }
  return Status::Ok();
}

Status WsdEvaluate(Wsd& wsd, const rel::Plan& plan, const std::string& out,
                   bool keep_temps) {
  engine::WsdBackend backend(wsd);
  return engine::Evaluate(backend, plan, out, keep_temps);
}

}  // namespace maywsd::core
