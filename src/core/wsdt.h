// Wsdt: world-set decomposition with template relations (Section 3,
// Figures 5 and 8) — the representation the paper's experiments run on
// (there under its uniform relational encoding, UWSDT; see uniform.h for
// the C/F/W encoding and conversions).
//
// A template relation R⁰ stores, once, everything the worlds agree on; a
// field whose value differs across worlds holds the placeholder '?' and its
// possible values live in a component column keyed by (R, tid, A). Tuple
// slots are template rows (tid = row number). Worlds of differing sizes are
// represented by ⊥ values inside components ("a placeholder has different
// amounts of values in different worlds").
//
// Copying a Wsdt is O(relations): template relations share their row
// storage (rel::Relation is internally copy-on-write) and the component
// pool sits behind one copy-on-write handle, privatized wholesale on the
// first mutating call — the basis of O(1) Session::Snapshot()/Fork().

#ifndef MAYWSD_CORE_WSDT_H_
#define MAYWSD_CORE_WSDT_H_

#include <map>
#include <string>
#include <vector>

#include "common/cow.h"
#include "common/status.h"
#include "rel/relation.h"
#include "core/component.h"
#include "core/field.h"
#include "core/wsd.h"

namespace maywsd::core {

/// Size/characteristics record matching the rows of Figure 27.
struct WsdtStats {
  size_t num_components = 0;        ///< #comp   — live components
  size_t num_components_multi = 0;  ///< #comp>1 — components with >1 placeholder
  size_t c_size = 0;                ///< |C|     — (FID,LWID,VAL) entries
  size_t template_rows = 0;         ///< |R|     — total template tuples
};

/// A WSDT: template relations plus components over the '?' fields.
class Wsdt {
 public:
  Wsdt() = default;

  /// Adds a template relation; cells may contain '?'. Every '?' must later
  /// be covered by exactly one component column (checked by Validate()).
  Status AddTemplateRelation(rel::Relation relation);

  Result<const rel::Relation*> Template(const std::string& name) const;
  Result<rel::Relation*> MutableTemplate(const std::string& name);
  bool HasRelation(const std::string& name) const;
  std::vector<std::string> RelationNames() const;
  Status DropRelation(const std::string& name);

  /// Registers a component over '?' fields of template relations.
  Status AddComponent(Component component);

  size_t NumComponentSlots() const { return pool().components.size(); }
  bool IsLiveComponent(size_t i) const { return pool().alive[i]; }
  const Component& component(size_t i) const { return pool().components[i]; }
  Component& mutable_component(size_t i) { return pool().components[i]; }
  std::vector<size_t> LiveComponents() const;

  Result<FieldLoc> Locate(const FieldKey& field) const;
  bool HasField(const FieldKey& field) const;

  /// Composes component `b` into `a` (paper's compose); `b` dies.
  Status ComposeInPlace(size_t a, size_t b);

  /// Appends to the component of `src` a duplicate column registered as
  /// `dst` (the ext primitive across template copies).
  Status CopyFieldInto(const FieldKey& src, const FieldKey& dst);

  /// Registers `dst` as a fresh single-column component with the given
  /// per-local-world values and probabilities.
  Status AddFieldComponent(const FieldKey& dst,
                           std::vector<rel::Value> values,
                           std::vector<double> probs);

  /// Appends a derived column (one value per local world) to an existing
  /// live component, registering it under `dst` (used to materialize
  /// presence helpers correlated with the component).
  Status AddColumnToComponent(size_t comp_index, const FieldKey& dst,
                              std::span<const rel::Value> values);

  /// Drops one component column (zero-column components die).
  Status DropField(const FieldKey& field);

  /// Re-registers the column of `from` under `to` (same component/values).
  Status RenameFieldKey(const FieldKey& from, const FieldKey& to);

  /// Replaces a live component with components covering the same fields.
  Status ReplaceComponent(size_t index, std::vector<Component> parts);

  void CompactComponents();

  /// Structural invariants: every '?' covered exactly once, every component
  /// column points at a '?' cell, probabilities sum to 1.
  Status Validate() const;

  /// Conversions. ToWsd() expands template fields into singleton
  /// components; FromWsd() pulls certain fields into templates (slots that
  /// are invalid in all worlds are removed first).
  Result<Wsd> ToWsd() const;
  static Result<Wsdt> FromWsd(const Wsd& wsd);

  /// Figure 27 characteristics.
  WsdtStats ComputeStats() const;

  /// Figure 27 characteristics restricted to one relation: components that
  /// carry at least one of its placeholders, multi-placeholder counts and
  /// |C| over its columns only, |R| = its template rows.
  Result<WsdtStats> StatsForRelation(const std::string& name) const;

  /// Figure 28: histogram[i] = number of components with i placeholders
  /// (index 0 unused).
  std::vector<size_t> ComponentSizeHistogram() const;

  std::string ToString() const;

 private:
  /// Component pool shared on copy; see Wsd::Pool for the access contract.
  struct Pool {
    std::vector<Component> components;
    std::vector<bool> alive;
    std::unordered_map<FieldKey, FieldLoc> field_index;
  };

  const Pool& pool() const { return pool_.get(); }
  Pool& pool() { return pool_.Mutable(); }

  std::map<std::string, rel::Relation> templates_;
  Cow<Pool> pool_;
};

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSDT_H_
