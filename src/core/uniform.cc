#include "core/uniform.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>

#include "rel/eval.h"
#include "rel/index.h"
#include "core/wsdt_algebra.h"

namespace maywsd::core {

namespace {

rel::Schema CSchema() {
  return rel::Schema({rel::Attribute("REL", rel::AttrType::kString),
                      rel::Attribute("TID", rel::AttrType::kInt),
                      rel::Attribute("ATTR", rel::AttrType::kString),
                      rel::Attribute("LWID", rel::AttrType::kInt),
                      rel::Attribute("VAL", rel::AttrType::kAny)});
}

rel::Schema FSchema() {
  return rel::Schema({rel::Attribute("REL", rel::AttrType::kString),
                      rel::Attribute("TID", rel::AttrType::kInt),
                      rel::Attribute("ATTR", rel::AttrType::kString),
                      rel::Attribute("CID", rel::AttrType::kInt)});
}

rel::Schema WSchema() {
  return rel::Schema({rel::Attribute("CID", rel::AttrType::kInt),
                      rel::Attribute("LWID", rel::AttrType::kInt),
                      rel::Attribute("PR", rel::AttrType::kDouble)});
}

/// Cap on the local-world count of a component product (select[AθB] over
/// placeholders of independent components) — the same blow-up class the
/// world-enumeration guards protect against.
constexpr size_t kMaxComposedWorlds = size_t{1} << 20;

/// Steps 4–6 of the Figure 16 select rewritings, shared by the Aθc and AθB
/// variants: propagate-⊥ among same-component same-tuple placeholders of
/// `out_rel` (a placeholder losing its value in a world pads the whole
/// tuple there), then remove tuples whose `required_attrs` placeholder
/// lost every value, and finally register the template.
Status FinishUniformSelect(rel::Database& db, rel::Relation p0,
                           const std::string& out_rel,
                           const std::vector<std::string>& required_attrs) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Value out_sym = rel::Value::String(out_rel);
  // Step 4: remove incomplete world tuples — if placeholder (P,t,X) shares
  // component k with (P,t,Y) and world w has no value for Y, drop the other
  // placeholders' values for w too. (This is the relational propagate-⊥.)
  // Index the P-entries of C and F.
  std::map<int64_t, std::vector<std::pair<int64_t, std::string>>> cid_fields;
  for (size_t r = 0; r < f_rel->NumRows(); ++r) {
    rel::TupleRef row = f_rel->row(r);
    if (!(row[0] == out_sym)) continue;
    cid_fields[row[3].AsInt()].push_back(
        {row[1].AsInt(), std::string(row[2].AsStringView())});
  }
  // Values present per (t, attr): set of worlds.
  std::map<std::pair<int64_t, std::string>, std::set<int64_t>> have;
  for (size_t r = 0; r < c_rel->NumRows(); ++r) {
    rel::TupleRef row = c_rel->row(r);
    if (!(row[0] == out_sym)) continue;
    have[{row[1].AsInt(), std::string(row[2].AsStringView())}].insert(
        row[3].AsInt());
  }
  // Worlds to drop per (t, attr): those where a same-tuple same-component
  // sibling lacks a value.
  std::map<std::pair<int64_t, std::string>, std::set<int64_t>> drop;
  for (const auto& [cid, fields] : cid_fields) {
    for (const auto& fx : fields) {
      for (const auto& fy : fields) {
        if (fx == fy || fx.first != fy.first) continue;
        // Worlds where fx has a value but fy does not.
        const std::set<int64_t>& wx = have[fx];
        const std::set<int64_t>& wy = have[fy];
        for (int64_t w : wx) {
          if (!wy.count(w)) drop[fx].insert(w);
        }
      }
    }
  }
  if (!drop.empty()) {
    rel::Relation next(c_rel->schema(), c_rel->name());
    for (size_t r = 0; r < c_rel->NumRows(); ++r) {
      rel::TupleRef row = c_rel->row(r);
      if (row[0] == out_sym) {
        auto it = drop.find(
            {row[1].AsInt(), std::string(row[2].AsStringView())});
        if (it != drop.end() && it->second.count(row[3].AsInt())) continue;
      }
      next.AppendRow(row.span());
    }
    *c_rel = std::move(next);
    // Recompute surviving worlds.
    have.clear();
    for (size_t r = 0; r < c_rel->NumRows(); ++r) {
      rel::TupleRef row = c_rel->row(r);
      if (!(row[0] == out_sym)) continue;
      have[{row[1].AsInt(), std::string(row[2].AsStringView())}].insert(
          row[3].AsInt());
    }
  }
  // Steps 5–6: tuples whose required placeholder lost every value disappear;
  // drop their placeholders from F and their values from C.
  std::set<int64_t> dead_tids;
  for (const std::string& attr : required_attrs) {
    auto a_idx = p0.schema().IndexOf(attr);
    if (!a_idx) return Status::NotFound("attribute " + attr);
    for (size_t r = 0; r < p0.NumRows(); ++r) {
      rel::TupleRef row = p0.row(r);
      if (!row[*a_idx].is_question()) continue;
      if (have[{row[0].AsInt(), attr}].empty()) {
        dead_tids.insert(row[0].AsInt());
      }
    }
  }
  if (!dead_tids.empty()) {
    rel::Relation next_c(c_rel->schema(), c_rel->name());
    for (size_t r = 0; r < c_rel->NumRows(); ++r) {
      rel::TupleRef row = c_rel->row(r);
      if (row[0] == out_sym && dead_tids.count(row[1].AsInt())) continue;
      next_c.AppendRow(row.span());
    }
    *c_rel = std::move(next_c);
    rel::Relation next_f(f_rel->schema(), f_rel->name());
    for (size_t r = 0; r < f_rel->NumRows(); ++r) {
      rel::TupleRef row = f_rel->row(r);
      if (row[0] == out_sym && dead_tids.count(row[1].AsInt())) continue;
      next_f.AppendRow(row.span());
    }
    *f_rel = std::move(next_f);
    rel::Relation next_p(p0.schema(), p0.name());
    for (size_t r = 0; r < p0.NumRows(); ++r) {
      if (dead_tids.count(p0.row(r)[0].AsInt())) continue;
      next_p.AppendRow(p0.row(r).span());
    }
    p0 = std::move(next_p);
  }
  return db.AddRelation(std::move(p0));
}

}  // namespace

Result<rel::Database> ExportUniform(const Wsdt& wsdt) {
  rel::Database db;
  // Template relations with an explicit TID column.
  for (const std::string& name : wsdt.RelationNames()) {
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, wsdt.Template(name));
    std::vector<rel::Attribute> attrs;
    attrs.emplace_back(kTidColumn, rel::AttrType::kInt);
    for (const rel::Attribute& a : tmpl->schema().attrs()) attrs.push_back(a);
    rel::Relation out{rel::Schema(std::move(attrs)), name};
    std::vector<rel::Value> row(out.arity());
    for (size_t r = 0; r < tmpl->NumRows(); ++r) {
      row[0] = rel::Value::Int(static_cast<int64_t>(r));
      for (size_t a = 0; a < tmpl->arity(); ++a) row[a + 1] = tmpl->row(r)[a];
      out.AppendRow(row);
    }
    MAYWSD_RETURN_IF_ERROR(db.AddRelation(std::move(out)));
  }
  // System relations.
  rel::Relation c_rel(CSchema(), kUniformC);
  rel::Relation f_rel(FSchema(), kUniformF);
  rel::Relation w_rel(WSchema(), kUniformW);
  int64_t cid = 0;
  for (size_t i : wsdt.LiveComponents()) {
    const Component& comp = wsdt.component(i);
    for (size_t col = 0; col < comp.NumFields(); ++col) {
      const FieldKey& f = comp.field(col);
      f_rel.AppendRow({rel::Value::StringSymbol(f.rel),
                       rel::Value::Int(f.tuple),
                       rel::Value::StringSymbol(f.attr),
                       rel::Value::Int(cid)});
    }
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      w_rel.AppendRow({rel::Value::Int(cid),
                       rel::Value::Int(static_cast<int64_t>(w)),
                       rel::Value::Double(comp.prob(w))});
      for (size_t col = 0; col < comp.NumFields(); ++col) {
        const rel::Value& v = comp.at(w, col);
        if (v.is_bottom()) continue;  // absence encodes ⊥
        const FieldKey& f = comp.field(col);
        c_rel.AppendRow({rel::Value::StringSymbol(f.rel),
                         rel::Value::Int(f.tuple),
                         rel::Value::StringSymbol(f.attr),
                         rel::Value::Int(static_cast<int64_t>(w)),
                         v});
      }
    }
    ++cid;
  }
  MAYWSD_RETURN_IF_ERROR(db.AddRelation(std::move(c_rel)));
  MAYWSD_RETURN_IF_ERROR(db.AddRelation(std::move(f_rel)));
  MAYWSD_RETURN_IF_ERROR(db.AddRelation(std::move(w_rel)));
  return db;
}

Result<Wsdt> ImportUniform(const rel::Database& db,
                           std::vector<std::string> templates) {
  if (templates.empty()) {
    for (const std::string& name : db.Names()) {
      if (name != kUniformC && name != kUniformF && name != kUniformW) {
        templates.push_back(name);
      }
    }
  }
  Wsdt wsdt;
  // Template relations: strip the TID column; remember tid → row mapping.
  std::map<std::pair<std::string, int64_t>, TupleId> tid_map;
  for (const std::string& name : templates) {
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* in, db.GetRelation(name));
    auto tid_idx = in->schema().IndexOf(kTidColumn);
    if (!tid_idx || *tid_idx != 0) {
      return Status::InvalidArgument("template " + name +
                                     " lacks a leading TID column");
    }
    std::vector<rel::Attribute> attrs(in->schema().attrs().begin() + 1,
                                      in->schema().attrs().end());
    rel::Relation tmpl{rel::Schema(std::move(attrs)), name};
    std::vector<rel::Value> row(tmpl.arity());
    for (size_t r = 0; r < in->NumRows(); ++r) {
      tid_map[{name, in->row(r)[0].AsInt()}] = static_cast<TupleId>(r);
      for (size_t a = 0; a < tmpl.arity(); ++a) row[a] = in->row(r)[a + 1];
      tmpl.AppendRow(row);
    }
    MAYWSD_RETURN_IF_ERROR(wsdt.AddTemplateRelation(std::move(tmpl)));
  }
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* f_rel,
                          db.GetRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* c_rel,
                          db.GetRelation(kUniformC));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* w_rel,
                          db.GetRelation(kUniformW));

  // Group fields by CID (sorted for determinism).
  std::map<int64_t, std::vector<FieldKey>> comp_fields;
  std::map<int64_t, std::map<std::pair<std::string, std::string>,
                             std::pair<int64_t, TupleId>>> unused;
  (void)unused;
  for (size_t r = 0; r < f_rel->NumRows(); ++r) {
    rel::TupleRef row = f_rel->row(r);
    std::string rel_name(row[0].AsStringView());
    auto it = tid_map.find({rel_name, row[1].AsInt()});
    if (it == tid_map.end()) {
      return Status::InvalidArgument("F references unknown tuple in " +
                                     rel_name);
    }
    comp_fields[row[3].AsInt()].push_back(
        FieldKey(InternString(rel_name), it->second, row[2].AsSymbol()));
  }
  for (auto& [cid, fields] : comp_fields) {
    std::sort(fields.begin(), fields.end());
  }
  // Local worlds per component.
  std::map<int64_t, std::vector<std::pair<int64_t, double>>> comp_worlds;
  for (size_t r = 0; r < w_rel->NumRows(); ++r) {
    rel::TupleRef row = w_rel->row(r);
    comp_worlds[row[0].AsInt()].emplace_back(row[1].AsInt(),
                                             row[2].AsDouble());
  }
  for (auto& [cid, worlds] : comp_worlds) {
    std::sort(worlds.begin(), worlds.end());
  }
  // Values: (rel, tid, attr, lwid) → value.
  std::map<std::tuple<Symbol, TupleId, Symbol, int64_t>, rel::Value> values;
  for (size_t r = 0; r < c_rel->NumRows(); ++r) {
    rel::TupleRef row = c_rel->row(r);
    std::string rel_name(row[0].AsStringView());
    auto it = tid_map.find({rel_name, row[1].AsInt()});
    if (it == tid_map.end()) {
      return Status::InvalidArgument("C references unknown tuple in " +
                                     rel_name);
    }
    values[{InternString(rel_name), it->second, row[2].AsSymbol(),
            row[3].AsInt()}] = row[4];
  }
  for (const auto& [cid, fields] : comp_fields) {
    auto worlds_it = comp_worlds.find(cid);
    if (worlds_it == comp_worlds.end()) {
      return Status::InvalidArgument("component " + std::to_string(cid) +
                                     " has no worlds in W");
    }
    Component comp(fields);
    std::vector<rel::Value> row(fields.size());
    for (const auto& [lwid, prob] : worlds_it->second) {
      for (size_t c = 0; c < fields.size(); ++c) {
        auto v = values.find(
            {fields[c].rel, fields[c].tuple, fields[c].attr, lwid});
        row[c] = (v == values.end()) ? rel::Value::Bottom() : v->second;
      }
      comp.AddWorld(row, prob);
    }
    MAYWSD_RETURN_IF_ERROR(wsdt.AddComponent(std::move(comp)));
  }
  return wsdt;
}

Status UniformSelectConst(rel::Database& db, const std::string& in_rel,
                          const std::string& out_rel, const std::string& attr,
                          rel::CmpOp op, const rel::Value& constant) {
  using rel::Plan;
  using rel::Predicate;
  // Step 1: P⁰ := σ_{Aθc ∨ A=?}(R⁰).
  Plan step1 = Plan::Select(
      Predicate::Or(Predicate::Cmp(attr, op, constant),
                    Predicate::Cmp(attr, rel::CmpOp::kEq,
                                   rel::Value::Question())),
      Plan::Scan(in_rel));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation p0, rel::Evaluate(step1, db));
  p0.set_name(out_rel);

  // Tuple ids surviving step 1.
  std::set<int64_t> tids;
  for (size_t r = 0; r < p0.NumRows(); ++r) {
    tids.insert(p0.row(r)[0].AsInt());
  }

  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Value in_sym = rel::Value::String(in_rel);
  rel::Value out_sym = rel::Value::String(out_rel);

  // Step 2: F := F ∪ {(P.t.B, k) | (R.t.B, k) ∈ F, t ∈ P⁰}.
  size_t f_rows = f_rel->NumRows();
  for (size_t r = 0; r < f_rows; ++r) {
    rel::TupleRef row = f_rel->row(r);
    if (!(row[0] == in_sym) || !tids.count(row[1].AsInt())) continue;
    f_rel->AppendRow({out_sym, row[1], row[2], row[3]});
  }
  // Step 3: C := C ∪ {(P.t.B, w, v) | (R.t.B, w, v) ∈ C, t ∈ P⁰,
  //                     (B = A ⇒ v θ c)}.
  rel::Value attr_sym = rel::Value::String(attr);
  size_t c_rows = c_rel->NumRows();
  for (size_t r = 0; r < c_rows; ++r) {
    rel::TupleRef row = c_rel->row(r);
    if (!(row[0] == in_sym) || !tids.count(row[1].AsInt())) continue;
    if (row[2] == attr_sym && !row[4].Satisfies(op, constant)) continue;
    c_rel->AppendRow({out_sym, row[1], row[2], row[3], row[4]});
  }

  // Steps 4–6 are shared with the AθB variant: propagate-⊥ among
  // same-component siblings, then drop tuples whose A-placeholder lost
  // every value.
  return FinishUniformSelect(db, std::move(p0), out_rel, {attr});
}

Status UniformSelectAttrAttr(rel::Database& db, const std::string& in_rel,
                             const std::string& out_rel,
                             const std::string& attr_a, rel::CmpOp op,
                             const std::string& attr_b) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* in, db.GetRelation(in_rel));
  auto tid_idx = in->schema().IndexOf(kTidColumn);
  if (!tid_idx || *tid_idx != 0) {
    return Status::InvalidArgument("template " + in_rel +
                                   " lacks a leading TID column");
  }
  rel::Schema logical(std::vector<rel::Attribute>(
      in->schema().attrs().begin() + 1, in->schema().attrs().end()));
  auto a_col = logical.IndexOf(attr_a);
  auto b_col = logical.IndexOf(attr_b);
  if (!a_col) return Status::NotFound("attribute " + attr_a);
  if (!b_col) return Status::NotFound("attribute " + attr_b);
  rel::Predicate pred = rel::Predicate::CmpAttr(attr_a, op, attr_b);

  // Step 1: P⁰ keeps the decided-true rows as-is and the undecided rows
  // (a placeholder at A or B) for per-local-world filtering; decided-false
  // rows disappear in every world.
  rel::Relation p0(in->schema(), out_rel);
  std::set<int64_t> tids;
  std::vector<size_t> undecided;  // row indexes into p0
  for (size_t r = 0; r < in->NumRows(); ++r) {
    rel::TupleRef row = in->row(r);
    rel::TupleRef logical_row(row.data() + 1, logical.arity());
    MAYWSD_ASSIGN_OR_RETURN(Tri tri,
                            TriEvalPredicate(pred, logical, logical_row));
    if (tri == Tri::kFalse) continue;
    if (tri == Tri::kUnknown) undecided.push_back(p0.NumRows());
    p0.AppendRow(row.span());
    tids.insert(row[0].AsInt());
  }

  // Steps 2–3: copy the surviving tuples' F and C entries under the output
  // name unfiltered — the undecided rows lose values world by world below.
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Value in_sym = rel::Value::String(in_rel);
  rel::Value out_sym = rel::Value::String(out_rel);
  size_t f_rows = f_rel->NumRows();
  for (size_t r = 0; r < f_rows; ++r) {
    rel::TupleRef row = f_rel->row(r);
    if (!(row[0] == in_sym) || !tids.count(row[1].AsInt())) continue;
    f_rel->AppendRow({out_sym, row[1], row[2], row[3]});
  }
  size_t c_rows = c_rel->NumRows();
  for (size_t r = 0; r < c_rows; ++r) {
    rel::TupleRef row = c_rel->row(r);
    if (!(row[0] == in_sym) || !tids.count(row[1].AsInt())) continue;
    c_rel->AppendRow({out_sym, row[1], row[2], row[3], row[4]});
  }

  // Undecided rows whose A and B placeholders live in different components
  // correlate them: merge those components (the relational compose — an
  // independence product that rewrites W and remaps F/C globally, exactly
  // what the template semantics' ComposeInPlace does).
  std::map<std::pair<int64_t, std::string>, int64_t> f_cid;  // (t,attr)→cid
  for (size_t r = 0; r < f_rel->NumRows(); ++r) {
    rel::TupleRef row = f_rel->row(r);
    if (!(row[0] == out_sym)) continue;
    f_cid[{row[1].AsInt(), std::string(row[2].AsStringView())}] =
        row[3].AsInt();
  }
  std::map<int64_t, int64_t> parent;
  auto find = [&parent](int64_t x) {
    parent.try_emplace(x, x);
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  bool any_merge = false;
  for (size_t r : undecided) {
    rel::TupleRef row = p0.row(r);
    if (!row[1 + *a_col].is_question() || !row[1 + *b_col].is_question()) {
      continue;
    }
    auto ca = f_cid.find({row[0].AsInt(), attr_a});
    auto cb = f_cid.find({row[0].AsInt(), attr_b});
    if (ca == f_cid.end() || cb == f_cid.end()) {
      return Status::Internal("placeholder of " + in_rel + " has no F row");
    }
    int64_t ra = find(ca->second);
    int64_t rb = find(cb->second);
    if (ra != rb) {
      parent[rb] = ra;
      any_merge = true;
    }
  }
  if (any_merge) {
    std::map<int64_t, std::vector<int64_t>> classes;
    for (const auto& [cid, unused] : parent) {
      (void)unused;
      classes[find(cid)].push_back(cid);
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::Relation* w_rel,
                            db.GetMutableRelation(kUniformW));
    std::map<int64_t, std::vector<std::pair<int64_t, double>>> worlds;
    for (size_t r = 0; r < w_rel->NumRows(); ++r) {
      rel::TupleRef row = w_rel->row(r);
      worlds[row[0].AsInt()].emplace_back(row[1].AsInt(), row[2].AsDouble());
    }
    for (auto& [cid, lws] : worlds) std::sort(lws.begin(), lws.end());
    // member cid → old LWID → the product LWIDs it participates in.
    std::map<int64_t, std::map<int64_t, std::vector<int64_t>>> fanout;
    std::set<int64_t> members_all;
    std::vector<std::array<rel::Value, 3>> product_rows;
    for (auto& [rep, members] : classes) {
      if (members.size() < 2) continue;
      std::sort(members.begin(), members.end());
      size_t total = 1;
      for (int64_t m : members) {
        total *= worlds[m].size();
        if (total > kMaxComposedWorlds) {
          return Status::ResourceExhausted(
              "select[AθB] component product exceeds " +
              std::to_string(kMaxComposedWorlds) + " local worlds");
        }
      }
      // Mixed-radix enumeration, last member varying fastest; the product
      // world's probability is the product of its members' (independence).
      for (size_t flat = 0; flat < total; ++flat) {
        double pr = 1.0;
        size_t rem = flat;
        for (size_t p = members.size(); p-- > 0;) {
          const auto& lws = worlds[members[p]];
          size_t i = rem % lws.size();
          rem /= lws.size();
          pr *= lws[i].second;
          fanout[members[p]][lws[i].first].push_back(
              static_cast<int64_t>(flat));
        }
        product_rows.push_back({rel::Value::Int(rep),
                                rel::Value::Int(static_cast<int64_t>(flat)),
                                rel::Value::Double(pr)});
      }
      for (int64_t m : members) members_all.insert(m);
    }
    // Rewrite W: the merged members' rows become the product rows.
    rel::Relation next_w(w_rel->schema(), w_rel->name());
    for (size_t r = 0; r < w_rel->NumRows(); ++r) {
      if (members_all.count(w_rel->row(r)[0].AsInt())) continue;
      next_w.AppendRow(w_rel->row(r).span());
    }
    for (const auto& row : product_rows) {
      next_w.AppendRow({row[0], row[1], row[2]});
    }
    *w_rel = std::move(next_w);
    // Remap every F row of a merged member (all relations — the merge is a
    // global re-factorization) to the class representative, remembering
    // which member each field belonged to.
    std::map<std::tuple<std::string, int64_t, std::string>, int64_t>
        field_member;
    for (size_t r = 0; r < f_rel->NumRows(); ++r) {
      rel::TupleRef row = f_rel->row(r);
      int64_t cid = row[3].AsInt();
      if (!members_all.count(cid)) continue;
      field_member[{std::string(row[0].AsStringView()), row[1].AsInt(),
                    std::string(row[2].AsStringView())}] = cid;
      f_rel->SetCell(r, 3, rel::Value::Int(find(cid)));
    }
    // Expand the members' C rows across the product worlds they survive in.
    rel::Relation next_c(c_rel->schema(), c_rel->name());
    for (size_t r = 0; r < c_rel->NumRows(); ++r) {
      rel::TupleRef row = c_rel->row(r);
      auto it = field_member.find({std::string(row[0].AsStringView()),
                                   row[1].AsInt(),
                                   std::string(row[2].AsStringView())});
      if (it == field_member.end()) {
        next_c.AppendRow(row.span());
        continue;
      }
      for (int64_t lwid : fanout[it->second][row[3].AsInt()]) {
        next_c.AppendRow(
            {row[0], row[1], row[2], rel::Value::Int(lwid), row[4]});
      }
    }
    *c_rel = std::move(next_c);
    // The copied out_rel fields moved components too.
    f_cid.clear();
    for (size_t r = 0; r < f_rel->NumRows(); ++r) {
      rel::TupleRef row = f_rel->row(r);
      if (!(row[0] == out_sym)) continue;
      f_cid[{row[1].AsInt(), std::string(row[2].AsStringView())}] =
          row[3].AsInt();
    }
  }

  // Per-local-world filtering of the undecided rows: resolve A and B in
  // each world of the (now single) deciding component and drop the output
  // copy's placeholder values where the comparison fails. A ⊥ on either
  // side means the source tuple is absent there — the output is too.
  std::map<int64_t, std::vector<int64_t>> cid_lwids;
  {
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* w_ro,
                            db.GetRelation(kUniformW));
    for (size_t r = 0; r < w_ro->NumRows(); ++r) {
      cid_lwids[w_ro->row(r)[0].AsInt()].push_back(w_ro->row(r)[1].AsInt());
    }
  }
  std::map<std::tuple<int64_t, std::string, int64_t>, rel::Value> out_vals;
  for (size_t r = 0; r < c_rel->NumRows(); ++r) {
    rel::TupleRef row = c_rel->row(r);
    if (!(row[0] == out_sym)) continue;
    out_vals[{row[1].AsInt(), std::string(row[2].AsStringView()),
              row[3].AsInt()}] = row[4];
  }
  std::set<std::tuple<int64_t, std::string, int64_t>> drop;
  for (size_t r : undecided) {
    rel::TupleRef row = p0.row(r);
    int64_t tid = row[0].AsInt();
    bool qa = row[1 + *a_col].is_question();
    bool qb = row[1 + *b_col].is_question();
    if (!qa && !qb) continue;  // unreachable: certain rows tri-decide
    int64_t cid = qa ? f_cid.at({tid, attr_a}) : f_cid.at({tid, attr_b});
    auto value_at = [&](const std::string& attr,
                        int64_t lwid) -> rel::Value {
      auto it = out_vals.find({tid, attr, lwid});
      return it == out_vals.end() ? rel::Value::Bottom() : it->second;
    };
    for (int64_t lwid : cid_lwids[cid]) {
      rel::Value va = qa ? value_at(attr_a, lwid) : row[1 + *a_col];
      rel::Value vb = qb ? value_at(attr_b, lwid) : row[1 + *b_col];
      bool keep =
          !va.is_bottom() && !vb.is_bottom() && va.Satisfies(op, vb);
      if (keep) continue;
      if (qa) drop.insert({tid, attr_a, lwid});
      if (qb) drop.insert({tid, attr_b, lwid});
    }
  }
  if (!drop.empty()) {
    rel::Relation next_c(c_rel->schema(), c_rel->name());
    for (size_t r = 0; r < c_rel->NumRows(); ++r) {
      rel::TupleRef row = c_rel->row(r);
      if (row[0] == out_sym &&
          drop.count({row[1].AsInt(), std::string(row[2].AsStringView()),
                      row[3].AsInt()})) {
        continue;
      }
      next_c.AppendRow(row.span());
    }
    *c_rel = std::move(next_c);
  }

  return FinishUniformSelect(db, std::move(p0), out_rel, {attr_a, attr_b});
}

namespace {

/// Copies the F and C entries of tuple (in_rel, old_tid) under
/// (out_rel, new_tid), optionally renaming attributes.
void CopyUniformEntries(
    rel::Relation* f_rel, rel::Relation* c_rel, size_t f_rows, size_t c_rows,
    const rel::Value& in_sym, const rel::Value& out_sym, int64_t old_tid,
    int64_t new_tid,
    const std::map<std::string, std::string>* attr_renames = nullptr) {
  auto rename = [&](const rel::Value& attr) -> rel::Value {
    if (attr_renames == nullptr) return attr;
    auto it = attr_renames->find(std::string(attr.AsStringView()));
    return it == attr_renames->end() ? attr
                                     : rel::Value::String(it->second);
  };
  for (size_t r = 0; r < f_rows; ++r) {
    rel::TupleRef row = f_rel->row(r);
    if (!(row[0] == in_sym) || row[1].AsInt() != old_tid) continue;
    f_rel->AppendRow({out_sym, rel::Value::Int(new_tid), rename(row[2]),
                      row[3]});
  }
  for (size_t r = 0; r < c_rows; ++r) {
    rel::TupleRef row = c_rel->row(r);
    if (!(row[0] == in_sym) || row[1].AsInt() != old_tid) continue;
    c_rel->AppendRow({out_sym, rel::Value::Int(new_tid), rename(row[2]),
                      row[3], row[4]});
  }
}

}  // namespace

Status UniformUnion(rel::Database& db, const std::string& left,
                    const std::string& right, const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* l, db.GetRelation(left));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* r, db.GetRelation(right));
  if (l->schema() != r->schema()) {
    return Status::InvalidArgument("uniform union of incompatible schemas");
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Relation out_rel(l->schema(), out);
  rel::Value l_sym = rel::Value::String(left);
  rel::Value r_sym = rel::Value::String(right);
  rel::Value out_sym = rel::Value::String(out);
  size_t f_rows = f_rel->NumRows();
  size_t c_rows = c_rel->NumRows();
  std::vector<rel::Value> buf(out_rel.arity());
  int64_t next = 0;
  for (const rel::Relation* side : {l, r}) {
    const rel::Value& sym = side == l ? l_sym : r_sym;
    for (size_t i = 0; i < side->NumRows(); ++i) {
      rel::TupleRef row = side->row(i);
      buf[0] = rel::Value::Int(next);
      for (size_t a = 1; a < buf.size(); ++a) buf[a] = row[a];
      out_rel.AppendRow(buf);
      CopyUniformEntries(f_rel, c_rel, f_rows, c_rows, sym, out_sym,
                         row[0].AsInt(), next);
      ++next;
    }
  }
  return db.AddRelation(std::move(out_rel));
}

Status UniformRename(
    rel::Database& db, const std::string& in_rel, const std::string& out_rel,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* in, db.GetRelation(in_rel));
  rel::Schema schema = in->schema();
  std::map<std::string, std::string> rename_map;
  for (const auto& [from, to] : renames) {
    MAYWSD_ASSIGN_OR_RETURN(schema, schema.Rename(from, to));
    rename_map[from] = to;
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Relation out(schema, out_rel);
  rel::Value in_sym = rel::Value::String(in_rel);
  rel::Value out_sym = rel::Value::String(out_rel);
  size_t f_rows = f_rel->NumRows();
  size_t c_rows = c_rel->NumRows();
  for (size_t i = 0; i < in->NumRows(); ++i) {
    out.AppendRow(in->row(i).span());
    CopyUniformEntries(f_rel, c_rel, f_rows, c_rows, in_sym, out_sym,
                       in->row(i)[0].AsInt(), in->row(i)[0].AsInt(),
                       &rename_map);
  }
  return db.AddRelation(std::move(out));
}

Status UniformProduct(rel::Database& db, const std::string& left,
                      const std::string& right, const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* l, db.GetRelation(left));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* r, db.GetRelation(right));
  // Output schema: TID + left attrs + right attrs (attrs must be disjoint;
  // both inputs carry their own TID column which is not duplicated).
  std::vector<rel::Attribute> attrs;
  attrs.emplace_back(kTidColumn, rel::AttrType::kInt);
  for (size_t a = 1; a < l->schema().arity(); ++a) {
    attrs.push_back(l->schema().attr(a));
  }
  for (size_t a = 1; a < r->schema().arity(); ++a) {
    rel::Attribute attr = r->schema().attr(a);
    for (const rel::Attribute& existing : attrs) {
      if (existing.name == attr.name) {
        return Status::InvalidArgument(
            "uniform product requires disjoint attribute sets");
      }
    }
    attrs.push_back(attr);
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Relation out_rel{rel::Schema(std::move(attrs)), out};
  rel::Value l_sym = rel::Value::String(left);
  rel::Value r_sym = rel::Value::String(right);
  rel::Value out_sym = rel::Value::String(out);
  size_t f_rows = f_rel->NumRows();
  size_t c_rows = c_rel->NumRows();
  int64_t nr = static_cast<int64_t>(r->NumRows());
  std::vector<rel::Value> buf(out_rel.arity());
  for (size_t i = 0; i < l->NumRows(); ++i) {
    rel::TupleRef lr = l->row(i);
    for (size_t j = 0; j < r->NumRows(); ++j) {
      rel::TupleRef rr = r->row(j);
      int64_t tij = static_cast<int64_t>(i) * nr + static_cast<int64_t>(j);
      buf[0] = rel::Value::Int(tij);
      size_t pos = 1;
      for (size_t a = 1; a < lr.arity(); ++a) buf[pos++] = lr[a];
      for (size_t a = 1; a < rr.arity(); ++a) buf[pos++] = rr[a];
      out_rel.AppendRow(buf);
      CopyUniformEntries(f_rel, c_rel, f_rows, c_rows, l_sym, out_sym,
                         lr[0].AsInt(), tij);
      CopyUniformEntries(f_rel, c_rel, f_rows, c_rows, r_sym, out_sym,
                         rr[0].AsInt(), tij);
    }
  }
  return db.AddRelation(std::move(out_rel));
}

Status UniformCopy(rel::Database& db, const std::string& in_rel,
                   const std::string& out_rel) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* in, db.GetRelation(in_rel));
  if (db.Contains(out_rel)) {
    return Status::AlreadyExists("relation " + out_rel);
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Relation out(in->schema(), out_rel);
  for (size_t i = 0; i < in->NumRows(); ++i) {
    out.AppendRow(in->row(i).span());
  }
  // TIDs are unchanged, so one filtered pass re-registers every F/C entry
  // of the source under the copy's name (the driver's materializing Copy
  // runs once per evaluation — keep it linear in |F|+|C|).
  rel::Value in_sym = rel::Value::String(in_rel);
  rel::Value out_sym = rel::Value::String(out_rel);
  size_t f_rows = f_rel->NumRows();
  size_t c_rows = c_rel->NumRows();
  for (size_t r = 0; r < f_rows; ++r) {
    rel::TupleRef row = f_rel->row(r);
    if (!(row[0] == in_sym)) continue;
    f_rel->AppendRow({out_sym, row[1], row[2], row[3]});
  }
  for (size_t r = 0; r < c_rows; ++r) {
    rel::TupleRef row = c_rel->row(r);
    if (!(row[0] == in_sym)) continue;
    c_rel->AppendRow({out_sym, row[1], row[2], row[3], row[4]});
  }
  return db.AddRelation(std::move(out));
}

Status UniformProject(rel::Database& db, const std::string& in_rel,
                      const std::string& out_rel,
                      const std::vector<std::string>& attrs) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* in, db.GetRelation(in_rel));
  if (db.Contains(out_rel)) {
    return Status::AlreadyExists("relation " + out_rel);
  }
  auto tid_idx = in->schema().IndexOf(kTidColumn);
  if (!tid_idx || *tid_idx != 0) {
    return Status::InvalidArgument("template " + in_rel +
                                   " lacks a leading TID column");
  }
  rel::Schema logical(std::vector<rel::Attribute>(
      in->schema().attrs().begin() + 1, in->schema().attrs().end()));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema kept, logical.Project(attrs));
  std::set<std::string> kept_set(attrs.begin(), attrs.end());

  // A dropped placeholder with a ⊥ (a local world of its component with no
  // C row) encodes conditional tuple presence; projecting it away needs
  // component composition, which is not a pure row rewriting.
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* f_ro, db.GetRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* c_ro, db.GetRelation(kUniformC));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* w_ro, db.GetRelation(kUniformW));
  rel::Value in_sym = rel::Value::String(in_rel);
  std::map<int64_t, size_t> w_counts;
  for (size_t r = 0; r < w_ro->NumRows(); ++r) {
    ++w_counts[w_ro->row(r)[0].AsInt()];
  }
  std::map<std::pair<int64_t, std::string>, int64_t> dropped_holes;
  for (size_t r = 0; r < f_ro->NumRows(); ++r) {
    rel::TupleRef row = f_ro->row(r);
    std::string attr(row[2].AsStringView());
    if (!(row[0] == in_sym) || kept_set.count(attr)) continue;
    dropped_holes[{row[1].AsInt(), attr}] = row[3].AsInt();
  }
  std::map<std::pair<int64_t, std::string>, size_t> have;
  for (size_t r = 0; r < c_ro->NumRows(); ++r) {
    rel::TupleRef row = c_ro->row(r);
    std::string attr(row[2].AsStringView());
    if (!(row[0] == in_sym) || kept_set.count(attr)) continue;
    ++have[{row[1].AsInt(), attr}];
  }
  for (const auto& [key, cid] : dropped_holes) {
    auto it = have.find(key);
    size_t values = it == have.end() ? 0 : it->second;
    if (values < w_counts[cid]) {
      return Status::Unsupported(
          "uniform projection drops the ⊥-carrying placeholder " + in_rel +
          ".t" + std::to_string(key.first) + "." + key.second);
    }
  }

  // Template: TID + kept attributes, in the requested order.
  std::vector<rel::Attribute> out_attrs;
  out_attrs.emplace_back(kTidColumn, rel::AttrType::kInt);
  for (const rel::Attribute& a : kept.attrs()) out_attrs.push_back(a);
  rel::Relation out{rel::Schema(std::move(out_attrs)), out_rel};
  std::vector<size_t> cols;
  for (const std::string& a : attrs) cols.push_back(1 + *logical.IndexOf(a));
  std::vector<rel::Value> buf(out.arity());
  for (size_t r = 0; r < in->NumRows(); ++r) {
    rel::TupleRef row = in->row(r);
    buf[0] = row[0];
    for (size_t i = 0; i < cols.size(); ++i) buf[i + 1] = row[cols[i]];
    out.AppendRow(buf);
  }
  // F/C entries of the kept attributes only — dropping the other columns
  // from their components is exact marginalization.
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Value out_sym = rel::Value::String(out_rel);
  size_t f_rows = f_rel->NumRows();
  size_t c_rows = c_rel->NumRows();
  for (size_t r = 0; r < f_rows; ++r) {
    rel::TupleRef row = f_rel->row(r);
    if (!(row[0] == in_sym) ||
        !kept_set.count(std::string(row[2].AsStringView()))) {
      continue;
    }
    f_rel->AppendRow({out_sym, row[1], row[2], row[3]});
  }
  for (size_t r = 0; r < c_rows; ++r) {
    rel::TupleRef row = c_rel->row(r);
    if (!(row[0] == in_sym) ||
        !kept_set.count(std::string(row[2].AsStringView()))) {
      continue;
    }
    c_rel->AppendRow({out_sym, row[1], row[2], row[3], row[4]});
  }
  return db.AddRelation(std::move(out));
}

Status UniformDrop(rel::Database& db, const std::string& name) {
  if (name == kUniformC || name == kUniformF || name == kUniformW) {
    return Status::InvalidArgument("cannot drop system relation " + name);
  }
  MAYWSD_RETURN_IF_ERROR(db.DropRelation(name));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* f_rel,
                          db.GetMutableRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* c_rel,
                          db.GetMutableRelation(kUniformC));
  rel::Value sym = rel::Value::String(name);
  for (rel::Relation* sys : {f_rel, c_rel}) {
    rel::Relation next(sys->schema(), sys->name());
    for (size_t r = 0; r < sys->NumRows(); ++r) {
      if (sys->row(r)[0] == sym) continue;
      next.AppendRow(sys->row(r).span());
    }
    *sys = std::move(next);
  }
  return Status::Ok();
}

Status UniformInsert(rel::Database& db, const std::string& rel,
                     const rel::Relation& tuples) {
  if (rel == kUniformC || rel == kUniformF || rel == kUniformW) {
    return Status::InvalidArgument("cannot insert into system relation " +
                                   rel);
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation * tmpl, db.GetMutableRelation(rel));
  auto tid_idx = tmpl->schema().IndexOf(kTidColumn);
  if (!tid_idx || *tid_idx != 0) {
    return Status::InvalidArgument("template " + rel +
                                   " lacks a leading TID column");
  }
  if (tuples.arity() + 1 != tmpl->arity()) {
    return Status::InvalidArgument("insert arity mismatch on " + rel);
  }
  int64_t next_tid = 0;
  for (size_t r = 0; r < tmpl->NumRows(); ++r) {
    next_tid = std::max(next_tid, tmpl->row(r)[0].AsInt() + 1);
  }
  std::vector<rel::Value> row(tmpl->arity());
  for (size_t r = 0; r < tuples.NumRows(); ++r) {
    row[0] = rel::Value::Int(next_tid++);
    for (size_t a = 0; a < tuples.arity(); ++a) row[a + 1] = tuples.row(r)[a];
    tmpl->AppendRow(row);
  }
  return Status::Ok();
}

namespace {

/// Tri-evaluates `pred` on every template row (TID column stripped);
/// kUnsupported when any row's decision needs component values.
Result<std::vector<Tri>> DecideRows(const rel::Relation& tmpl,
                                    const rel::Predicate& pred) {
  rel::Schema logical(std::vector<rel::Attribute>(
      tmpl.schema().attrs().begin() + 1, tmpl.schema().attrs().end()));
  std::vector<Tri> out;
  out.reserve(tmpl.NumRows());
  for (size_t r = 0; r < tmpl.NumRows(); ++r) {
    rel::TupleRef logical_row(tmpl.row(r).data() + 1, logical.arity());
    MAYWSD_ASSIGN_OR_RETURN(Tri tri,
                            TriEvalPredicate(pred, logical, logical_row));
    if (tri == Tri::kUnknown) {
      return Status::Unsupported(
          "predicate on " + tmpl.name() +
          " touches placeholder cells; needs the template semantics");
    }
    out.push_back(tri);
  }
  return out;
}

/// Removes the F and C rows of the given (relation, TID) fields.
Status DropFieldRows(rel::Database& db, const std::string& rel,
                     const std::set<int64_t>& tids) {
  rel::Value sym = rel::Value::String(rel);
  for (const char* name : {kUniformF, kUniformC}) {
    MAYWSD_ASSIGN_OR_RETURN(rel::Relation * sys, db.GetMutableRelation(name));
    rel::Relation next(sys->schema(), sys->name());
    for (size_t r = 0; r < sys->NumRows(); ++r) {
      if (sys->row(r)[0] == sym && tids.count(sys->row(r)[1].AsInt())) {
        continue;
      }
      next.AppendRow(sys->row(r).span());
    }
    *sys = std::move(next);
  }
  return Status::Ok();
}

}  // namespace

Status UniformDeleteWhere(rel::Database& db, const std::string& rel,
                          const rel::Predicate& pred) {
  if (rel == kUniformC || rel == kUniformF || rel == kUniformW) {
    return Status::InvalidArgument("cannot delete from system relation " +
                                   rel);
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation * tmpl, db.GetMutableRelation(rel));
  MAYWSD_ASSIGN_OR_RETURN(std::vector<Tri> decided, DecideRows(*tmpl, pred));
  std::set<int64_t> removed_tids;
  bool removed_placeholder = false;
  rel::Relation kept(tmpl->schema(), tmpl->name());
  for (size_t r = 0; r < tmpl->NumRows(); ++r) {
    if (decided[r] == Tri::kTrue) {
      removed_tids.insert(tmpl->row(r)[0].AsInt());
      for (size_t a = 1; a < tmpl->arity(); ++a) {
        if (tmpl->row(r)[a].is_question()) removed_placeholder = true;
      }
    } else {
      kept.AppendRow(tmpl->row(r).span());
    }
  }
  if (removed_tids.empty()) return Status::Ok();
  *tmpl = std::move(kept);
  // F/C rows exist only for placeholder fields: a delete of fully certain
  // rows (the common native case) skips the system-relation rebuild and
  // the W garbage-collection scan entirely.
  if (!removed_placeholder) return Status::Ok();
  MAYWSD_RETURN_IF_ERROR(DropFieldRows(db, rel, removed_tids));
  return UniformCompact(db);
}

Status UniformModifyWhere(rel::Database& db, const std::string& rel,
                          const rel::Predicate& pred,
                          std::span<const rel::Assignment> assignments) {
  if (rel == kUniformC || rel == kUniformF || rel == kUniformW) {
    return Status::InvalidArgument("cannot modify system relation " + rel);
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation * tmpl, db.GetMutableRelation(rel));
  MAYWSD_ASSIGN_OR_RETURN(std::vector<Tri> decided, DecideRows(*tmpl, pred));
  std::vector<std::pair<size_t, rel::Value>> cols;  // template column → value
  for (const rel::Assignment& a : assignments) {
    auto idx = tmpl->schema().IndexOf(a.attr);
    if (!idx || *idx == 0) {
      return Status::NotFound("assignment attribute " + a.attr + " not in " +
                              rel);
    }
    cols.emplace_back(*idx, a.value);
  }
  // Pass 1: an assignment to a '?' cell needs component surgery.
  for (size_t r = 0; r < tmpl->NumRows(); ++r) {
    if (decided[r] != Tri::kTrue) continue;
    for (const auto& [col, v] : cols) {
      if (tmpl->row(r)[col].is_question()) {
        return Status::Unsupported(
            "assignment to a placeholder cell of " + rel +
            "; needs the template semantics");
      }
    }
  }
  for (size_t r = 0; r < tmpl->NumRows(); ++r) {
    if (decided[r] != Tri::kTrue) continue;
    for (const auto& [col, v] : cols) tmpl->SetCell(r, col, v);
  }
  return Status::Ok();
}

Status UniformCompact(rel::Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* f_rel,
                          db.GetRelation(kUniformF));
  std::set<int64_t> live;
  for (size_t r = 0; r < f_rel->NumRows(); ++r) {
    live.insert(f_rel->row(r)[3].AsInt());
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation* w_rel,
                          db.GetMutableRelation(kUniformW));
  rel::Relation next(w_rel->schema(), w_rel->name());
  for (size_t r = 0; r < w_rel->NumRows(); ++r) {
    if (!live.count(w_rel->row(r)[0].AsInt())) continue;
    next.AppendRow(w_rel->row(r).span());
  }
  *w_rel = std::move(next);
  return Status::Ok();
}

Status ValidateUniform(const rel::Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* f_rel,
                          db.GetRelation(kUniformF));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* c_rel,
                          db.GetRelation(kUniformC));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* w_rel,
                          db.GetRelation(kUniformW));

  // Templates: leading unique TIDs; remember '?' cells awaiting coverage.
  std::set<std::pair<std::string, int64_t>> tuples;
  std::set<std::tuple<std::string, int64_t, std::string>> holes;
  for (const std::string& name : db.Names()) {
    if (name == kUniformC || name == kUniformF || name == kUniformW) continue;
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, db.GetRelation(name));
    auto tid_idx = tmpl->schema().IndexOf(kTidColumn);
    if (!tid_idx || *tid_idx != 0) {
      return Status::InvalidArgument("template " + name +
                                     " lacks a leading TID column");
    }
    for (size_t r = 0; r < tmpl->NumRows(); ++r) {
      rel::TupleRef row = tmpl->row(r);
      if (!tuples.insert({name, row[0].AsInt()}).second) {
        return Status::InvalidArgument("template " + name + " repeats TID " +
                                       std::to_string(row[0].AsInt()));
      }
      for (size_t a = 1; a < row.arity(); ++a) {
        if (row[a].is_question()) {
          holes.insert({name, row[0].AsInt(),
                        std::string(tmpl->schema().attr(a).name_view())});
        } else if (row[a].is_bottom()) {
          return Status::InvalidArgument("template " + name +
                                         " stores a ⊥ cell");
        }
      }
    }
  }

  // W: local worlds and probability mass per component.
  std::map<int64_t, std::set<int64_t>> w_lwids;
  std::map<int64_t, double> w_mass;
  for (size_t r = 0; r < w_rel->NumRows(); ++r) {
    rel::TupleRef row = w_rel->row(r);
    if (!w_lwids[row[0].AsInt()].insert(row[1].AsInt()).second) {
      return Status::InvalidArgument(
          "W repeats (CID,LWID) = (" + std::to_string(row[0].AsInt()) + "," +
          std::to_string(row[1].AsInt()) + ")");
    }
    w_mass[row[0].AsInt()] += row[2].AsDouble();
  }
  for (const auto& [cid, mass] : w_mass) {
    if (std::abs(mass - 1.0) > 1e-6) {
      return Status::InvalidArgument("component " + std::to_string(cid) +
                                     " has probability mass " +
                                     std::to_string(mass));
    }
  }

  // F: every row covers an existing '?' cell exactly once and names a
  // component that W declares.
  std::map<std::tuple<std::string, int64_t, std::string>, int64_t> f_cid;
  std::set<int64_t> f_cids;
  for (size_t r = 0; r < f_rel->NumRows(); ++r) {
    rel::TupleRef row = f_rel->row(r);
    std::tuple<std::string, int64_t, std::string> key{
        std::string(row[0].AsStringView()), row[1].AsInt(),
        std::string(row[2].AsStringView())};
    if (!holes.count(key)) {
      return Status::InvalidArgument(
          "F row " + std::get<0>(key) + ".t" +
          std::to_string(std::get<1>(key)) + "." + std::get<2>(key) +
          " does not point at a '?' cell");
    }
    if (!f_cid.emplace(key, row[3].AsInt()).second) {
      return Status::InvalidArgument(
          "F covers " + std::get<0>(key) + ".t" +
          std::to_string(std::get<1>(key)) + "." + std::get<2>(key) +
          " twice");
    }
    if (!w_lwids.count(row[3].AsInt())) {
      return Status::InvalidArgument("F references CID " +
                                     std::to_string(row[3].AsInt()) +
                                     " absent from W");
    }
    f_cids.insert(row[3].AsInt());
  }
  for (const auto& hole : holes) {
    if (!f_cid.count(hole)) {
      return Status::InvalidArgument(
          "placeholder " + std::get<0>(hole) + ".t" +
          std::to_string(std::get<1>(hole)) + "." + std::get<2>(hole) +
          " has no F row");
    }
  }

  // C: values belong to a declared placeholder and local world.
  std::set<std::tuple<std::string, int64_t, std::string, int64_t>> c_seen;
  for (size_t r = 0; r < c_rel->NumRows(); ++r) {
    rel::TupleRef row = c_rel->row(r);
    std::tuple<std::string, int64_t, std::string> key{
        std::string(row[0].AsStringView()), row[1].AsInt(),
        std::string(row[2].AsStringView())};
    auto it = f_cid.find(key);
    if (it == f_cid.end()) {
      return Status::InvalidArgument(
          "orphaned C row for " + std::get<0>(key) + ".t" +
          std::to_string(std::get<1>(key)) + "." + std::get<2>(key));
    }
    if (!w_lwids[it->second].count(row[3].AsInt())) {
      return Status::InvalidArgument(
          "C row for " + std::get<0>(key) + ".t" +
          std::to_string(std::get<1>(key)) + "." + std::get<2>(key) +
          " names LWID " + std::to_string(row[3].AsInt()) +
          " absent from its component");
    }
    if (row[4].is_bottom() || row[4].is_question()) {
      return Status::InvalidArgument("C stores a ⊥/'?' value");
    }
    if (!c_seen.insert({std::get<0>(key), std::get<1>(key), std::get<2>(key),
                        row[3].AsInt()})
             .second) {
      return Status::InvalidArgument(
          "C repeats a (field, LWID) value for " + std::get<0>(key) + ".t" +
          std::to_string(std::get<1>(key)) + "." + std::get<2>(key));
    }
  }

  // W: no orphaned local worlds.
  for (const auto& [cid, lwids] : w_lwids) {
    if (!f_cids.count(cid)) {
      return Status::InvalidArgument("W declares CID " + std::to_string(cid) +
                                     " that no F row references");
    }
  }
  return Status::Ok();
}

}  // namespace maywsd::core
