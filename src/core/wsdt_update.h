// Representation-native updates on WSDTs.
//
// Each operator applies the one-world semantics of rel::ApplyUpdate in
// every represented world at once, in place:
//   - inserts append template rows (certain, or conditionally present),
//   - deletes ⊥-mark the affected local worlds (rows whose predicate is
//     certain are settled on the template; unknown rows compose the
//     referenced placeholder components, exactly like WsdtSelect),
//   - modifies overwrite template cells or component values per world.
//
// A world condition ("apply only in worlds where relation G is non-empty")
// is carried by a WsdtUpdateGuard analyzed from G: the components carrying
// G's conditional-presence ⊥s are composed into one, and affected rows are
// correlated with that component — components are split (composed) only
// where the world condition forces it. G must be a snapshot of the
// condition's answer (the engine driver materializes it; see
// engine/update_plan.h), so mutating the target relation cannot feed back
// into the guard.

#ifndef MAYWSD_CORE_WSDT_UPDATE_H_
#define MAYWSD_CORE_WSDT_UPDATE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/predicate.h"
#include "rel/relation.h"
#include "rel/update.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// How a world condition restricts an update on a WSDT.
class WsdtUpdateGuard {
 public:
  enum class Mode {
    kAlways,       ///< unconditional, or the guard is non-empty in every world
    kNever,        ///< the guard is empty in every world: the update is a no-op
    kConditional,  ///< non-emptiness varies; `comp()` correlates it
  };

  /// The unconditional guard.
  static WsdtUpdateGuard Always() { return WsdtUpdateGuard(Mode::kAlways); }

  /// Analyzes relation `guard_rel`: kAlways when some row exists in every
  /// world, kNever when there are no rows, otherwise kConditional with all
  /// of the relation's presence-carrying components composed into one.
  static Result<WsdtUpdateGuard> Analyze(Wsdt& wsdt,
                                         const std::string& guard_rel);

  Mode mode() const { return mode_; }

  /// The component the guard's world selection lives in (kConditional).
  size_t comp() const { return comp_; }

  /// Recomputes the per-local-world selection bitmap of comp() — one entry
  /// per local world, true where the guard relation is non-empty. Call
  /// after composing further components into comp() (composition changes
  /// the local-world count).
  Result<std::vector<bool>> Selected(const Wsdt& wsdt) const;

 private:
  explicit WsdtUpdateGuard(Mode mode) : mode_(mode) {}

  Mode mode_;
  size_t comp_ = 0;
  /// Per guard row: the fields whose component column carried ⊥ at
  /// analysis time (all of them live in comp()).
  std::vector<std::vector<FieldKey>> row_presence_fields_;
};

/// insert `tuples` into `rel` in the worlds selected by `guard`.
Status WsdtInsertTuples(Wsdt& wsdt, const std::string& rel,
                        const rel::Relation& tuples,
                        const WsdtUpdateGuard& guard);

/// delete from `rel` where `pred`, in the worlds selected by `guard`.
Status WsdtDeleteWhere(Wsdt& wsdt, const std::string& rel,
                       const rel::Predicate& pred,
                       const WsdtUpdateGuard& guard);

/// update `rel` set `assignments` where `pred`, in the worlds selected by
/// `guard`.
Status WsdtModifyWhere(Wsdt& wsdt, const std::string& rel,
                       const rel::Predicate& pred,
                       std::span<const rel::Assignment> assignments,
                       const WsdtUpdateGuard& guard);

/// Dispatches `op` (already validated by the engine driver) to the three
/// operators above. `guard_rel` names the materialized world-condition
/// answer; empty = unconditional.
Status WsdtApplyUpdate(Wsdt& wsdt, const rel::UpdateOp& op,
                       const std::string& guard_rel);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSDT_UPDATE_H_
