// Representation-native updates on WSDTs.
//
// Each operator applies the one-world semantics of rel::ApplyUpdate in
// every represented world at once, in place:
//   - inserts append template rows (certain, or conditionally present),
//   - deletes ⊥-mark the affected local worlds (rows whose predicate is
//     certain are settled on the template; unknown rows compose the
//     referenced placeholder components, exactly like WsdtSelect),
//   - modifies overwrite template cells or component values per world.
//
// A world condition ("apply only in worlds where relation G is non-empty")
// is carried by a WsdtUpdateGuard analyzed from G: the components carrying
// G's conditional-presence ⊥s are composed into one, and affected rows are
// correlated with that component — components are split (composed) only
// where the world condition forces it. G must be a snapshot of the
// condition's answer (the engine driver materializes it; see
// engine/update_plan.h), so mutating the target relation cannot feed back
// into the guard.

#ifndef MAYWSD_CORE_WSDT_UPDATE_H_
#define MAYWSD_CORE_WSDT_UPDATE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/predicate.h"
#include "rel/relation.h"
#include "rel/update.h"
#include "core/update_guard.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// UpdateGuard customization point (see core/update_guard.h): per template
/// row of `guard_rel`, the row's '?' placeholder fields — the only cells
/// whose component column can carry a conditional-presence ⊥ (certain
/// template cells exist in every world).
Result<std::vector<std::vector<FieldKey>>> GuardSlotCandidates(
    const Wsdt& wsdt, const std::string& guard_rel);

/// How a world condition restricts an update on a WSDT (see
/// core/update_guard.h for the mode semantics and the shared analysis).
using WsdtUpdateGuard = UpdateGuard<Wsdt>;

/// insert `tuples` into `rel` in the worlds selected by `guard`.
Status WsdtInsertTuples(Wsdt& wsdt, const std::string& rel,
                        const rel::Relation& tuples,
                        const WsdtUpdateGuard& guard);

/// delete from `rel` where `pred`, in the worlds selected by `guard`.
Status WsdtDeleteWhere(Wsdt& wsdt, const std::string& rel,
                       const rel::Predicate& pred,
                       const WsdtUpdateGuard& guard);

/// update `rel` set `assignments` where `pred`, in the worlds selected by
/// `guard`.
Status WsdtModifyWhere(Wsdt& wsdt, const std::string& rel,
                       const rel::Predicate& pred,
                       std::span<const rel::Assignment> assignments,
                       const WsdtUpdateGuard& guard);

/// Dispatches `op` (already validated by the engine driver) to the three
/// operators above. `guard_rel` names the materialized world-condition
/// answer; empty = unconditional.
Status WsdtApplyUpdate(Wsdt& wsdt, const rel::UpdateOp& op,
                       const std::string& guard_rel);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSDT_UPDATE_H_
