#include "core/wsdt_algebra.h"

#include <algorithm>
#include <functional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "core/engine/plan_driver.h"
#include "core/engine/wsdt_backend.h"
#include "core/wsd.h"
#include "core/wsd_algebra.h"

namespace maywsd::core {

namespace {

/// Distinct non-⊥ values of a component column, in first-seen order.
std::vector<rel::Value> PossibleColumnValues(const Wsdt& wsdt,
                                             const FieldKey& field) {
  std::vector<rel::Value> out;
  auto loc_or = wsdt.Locate(field);
  if (!loc_or.ok()) return out;
  FieldLoc loc = loc_or.value();
  const Component& comp = wsdt.component(loc.comp);
  size_t col = static_cast<size_t>(loc.col);
  std::unordered_set<rel::Value> seen;
  for (size_t w = 0; w < comp.NumWorlds(); ++w) {
    const rel::Value& v = comp.at(w, col);
    if (!v.is_bottom() && seen.insert(v).second) out.push_back(v);
  }
  return out;
}

/// Copies template row `r` of `src` into `out_tmpl` (appending), copying
/// the '?' component columns under the new tuple id. Returns the new id.
Result<TupleId> CopyRowInto(Wsdt& wsdt, const rel::Relation& src_tmpl,
                            Symbol src_sym, size_t r,
                            rel::Relation* out_tmpl, Symbol out_sym) {
  TupleId n = static_cast<TupleId>(out_tmpl->NumRows());
  rel::TupleRef row = src_tmpl.row(r);
  out_tmpl->AppendRow(row.span());
  for (size_t a = 0; a < src_tmpl.arity(); ++a) {
    if (!row[a].is_question()) continue;
    FieldKey sf(src_sym, static_cast<TupleId>(r),
                src_tmpl.schema().attr(a).name);
    FieldKey df(out_sym, n, src_tmpl.schema().attr(a).name);
    MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(sf, df));
  }
  return n;
}

/// Serialized key of a fully-certain row (for duplicate merging).
std::string CertainRowKey(rel::TupleRef row) {
  std::string key;
  for (size_t a = 0; a < row.arity(); ++a) {
    key += row[a].ToString();
    key += '\x1f';
  }
  return key;
}

bool RowFullyCertain(rel::TupleRef row) {
  for (size_t a = 0; a < row.arity(); ++a) {
    if (row[a].is_question()) return false;
  }
  return true;
}

}  // namespace

bool EvalPredicateResolved(
    const rel::Predicate& pred,
    const std::function<rel::Value(const std::string&)>& get) {
  using K = rel::Predicate::Kind;
  switch (pred.kind()) {
    case K::kTrue:
      return true;
    case K::kCmpConst:
      return get(pred.lhs_attr()).Satisfies(pred.op(), pred.constant());
    case K::kCmpAttr:
      return get(pred.lhs_attr()).Satisfies(pred.op(), get(pred.rhs_attr()));
    case K::kAnd:
      return EvalPredicateResolved(pred.left(), get) &&
             EvalPredicateResolved(pred.right(), get);
    case K::kOr:
      return EvalPredicateResolved(pred.left(), get) ||
             EvalPredicateResolved(pred.right(), get);
    case K::kNot:
      return !EvalPredicateResolved(pred.left(), get);
  }
  return false;
}

Result<Tri> TriEvalPredicate(const rel::Predicate& pred,
                             const rel::Schema& schema, rel::TupleRef row) {
  using K = rel::Predicate::Kind;
  switch (pred.kind()) {
    case K::kTrue:
      return Tri::kTrue;
    case K::kCmpConst: {
      auto idx = schema.IndexOf(pred.lhs_attr());
      if (!idx) return Status::NotFound("attribute " + pred.lhs_attr());
      if (row[*idx].is_question()) return Tri::kUnknown;
      return row[*idx].Satisfies(pred.op(), pred.constant()) ? Tri::kTrue
                                                             : Tri::kFalse;
    }
    case K::kCmpAttr: {
      auto li = schema.IndexOf(pred.lhs_attr());
      auto ri = schema.IndexOf(pred.rhs_attr());
      if (!li || !ri) {
        return Status::NotFound("attribute " + pred.lhs_attr() + "/" +
                                pred.rhs_attr());
      }
      if (row[*li].is_question() || row[*ri].is_question()) {
        return Tri::kUnknown;
      }
      return row[*li].Satisfies(pred.op(), row[*ri]) ? Tri::kTrue
                                                     : Tri::kFalse;
    }
    case K::kAnd: {
      MAYWSD_ASSIGN_OR_RETURN(Tri l,
                              TriEvalPredicate(pred.left(), schema, row));
      if (l == Tri::kFalse) return Tri::kFalse;
      MAYWSD_ASSIGN_OR_RETURN(Tri r,
                              TriEvalPredicate(pred.right(), schema, row));
      if (r == Tri::kFalse) return Tri::kFalse;
      if (l == Tri::kTrue && r == Tri::kTrue) return Tri::kTrue;
      return Tri::kUnknown;
    }
    case K::kOr: {
      MAYWSD_ASSIGN_OR_RETURN(Tri l,
                              TriEvalPredicate(pred.left(), schema, row));
      if (l == Tri::kTrue) return Tri::kTrue;
      MAYWSD_ASSIGN_OR_RETURN(Tri r,
                              TriEvalPredicate(pred.right(), schema, row));
      if (r == Tri::kTrue) return Tri::kTrue;
      if (l == Tri::kFalse && r == Tri::kFalse) return Tri::kFalse;
      return Tri::kUnknown;
    }
    case K::kNot: {
      MAYWSD_ASSIGN_OR_RETURN(Tri l,
                              TriEvalPredicate(pred.left(), schema, row));
      if (l == Tri::kTrue) return Tri::kFalse;
      if (l == Tri::kFalse) return Tri::kTrue;
      return Tri::kUnknown;
    }
  }
  return Status::Internal("unknown predicate kind");
}

Status WsdtCopy(Wsdt& wsdt, const std::string& src, const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* src_tmpl, wsdt.Template(src));
  if (wsdt.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  Symbol src_sym = InternString(src);
  Symbol out_sym = InternString(out);
  rel::Relation out_tmpl(src_tmpl->schema(), out);
  out_tmpl.Reserve(src_tmpl->NumRows());
  for (size_t r = 0; r < src_tmpl->NumRows(); ++r) {
    // Normalization on the way out (Figure 20's remove-invalid-tuples):
    // a row whose placeholder column is ⊥ in every local world exists in
    // no world and is not copied.
    rel::TupleRef row = src_tmpl->row(r);
    bool invalid = false;
    for (size_t a = 0; a < src_tmpl->arity() && !invalid; ++a) {
      if (!row[a].is_question()) continue;
      FieldKey f(src_sym, static_cast<TupleId>(r),
                 src_tmpl->schema().attr(a).name);
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
      if (wsdt.component(loc.comp).ColumnAllBottom(
              static_cast<size_t>(loc.col))) {
        invalid = true;
      }
    }
    if (invalid) continue;
    MAYWSD_RETURN_IF_ERROR(
        CopyRowInto(wsdt, *src_tmpl, src_sym, r, &out_tmpl, out_sym)
            .status());
  }
  return wsdt.AddTemplateRelation(std::move(out_tmpl));
}

Status WsdtSelect(Wsdt& wsdt, const std::string& src, const std::string& out,
                  const rel::Predicate& pred) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* src_ptr, wsdt.Template(src));
  if (wsdt.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  const rel::Relation& src_tmpl = *src_ptr;
  const rel::Schema schema = src_tmpl.schema();
  Symbol src_sym = InternString(src);
  Symbol out_sym = InternString(out);

  // Attributes the predicate reads (deduplicated), resolved once.
  std::vector<std::string> ref_attrs = pred.ReferencedAttributes();
  std::sort(ref_attrs.begin(), ref_attrs.end());
  ref_attrs.erase(std::unique(ref_attrs.begin(), ref_attrs.end()),
                  ref_attrs.end());
  for (const std::string& a : ref_attrs) {
    if (!a.empty() && !schema.Contains(a)) {
      return Status::NotFound("predicate attribute " + a + " not in " + src);
    }
  }

  rel::Relation out_tmpl(schema, out);
  for (size_t r = 0; r < src_tmpl.NumRows(); ++r) {
    rel::TupleRef row = src_tmpl.row(r);
    MAYWSD_ASSIGN_OR_RETURN(Tri tri, TriEvalPredicate(pred, schema, row));
    if (tri == Tri::kFalse) continue;
    MAYWSD_ASSIGN_OR_RETURN(
        TupleId n, CopyRowInto(wsdt, src_tmpl, src_sym, r, &out_tmpl, out_sym));
    if (tri == Tri::kTrue) continue;

    // Unknown: compose the components of the referenced placeholders of
    // this tuple (usually a single one) and ⊥-mark failing local worlds.
    std::set<int32_t> comps;
    std::vector<std::string> unknown_attrs;
    for (const std::string& a : ref_attrs) {
      auto idx = schema.IndexOf(a);
      if (!idx || !row[*idx].is_question()) continue;
      unknown_attrs.push_back(a);
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc,
          wsdt.Locate(FieldKey(out_sym, n, InternString(a))));
      comps.insert(loc.comp);
    }
    auto it = comps.begin();
    size_t target = static_cast<size_t>(*it);
    for (++it; it != comps.end(); ++it) {
      MAYWSD_RETURN_IF_ERROR(
          wsdt.ComposeInPlace(target, static_cast<size_t>(*it)));
    }
    // Column positions of the unknown attributes in the composed component.
    std::vector<std::pair<std::string, size_t>> attr_cols;
    for (const std::string& a : unknown_attrs) {
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc,
          wsdt.Locate(FieldKey(out_sym, n, InternString(a))));
      attr_cols.emplace_back(a, static_cast<size_t>(loc.col));
    }
    Component& comp = wsdt.mutable_component(target);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      bool absent = false;
      for (const auto& [a, col] : attr_cols) {
        if (comp.at(w, col).is_bottom()) absent = true;
      }
      if (absent) continue;  // tuple already absent in this local world
      auto get = [&](const std::string& name) -> rel::Value {
        for (const auto& [a, col] : attr_cols) {
          if (a == name) return comp.at(w, col);
        }
        auto idx = schema.IndexOf(name);
        return idx ? row[*idx] : rel::Value::Bottom();
      };
      if (!EvalPredicateResolved(pred, get)) {
        for (const auto& [a, col] : attr_cols) {
          comp.at(w, col) = rel::Value::Bottom();
        }
      }
    }
    comp.PropagateBottom();
  }
  return wsdt.AddTemplateRelation(std::move(out_tmpl));
}

Status WsdtProject(Wsdt& wsdt, const std::string& src, const std::string& out,
                   const std::vector<std::string>& attrs) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* src_ptr, wsdt.Template(src));
  if (wsdt.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  const rel::Relation& src_tmpl = *src_ptr;
  const rel::Schema schema = src_tmpl.schema();
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema out_schema, schema.Project(attrs));
  Symbol src_sym = InternString(src);
  Symbol out_sym = InternString(out);

  std::vector<size_t> keep_cols;
  for (const std::string& a : attrs) keep_cols.push_back(*schema.IndexOf(a));
  std::vector<size_t> drop_cols;
  for (size_t a = 0; a < schema.arity(); ++a) {
    if (std::find(keep_cols.begin(), keep_cols.end(), a) == keep_cols.end()) {
      drop_cols.push_back(a);
    }
  }

  rel::Relation out_tmpl(out_schema, out);
  std::unordered_set<std::string> seen_certain;
  std::vector<rel::Value> buf(out_schema.arity());

  for (size_t r = 0; r < src_tmpl.NumRows(); ++r) {
    rel::TupleRef row = src_tmpl.row(r);
    for (size_t i = 0; i < keep_cols.size(); ++i) buf[i] = row[keep_cols[i]];

    // Dropped placeholders whose column carries a ⊥ encode conditional
    // presence and must survive the projection.
    std::vector<size_t> drop_bottom;
    for (size_t a : drop_cols) {
      if (!row[a].is_question()) continue;
      FieldKey f(src_sym, static_cast<TupleId>(r), schema.attr(a).name);
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
      if (wsdt.component(loc.comp).ColumnHasBottom(
              static_cast<size_t>(loc.col))) {
        drop_bottom.push_back(a);
      }
    }
    bool certain = drop_bottom.empty();
    for (size_t i = 0; i < keep_cols.size() && certain; ++i) {
      if (buf[i].is_question()) certain = false;
    }
    if (certain) {
      // Fully certain result tuple: set semantics merges duplicates.
      rel::TupleRef probe(buf.data(), buf.size());
      std::string key = CertainRowKey(probe);
      if (!seen_certain.insert(key).second) continue;
      out_tmpl.AppendRow(buf);
      continue;
    }

    TupleId n = static_cast<TupleId>(out_tmpl.NumRows());
    out_tmpl.AppendRow(buf);
    // Copy the kept placeholders.
    std::vector<FieldKey> kept_fields;
    for (size_t i = 0; i < keep_cols.size(); ++i) {
      if (!buf[i].is_question()) continue;
      FieldKey sf(src_sym, static_cast<TupleId>(r),
                  schema.attr(keep_cols[i]).name);
      FieldKey df(out_sym, n, out_schema.attr(i).name);
      MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(sf, df));
      kept_fields.push_back(df);
    }
    if (drop_bottom.empty()) continue;

    // Presence of this tuple depends on dropped columns: bring their ⊥
    // patterns into the kept columns via shadow copies + composition.
    FieldKey target_field;
    if (!kept_fields.empty()) {
      target_field = kept_fields[0];
    } else {
      // Only certain kept fields: materialize a presence helper on the
      // first kept attribute, correlated with the first dropped column.
      size_t d0 = drop_bottom[0];
      FieldKey sf(src_sym, static_cast<TupleId>(r), schema.attr(d0).name);
      FieldKey hf(out_sym, n, out_schema.attr(0).name);
      MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(sf, hf));
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(hf));
      Component& comp = wsdt.mutable_component(loc.comp);
      size_t col = static_cast<size_t>(loc.col);
      rel::Value kept_value = buf[0];
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        if (!comp.at(w, col).is_bottom()) comp.at(w, col) = kept_value;
      }
      out_tmpl.SetCell(static_cast<size_t>(n), 0, rel::Value::Question());
      target_field = hf;
      drop_bottom.erase(drop_bottom.begin());
    }
    // Shadow-copy the remaining ⊥-carrying dropped columns, compose them
    // with the target, propagate ⊥ to the whole tuple, drop the shadows.
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc tloc, wsdt.Locate(target_field));
    for (size_t a : drop_bottom) {
      FieldKey sf(src_sym, static_cast<TupleId>(r), schema.attr(a).name);
      FieldKey shadow(out_sym, n,
                      InternString("__shadow_" +
                                   std::string(schema.attr(a).name_view())));
      MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(sf, shadow));
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc sloc, wsdt.Locate(shadow));
      if (sloc.comp != tloc.comp) {
        MAYWSD_RETURN_IF_ERROR(
            wsdt.ComposeInPlace(static_cast<size_t>(tloc.comp),
                                static_cast<size_t>(sloc.comp)));
      }
      MAYWSD_ASSIGN_OR_RETURN(tloc, wsdt.Locate(target_field));
    }
    wsdt.mutable_component(static_cast<size_t>(tloc.comp)).PropagateBottom();
    for (size_t a : drop_bottom) {
      FieldKey shadow(out_sym, n,
                      InternString("__shadow_" +
                                   std::string(schema.attr(a).name_view())));
      MAYWSD_RETURN_IF_ERROR(wsdt.DropField(shadow));
    }
  }
  return wsdt.AddTemplateRelation(std::move(out_tmpl));
}

Status WsdtUnion(Wsdt& wsdt, const std::string& left, const std::string& right,
                 const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* l_ptr, wsdt.Template(left));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* r_ptr, wsdt.Template(right));
  if (l_ptr->schema() != r_ptr->schema()) {
    return Status::InvalidArgument("union of incompatible schemas");
  }
  if (wsdt.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  Symbol out_sym = InternString(out);
  rel::Relation out_tmpl(l_ptr->schema(), out);
  std::unordered_set<std::string> seen_certain;
  for (const std::string& side : {left, right}) {
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* src_ptr,
                            wsdt.Template(side));
    const rel::Relation& src_tmpl = *src_ptr;
    Symbol src_sym = InternString(side);
    for (size_t r = 0; r < src_tmpl.NumRows(); ++r) {
      rel::TupleRef row = src_tmpl.row(r);
      if (RowFullyCertain(row) &&
          !seen_certain.insert(CertainRowKey(row)).second) {
        continue;
      }
      MAYWSD_RETURN_IF_ERROR(
          CopyRowInto(wsdt, src_tmpl, src_sym, r, &out_tmpl, out_sym)
              .status());
    }
  }
  return wsdt.AddTemplateRelation(std::move(out_tmpl));
}

Status WsdtProduct(Wsdt& wsdt, const std::string& left,
                   const std::string& right, const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* l_ptr, wsdt.Template(left));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* r_ptr, wsdt.Template(right));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema out_schema,
                          l_ptr->schema().Concat(r_ptr->schema()));
  if (wsdt.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  const rel::Relation& l_tmpl = *l_ptr;
  const rel::Relation& r_tmpl = *r_ptr;
  Symbol l_sym = InternString(left);
  Symbol r_sym = InternString(right);
  Symbol out_sym = InternString(out);
  rel::Relation out_tmpl(out_schema, out);
  std::vector<rel::Value> buf(out_schema.arity());
  for (size_t i = 0; i < l_tmpl.NumRows(); ++i) {
    rel::TupleRef lr = l_tmpl.row(i);
    for (size_t j = 0; j < r_tmpl.NumRows(); ++j) {
      rel::TupleRef rr = r_tmpl.row(j);
      std::copy(lr.data(), lr.data() + lr.arity(), buf.begin());
      std::copy(rr.data(), rr.data() + rr.arity(),
                buf.begin() + static_cast<long>(lr.arity()));
      TupleId n = static_cast<TupleId>(out_tmpl.NumRows());
      out_tmpl.AppendRow(buf);
      for (size_t a = 0; a < l_tmpl.arity(); ++a) {
        if (!lr[a].is_question()) continue;
        MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(
            FieldKey(l_sym, static_cast<TupleId>(i),
                     l_tmpl.schema().attr(a).name),
            FieldKey(out_sym, n, out_schema.attr(a).name)));
      }
      for (size_t a = 0; a < r_tmpl.arity(); ++a) {
        if (!rr[a].is_question()) continue;
        MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(
            FieldKey(r_sym, static_cast<TupleId>(j),
                     r_tmpl.schema().attr(a).name),
            FieldKey(out_sym, n, out_schema.attr(l_tmpl.arity() + a).name)));
      }
    }
  }
  return wsdt.AddTemplateRelation(std::move(out_tmpl));
}

namespace {

/// Enforces `out.tn.A == out.tn.B`-style equality between a possibly
/// uncertain output field and either a certain value or another output
/// field, ⊥-marking local worlds that violate it.
Status EnforceFieldEquality(Wsdt& wsdt, const FieldKey& a_field,
                            bool a_uncertain, const rel::Value& a_certain,
                            const FieldKey& b_field, bool b_uncertain,
                            const rel::Value& b_certain) {
  if (!a_uncertain && !b_uncertain) {
    return Status::Internal("certain-certain equality must be pre-filtered");
  }
  if (a_uncertain && b_uncertain) {
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc la, wsdt.Locate(a_field));
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc lb, wsdt.Locate(b_field));
    if (la.comp != lb.comp) {
      MAYWSD_RETURN_IF_ERROR(
          wsdt.ComposeInPlace(static_cast<size_t>(la.comp),
                              static_cast<size_t>(lb.comp)));
      MAYWSD_ASSIGN_OR_RETURN(la, wsdt.Locate(a_field));
      MAYWSD_ASSIGN_OR_RETURN(lb, wsdt.Locate(b_field));
    }
    Component& comp = wsdt.mutable_component(la.comp);
    size_t ca = static_cast<size_t>(la.col);
    size_t cb = static_cast<size_t>(lb.col);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      const rel::Value& va = comp.at(w, ca);
      const rel::Value& vb = comp.at(w, cb);
      if (va.is_bottom() || vb.is_bottom()) {
        // Either side absent: the pair tuple does not exist in this world;
        // make that explicit on the a-side.
        comp.at(w, ca) = rel::Value::Bottom();
      } else if (!(va == vb)) {
        comp.at(w, ca) = rel::Value::Bottom();
      }
    }
    comp.PropagateBottom();
    return Status::Ok();
  }
  // Exactly one side uncertain.
  const FieldKey& field = a_uncertain ? a_field : b_field;
  const rel::Value& constant = a_uncertain ? b_certain : a_certain;
  MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(field));
  Component& comp = wsdt.mutable_component(loc.comp);
  size_t col = static_cast<size_t>(loc.col);
  for (size_t w = 0; w < comp.NumWorlds(); ++w) {
    const rel::Value& v = comp.at(w, col);
    if (!v.is_bottom() && !(v == constant)) {
      comp.at(w, col) = rel::Value::Bottom();
    }
  }
  comp.PropagateBottom();
  return Status::Ok();
}

}  // namespace

Status WsdtJoin(Wsdt& wsdt, const std::string& left, const std::string& right,
                const std::string& out, const std::string& left_attr,
                const std::string& right_attr) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* l_ptr, wsdt.Template(left));
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* r_ptr, wsdt.Template(right));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema out_schema,
                          l_ptr->schema().Concat(r_ptr->schema()));
  if (wsdt.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  const rel::Relation& l_tmpl = *l_ptr;
  const rel::Relation& r_tmpl = *r_ptr;
  auto lcol_or = l_tmpl.schema().IndexOf(left_attr);
  auto rcol_or = r_tmpl.schema().IndexOf(right_attr);
  if (!lcol_or || !rcol_or) {
    return Status::NotFound("join attribute " + left_attr + "/" + right_attr);
  }
  size_t lcol = *lcol_or;
  size_t rcol = *rcol_or;
  Symbol l_sym = InternString(left);
  Symbol r_sym = InternString(right);
  Symbol out_sym = InternString(out);
  Symbol la_sym = l_tmpl.schema().attr(lcol).name;
  Symbol ra_sym = r_tmpl.schema().attr(rcol).name;

  // Index the right side: certain rows by key value; uncertain rows by
  // every possible value.
  std::unordered_map<rel::Value, std::vector<size_t>> certain_r;
  std::unordered_map<rel::Value, std::vector<size_t>> possible_r;
  for (size_t j = 0; j < r_tmpl.NumRows(); ++j) {
    const rel::Value& v = r_tmpl.row(j)[rcol];
    if (v.is_question()) {
      for (const rel::Value& pv : PossibleColumnValues(
               wsdt, FieldKey(r_sym, static_cast<TupleId>(j), ra_sym))) {
        possible_r[pv].push_back(j);
      }
    } else {
      certain_r[v].push_back(j);
    }
  }

  rel::Relation out_tmpl(out_schema, out);
  std::vector<rel::Value> buf(out_schema.arity());

  // Emits the pair (i, j); `cond` = the key equality is not certain.
  auto emit = [&](size_t i, size_t j, bool cond) -> Status {
    rel::TupleRef lr = l_tmpl.row(i);
    rel::TupleRef rr = r_tmpl.row(j);
    std::copy(lr.data(), lr.data() + lr.arity(), buf.begin());
    std::copy(rr.data(), rr.data() + rr.arity(),
              buf.begin() + static_cast<long>(lr.arity()));
    TupleId n = static_cast<TupleId>(out_tmpl.NumRows());
    out_tmpl.AppendRow(buf);
    for (size_t a = 0; a < l_tmpl.arity(); ++a) {
      if (!lr[a].is_question()) continue;
      MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(
          FieldKey(l_sym, static_cast<TupleId>(i),
                   l_tmpl.schema().attr(a).name),
          FieldKey(out_sym, n, out_schema.attr(a).name)));
    }
    for (size_t a = 0; a < r_tmpl.arity(); ++a) {
      if (!rr[a].is_question()) continue;
      MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(
          FieldKey(r_sym, static_cast<TupleId>(j),
                   r_tmpl.schema().attr(a).name),
          FieldKey(out_sym, n, out_schema.attr(l_tmpl.arity() + a).name)));
    }
    if (!cond) return Status::Ok();
    bool l_unc = lr[lcol].is_question();
    bool r_unc = rr[rcol].is_question();
    return EnforceFieldEquality(
        wsdt, FieldKey(out_sym, n, out_schema.attr(lcol).name), l_unc,
        lr[lcol],
        FieldKey(out_sym, n, out_schema.attr(l_tmpl.arity() + rcol).name),
        r_unc, rr[rcol]);
  };

  for (size_t i = 0; i < l_tmpl.NumRows(); ++i) {
    const rel::Value& lv = l_tmpl.row(i)[lcol];
    if (!lv.is_question()) {
      auto it = certain_r.find(lv);
      if (it != certain_r.end()) {
        for (size_t j : it->second) {
          MAYWSD_RETURN_IF_ERROR(emit(i, j, false));
        }
      }
      auto pit = possible_r.find(lv);
      if (pit != possible_r.end()) {
        for (size_t j : pit->second) {
          MAYWSD_RETURN_IF_ERROR(emit(i, j, true));
        }
      }
    } else {
      std::vector<rel::Value> pv = PossibleColumnValues(
          wsdt, FieldKey(l_sym, static_cast<TupleId>(i), la_sym));
      std::set<size_t> uncertain_matches;
      for (const rel::Value& v : pv) {
        auto it = certain_r.find(v);
        if (it != certain_r.end()) {
          for (size_t j : it->second) {
            MAYWSD_RETURN_IF_ERROR(emit(i, j, true));
          }
        }
        auto pit = possible_r.find(v);
        if (pit != possible_r.end()) {
          for (size_t j : pit->second) uncertain_matches.insert(j);
        }
      }
      for (size_t j : uncertain_matches) {
        MAYWSD_RETURN_IF_ERROR(emit(i, j, true));
      }
    }
  }
  return wsdt.AddTemplateRelation(std::move(out_tmpl));
}

Status WsdtRename(Wsdt& wsdt, const std::string& src, const std::string& out,
                  const std::vector<std::pair<std::string, std::string>>&
                      renames) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* src_ptr, wsdt.Template(src));
  if (wsdt.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  const rel::Relation& src_tmpl = *src_ptr;
  rel::Schema out_schema = src_tmpl.schema();
  for (const auto& [from, to] : renames) {
    MAYWSD_ASSIGN_OR_RETURN(out_schema, out_schema.Rename(from, to));
  }
  Symbol src_sym = InternString(src);
  Symbol out_sym = InternString(out);
  rel::Relation out_tmpl(out_schema, out);
  for (size_t r = 0; r < src_tmpl.NumRows(); ++r) {
    rel::TupleRef row = src_tmpl.row(r);
    out_tmpl.AppendRow(row.span());
    for (size_t a = 0; a < src_tmpl.arity(); ++a) {
      if (!row[a].is_question()) continue;
      MAYWSD_RETURN_IF_ERROR(wsdt.CopyFieldInto(
          FieldKey(src_sym, static_cast<TupleId>(r),
                   src_tmpl.schema().attr(a).name),
          FieldKey(out_sym, static_cast<TupleId>(r),
                   out_schema.attr(a).name)));
    }
  }
  return wsdt.AddTemplateRelation(std::move(out_tmpl));
}

Status WsdtDifference(Wsdt& wsdt, const std::string& left,
                      const std::string& right, const std::string& out) {
  // Difference is "by far the least efficient operation" (Section 4) and is
  // never evaluated at scale in the paper; we reuse the faithful WSD
  // algorithm through a conversion round-trip.
  MAYWSD_ASSIGN_OR_RETURN(Wsd wsd, wsdt.ToWsd());
  MAYWSD_RETURN_IF_ERROR(WsdDifference(wsd, left, right, out));
  MAYWSD_ASSIGN_OR_RETURN(Wsdt next, Wsdt::FromWsd(wsd));
  wsdt = std::move(next);
  return Status::Ok();
}

Status WsdtEvaluate(Wsdt& wsdt, const rel::Plan& plan, const std::string& out,
                    bool keep_temps) {
  engine::WsdtBackend backend(wsdt);
  return engine::Evaluate(backend, plan, out, keep_temps);
}

Status WsdtEvaluateOptimized(Wsdt& wsdt, const rel::Plan& plan,
                             const std::string& out) {
  engine::WsdtBackend backend(wsdt);
  return engine::EvaluateOptimized(backend, plan, out);
}

}  // namespace maywsd::core
