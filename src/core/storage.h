// Persistence: save/load a WSDT as a directory of CSV files in the uniform
// encoding (Figure 8) — one file per template relation plus C.csv, F.csv
// and W.csv. This is the on-disk layout a conventional RDBMS deployment of
// UWSDTs would bulk-load, and it makes experiment states reproducible
// across runs.

#ifndef MAYWSD_CORE_STORAGE_H_
#define MAYWSD_CORE_STORAGE_H_

#include <string>

#include "common/status.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// Writes `wsdt` into `directory` (created if missing): one
/// `<relation>.csv` per template plus `C.csv`, `F.csv`, `W.csv` and a
/// `MANIFEST` listing the template relations.
Status SaveWsdt(const Wsdt& wsdt, const std::string& directory);

/// Reads a WSDT back from a directory written by SaveWsdt.
Result<Wsdt> LoadWsdt(const std::string& directory);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_STORAGE_H_
