#include "core/wsd.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace maywsd::core {

Status Wsd::AddRelation(const std::string& name, rel::Schema schema,
                        TupleId max_tuples) {
  if (relation_by_name_.count(name)) {
    return Status::AlreadyExists("relation " + name);
  }
  if (max_tuples < 0) {
    return Status::InvalidArgument("negative max_tuples for " + name);
  }
  WsdRelation rel;
  rel.name = name;
  rel.name_sym = InternString(name);
  rel.schema = std::move(schema);
  rel.max_tuples = max_tuples;
  relation_by_name_[name] = relations_.size();
  relations_.push_back(std::move(rel));
  return Status::Ok();
}

Result<const WsdRelation*> Wsd::FindRelation(const std::string& name) const {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("relation " + name + " not in world-set schema");
  }
  return &relations_[it->second];
}

bool Wsd::HasRelation(const std::string& name) const {
  return relation_by_name_.count(name) > 0;
}

std::vector<std::string> Wsd::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, idx] : relation_by_name_) names.push_back(name);
  return names;
}

Status Wsd::DropRelation(const std::string& name) {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("relation " + name);
  }
  Symbol sym = relations_[it->second].name_sym;
  // Drop all fields of the relation, component by component.
  std::vector<FieldKey> to_drop;
  for (const auto& [field, loc] : pool().field_index) {
    if (field.rel == sym) to_drop.push_back(field);
  }
  for (const FieldKey& f : to_drop) {
    MAYWSD_RETURN_IF_ERROR(DropField(f));
  }
  // Keep the schema entry slot but remove it from the name map and the
  // relation list by tombstoning is unnecessary: relations_ is indexed by
  // relation_by_name_, so rebuild both.
  size_t gone = it->second;
  relations_.erase(relations_.begin() + static_cast<long>(gone));
  relation_by_name_.clear();
  for (size_t i = 0; i < relations_.size(); ++i) {
    relation_by_name_[relations_[i].name] = i;
  }
  return Status::Ok();
}

Status Wsd::CheckComponentFields(const Component& component) const {
  for (const FieldKey& f : component.fields()) {
    auto rel_it = relation_by_name_.find(std::string(SymbolName(f.rel)));
    if (rel_it == relation_by_name_.end()) {
      return Status::NotFound("component field " + f.ToString() +
                              " refers to unknown relation");
    }
    const WsdRelation& rel = relations_[rel_it->second];
    if (f.tuple < 0 || f.tuple >= rel.max_tuples) {
      return Status::InvalidArgument("component field " + f.ToString() +
                                     " tuple id out of range");
    }
    bool is_presence =
        std::find(rel.presence_attrs.begin(), rel.presence_attrs.end(),
                  f.attr) != rel.presence_attrs.end();
    if (!is_presence && !rel.schema.IndexOf(f.attr)) {
      return Status::NotFound("component field " + f.ToString() +
                              " refers to unknown attribute");
    }
    if (pool().field_index.count(f)) {
      return Status::AlreadyExists("field " + f.ToString() +
                                   " already covered by a component");
    }
  }
  return Status::Ok();
}

Status Wsd::AddComponent(Component component) {
  if (component.NumFields() == 0) {
    return Status::InvalidArgument("component must have at least one field");
  }
  if (component.empty()) {
    return Status::InvalidArgument("component must have at least one world");
  }
  MAYWSD_RETURN_IF_ERROR(CheckComponentFields(component));
  int32_t idx = static_cast<int32_t>(pool().components.size());
  for (size_t c = 0; c < component.NumFields(); ++c) {
    pool().field_index[component.field(c)] = FieldLoc{idx, static_cast<int32_t>(c)};
  }
  pool().components.push_back(std::move(component));
  pool().alive.push_back(true);
  return Status::Ok();
}

std::vector<size_t> Wsd::LiveComponents() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (pool().alive[i]) out.push_back(i);
  }
  return out;
}

size_t Wsd::NumLiveComponents() const {
  size_t n = 0;
  for (bool a : pool().alive) n += a;
  return n;
}

Result<FieldLoc> Wsd::Locate(const FieldKey& field) const {
  auto it = pool().field_index.find(field);
  if (it == pool().field_index.end()) {
    return Status::NotFound("field " + field.ToString() + " not present");
  }
  return it->second;
}

bool Wsd::HasField(const FieldKey& field) const {
  return pool().field_index.count(field) > 0;
}

Status Wsd::ComposeInPlace(size_t a, size_t b) {
  if (a == b) return Status::Ok();
  if (a >= pool().components.size() || b >= pool().components.size() || !pool().alive[a] ||
      !pool().alive[b]) {
    return Status::InvalidArgument("compose of dead or invalid component");
  }
  Component composed = Component::Compose(pool().components[a], pool().components[b]);
  size_t offset = pool().components[a].NumFields();
  pool().components[a] = std::move(composed);
  pool().alive[b] = false;
  // Re-point the moved fields of b (they now sit at column offset+i of a).
  const Component& merged = pool().components[a];
  for (size_t c = offset; c < merged.NumFields(); ++c) {
    pool().field_index[merged.field(c)] =
        FieldLoc{static_cast<int32_t>(a), static_cast<int32_t>(c)};
  }
  pool().components[b] = Component();
  return Status::Ok();
}

Status Wsd::DropField(const FieldKey& field) {
  auto it = pool().field_index.find(field);
  if (it == pool().field_index.end()) {
    return Status::NotFound("field " + field.ToString());
  }
  FieldLoc loc = it->second;
  Component& comp = pool().components[loc.comp];
  comp.DropColumns({static_cast<size_t>(loc.col)});
  pool().field_index.erase(it);
  // Columns after `col` shifted left by one.
  for (size_t c = static_cast<size_t>(loc.col); c < comp.NumFields(); ++c) {
    pool().field_index[comp.field(c)] =
        FieldLoc{loc.comp, static_cast<int32_t>(c)};
  }
  if (comp.NumFields() == 0) {
    // Zero-column component: dropping it is exact marginalization.
    pool().alive[loc.comp] = false;
    pool().components[loc.comp] = Component();
  }
  return Status::Ok();
}

Status Wsd::CopyFieldInto(const FieldKey& src, const FieldKey& dst) {
  auto it = pool().field_index.find(src);
  if (it == pool().field_index.end()) {
    return Status::NotFound("source field " + src.ToString());
  }
  if (pool().field_index.count(dst)) {
    return Status::AlreadyExists("destination field " + dst.ToString());
  }
  // Destination must be a declared, in-range field.
  auto rel_it = relation_by_name_.find(std::string(SymbolName(dst.rel)));
  if (rel_it == relation_by_name_.end()) {
    return Status::NotFound("destination relation of " + dst.ToString());
  }
  const WsdRelation& rel = relations_[rel_it->second];
  bool is_presence =
      std::find(rel.presence_attrs.begin(), rel.presence_attrs.end(),
                dst.attr) != rel.presence_attrs.end();
  if (dst.tuple < 0 || dst.tuple >= rel.max_tuples ||
      (!is_presence && !rel.schema.IndexOf(dst.attr))) {
    return Status::InvalidArgument("destination field out of range: " +
                                   dst.ToString());
  }
  FieldLoc loc = it->second;
  Component& comp = pool().components[loc.comp];
  comp.ExtDuplicateColumn(static_cast<size_t>(loc.col), dst);
  pool().field_index[dst] =
      FieldLoc{loc.comp, static_cast<int32_t>(comp.NumFields() - 1)};
  return Status::Ok();
}

Status Wsd::AddCertainField(const FieldKey& dst, const rel::Value& value) {
  // Interned: every certain field of the same value shares one payload node.
  return AddComponent(Component::Certain(dst, value));
}

Status Wsd::UpdateRelationSchema(const std::string& name, rel::Schema schema) {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("relation " + name);
  }
  WsdRelation& rel = relations_[it->second];
  for (const auto& [field, loc] : pool().field_index) {
    if (field.rel != rel.name_sym || schema.IndexOf(field.attr)) continue;
    bool is_presence =
        std::find(rel.presence_attrs.begin(), rel.presence_attrs.end(),
                  field.attr) != rel.presence_attrs.end();
    if (!is_presence) {
      return Status::InvalidArgument(
          "field " + field.ToString() + " not covered by new schema " +
          schema.ToString());
    }
  }
  rel.schema = std::move(schema);
  return Status::Ok();
}

Status Wsd::GrowRelation(const std::string& name, TupleId extra) {
  auto it = relation_by_name_.find(name);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("relation " + name);
  }
  if (extra < 0) {
    return Status::InvalidArgument("negative slot growth for " + name);
  }
  relations_[it->second].max_tuples += extra;
  return Status::Ok();
}

Status Wsd::ReplaceComponent(size_t index, std::vector<Component> parts) {
  if (index >= pool().components.size() || !pool().alive[index]) {
    return Status::InvalidArgument("replacing dead or invalid component");
  }
  // Verify the parts cover exactly the fields of the replaced component.
  std::vector<FieldKey> old_fields = pool().components[index].fields();
  std::vector<FieldKey> new_fields;
  for (const Component& part : parts) {
    for (const FieldKey& f : part.fields()) new_fields.push_back(f);
  }
  auto sorted = [](std::vector<FieldKey> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  if (sorted(old_fields) != sorted(new_fields)) {
    return Status::InvalidArgument(
        "replacement components do not cover the same fields");
  }
  // Remove old index entries, tombstone, then add the parts.
  for (const FieldKey& f : old_fields) pool().field_index.erase(f);
  pool().alive[index] = false;
  pool().components[index] = Component();
  for (Component& part : parts) {
    int32_t idx = static_cast<int32_t>(pool().components.size());
    for (size_t c = 0; c < part.NumFields(); ++c) {
      pool().field_index[part.field(c)] =
          FieldLoc{idx, static_cast<int32_t>(c)};
    }
    pool().components.push_back(std::move(part));
    pool().alive.push_back(true);
  }
  return Status::Ok();
}

void Wsd::CompactComponents() {
  std::vector<Component> live;
  live.reserve(pool().components.size());
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (pool().alive[i]) live.push_back(std::move(pool().components[i]));
  }
  pool().components = std::move(live);
  pool().alive.assign(pool().components.size(), true);
  pool().field_index.clear();
  for (size_t i = 0; i < pool().components.size(); ++i) {
    for (size_t c = 0; c < pool().components[i].NumFields(); ++c) {
      pool().field_index[pool().components[i].field(c)] =
          FieldLoc{static_cast<int32_t>(i), static_cast<int32_t>(c)};
    }
  }
}

std::vector<FieldKey> Wsd::FieldsOfTuple(const WsdRelation& rel,
                                         TupleId tid) const {
  std::vector<FieldKey> out;
  for (size_t a = 0; a < rel.schema.arity(); ++a) {
    FieldKey f(rel.name_sym, tid, rel.schema.attr(a).name);
    if (pool().field_index.count(f)) out.push_back(f);
  }
  return out;
}

bool Wsd::SlotPresent(const WsdRelation& rel, TupleId tid) const {
  return FieldsOfTuple(rel, tid).size() == rel.schema.arity();
}

std::vector<FieldKey> Wsd::PresenceFieldsOfTuple(const WsdRelation& rel,
                                                 TupleId tid) const {
  std::vector<FieldKey> out;
  for (Symbol attr : rel.presence_attrs) {
    FieldKey f(rel.name_sym, tid, attr);
    if (pool().field_index.count(f)) out.push_back(f);
  }
  return out;
}

Result<FieldKey> Wsd::MakePresenceField(const std::string& relation,
                                        TupleId tid) {
  auto it = relation_by_name_.find(relation);
  if (it == relation_by_name_.end()) {
    return Status::NotFound("relation " + relation);
  }
  WsdRelation& rel = relations_[it->second];
  if (tid < 0 || tid >= rel.max_tuples) {
    return Status::InvalidArgument("presence field tuple id out of range");
  }
  // Reuse an existing presence attribute if its field slot is free.
  for (Symbol existing : rel.presence_attrs) {
    if (!pool().field_index.count(FieldKey(rel.name_sym, tid, existing))) {
      return FieldKey(rel.name_sym, tid, existing);
    }
  }
  Symbol attr = InternString("__exists_" +
                             std::to_string(rel.presence_attrs.size()) +
                             "_" + relation);
  rel.presence_attrs.push_back(attr);
  return FieldKey(rel.name_sym, tid, attr);
}

Status Wsd::RenameField(const FieldKey& from, const FieldKey& to) {
  auto it = pool().field_index.find(from);
  if (it == pool().field_index.end()) {
    return Status::NotFound("field " + from.ToString());
  }
  if (pool().field_index.count(to)) {
    return Status::AlreadyExists("field " + to.ToString());
  }
  FieldLoc loc = it->second;
  pool().components[loc.comp].RenameField(static_cast<size_t>(loc.col), to);
  pool().field_index.erase(it);
  pool().field_index[to] = loc;
  return Status::Ok();
}

bool Wsd::HasPresenceFields() const {
  for (const WsdRelation& rel : relations_) {
    for (TupleId t = 0; t < rel.max_tuples; ++t) {
      if (!PresenceFieldsOfTuple(rel, t).empty()) return true;
    }
  }
  return false;
}

Status Wsd::EliminatePresenceFields() {
  for (WsdRelation& rel : relations_) {
    if (rel.presence_attrs.empty()) continue;
    for (TupleId t = 0; t < rel.max_tuples; ++t) {
      std::vector<FieldKey> pfs = PresenceFieldsOfTuple(rel, t);
      if (pfs.empty()) continue;
      if (!SlotPresent(rel, t)) {
        return Status::Internal("presence field on removed slot");
      }
      FieldKey anchor(rel.name_sym, t, rel.schema.attr(0).name);
      for (const FieldKey& pf : pfs) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc ploc, Locate(pf));
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc aloc, Locate(anchor));
        if (ploc.comp != aloc.comp) {
          MAYWSD_RETURN_IF_ERROR(
              ComposeInPlace(static_cast<size_t>(aloc.comp),
                             static_cast<size_t>(ploc.comp)));
        }
        MAYWSD_ASSIGN_OR_RETURN(aloc, Locate(anchor));
        mutable_component(static_cast<size_t>(aloc.comp)).PropagateBottom();
        MAYWSD_RETURN_IF_ERROR(DropField(pf));
      }
    }
    rel.presence_attrs.clear();
  }
  return Status::Ok();
}

Status Wsd::Validate() const {
  // 1. Index consistency.
  for (const auto& [field, loc] : pool().field_index) {
    if (loc.comp < 0 || static_cast<size_t>(loc.comp) >= pool().components.size() ||
        !pool().alive[loc.comp]) {
      return Status::Internal("field index points to dead component for " +
                              field.ToString());
    }
    const Component& comp = pool().components[loc.comp];
    if (loc.col < 0 || static_cast<size_t>(loc.col) >= comp.NumFields() ||
        comp.field(loc.col) != field) {
      return Status::Internal("field index column mismatch for " +
                              field.ToString());
    }
  }
  // 2. Every live component's fields are in the index.
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    if (pool().components[i].empty()) {
      return Status::Internal("live component with no local worlds");
    }
    for (size_t c = 0; c < pool().components[i].NumFields(); ++c) {
      auto it = pool().field_index.find(pool().components[i].field(c));
      if (it == pool().field_index.end() ||
          it->second.comp != static_cast<int32_t>(i) ||
          it->second.col != static_cast<int32_t>(c)) {
        return Status::Internal("component field missing from index: " +
                                pool().components[i].field(c).ToString());
      }
    }
    double sum = pool().components[i].ProbSum();
    if (std::abs(sum - 1.0) > 1e-4) {
      return Status::Internal("component probabilities sum to " +
                              std::to_string(sum));
    }
  }
  // 3. All-or-none coverage of tuple slots; presence fields only on
  // present slots.
  for (const WsdRelation& rel : relations_) {
    for (TupleId t = 0; t < rel.max_tuples; ++t) {
      size_t have = FieldsOfTuple(rel, t).size();
      if (have != 0 && have != rel.schema.arity()) {
        return Status::Internal("partial tuple slot " + rel.name + ".t" +
                                std::to_string(t));
      }
      if (have == 0 && !PresenceFieldsOfTuple(rel, t).empty()) {
        return Status::Internal("presence field on removed slot " +
                                rel.name + ".t" + std::to_string(t));
      }
    }
  }
  return Status::Ok();
}

uint64_t Wsd::WorldCombinationCount(uint64_t cap) const {
  uint64_t total = 1;
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    uint64_t n = pool().components[i].NumWorlds();
    if (n == 0) return 0;
    if (total > cap / n) return cap;  // saturate
    total *= n;
  }
  return total;
}

Result<std::vector<PossibleWorld>> Wsd::EnumerateWorlds(
    uint64_t max_worlds, const std::vector<std::string>& relations) const {
  if (WorldCombinationCount(max_worlds + 1) > max_worlds) {
    return Status::ResourceExhausted(
        "world-set has more than " + std::to_string(max_worlds) +
        " combinations");
  }
  std::vector<size_t> live = LiveComponents();
  std::vector<size_t> choice(live.size(), 0);

  // Which relations to materialize.
  std::vector<const WsdRelation*> mats;
  if (relations.empty()) {
    for (const WsdRelation& r : relations_) mats.push_back(&r);
  } else {
    for (const std::string& name : relations) {
      MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, FindRelation(name));
      mats.push_back(r);
    }
  }

  // Precompute field locations per (relation, slot) to avoid hash lookups
  // in the inner loop.
  struct SlotInfo {
    const WsdRelation* rel;
    std::vector<FieldLoc> locs;           // one per attribute
    std::vector<FieldLoc> presence_locs;  // extra "exists" fields
  };
  std::vector<SlotInfo> slots;
  for (const WsdRelation* r : mats) {
    for (TupleId t = 0; t < r->max_tuples; ++t) {
      std::vector<FieldKey> fields = FieldsOfTuple(*r, t);
      if (fields.empty()) continue;  // slot removed by normalization
      if (fields.size() != r->schema.arity()) {
        return Status::Internal("partial tuple slot during enumeration");
      }
      SlotInfo info;
      info.rel = r;
      for (size_t a = 0; a < r->schema.arity(); ++a) {
        FieldKey f(r->name_sym, t, r->schema.attr(a).name);
        info.locs.push_back(pool().field_index.at(f));
      }
      for (const FieldKey& pf : PresenceFieldsOfTuple(*r, t)) {
        info.presence_locs.push_back(pool().field_index.at(pf));
      }
      slots.push_back(std::move(info));
    }
  }
  // Map component slot index -> position in `choice`.
  std::vector<int> comp_pos(pool().components.size(), -1);
  for (size_t i = 0; i < live.size(); ++i) {
    comp_pos[live[i]] = static_cast<int>(i);
  }

  std::vector<PossibleWorld> out;
  std::vector<rel::Value> row;
  bool done = false;
  while (!done) {
    PossibleWorld world;
    world.prob = 1.0;
    for (size_t i = 0; i < live.size(); ++i) {
      world.prob *= pool().components[live[i]].prob(choice[i]);
    }
    // Materialize relations.
    for (const WsdRelation* r : mats) {
      rel::Relation out_rel(r->schema, r->name);
      world.db.PutRelation(std::move(out_rel));
    }
    for (const SlotInfo& slot : slots) {
      row.clear();
      bool has_bottom = false;
      // A ⊥ in an "exists" field deletes the tuple just like a ⊥ in a
      // schema field (Section 4 Discussion).
      for (const FieldLoc& loc : slot.presence_locs) {
        const Component& comp = pool().components[loc.comp];
        if (comp.at(choice[comp_pos[loc.comp]], loc.col).is_bottom()) {
          has_bottom = true;
          break;
        }
      }
      for (const FieldLoc& loc : slot.locs) {
        if (has_bottom) break;
        const Component& comp = pool().components[loc.comp];
        const rel::Value& v = comp.at(choice[comp_pos[loc.comp]], loc.col);
        if (v.is_bottom()) {
          has_bottom = true;
          break;
        }
        row.push_back(v);
      }
      if (has_bottom) continue;  // t⊥ padding tuple: not part of the world
      rel::Relation* target = world.db.GetMutableRelation(slot.rel->name).value();
      target->AppendRow(row);
    }
    for (const std::string& name : world.db.Names()) {
      world.db.GetMutableRelation(name).value()->SortDedup();
    }
    out.push_back(std::move(world));
    // Advance the odometer.
    done = true;
    for (size_t i = 0; i < live.size(); ++i) {
      if (++choice[i] < pool().components[live[i]].NumWorlds()) {
        done = false;
        break;
      }
      choice[i] = 0;
    }
    if (live.empty()) break;  // single empty-product world
  }
  return out;
}

std::string Wsd::ToString() const {
  std::ostringstream os;
  os << "WSD over {";
  bool first = true;
  for (const WsdRelation& r : relations_) {
    if (!first) os << ", ";
    first = false;
    os << r.name << r.schema.ToString() << " x" << r.max_tuples;
  }
  os << "}\n";
  for (size_t i = 0; i < pool().components.size(); ++i) {
    if (!pool().alive[i]) continue;
    os << "C" << i << " " << pool().components[i].ToString();
  }
  return os.str();
}

std::string CanonicalWorldKey(const rel::Database& db) {
  std::ostringstream os;
  for (const std::string& name : db.Names()) {
    const rel::Relation* rel = db.GetRelation(name).value();
    rel::Relation copy = *rel;
    copy.SortDedup();
    os << name << "{";
    for (size_t i = 0; i < copy.NumRows(); ++i) {
      os << copy.row(i).ToString() << ";";
    }
    os << "}";
  }
  return os.str();
}

std::vector<PossibleWorld> CollapseWorlds(std::vector<PossibleWorld> worlds) {
  std::map<std::string, PossibleWorld> merged;
  for (PossibleWorld& w : worlds) {
    std::string key = CanonicalWorldKey(w.db);
    auto it = merged.find(key);
    if (it == merged.end()) {
      merged.emplace(std::move(key), std::move(w));
    } else {
      it->second.prob += w.prob;
    }
  }
  std::vector<PossibleWorld> out;
  out.reserve(merged.size());
  for (auto& [key, w] : merged) out.push_back(std::move(w));
  return out;
}

bool WorldSetsEquivalent(std::vector<PossibleWorld> a,
                         std::vector<PossibleWorld> b, double eps) {
  std::vector<PossibleWorld> ca = CollapseWorlds(std::move(a));
  std::vector<PossibleWorld> cb = CollapseWorlds(std::move(b));
  if (ca.size() != cb.size()) return false;
  for (size_t i = 0; i < ca.size(); ++i) {
    if (CanonicalWorldKey(ca[i].db) != CanonicalWorldKey(cb[i].db)) {
      return false;
    }
    if (std::abs(ca[i].prob - cb[i].prob) > eps) return false;
  }
  return true;
}

}  // namespace maywsd::core
