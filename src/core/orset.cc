#include "core/orset.h"

#include <cmath>

namespace maywsd::core {

Status OrSetRelation::AppendRow(std::vector<OrSetField> row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument("or-set row arity mismatch in " + name_);
  }
  for (const OrSetField& f : row) {
    if (f.options.empty()) {
      return Status::InvalidArgument("empty or-set in " + name_);
    }
    if (!f.probs.empty()) {
      if (f.probs.size() != f.options.size()) {
        return Status::InvalidArgument("or-set probability arity mismatch");
      }
      double sum = 0;
      for (double p : f.probs) sum += p;
      if (std::abs(sum - 1.0) > 1e-6) {
        return Status::InvalidArgument("or-set probabilities must sum to 1");
      }
    }
  }
  for (OrSetField& f : row) fields_.push_back(std::move(f));
  return Status::Ok();
}

uint64_t OrSetRelation::WorldCount(uint64_t cap) const {
  uint64_t total = 1;
  for (const OrSetField& f : fields_) {
    uint64_t n = f.options.size();
    if (n == 0) return 0;
    if (total > cap / n) return cap;
    total *= n;
  }
  return total;
}

Result<Wsd> OrSetRelation::ToWsd() const {
  Wsd wsd;
  MAYWSD_RETURN_IF_ERROR(
      wsd.AddRelation(name_, schema_, static_cast<TupleId>(NumRows())));
  for (size_t r = 0; r < NumRows(); ++r) {
    for (size_t a = 0; a < schema_.arity(); ++a) {
      const OrSetField& f = field(r, a);
      Component comp({FieldKey(name_, static_cast<TupleId>(r),
                               std::string(schema_.attr(a).name_view()))});
      for (size_t i = 0; i < f.options.size(); ++i) {
        comp.AddWorld({f.options[i]}, f.ProbOf(i));
      }
      MAYWSD_RETURN_IF_ERROR(wsd.AddComponent(std::move(comp)));
    }
  }
  return wsd;
}

Status TupleIndependentDb::AddRelation(const std::string& name,
                                       rel::Schema schema) {
  if (relations_.count(name)) return Status::AlreadyExists("relation " + name);
  relations_[name].schema = std::move(schema);
  return Status::Ok();
}

Status TupleIndependentDb::AddTuple(const std::string& relation,
                                    std::vector<rel::Value> values,
                                    double confidence) {
  auto it = relations_.find(relation);
  if (it == relations_.end()) return Status::NotFound("relation " + relation);
  if (values.size() != it->second.schema.arity()) {
    return Status::InvalidArgument("tuple arity mismatch in " + relation);
  }
  if (confidence < 0.0 || confidence > 1.0) {
    return Status::InvalidArgument("confidence must be in [0, 1]");
  }
  it->second.tuples.push_back(ProbTuple{std::move(values), confidence});
  return Status::Ok();
}

Result<Wsd> TupleIndependentDb::ToWsd() const {
  Wsd wsd;
  for (const auto& [name, rel] : relations_) {
    MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(
        name, rel.schema, static_cast<TupleId>(rel.tuples.size())));
    for (size_t t = 0; t < rel.tuples.size(); ++t) {
      const ProbTuple& tuple = rel.tuples[t];
      std::vector<FieldKey> fields;
      for (size_t a = 0; a < rel.schema.arity(); ++a) {
        fields.emplace_back(name, static_cast<TupleId>(t),
                            std::string(rel.schema.attr(a).name_view()));
      }
      Component comp(std::move(fields));
      comp.AddWorld(tuple.values, tuple.confidence);
      if (tuple.confidence < 1.0) {
        std::vector<rel::Value> bottoms(rel.schema.arity(),
                                        rel::Value::Bottom());
        comp.AddWorld(bottoms, 1.0 - tuple.confidence);
      }
      MAYWSD_RETURN_IF_ERROR(wsd.AddComponent(std::move(comp)));
    }
  }
  return wsd;
}

uint64_t TupleIndependentDb::WorldCount(uint64_t cap) const {
  uint64_t total = 1;
  for (const auto& [name, rel] : relations_) {
    for (const ProbTuple& t : rel.tuples) {
      if (t.confidence > 0.0 && t.confidence < 1.0) {
        if (total > cap / 2) return cap;
        total *= 2;
      }
    }
  }
  return total;
}

}  // namespace maywsd::core
