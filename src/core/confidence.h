// Confidence computation and possible-tuple queries — Section 6,
// Figures 17, 18, 19.
//
// conf(t) = probability that tuple t appears in relation R, i.e. the sum of
// the probabilities of the worlds containing t. The algorithm prunes each
// component to the columns of candidate tuple slots, normalizes to tuple
// level (composing the components a slot spans — the potentially
// exponential step; deciding certainty is NP-hard [9]), sums local-world
// probabilities per component group, and combines the independent groups as
// c = 1 − Π(1 − conf_C).
//
// These free functions are the WSD implementation behind the engine's
// answer surface (WorldSetOps::PossibleTuples/CertainTuples/…); callers
// that do not already hold a bare Wsd should go through api::Session.

#ifndef MAYWSD_CORE_CONFIDENCE_H_
#define MAYWSD_CORE_CONFIDENCE_H_

#include <span>
#include <string>

#include "common/status.h"
#include "rel/relation.h"
#include "core/wsd.h"

namespace maywsd::core {

/// Guard for the tuple-level normalization blow-up.
inline constexpr uint64_t kMaxTupleLevelWorlds = 1u << 22;

/// conf(t): probability that `tuple` ∈ R in a random world (Figure 17).
Result<double> TupleConfidence(const Wsd& wsd, const std::string& relation,
                               std::span<const rel::Value> tuple);

/// possible(R): tuples appearing in at least one world (Figure 18).
Result<rel::Relation> PossibleTuples(const Wsd& wsd,
                                     const std::string& relation);

/// possibleᵖ(R): possible tuples with their confidences (Figure 19); the
/// result relation carries R's attributes plus a trailing "conf" column.
Result<rel::Relation> PossibleTuplesWithConfidence(const Wsd& wsd,
                                                   const std::string& relation);

/// certain(t): true iff conf(t) = 1 (t occurs in every world).
Result<bool> TupleCertain(const Wsd& wsd, const std::string& relation,
                          std::span<const rel::Value> tuple);

/// certain(R): the tuples occurring in every world — the "consistent
/// answers" of the inconsistent-database application (Section 10).
Result<rel::Relation> CertainTuples(const Wsd& wsd,
                                    const std::string& relation);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_CONFIDENCE_H_
