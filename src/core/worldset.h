// Explicit world-sets: the inline/inline⁻¹ encoding and the world-set
// relation of Section 3, plus per-world query evaluation.
//
// These are the paper's "strawman": exponential-size, but exact. The test
// suite uses them as the correctness oracle for every operation on WSDs and
// UWSDTs (Theorem 1), and the ablation benchmark contrasts their blow-up
// with WSD sizes.

#ifndef MAYWSD_CORE_WORLDSET_H_
#define MAYWSD_CORE_WORLDSET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rel/algebra.h"
#include "rel/database.h"
#include "core/wsd.h"

namespace maywsd::core {

/// The inlining schema: per relation, the attribute schema and |R|max.
struct InlinedSchema {
  struct RelationEntry {
    std::string name;
    rel::Schema schema;
    TupleId max_tuples = 0;
  };
  std::vector<RelationEntry> relations;

  /// Flat schema of the world-set relation: columns "R.t<i>.<A>".
  rel::Schema ToFlatSchema() const;
};

/// Derives the inlining schema from a set of worlds: per relation, the
/// schema of its first occurrence and the maximum tuple count over worlds.
/// Fails if a relation's schema differs across worlds.
Result<InlinedSchema> DeriveInlinedSchema(
    const std::vector<PossibleWorld>& worlds);

/// inline(A) for every world: the world-set relation (one row per world,
/// padded with t⊥ tuples up to |R|max). Row order follows `worlds`.
Result<rel::Relation> InlineWorlds(const std::vector<PossibleWorld>& worlds,
                                   const InlinedSchema& schema);

/// inline⁻¹: decodes each row of a world-set relation back into a world.
/// `probs` supplies per-row probabilities (uniform if empty).
Result<std::vector<PossibleWorld>> UninlineWorlds(
    const rel::Relation& world_set_relation, const InlinedSchema& schema,
    const std::vector<double>& probs = {});

/// Proposition 1: any finite world-set as a 1-WSD — one component whose
/// columns are all fields and whose local worlds are the inlined worlds.
/// World probabilities are used as local-world probabilities (they must sum
/// to 1; pass normalized worlds).
Result<Wsd> WsdFromWorlds(const std::vector<PossibleWorld>& worlds);

/// Evaluates `plan` in every world; the result worlds contain only the
/// query answer, as relation `out_name` ({Q(A) | A ∈ rep(W)}).
Result<std::vector<PossibleWorld>> EvaluatePerWorld(
    const std::vector<PossibleWorld>& worlds, const rel::Plan& plan,
    const std::string& out_name);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WORLDSET_H_
