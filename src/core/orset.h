// Or-set relations [21] and tuple-independent probabilistic databases [15]:
// the two practical input formalisms the paper subsumes (Sections 1 and 3).
//
// Both convert losslessly into WSDs:
//   * an or-set field with k options becomes a k-row component over that
//     single field (Example 1) — the WSD is linear in the or-set relation;
//   * a tuple with confidence c becomes a two-row component: the tuple's
//     values with probability c and an all-⊥ local world with 1−c
//     (Example 5 / Figure 7).

#ifndef MAYWSD_CORE_ORSET_H_
#define MAYWSD_CORE_ORSET_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/relation.h"
#include "core/wsd.h"

namespace maywsd::core {

/// One or-set field: a set of possible values with optional probabilities
/// (uniform when `probs` is empty; otherwise must align with `options` and
/// sum to 1).
struct OrSetField {
  std::vector<rel::Value> options;
  std::vector<double> probs;

  OrSetField() = default;
  /// Certain field.
  OrSetField(rel::Value v) : options{v} {}
  OrSetField(std::initializer_list<rel::Value> opts) : options(opts) {}
  OrSetField(std::vector<rel::Value> opts, std::vector<double> ps = {})
      : options(std::move(opts)), probs(std::move(ps)) {}

  bool certain() const { return options.size() == 1; }
  double ProbOf(size_t i) const {
    return probs.empty() ? 1.0 / static_cast<double>(options.size())
                         : probs[i];
  }
};

/// A relation whose fields are or-sets; each field varies independently.
class OrSetRelation {
 public:
  OrSetRelation(rel::Schema schema, std::string name)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const rel::Schema& schema() const { return schema_; }
  size_t NumRows() const {
    return schema_.arity() == 0 ? 0 : fields_.size() / schema_.arity();
  }

  /// Appends a row of or-set fields; must match the arity.
  Status AppendRow(std::vector<OrSetField> row);

  const OrSetField& field(size_t row, size_t attr) const {
    return fields_[row * schema_.arity() + attr];
  }

  /// Number of represented worlds (product of option counts), saturating
  /// at `cap`.
  uint64_t WorldCount(uint64_t cap) const;

  /// The WSD encoding: one single-field component per field.
  Result<Wsd> ToWsd() const;

 private:
  std::string name_;
  rel::Schema schema_;
  std::vector<OrSetField> fields_;  // row-major
};

/// A tuple-independent probabilistic database [15]: every tuple carries a
/// membership confidence and tuples are independent (Figure 6).
class TupleIndependentDb {
 public:
  /// Declares a relation.
  Status AddRelation(const std::string& name, rel::Schema schema);

  /// Appends a tuple with confidence c ∈ [0, 1].
  Status AddTuple(const std::string& relation,
                  std::vector<rel::Value> values, double confidence);

  /// The WSD encoding of Figure 7: a two-local-world component per tuple.
  Result<Wsd> ToWsd() const;

  /// Number of represented worlds: 2^#uncertain-tuples, saturating at cap.
  uint64_t WorldCount(uint64_t cap) const;

 private:
  struct ProbTuple {
    std::vector<rel::Value> values;
    double confidence = 1.0;
  };
  struct ProbRelation {
    rel::Schema schema;
    std::vector<ProbTuple> tuples;
  };
  std::map<std::string, ProbRelation> relations_;
};

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_ORSET_H_
