#include "core/wsdt_confidence.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace maywsd::core {

namespace {

/// Guard against tuple-level normalization blow-ups (same bound as the
/// Wsd-level algorithms).
constexpr uint64_t kMaxComposedWorlds = 1u << 22;

/// The placeholder columns of template row r: (attr index, field location).
Result<std::vector<std::pair<size_t, FieldLoc>>> PlaceholderCols(
    const Wsdt& wsdt, const rel::Relation& tmpl, Symbol rel_sym, size_t r) {
  std::vector<std::pair<size_t, FieldLoc>> out;
  rel::TupleRef row = tmpl.row(r);
  for (size_t a = 0; a < tmpl.arity(); ++a) {
    if (!row[a].is_question()) continue;
    FieldKey f(rel_sym, static_cast<TupleId>(r), tmpl.schema().attr(a).name);
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
    out.emplace_back(a, loc);
  }
  return out;
}

/// Composes the projections of the components in `comps` onto `cols`,
/// compressing intermediates.
Result<Component> ComposeProjected(
    const Wsdt& wsdt, const std::vector<int32_t>& comps,
    const std::map<int32_t, std::set<size_t>>& cols) {
  Component acc;
  bool first = true;
  for (int32_t ci : comps) {
    const Component& comp = wsdt.component(static_cast<size_t>(ci));
    std::vector<size_t> keep(cols.at(ci).begin(), cols.at(ci).end());
    Component proj = comp.ProjectColumns(keep);
    proj.Compress();
    if (first) {
      acc = std::move(proj);
      first = false;
    } else {
      if (static_cast<uint64_t>(acc.NumWorlds()) * proj.NumWorlds() >
          kMaxComposedWorlds) {
        return Status::ResourceExhausted(
            "tuple-level normalization exceeds the blow-up guard");
      }
      acc = Component::Compose(acc, proj);
      acc.Compress();
    }
  }
  return acc;
}

}  // namespace

Result<double> WsdtTupleConfidence(const Wsdt& wsdt,
                                   const std::string& relation,
                                   std::span<const rel::Value> tuple) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl_ptr,
                          wsdt.Template(relation));
  const rel::Relation& tmpl = *tmpl_ptr;
  if (tuple.size() != tmpl.arity()) {
    return Status::InvalidArgument("tuple arity mismatch for " + relation);
  }
  Symbol rel_sym = InternString(relation);

  // Candidate rows: certain attributes equal; placeholder attributes have
  // the probe value among their possible values.
  struct Candidate {
    size_t row;
    std::vector<std::pair<size_t, FieldLoc>> holes;  // attr -> location
  };
  std::vector<Candidate> candidates;
  for (size_t r = 0; r < tmpl.NumRows(); ++r) {
    rel::TupleRef row = tmpl.row(r);
    bool possible = true;
    Candidate cand;
    cand.row = r;
    for (size_t a = 0; a < tmpl.arity() && possible; ++a) {
      if (row[a].is_question()) {
        FieldKey f(rel_sym, static_cast<TupleId>(r),
                   tmpl.schema().attr(a).name);
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
        const Component& comp = wsdt.component(loc.comp);
        size_t col = static_cast<size_t>(loc.col);
        bool found = false;
        for (size_t w = 0; w < comp.NumWorlds() && !found; ++w) {
          if (comp.at(w, col) == tuple[a]) found = true;
        }
        possible = found;
        cand.holes.emplace_back(a, loc);
      } else if (!(row[a] == tuple[a])) {
        possible = false;
      }
    }
    if (!possible) continue;
    if (cand.holes.empty()) return 1.0;  // certain tuple equal to the probe
    candidates.push_back(std::move(cand));
  }
  if (candidates.empty()) return 0.0;

  // Group candidates by connected components.
  std::map<int32_t, int32_t> parent;
  std::function<int32_t(int32_t)> find = [&](int32_t x) {
    auto it = parent.find(x);
    if (it == parent.end()) {
      parent[x] = x;
      return x;
    }
    int32_t root = x;
    while (parent[root] != root) root = parent[root];
    while (parent[x] != root) {
      int32_t nxt = parent[x];
      parent[x] = root;
      x = nxt;
    }
    return root;
  };
  for (const Candidate& cand : candidates) {
    for (size_t i = 1; i < cand.holes.size(); ++i) {
      parent[find(cand.holes[0].second.comp)] =
          find(cand.holes[i].second.comp);
    }
    find(cand.holes[0].second.comp);
  }
  // Merge groups that share candidates... (two candidates sharing a comp
  // land in the same group via find()).
  std::map<int32_t, std::vector<const Candidate*>> group_cands;
  std::map<int32_t, std::vector<int32_t>> group_comps;
  std::map<int32_t, std::map<int32_t, std::set<size_t>>> group_cols;
  for (const Candidate& cand : candidates) {
    int32_t g = find(cand.holes[0].second.comp);
    group_cands[g].push_back(&cand);
    for (const auto& [attr, loc] : cand.holes) {
      auto& comps = group_comps[g];
      if (std::find(comps.begin(), comps.end(), loc.comp) == comps.end()) {
        comps.push_back(loc.comp);
      }
      group_cols[g][loc.comp].insert(static_cast<size_t>(loc.col));
    }
  }

  double not_conf = 1.0;
  for (const auto& [g, cands] : group_cands) {
    MAYWSD_ASSIGN_OR_RETURN(
        Component combined,
        ComposeProjected(wsdt, group_comps.at(g), group_cols.at(g)));
    double conf_c = 0.0;
    for (size_t w = 0; w < combined.NumWorlds(); ++w) {
      bool any = false;
      for (const Candidate* cand : cands) {
        bool match = true;
        for (const auto& [attr, loc] : cand->holes) {
          FieldKey f(rel_sym, static_cast<TupleId>(cand->row),
                     tmpl.schema().attr(attr).name);
          int col = combined.FindField(f);
          if (col < 0 ||
              !(combined.at(w, static_cast<size_t>(col)) == tuple[attr])) {
            match = false;
            break;
          }
        }
        if (match) {
          any = true;
          break;
        }
      }
      if (any) conf_c += combined.prob(w);
    }
    not_conf *= (1.0 - conf_c);
  }
  return 1.0 - not_conf;
}

Result<rel::Relation> WsdtPossibleTuples(const Wsdt& wsdt,
                                         const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl_ptr,
                          wsdt.Template(relation));
  const rel::Relation& tmpl = *tmpl_ptr;
  Symbol rel_sym = InternString(relation);
  rel::Relation out(tmpl.schema(), "possible_" + relation);
  std::vector<rel::Value> buf(tmpl.arity());
  for (size_t r = 0; r < tmpl.NumRows(); ++r) {
    rel::TupleRef row = tmpl.row(r);
    MAYWSD_ASSIGN_OR_RETURN(auto holes,
                            PlaceholderCols(wsdt, tmpl, rel_sym, r));
    if (holes.empty()) {
      out.AppendRow(row.span());
      continue;
    }
    std::vector<int32_t> comps;
    std::map<int32_t, std::set<size_t>> cols;
    for (const auto& [attr, loc] : holes) {
      if (std::find(comps.begin(), comps.end(), loc.comp) == comps.end()) {
        comps.push_back(loc.comp);
      }
      cols[loc.comp].insert(static_cast<size_t>(loc.col));
    }
    MAYWSD_ASSIGN_OR_RETURN(Component combined,
                            ComposeProjected(wsdt, comps, cols));
    // Column of each hole in the combined component.
    std::vector<std::pair<size_t, int>> hole_cols;
    for (const auto& [attr, loc] : holes) {
      FieldKey f(rel_sym, static_cast<TupleId>(r),
                 tmpl.schema().attr(attr).name);
      hole_cols.emplace_back(attr, combined.FindField(f));
    }
    for (size_t a = 0; a < tmpl.arity(); ++a) buf[a] = row[a];
    for (size_t w = 0; w < combined.NumWorlds(); ++w) {
      if (combined.prob(w) <= 0.0) continue;
      bool absent = false;
      for (const auto& [attr, col] : hole_cols) {
        const rel::Value& v = combined.at(w, static_cast<size_t>(col));
        if (v.is_bottom()) {
          absent = true;
          break;
        }
        buf[attr] = v;
      }
      if (!absent) out.AppendRow(buf);
    }
  }
  out.SortDedup();
  return out;
}

Result<rel::Relation> WsdtPossibleTuplesWithConfidence(
    const Wsdt& wsdt, const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation possible,
                          WsdtPossibleTuples(wsdt, relation));
  rel::Schema out_schema = possible.schema();
  MAYWSD_RETURN_IF_ERROR(
      out_schema.AddAttribute(rel::Attribute("conf", rel::AttrType::kDouble)));
  rel::Relation out(out_schema, "possible_p_" + relation);
  std::vector<rel::Value> row(out_schema.arity());
  for (size_t i = 0; i < possible.NumRows(); ++i) {
    rel::TupleRef t = possible.row(i);
    MAYWSD_ASSIGN_OR_RETURN(double conf,
                            WsdtTupleConfidence(wsdt, relation, t.span()));
    for (size_t a = 0; a < t.arity(); ++a) row[a] = t[a];
    row[t.arity()] = rel::Value::Double(conf);
    out.AppendRow(row);
  }
  return out;
}

Result<bool> WsdtTupleCertain(const Wsdt& wsdt, const std::string& relation,
                              std::span<const rel::Value> tuple) {
  MAYWSD_ASSIGN_OR_RETURN(double conf,
                          WsdtTupleConfidence(wsdt, relation, tuple));
  return conf >= 1.0 - 1e-9;
}

Result<rel::Relation> WsdtCertainTuples(const Wsdt& wsdt,
                                        const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation possible,
                          WsdtPossibleTuples(wsdt, relation));
  rel::Relation out(possible.schema(), "certain_" + relation);
  for (size_t i = 0; i < possible.NumRows(); ++i) {
    MAYWSD_ASSIGN_OR_RETURN(
        bool certain,
        WsdtTupleCertain(wsdt, relation, possible.row(i).span()));
    if (certain) out.AppendRow(possible.row(i).span());
  }
  return out;
}

}  // namespace maywsd::core
