// UniformBackend: WorldSetOps over the C/F/W uniform relational encoding
// (Section 3, Figure 8) — the representation the paper's PostgreSQL
// prototype stored, processed with the Figure 16 SQL-style rewritings.
//
// The backend owns no data; it operates on a rel::Database holding the
// template relations (leading __TID column) plus the three system
// relations C, F and W (see core/uniform.h). The Figure 9 operators that
// are pure row rewritings — copy, select[Aθc], product, union, rename,
// projection of ⊥-free columns, drop — run directly against those
// relations through core/uniform. The operators that need component
// composition (select[AθB], difference, ⊥-carrying projection) fall back
// to the template semantics: the store is imported as a WSDT, the
// operator runs there, and the result is re-exported — exactly the escape
// hatch the prototype used for the operations outside the purely
// relational fragment. System relations are hidden from the catalog.

#ifndef MAYWSD_CORE_ENGINE_UNIFORM_BACKEND_H_
#define MAYWSD_CORE_ENGINE_UNIFORM_BACKEND_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/engine/world_set_ops.h"
#include "core/wsdt.h"
#include "rel/database.h"

namespace maywsd::core::engine {

/// Adapts a uniform C/F/W database to the engine contract. Non-owning;
/// the database must outlive the backend.
class UniformBackend : public WorldSetOps {
 public:
  explicit UniformBackend(rel::Database& db) : db_(&db) {}

  std::string_view BackendName() const override { return "uniform"; }

  bool HasRelation(const std::string& name) const override;
  std::vector<std::string> RelationNames() const override;
  Result<rel::Schema> RelationSchema(const std::string& name) const override;
  Status AddCertainRelation(const rel::Relation& relation) override;

  Status Copy(const std::string& src, const std::string& out) override;
  Status SelectConst(const std::string& src, const std::string& out,
                     const std::string& attr, rel::CmpOp op,
                     const rel::Value& constant) override;
  Status SelectAttrAttr(const std::string& src, const std::string& out,
                        const std::string& attr_a, rel::CmpOp op,
                        const std::string& attr_b) override;
  Status Product(const std::string& left, const std::string& right,
                 const std::string& out) override;
  Status Union(const std::string& left, const std::string& right,
               const std::string& out) override;
  Status Project(const std::string& src, const std::string& out,
                 const std::vector<std::string>& attrs) override;
  Status Rename(const std::string& src, const std::string& out,
                const std::vector<std::pair<std::string, std::string>>&
                    renames) override;
  Status Difference(const std::string& left, const std::string& right,
                    const std::string& out) override;
  Status Drop(const std::string& name) override;
  void Compact() override;

  Result<rel::Relation> PossibleTuples(
      const std::string& relation) const override;
  Result<rel::Relation> PossibleTuplesWithConfidence(
      const std::string& relation) const override;
  Result<rel::Relation> CertainTuples(
      const std::string& relation) const override;
  Result<double> TupleConfidence(
      const std::string& relation,
      std::span<const rel::Value> tuple) const override;
  Result<bool> TupleCertain(const std::string& relation,
                            std::span<const rel::Value> tuple) const override;

  /// Updates run inside the C/F/W store where they are pure row
  /// rewritings (unconditional inserts; deletes and modifies whose
  /// predicate decides on certain template cells), and fall back to one
  /// import → WSDT update → export round trip for everything touching
  /// components — world-conditional updates and '?'-cell modifies —
  /// mirroring the query fallback.
  Status ApplyUpdate(const rel::UpdateOp& op,
                     const std::string& guard) override;

  /// Shards run under the template semantics (the store is imported as a
  /// WSDT and re-exported on Finish), where every operator kind slices.
  bool ShardableOperator(rel::Plan::Kind kind) const override {
    (void)kind;
    return true;
  }
  Result<bool> RelationCertain(const std::string& name) const override;
  Result<std::unique_ptr<ShardPlan>> PlanShards(
      const ShardRequest& req) override;

  uint64_t RoundTrips() const override { return round_trips_; }

 private:
  /// Imports the whole store as a WSDT (templates stripped of __TID).
  Result<Wsdt> Import() const;

  /// Runs `op` on the imported WSDT and re-exports the store — the
  /// template-semantics fallback for non-relational operators.
  Status Fallback(const std::function<Status(Wsdt&)>& op);

  rel::Database* db_;
  uint64_t round_trips_ = 0;
};

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_UNIFORM_BACKEND_H_
