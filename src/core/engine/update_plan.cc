#include "core/engine/update_plan.h"

#include <iterator>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/engine/parallel.h"
#include "core/engine/plan_driver.h"
#include "rel/plan_hash.h"

namespace maywsd::core::engine {

namespace {

/// Adds every relation a plan's scan leaves read to `out`.
void CollectScanRelations(const rel::Plan& plan, std::set<std::string>& out) {
  if (plan.kind() == rel::Plan::Kind::kScan) {
    out.insert(plan.relation());
    return;
  }
  CollectScanRelations(plan.left(), out);
  if (plan.has_right()) CollectScanRelations(plan.right(), out);
}

}  // namespace

Status ValidateUpdate(WorldSetOps& ops, const rel::UpdateOp& op) {
  if (!ops.HasRelation(op.relation())) {
    return Status::NotFound("update target relation " + op.relation());
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema,
                          ops.RelationSchema(op.relation()));
  switch (op.kind()) {
    case rel::UpdateOp::Kind::kInsert: {
      const rel::Relation& tuples = op.tuples();
      if (tuples.arity() != schema.arity()) {
        return Status::InvalidArgument(
            "insert arity mismatch on " + op.relation() + ": got " +
            std::to_string(tuples.arity()) + ", want " +
            std::to_string(schema.arity()));
      }
      for (size_t a = 0; a < schema.arity(); ++a) {
        if (tuples.schema().attr(a).name != schema.attr(a).name) {
          return Status::InvalidArgument(
              "insert attribute mismatch on " + op.relation() + ": " +
              std::string(tuples.schema().attr(a).name_view()) + " vs " +
              std::string(schema.attr(a).name_view()));
        }
      }
      MAYWSD_RETURN_IF_ERROR(CheckCertainRelation(tuples));
      break;
    }
    case rel::UpdateOp::Kind::kModify: {
      if (op.assignments().empty()) {
        return Status::InvalidArgument("modify of " + op.relation() +
                                       " assigns nothing");
      }
      std::set<std::string> seen;
      for (const rel::Assignment& a : op.assignments()) {
        if (!schema.Contains(a.attr)) {
          return Status::NotFound("assignment attribute " + a.attr +
                                  " not in " + op.relation());
        }
        if (!seen.insert(a.attr).second) {
          return Status::InvalidArgument("attribute " + a.attr +
                                         " assigned twice");
        }
        if (a.value.is_bottom() || a.value.is_question()) {
          return Status::InvalidArgument("assignment to " + a.attr +
                                         " is not a constant");
        }
      }
      [[fallthrough]];
    }
    case rel::UpdateOp::Kind::kDelete: {
      for (const std::string& a : op.predicate().ReferencedAttributes()) {
        if (!schema.Contains(a)) {
          return Status::NotFound("predicate attribute " + a + " not in " +
                                  op.relation());
        }
      }
      break;
    }
  }
  return Status::Ok();
}

Status ApplyUpdate(WorldSetOps& ops, const rel::UpdateOp& op) {
  MAYWSD_RETURN_IF_ERROR(ValidateUpdate(ops, op));
  if (!op.has_world_condition()) {
    return ops.ApplyUpdate(op, std::string());
  }
  ScratchScope scope(ops);
  MAYWSD_ASSIGN_OR_RETURN(std::string guard,
                          EvalPlan(ops, scope, op.world_condition()));
  // A bare-scan condition evaluates to the scanned relation itself; copy
  // it so the guard is a snapshot — the update may mutate that very
  // relation and must not feed back into its own world condition.
  if (op.world_condition().kind() == rel::Plan::Kind::kScan) {
    std::string snapshot = scope.Fresh();
    MAYWSD_RETURN_IF_ERROR(ops.Copy(guard, snapshot));
    guard = snapshot;
  }
  MAYWSD_RETURN_IF_ERROR(ops.ApplyUpdate(op, guard));
  return scope.DropAll();
}

Status ApplyUpdates(WorldSetOps& ops, std::span<const rel::UpdateOp> ops_list,
                    size_t threads, UpdateBatchStats* stats) {
  /// A materialized guard snapshot plus the relations its condition read
  /// (an applied update on any of them invalidates the snapshot).
  struct CachedGuard {
    std::string guard;
    std::set<std::string> scans;
  };
  std::unordered_map<rel::Plan, CachedGuard, rel::PlanHasher, rel::PlanEq>
      guards;
  ScratchScope scope(ops);
  Status st = Status::Ok();
  size_t idx = 0;
  while (idx < ops_list.size()) {
    const rel::UpdateOp& op = ops_list[idx];
    size_t next = idx + 1;
    st = ValidateUpdate(ops, op);
    if (!st.ok()) break;
    if (op.has_world_condition()) {
      auto it = guards.find(op.world_condition());
      if (it == guards.end()) {
        auto guard_or = EvalPlan(ops, scope, op.world_condition());
        if (!guard_or.ok()) {
          st = guard_or.status();
          break;
        }
        // Snapshot unconditionally (not just for bare scans, as the
        // single-op path does): the cached guard outlives this op, so it
        // must not alias anything a later batched update may mutate.
        std::string snapshot = scope.Fresh();
        st = ops.Copy(guard_or.value(), snapshot);
        if (!st.ok()) break;
        CachedGuard cached;
        cached.guard = std::move(snapshot);
        CollectScanRelations(op.world_condition(), cached.scans);
        it = guards.emplace(op.world_condition(), std::move(cached)).first;
        if (stats != nullptr) stats->guard_materializations++;
      } else if (stats != nullptr) {
        stats->guard_shares++;
      }
      st = ops.ApplyUpdate(op, it->second.guard);
    } else {
      // Unconditional deletes/modifies are the fan-out candidates. Extend
      // the run across consecutive unconditional deletes/modifies of the
      // SAME relation: one slicing then serves the whole run, which is
      // what lets the fan-out beat k sequential one-pass updates.
      // Deletes/modifies never change a schema or drop a relation, so
      // validating the run up front equals validating each op against the
      // intermediate states; an op failing validation just ends the run
      // and reports its error on its own turn through the outer loop.
      if (threads > 1 && op.kind() != rel::UpdateOp::Kind::kInsert) {
        while (next < ops_list.size()) {
          const rel::UpdateOp& peek = ops_list[next];
          if (peek.has_world_condition() ||
              peek.kind() == rel::UpdateOp::Kind::kInsert ||
              peek.relation() != op.relation() ||
              !ValidateUpdate(ops, peek).ok()) {
            break;
          }
          ++next;
        }
      }
      std::span<const rel::UpdateOp> run = ops_list.subspan(idx, next - idx);
      ParallelStats ps;
      st = ApplyUpdatesSharded(ops, run, threads, &ps);
      if (ps.sharded && stats != nullptr) {
        stats->sharded_applies += run.size();
        stats->apply_shards += ps.shards;
      }
    }
    if (!st.ok()) break;
    // The applied op mutated its target: cached guards whose condition
    // read it are stale now — sequential semantics re-evaluate them.
    for (auto it = guards.begin(); it != guards.end();) {
      it = it->second.scans.count(op.relation()) ? guards.erase(it)
                                                 : std::next(it);
    }
    idx = next;
  }
  Status drop = scope.DropAll();
  return st.ok() ? drop : st;
}

}  // namespace maywsd::core::engine
