#include "core/engine/wsd_backend.h"

#include "core/wsd_algebra.h"

namespace maywsd::core::engine {

bool WsdBackend::HasRelation(const std::string& name) const {
  return wsd_->HasRelation(name);
}

std::vector<std::string> WsdBackend::RelationNames() const {
  return wsd_->RelationNames();
}

Result<rel::Schema> WsdBackend::RelationSchema(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd_->FindRelation(name));
  return r->schema;
}

Status WsdBackend::Copy(const std::string& src, const std::string& out) {
  return WsdCopy(*wsd_, src, out);
}

Status WsdBackend::SelectConst(const std::string& src, const std::string& out,
                               const std::string& attr, rel::CmpOp op,
                               const rel::Value& constant) {
  return WsdSelectConst(*wsd_, src, out, attr, op, constant);
}

Status WsdBackend::SelectAttrAttr(const std::string& src,
                                  const std::string& out,
                                  const std::string& attr_a, rel::CmpOp op,
                                  const std::string& attr_b) {
  return WsdSelectAttrAttr(*wsd_, src, out, attr_a, op, attr_b);
}

Status WsdBackend::Product(const std::string& left, const std::string& right,
                           const std::string& out) {
  return WsdProduct(*wsd_, left, right, out);
}

Status WsdBackend::Union(const std::string& left, const std::string& right,
                         const std::string& out) {
  return WsdUnion(*wsd_, left, right, out);
}

Status WsdBackend::Project(const std::string& src, const std::string& out,
                           const std::vector<std::string>& attrs) {
  return WsdProject(*wsd_, src, out, attrs);
}

Status WsdBackend::Rename(
    const std::string& src, const std::string& out,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  return WsdRename(*wsd_, src, out, renames);
}

Status WsdBackend::Difference(const std::string& left,
                              const std::string& right,
                              const std::string& out) {
  return WsdDifference(*wsd_, left, right, out);
}

Status WsdBackend::Drop(const std::string& name) {
  return wsd_->DropRelation(name);
}

void WsdBackend::Compact() { wsd_->CompactComponents(); }

}  // namespace maywsd::core::engine
