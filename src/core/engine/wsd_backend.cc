#include "core/engine/wsd_backend.h"

#include "core/confidence.h"
#include "core/engine/shard_plan.h"
#include "core/wsd_algebra.h"
#include "core/wsd_update.h"

namespace maywsd::core::engine {

bool WsdBackend::HasRelation(const std::string& name) const {
  return wsd_->HasRelation(name);
}

std::vector<std::string> WsdBackend::RelationNames() const {
  return wsd_->RelationNames();
}

Result<rel::Schema> WsdBackend::RelationSchema(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd_->FindRelation(name));
  return r->schema;
}

Status WsdBackend::AddCertainRelation(const rel::Relation& relation) {
  MAYWSD_RETURN_IF_ERROR(CheckCertainRelation(relation));
  MAYWSD_RETURN_IF_ERROR(
      wsd_->AddRelation(relation.name(), relation.schema(),
                        static_cast<TupleId>(relation.NumRows())));
  Symbol rel_sym = InternString(relation.name());
  for (size_t r = 0; r < relation.NumRows(); ++r) {
    for (size_t a = 0; a < relation.arity(); ++a) {
      MAYWSD_RETURN_IF_ERROR(wsd_->AddCertainField(
          FieldKey(rel_sym, static_cast<TupleId>(r),
                   relation.schema().attr(a).name),
          relation.row(r)[a]));
    }
  }
  return Status::Ok();
}

Status WsdBackend::Copy(const std::string& src, const std::string& out) {
  return WsdCopy(*wsd_, src, out);
}

Status WsdBackend::SelectConst(const std::string& src, const std::string& out,
                               const std::string& attr, rel::CmpOp op,
                               const rel::Value& constant) {
  return WsdSelectConst(*wsd_, src, out, attr, op, constant);
}

Status WsdBackend::SelectAttrAttr(const std::string& src,
                                  const std::string& out,
                                  const std::string& attr_a, rel::CmpOp op,
                                  const std::string& attr_b) {
  return WsdSelectAttrAttr(*wsd_, src, out, attr_a, op, attr_b);
}

Status WsdBackend::Product(const std::string& left, const std::string& right,
                           const std::string& out) {
  return WsdProduct(*wsd_, left, right, out);
}

Status WsdBackend::Union(const std::string& left, const std::string& right,
                         const std::string& out) {
  return WsdUnion(*wsd_, left, right, out);
}

Status WsdBackend::Project(const std::string& src, const std::string& out,
                           const std::vector<std::string>& attrs) {
  return WsdProject(*wsd_, src, out, attrs);
}

Status WsdBackend::ProjectExists(const std::string& src,
                                 const std::string& out,
                                 const std::vector<std::string>& attrs) {
  return WsdProjectExists(*wsd_, src, out, attrs);
}

Status WsdBackend::Rename(
    const std::string& src, const std::string& out,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  return WsdRename(*wsd_, src, out, renames);
}

Status WsdBackend::Difference(const std::string& left,
                              const std::string& right,
                              const std::string& out) {
  return WsdDifference(*wsd_, left, right, out);
}

Status WsdBackend::ApplyUpdate(const rel::UpdateOp& op,
                               const std::string& guard) {
  return WsdApplyUpdate(*wsd_, op, guard);
}

Status WsdBackend::Drop(const std::string& name) {
  return wsd_->DropRelation(name);
}

void WsdBackend::Compact() { wsd_->CompactComponents(); }

Result<rel::Relation> WsdBackend::PossibleTuples(
    const std::string& relation) const {
  return core::PossibleTuples(*wsd_, relation);
}

Result<rel::Relation> WsdBackend::PossibleTuplesWithConfidence(
    const std::string& relation) const {
  return core::PossibleTuplesWithConfidence(*wsd_, relation);
}

Result<rel::Relation> WsdBackend::CertainTuples(
    const std::string& relation) const {
  return core::CertainTuples(*wsd_, relation);
}

Result<double> WsdBackend::TupleConfidence(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  return core::TupleConfidence(*wsd_, relation, tuple);
}

Result<bool> WsdBackend::TupleCertain(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  return core::TupleCertain(*wsd_, relation, tuple);
}

Result<bool> WsdBackend::RelationCertain(const std::string& name) const {
  // Certain ⇔ every slot is either empty (absent in all worlds) or covered
  // by columns that are constant across their components' local worlds —
  // then every world materializes the same instance. Presence fields are
  // conservatively treated as uncertainty.
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel, wsd_->FindRelation(name));
  if (!rel->presence_attrs.empty()) return false;
  for (TupleId t = 0; t < rel->max_tuples; ++t) {
    for (const FieldKey& f : wsd_->FieldsOfTuple(*rel, t)) {
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd_->Locate(f));
      if (!wsd_->component(loc.comp).ColumnConstant(
              static_cast<size_t>(loc.col))) {
        return false;
      }
    }
  }
  return true;
}

Result<std::unique_ptr<ShardPlan>> WsdBackend::PlanShards(
    const ShardRequest& req) {
  return MakeWsdShardPlan(*wsd_, req);
}

}  // namespace maywsd::core::engine
