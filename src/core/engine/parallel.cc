#include "core/engine/parallel.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/engine/plan_driver.h"

namespace maywsd::core::engine {

// -- ThreadPool ---------------------------------------------------------

namespace {

/// Set while a pool worker is executing tasks, so nested RunAll calls run
/// inline instead of deadlocking on a saturated queue.
thread_local bool t_on_pool_worker = false;

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::deque<std::function<void()>> queue;
  bool shutting_down = false;
  std::vector<std::thread> workers;

  void WorkerLoop() {
    t_on_pool_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [this] { return shutting_down || !queue.empty(); });
        if (queue.empty()) return;  // shutting down
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads)
    : impl_(new Impl), num_threads_(num_threads == 0 ? 1 : num_threads) {
  impl_->workers.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

std::vector<Status> ThreadPool::RunAll(
    std::vector<std::function<Status()>> tasks) {
  std::vector<Status> results(tasks.size(), Status::Ok());
  if (tasks.empty()) return results;
  if (t_on_pool_worker) {
    // Nested use from a worker: run inline to avoid queue deadlock.
    for (size_t i = 0; i < tasks.size(); ++i) results[i] = tasks[i]();
    return results;
  }
  struct Batch {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending;
  };
  auto batch = std::make_shared<Batch>();
  batch->pending = tasks.size();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (size_t i = 0; i < tasks.size(); ++i) {
      impl_->queue.push_back(
          [task = std::move(tasks[i]), result = &results[i], batch] {
            *result = task();
            std::lock_guard<std::mutex> lock(batch->mu);
            if (--batch->pending == 0) batch->done_cv.notify_all();
          });
    }
  }
  impl_->work_cv.notify_all();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->pending == 0; });
  return results;
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::thread::hardware_concurrency() == 0
                             ? 4
                             : std::thread::hardware_concurrency());
  return pool;
}

// -- Shard candidate analysis -------------------------------------------

namespace {

struct LeafInfo {
  size_t occurrences = 0;
  /// True when at least one occurrence sits on a distributive root path.
  bool distributive = false;
};

/// Walks the plan, collecting per-leaf occurrence counts and whether each
/// leaf is reachable from the root through operators that distribute over
/// a union of slices of that leaf: σ/π/δ (unary), × and ⋈ (either side),
/// − (left side only). Union does not distribute slice-wise (the other
/// branch would be replicated per slice), nor does the right side of a
/// difference. Also records whether every operator kind in the plan is
/// declared shardable by the backend.
void AnalyzePlan(const WorldSetOps& ops, const rel::Plan& plan,
                 bool distributive,
                 std::unordered_map<std::string, LeafInfo>* leaves,
                 std::vector<std::string>* leaf_order, bool* ops_shardable) {
  using K = rel::Plan::Kind;
  if (plan.kind() == K::kScan) {
    auto [it, fresh] = leaves->try_emplace(plan.relation());
    if (fresh) leaf_order->push_back(plan.relation());
    it->second.occurrences++;
    it->second.distributive |= distributive;
    return;
  }
  if (!ops.ShardableOperator(plan.kind())) *ops_shardable = false;
  switch (plan.kind()) {
    case K::kSelect:
    case K::kProject:
    case K::kRename:
      AnalyzePlan(ops, plan.child(), distributive, leaves, leaf_order,
                  ops_shardable);
      return;
    case K::kProduct:
    case K::kJoin:
      AnalyzePlan(ops, plan.left(), distributive, leaves, leaf_order,
                  ops_shardable);
      AnalyzePlan(ops, plan.right(), distributive, leaves, leaf_order,
                  ops_shardable);
      return;
    case K::kDifference:
      AnalyzePlan(ops, plan.left(), distributive, leaves, leaf_order,
                  ops_shardable);
      AnalyzePlan(ops, plan.right(), false, leaves, leaf_order,
                  ops_shardable);
      return;
    case K::kUnion:
      AnalyzePlan(ops, plan.left(), false, leaves, leaf_order, ops_shardable);
      AnalyzePlan(ops, plan.right(), false, leaves, leaf_order, ops_shardable);
      return;
    case K::kScan:
      return;
  }
}

/// Picks the relation to partition: the first leaf (in scan preorder) that
/// occurs exactly once on a distributive path while every other scanned
/// relation is certain. Returns an empty optional-like request when no
/// leaf qualifies.
Result<std::unique_ptr<ShardRequest>> FindShardCandidate(
    const WorldSetOps& ops, const rel::Plan& plan, size_t max_shards) {
  std::unordered_map<std::string, LeafInfo> leaves;
  std::vector<std::string> leaf_order;
  bool ops_shardable = true;
  AnalyzePlan(ops, plan, /*distributive=*/true, &leaves, &leaf_order,
              &ops_shardable);
  if (!ops_shardable || leaf_order.empty()) {
    return std::unique_ptr<ShardRequest>();
  }
  // Certainty per distinct leaf, computed once.
  std::unordered_map<std::string, bool> certain;
  for (const std::string& name : leaf_order) {
    if (!ops.HasRelation(name)) return std::unique_ptr<ShardRequest>();
    MAYWSD_ASSIGN_OR_RETURN(bool c, ops.RelationCertain(name));
    certain[name] = c;
  }
  for (const std::string& name : leaf_order) {
    const LeafInfo& info = leaves.at(name);
    if (info.occurrences != 1 || !info.distributive) continue;
    bool others_certain = true;
    for (const std::string& other : leaf_order) {
      if (other != name && !certain.at(other)) {
        others_certain = false;
        break;
      }
    }
    if (!others_certain) continue;
    auto req = std::make_unique<ShardRequest>();
    req->relation = name;
    for (const std::string& other : leaf_order) {
      if (other != name) req->aux_relations.push_back(other);
    }
    req->max_shards = max_shards;
    return req;
  }
  return std::unique_ptr<ShardRequest>();
}

/// Name of the per-shard result relation (each shard backend is its own
/// namespace, so a fixed name cannot collide).
constexpr const char* kShardOut = "__eng_shard_out";

}  // namespace

// -- EvaluateParallel ---------------------------------------------------

Status EvaluateParallel(WorldSetOps& ops, const rel::Plan& plan,
                        const std::string& out, size_t threads,
                        ParallelStats* stats) {
  if (stats != nullptr) *stats = ParallelStats{};
  if (threads <= 1) return Evaluate(ops, plan, out);
  if (ops.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  MAYWSD_ASSIGN_OR_RETURN(std::unique_ptr<ShardRequest> req,
                          FindShardCandidate(ops, plan, threads));
  if (req == nullptr) return Evaluate(ops, plan, out);
  MAYWSD_ASSIGN_OR_RETURN(std::unique_ptr<ShardPlan> shard_plan,
                          ops.PlanShards(*req));
  if (shard_plan == nullptr) return Evaluate(ops, plan, out);

  size_t num_shards = shard_plan->NumShards();
  std::vector<std::unique_ptr<WorldSetOps>> shards(num_shards);
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(num_shards);
  const ShardPlan* plan_view = shard_plan.get();
  for (size_t i = 0; i < num_shards; ++i) {
    tasks.push_back([plan_view, &plan, &shards, i]() -> Status {
      MAYWSD_ASSIGN_OR_RETURN(shards[i], plan_view->BuildShard(i));
      return Evaluate(*shards[i], plan, kShardOut);
    });
  }
  std::vector<Status> results = ThreadPool::Shared().RunAll(std::move(tasks));
  for (const Status& st : results) {
    MAYWSD_RETURN_IF_ERROR(st);
  }
  // Deterministic merge: shard-index order, on this thread, after every
  // worker finished. On a mid-merge failure, drop the partially-built
  // result so callers never observe a truncated `out` (the uniform plan
  // only publishes on Finish, so its parent store needs no cleanup — the
  // drop is a no-op there).
  auto merge = [&]() -> Status {
    for (size_t i = 0; i < num_shards; ++i) {
      MAYWSD_RETURN_IF_ERROR(
          shard_plan->Absorb(i, *shards[i], kShardOut, out));
    }
    return shard_plan->Finish();
  };
  if (Status st = merge(); !st.ok()) {
    if (ops.HasRelation(out)) (void)ops.Drop(out);
    return st;
  }
  if (stats != nullptr) {
    stats->sharded = true;
    stats->shards = num_shards;
  }
  return Status::Ok();
}

}  // namespace maywsd::core::engine
