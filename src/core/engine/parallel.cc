#include "core/engine/parallel.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/engine/plan_driver.h"

namespace maywsd::core::engine {

// -- ThreadPool ---------------------------------------------------------

namespace {

/// Set while a pool worker is executing tasks, so nested RunAll calls run
/// inline instead of deadlocking on a saturated queue.
thread_local bool t_on_pool_worker = false;

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::deque<std::function<void()>> queue;
  bool shutting_down = false;
  std::vector<std::thread> workers;

  void WorkerLoop() {
    t_on_pool_worker = true;
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [this] { return shutting_down || !queue.empty(); });
        if (queue.empty()) return;  // shutting down
        task = std::move(queue.front());
        queue.pop_front();
      }
      task();
    }
  }
};

ThreadPool::ThreadPool(size_t num_threads)
    : impl_(new Impl), num_threads_(num_threads == 0 ? 1 : num_threads) {
  impl_->workers.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    impl_->workers.emplace_back([impl = impl_] { impl->WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

std::vector<Status> ThreadPool::RunAll(
    std::vector<std::function<Status()>> tasks) {
  std::vector<Status> results(tasks.size(), Status::Ok());
  if (tasks.empty()) return results;
  if (t_on_pool_worker) {
    // Nested use from a worker: run inline to avoid queue deadlock.
    for (size_t i = 0; i < tasks.size(); ++i) results[i] = tasks[i]();
    return results;
  }
  struct Batch {
    std::mutex mu;
    std::condition_variable done_cv;
    size_t pending;
  };
  auto batch = std::make_shared<Batch>();
  batch->pending = tasks.size();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (size_t i = 0; i < tasks.size(); ++i) {
      impl_->queue.push_back(
          [task = std::move(tasks[i]), result = &results[i], batch] {
            *result = task();
            std::lock_guard<std::mutex> lock(batch->mu);
            if (--batch->pending == 0) batch->done_cv.notify_all();
          });
    }
  }
  impl_->work_cv.notify_all();
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->pending == 0; });
  return results;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (t_on_pool_worker) {
    // Nested use from a worker: run inline to avoid queue deadlock.
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->queue.push_back(std::move(task));
  }
  impl_->work_cv.notify_one();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(std::thread::hardware_concurrency() == 0
                             ? 4
                             : std::thread::hardware_concurrency());
  return pool;
}

// -- Shard candidate analysis -------------------------------------------

namespace {

struct LeafInfo {
  size_t occurrences = 0;
  /// True when at least one occurrence sits on a distributive root path.
  bool distributive = false;
};

/// Walks the plan, collecting per-leaf occurrence counts and whether each
/// leaf is reachable from the root through operators that distribute over
/// a union of slices of that leaf: σ/π/δ (unary), × and ⋈ (either side),
/// − (left side only). Union does not distribute slice-wise (the other
/// branch would be replicated per slice), nor does the right side of a
/// difference. Also records whether every operator kind in the plan is
/// declared shardable by the backend.
void AnalyzePlan(const WorldSetOps& ops, const rel::Plan& plan,
                 bool distributive,
                 std::unordered_map<std::string, LeafInfo>* leaves,
                 std::vector<std::string>* leaf_order, bool* ops_shardable) {
  using K = rel::Plan::Kind;
  if (plan.kind() == K::kScan) {
    auto [it, fresh] = leaves->try_emplace(plan.relation());
    if (fresh) leaf_order->push_back(plan.relation());
    it->second.occurrences++;
    it->second.distributive |= distributive;
    return;
  }
  if (!ops.ShardableOperator(plan.kind())) *ops_shardable = false;
  switch (plan.kind()) {
    case K::kSelect:
    case K::kProject:
    case K::kRename:
      AnalyzePlan(ops, plan.child(), distributive, leaves, leaf_order,
                  ops_shardable);
      return;
    case K::kProduct:
    case K::kJoin:
      AnalyzePlan(ops, plan.left(), distributive, leaves, leaf_order,
                  ops_shardable);
      AnalyzePlan(ops, plan.right(), distributive, leaves, leaf_order,
                  ops_shardable);
      return;
    case K::kDifference:
      AnalyzePlan(ops, plan.left(), distributive, leaves, leaf_order,
                  ops_shardable);
      AnalyzePlan(ops, plan.right(), false, leaves, leaf_order,
                  ops_shardable);
      return;
    case K::kUnion:
      AnalyzePlan(ops, plan.left(), false, leaves, leaf_order, ops_shardable);
      AnalyzePlan(ops, plan.right(), false, leaves, leaf_order, ops_shardable);
      return;
    case K::kScan:
      return;
  }
}

/// Picks the relation to partition: the first leaf (in scan preorder) that
/// occurs exactly once on a distributive path while every other scanned
/// relation is certain. Returns an empty optional-like request when no
/// leaf qualifies.
Result<std::unique_ptr<ShardRequest>> FindShardCandidate(
    const WorldSetOps& ops, const rel::Plan& plan, size_t max_shards) {
  std::unordered_map<std::string, LeafInfo> leaves;
  std::vector<std::string> leaf_order;
  bool ops_shardable = true;
  AnalyzePlan(ops, plan, /*distributive=*/true, &leaves, &leaf_order,
              &ops_shardable);
  if (!ops_shardable || leaf_order.empty()) {
    return std::unique_ptr<ShardRequest>();
  }
  // Certainty per distinct leaf, computed once.
  std::unordered_map<std::string, bool> certain;
  for (const std::string& name : leaf_order) {
    if (!ops.HasRelation(name)) return std::unique_ptr<ShardRequest>();
    MAYWSD_ASSIGN_OR_RETURN(bool c, ops.RelationCertain(name));
    certain[name] = c;
  }
  for (const std::string& name : leaf_order) {
    const LeafInfo& info = leaves.at(name);
    if (info.occurrences != 1 || !info.distributive) continue;
    bool others_certain = true;
    for (const std::string& other : leaf_order) {
      if (other != name && !certain.at(other)) {
        others_certain = false;
        break;
      }
    }
    if (!others_certain) continue;
    auto req = std::make_unique<ShardRequest>();
    req->relation = name;
    for (const std::string& other : leaf_order) {
      if (other != name) req->aux_relations.push_back(other);
    }
    req->max_shards = max_shards;
    return req;
  }
  return std::unique_ptr<ShardRequest>();
}

/// Name of the per-shard result relation (each shard backend is its own
/// namespace, so a fixed name cannot collide).
constexpr const char* kShardOut = "__eng_shard_out";

/// The ordered streaming merge: runs `work(i)` for every shard on the
/// shared pool and calls `absorb(i)` on THIS thread as soon as shards
/// 0..i have completed — slower shards keep executing while earlier ones
/// merge, so there is no wait-for-slowest barrier, and shard-index order
/// keeps the merged result deterministic. After the first failure no
/// further absorbs run, but the coordinator still drains every in-flight
/// worker before returning (the tasks reference this frame). From inside
/// a pool worker the whole fan-out degrades to a sequential
/// work-then-absorb loop.
Status RunStreamingOrdered(size_t num_shards,
                           const std::function<Status(size_t)>& work,
                           const std::function<Status(size_t)>& absorb) {
  if (t_on_pool_worker) {
    for (size_t i = 0; i < num_shards; ++i) {
      MAYWSD_RETURN_IF_ERROR(work(i));
      MAYWSD_RETURN_IF_ERROR(absorb(i));
    }
    return Status::Ok();
  }
  struct State {
    std::mutex mu;
    std::condition_variable done_cv;
    std::vector<Status> results;
    std::vector<char> done;
  } state;
  state.results.assign(num_shards, Status::Ok());
  state.done.assign(num_shards, 0);
  for (size_t i = 0; i < num_shards; ++i) {
    ThreadPool::Shared().Submit([&state, &work, i] {
      Status st = work(i);
      std::lock_guard<std::mutex> lock(state.mu);
      state.results[i] = std::move(st);
      state.done[i] = 1;
      state.done_cv.notify_all();
    });
  }
  Status first_error = Status::Ok();
  for (size_t i = 0; i < num_shards; ++i) {
    Status st;
    {
      std::unique_lock<std::mutex> lock(state.mu);
      state.done_cv.wait(lock, [&state, i] { return state.done[i] != 0; });
      st = state.results[i];
    }
    if (first_error.ok() && !st.ok()) first_error = st;
    if (first_error.ok()) {
      if (Status ast = absorb(i); !ast.ok()) first_error = ast;
    }
  }
  return first_error;
}

}  // namespace

// -- EvaluateParallel ---------------------------------------------------

Status EvaluateParallel(WorldSetOps& ops, const rel::Plan& plan,
                        const std::string& out, size_t threads,
                        ParallelStats* stats) {
  if (stats != nullptr) *stats = ParallelStats{};
  if (threads <= 1) return Evaluate(ops, plan, out);
  if (ops.HasRelation(out)) {
    return Status::AlreadyExists("relation " + out);
  }
  MAYWSD_ASSIGN_OR_RETURN(std::unique_ptr<ShardRequest> req,
                          FindShardCandidate(ops, plan, threads));
  if (req == nullptr) return Evaluate(ops, plan, out);
  MAYWSD_ASSIGN_OR_RETURN(std::unique_ptr<ShardPlan> shard_plan,
                          ops.PlanShards(*req));
  if (shard_plan == nullptr) return Evaluate(ops, plan, out);

  size_t num_shards = shard_plan->NumShards();
  std::vector<std::unique_ptr<WorldSetOps>> shards(num_shards);
  const ShardPlan* plan_view = shard_plan.get();
  // Phase 1 — build every slice, with a barrier: BuildShard only READS the
  // parent, and Absorb mutates it, so no absorb may start before the last
  // build returned. Builds are slice copies — cheap next to evaluation.
  std::vector<std::function<Status()>> builds;
  builds.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    builds.push_back([plan_view, &shards, i]() -> Status {
      MAYWSD_ASSIGN_OR_RETURN(shards[i], plan_view->BuildShard(i));
      return Status::Ok();
    });
  }
  for (Status& st : ThreadPool::Shared().RunAll(std::move(builds))) {
    MAYWSD_RETURN_IF_ERROR(st);
  }
  // Phase 2 — evaluate per slice on the pool, streaming finished shards
  // back in index order while slower ones still run. On any failure, drop
  // the partially-built result so callers never observe a truncated `out`
  // (the uniform plan only publishes on Finish, so its parent store needs
  // no cleanup — the drop is a no-op there).
  Status st = RunStreamingOrdered(
      num_shards,
      [&shards, &plan](size_t i) {
        return Evaluate(*shards[i], plan, kShardOut);
      },
      [&shard_plan, &shards, &out](size_t i) {
        return shard_plan->Absorb(i, *shards[i], kShardOut, out);
      });
  if (st.ok()) st = shard_plan->Finish();
  if (!st.ok()) {
    if (ops.HasRelation(out)) (void)ops.Drop(out);
    return st;
  }
  if (stats != nullptr) {
    stats->sharded = true;
    stats->shards = num_shards;
  }
  return Status::Ok();
}

// -- ApplyUpdatesSharded ------------------------------------------------

Status ApplyUpdatesSharded(WorldSetOps& ops,
                           std::span<const rel::UpdateOp> run, size_t threads,
                           ParallelStats* stats) {
  if (stats != nullptr) *stats = ParallelStats{};
  if (run.empty()) return Status::Ok();
  auto sequential = [&ops, run]() -> Status {
    for (const rel::UpdateOp& op : run) {
      MAYWSD_RETURN_IF_ERROR(ops.ApplyUpdate(op, std::string()));
    }
    return Status::Ok();
  };
  // Only unconditional deletes/modifies distribute over tuple slices (an
  // insert has nothing to slice, and a world-conditional update's guard
  // correlates every slice with the guard relation's components); the
  // caller groups runs so one check on the head covers all of them.
  if (threads <= 1 || run.front().kind() == rel::UpdateOp::Kind::kInsert ||
      run.front().has_world_condition()) {
    return sequential();
  }
  ShardRequest req;
  req.relation = run.front().relation();
  req.max_shards = threads;
  req.for_update = true;
  MAYWSD_ASSIGN_OR_RETURN(std::unique_ptr<ShardPlan> shard_plan,
                          ops.PlanShards(req));
  if (shard_plan == nullptr) return sequential();

  size_t num_shards = shard_plan->NumShards();
  std::vector<std::unique_ptr<WorldSetOps>> shards(num_shards);
  const ShardPlan* plan_view = shard_plan.get();
  std::vector<std::function<Status()>> builds;
  builds.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    builds.push_back([plan_view, &shards, i]() -> Status {
      MAYWSD_ASSIGN_OR_RETURN(shards[i], plan_view->BuildShard(i));
      return Status::Ok();
    });
  }
  for (Status& st : ThreadPool::Shared().RunAll(std::move(builds))) {
    MAYWSD_RETURN_IF_ERROR(st);
  }
  // Replace-by-slices: drop the parent relation, run the whole update run
  // on each slice on the pool (this is where the fan-out earns its copy:
  // one slicing serves every update in the run), and stream the mutated
  // slices back under the original name.
  const std::string& name = run.front().relation();
  MAYWSD_RETURN_IF_ERROR(ops.Drop(name));
  Status st = RunStreamingOrdered(
      num_shards,
      [&shards, run](size_t i) -> Status {
        for (const rel::UpdateOp& op : run) {
          MAYWSD_RETURN_IF_ERROR(shards[i]->ApplyUpdate(op, std::string()));
        }
        return Status::Ok();
      },
      [&shard_plan, &shards, &name](size_t i) {
        return shard_plan->Absorb(i, *shards[i], name, name);
      });
  if (st.ok()) st = shard_plan->Finish();
  MAYWSD_RETURN_IF_ERROR(st);
  if (stats != nullptr) {
    stats->sharded = true;
    stats->shards = num_shards;
  }
  return Status::Ok();
}

}  // namespace maywsd::core::engine
