#include "core/engine/wsdt_backend.h"

#include "core/engine/shard_plan.h"
#include "core/wsdt_algebra.h"
#include "core/wsdt_confidence.h"
#include "core/wsdt_update.h"

namespace maywsd::core::engine {

bool WsdtBackend::HasRelation(const std::string& name) const {
  return wsdt_->HasRelation(name);
}

std::vector<std::string> WsdtBackend::RelationNames() const {
  return wsdt_->RelationNames();
}

Result<rel::Schema> WsdtBackend::RelationSchema(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, wsdt_->Template(name));
  return tmpl->schema();
}

Status WsdtBackend::AddCertainRelation(const rel::Relation& relation) {
  MAYWSD_RETURN_IF_ERROR(CheckCertainRelation(relation));
  // A fully certain instance is a template with no placeholders.
  return wsdt_->AddTemplateRelation(relation);
}

Status WsdtBackend::Copy(const std::string& src, const std::string& out) {
  return WsdtCopy(*wsdt_, src, out);
}

Status WsdtBackend::SelectConst(const std::string& src, const std::string& out,
                                const std::string& attr, rel::CmpOp op,
                                const rel::Value& constant) {
  return WsdtSelect(*wsdt_, src, out, rel::Predicate::Cmp(attr, op, constant));
}

Status WsdtBackend::SelectAttrAttr(const std::string& src,
                                   const std::string& out,
                                   const std::string& attr_a, rel::CmpOp op,
                                   const std::string& attr_b) {
  return WsdtSelect(*wsdt_, src, out,
                    rel::Predicate::CmpAttr(attr_a, op, attr_b));
}

Status WsdtBackend::Product(const std::string& left, const std::string& right,
                            const std::string& out) {
  return WsdtProduct(*wsdt_, left, right, out);
}

Status WsdtBackend::Union(const std::string& left, const std::string& right,
                          const std::string& out) {
  return WsdtUnion(*wsdt_, left, right, out);
}

Status WsdtBackend::Project(const std::string& src, const std::string& out,
                            const std::vector<std::string>& attrs) {
  return WsdtProject(*wsdt_, src, out, attrs);
}

Status WsdtBackend::Rename(
    const std::string& src, const std::string& out,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  return WsdtRename(*wsdt_, src, out, renames);
}

Status WsdtBackend::Difference(const std::string& left,
                               const std::string& right,
                               const std::string& out) {
  return WsdtDifference(*wsdt_, left, right, out);
}

Status WsdtBackend::ApplyUpdate(const rel::UpdateOp& op,
                                const std::string& guard) {
  return WsdtApplyUpdate(*wsdt_, op, guard);
}

Status WsdtBackend::Drop(const std::string& name) {
  return wsdt_->DropRelation(name);
}

void WsdtBackend::Compact() { wsdt_->CompactComponents(); }

Result<rel::Relation> WsdtBackend::PossibleTuples(
    const std::string& relation) const {
  return WsdtPossibleTuples(*wsdt_, relation);
}

Result<rel::Relation> WsdtBackend::PossibleTuplesWithConfidence(
    const std::string& relation) const {
  return WsdtPossibleTuplesWithConfidence(*wsdt_, relation);
}

Result<rel::Relation> WsdtBackend::CertainTuples(
    const std::string& relation) const {
  return WsdtCertainTuples(*wsdt_, relation);
}

Result<double> WsdtBackend::TupleConfidence(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  return WsdtTupleConfidence(*wsdt_, relation, tuple);
}

Result<bool> WsdtBackend::TupleCertain(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  return WsdtTupleCertain(*wsdt_, relation, tuple);
}

Status WsdtBackend::SelectPredicate(const std::string& src,
                                    const std::string& out,
                                    const rel::Predicate& pred) {
  return WsdtSelect(*wsdt_, src, out, pred);
}

Status WsdtBackend::HashJoin(const std::string& left, const std::string& right,
                             const std::string& out,
                             const std::string& left_attr,
                             const std::string& right_attr) {
  return WsdtJoin(*wsdt_, left, right, out, left_attr, right_attr);
}

Result<bool> WsdtBackend::RelationCertain(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, wsdt_->Template(name));
  return TemplateIsCertain(*tmpl);
}

Result<std::unique_ptr<ShardPlan>> WsdtBackend::PlanShards(
    const ShardRequest& req) {
  // Cost gate (the urel rule, ported): a single-leaf QUERY plan is a
  // unary select/project/rename chain — one pass over the template.
  // Building a shard slice copies every template row of the partitioned
  // relation, which costs about as much as the pass it would parallelize,
  // so the fan-out taxes cheap queries 3-6x at census densities; decline
  // and evaluate sequentially. Plans with a second (certain) leaf do
  // superlinear per-row work that amortizes the slice, and update
  // fan-outs rewrite the slice in place — both keep the fan-out. (The
  // uniform backend calls MakeWsdtShardPlan directly and keeps single-leaf
  // fan-outs: slicing amortizes its import/export round trips.)
  if (req.aux_relations.empty() && !req.for_update) {
    return std::unique_ptr<ShardPlan>();
  }
  return MakeWsdtShardPlan(*wsdt_, wsdt_, req);
}

}  // namespace maywsd::core::engine
