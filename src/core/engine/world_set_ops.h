// WorldSetOps: the backend contract of the world-set engine.
//
// The paper evaluates one relational algebra (Figure 9) over two
// representations — WSDs (Section 4) and their template-relation
// refinement, WSDTs/UWSDTs (Section 5). Both expose the same operator
// set; only the data structures behind the operators differ. This
// interface captures that operator set so a single plan driver
// (engine/plan_driver.h) can lower rel::Plan trees once and run them over
// any representation.
//
// Contract (mirrors Figure 9): every operator *extends* the world set with
// a new result relation named `out`; inputs are preserved so subquery
// results stay correlated with their inputs. `out` must not exist yet.
// Deleted tuples are represented with ⊥ inside the backend; schemas are
// the certain part the driver reasons about.
//
// The mandatory operators are the Figure 9 core plus the Section 6 answer
// surface (possible/certain tuples, tuple confidence) that api::Session
// exposes. Backends may additionally advertise capabilities (an
// arbitrary-predicate selection evaluated in one pass, a fused σ(×) hash
// join — the Section 5 optimizations); the driver uses them when present
// and otherwise falls back to the generic lowering.

#ifndef MAYWSD_CORE_ENGINE_WORLD_SET_OPS_H_
#define MAYWSD_CORE_ENGINE_WORLD_SET_OPS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rel/algebra.h"
#include "rel/predicate.h"
#include "rel/relation.h"
#include "rel/schema.h"
#include "rel/update.h"

namespace maywsd::core::engine {

class WorldSetOps;

/// What the parallel driver asks a backend to partition: the state of one
/// relation, split by tuple ranges into independent slices, with a set of
/// fully certain auxiliary relations replicated into every slice.
struct ShardRequest {
  /// The relation whose tuple slots are partitioned across shards.
  std::string relation;
  /// Other relations the plan references; each must be certain (equal in
  /// every world) so replicating it into a slice cannot lose correlations.
  std::vector<std::string> aux_relations;
  /// Upper bound on the number of shards (the worker-pool width).
  size_t max_shards = 1;
  /// True when the shards carry an in-place update fan-out: the driver
  /// will mutate each slice and then REPLACE the parent relation with the
  /// absorbed slices (drop + re-absorb under the same name). A backend
  /// must decline unless every component touching `relation` covers only
  /// that relation's columns — a cross-relation component cannot be
  /// dropped and rebuilt per slice without losing the correlation — and
  /// should decline when slicing cannot beat its native one-pass update.
  bool for_update = false;
};

/// A backend's partitioning of one relation into independent slices.
///
/// Lifecycle, driven by EvaluateParallel (engine/parallel.h):
///   1. BuildShard(i) — called concurrently from worker threads; must only
///      READ the parent representation. Returns a self-contained backend
///      whose `relation` holds slice i and whose aux relations are full
///      certain copies. The slice world-sets are mutually independent and
///      their union is the marginal world-set of the parent relation.
///   2. Absorb(i, ...) — called on the coordinating thread, in shard-index
///      order (this is what makes the merged result deterministic
///      regardless of completion order), only after every BuildShard
///      returned. Workers may still be EXECUTING on later shards while
///      shard i is absorbed — the streaming merge overlaps merging with
///      the slowest shards — so Absorb must touch only the parent and the
///      finished shard i, never another shard's state. Merges shard i's
///      relation `src` into the parent's `dst`, creating `dst` on the
///      first call.
///   3. Finish() — once, after all absorbs (the uniform backend re-exports
///      its store here). Default no-op.
///
/// Sharded evaluation preserves the result relation's world-set exactly;
/// cross-relation correlation between the result and its input relations
/// (which sequential evaluation keeps) is intentionally weakened — shard
/// results attach to copies of the input components, not to the originals.
class ShardPlan {
 public:
  virtual ~ShardPlan() = default;

  virtual size_t NumShards() const = 0;

  /// Builds the self-contained world set of shard `i`. Thread-safe.
  virtual Result<std::unique_ptr<WorldSetOps>> BuildShard(size_t i) const = 0;

  /// Merges shard `i`'s relation `src` into the parent's `dst`.
  virtual Status Absorb(size_t i, WorldSetOps& shard, const std::string& src,
                        const std::string& dst) = 0;

  /// Publishes the merged result into the parent representation.
  virtual Status Finish() { return Status::Ok(); }
};

/// Shared guard for AddCertainRelation implementations: a fully certain
/// instance may contain neither ⊥ (deleted-tuple marker) nor '?'
/// (template placeholder) cells.
inline Status CheckCertainRelation(const rel::Relation& relation) {
  for (size_t r = 0; r < relation.NumRows(); ++r) {
    for (size_t a = 0; a < relation.arity(); ++a) {
      if (relation.row(r)[a].is_bottom()) {
        return Status::InvalidArgument("certain relation " + relation.name() +
                                       " contains ⊥");
      }
      if (relation.row(r)[a].is_question()) {
        return Status::InvalidArgument("certain relation " + relation.name() +
                                       " contains a '?' placeholder");
      }
    }
  }
  return Status::Ok();
}

/// Backend-agnostic operator set over a world-set representation.
class WorldSetOps {
 public:
  virtual ~WorldSetOps() = default;

  /// Human-readable backend tag ("wsd", "wsdt"); used in error messages.
  virtual std::string_view BackendName() const = 0;

  // -- Catalog --------------------------------------------------------------

  virtual bool HasRelation(const std::string& name) const = 0;
  virtual std::vector<std::string> RelationNames() const = 0;
  /// Schema of a relation; NotFound when absent.
  virtual Result<rel::Schema> RelationSchema(const std::string& name) const = 0;

  /// Registers `relation` (a one-world, fully certain instance) under its
  /// name as a relation that is equal in every world. This is how base data
  /// enters a world set through the engine contract; uncertainty is then
  /// introduced by representation-level tooling (or-sets, noise, chase).
  virtual Status AddCertainRelation(const rel::Relation& relation) = 0;

  // -- Figure 9 operator core ----------------------------------------------

  /// out := src (fresh relation equal to src in every world).
  virtual Status Copy(const std::string& src, const std::string& out) = 0;

  /// out := σ_{attr θ constant}(src).
  virtual Status SelectConst(const std::string& src, const std::string& out,
                             const std::string& attr, rel::CmpOp op,
                             const rel::Value& constant) = 0;

  /// out := σ_{attr_a θ attr_b}(src).
  virtual Status SelectAttrAttr(const std::string& src, const std::string& out,
                                const std::string& attr_a, rel::CmpOp op,
                                const std::string& attr_b) = 0;

  /// out := left × right (attribute sets must be disjoint).
  virtual Status Product(const std::string& left, const std::string& right,
                         const std::string& out) = 0;

  /// out := left ∪ right (schemas must match).
  virtual Status Union(const std::string& left, const std::string& right,
                       const std::string& out) = 0;

  /// out := π_attrs(src).
  virtual Status Project(const std::string& src, const std::string& out,
                         const std::vector<std::string>& attrs) = 0;

  /// out := δ_{from→to}(src) for every pair in `renames`.
  virtual Status Rename(
      const std::string& src, const std::string& out,
      const std::vector<std::pair<std::string, std::string>>& renames) = 0;

  /// out := left − right (schemas must match).
  virtual Status Difference(const std::string& left, const std::string& right,
                            const std::string& out) = 0;

  /// Removes a relation (used for the driver's scratch relations).
  virtual Status Drop(const std::string& name) = 0;

  /// Housekeeping after dropping scratch relations (e.g. component
  /// compaction); default no-op.
  virtual void Compact() {}

  // -- Answer extraction (Section 6) ----------------------------------------
  //
  // The questions a caller asks about a result relation once a plan has
  // run: which tuples are possible, which are certain, and with what
  // confidence. Every backend must answer them — this is what makes a
  // representation-agnostic facade (api::Session) honest instead of a
  // switch over concrete types.

  /// possible(R): tuples appearing in at least one world (Figure 18).
  virtual Result<rel::Relation> PossibleTuples(
      const std::string& relation) const = 0;

  /// possibleᵖ(R): possible tuples with a trailing "conf" column
  /// (Figure 19).
  virtual Result<rel::Relation> PossibleTuplesWithConfidence(
      const std::string& relation) const = 0;

  /// certain(R): tuples occurring in every world — the consistent answers
  /// of Section 10.
  virtual Result<rel::Relation> CertainTuples(
      const std::string& relation) const = 0;

  /// conf(t): probability that `tuple` ∈ R in a random world (Figure 17).
  virtual Result<double> TupleConfidence(
      const std::string& relation,
      std::span<const rel::Value> tuple) const = 0;

  /// certain(t): true iff conf(t) = 1.
  virtual Result<bool> TupleCertain(
      const std::string& relation,
      std::span<const rel::Value> tuple) const = 0;

  // -- Update surface (engine/update_plan.h) ---------------------------------
  //
  // Mutations applied per world, in place: inserts, deletes and conditional
  // modifies, optionally restricted to the worlds where a guard relation is
  // non-empty. The driver validates `op` against the catalog and — for
  // world-conditional updates — materializes the condition plan into a
  // snapshot relation first; backends never see the condition plan itself.

  /// Applies `op`'s mutation to `op.relation()`, restricted to the worlds
  /// where relation `guard` is non-empty (empty string = all worlds). The
  /// backend may ignore op.world_condition() — the driver already lowered
  /// it into `guard`.
  virtual Status ApplyUpdate(const rel::UpdateOp& /*op*/,
                             const std::string& /*guard*/) {
    return Status::Unsupported(std::string(BackendName()) +
                               " backend has no update support");
  }

  // -- Introspection ---------------------------------------------------------

  /// Number of completed import → template-semantics → export round trips
  /// this backend has paid for operators it could not run natively — the
  /// structural tax the fig30 bench tracks. Backends that never leave
  /// their representation report 0.
  virtual uint64_t RoundTrips() const { return 0; }

  // -- Optional capabilities (Section 5 optimizations) ----------------------

  /// True when SelectPredicate() evaluates an arbitrary predicate tree in
  /// one pass; the driver then skips the generic ∧/∨/¬ lowering.
  virtual bool SupportsPredicateSelect() const { return false; }

  /// out := σ_pred(src) for an arbitrary predicate tree.
  virtual Status SelectPredicate(const std::string& /*src*/,
                                 const std::string& /*out*/,
                                 const rel::Predicate& /*pred*/) {
    return Status::Unsupported(std::string(BackendName()) +
                               " backend has no native predicate selection");
  }

  /// True when ProjectExists() implements projection with the "exists
  /// column" optimization (Section 4 Discussion): the ⊥ pattern of a
  /// projected-away column survives as an extra-schema presence field
  /// instead of being composed into the kept components, so projections
  /// never pay component products. The driver then routes kProject nodes
  /// through ProjectExists().
  virtual bool SupportsProjectExists() const { return false; }

  /// out := π_attrs(src), keeping deletion patterns as presence fields.
  virtual Status ProjectExists(const std::string& /*src*/,
                               const std::string& /*out*/,
                               const std::vector<std::string>& /*attrs*/) {
    return Status::Unsupported(std::string(BackendName()) +
                               " backend has no exists-column projection");
  }

  /// True when HashJoin() implements the fused σ(×) equi-join; the driver
  /// then splits join predicates into an equality pair plus residual.
  virtual bool SupportsHashJoin() const { return false; }

  /// out := left ⋈_{left_attr = right_attr} right.
  virtual Status HashJoin(const std::string& /*left*/,
                          const std::string& /*right*/,
                          const std::string& /*out*/,
                          const std::string& /*left_attr*/,
                          const std::string& /*right_attr*/) {
    return Status::Unsupported(std::string(BackendName()) +
                               " backend has no native hash join");
  }

  // -- Sharding capability (parallel Session::Run fan-out) -------------------
  //
  // The Figure 9 operators are per-relation and largely per-tuple-slot
  // independent, so a backend whose state partitions into tuple ranges
  // that share no components can evaluate a plan slice-by-slice in
  // parallel. A backend opts in per operator kind; the driver falls back
  // to single-shard execution when any operator in the plan is not
  // declared shardable (e.g. the component-composing WSD Product and
  // Difference).

  /// True when plans containing this operator kind may run sharded on this
  /// backend. Conservative default: nothing is shardable.
  virtual bool ShardableOperator(rel::Plan::Kind /*kind*/) const {
    return false;
  }

  /// True iff `name` is identical in every world. Shard auxiliaries must
  /// be certain so replicating them per shard cannot lose correlations.
  /// Conservative default: unknown relations count as uncertain.
  virtual Result<bool> RelationCertain(const std::string& /*name*/) const {
    return false;
  }

  /// Partitions `req.relation` by tuple ranges into at most req.max_shards
  /// independent slices. Returns a null plan when the relation cannot be
  /// partitioned (fewer than two independent tuple groups, presence
  /// fields, or no backend support); errors only signal real failures.
  virtual Result<std::unique_ptr<ShardPlan>> PlanShards(
      const ShardRequest& /*req*/) {
    return std::unique_ptr<ShardPlan>();
  }
};

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_WORLD_SET_OPS_H_
