// WsdBackend: WorldSetOps over the Figure 9 WSD operators (Section 4).
//
// A thin adapter — the operator implementations stay in core/wsd_algebra;
// this class only maps the engine contract onto them. The WSD path has no
// native predicate selection or hash join, so the driver applies the full
// generic lowering (chains, unions of selections, negation pushdown,
// product-plus-selections for joins).

#ifndef MAYWSD_CORE_ENGINE_WSD_BACKEND_H_
#define MAYWSD_CORE_ENGINE_WSD_BACKEND_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine/world_set_ops.h"
#include "core/wsd.h"

namespace maywsd::core::engine {

/// Adapts a Wsd to the engine contract. Non-owning by default; the Wsd
/// must outlive the backend. The rvalue overload takes ownership (shard
/// slices are self-contained backends).
class WsdBackend : public WorldSetOps {
 public:
  explicit WsdBackend(Wsd& wsd) : wsd_(&wsd) {}
  explicit WsdBackend(Wsd&& owned)
      : owned_(std::make_unique<Wsd>(std::move(owned))), wsd_(owned_.get()) {}

  /// The adapted representation.
  Wsd& wsd() { return *wsd_; }
  const Wsd& wsd() const { return *wsd_; }

  std::string_view BackendName() const override { return "wsd"; }

  bool HasRelation(const std::string& name) const override;
  std::vector<std::string> RelationNames() const override;
  Result<rel::Schema> RelationSchema(const std::string& name) const override;
  Status AddCertainRelation(const rel::Relation& relation) override;

  Status Copy(const std::string& src, const std::string& out) override;
  Status SelectConst(const std::string& src, const std::string& out,
                     const std::string& attr, rel::CmpOp op,
                     const rel::Value& constant) override;
  Status SelectAttrAttr(const std::string& src, const std::string& out,
                        const std::string& attr_a, rel::CmpOp op,
                        const std::string& attr_b) override;
  Status Product(const std::string& left, const std::string& right,
                 const std::string& out) override;
  Status Union(const std::string& left, const std::string& right,
               const std::string& out) override;
  Status Project(const std::string& src, const std::string& out,
                 const std::vector<std::string>& attrs) override;
  /// The exists-column optimization (WsdProjectExists): ⊥ patterns of
  /// projected-away columns become presence fields, never compositions.
  bool SupportsProjectExists() const override { return true; }
  Status ProjectExists(const std::string& src, const std::string& out,
                       const std::vector<std::string>& attrs) override;
  Status Rename(const std::string& src, const std::string& out,
                const std::vector<std::pair<std::string, std::string>>&
                    renames) override;
  Status Difference(const std::string& left, const std::string& right,
                    const std::string& out) override;
  Status Drop(const std::string& name) override;
  void Compact() override;

  Result<rel::Relation> PossibleTuples(
      const std::string& relation) const override;
  Result<rel::Relation> PossibleTuplesWithConfidence(
      const std::string& relation) const override;
  Result<rel::Relation> CertainTuples(
      const std::string& relation) const override;
  Result<double> TupleConfidence(
      const std::string& relation,
      std::span<const rel::Value> tuple) const override;
  Result<bool> TupleCertain(const std::string& relation,
                            std::span<const rel::Value> tuple) const override;

  /// Updates run representation-natively (core/wsd_update.h).
  Status ApplyUpdate(const rel::UpdateOp& op,
                     const std::string& guard) override;

  /// Product and Difference compose components across their inputs
  /// (Section 4) — the capability the issue of sharded execution hinges
  /// on — so plans containing them (or Join, their fused form) fall back
  /// to single-shard execution on the WSD path.
  bool ShardableOperator(rel::Plan::Kind kind) const override {
    switch (kind) {
      case rel::Plan::Kind::kProduct:
      case rel::Plan::Kind::kDifference:
      case rel::Plan::Kind::kJoin:
        return false;
      default:
        return true;
    }
  }
  Result<bool> RelationCertain(const std::string& name) const override;
  Result<std::unique_ptr<ShardPlan>> PlanShards(
      const ShardRequest& req) override;

 private:
  std::unique_ptr<Wsd> owned_;  // declared before wsd_ (init order)
  Wsd* wsd_;
};

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_WSD_BACKEND_H_
