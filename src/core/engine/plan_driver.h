// The shared plan compiler/driver of the world-set engine.
//
// Exactly one lowering of rel::Plan onto Figure 9 world-set operators
// lives here and serves every backend:
//   - conjunctive selections become operator chains,
//   - disjunctions become unions of selections,
//   - negations are pushed to the comparison leaves (NegatePredicate),
//   - joins are lowered to product-plus-selections, or to the backend's
//     fused hash join plus a residual selection when it has one,
//   - backends with a native arbitrary-predicate selection skip the
//     ∧/∨/¬ lowering entirely.
//
// Intermediate results live in scratch relations with process-unique
// names, tracked by a ScratchScope that drops them when the scope exits —
// including on error paths — so evaluation cannot leak intermediates into
// the decomposition.

#ifndef MAYWSD_CORE_ENGINE_PLAN_DRIVER_H_
#define MAYWSD_CORE_ENGINE_PLAN_DRIVER_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rel/algebra.h"
#include "rel/plan_hash.h"
#include "core/engine/world_set_ops.h"

namespace maywsd::core::engine {

/// Tracks the scratch relations of one evaluation. Fresh() hands out
/// process-unique names (so overlapping or kept evaluations never
/// collide); the destructor best-effort-drops whatever is still tracked.
class ScratchScope {
 public:
  explicit ScratchScope(WorldSetOps& ops) : ops_(&ops) {}
  ~ScratchScope();

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  /// Returns a fresh scratch-relation name and tracks it for cleanup.
  std::string Fresh();

  /// Drops every tracked scratch relation and compacts the backend;
  /// the first error wins. The scope forgets its temps either way.
  Status DropAll();

  /// Releases ownership without dropping (keep_temps evaluation).
  void Keep() { temps_.clear(); }

  const std::vector<std::string>& temps() const { return temps_; }

 private:
  WorldSetOps* ops_;
  std::vector<std::string> temps_;
};

/// Rewrites ¬p by pushing the negation to comparison leaves (¬(A<c) ≡ A≥c,
/// De Morgan on ∧/∨). Needed because the Figure 9 selections have no
/// native negation.
rel::Predicate NegatePredicate(const rel::Predicate& pred);

/// Applies `pred` as a selection src → out on any backend: natively when
/// the backend supports predicate selection, otherwise via the generic
/// chain/union/negation lowering. Scratch intermediates go to `scope`.
Status ApplySelect(WorldSetOps& ops, ScratchScope& scope,
                   const std::string& src, const std::string& out,
                   const rel::Predicate& pred);

/// Memo of already-materialized subplans, keyed structurally
/// (rel::PlanHash/PlanEqual): a batched workload evaluates each distinct
/// subtree once and reuses its scratch relation for every later
/// occurrence. Valid for the lifetime of one ScratchScope — operators only
/// extend the world set, so a materialized subtree stays correct for the
/// whole batch.
struct SubplanCache {
  std::unordered_map<rel::Plan, std::string, rel::PlanHasher, rel::PlanEq>
      memo;
  size_t hits = 0;
  size_t misses = 0;
};

/// Evaluates `plan` bottom-up over the backend and returns the name of the
/// relation holding the result (an input relation for bare scans, else a
/// scratch relation tracked by `scope`). With `cache`, operator subtrees
/// are memoized and reused (bare scans are never counted or cached).
Result<std::string> EvalPlan(WorldSetOps& ops, ScratchScope& scope,
                             const rel::Plan& plan,
                             SubplanCache* cache = nullptr);

/// Evaluates an arbitrary relational algebra plan over the backend, adding
/// the result under `out`. Leaf scans refer to relations already in the
/// world set. Intermediates are dropped unless `keep_temps`.
Status Evaluate(WorldSetOps& ops, const rel::Plan& plan,
                const std::string& out, bool keep_temps = false);

/// Runs the Section 5 logical optimizations first (merge selections, fuse
/// σ(×) into joins, distribute over unions — see rel::Optimize) against
/// the backend's schemas, then evaluates the rewritten plan.
Status EvaluateOptimized(WorldSetOps& ops, const rel::Plan& plan,
                         const std::string& out);

/// Rewrites `plan` with the Section 5 logical optimizations against the
/// backend's catalog (the optimizer only needs schemas).
Result<rel::Plan> OptimizeForBackend(WorldSetOps& ops, const rel::Plan& plan);

/// Per-batch telemetry of EvaluateBatch.
struct BatchStats {
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// Evaluates a workload of plans sharing one scratch lifecycle: plans run
/// in order, `plans[i]` materializing under `outs[i]`, with common
/// subplans evaluated once across the whole batch (disable with
/// `cache_subplans = false`). Later plans may scan earlier outputs. On
/// error, outputs already materialized remain; scratch relations are
/// dropped on every path.
Status EvaluateBatch(WorldSetOps& ops, std::span<const rel::Plan> plans,
                     std::span<const std::string> outs,
                     bool cache_subplans = true, BatchStats* stats = nullptr);

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_PLAN_DRIVER_H_
