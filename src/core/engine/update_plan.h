// The shared update driver of the world-set engine.
//
// Exactly one lowering of rel::UpdateOp onto the backend update surface
// lives here: the op is validated against the backend's catalog, and a
// world condition — a rel::Plan whose non-empty answer selects the worlds
// the mutation applies in — is evaluated through the same plan driver the
// queries use, into a scratch relation that snapshots the pre-update
// answer. (A bare-scan condition is explicitly copied, so updating the
// scanned relation cannot feed back into its own guard.) The backend then
// executes the mutation representation-natively against that guard
// relation; the scratch lifecycle drops the guard on every path.

#ifndef MAYWSD_CORE_ENGINE_UPDATE_PLAN_H_
#define MAYWSD_CORE_ENGINE_UPDATE_PLAN_H_

#include <span>
#include <string>

#include "common/status.h"
#include "rel/update.h"
#include "core/engine/world_set_ops.h"

namespace maywsd::core::engine {

/// Validates `op` against the backend catalog: the target relation exists;
/// inserted tuples are fully certain and match the schema's attributes;
/// predicate and assignment attributes resolve; assignment values are
/// proper constants; no attribute is assigned twice.
Status ValidateUpdate(WorldSetOps& ops, const rel::UpdateOp& op);

/// Applies one update through the backend: validates, lowers the world
/// condition (if any) into a materialized guard relation, and calls
/// WorldSetOps::ApplyUpdate. Scratch relations are dropped on every path.
Status ApplyUpdate(WorldSetOps& ops, const rel::UpdateOp& op);

/// Applies a workload of updates in order, stopping at the first error
/// (already-applied updates remain applied — updates are in-place and not
/// transactional).
Status ApplyUpdates(WorldSetOps& ops, std::span<const rel::UpdateOp> ops_list);

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_UPDATE_PLAN_H_
