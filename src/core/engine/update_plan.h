// The shared update driver of the world-set engine.
//
// Exactly one lowering of rel::UpdateOp onto the backend update surface
// lives here: the op is validated against the backend's catalog, and a
// world condition — a rel::Plan whose non-empty answer selects the worlds
// the mutation applies in — is evaluated through the same plan driver the
// queries use, into a scratch relation that snapshots the pre-update
// answer. (A bare-scan condition is explicitly copied, so updating the
// scanned relation cannot feed back into its own guard.) The backend then
// executes the mutation representation-natively against that guard
// relation; the scratch lifecycle drops the guard on every path.

#ifndef MAYWSD_CORE_ENGINE_UPDATE_PLAN_H_
#define MAYWSD_CORE_ENGINE_UPDATE_PLAN_H_

#include <span>
#include <string>

#include "common/status.h"
#include "rel/update.h"
#include "core/engine/world_set_ops.h"

namespace maywsd::core::engine {

/// Validates `op` against the backend catalog: the target relation exists;
/// inserted tuples are fully certain and match the schema's attributes;
/// predicate and assignment attributes resolve; assignment values are
/// proper constants; no attribute is assigned twice.
Status ValidateUpdate(WorldSetOps& ops, const rel::UpdateOp& op);

/// Applies one update through the backend: validates, lowers the world
/// condition (if any) into a materialized guard relation, and calls
/// WorldSetOps::ApplyUpdate. Scratch relations are dropped on every path.
Status ApplyUpdate(WorldSetOps& ops, const rel::UpdateOp& op);

/// Batch accounting for ApplyUpdates: how many world conditions were
/// actually evaluated versus served from the batch's guard cache, and how
/// many unconditional updates fanned out over shard slices.
struct UpdateBatchStats {
  uint64_t guard_materializations = 0;  ///< conditions evaluated + copied
  uint64_t guard_shares = 0;            ///< updates reusing a cached guard
  uint64_t sharded_applies = 0;         ///< updates that fanned out
  uint64_t apply_shards = 0;            ///< total shards across fan-outs
};

/// Applies a workload of updates in order, stopping at the first error
/// (already-applied updates remain applied — updates are in-place and not
/// transactional). Updates with structurally equal world conditions (the
/// rel::PlanHash/PlanEqual notion UpdateOpHash builds on) share one guard
/// materialization; a cached guard is discarded as soon as an applied
/// update mutates a relation its condition reads, so later updates in the
/// batch still see post-update guards, exactly as sequential Apply calls
/// would. With threads > 1, unconditional deletes/modifies fan out over
/// shard slices of their target relation (engine/parallel.h,
/// ApplyUpdateSharded) when the backend can slice it soundly; everything
/// else stays sequential.
Status ApplyUpdates(WorldSetOps& ops, std::span<const rel::UpdateOp> ops_list,
                    size_t threads = 1, UpdateBatchStats* stats = nullptr);

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_UPDATE_PLAN_H_
