#include "core/engine/urel_backend.h"

#include <unordered_map>

#include "core/engine/shard_plan.h"
#include "core/wsdt_algebra.h"
#include "core/wsdt_confidence.h"
#include "core/wsdt_update.h"

namespace maywsd::core::engine {

bool UrelBackend::HasRelation(const std::string& name) const {
  return urel_->Contains(name);
}

std::vector<std::string> UrelBackend::RelationNames() const {
  return urel_->Names();
}

Result<rel::Schema> UrelBackend::RelationSchema(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, urel_->Get(name));
  return r->schema;
}

Status UrelBackend::AddCertainRelation(const rel::Relation& relation) {
  if (urel_->Contains(relation.name())) {
    return Status::AlreadyExists("relation " + relation.name());
  }
  MAYWSD_RETURN_IF_ERROR(CheckCertainRelation(relation));
  UrelRelation r;
  r.name = relation.name();
  r.schema = relation.schema();
  r.columns.resize(relation.arity());
  std::vector<UrelValueId> values(relation.arity());
  for (size_t i = 0; i < relation.NumRows(); ++i) {
    for (size_t a = 0; a < relation.arity(); ++a) {
      values[a] = urel_->Intern(relation.row(i)[a]);
    }
    r.AppendTuple(values, {});
  }
  return urel_->Add(std::move(r));
}

Status UrelBackend::Copy(const std::string& src, const std::string& out) {
  return UrelCopy(*urel_, src, out);
}

Status UrelBackend::SelectConst(const std::string& src, const std::string& out,
                                const std::string& attr, rel::CmpOp op,
                                const rel::Value& constant) {
  return UrelSelectConst(*urel_, src, out, attr, op, constant);
}

Status UrelBackend::SelectAttrAttr(const std::string& src,
                                   const std::string& out,
                                   const std::string& attr_a, rel::CmpOp op,
                                   const std::string& attr_b) {
  return UrelSelectAttrAttr(*urel_, src, out, attr_a, op, attr_b);
}

Status UrelBackend::Product(const std::string& left, const std::string& right,
                            const std::string& out) {
  return UrelProduct(*urel_, left, right, out);
}

Status UrelBackend::Union(const std::string& left, const std::string& right,
                          const std::string& out) {
  return UrelUnion(*urel_, left, right, out);
}

Status UrelBackend::Project(const std::string& src, const std::string& out,
                            const std::vector<std::string>& attrs) {
  return UrelProject(*urel_, src, out, attrs);
}

Status UrelBackend::Rename(
    const std::string& src, const std::string& out,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  return UrelRename(*urel_, src, out, renames);
}

Status UrelBackend::Difference(const std::string& left,
                               const std::string& right,
                               const std::string& out) {
  Status st = UrelDifference(*urel_, left, right, out);
  if (st.code() != StatusCode::kUnsupported) return st;
  // Assignment expansion blew the cap: compose in the template semantics.
  return Fallback(
      [&](Wsdt& wsdt) { return WsdtDifference(wsdt, left, right, out); });
}

Status UrelBackend::Drop(const std::string& name) {
  return UrelDrop(*urel_, name);
}

Result<rel::Relation> UrelBackend::PossibleTuples(
    const std::string& relation) const {
  return UrelPossibleTuples(*urel_, relation);
}

Result<rel::Relation> UrelBackend::PossibleTuplesWithConfidence(
    const std::string& relation) const {
  Result<rel::Relation> r = UrelPossibleTuplesWithConfidence(*urel_, relation);
  if (r.ok() || r.status().code() != StatusCode::kUnsupported) return r;
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, ImportUrel(*urel_));
  return WsdtPossibleTuplesWithConfidence(wsdt, relation);
}

Result<rel::Relation> UrelBackend::CertainTuples(
    const std::string& relation) const {
  Result<rel::Relation> r = UrelCertainTuples(*urel_, relation);
  if (r.ok() || r.status().code() != StatusCode::kUnsupported) return r;
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, ImportUrel(*urel_));
  return WsdtCertainTuples(wsdt, relation);
}

Result<double> UrelBackend::TupleConfidence(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  Result<double> r = UrelTupleConfidence(*urel_, relation, tuple);
  if (r.ok() || r.status().code() != StatusCode::kUnsupported) return r;
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, ImportUrel(*urel_));
  return WsdtTupleConfidence(wsdt, relation, tuple);
}

Result<bool> UrelBackend::TupleCertain(const std::string& relation,
                                       std::span<const rel::Value> tuple) const {
  Result<bool> r = UrelTupleCertain(*urel_, relation, tuple);
  if (r.ok() || r.status().code() != StatusCode::kUnsupported) return r;
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, ImportUrel(*urel_));
  return WsdtTupleCertain(wsdt, relation, tuple);
}

Status UrelBackend::ApplyUpdate(const rel::UpdateOp& op,
                                const std::string& guard) {
  if (guard.empty()) {
    switch (op.kind()) {
      case rel::UpdateOp::Kind::kInsert:
        return UrelInsert(*urel_, op.relation(), op.tuples());
      case rel::UpdateOp::Kind::kDelete:
        return UrelDeleteWhere(*urel_, op.relation(), op.predicate());
      case rel::UpdateOp::Kind::kModify:
        return UrelModifyWhere(*urel_, op.relation(), op.predicate(),
                               op.assignments());
    }
  }
  // World-conditional mutations compose with the guard's variables: one
  // import → WSDT update → export round trip, like the uniform backend.
  return Fallback(
      [&](Wsdt& wsdt) { return WsdtApplyUpdate(wsdt, op, guard); });
}

Status UrelBackend::SelectPredicate(const std::string& src,
                                    const std::string& out,
                                    const rel::Predicate& pred) {
  return UrelSelectPredicate(*urel_, src, out, pred);
}

Status UrelBackend::HashJoin(const std::string& left, const std::string& right,
                             const std::string& out,
                             const std::string& left_attr,
                             const std::string& right_attr) {
  return UrelJoin(*urel_, left, right, out, left_attr, right_attr);
}

Result<bool> UrelBackend::RelationCertain(const std::string& name) const {
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, urel_->Get(name));
  return r->desc_entries.empty();
}

Status UrelBackend::Fallback(const std::function<Status(Wsdt&)>& op) {
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, ImportUrel(*urel_));
  MAYWSD_RETURN_IF_ERROR(op(wsdt));
  MAYWSD_ASSIGN_OR_RETURN(Urel out, ExportUrel(wsdt));
  *urel_ = std::move(out);
  ++round_trips_;
  return Status::Ok();
}

// -- Sharding -----------------------------------------------------------------

namespace {

/// Appends `src`'s rows into `dst` under fresh TIDs. Descriptors transfer
/// verbatim (both stores carry the same variable table); data ids transfer
/// verbatim too while the stores still share one symbol table, and are
/// re-interned only after a shard's dictionary diverged.
void AppendUrelRows(const Urel& from, const UrelRelation& src, Urel& into,
                    UrelRelation& dst) {
  size_t n = src.NumRows();
  if (into.SharesSymbolsWith(from)) {
    // Ids transfer verbatim while the stores share one symbol table, so
    // whole columns and the CSR descriptor arrays append as contiguous
    // ranges instead of per-row gathers.
    for (size_t a = 0; a < src.columns.size(); ++a) {
      dst.columns[a].insert(dst.columns[a].end(), src.columns[a].begin(),
                            src.columns[a].end());
    }
    dst.tids.reserve(dst.tids.size() + n);
    for (size_t i = 0; i < n; ++i) dst.tids.push_back(dst.next_tid++);
    uint32_t base = static_cast<uint32_t>(dst.desc_entries.size());
    dst.desc_entries.insert(dst.desc_entries.end(), src.desc_entries.begin(),
                            src.desc_entries.end());
    dst.desc_offsets.reserve(dst.desc_offsets.size() + n);
    for (size_t i = 1; i <= n; ++i) {
      dst.desc_offsets.push_back(base + src.desc_offsets[i]);
    }
    return;
  }
  std::vector<UrelValueId> values(src.columns.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t a = 0; a < src.columns.size(); ++a) {
      values[a] = into.Intern(from.ValueAt(src.columns[a][i]));
    }
    dst.AppendTuple(values, src.Descriptor(i));
  }
}

class UrelShardPlan final : public ShardPlan {
 public:
  UrelShardPlan(Urel* parent, std::string relation, std::vector<std::string>
                aux, std::vector<std::vector<TupleId>> shards)
      : parent_(parent),
        relation_(std::move(relation)),
        aux_(std::move(aux)),
        shards_(std::move(shards)) {}

  size_t NumShards() const override { return shards_.size(); }

  Result<std::unique_ptr<WorldSetOps>> BuildShard(size_t i) const override {
    MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* src,
                            parent_->Get(relation_));
    Urel slice;
    // Share the parent's symbol table copy-on-write: the variable table and
    // the dictionary transfer by reference, so descriptors and value ids
    // below are copied verbatim instead of re-interned per cell. The slice
    // privatizes the table only if a query mints a genuinely new value.
    slice.ShareSymbolsFrom(*parent_);
    UrelRelation part;
    part.name = relation_;
    part.schema = src->schema;
    part.columns.resize(src->schema.arity());
    // Shard tid lists are sorted, and independent-tuple workloads (the
    // census tables) partition into contiguous ranges, so copy maximal
    // runs column-wise instead of gathering row by row. Values and
    // descriptors transfer verbatim under the shared symbol table.
    const std::vector<TupleId>& rows = shards_[i];
    size_t n = rows.size();
    for (auto& col : part.columns) col.reserve(n);
    part.tids.reserve(n);
    part.desc_offsets.reserve(n + 1);
    size_t k = 0;
    while (k < n) {
      size_t lo = static_cast<size_t>(rows[k]);
      size_t j = k + 1;
      while (j < n && static_cast<size_t>(rows[j]) == lo + (j - k)) ++j;
      size_t hi = lo + (j - k);
      for (size_t a = 0; a < src->columns.size(); ++a) {
        part.columns[a].insert(part.columns[a].end(),
                               src->columns[a].begin() + lo,
                               src->columns[a].begin() + hi);
      }
      uint32_t entry_base = static_cast<uint32_t>(part.desc_entries.size());
      uint32_t src_base = src->desc_offsets[lo];
      part.desc_entries.insert(
          part.desc_entries.end(), src->desc_entries.begin() + src_base,
          src->desc_entries.begin() + src->desc_offsets[hi]);
      for (size_t r = lo + 1; r <= hi; ++r) {
        part.desc_offsets.push_back(entry_base +
                                    (src->desc_offsets[r] - src_base));
      }
      for (size_t r = lo; r < hi; ++r) part.tids.push_back(part.next_tid++);
      k = j;
    }
    MAYWSD_RETURN_IF_ERROR(slice.Add(std::move(part)));

    for (const std::string& name : aux_) {
      MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* aux_rel,
                              parent_->Get(name));
      if (!aux_rel->desc_entries.empty()) {
        return Status::Internal("shard auxiliary " + name + " is not certain");
      }
      UrelRelation copy;
      copy.name = name;
      copy.schema = aux_rel->schema;
      copy.columns.resize(aux_rel->schema.arity());
      AppendUrelRows(*parent_, *aux_rel, slice, copy);
      MAYWSD_RETURN_IF_ERROR(slice.Add(std::move(copy)));
    }
    return std::unique_ptr<WorldSetOps>(
        std::make_unique<UrelBackend>(std::move(slice)));
  }

  Status Absorb(size_t /*i*/, WorldSetOps& shard, const std::string& src,
                const std::string& dst) override {
    auto& backend = static_cast<UrelBackend&>(shard);
    MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* s, backend.urel().Get(src));
    if (!parent_->Contains(dst)) {
      UrelRelation fresh;
      fresh.name = dst;
      fresh.schema = s->schema;
      fresh.columns.resize(s->schema.arity());
      MAYWSD_RETURN_IF_ERROR(parent_->Add(std::move(fresh)));
    }
    MAYWSD_ASSIGN_OR_RETURN(UrelRelation * d, parent_->GetMutable(dst));
    if (d->schema != s->schema) {
      return Status::Internal("shard result schema mismatch on " + dst);
    }
    AppendUrelRows(backend.urel(), *s, *parent_, *d);
    return Status::Ok();
  }

 private:
  Urel* parent_;
  std::string relation_;
  std::vector<std::string> aux_;
  std::vector<std::vector<TupleId>> shards_;
};

}  // namespace

Result<std::unique_ptr<ShardPlan>> MakeUrelShardPlan(Urel& parent,
                                                     const ShardRequest& req) {
  // Cost gate: a single-leaf plan is a unary select/project/rename chain —
  // one bandwidth-bound pass over a few columns. Building a shard slice
  // copies EVERY column of the partitioned relation, which already costs
  // more than the scan it would parallelize, so a fan-out can only lose;
  // decline and let the caller evaluate sequentially. Plans with a second
  // (certain) leaf — joins, products — do superlinear per-row work that
  // amortizes the slice. Update fan-outs decline for the same reason: the
  // native columnar update is itself one bandwidth-bound pass.
  if (req.aux_relations.empty() || req.for_update) {
    return std::unique_ptr<ShardPlan>();
  }
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, parent.Get(req.relation));
  // Descriptors are the only correlation carriers: rows sharing a variable
  // must co-shard.
  std::vector<std::pair<TupleId, TupleId>> links;
  std::unordered_map<VarId, TupleId> first_row;
  for (size_t i = 0; i < r->NumRows(); ++i) {
    for (const UrelDescEntry& e : r->Descriptor(i)) {
      auto [it, fresh] =
          first_row.try_emplace(e.var, static_cast<TupleId>(i));
      if (!fresh && it->second != static_cast<TupleId>(i)) {
        links.emplace_back(it->second, static_cast<TupleId>(i));
      }
    }
  }
  std::vector<std::vector<TupleId>> shards = PartitionSlots(
      static_cast<TupleId>(r->NumRows()), links, req.max_shards);
  if (shards.empty()) return std::unique_ptr<ShardPlan>();
  return std::unique_ptr<ShardPlan>(std::make_unique<UrelShardPlan>(
      &parent, req.relation, req.aux_relations, std::move(shards)));
}

Result<std::unique_ptr<ShardPlan>> UrelBackend::PlanShards(
    const ShardRequest& req) {
  return MakeUrelShardPlan(*urel_, req);
}

}  // namespace maywsd::core::engine
