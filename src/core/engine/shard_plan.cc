#include "core/engine/shard_plan.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/engine/wsd_backend.h"
#include "core/engine/wsdt_backend.h"
#include "core/uniform.h"

namespace maywsd::core::engine {

namespace {

/// Plain union-find over dense tuple ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<size_t> parent_;
};

/// Ascending, duplicate-free tuple ids of `relation`'s columns in `comp`.
std::vector<TupleId> OwnTuples(const Component& comp, Symbol relation) {
  std::vector<TupleId> tids;
  for (const FieldKey& f : comp.fields()) {
    if (f.rel == relation) tids.push_back(f.tuple);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  return tids;
}

/// Projects `comp` to the columns of `relation` whose tuple id passes
/// `in_slice`, renaming each kept column via `remap`. Returns a component
/// with zero fields when nothing is kept. Dropping the other columns is
/// exact marginalization: each local-world row keeps the joint
/// distribution of the remaining columns.
template <typename InSlice, typename Remap>
Component SliceComponent(const Component& comp, Symbol relation,
                         Symbol out_relation, const InSlice& in_slice,
                         const Remap& remap) {
  std::vector<size_t> keep;
  for (size_t c = 0; c < comp.NumFields(); ++c) {
    const FieldKey& f = comp.field(c);
    if (f.rel == relation && in_slice(f.tuple)) keep.push_back(c);
  }
  if (keep.empty()) return Component();
  if (keep.size() == comp.NumFields()) {
    // Self-contained component: every column survives, so the slice can
    // share the payload copy-on-write under the remapped field names —
    // no copy, no compress (a full keep creates no duplicate rows).
    std::vector<FieldKey> renamed;
    renamed.reserve(keep.size());
    for (const FieldKey& f : comp.fields()) {
      renamed.emplace_back(out_relation, remap(f.tuple), f.attr);
    }
    return comp.WithFields(std::move(renamed));
  }
  Component proj = comp.ProjectColumns(keep);
  proj.Compress();
  for (size_t c = 0; c < proj.NumFields(); ++c) {
    const FieldKey& f = proj.field(c);
    proj.RenameField(c, FieldKey(out_relation, remap(f.tuple), f.attr));
  }
  return proj;
}

/// Appends relation `src` of `from` to `into`'s relation `dst`: template
/// rows are concatenated (slot offset = current row count of `dst`) and
/// the components covering `src` columns are copied, projected to those
/// columns and re-keyed. Creates `dst` on first use.
Status AppendWsdtRelation(Wsdt& into, const Wsdt& from, const std::string& src,
                          const std::string& dst) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* stmpl, from.Template(src));
  if (!into.HasRelation(dst)) {
    MAYWSD_RETURN_IF_ERROR(
        into.AddTemplateRelation(rel::Relation(stmpl->schema(), dst)));
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation * dtmpl, into.MutableTemplate(dst));
  if (dtmpl->schema() != stmpl->schema()) {
    return Status::Internal("shard result schema mismatch for " + dst + ": " +
                            dtmpl->schema().ToString() + " vs " +
                            stmpl->schema().ToString());
  }
  TupleId offset = static_cast<TupleId>(dtmpl->NumRows());
  dtmpl->Reserve(dtmpl->NumRows() + stmpl->NumRows());
  for (size_t r = 0; r < stmpl->NumRows(); ++r) {
    dtmpl->AppendRow(stmpl->row(r).span());
  }
  Symbol src_sym = InternString(src);
  Symbol dst_sym = InternString(dst);
  for (size_t i : from.LiveComponents()) {
    Component proj = SliceComponent(
        from.component(i), src_sym, dst_sym, [](TupleId) { return true; },
        [offset](TupleId t) { return t + offset; });
    if (proj.NumFields() == 0) continue;
    MAYWSD_RETURN_IF_ERROR(into.AddComponent(std::move(proj)));
  }
  return Status::Ok();
}

// -- WSDT ---------------------------------------------------------------

class WsdtShardPlan final : public ShardPlan {
 public:
  WsdtShardPlan(const Wsdt* parent, Wsdt* absorb_into, std::string relation,
                std::vector<std::string> aux,
                std::vector<std::vector<TupleId>> shards,
                std::vector<std::vector<size_t>> comps)
      : parent_(parent),
        absorb_into_(absorb_into),
        relation_(std::move(relation)),
        aux_(std::move(aux)),
        shards_(std::move(shards)),
        comps_(std::move(comps)) {}

  size_t NumShards() const override { return shards_.size(); }

  Result<std::unique_ptr<WorldSetOps>> BuildShard(size_t i) const override {
    const std::vector<TupleId>& tids = shards_[i];
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl,
                            parent_->Template(relation_));
    Symbol sym = InternString(relation_);

    Wsdt slice;
    rel::Relation part(tmpl->schema(), relation_);
    part.Reserve(tids.size());
    std::unordered_map<TupleId, TupleId> remap;
    remap.reserve(tids.size());
    for (TupleId t : tids) {
      remap[t] = static_cast<TupleId>(part.NumRows());
      part.AppendRow(tmpl->row(static_cast<size_t>(t)).span());
    }
    MAYWSD_RETURN_IF_ERROR(slice.AddTemplateRelation(std::move(part)));

    // Only this shard's components (precomputed at plan time): their own
    // tuples all live in this slice, so the full-keep COW share of
    // SliceComponent is the common path for relation-pure components.
    for (size_t c : comps_[i]) {
      Component proj = SliceComponent(
          parent_->component(c), sym, sym,
          [&remap](TupleId t) { return remap.count(t) > 0; },
          [&remap](TupleId t) { return remap.at(t); });
      if (proj.NumFields() == 0) continue;
      MAYWSD_RETURN_IF_ERROR(slice.AddComponent(std::move(proj)));
    }

    for (const std::string& name : aux_) {
      MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* aux_tmpl,
                              parent_->Template(name));
      if (!TemplateIsCertain(*aux_tmpl)) {
        return Status::Internal("shard auxiliary " + name + " is not certain");
      }
      MAYWSD_RETURN_IF_ERROR(slice.AddTemplateRelation(*aux_tmpl));
    }
    return std::unique_ptr<WorldSetOps>(
        std::make_unique<WsdtBackend>(std::move(slice)));
  }

  Status Absorb(size_t /*i*/, WorldSetOps& shard, const std::string& src,
                const std::string& dst) override {
    auto& backend = static_cast<WsdtBackend&>(shard);
    return AppendWsdtRelation(*absorb_into_, backend.wsdt(), src, dst);
  }

 private:
  const Wsdt* parent_;
  Wsdt* absorb_into_;
  std::string relation_;
  std::vector<std::string> aux_;
  std::vector<std::vector<TupleId>> shards_;
  std::vector<std::vector<size_t>> comps_;  ///< per-shard component indices
};

// -- WSD ----------------------------------------------------------------

class WsdShardPlan final : public ShardPlan {
 public:
  WsdShardPlan(Wsd* parent, std::string relation, std::vector<std::string> aux,
               std::vector<std::vector<TupleId>> shards,
               std::vector<std::vector<size_t>> comps)
      : parent_(parent),
        relation_(std::move(relation)),
        aux_(std::move(aux)),
        shards_(std::move(shards)),
        comps_(std::move(comps)) {}

  size_t NumShards() const override { return shards_.size(); }

  Result<std::unique_ptr<WorldSetOps>> BuildShard(size_t i) const override {
    const std::vector<TupleId>& tids = shards_[i];
    MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel,
                            parent_->FindRelation(relation_));

    Wsd slice;
    MAYWSD_RETURN_IF_ERROR(slice.AddRelation(
        relation_, rel->schema, static_cast<TupleId>(tids.size())));
    std::unordered_map<TupleId, TupleId> remap;
    remap.reserve(tids.size());
    for (size_t j = 0; j < tids.size(); ++j) {
      remap[tids[j]] = static_cast<TupleId>(j);
    }
    for (size_t c : comps_[i]) {
      Component proj = SliceComponent(
          parent_->component(c), rel->name_sym, rel->name_sym,
          [&remap](TupleId t) { return remap.count(t) > 0; },
          [&remap](TupleId t) { return remap.at(t); });
      if (proj.NumFields() == 0) continue;
      MAYWSD_RETURN_IF_ERROR(slice.AddComponent(std::move(proj)));
    }

    for (const std::string& name : aux_) {
      MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* aux_rel,
                              parent_->FindRelation(name));
      MAYWSD_RETURN_IF_ERROR(
          slice.AddRelation(name, aux_rel->schema, aux_rel->max_tuples));
      for (TupleId t = 0; t < aux_rel->max_tuples; ++t) {
        // A slot with no fields is absent in every world; leave it empty.
        for (const FieldKey& f : parent_->FieldsOfTuple(*aux_rel, t)) {
          MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, parent_->Locate(f));
          const Component& comp = parent_->component(loc.comp);
          size_t col = static_cast<size_t>(loc.col);
          if (!comp.ColumnConstant(col)) {
            return Status::Internal("shard auxiliary " + name +
                                    " is not certain");
          }
          MAYWSD_RETURN_IF_ERROR(slice.AddCertainField(f, comp.at(0, col)));
        }
      }
    }
    return std::unique_ptr<WorldSetOps>(
        std::make_unique<WsdBackend>(std::move(slice)));
  }

  Status Absorb(size_t /*i*/, WorldSetOps& shard, const std::string& src,
                const std::string& dst) override {
    auto& backend = static_cast<WsdBackend&>(shard);
    Wsd& sw = backend.wsd();
    // Presence fields do not survive a merge across slices; fold them back
    // into value columns first (the inverse of the exists-column
    // optimization).
    if (sw.HasPresenceFields()) {
      MAYWSD_RETURN_IF_ERROR(sw.EliminatePresenceFields());
    }
    MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* srel, sw.FindRelation(src));
    if (!parent_->HasRelation(dst)) {
      MAYWSD_RETURN_IF_ERROR(parent_->AddRelation(dst, srel->schema, 0));
    }
    MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* drel,
                            parent_->FindRelation(dst));
    if (drel->schema != srel->schema) {
      return Status::Internal("shard result schema mismatch for " + dst);
    }
    TupleId offset = drel->max_tuples;
    MAYWSD_RETURN_IF_ERROR(parent_->GrowRelation(dst, srel->max_tuples));
    Symbol dst_sym = InternString(dst);
    for (size_t c : sw.LiveComponents()) {
      Component proj = SliceComponent(
          sw.component(c), srel->name_sym, dst_sym,
          [](TupleId) { return true; },
          [offset](TupleId t) { return t + offset; });
      if (proj.NumFields() == 0) continue;
      MAYWSD_RETURN_IF_ERROR(parent_->AddComponent(std::move(proj)));
    }
    return Status::Ok();
  }

 private:
  Wsd* parent_;
  std::string relation_;
  std::vector<std::string> aux_;
  std::vector<std::vector<TupleId>> shards_;
  std::vector<std::vector<size_t>> comps_;  ///< per-shard component indices
};

// -- Uniform ------------------------------------------------------------

class UniformShardPlan final : public ShardPlan {
 public:
  UniformShardPlan(Wsdt imported, rel::Database* db)
      : imported_(std::make_unique<Wsdt>(std::move(imported))), db_(db) {}

  void set_inner(std::unique_ptr<ShardPlan> inner) {
    inner_ = std::move(inner);
  }
  Wsdt* imported() { return imported_.get(); }

  size_t NumShards() const override { return inner_->NumShards(); }

  Result<std::unique_ptr<WorldSetOps>> BuildShard(size_t i) const override {
    return inner_->BuildShard(i);
  }

  Status Absorb(size_t i, WorldSetOps& shard, const std::string& src,
                const std::string& dst) override {
    return inner_->Absorb(i, shard, src, dst);
  }

  Status Finish() override {
    MAYWSD_ASSIGN_OR_RETURN(rel::Database out, ExportUniform(*imported_));
    *db_ = std::move(out);
    return Status::Ok();
  }

 private:
  std::unique_ptr<Wsdt> imported_;  // stable address for the inner plan
  rel::Database* db_;
  std::unique_ptr<ShardPlan> inner_;
};

/// Shared planning core: group `relation`'s slots by component links and
/// cut balanced shards. `num_slots` is the slot count of the relation.
template <typename ComponentRange, typename GetComponent>
std::vector<std::vector<TupleId>> PlanSlices(TupleId num_slots,
                                             Symbol relation,
                                             const ComponentRange& live,
                                             const GetComponent& component,
                                             size_t max_shards) {
  std::vector<std::pair<TupleId, TupleId>> links;
  for (size_t i : live) {
    std::vector<TupleId> tids = OwnTuples(component(i), relation);
    for (size_t j = 1; j < tids.size(); ++j) {
      links.emplace_back(tids[0], tids[j]);
    }
  }
  return PartitionSlots(num_slots, links, max_shards);
}

/// Assigns each live component touching `relation` to the one shard
/// holding its tuple slots (component links keep them together, so the
/// first own tuple decides). BuildShard then scans only its own
/// components instead of every live one per shard — the planning pass
/// that made WSDT slices O(shards × components). With `require_pure`
/// (update fan-outs), returns nullopt when a component touching the
/// relation also covers another relation's columns: replacing the
/// relation with re-absorbed slices would marginalize that component and
/// lose the cross-relation correlation.
template <typename ComponentRange, typename GetComponent>
std::optional<std::vector<std::vector<size_t>>> AssignComponents(
    const std::vector<std::vector<TupleId>>& shards, TupleId num_slots,
    Symbol relation, const ComponentRange& live, const GetComponent& component,
    bool require_pure) {
  std::vector<uint32_t> shard_of_tid(static_cast<size_t>(num_slots), 0);
  for (size_t s = 0; s < shards.size(); ++s) {
    for (TupleId t : shards[s]) {
      shard_of_tid[static_cast<size_t>(t)] = static_cast<uint32_t>(s);
    }
  }
  std::vector<std::vector<size_t>> comps(shards.size());
  for (size_t i : live) {
    const Component& comp = component(i);
    std::vector<TupleId> tids = OwnTuples(comp, relation);
    if (tids.empty()) continue;
    if (require_pure) {
      for (const FieldKey& f : comp.fields()) {
        if (f.rel != relation) return std::nullopt;
      }
    }
    comps[shard_of_tid[static_cast<size_t>(tids[0])]].push_back(i);
  }
  return comps;
}

}  // namespace

bool TemplateIsCertain(const rel::Relation& tmpl) {
  for (size_t r = 0; r < tmpl.NumRows(); ++r) {
    for (size_t a = 0; a < tmpl.arity(); ++a) {
      if (tmpl.row(r)[a].is_question()) return false;
    }
  }
  return true;
}

std::vector<std::vector<TupleId>> PartitionSlots(
    TupleId num_slots, const std::vector<std::pair<TupleId, TupleId>>& links,
    size_t max_shards) {
  if (num_slots < 2 || max_shards < 2) return {};
  size_t n = static_cast<size_t>(num_slots);
  UnionFind uf(n);
  for (const auto& [a, b] : links) {
    uf.Union(static_cast<size_t>(a), static_cast<size_t>(b));
  }
  // Flat group ids in minimum-member order (roots are group minima by
  // construction of UnionFind::Union, so an ascending slot scan visits
  // each group at its root first). The common independent-tuple case is
  // n singleton groups; per-group vectors would pay one heap allocation
  // per slot here, which dominated shard planning at census sizes.
  std::vector<uint32_t> group_of_slot(n);
  std::vector<size_t> group_size;
  for (size_t t = 0; t < n; ++t) {
    size_t root = uf.Find(t);
    if (root == t) {
      group_of_slot[t] = static_cast<uint32_t>(group_size.size());
      group_size.push_back(0);
    } else {
      group_of_slot[t] = group_of_slot[root];
    }
    ++group_size[group_of_slot[t]];
  }
  size_t num_groups = group_size.size();
  if (num_groups < 2) return {};

  // Pack whole groups into contiguous shards, balancing slot counts.
  size_t num_shards = std::min(max_shards, num_groups);
  std::vector<uint32_t> shard_of_group(num_groups);
  size_t remaining_slots = n;
  size_t remaining_shards = num_shards;
  size_t current = 0;
  uint32_t shard = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    size_t target = (remaining_slots + remaining_shards - 1) / remaining_shards;
    shard_of_group[g] = shard;
    current += group_size[g];
    // Close the shard once it reached its share, keeping one group per
    // remaining shard available.
    size_t groups_left = num_groups - g - 1;
    if ((current >= target || groups_left < remaining_shards) &&
        remaining_shards > 1) {
      remaining_slots -= current;
      --remaining_shards;
      ++shard;
      current = 0;
    }
  }
  size_t shards_used = static_cast<size_t>(shard) + (current > 0 ? 1 : 0);
  if (shards_used < 2) return {};
  // Scatter slots in ascending order: each shard's tid list comes out
  // sorted without a separate sort pass.
  std::vector<size_t> shard_count(shards_used, 0);
  for (size_t t = 0; t < n; ++t) {
    ++shard_count[shard_of_group[group_of_slot[t]]];
  }
  std::vector<std::vector<TupleId>> shards(shards_used);
  for (size_t s = 0; s < shards_used; ++s) shards[s].reserve(shard_count[s]);
  for (size_t t = 0; t < n; ++t) {
    shards[shard_of_group[group_of_slot[t]]].push_back(
        static_cast<TupleId>(t));
  }
  return shards;
}

Result<std::unique_ptr<ShardPlan>> MakeWsdtShardPlan(const Wsdt& parent,
                                                     Wsdt* absorb_into,
                                                     const ShardRequest& req) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl,
                          parent.Template(req.relation));
  Symbol sym = InternString(req.relation);
  std::vector<std::vector<TupleId>> shards = PlanSlices(
      static_cast<TupleId>(tmpl->NumRows()), sym, parent.LiveComponents(),
      [&parent](size_t i) -> const Component& { return parent.component(i); },
      req.max_shards);
  if (shards.empty()) return std::unique_ptr<ShardPlan>();
  std::optional<std::vector<std::vector<size_t>>> comps = AssignComponents(
      shards, static_cast<TupleId>(tmpl->NumRows()), sym,
      parent.LiveComponents(),
      [&parent](size_t i) -> const Component& { return parent.component(i); },
      /*require_pure=*/req.for_update);
  if (!comps) return std::unique_ptr<ShardPlan>();
  return std::unique_ptr<ShardPlan>(std::make_unique<WsdtShardPlan>(
      &parent, absorb_into, req.relation, req.aux_relations,
      std::move(shards), std::move(*comps)));
}

Result<std::unique_ptr<ShardPlan>> MakeWsdShardPlan(Wsd& parent,
                                                    const ShardRequest& req) {
  // Update fan-outs never pay off here: absorbing a mutated slice folds
  // its presence fields back into the parent (EliminatePresenceFields), a
  // superlinear merge that costs far more than the one-pass delete/modify
  // it would parallelize. Query fan-outs keep the path — they absorb into
  // a fresh result relation, not back into the sliced one.
  if (req.for_update) return std::unique_ptr<ShardPlan>();
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel,
                          parent.FindRelation(req.relation));
  // Presence ("exists") fields make slot membership two-layered; decline
  // and let the driver fall back to single-shard execution.
  if (!rel->presence_attrs.empty()) return std::unique_ptr<ShardPlan>();
  std::vector<std::vector<TupleId>> shards = PlanSlices(
      rel->max_tuples, rel->name_sym, parent.LiveComponents(),
      [&parent](size_t i) -> const Component& { return parent.component(i); },
      req.max_shards);
  if (shards.empty()) return std::unique_ptr<ShardPlan>();
  std::optional<std::vector<std::vector<size_t>>> comps = AssignComponents(
      shards, rel->max_tuples, rel->name_sym, parent.LiveComponents(),
      [&parent](size_t i) -> const Component& { return parent.component(i); },
      /*require_pure=*/req.for_update);
  if (!comps) return std::unique_ptr<ShardPlan>();
  return std::unique_ptr<ShardPlan>(std::make_unique<WsdShardPlan>(
      &parent, req.relation, req.aux_relations, std::move(shards),
      std::move(*comps)));
}

Result<std::unique_ptr<ShardPlan>> MakeUniformShardPlan(
    rel::Database& db, const ShardRequest& req) {
  // Update fan-outs never pay off here: the plan's import + re-export
  // round trip over the WHOLE store swamps any per-slice win over the
  // backend's native one-pass update.
  if (req.for_update) return std::unique_ptr<ShardPlan>();
  MAYWSD_ASSIGN_OR_RETURN(Wsdt imported, ImportUniform(db));
  auto plan = std::make_unique<UniformShardPlan>(std::move(imported), &db);
  MAYWSD_ASSIGN_OR_RETURN(
      std::unique_ptr<ShardPlan> inner,
      MakeWsdtShardPlan(*plan->imported(), plan->imported(), req));
  if (inner == nullptr) return std::unique_ptr<ShardPlan>();
  plan->set_inner(std::move(inner));
  return std::unique_ptr<ShardPlan>(std::move(plan));
}

}  // namespace maywsd::core::engine
