#include "core/engine/uniform_backend.h"

#include "core/engine/shard_plan.h"
#include "core/uniform.h"
#include "core/wsdt_algebra.h"
#include "core/wsdt_confidence.h"
#include "core/wsdt_update.h"

namespace maywsd::core::engine {

namespace {

bool IsSystemRelation(const std::string& name) {
  return name == kUniformC || name == kUniformF || name == kUniformW;
}

}  // namespace

bool UniformBackend::HasRelation(const std::string& name) const {
  return !IsSystemRelation(name) && db_->Contains(name);
}

std::vector<std::string> UniformBackend::RelationNames() const {
  std::vector<std::string> names;
  for (const std::string& name : db_->Names()) {
    if (!IsSystemRelation(name)) names.push_back(name);
  }
  return names;
}

Result<rel::Schema> UniformBackend::RelationSchema(
    const std::string& name) const {
  if (IsSystemRelation(name)) {
    return Status::NotFound("relation " + name + " is a system relation");
  }
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, db_->GetRelation(name));
  auto tid_idx = tmpl->schema().IndexOf(kTidColumn);
  if (!tid_idx || *tid_idx != 0) {
    return Status::InvalidArgument("template " + name +
                                   " lacks a leading TID column");
  }
  // The certain schema the driver reasons about excludes the TID column.
  return rel::Schema(std::vector<rel::Attribute>(
      tmpl->schema().attrs().begin() + 1, tmpl->schema().attrs().end()));
}

Status UniformBackend::AddCertainRelation(const rel::Relation& relation) {
  if (IsSystemRelation(relation.name())) {
    return Status::InvalidArgument("relation name " + relation.name() +
                                   " is reserved");
  }
  if (db_->Contains(relation.name())) {
    return Status::AlreadyExists("relation " + relation.name());
  }
  MAYWSD_RETURN_IF_ERROR(CheckCertainRelation(relation));
  std::vector<rel::Attribute> attrs;
  attrs.emplace_back(kTidColumn, rel::AttrType::kInt);
  for (const rel::Attribute& a : relation.schema().attrs()) {
    attrs.push_back(a);
  }
  rel::Relation tmpl{rel::Schema(std::move(attrs)), relation.name()};
  std::vector<rel::Value> row(tmpl.arity());
  for (size_t r = 0; r < relation.NumRows(); ++r) {
    row[0] = rel::Value::Int(static_cast<int64_t>(r));
    for (size_t a = 0; a < relation.arity(); ++a) {
      row[a + 1] = relation.row(r)[a];
    }
    tmpl.AppendRow(row);
  }
  return db_->AddRelation(std::move(tmpl));
}

Status UniformBackend::Copy(const std::string& src, const std::string& out) {
  return UniformCopy(*db_, src, out);
}

Status UniformBackend::SelectConst(const std::string& src,
                                   const std::string& out,
                                   const std::string& attr, rel::CmpOp op,
                                   const rel::Value& constant) {
  return UniformSelectConst(*db_, src, out, attr, op, constant);
}

Status UniformBackend::SelectAttrAttr(const std::string& src,
                                      const std::string& out,
                                      const std::string& attr_a, rel::CmpOp op,
                                      const std::string& attr_b) {
  return UniformSelectAttrAttr(*db_, src, out, attr_a, op, attr_b);
}

Status UniformBackend::Product(const std::string& left,
                               const std::string& right,
                               const std::string& out) {
  return UniformProduct(*db_, left, right, out);
}

Status UniformBackend::Union(const std::string& left, const std::string& right,
                             const std::string& out) {
  return UniformUnion(*db_, left, right, out);
}

Status UniformBackend::Project(const std::string& src, const std::string& out,
                               const std::vector<std::string>& attrs) {
  Status st = UniformProject(*db_, src, out, attrs);
  if (st.code() != StatusCode::kUnsupported) return st;
  // A dropped placeholder carries ⊥ (conditional presence): compose in the
  // template semantics instead.
  return Fallback(
      [&](Wsdt& wsdt) { return WsdtProject(wsdt, src, out, attrs); });
}

Status UniformBackend::Rename(
    const std::string& src, const std::string& out,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  return UniformRename(*db_, src, out, renames);
}

Status UniformBackend::Difference(const std::string& left,
                                  const std::string& right,
                                  const std::string& out) {
  return Fallback(
      [&](Wsdt& wsdt) { return WsdtDifference(wsdt, left, right, out); });
}

Status UniformBackend::ApplyUpdate(const rel::UpdateOp& op,
                                   const std::string& guard) {
  if (guard.empty()) {
    // The purely relational fragment runs directly on the store.
    Status st;
    switch (op.kind()) {
      case rel::UpdateOp::Kind::kInsert:
        return UniformInsert(*db_, op.relation(), op.tuples());
      case rel::UpdateOp::Kind::kDelete:
        st = UniformDeleteWhere(*db_, op.relation(), op.predicate());
        break;
      case rel::UpdateOp::Kind::kModify:
        st = UniformModifyWhere(*db_, op.relation(), op.predicate(),
                                op.assignments());
        break;
    }
    if (st.code() != StatusCode::kUnsupported) return st;
  }
  // World-conditional updates and '?'-cell mutations compose components:
  // one import → WSDT update → export round trip, like the query fallback.
  return Fallback(
      [&](Wsdt& wsdt) { return WsdtApplyUpdate(wsdt, op, guard); });
}

Status UniformBackend::Drop(const std::string& name) {
  return UniformDrop(*db_, name);
}

void UniformBackend::Compact() { (void)UniformCompact(*db_); }

Result<rel::Relation> UniformBackend::PossibleTuples(
    const std::string& relation) const {
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, Import());
  return WsdtPossibleTuples(wsdt, relation);
}

Result<rel::Relation> UniformBackend::PossibleTuplesWithConfidence(
    const std::string& relation) const {
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, Import());
  return WsdtPossibleTuplesWithConfidence(wsdt, relation);
}

Result<rel::Relation> UniformBackend::CertainTuples(
    const std::string& relation) const {
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, Import());
  return WsdtCertainTuples(wsdt, relation);
}

Result<double> UniformBackend::TupleConfidence(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, Import());
  return WsdtTupleConfidence(wsdt, relation, tuple);
}

Result<bool> UniformBackend::TupleCertain(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, Import());
  return WsdtTupleCertain(wsdt, relation, tuple);
}

Result<bool> UniformBackend::RelationCertain(const std::string& name) const {
  if (IsSystemRelation(name)) return false;
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl, db_->GetRelation(name));
  return TemplateIsCertain(*tmpl);
}

Result<std::unique_ptr<ShardPlan>> UniformBackend::PlanShards(
    const ShardRequest& req) {
  return MakeUniformShardPlan(*db_, req);
}

Result<Wsdt> UniformBackend::Import() const { return ImportUniform(*db_); }

Status UniformBackend::Fallback(const std::function<Status(Wsdt&)>& op) {
  MAYWSD_ASSIGN_OR_RETURN(Wsdt wsdt, ImportUniform(*db_));
  MAYWSD_RETURN_IF_ERROR(op(wsdt));
  MAYWSD_ASSIGN_OR_RETURN(rel::Database out, ExportUniform(wsdt));
  *db_ = std::move(out);
  ++round_trips_;
  return Status::Ok();
}

}  // namespace maywsd::core::engine
