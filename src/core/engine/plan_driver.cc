#include "core/engine/plan_driver.h"

#include <atomic>
#include <utility>

#include "rel/optimizer.h"

namespace maywsd::core::engine {

namespace {

/// Process-wide counter so scratch names are unique across evaluations,
/// backends and threads (kept temps from one run never collide with the
/// next run's).
std::atomic<uint64_t> g_scratch_counter{0};

}  // namespace

ScratchScope::~ScratchScope() {
  // Best effort on unwind; the in-flight error has priority.
  if (!temps_.empty()) (void)DropAll();
}

std::string ScratchScope::Fresh() {
  std::string name =
      "__eng_tmp" +
      std::to_string(g_scratch_counter.fetch_add(1, std::memory_order_relaxed));
  temps_.push_back(name);
  return name;
}

Status ScratchScope::DropAll() {
  Status first = Status::Ok();
  for (const std::string& temp : temps_) {
    Status st = ops_->Drop(temp);
    if (!st.ok() && first.ok()) first = std::move(st);
  }
  temps_.clear();
  ops_->Compact();
  return first;
}

rel::Predicate NegatePredicate(const rel::Predicate& pred) {
  using K = rel::Predicate::Kind;
  auto flip = [](rel::CmpOp op) {
    switch (op) {
      case rel::CmpOp::kEq:
        return rel::CmpOp::kNe;
      case rel::CmpOp::kNe:
        return rel::CmpOp::kEq;
      case rel::CmpOp::kLt:
        return rel::CmpOp::kGe;
      case rel::CmpOp::kLe:
        return rel::CmpOp::kGt;
      case rel::CmpOp::kGt:
        return rel::CmpOp::kLe;
      case rel::CmpOp::kGe:
        return rel::CmpOp::kLt;
    }
    return rel::CmpOp::kNe;
  };
  switch (pred.kind()) {
    case K::kTrue:
      // ¬true: an unsatisfiable comparison. '?' never occurs as a component
      // value, so A = '?' selects nothing. The attribute is resolved by the
      // driver (it substitutes a real attribute before use).
      return rel::Predicate::Cmp("", rel::CmpOp::kEq, rel::Value::Question());
    case K::kCmpConst:
      return rel::Predicate::Cmp(pred.lhs_attr(), flip(pred.op()),
                                 pred.constant());
    case K::kCmpAttr:
      return rel::Predicate::CmpAttr(pred.lhs_attr(), flip(pred.op()),
                                     pred.rhs_attr());
    case K::kAnd:
      return rel::Predicate::Or(NegatePredicate(pred.left()),
                                NegatePredicate(pred.right()));
    case K::kOr:
      return rel::Predicate::And(NegatePredicate(pred.left()),
                                 NegatePredicate(pred.right()));
    case K::kNot:
      return pred.left();
  }
  return rel::Predicate::True();
}

namespace {

/// Generic ∧/∨/¬ lowering for backends without a native predicate
/// selection: conjunctions chain, disjunctions union, negations flip.
Status LowerSelect(WorldSetOps& ops, ScratchScope& scope,
                   const std::string& src, const std::string& out,
                   const rel::Predicate& pred) {
  using K = rel::Predicate::Kind;
  switch (pred.kind()) {
    case K::kTrue:
      return ops.Copy(src, out);
    case K::kCmpConst: {
      std::string attr = pred.lhs_attr();
      if (attr.empty()) {
        // Unsatisfiable marker produced by NegatePredicate(true): select on
        // the first schema attribute against '?' (never matches).
        MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema, ops.RelationSchema(src));
        attr = std::string(schema.attr(0).name_view());
      }
      return ops.SelectConst(src, out, attr, pred.op(), pred.constant());
    }
    case K::kCmpAttr:
      return ops.SelectAttrAttr(src, out, pred.lhs_attr(), pred.op(),
                                pred.rhs_attr());
    case K::kAnd: {
      std::string mid = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(LowerSelect(ops, scope, src, mid, pred.left()));
      return LowerSelect(ops, scope, mid, out, pred.right());
    }
    case K::kOr: {
      std::string a = scope.Fresh();
      std::string b = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(LowerSelect(ops, scope, src, a, pred.left()));
      MAYWSD_RETURN_IF_ERROR(LowerSelect(ops, scope, src, b, pred.right()));
      return ops.Union(a, b, out);
    }
    case K::kNot:
      return LowerSelect(ops, scope, src, out, NegatePredicate(pred.left()));
  }
  return Status::Internal("unknown predicate kind");
}

/// Splits a join predicate into the first usable equality pair plus the
/// residual conjuncts (applied as a follow-up selection).
void SplitJoinPred(const rel::Predicate& pred, const rel::Schema& ls,
                   const rel::Schema& rs, bool* have_pair, std::string* la,
                   std::string* ra, std::vector<rel::Predicate>* residual) {
  *have_pair = false;
  for (const rel::Predicate& conj : pred.Conjuncts()) {
    if (!*have_pair && conj.kind() == rel::Predicate::Kind::kCmpAttr &&
        conj.op() == rel::CmpOp::kEq) {
      if (ls.Contains(conj.lhs_attr()) && rs.Contains(conj.rhs_attr())) {
        *have_pair = true;
        *la = conj.lhs_attr();
        *ra = conj.rhs_attr();
        continue;
      }
      if (rs.Contains(conj.lhs_attr()) && ls.Contains(conj.rhs_attr())) {
        *have_pair = true;
        *la = conj.rhs_attr();
        *ra = conj.lhs_attr();
        continue;
      }
    }
    residual->push_back(conj);
  }
}

}  // namespace

Status ApplySelect(WorldSetOps& ops, ScratchScope& scope,
                   const std::string& src, const std::string& out,
                   const rel::Predicate& pred) {
  if (ops.SupportsPredicateSelect()) {
    return ops.SelectPredicate(src, out, pred);
  }
  return LowerSelect(ops, scope, src, out, pred);
}

namespace {

/// EvalPlan body for operator nodes; results are memoized by the caller.
Result<std::string> EvalPlanUncached(WorldSetOps& ops, ScratchScope& scope,
                                     const rel::Plan& plan,
                                     SubplanCache* cache) {
  using K = rel::Plan::Kind;
  switch (plan.kind()) {
    case K::kScan:
      return Status::Internal("scan nodes are handled by EvalPlan");
    case K::kSelect: {
      MAYWSD_ASSIGN_OR_RETURN(std::string child,
                              EvalPlan(ops, scope, plan.child(), cache));
      std::string out = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(
          ApplySelect(ops, scope, child, out, plan.predicate()));
      return out;
    }
    case K::kProject: {
      MAYWSD_ASSIGN_OR_RETURN(std::string child,
                              EvalPlan(ops, scope, plan.child(), cache));
      std::string out = scope.Fresh();
      if (ops.SupportsProjectExists()) {
        MAYWSD_RETURN_IF_ERROR(
            ops.ProjectExists(child, out, plan.attributes()));
      } else {
        MAYWSD_RETURN_IF_ERROR(ops.Project(child, out, plan.attributes()));
      }
      return out;
    }
    case K::kRename: {
      MAYWSD_ASSIGN_OR_RETURN(std::string child,
                              EvalPlan(ops, scope, plan.child(), cache));
      std::string out = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(ops.Rename(child, out, plan.renames()));
      return out;
    }
    case K::kProduct: {
      MAYWSD_ASSIGN_OR_RETURN(std::string l,
                              EvalPlan(ops, scope, plan.left(), cache));
      MAYWSD_ASSIGN_OR_RETURN(std::string r,
                              EvalPlan(ops, scope, plan.right(), cache));
      std::string out = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(ops.Product(l, r, out));
      return out;
    }
    case K::kUnion: {
      MAYWSD_ASSIGN_OR_RETURN(std::string l,
                              EvalPlan(ops, scope, plan.left(), cache));
      MAYWSD_ASSIGN_OR_RETURN(std::string r,
                              EvalPlan(ops, scope, plan.right(), cache));
      std::string out = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(ops.Union(l, r, out));
      return out;
    }
    case K::kDifference: {
      MAYWSD_ASSIGN_OR_RETURN(std::string l,
                              EvalPlan(ops, scope, plan.left(), cache));
      MAYWSD_ASSIGN_OR_RETURN(std::string r,
                              EvalPlan(ops, scope, plan.right(), cache));
      std::string out = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(ops.Difference(l, r, out));
      return out;
    }
    case K::kJoin: {
      MAYWSD_ASSIGN_OR_RETURN(std::string l,
                              EvalPlan(ops, scope, plan.left(), cache));
      MAYWSD_ASSIGN_OR_RETURN(std::string r,
                              EvalPlan(ops, scope, plan.right(), cache));
      if (ops.SupportsHashJoin()) {
        MAYWSD_ASSIGN_OR_RETURN(rel::Schema ls, ops.RelationSchema(l));
        MAYWSD_ASSIGN_OR_RETURN(rel::Schema rs, ops.RelationSchema(r));
        bool have_pair = false;
        std::string la, ra;
        std::vector<rel::Predicate> residual;
        SplitJoinPred(plan.predicate(), ls, rs, &have_pair, &la, &ra,
                      &residual);
        if (have_pair) {
          std::string joined = scope.Fresh();
          MAYWSD_RETURN_IF_ERROR(ops.HashJoin(l, r, joined, la, ra));
          if (residual.empty()) return joined;
          std::string out = scope.Fresh();
          MAYWSD_RETURN_IF_ERROR(ApplySelect(
              ops, scope, joined, out,
              rel::Predicate::AndAll(std::move(residual))));
          return out;
        }
        // No usable equality pair: fall through to product + selection.
      }
      std::string prod = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(ops.Product(l, r, prod));
      std::string out = scope.Fresh();
      MAYWSD_RETURN_IF_ERROR(
          ApplySelect(ops, scope, prod, out, plan.predicate()));
      return out;
    }
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

Result<std::string> EvalPlan(WorldSetOps& ops, ScratchScope& scope,
                             const rel::Plan& plan, SubplanCache* cache) {
  if (plan.kind() == rel::Plan::Kind::kScan) {
    if (!ops.HasRelation(plan.relation())) {
      return Status::NotFound("relation " + plan.relation() + " not in " +
                              std::string(ops.BackendName()) + " world set");
    }
    return plan.relation();
  }
  if (cache != nullptr) {
    auto it = cache->memo.find(plan);
    if (it != cache->memo.end()) {
      ++cache->hits;
      return it->second;
    }
  }
  MAYWSD_ASSIGN_OR_RETURN(std::string out,
                          EvalPlanUncached(ops, scope, plan, cache));
  if (cache != nullptr) {
    ++cache->misses;
    cache->memo.emplace(plan, out);
  }
  return out;
}

Status Evaluate(WorldSetOps& ops, const rel::Plan& plan,
                const std::string& out, bool keep_temps) {
  ScratchScope scope(ops);
  MAYWSD_ASSIGN_OR_RETURN(std::string result, EvalPlan(ops, scope, plan));
  // Materialize the final result under `out` (a copy keeps the result
  // valid even when `result` is an input relation or a dropped temp).
  MAYWSD_RETURN_IF_ERROR(ops.Copy(result, out));
  if (keep_temps) {
    scope.Keep();
    return Status::Ok();
  }
  return scope.DropAll();
}

Status EvaluateOptimized(WorldSetOps& ops, const rel::Plan& plan,
                         const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Plan optimized, OptimizeForBackend(ops, plan));
  return Evaluate(ops, optimized, out);
}

Result<rel::Plan> OptimizeForBackend(WorldSetOps& ops, const rel::Plan& plan) {
  // The optimizer only needs schemas for attribute-scoping decisions; the
  // backend catalog supplies them.
  std::vector<std::pair<std::string, rel::Schema>> schemas;
  for (const std::string& name : ops.RelationNames()) {
    MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema, ops.RelationSchema(name));
    schemas.emplace_back(name, std::move(schema));
  }
  return rel::Optimize(plan, schemas);
}

Status EvaluateBatch(WorldSetOps& ops, std::span<const rel::Plan> plans,
                     std::span<const std::string> outs, bool cache_subplans,
                     BatchStats* stats) {
  if (plans.size() != outs.size()) {
    return Status::InvalidArgument(
        "EvaluateBatch: " + std::to_string(plans.size()) + " plans vs " +
        std::to_string(outs.size()) + " outputs");
  }
  ScratchScope scope(ops);
  SubplanCache cache;
  SubplanCache* cache_ptr = cache_subplans ? &cache : nullptr;
  Status first = Status::Ok();
  for (size_t i = 0; i < plans.size(); ++i) {
    auto result = EvalPlan(ops, scope, plans[i], cache_ptr);
    if (result.ok()) {
      first = ops.Copy(*result, outs[i]);
    } else {
      first = result.status();
    }
    if (!first.ok()) break;
  }
  if (stats != nullptr) {
    stats->cache_hits = cache.hits;
    stats->cache_misses = cache.misses;
  }
  Status drop = scope.DropAll();
  return first.ok() ? drop : first;
}

}  // namespace maywsd::core::engine
