// UrelBackend: WorldSetOps over the columnar U-relations store
// (core/urel.h — the authors' follow-up representation, see PAPERS.md).
//
// The whole positive fragment — copy, selections (arbitrary predicate
// trees in one vectorized pass), product, the fused σ(×) hash join,
// union, projection, rename — plus the unconditional update fragment and
// the Section 6 answer surface run natively against the columnar store:
// zero import/export round trips, the property the uniform C/F/W encoding
// pays for whenever it leaves the purely relational fragment. Only two
// operations can leave the representation: a difference whose assignment
// expansion exceeds the internal cap, and world-conditional updates; both
// take the established one-round-trip template-semantics fallback
// (ImportUrel → WSDT → ExportUrel), counted by RoundTrips().

#ifndef MAYWSD_CORE_ENGINE_UREL_BACKEND_H_
#define MAYWSD_CORE_ENGINE_UREL_BACKEND_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine/world_set_ops.h"
#include "core/urel.h"
#include "core/wsdt.h"

namespace maywsd::core::engine {

/// Adapts a Urel store to the engine contract. Non-owning by default; the
/// store must outlive the backend. The rvalue overload takes ownership
/// (shard slices are self-contained backends).
class UrelBackend : public WorldSetOps {
 public:
  explicit UrelBackend(Urel& urel) : urel_(&urel) {}
  explicit UrelBackend(Urel&& owned)
      : owned_(std::make_unique<Urel>(std::move(owned))),
        urel_(owned_.get()) {}

  /// The adapted representation.
  Urel& urel() { return *urel_; }
  const Urel& urel() const { return *urel_; }

  std::string_view BackendName() const override { return "urel"; }

  bool HasRelation(const std::string& name) const override;
  std::vector<std::string> RelationNames() const override;
  Result<rel::Schema> RelationSchema(const std::string& name) const override;
  Status AddCertainRelation(const rel::Relation& relation) override;

  Status Copy(const std::string& src, const std::string& out) override;
  Status SelectConst(const std::string& src, const std::string& out,
                     const std::string& attr, rel::CmpOp op,
                     const rel::Value& constant) override;
  Status SelectAttrAttr(const std::string& src, const std::string& out,
                        const std::string& attr_a, rel::CmpOp op,
                        const std::string& attr_b) override;
  Status Product(const std::string& left, const std::string& right,
                 const std::string& out) override;
  Status Union(const std::string& left, const std::string& right,
               const std::string& out) override;
  Status Project(const std::string& src, const std::string& out,
                 const std::vector<std::string>& attrs) override;
  Status Rename(const std::string& src, const std::string& out,
                const std::vector<std::pair<std::string, std::string>>&
                    renames) override;
  /// Native while the assignment expansion stays under the cap; past it,
  /// one template-semantics round trip.
  Status Difference(const std::string& left, const std::string& right,
                    const std::string& out) override;
  Status Drop(const std::string& name) override;

  Result<rel::Relation> PossibleTuples(
      const std::string& relation) const override;
  Result<rel::Relation> PossibleTuplesWithConfidence(
      const std::string& relation) const override;
  Result<rel::Relation> CertainTuples(
      const std::string& relation) const override;
  Result<double> TupleConfidence(
      const std::string& relation,
      std::span<const rel::Value> tuple) const override;
  Result<bool> TupleCertain(const std::string& relation,
                            std::span<const rel::Value> tuple) const override;

  /// Unconditional inserts/deletes/modifies are pure row rewritings (a
  /// U-relation has no '?' cells, so every predicate decides natively);
  /// world-conditional updates compose with the guard's variables and take
  /// one import → WSDT update → export round trip.
  Status ApplyUpdate(const rel::UpdateOp& op,
                     const std::string& guard) override;

  bool SupportsPredicateSelect() const override { return true; }
  Status SelectPredicate(const std::string& src, const std::string& out,
                         const rel::Predicate& pred) override;

  bool SupportsHashJoin() const override { return true; }
  Status HashJoin(const std::string& left, const std::string& right,
                  const std::string& out, const std::string& left_attr,
                  const std::string& right_attr) override;

  /// Every operator runs on tuple slices independently — descriptors
  /// travel with their rows.
  bool ShardableOperator(rel::Plan::Kind kind) const override {
    (void)kind;
    return true;
  }
  Result<bool> RelationCertain(const std::string& name) const override;
  Result<std::unique_ptr<ShardPlan>> PlanShards(
      const ShardRequest& req) override;

  uint64_t RoundTrips() const override { return round_trips_; }

 private:
  /// Runs `op` on the imported WSDT and re-exports the store — the
  /// template-semantics escape hatch, counted as one round trip.
  Status Fallback(const std::function<Status(Wsdt&)>& op);

  std::unique_ptr<Urel> owned_;
  Urel* urel_;
  uint64_t round_trips_ = 0;
};

/// Shard plan over a U-relations store: rows sharing a variable co-shard
/// (descriptors are the only correlation carriers); each slice shares the
/// parent's symbol table copy-on-write, so descriptors and value ids
/// transfer verbatim and absorbed rows stay exact. Declines (returns a
/// null plan) for single-leaf requests — see the cost gate in the
/// implementation: slicing every column costs more than the one
/// bandwidth-bound pass a unary chain performs.
Result<std::unique_ptr<ShardPlan>> MakeUrelShardPlan(Urel& parent,
                                                     const ShardRequest& req);

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_UREL_BACKEND_H_
