// Parallel plan evaluation: shard fan-out over a bounded worker pool.
//
// The facade-level entry point is EvaluateParallel: it decides whether a
// plan can run sharded on the backend (one scan of the partitioned
// relation, reached through operators that distribute over a union of
// tuple slices; every other scanned relation certain; every operator kind
// declared shardable by the backend), asks the backend for a ShardPlan,
// evaluates the whole plan once per independent slice on the worker pool,
// and merges the shard results in shard-index order — deterministic
// regardless of completion order. Anything that does not fit falls back to
// the sequential Evaluate with identical semantics.
//
// Sharded evaluation preserves the result relation's world-set exactly
// (the test suite holds threads=1 and threads=N to identical world sets);
// the correlation between the result and the input relations is weakened,
// since shard results attach to slice copies of the input components.

#ifndef MAYWSD_CORE_ENGINE_PARALLEL_H_
#define MAYWSD_CORE_ENGINE_PARALLEL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine/world_set_ops.h"
#include "rel/algebra.h"

namespace maywsd::core::engine {

/// A bounded pool of worker threads with a run-and-wait batch interface.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs every task on the pool and waits for all of them; statuses come
  /// back in task order. Calls from inside a pool worker run the tasks
  /// inline (no nested scheduling, no deadlock).
  std::vector<Status> RunAll(std::vector<std::function<Status()>> tasks);

  /// Process-wide pool sized to the hardware concurrency. Workers are
  /// started on first use and joined at process exit.
  static ThreadPool& Shared();

 private:
  struct Impl;
  Impl* impl_;
  size_t num_threads_;
};

/// Per-run telemetry of EvaluateParallel.
struct ParallelStats {
  bool sharded = false;   ///< true when the run fanned out
  size_t shards = 0;      ///< number of shards executed
};

/// Evaluates `plan` into `out`, fanning out across at most `threads`
/// workers when the plan and backend allow it; otherwise equivalent to
/// Evaluate(ops, plan, out). threads <= 1 always runs sequentially.
Status EvaluateParallel(WorldSetOps& ops, const rel::Plan& plan,
                        const std::string& out, size_t threads,
                        ParallelStats* stats = nullptr);

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_PARALLEL_H_
