// Parallel plan evaluation: shard fan-out over a bounded worker pool.
//
// The facade-level entry point for queries is EvaluateParallel: it
// decides whether a plan can run sharded on the backend (one scan of the
// partitioned relation, reached through operators that distribute over a
// union of tuple slices; every other scanned relation certain; every
// operator kind declared shardable by the backend), asks the backend for
// a ShardPlan, evaluates the whole plan once per independent slice on the
// worker pool, and merges the shard results with an ordered streaming
// merge: shard i is absorbed on the coordinating thread as soon as shards
// 0..i finished, while slower shards are still executing — shard-index
// order keeps the merge deterministic regardless of completion order,
// without a wait-for-slowest barrier. Anything that does not fit falls
// back to the sequential Evaluate with identical semantics.
//
// ApplyUpdatesSharded is the update-side twin: a RUN of consecutive
// unconditional deletes/modifies on one relation fans out over shard
// slices of that relation, every slice applies the whole run
// independently, and the parent relation is replaced by the streamed-back
// slices. Slicing once per run — not once per update — is what makes the
// fan-out profitable: the slice copy and the merge-back amortize over the
// run's length, so a batch of k one-pass updates costs ~2 passes of copy
// plus k/N passes of mutation instead of k sequential passes. Backends
// decline (via ShardRequest::for_update) when slicing is unsound for
// their component layout or cannot beat their native one-pass update.
//
// Sharded evaluation preserves the result relation's world-set exactly
// (the test suite holds threads=1 and threads=N to identical world sets);
// the correlation between the result and the input relations is weakened,
// since shard results attach to slice copies of the input components.

#ifndef MAYWSD_CORE_ENGINE_PARALLEL_H_
#define MAYWSD_CORE_ENGINE_PARALLEL_H_

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine/world_set_ops.h"
#include "rel/algebra.h"

namespace maywsd::core::engine {

/// A bounded pool of worker threads with a run-and-wait batch interface.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs every task on the pool and waits for all of them; statuses come
  /// back in task order. Calls from inside a pool worker run the tasks
  /// inline (no nested scheduling, no deadlock).
  std::vector<Status> RunAll(std::vector<std::function<Status()>> tasks);

  /// Enqueues one task without waiting — the building block of the
  /// streaming merges. From inside a pool worker the task runs inline
  /// before returning (same no-nested-scheduling rule as RunAll).
  void Submit(std::function<void()> task);

  /// Process-wide pool sized to the hardware concurrency. Workers are
  /// started on first use and joined at process exit.
  static ThreadPool& Shared();

 private:
  struct Impl;
  Impl* impl_;
  size_t num_threads_;
};

/// Per-run telemetry of EvaluateParallel.
struct ParallelStats {
  bool sharded = false;   ///< true when the run fanned out
  size_t shards = 0;      ///< number of shards executed
};

/// Evaluates `plan` into `out`, fanning out across at most `threads`
/// workers when the plan and backend allow it; otherwise equivalent to
/// Evaluate(ops, plan, out). threads <= 1 always runs sequentially.
Status EvaluateParallel(WorldSetOps& ops, const rel::Plan& plan,
                        const std::string& out, size_t threads,
                        ParallelStats* stats = nullptr);

/// Applies a run of ALREADY-VALIDATED updates (see engine/update_plan.h) —
/// all unconditional deletes/modifies of the SAME relation — fanning the
/// whole run out over shard slices of that relation: slices build in
/// parallel, the parent relation is dropped, every slice applies the full
/// run on the pool, and finished slices stream back in shard-index order
/// while slower ones still run. Runs containing an insert or a
/// world-conditional update are rejected by the caller's grouping, and
/// threads <= 1, single-shard plans or backends that decline the
/// for_update shard request fall back to applying the run sequentially
/// through WorldSetOps::ApplyUpdate. Like a failed sequential update, a
/// failed fan-out can leave the target relation partially merged —
/// updates are in-place and not transactional.
Status ApplyUpdatesSharded(WorldSetOps& ops,
                           std::span<const rel::UpdateOp> run, size_t threads,
                           ParallelStats* stats = nullptr);

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_PARALLEL_H_
