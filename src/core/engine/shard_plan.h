// Shard planners: partitioning a backend's state by component/tuple ranges.
//
// A world-set relation partitions into independent tuple-slot groups when
// no component links slots across group boundaries (components are the
// only carriers of correlation — Definition 1). PartitionSlots computes
// those groups with a union-find over component links and packs whole
// groups into size-balanced shards, keeping group order by minimum slot id
// so concatenating shard results reproduces the sequential slot order.
//
// The three factories build a ShardPlan (see world_set_ops.h for the
// lifecycle) over each representation:
//  - WSDT: template-row slices; components projected to the sliced
//    relation's columns (exact marginalization — a component row keeps the
//    joint distribution of its remaining columns).
//  - WSD: tuple-slot slices of the component set, same projection rule.
//  - uniform: the C/F/W store is imported once, sharded as a WSDT, and
//    re-exported on Finish() — the same template-semantics round trip the
//    prototype used for non-relational operators.

#ifndef MAYWSD_CORE_ENGINE_SHARD_PLAN_H_
#define MAYWSD_CORE_ENGINE_SHARD_PLAN_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine/world_set_ops.h"
#include "core/field.h"
#include "core/wsd.h"
#include "core/wsdt.h"
#include "rel/database.h"

namespace maywsd::core::engine {

/// Groups tuple ids [0, num_slots) transitively by `links` (each entry
/// couples two ids that must share a shard), then packs whole groups —
/// ordered by minimum id — into at most `max_shards` size-balanced shards
/// of ascending ids. When groups interleave (a component linking
/// non-adjacent slots), shard id ranges overlap and concatenating shard
/// results permutes the sequential slot order — only world-set equality
/// is guaranteed, not row order. Returns an empty vector when fewer than
/// two shards result (nothing to parallelize).
std::vector<std::vector<TupleId>> PartitionSlots(
    TupleId num_slots, const std::vector<std::pair<TupleId, TupleId>>& links,
    size_t max_shards);

/// True when a WSDT/uniform template is certain, i.e. carries no '?'
/// placeholder ('?' is the only uncertainty carrier in a template —
/// conditional presence needs a '?' column). Shared by the backends'
/// RelationCertain and the shard builders' auxiliary re-verification.
bool TemplateIsCertain(const rel::Relation& tmpl);

/// Shard plan over a WSDT. `parent` is sliced (read-only during
/// BuildShard); shard results merge into `absorb_into` (usually the same
/// object; the uniform plan points both at its imported store).
Result<std::unique_ptr<ShardPlan>> MakeWsdtShardPlan(const Wsdt& parent,
                                                     Wsdt* absorb_into,
                                                     const ShardRequest& req);

/// Shard plan over a WSD (relations with presence fields are declined).
Result<std::unique_ptr<ShardPlan>> MakeWsdShardPlan(Wsd& parent,
                                                    const ShardRequest& req);

/// Shard plan over a uniform C/F/W store: imports the store as a WSDT,
/// shards that, and re-exports the merged store on Finish().
Result<std::unique_ptr<ShardPlan>> MakeUniformShardPlan(
    rel::Database& db, const ShardRequest& req);

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_SHARD_PLAN_H_
