// WsdtBackend: WorldSetOps over the Section 5 WSDT/UWSDT operators.
//
// A thin adapter — the operator implementations stay in core/wsdt_algebra.
// The WSDT path advertises both optional capabilities: WsdtSelect
// evaluates arbitrary predicate trees with three-valued logic in one
// template pass, and WsdtJoin is the fused σ(×) hash join over certain and
// possible key values, so the driver skips the generic ∧/∨/¬ lowering and
// lowers joins to hash-join-plus-residual instead of product-plus-
// selections.

#ifndef MAYWSD_CORE_ENGINE_WSDT_BACKEND_H_
#define MAYWSD_CORE_ENGINE_WSDT_BACKEND_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine/world_set_ops.h"
#include "core/wsdt.h"

namespace maywsd::core::engine {

/// Adapts a Wsdt to the engine contract. Non-owning by default; the Wsdt
/// must outlive the backend. The rvalue overload takes ownership (shard
/// slices are self-contained backends).
class WsdtBackend : public WorldSetOps {
 public:
  explicit WsdtBackend(Wsdt& wsdt) : wsdt_(&wsdt) {}
  explicit WsdtBackend(Wsdt&& owned)
      : owned_(std::make_unique<Wsdt>(std::move(owned))),
        wsdt_(owned_.get()) {}

  /// The adapted representation.
  Wsdt& wsdt() { return *wsdt_; }
  const Wsdt& wsdt() const { return *wsdt_; }

  std::string_view BackendName() const override { return "wsdt"; }

  bool HasRelation(const std::string& name) const override;
  std::vector<std::string> RelationNames() const override;
  Result<rel::Schema> RelationSchema(const std::string& name) const override;
  Status AddCertainRelation(const rel::Relation& relation) override;

  Status Copy(const std::string& src, const std::string& out) override;
  Status SelectConst(const std::string& src, const std::string& out,
                     const std::string& attr, rel::CmpOp op,
                     const rel::Value& constant) override;
  Status SelectAttrAttr(const std::string& src, const std::string& out,
                        const std::string& attr_a, rel::CmpOp op,
                        const std::string& attr_b) override;
  Status Product(const std::string& left, const std::string& right,
                 const std::string& out) override;
  Status Union(const std::string& left, const std::string& right,
               const std::string& out) override;
  Status Project(const std::string& src, const std::string& out,
                 const std::vector<std::string>& attrs) override;
  Status Rename(const std::string& src, const std::string& out,
                const std::vector<std::pair<std::string, std::string>>&
                    renames) override;
  Status Difference(const std::string& left, const std::string& right,
                    const std::string& out) override;
  Status Drop(const std::string& name) override;
  void Compact() override;

  Result<rel::Relation> PossibleTuples(
      const std::string& relation) const override;
  Result<rel::Relation> PossibleTuplesWithConfidence(
      const std::string& relation) const override;
  Result<rel::Relation> CertainTuples(
      const std::string& relation) const override;
  Result<double> TupleConfidence(
      const std::string& relation,
      std::span<const rel::Value> tuple) const override;
  Result<bool> TupleCertain(const std::string& relation,
                            std::span<const rel::Value> tuple) const override;

  /// Updates run representation-natively (core/wsdt_update.h).
  Status ApplyUpdate(const rel::UpdateOp& op,
                     const std::string& guard) override;

  bool SupportsPredicateSelect() const override { return true; }
  Status SelectPredicate(const std::string& src, const std::string& out,
                         const rel::Predicate& pred) override;

  bool SupportsHashJoin() const override { return true; }
  Status HashJoin(const std::string& left, const std::string& right,
                  const std::string& out, const std::string& left_attr,
                  const std::string& right_attr) override;

  /// The template operators scan rows independently; every operator kind
  /// runs fine inside an independent slice.
  bool ShardableOperator(rel::Plan::Kind kind) const override {
    (void)kind;
    return true;
  }
  Result<bool> RelationCertain(const std::string& name) const override;
  Result<std::unique_ptr<ShardPlan>> PlanShards(
      const ShardRequest& req) override;

 private:
  std::unique_ptr<Wsdt> owned_;  // declared before wsdt_ (init order)
  Wsdt* wsdt_;
};

}  // namespace maywsd::core::engine

#endif  // MAYWSD_CORE_ENGINE_WSDT_BACKEND_H_
