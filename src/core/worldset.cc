#include "core/worldset.h"

#include <algorithm>

#include "rel/eval.h"

namespace maywsd::core {

rel::Schema InlinedSchema::ToFlatSchema() const {
  std::vector<rel::Attribute> attrs;
  for (const RelationEntry& r : relations) {
    for (TupleId t = 0; t < r.max_tuples; ++t) {
      for (size_t a = 0; a < r.schema.arity(); ++a) {
        attrs.emplace_back(r.name + ".t" + std::to_string(t) + "." +
                               std::string(r.schema.attr(a).name_view()),
                           r.schema.attr(a).type);
      }
    }
  }
  return rel::Schema(std::move(attrs));
}

Result<InlinedSchema> DeriveInlinedSchema(
    const std::vector<PossibleWorld>& worlds) {
  InlinedSchema out;
  std::vector<std::string> names;
  for (const PossibleWorld& w : worlds) {
    for (const std::string& name : w.db.Names()) {
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    InlinedSchema::RelationEntry entry;
    entry.name = name;
    bool have_schema = false;
    for (const PossibleWorld& w : worlds) {
      if (!w.db.Contains(name)) continue;
      const rel::Relation* rel = w.db.GetRelation(name).value();
      if (!have_schema) {
        entry.schema = rel->schema();
        have_schema = true;
      } else if (entry.schema != rel->schema()) {
        return Status::InvalidArgument("relation " + name +
                                       " has differing schemas across worlds");
      }
      entry.max_tuples =
          std::max(entry.max_tuples, static_cast<TupleId>(rel->NumRows()));
    }
    out.relations.push_back(std::move(entry));
  }
  return out;
}

Result<rel::Relation> InlineWorlds(const std::vector<PossibleWorld>& worlds,
                                   const InlinedSchema& schema) {
  rel::Relation out(schema.ToFlatSchema(), "world_set_relation");
  std::vector<rel::Value> row;
  for (const PossibleWorld& w : worlds) {
    row.clear();
    for (const InlinedSchema::RelationEntry& r : schema.relations) {
      size_t have = 0;
      if (w.db.Contains(r.name)) {
        const rel::Relation* rel = w.db.GetRelation(r.name).value();
        if (rel->schema() != r.schema) {
          return Status::InvalidArgument("schema mismatch inlining " + r.name);
        }
        have = rel->NumRows();
        if (have > static_cast<size_t>(r.max_tuples)) {
          return Status::InvalidArgument("world exceeds |R|max for " + r.name);
        }
        for (size_t i = 0; i < have; ++i) {
          rel::TupleRef tr = rel->row(i);
          for (size_t a = 0; a < tr.arity(); ++a) row.push_back(tr[a]);
        }
      }
      // Pad with t⊥ tuples up to |R|max (Section 3).
      size_t pad = (static_cast<size_t>(r.max_tuples) - have) *
                   r.schema.arity();
      for (size_t i = 0; i < pad; ++i) row.push_back(rel::Value::Bottom());
    }
    out.AppendRow(row);
  }
  return out;
}

Result<std::vector<PossibleWorld>> UninlineWorlds(
    const rel::Relation& world_set_relation, const InlinedSchema& schema,
    const std::vector<double>& probs) {
  if (!probs.empty() && probs.size() != world_set_relation.NumRows()) {
    return Status::InvalidArgument("probs size mismatch");
  }
  if (world_set_relation.arity() != schema.ToFlatSchema().arity()) {
    return Status::InvalidArgument(
        "world-set relation arity does not match inlining schema");
  }
  std::vector<PossibleWorld> out;
  size_t n = world_set_relation.NumRows();
  double uniform = n > 0 ? 1.0 / static_cast<double>(n) : 1.0;
  for (size_t i = 0; i < n; ++i) {
    rel::TupleRef row = world_set_relation.row(i);
    PossibleWorld world;
    world.prob = probs.empty() ? uniform : probs[i];
    size_t col = 0;
    for (const InlinedSchema::RelationEntry& r : schema.relations) {
      rel::Relation rel(r.schema, r.name);
      for (TupleId t = 0; t < r.max_tuples; ++t) {
        bool has_bottom = false;
        for (size_t a = 0; a < r.schema.arity(); ++a) {
          if (row[col + a].is_bottom()) has_bottom = true;
        }
        if (!has_bottom) {
          std::vector<rel::Value> tuple;
          for (size_t a = 0; a < r.schema.arity(); ++a) {
            tuple.push_back(row[col + a]);
          }
          rel.AppendRow(tuple);
        }
        col += r.schema.arity();
      }
      rel.SortDedup();
      world.db.PutRelation(std::move(rel));
    }
    out.push_back(std::move(world));
  }
  return out;
}

Result<Wsd> WsdFromWorlds(const std::vector<PossibleWorld>& worlds) {
  if (worlds.empty()) {
    return Status::InvalidArgument("cannot build a WSD of zero worlds");
  }
  MAYWSD_ASSIGN_OR_RETURN(InlinedSchema schema, DeriveInlinedSchema(worlds));
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation wsr, InlineWorlds(worlds, schema));

  Wsd wsd;
  std::vector<FieldKey> fields;
  for (const InlinedSchema::RelationEntry& r : schema.relations) {
    MAYWSD_RETURN_IF_ERROR(wsd.AddRelation(r.name, r.schema, r.max_tuples));
    for (TupleId t = 0; t < r.max_tuples; ++t) {
      for (size_t a = 0; a < r.schema.arity(); ++a) {
        fields.emplace_back(r.name, t,
                            std::string(r.schema.attr(a).name_view()));
      }
    }
  }
  if (fields.empty()) {
    // Every world is empty: the world-set is the single empty world, which
    // zero components represent exactly.
    return wsd;
  }
  Component comp(std::move(fields));
  for (size_t i = 0; i < wsr.NumRows(); ++i) {
    comp.AddWorld(wsr.row(i).span(), worlds[i].prob);
  }
  MAYWSD_RETURN_IF_ERROR(wsd.AddComponent(std::move(comp)));
  return wsd;
}

Result<std::vector<PossibleWorld>> EvaluatePerWorld(
    const std::vector<PossibleWorld>& worlds, const rel::Plan& plan,
    const std::string& out_name) {
  std::vector<PossibleWorld> out;
  out.reserve(worlds.size());
  for (const PossibleWorld& w : worlds) {
    MAYWSD_ASSIGN_OR_RETURN(rel::Relation result,
                            rel::Evaluate(plan, w.db));
    result.set_name(out_name);
    PossibleWorld pw;
    pw.prob = w.prob;
    pw.db.PutRelation(std::move(result));
    out.push_back(std::move(pw));
  }
  return out;
}

}  // namespace maywsd::core
