#include "core/urel.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "core/component.h"
#include "core/field.h"

namespace maywsd::core {

namespace {

/// Upper bound on the assignment enumerations (difference expansion,
/// confidence aggregation) before the caller must fall back to the
/// template semantics.
constexpr uint64_t kAssignmentCap = uint64_t{1} << 20;

Status RequireAbsent(const Urel& u, const std::string& out) {
  if (u.Contains(out)) {
    return Status::AlreadyExists("relation " + out + " already exists");
  }
  return Status::Ok();
}

/// Merges two canonical descriptors; false when they assign one variable
/// two different values (the conjunction selects no world).
bool MergeDescriptors(std::span<const UrelDescEntry> a,
                      std::span<const UrelDescEntry> b,
                      std::vector<UrelDescEntry>& out) {
  out.clear();
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].var < b[j].var) {
      out.push_back(a[i++]);
    } else if (b[j].var < a[i].var) {
      out.push_back(b[j++]);
    } else {
      if (a[i].world != b[j].world) return false;
      out.push_back(a[i++]);
      ++j;
    }
  }
  out.insert(out.end(), a.begin() + i, a.end());
  out.insert(out.end(), b.begin() + j, b.end());
  return true;
}

/// Vectorized predicate evaluation: one bitmap per node, constant
/// comparisons memoized per dictionary id.
Status EvalPredicateBitmap(const Urel& u, const UrelRelation& r,
                           const rel::Predicate& pred,
                           std::vector<uint8_t>& out) {
  const size_t rows = r.NumRows();
  out.assign(rows, 0);
  switch (pred.kind()) {
    case rel::Predicate::Kind::kTrue:
      out.assign(rows, 1);
      return Status::Ok();
    case rel::Predicate::Kind::kCmpConst: {
      auto col = r.schema.IndexOf(pred.lhs_attr());
      if (!col) {
        return Status::NotFound("attribute " + pred.lhs_attr() + " not in " +
                                r.name);
      }
      const std::vector<UrelValueId>& ids = r.columns[*col];
      std::unordered_map<UrelValueId, uint8_t> memo;
      for (size_t i = 0; i < rows; ++i) {
        auto it = memo.find(ids[i]);
        if (it == memo.end()) {
          it = memo.emplace(ids[i], u.ValueAt(ids[i]).Satisfies(
                                        pred.op(), pred.constant())
                                        ? 1
                                        : 0)
                   .first;
        }
        out[i] = it->second;
      }
      return Status::Ok();
    }
    case rel::Predicate::Kind::kCmpAttr: {
      auto a = r.schema.IndexOf(pred.lhs_attr());
      auto b = r.schema.IndexOf(pred.rhs_attr());
      if (!a || !b) {
        return Status::NotFound("attribute " +
                                (a ? pred.rhs_attr() : pred.lhs_attr()) +
                                " not in " + r.name);
      }
      const std::vector<UrelValueId>& la = r.columns[*a];
      const std::vector<UrelValueId>& lb = r.columns[*b];
      if (pred.op() == rel::CmpOp::kEq || pred.op() == rel::CmpOp::kNe) {
        // Dictionary ids are injective modulo value equality, so (in)equality
        // is a pure id comparison.
        const uint8_t on_eq = pred.op() == rel::CmpOp::kEq ? 1 : 0;
        for (size_t i = 0; i < rows; ++i) {
          out[i] = la[i] == lb[i] ? on_eq : 1 - on_eq;
        }
      } else {
        for (size_t i = 0; i < rows; ++i) {
          out[i] =
              u.ValueAt(la[i]).Satisfies(pred.op(), u.ValueAt(lb[i])) ? 1 : 0;
        }
      }
      return Status::Ok();
    }
    case rel::Predicate::Kind::kAnd:
    case rel::Predicate::Kind::kOr: {
      std::vector<uint8_t> rhs;
      MAYWSD_RETURN_IF_ERROR(EvalPredicateBitmap(u, r, pred.left(), out));
      MAYWSD_RETURN_IF_ERROR(EvalPredicateBitmap(u, r, pred.right(), rhs));
      if (pred.kind() == rel::Predicate::Kind::kAnd) {
        for (size_t i = 0; i < rows; ++i) out[i] &= rhs[i];
      } else {
        for (size_t i = 0; i < rows; ++i) out[i] |= rhs[i];
      }
      return Status::Ok();
    }
    case rel::Predicate::Kind::kNot:
      MAYWSD_RETURN_IF_ERROR(EvalPredicateBitmap(u, r, pred.left(), out));
      for (size_t i = 0; i < rows; ++i) out[i] = 1 - out[i];
      return Status::Ok();
  }
  return Status::Internal("unknown predicate kind");
}

/// Copies row `row` of `src` (data + descriptor) into `dst` under a fresh
/// TID. Both relations live in the same store, so value ids transfer.
void CopyTuple(const UrelRelation& src, size_t row, UrelRelation& dst) {
  for (size_t a = 0; a < src.columns.size(); ++a) {
    dst.columns[a].push_back(src.columns[a][row]);
  }
  dst.tids.push_back(dst.next_tid++);
  std::span<const UrelDescEntry> d = src.Descriptor(row);
  dst.desc_entries.insert(dst.desc_entries.end(), d.begin(), d.end());
  dst.desc_offsets.push_back(static_cast<uint32_t>(dst.desc_entries.size()));
}

UrelRelation FreshRelation(const std::string& name, rel::Schema schema) {
  UrelRelation r;
  r.name = name;
  r.schema = std::move(schema);
  r.columns.resize(r.schema.arity());
  return r;
}

/// True when `assignment[pos_of[var]]` matches every entry of `desc`;
/// `vars` is the sorted variable list the assignment is indexed by.
bool DescriptorSatisfied(std::span<const UrelDescEntry> desc,
                         const std::vector<VarId>& vars,
                         const std::vector<uint32_t>& assignment) {
  for (const UrelDescEntry& e : desc) {
    size_t pos = static_cast<size_t>(
        std::lower_bound(vars.begin(), vars.end(), e.var) - vars.begin());
    if (assignment[pos] != e.world) return false;
  }
  return true;
}

/// P(⋃ descs): enumerates the joint assignments of the involved variables
/// only. kUnsupported past the cap.
Result<double> DescriptorUnionProbability(
    const Urel& u, const std::vector<std::span<const UrelDescEntry>>& descs) {
  if (descs.empty()) return 0.0;
  std::vector<VarId> vars;
  for (const auto& d : descs) {
    if (d.empty()) return 1.0;  // a certain duplicate dominates the union
    for (const UrelDescEntry& e : d) vars.push_back(e.var);
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

  uint64_t total = 1;
  for (VarId v : vars) {
    total *= u.Domain(v).size();
    if (total > kAssignmentCap) {
      return Status::Unsupported("descriptor union over " +
                                 std::to_string(vars.size()) +
                                 " variables exceeds the assignment cap");
    }
  }
  std::vector<uint32_t> assignment(vars.size(), 0);
  double prob_union = 0.0;
  for (uint64_t w = 0; w < total; ++w) {
    double p = 1.0;
    for (size_t k = 0; k < vars.size(); ++k) {
      p *= u.Domain(vars[k])[assignment[k]];
    }
    if (p > 0) {
      for (const auto& d : descs) {
        if (DescriptorSatisfied(d, vars, assignment)) {
          prob_union += p;
          break;
        }
      }
    }
    // Odometer: last variable fastest.
    for (size_t k = vars.size(); k-- > 0;) {
      if (++assignment[k] < u.Domain(vars[k]).size()) break;
      assignment[k] = 0;
    }
  }
  return prob_union;
}

/// Hash of one data row (its value ids), for grouping equal tuples.
struct RowKeyHash {
  size_t operator()(const std::vector<UrelValueId>& key) const {
    size_t seed = 0x9e3779b9u;
    for (UrelValueId id : key) HashCombine(seed, static_cast<size_t>(id));
    return seed;
  }
};

/// Groups the relation's rows by data tuple: data ids → row indexes.
std::unordered_map<std::vector<UrelValueId>, std::vector<size_t>, RowKeyHash>
GroupRowsByData(const UrelRelation& r) {
  std::unordered_map<std::vector<UrelValueId>, std::vector<size_t>, RowKeyHash>
      groups;
  std::vector<UrelValueId> key(r.columns.size());
  for (size_t i = 0; i < r.NumRows(); ++i) {
    for (size_t a = 0; a < r.columns.size(); ++a) key[a] = r.columns[a][i];
    groups[key].push_back(i);
  }
  return groups;
}

}  // namespace

void UrelRelation::AppendTuple(std::span<const UrelValueId> values,
                               std::span<const UrelDescEntry> desc) {
  for (size_t a = 0; a < columns.size(); ++a) columns[a].push_back(values[a]);
  tids.push_back(next_tid++);
  desc_entries.insert(desc_entries.end(), desc.begin(), desc.end());
  desc_offsets.push_back(static_cast<uint32_t>(desc_entries.size()));
}

Urel::SymbolTable& Urel::MutableSymbols() {
  // Cow::Mutable privatizes iff shared — and unlike the shared_ptr
  // use_count() probe this replaced, its uniqueness check is a sound
  // synchronization point (acquire probe vs acq_rel releases).
  return symbols_.Mutable();
}

UrelValueId Urel::Intern(const rel::Value& v) {
  auto it = symbols().dict_index.find(v);
  if (it != symbols().dict_index.end()) return it->second;
  SymbolTable& s = MutableSymbols();
  UrelValueId id = static_cast<UrelValueId>(s.dict.size());
  s.dict.push_back(v);
  s.dict_index.emplace(v, id);
  return id;
}

VarId Urel::AddVariable(std::vector<double> probs) {
  SymbolTable& s = MutableSymbols();
  s.vars.push_back(std::move(probs));
  return static_cast<VarId>(s.vars.size() - 1);
}

bool Urel::Contains(const std::string& name) const {
  return relations_.count(name) > 0;
}

std::vector<std::string> Urel::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, r] : relations_) names.push_back(name);
  return names;
}

Result<const UrelRelation*> Urel::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("relation " + name);
  return &it->second.get();
}

Result<UrelRelation*> Urel::GetMutable(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("relation " + name);
  // Per-relation COW break: only this relation stops sharing with forks.
  return &it->second.Mutable();
}

Status Urel::Add(UrelRelation relation) {
  if (relations_.count(relation.name) > 0) {
    return Status::AlreadyExists("relation " + relation.name +
                                 " already exists");
  }
  std::string name = relation.name;
  relations_.emplace(std::move(name), Cow<UrelRelation>(std::move(relation)));
  return Status::Ok();
}

Status Urel::Drop(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation " + name);
  }
  return Status::Ok();
}

void Urel::MaterializeRow(const UrelRelation& r, size_t row,
                          std::vector<rel::Value>& out) const {
  out.resize(r.columns.size());
  for (size_t a = 0; a < r.columns.size(); ++a) {
    out[a] = symbols().dict[r.columns[a][row]];
  }
}

// -- Operators ---------------------------------------------------------------

Status UrelCopy(Urel& u, const std::string& src, const std::string& out) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* s, u.Get(src));
  UrelRelation r = *s;
  r.name = out;
  return u.Add(std::move(r));
}

Status UrelSelectPredicate(Urel& u, const std::string& src,
                           const std::string& out,
                           const rel::Predicate& pred) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* s, u.Get(src));
  std::vector<uint8_t> keep;
  MAYWSD_RETURN_IF_ERROR(EvalPredicateBitmap(u, *s, pred, keep));
  UrelRelation r = FreshRelation(out, s->schema);
  for (size_t i = 0; i < s->NumRows(); ++i) {
    if (keep[i]) CopyTuple(*s, i, r);
  }
  return u.Add(std::move(r));
}

Status UrelSelectConst(Urel& u, const std::string& src, const std::string& out,
                       const std::string& attr, rel::CmpOp op,
                       const rel::Value& constant) {
  return UrelSelectPredicate(u, src, out, rel::Predicate::Cmp(attr, op,
                                                              constant));
}

Status UrelSelectAttrAttr(Urel& u, const std::string& src,
                          const std::string& out, const std::string& attr_a,
                          rel::CmpOp op, const std::string& attr_b) {
  return UrelSelectPredicate(u, src, out,
                             rel::Predicate::CmpAttr(attr_a, op, attr_b));
}

Status UrelProduct(Urel& u, const std::string& left, const std::string& right,
                   const std::string& out) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* l, u.Get(left));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(right));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema, l->schema.Concat(r->schema));
  UrelRelation p = FreshRelation(out, std::move(schema));
  const size_t la = l->columns.size();
  std::vector<UrelValueId> values(p.columns.size());
  std::vector<UrelDescEntry> desc;
  for (size_t i = 0; i < l->NumRows(); ++i) {
    for (size_t a = 0; a < la; ++a) values[a] = l->columns[a][i];
    for (size_t j = 0; j < r->NumRows(); ++j) {
      if (!MergeDescriptors(l->Descriptor(i), r->Descriptor(j), desc)) {
        continue;  // the pair's descriptors conflict: it exists in no world
      }
      for (size_t a = 0; a < r->columns.size(); ++a) {
        values[la + a] = r->columns[a][j];
      }
      p.AppendTuple(values, desc);
    }
  }
  return u.Add(std::move(p));
}

Status UrelJoin(Urel& u, const std::string& left, const std::string& right,
                const std::string& out, const std::string& left_attr,
                const std::string& right_attr) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* l, u.Get(left));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(right));
  auto lcol = l->schema.IndexOf(left_attr);
  auto rcol = r->schema.IndexOf(right_attr);
  if (!lcol) return Status::NotFound("attribute " + left_attr + " not in " +
                                     left);
  if (!rcol) return Status::NotFound("attribute " + right_attr + " not in " +
                                     right);
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema, l->schema.Concat(r->schema));
  UrelRelation p = FreshRelation(out, std::move(schema));

  // Id equality ⟺ value equality: build the hash table on raw ids.
  std::unordered_map<UrelValueId, std::vector<size_t>> build;
  for (size_t j = 0; j < r->NumRows(); ++j) {
    build[r->columns[*rcol][j]].push_back(j);
  }
  const size_t la = l->columns.size();
  std::vector<UrelValueId> values(p.columns.size());
  std::vector<UrelDescEntry> desc;
  for (size_t i = 0; i < l->NumRows(); ++i) {
    auto it = build.find(l->columns[*lcol][i]);
    if (it == build.end()) continue;
    for (size_t a = 0; a < la; ++a) values[a] = l->columns[a][i];
    for (size_t j : it->second) {
      if (!MergeDescriptors(l->Descriptor(i), r->Descriptor(j), desc)) {
        continue;
      }
      for (size_t a = 0; a < r->columns.size(); ++a) {
        values[la + a] = r->columns[a][j];
      }
      p.AppendTuple(values, desc);
    }
  }
  return u.Add(std::move(p));
}

Status UrelUnion(Urel& u, const std::string& left, const std::string& right,
                 const std::string& out) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* l, u.Get(left));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(right));
  if (l->schema != r->schema) {
    return Status::InvalidArgument("union schema mismatch: " + left + " vs " +
                                   right);
  }
  UrelRelation p = FreshRelation(out, l->schema);
  for (size_t i = 0; i < l->NumRows(); ++i) CopyTuple(*l, i, p);
  for (size_t j = 0; j < r->NumRows(); ++j) CopyTuple(*r, j, p);
  return u.Add(std::move(p));
}

Status UrelProject(Urel& u, const std::string& src, const std::string& out,
                   const std::vector<std::string>& attrs) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* s, u.Get(src));
  MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema, s->schema.Project(attrs));
  std::vector<size_t> cols;
  for (const std::string& a : attrs) cols.push_back(*s->schema.IndexOf(a));
  UrelRelation p = FreshRelation(out, std::move(schema));
  std::vector<UrelValueId> values(cols.size());
  for (size_t i = 0; i < s->NumRows(); ++i) {
    for (size_t a = 0; a < cols.size(); ++a) {
      values[a] = s->columns[cols[a]][i];
    }
    p.AppendTuple(values, s->Descriptor(i));
  }
  return u.Add(std::move(p));
}

Status UrelRename(
    Urel& u, const std::string& src, const std::string& out,
    const std::vector<std::pair<std::string, std::string>>& renames) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* s, u.Get(src));
  rel::Schema schema = s->schema;
  for (const auto& [from, to] : renames) {
    MAYWSD_ASSIGN_OR_RETURN(schema, schema.Rename(from, to));
  }
  UrelRelation p = *s;
  p.name = out;
  p.schema = std::move(schema);
  return u.Add(std::move(p));
}

Status UrelDifference(Urel& u, const std::string& left,
                      const std::string& right, const std::string& out) {
  MAYWSD_RETURN_IF_ERROR(RequireAbsent(u, out));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* l, u.Get(left));
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(right));
  if (l->schema != r->schema) {
    return Status::InvalidArgument("difference schema mismatch: " + left +
                                   " vs " + right);
  }
  auto right_groups = GroupRowsByData(*r);
  UrelRelation p = FreshRelation(out, l->schema);
  std::vector<UrelValueId> key(l->columns.size());
  std::vector<UrelDescEntry> desc;
  for (size_t i = 0; i < l->NumRows(); ++i) {
    for (size_t a = 0; a < l->columns.size(); ++a) key[a] = l->columns[a][i];
    auto it = right_groups.find(key);
    if (it == right_groups.end()) {
      CopyTuple(*l, i, p);  // never subtracted
      continue;
    }
    std::span<const UrelDescEntry> mine = l->Descriptor(i);
    // A certain right match subtracts the tuple in every world.
    bool certain_match = false;
    std::vector<std::span<const UrelDescEntry>> matches;
    for (size_t j : it->second) {
      std::span<const UrelDescEntry> d = r->Descriptor(j);
      if (d.empty()) {
        certain_match = true;
        break;
      }
      matches.push_back(d);
    }
    if (certain_match) continue;

    // Expand over the involved variables: the tuple survives in exactly
    // the assignments extending its own descriptor where no matching
    // right descriptor holds.
    std::vector<VarId> vars;
    for (const UrelDescEntry& e : mine) vars.push_back(e.var);
    for (const auto& d : matches) {
      for (const UrelDescEntry& e : d) vars.push_back(e.var);
    }
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());

    uint64_t combos = 1;
    for (VarId v : vars) {
      combos *= u.Domain(v).size();
      if (combos > kAssignmentCap) {
        return Status::Unsupported(
            "difference expansion exceeds the assignment cap on " + left);
      }
    }
    std::vector<uint32_t> assignment(vars.size(), 0);
    for (uint64_t w = 0; w < combos; ++w) {
      if (DescriptorSatisfied(mine, vars, assignment)) {
        bool subtracted = false;
        for (const auto& d : matches) {
          if (DescriptorSatisfied(d, vars, assignment)) {
            subtracted = true;
            break;
          }
        }
        if (!subtracted) {
          desc.clear();
          for (size_t k = 0; k < vars.size(); ++k) {
            desc.push_back(UrelDescEntry{vars[k], assignment[k]});
          }
          p.AppendTuple(key, desc);
        }
      }
      for (size_t k = vars.size(); k-- > 0;) {
        if (++assignment[k] < u.Domain(vars[k]).size()) break;
        assignment[k] = 0;
      }
    }
  }
  return u.Add(std::move(p));
}

Status UrelDrop(Urel& u, const std::string& name) { return u.Drop(name); }

// -- Updates -----------------------------------------------------------------

Status UrelInsert(Urel& u, const std::string& rel,
                  const rel::Relation& tuples) {
  MAYWSD_ASSIGN_OR_RETURN(UrelRelation * r, u.GetMutable(rel));
  if (tuples.arity() != r->schema.arity()) {
    return Status::InvalidArgument("insert arity mismatch on " + rel);
  }
  std::vector<UrelValueId> values(r->columns.size());
  for (size_t i = 0; i < tuples.NumRows(); ++i) {
    rel::TupleRef row = tuples.row(i);
    for (size_t a = 0; a < values.size(); ++a) values[a] = u.Intern(row[a]);
    r->AppendTuple(values, {});
  }
  return Status::Ok();
}

namespace {

/// Shared row-removal core of delete (and nothing else): keeps the rows
/// whose bitmap entry is 0, preserving their TIDs.
void RemoveRows(UrelRelation& r, const std::vector<uint8_t>& remove) {
  UrelRelation kept = FreshRelation(r.name, r.schema);
  kept.next_tid = r.next_tid;
  for (size_t i = 0; i < r.NumRows(); ++i) {
    if (remove[i]) continue;
    for (size_t a = 0; a < r.columns.size(); ++a) {
      kept.columns[a].push_back(r.columns[a][i]);
    }
    kept.tids.push_back(r.tids[i]);
    std::span<const UrelDescEntry> d = r.Descriptor(i);
    kept.desc_entries.insert(kept.desc_entries.end(), d.begin(), d.end());
    kept.desc_offsets.push_back(
        static_cast<uint32_t>(kept.desc_entries.size()));
  }
  r = std::move(kept);
}

}  // namespace

Status UrelDeleteWhere(Urel& u, const std::string& rel,
                       const rel::Predicate& pred) {
  MAYWSD_ASSIGN_OR_RETURN(UrelRelation * r, u.GetMutable(rel));
  std::vector<uint8_t> remove;
  MAYWSD_RETURN_IF_ERROR(EvalPredicateBitmap(u, *r, pred, remove));
  RemoveRows(*r, remove);
  return Status::Ok();
}

Status UrelModifyWhere(Urel& u, const std::string& rel,
                       const rel::Predicate& pred,
                       std::span<const rel::Assignment> assignments) {
  MAYWSD_ASSIGN_OR_RETURN(UrelRelation * r, u.GetMutable(rel));
  std::vector<std::pair<size_t, UrelValueId>> writes;
  for (const rel::Assignment& a : assignments) {
    auto col = r->schema.IndexOf(a.attr);
    if (!col) {
      return Status::NotFound("attribute " + a.attr + " not in " + rel);
    }
    writes.emplace_back(*col, u.Intern(a.value));
  }
  std::vector<uint8_t> hit;
  MAYWSD_RETURN_IF_ERROR(EvalPredicateBitmap(u, *r, pred, hit));
  for (size_t i = 0; i < r->NumRows(); ++i) {
    if (!hit[i]) continue;
    for (const auto& [col, id] : writes) r->columns[col][i] = id;
  }
  return Status::Ok();
}

// -- Answer surface ----------------------------------------------------------

Result<rel::Relation> UrelPossibleTuples(const Urel& u,
                                         const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(relation));
  rel::Relation out(r->schema, "possible_" + relation);
  std::vector<rel::Value> row;
  for (size_t i = 0; i < r->NumRows(); ++i) {
    u.MaterializeRow(*r, i, row);
    out.AppendRow(row);
  }
  out.SortDedup();
  return out;
}

Result<rel::Relation> UrelPossibleTuplesWithConfidence(
    const Urel& u, const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(relation));
  rel::Schema schema = r->schema;
  MAYWSD_RETURN_IF_ERROR(
      schema.AddAttribute(rel::Attribute("conf", rel::AttrType::kDouble)));
  rel::Relation out(schema, "possible_conf_" + relation);
  std::vector<rel::Value> row(schema.arity());
  for (const auto& [key, rows] : GroupRowsByData(*r)) {
    std::vector<std::span<const UrelDescEntry>> descs;
    descs.reserve(rows.size());
    for (size_t i : rows) descs.push_back(r->Descriptor(i));
    MAYWSD_ASSIGN_OR_RETURN(double conf, DescriptorUnionProbability(u, descs));
    for (size_t a = 0; a < key.size(); ++a) row[a] = u.ValueAt(key[a]);
    row[key.size()] = rel::Value::Double(conf);
    out.AppendRow(row);
  }
  out.SortDedup();
  return out;
}

Result<rel::Relation> UrelCertainTuples(const Urel& u,
                                        const std::string& relation) {
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(relation));
  rel::Relation out(r->schema, "certain_" + relation);
  std::vector<rel::Value> row;
  for (const auto& [key, rows] : GroupRowsByData(*r)) {
    std::vector<std::span<const UrelDescEntry>> descs;
    descs.reserve(rows.size());
    for (size_t i : rows) descs.push_back(r->Descriptor(i));
    MAYWSD_ASSIGN_OR_RETURN(double conf, DescriptorUnionProbability(u, descs));
    if (conf < 1.0 - 1e-9) continue;
    row.resize(key.size());
    for (size_t a = 0; a < key.size(); ++a) row[a] = u.ValueAt(key[a]);
    out.AppendRow(row);
  }
  out.SortDedup();
  return out;
}

Result<double> UrelTupleConfidence(const Urel& u, const std::string& relation,
                                   std::span<const rel::Value> tuple) {
  MAYWSD_ASSIGN_OR_RETURN(const UrelRelation* r, u.Get(relation));
  if (tuple.size() != r->schema.arity()) {
    return Status::InvalidArgument("tuple arity mismatch on " + relation);
  }
  std::vector<std::span<const UrelDescEntry>> descs;
  std::vector<rel::Value> row;
  for (size_t i = 0; i < r->NumRows(); ++i) {
    u.MaterializeRow(*r, i, row);
    bool equal = true;
    for (size_t a = 0; a < tuple.size(); ++a) {
      if (!(row[a] == tuple[a])) {
        equal = false;
        break;
      }
    }
    if (equal) descs.push_back(r->Descriptor(i));
  }
  return DescriptorUnionProbability(u, descs);
}

Result<bool> UrelTupleCertain(const Urel& u, const std::string& relation,
                              std::span<const rel::Value> tuple) {
  MAYWSD_ASSIGN_OR_RETURN(double conf, UrelTupleConfidence(u, relation, tuple));
  return conf >= 1.0 - 1e-9;
}

// -- Conversions -------------------------------------------------------------

Result<Urel> ExportUrel(const Wsdt& wsdt) {
  Urel u;
  std::unordered_map<size_t, VarId> var_of_comp;
  for (size_t c : wsdt.LiveComponents()) {
    const Component& comp = wsdt.component(c);
    if (comp.NumFields() == 0) continue;
    std::vector<double> probs(comp.NumWorlds());
    for (size_t w = 0; w < comp.NumWorlds(); ++w) probs[w] = comp.prob(w);
    var_of_comp[c] = u.AddVariable(std::move(probs));
  }

  for (const std::string& name : wsdt.RelationNames()) {
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl_ptr,
                            wsdt.Template(name));
    const rel::Relation& tmpl = *tmpl_ptr;
    Symbol sym = InternString(name);
    UrelRelation r = FreshRelation(name, tmpl.schema());
    std::vector<UrelValueId> values(tmpl.arity());
    std::vector<UrelDescEntry> desc;
    for (size_t row_idx = 0; row_idx < tmpl.NumRows(); ++row_idx) {
      rel::TupleRef row = tmpl.row(row_idx);
      // Covering components of this row's '?' cells: (comp, [(attr, col)]).
      std::vector<std::pair<size_t, std::vector<std::pair<size_t, size_t>>>>
          covers;
      for (size_t a = 0; a < tmpl.arity(); ++a) {
        if (!row[a].is_question()) {
          values[a] = u.Intern(row[a]);
          continue;
        }
        MAYWSD_ASSIGN_OR_RETURN(
            FieldLoc loc,
            wsdt.Locate(FieldKey(sym, static_cast<TupleId>(row_idx),
                                 tmpl.schema().attr(a).name)));
        size_t comp = static_cast<size_t>(loc.comp);
        auto it = std::find_if(covers.begin(), covers.end(),
                               [comp](const auto& c) {
                                 return c.first == comp;
                               });
        if (it == covers.end()) {
          covers.push_back({comp, {{a, static_cast<size_t>(loc.col)}}});
        } else {
          it->second.push_back({a, static_cast<size_t>(loc.col)});
        }
      }
      if (covers.empty()) {
        r.AppendTuple(values, {});
        continue;
      }
      uint64_t combos = 1;
      for (const auto& [comp, cells] : covers) {
        combos *= wsdt.component(comp).NumWorlds();
        if (combos > kAssignmentCap) {
          return Status::InvalidArgument(
              "ExportUrel: row expansion exceeds the assignment cap on " +
              name);
        }
      }
      std::vector<size_t> digits(covers.size(), 0);
      for (uint64_t w = 0; w < combos; ++w) {
        bool absent = false;
        for (size_t k = 0; k < covers.size() && !absent; ++k) {
          const Component& comp = wsdt.component(covers[k].first);
          for (const auto& [a, col] : covers[k].second) {
            const rel::Value& v = comp.at(digits[k], col);
            if (v.is_bottom()) {
              absent = true;  // the tuple does not exist in these worlds
              break;
            }
            values[a] = u.Intern(v);
          }
        }
        if (!absent) {
          desc.clear();
          for (size_t k = 0; k < covers.size(); ++k) {
            desc.push_back(UrelDescEntry{
                var_of_comp.at(covers[k].first),
                static_cast<uint32_t>(digits[k])});
          }
          std::sort(desc.begin(), desc.end(),
                    [](const UrelDescEntry& x, const UrelDescEntry& y) {
                      return x.var < y.var;
                    });
          r.AppendTuple(values, desc);
        }
        for (size_t k = covers.size(); k-- > 0;) {
          if (++digits[k] < wsdt.component(covers[k].first).NumWorlds()) break;
          digits[k] = 0;
        }
      }
    }
    MAYWSD_RETURN_IF_ERROR(u.Add(std::move(r)));
  }
  return u;
}

namespace {

/// Union-find over variables; path-halving find.
class VarUnionFind {
 public:
  explicit VarUnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<VarId>(i);
  }
  VarId Find(VarId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(VarId a, VarId b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<VarId> parent_;
};

}  // namespace

Result<Wsdt> ImportUrel(const Urel& u) {
  VarUnionFind uf(u.NumVariables());
  std::vector<bool> used(u.NumVariables(), false);
  for (const std::string& name : u.Names()) {
    const UrelRelation& r = **u.Get(name);
    for (size_t i = 0; i < r.NumRows(); ++i) {
      std::span<const UrelDescEntry> d = r.Descriptor(i);
      for (const UrelDescEntry& e : d) {
        used[e.var] = true;
        uf.Union(d[0].var, e.var);
      }
    }
  }

  // One component column request per conditional tuple, grouped by the
  // tuple's variable group.
  struct ColumnReq {
    Symbol rel;
    TupleId tid;
    Symbol attr;
    UrelValueId head;
    std::vector<UrelDescEntry> desc;
  };
  std::unordered_map<VarId, std::vector<ColumnReq>> reqs;

  Wsdt wsdt;
  for (const std::string& name : u.Names()) {
    const UrelRelation& r = **u.Get(name);
    Symbol sym = InternString(name);
    rel::Relation tmpl(r.schema, name);
    std::vector<rel::Value> row;
    for (size_t i = 0; i < r.NumRows(); ++i) {
      u.MaterializeRow(r, i, row);
      std::span<const UrelDescEntry> d = r.Descriptor(i);
      if (d.empty()) {
        tmpl.AppendRow(row);
        continue;
      }
      if (r.schema.arity() == 0) {
        return Status::InvalidArgument(
            "ImportUrel: conditional tuple in zero-arity relation " + name);
      }
      TupleId tid = static_cast<TupleId>(tmpl.NumRows());
      row[0] = rel::Value::Question();
      tmpl.AppendRow(row);
      reqs[uf.Find(d[0].var)].push_back(
          ColumnReq{sym, tid, r.schema.attr(0).name, r.columns[0][i],
                    std::vector<UrelDescEntry>(d.begin(), d.end())});
    }
    MAYWSD_RETURN_IF_ERROR(wsdt.AddTemplateRelation(std::move(tmpl)));
  }

  // Build one component per used variable group: its local worlds are the
  // group's joint assignments (last member fastest), each column holding
  // the tuple's head value in satisfying assignments and ⊥ elsewhere.
  std::unordered_map<VarId, std::vector<VarId>> groups;
  for (VarId v = 0; v < u.NumVariables(); ++v) {
    if (used[v]) groups[uf.Find(v)].push_back(v);
  }
  for (auto& [root, members] : groups) {
    std::sort(members.begin(), members.end());
    auto req_it = reqs.find(root);
    if (req_it == reqs.end()) continue;
    const std::vector<ColumnReq>& group_reqs = req_it->second;

    uint64_t total = 1;
    for (VarId v : members) {
      total *= u.Domain(v).size();
      if (total > kAssignmentCap) {
        return Status::InvalidArgument(
            "ImportUrel: variable group exceeds the assignment cap");
      }
    }
    std::vector<FieldKey> fields;
    fields.reserve(group_reqs.size());
    for (const ColumnReq& req : group_reqs) {
      fields.emplace_back(req.rel, req.tid, req.attr);
    }
    Component comp(std::move(fields));
    std::vector<uint32_t> assignment(members.size(), 0);
    std::vector<rel::Value> world_values(group_reqs.size());
    for (uint64_t w = 0; w < total; ++w) {
      double p = 1.0;
      for (size_t k = 0; k < members.size(); ++k) {
        p *= u.Domain(members[k])[assignment[k]];
      }
      for (size_t c = 0; c < group_reqs.size(); ++c) {
        world_values[c] =
            DescriptorSatisfied(group_reqs[c].desc, members, assignment)
                ? u.ValueAt(group_reqs[c].head)
                : rel::Value::Bottom();
      }
      comp.AddWorld(world_values, p);
      for (size_t k = members.size(); k-- > 0;) {
        if (++assignment[k] < u.Domain(members[k]).size()) break;
        assignment[k] = 0;
      }
    }
    MAYWSD_RETURN_IF_ERROR(wsdt.AddComponent(std::move(comp)));
  }
  return wsdt;
}

Status ValidateUrel(const Urel& u) {
  for (VarId v = 0; v < u.NumVariables(); ++v) {
    const std::vector<double>& probs = u.Domain(v);
    if (probs.empty()) {
      return Status::InvalidArgument("variable x" + std::to_string(v) +
                                     " has an empty domain");
    }
    double sum = 0.0;
    for (double p : probs) {
      if (p < -kProbEpsilon || p > 1.0 + kProbEpsilon) {
        return Status::InvalidArgument("variable x" + std::to_string(v) +
                                       " has an out-of-range probability");
      }
      sum += p;
    }
    if (sum < 1.0 - kProbEpsilon || sum > 1.0 + kProbEpsilon) {
      return Status::InvalidArgument("variable x" + std::to_string(v) +
                                     " probabilities sum to " +
                                     std::to_string(sum));
    }
  }
  for (const std::string& name : u.Names()) {
    const UrelRelation& r = **u.Get(name);
    if (r.columns.size() != r.schema.arity()) {
      return Status::InvalidArgument("relation " + name +
                                     " column/schema arity mismatch");
    }
    const size_t rows = r.NumRows();
    for (const std::vector<UrelValueId>& col : r.columns) {
      if (col.size() != rows) {
        return Status::InvalidArgument("relation " + name +
                                       " has ragged columns");
      }
      for (UrelValueId id : col) {
        if (id >= u.DictionarySize()) {
          return Status::InvalidArgument("relation " + name +
                                         " references an unknown value id");
        }
        const rel::Value& v = u.ValueAt(id);
        if (v.is_bottom() || v.is_question()) {
          return Status::InvalidArgument("relation " + name +
                                         " stores a ⊥ or '?' value");
        }
      }
    }
    if (r.desc_offsets.size() != rows + 1 || r.desc_offsets.front() != 0 ||
        r.desc_offsets.back() != r.desc_entries.size()) {
      return Status::InvalidArgument("relation " + name +
                                     " has a corrupt descriptor index");
    }
    std::unordered_set<int64_t> seen_tids;
    for (int64_t tid : r.tids) {
      if (tid < 0 || tid >= r.next_tid || !seen_tids.insert(tid).second) {
        return Status::InvalidArgument("relation " + name +
                                       " has invalid or duplicate TIDs");
      }
    }
    for (size_t i = 0; i < rows; ++i) {
      if (r.desc_offsets[i] > r.desc_offsets[i + 1]) {
        return Status::InvalidArgument("relation " + name +
                                       " has a non-monotone descriptor index");
      }
      std::span<const UrelDescEntry> d = r.Descriptor(i);
      for (size_t k = 0; k < d.size(); ++k) {
        if (d[k].var >= u.NumVariables()) {
          return Status::InvalidArgument("relation " + name +
                                         " references an unknown variable");
        }
        if (d[k].world >= u.Domain(d[k].var).size()) {
          return Status::InvalidArgument(
              "relation " + name + " references an out-of-domain value");
        }
        if (k > 0 && d[k - 1].var >= d[k].var) {
          return Status::InvalidArgument("relation " + name +
                                         " has a non-canonical descriptor");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace maywsd::core
