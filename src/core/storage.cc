#include "core/storage.h"

#include <filesystem>
#include <fstream>

#include "core/uniform.h"
#include "rel/csv.h"

namespace maywsd::core {

namespace fs = std::filesystem;

Status SaveWsdt(const Wsdt& wsdt, const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory " + directory +
                                   ": " + ec.message());
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Database db, ExportUniform(wsdt));
  std::ofstream manifest(directory + "/MANIFEST");
  if (!manifest) {
    return Status::InvalidArgument("cannot write manifest in " + directory);
  }
  for (const std::string& name : db.Names()) {
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* rel, db.GetRelation(name));
    MAYWSD_RETURN_IF_ERROR(
        rel::WriteCsvFile(*rel, directory + "/" + name + ".csv"));
    if (name != kUniformC && name != kUniformF && name != kUniformW) {
      manifest << name << "\n";
    }
  }
  return Status::Ok();
}

Result<Wsdt> LoadWsdt(const std::string& directory) {
  std::ifstream manifest(directory + "/MANIFEST");
  if (!manifest) {
    return Status::NotFound("no MANIFEST in " + directory);
  }
  std::vector<std::string> templates;
  std::string line;
  while (std::getline(manifest, line)) {
    if (!line.empty()) templates.push_back(line);
  }
  rel::Database db;
  for (const std::string& name : templates) {
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Relation rel,
        rel::ReadCsvFile(directory + "/" + name + ".csv", name));
    MAYWSD_RETURN_IF_ERROR(db.AddRelation(std::move(rel)));
  }
  for (const char* name : {kUniformC, kUniformF, kUniformW}) {
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Relation rel,
        rel::ReadCsvFile(directory + "/" + std::string(name) + ".csv",
                         name));
    MAYWSD_RETURN_IF_ERROR(db.AddRelation(std::move(rel)));
  }
  return ImportUniform(db, templates);
}

}  // namespace maywsd::core
