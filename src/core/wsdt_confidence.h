// Confidence computation and possible-tuple queries on WSDTs/UWSDTs —
// the Section 6 operators on the template-based representation, without
// expanding certain fields into singleton components.
//
// Fully-certain template rows short-circuit (confidence 1 / always
// possible); only rows with placeholders touch components, so these run at
// census scale where Wsd-level confidence would first materialize millions
// of singleton components.
//
// These free functions are the WSDT implementation behind the engine's
// answer surface (WorldSetOps::PossibleTuples/CertainTuples/…) — the
// uniform backend delegates here too after importing its store; callers
// that do not already hold a bare Wsdt should go through api::Session.

#ifndef MAYWSD_CORE_WSDT_CONFIDENCE_H_
#define MAYWSD_CORE_WSDT_CONFIDENCE_H_

#include <span>
#include <string>

#include "common/status.h"
#include "rel/relation.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// conf(t) on a WSDT: probability that `tuple` ∈ `relation`.
Result<double> WsdtTupleConfidence(const Wsdt& wsdt,
                                   const std::string& relation,
                                   std::span<const rel::Value> tuple);

/// possible(R) on a WSDT.
Result<rel::Relation> WsdtPossibleTuples(const Wsdt& wsdt,
                                         const std::string& relation);

/// possibleᵖ(R) on a WSDT: possible tuples with a trailing "conf" column.
Result<rel::Relation> WsdtPossibleTuplesWithConfidence(
    const Wsdt& wsdt, const std::string& relation);

/// certain(t) on a WSDT: true iff conf(t) = 1 (t occurs in every world).
Result<bool> WsdtTupleCertain(const Wsdt& wsdt, const std::string& relation,
                              std::span<const rel::Value> tuple);

/// certain(R) on a WSDT: the tuples occurring in every world — the
/// consistent answers of Section 10, without expanding certain fields.
Result<rel::Relation> WsdtCertainTuples(const Wsdt& wsdt,
                                        const std::string& relation);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSDT_CONFIDENCE_H_
