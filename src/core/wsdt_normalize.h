// Normalization on WSDTs/UWSDTs — Section 7 applied to the practical
// template-based representation:
//
//   * compress duplicate local worlds (Figure 20(c));
//   * promote certain placeholders: a component column whose value is the
//     same in every local world moves into the template (the inverse of
//     noise injection; keeps |C| minimal);
//   * remove invalid template rows: a row whose placeholder is ⊥ in every
//     local world exists in no world (Figure 20(a)); removal renumbers
//     tuple ids and remaps component fields;
//   * decompose components into prime factors (Figure 20(b)).

#ifndef MAYWSD_CORE_WSDT_NORMALIZE_H_
#define MAYWSD_CORE_WSDT_NORMALIZE_H_

#include <string>

#include "common/status.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// Figure 20(c): merges duplicate local worlds in every component.
Status WsdtCompressComponents(Wsdt& wsdt);

/// Moves constant component columns into the template ('?' → value).
/// Zero-column components disappear.
Status WsdtPromoteCertainFields(Wsdt& wsdt);

/// Figure 20(a): removes template rows invalid in all worlds. Tuple ids
/// are renumbered; component fields are remapped accordingly.
Status WsdtRemoveInvalidRows(Wsdt& wsdt);

/// Figure 20(b): replaces every component by its prime factorization.
Status WsdtDecomposeComponents(Wsdt& wsdt);

/// Full pipeline: compress → promote → remove invalid rows → decompose →
/// compact.
Status WsdtNormalize(Wsdt& wsdt);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSDT_NORMALIZE_H_
