// U-relations: the columnar world-set representation of the authors'
// follow-up work ("Fast and Simple Relational Processing of Uncertain
// Data" — see PAPERS.md).
//
// Where a WSDT keeps uncertainty in components composed on demand, a
// U-relation annotates every tuple with a *world-set descriptor*: a
// conjunction of (variable = domain-value) assignments over independent
// finite random variables. A tuple exists exactly in the worlds whose
// total assignment satisfies its descriptor; an empty descriptor means the
// tuple is certain. The payoff is structural: every positive relational
// algebra operator is a pure relational rewriting — selections filter
// rows, products/joins concatenate descriptors (dropping pairs whose
// descriptors assign one variable two values), unions and projections
// copy descriptors verbatim. No component composition, no representation
// round trips.
//
// The store is columnar: per relation, one structure-of-arrays value
// vector per attribute holding ids into a store-wide interned value
// dictionary, a TID column (stable across deletes, like core/uniform's
// __TID), and the descriptors in CSR layout. Descriptors are canonical —
// sorted by variable, one assignment per variable.
//
// ExportUrel/ImportUrel convert ⇄ WSDT (components become variables and
// vice versa), plugging the representation into the existing
// cross-backend machinery; engine/urel_backend.h adapts the store to the
// WorldSetOps contract.

#ifndef MAYWSD_CORE_UREL_H_
#define MAYWSD_CORE_UREL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cow.h"
#include "common/status.h"
#include "rel/predicate.h"
#include "rel/relation.h"
#include "rel/update.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// Index of an independent finite random variable of a Urel store.
using VarId = uint32_t;
/// Index into a Urel store's interned value dictionary.
using UrelValueId = uint32_t;

/// One conjunct of a world-set descriptor: variable `var` takes domain
/// value `world` (an index into the variable's probability vector).
struct UrelDescEntry {
  VarId var = 0;
  uint32_t world = 0;

  bool operator==(const UrelDescEntry& o) const {
    return var == o.var && world == o.world;
  }
};

/// One columnar relation: per-attribute value-id vectors, a stable TID
/// column, and per-tuple world-set descriptors in CSR layout.
struct UrelRelation {
  std::string name;
  rel::Schema schema;
  /// columns[a][row] — column-major value ids, one vector per attribute.
  std::vector<std::vector<UrelValueId>> columns;
  /// Stable tuple ids; deletes remove rows without renumbering survivors.
  std::vector<int64_t> tids;
  /// CSR descriptor index: tuple `row`'s descriptor is
  /// desc_entries[desc_offsets[row] .. desc_offsets[row + 1]).
  std::vector<uint32_t> desc_offsets = {0};
  std::vector<UrelDescEntry> desc_entries;
  int64_t next_tid = 0;

  size_t NumRows() const { return tids.size(); }

  std::span<const UrelDescEntry> Descriptor(size_t row) const {
    return std::span<const UrelDescEntry>(
        desc_entries.data() + desc_offsets[row],
        desc_offsets[row + 1] - desc_offsets[row]);
  }

  /// Appends one tuple; `desc` must be canonical (sorted by var, unique).
  void AppendTuple(std::span<const UrelValueId> values,
                   std::span<const UrelDescEntry> desc);
};

/// A U-relational database: the variable table (each variable's domain is
/// the index range of its probability vector), the interned value
/// dictionary shared by all relations, and the relation catalog.
class Urel {
 public:
  Urel() : symbols_(SymbolTable{}) {}

  // -- Value dictionary -------------------------------------------------------

  /// Interns `v`, returning its stable id (injective modulo Value
  /// equality). ⊥ and '?' are rejected by the operators, not here.
  /// Interning a value already in the dictionary is a read-only lookup;
  /// only a genuinely new value privatizes a shared symbol table.
  UrelValueId Intern(const rel::Value& v);

  const rel::Value& ValueAt(UrelValueId id) const {
    return symbols().dict[id];
  }
  size_t DictionarySize() const { return symbols().dict.size(); }

  // -- Variables --------------------------------------------------------------

  /// Registers an independent variable with the given domain-value
  /// probabilities (must sum to 1; validated by ValidateUrel).
  VarId AddVariable(std::vector<double> probs);

  size_t NumVariables() const { return symbols().vars.size(); }
  const std::vector<double>& Domain(VarId var) const {
    return symbols().vars[var];
  }

  // -- Symbol-table sharing ---------------------------------------------------
  //
  // The dictionary and the variable table live behind one refcounted,
  // copy-on-write table (common::Cow, whose shared-or-unique probe is a
  // genuine acquire/release synchronization point): copying a Urel (and
  // shard slices built via ShareSymbolsFrom, and sessions pinned via
  // Snapshot()/Fork()) share it, so dictionary ids and VarIds transfer
  // verbatim between sharers; the first divergent Intern/AddVariable
  // privatizes. Ids are append-only, so ids minted before a split stay
  // valid in every sharer.

  /// Makes this store share `other`'s symbol table (this store's
  /// dictionary and variables must not be referenced by its relations —
  /// typically a freshly constructed slice).
  void ShareSymbolsFrom(const Urel& other) { symbols_ = other.symbols_; }

  /// True while both stores still reference the same symbol table, i.e.
  /// value ids and variable ids agree verbatim.
  bool SharesSymbolsWith(const Urel& other) const {
    return symbols_.SharesWith(other.symbols_);
  }

  // -- Catalog ----------------------------------------------------------------
  //
  // Relations are held behind per-relation copy-on-write handles: copying
  // a Urel shares every relation's columns/TIDs/CSR descriptors in O(1),
  // and GetMutable breaks sharing for that relation only. Raw pointers
  // returned by Get/GetMutable are valid until the catalog entry is
  // dropped or (for Get) the relation is next privatized — do not hold
  // them across a session-lock release.

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;
  Result<const UrelRelation*> Get(const std::string& name) const;
  Result<UrelRelation*> GetMutable(const std::string& name);
  Status Add(UrelRelation relation);
  Status Drop(const std::string& name);

  /// Materializes row `row` of `r` as engine values.
  void MaterializeRow(const UrelRelation& r, size_t row,
                      std::vector<rel::Value>& out) const;

 private:
  struct SymbolTable {
    std::vector<rel::Value> dict;
    std::unordered_map<rel::Value, UrelValueId> dict_index;
    std::vector<std::vector<double>> vars;
  };

  /// The symbol table, privatized for writing (copied when shared).
  SymbolTable& MutableSymbols();
  const SymbolTable& symbols() const { return symbols_.get(); }

  Cow<SymbolTable> symbols_;
  std::map<std::string, Cow<UrelRelation>> relations_;
};

// -- Figure 9 operator core as pure columnar rewritings ----------------------
//
// Every operator extends the store with a fresh relation `out` (which must
// not exist yet), mirroring the WorldSetOps contract. Descriptors are
// copied or merged; no operator composes probabilities.

/// out := src (descriptors copied verbatim — the copy stays correlated
/// with its source through the shared variables).
Status UrelCopy(Urel& u, const std::string& src, const std::string& out);

/// out := σ_pred(src) for an arbitrary predicate tree, evaluated
/// vectorized: constant comparisons are memoized per dictionary id, so a
/// column of k distinct values costs k comparisons regardless of rows.
Status UrelSelectPredicate(Urel& u, const std::string& src,
                           const std::string& out, const rel::Predicate& pred);

/// out := σ_{attr θ c}(src).
Status UrelSelectConst(Urel& u, const std::string& src, const std::string& out,
                       const std::string& attr, rel::CmpOp op,
                       const rel::Value& constant);

/// out := σ_{a θ b}(src).
Status UrelSelectAttrAttr(Urel& u, const std::string& src,
                          const std::string& out, const std::string& attr_a,
                          rel::CmpOp op, const std::string& attr_b);

/// out := left × right: data columns concatenated, descriptors merged;
/// pairs whose descriptors assign one variable two different values exist
/// in no world and are dropped.
Status UrelProduct(Urel& u, const std::string& left, const std::string& right,
                   const std::string& out);

/// out := left ⋈_{left_attr = right_attr} right — the fused σ(×) hash
/// join, probing on dictionary ids (id equality ⟺ value equality).
Status UrelJoin(Urel& u, const std::string& left, const std::string& right,
                const std::string& out, const std::string& left_attr,
                const std::string& right_attr);

/// out := left ∪ right (schemas must match; descriptors copied).
Status UrelUnion(Urel& u, const std::string& left, const std::string& right,
                 const std::string& out);

/// out := π_attrs(src): column subset, descriptors verbatim (a U-relation
/// has no ⊥-carrying placeholders, so projection never composes).
Status UrelProject(Urel& u, const std::string& src, const std::string& out,
                   const std::vector<std::string>& attrs);

/// out := δ(src) for every (from, to) pair.
Status UrelRename(
    Urel& u, const std::string& src, const std::string& out,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// out := left − right. Not positive RA: a left tuple matched by uncertain
/// right tuples is expanded over the assignments of the involved variables
/// (kept where no matching right descriptor is satisfied). Returns
/// kUnsupported when that expansion exceeds an internal cap — callers
/// fall back to the template semantics.
Status UrelDifference(Urel& u, const std::string& left,
                      const std::string& right, const std::string& out);

/// Removes a relation (variables and dictionary entries are shared and
/// stay).
Status UrelDrop(Urel& u, const std::string& name);

// -- Native update fragment ---------------------------------------------------
//
// With no '?' cells and no ⊥, the whole unconditional update surface is a
// pure row rewriting: predicates always decide on concrete data.
// World-conditional mutations compose with the guard's variables and take
// the established one-round-trip fallback in the backend instead.

/// Appends `tuples` (a fully certain instance) with empty descriptors
/// under fresh TIDs — insert-in-every-world.
Status UrelInsert(Urel& u, const std::string& rel, const rel::Relation& tuples);

/// delete from `rel` where `pred`: matching rows are removed outright (a
/// tuple satisfying `pred` is deleted in every world it exists in).
Status UrelDeleteWhere(Urel& u, const std::string& rel,
                       const rel::Predicate& pred);

/// update `rel` set `assignments` where `pred`: matching rows' cells are
/// rewritten in place; descriptors are untouched.
Status UrelModifyWhere(Urel& u, const std::string& rel,
                       const rel::Predicate& pred,
                       std::span<const rel::Assignment> assignments);

// -- Answer surface (Section 6) via descriptor-aware aggregation --------------

/// possible(R): the distinct data tuples (every stored tuple's descriptor
/// is satisfiable by construction).
Result<rel::Relation> UrelPossibleTuples(const Urel& u,
                                         const std::string& relation);

/// possibleᵖ(R): possible tuples with a trailing "conf" column.
Result<rel::Relation> UrelPossibleTuplesWithConfidence(
    const Urel& u, const std::string& relation);

/// certain(R): tuples whose descriptor-union probability is 1.
Result<rel::Relation> UrelCertainTuples(const Urel& u,
                                        const std::string& relation);

/// conf(t): probability of the union of the worlds selected by the
/// descriptors of the tuples equal to `tuple` — computed by enumerating
/// assignments of the involved variables only.
Result<double> UrelTupleConfidence(const Urel& u, const std::string& relation,
                                   std::span<const rel::Value> tuple);

/// certain(t): true iff conf(t) = 1.
Result<bool> UrelTupleCertain(const Urel& u, const std::string& relation,
                              std::span<const rel::Value> tuple);

// -- Conversions ⇄ WSDT -------------------------------------------------------

/// Encodes a WSDT as a U-relational store: every live component becomes a
/// variable (local worlds → domain values), every template row expands
/// into one tuple per combination of its covering components' local
/// worlds (combinations where a covered cell is ⊥ encode absence and emit
/// nothing); certain rows become certain tuples.
Result<Urel> ExportUrel(const Wsdt& wsdt);

/// Rebuilds a WSDT: variables co-occurring in a descriptor are grouped
/// (union-find) and each used group becomes one component whose local
/// worlds are the group's joint assignments; a conditional tuple becomes a
/// template row whose first attribute is a '?' backed by a component
/// column holding the value in satisfying assignments and ⊥ elsewhere.
Result<Wsdt> ImportUrel(const Urel& u);

/// Structural integrity: column lengths agree with the TID column,
/// dictionary ids are in range and materialize to concrete values (no ⊥,
/// no '?'), TIDs are unique and below next_tid, descriptors are canonical
/// (sorted by var, unique) with in-range variables and domain values, and
/// every variable's probabilities sum to 1 (within kProbEpsilon).
Status ValidateUrel(const Urel& u);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_UREL_H_
