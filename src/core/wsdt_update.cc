#include "core/wsdt_update.h"

#include <algorithm>
#include <optional>
#include <set>
#include <utility>

#include "core/wsdt_algebra.h"

namespace maywsd::core {

namespace {

/// Composes every component of `comps` into `target` (skipping target
/// itself); `target` stays alive and keeps its index. Returns whether any
/// composition happened (the caller's cached guard bitmap stays valid
/// otherwise).
Result<bool> ComposeInto(Wsdt& wsdt, size_t target,
                         const std::set<int32_t>& comps) {
  bool composed = false;
  for (int32_t c : comps) {
    if (static_cast<size_t>(c) == target) continue;
    MAYWSD_RETURN_IF_ERROR(
        wsdt.ComposeInPlace(target, static_cast<size_t>(c)));
    composed = true;
  }
  return composed;
}

/// First '?' column index of a template row, or nullopt.
std::optional<size_t> FirstPlaceholder(rel::TupleRef row) {
  for (size_t a = 0; a < row.arity(); ++a) {
    if (row[a].is_question()) return a;
  }
  return std::nullopt;
}

}  // namespace

Result<std::vector<std::vector<FieldKey>>> GuardSlotCandidates(
    const Wsdt& wsdt, const std::string& guard_rel) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl_ptr,
                          wsdt.Template(guard_rel));
  const rel::Relation& tmpl = *tmpl_ptr;
  Symbol sym = InternString(guard_rel);

  std::vector<std::vector<FieldKey>> rows;
  rows.reserve(tmpl.NumRows());
  for (size_t r = 0; r < tmpl.NumRows(); ++r) {
    rel::TupleRef row = tmpl.row(r);
    std::vector<FieldKey> fields;
    for (size_t a = 0; a < tmpl.arity(); ++a) {
      if (!row[a].is_question()) continue;
      fields.emplace_back(sym, static_cast<TupleId>(r),
                          tmpl.schema().attr(a).name);
    }
    // A row without placeholders stays: its empty candidate list tells the
    // shared analysis the guard is certainly non-empty.
    rows.push_back(std::move(fields));
  }
  return rows;
}

Status WsdtInsertTuples(Wsdt& wsdt, const std::string& rel,
                        const rel::Relation& tuples,
                        const WsdtUpdateGuard& guard) {
  if (guard.mode() == WsdtUpdateGuard::Mode::kNever) return Status::Ok();
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation * tmpl, wsdt.MutableTemplate(rel));
  if (tuples.arity() != tmpl->arity()) {
    return Status::InvalidArgument("insert arity mismatch on " + rel);
  }
  Symbol rel_sym = InternString(rel);

  if (guard.mode() == WsdtUpdateGuard::Mode::kAlways) {
    for (size_t r = 0; r < tuples.NumRows(); ++r) {
      tmpl->AppendRow(tuples.row(r).span());
    }
    return Status::Ok();
  }

  // Conditional presence: the first attribute becomes a placeholder whose
  // component column (in the guard component) holds the value in selected
  // worlds and ⊥ elsewhere.
  MAYWSD_ASSIGN_OR_RETURN(std::vector<bool> selected, guard.Selected(wsdt));
  for (size_t r = 0; r < tuples.NumRows(); ++r) {
    TupleId tid = static_cast<TupleId>(tmpl->NumRows());
    std::vector<rel::Value> row = tuples.row(r).ToRow();
    rel::Value head = row[0];
    row[0] = rel::Value::Question();
    tmpl->AppendRow(row);
    std::vector<rel::Value> column(selected.size());
    for (size_t w = 0; w < selected.size(); ++w) {
      column[w] = selected[w] ? head : rel::Value::Bottom();
    }
    MAYWSD_RETURN_IF_ERROR(wsdt.AddColumnToComponent(
        guard.comp(), FieldKey(rel_sym, tid, tmpl->schema().attr(0).name),
        column));
  }
  return Status::Ok();
}

Status WsdtDeleteWhere(Wsdt& wsdt, const std::string& rel,
                       const rel::Predicate& pred,
                       const WsdtUpdateGuard& guard) {
  if (guard.mode() == WsdtUpdateGuard::Mode::kNever) return Status::Ok();
  const bool conditional =
      guard.mode() == WsdtUpdateGuard::Mode::kConditional;
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation * tmpl, wsdt.MutableTemplate(rel));
  const rel::Schema schema = tmpl->schema();
  Symbol rel_sym = InternString(rel);

  std::vector<std::string> ref_attrs = pred.ReferencedAttributes();
  std::sort(ref_attrs.begin(), ref_attrs.end());
  ref_attrs.erase(std::unique(ref_attrs.begin(), ref_attrs.end()),
                  ref_attrs.end());
  for (const std::string& a : ref_attrs) {
    if (!schema.Contains(a)) {
      return Status::NotFound("predicate attribute " + a + " not in " + rel);
    }
  }

  // The guard's selection bitmap only changes when a composition grows the
  // guard component's local-world set; recompute it lazily instead of per
  // row.
  std::vector<bool> selected;
  bool selected_valid = false;
  auto refresh_selected = [&]() -> Status {
    if (!selected_valid) {
      MAYWSD_ASSIGN_OR_RETURN(selected, guard.Selected(wsdt));
      selected_valid = true;
    }
    return Status::Ok();
  };

  const size_t num_rows = tmpl->NumRows();
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<rel::Value> old_row = tmpl->row(r).ToRow();
    rel::TupleRef row_ref(old_row.data(), old_row.size());
    MAYWSD_ASSIGN_OR_RETURN(Tri tri,
                            TriEvalPredicate(pred, schema, row_ref));
    if (tri == Tri::kFalse) continue;

    if (tri == Tri::kTrue) {
      std::optional<size_t> mark = FirstPlaceholder(row_ref);
      if (!conditional) {
        // Delete the tuple in every world: make one column all-⊥ (the
        // tuple exists in no world; template rows are never removed, so
        // tuple ids of later rows stay stable).
        if (mark) {
          FieldKey f(rel_sym, static_cast<TupleId>(r),
                     schema.attr(*mark).name);
          MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
          Component& comp = wsdt.mutable_component(loc.comp);
          size_t col = static_cast<size_t>(loc.col);
          for (size_t w = 0; w < comp.NumWorlds(); ++w) {
            comp.at(w, col) = rel::Value::Bottom();
          }
          comp.PropagateBottom();
        } else {
          FieldKey f(rel_sym, static_cast<TupleId>(r), schema.attr(0).name);
          tmpl->SetCell(r, 0, rel::Value::Question());
          MAYWSD_RETURN_IF_ERROR(
              wsdt.AddFieldComponent(f, {rel::Value::Bottom()}, {1.0}));
        }
        continue;
      }
      // Conditional certain match: delete exactly in the selected worlds.
      if (mark) {
        FieldKey f(rel_sym, static_cast<TupleId>(r),
                   schema.attr(*mark).name);
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
        if (static_cast<size_t>(loc.comp) != guard.comp()) {
          MAYWSD_RETURN_IF_ERROR(wsdt.ComposeInPlace(
              guard.comp(), static_cast<size_t>(loc.comp)));
          MAYWSD_ASSIGN_OR_RETURN(loc, wsdt.Locate(f));
          selected_valid = false;
        }
        MAYWSD_RETURN_IF_ERROR(refresh_selected());
        Component& comp = wsdt.mutable_component(guard.comp());
        size_t col = static_cast<size_t>(loc.col);
        for (size_t w = 0; w < comp.NumWorlds(); ++w) {
          if (selected[w]) comp.at(w, col) = rel::Value::Bottom();
        }
        comp.PropagateBottom();
      } else {
        MAYWSD_RETURN_IF_ERROR(refresh_selected());
        FieldKey f(rel_sym, static_cast<TupleId>(r), schema.attr(0).name);
        tmpl->SetCell(r, 0, rel::Value::Question());
        std::vector<rel::Value> column(selected.size());
        for (size_t w = 0; w < selected.size(); ++w) {
          column[w] = selected[w] ? rel::Value::Bottom() : old_row[0];
        }
        MAYWSD_RETURN_IF_ERROR(
            wsdt.AddColumnToComponent(guard.comp(), f, column));
      }
      continue;
    }

    // Unknown: compose the components of the referenced placeholders (and
    // the guard component), then ⊥-mark the local worlds where the
    // predicate holds and the world is selected — WsdtSelect's unknown
    // path, inverted in place.
    std::set<int32_t> comps;
    std::vector<std::string> unknown_attrs;
    for (const std::string& a : ref_attrs) {
      auto idx = schema.IndexOf(a);
      if (!idx || !row_ref[*idx].is_question()) continue;
      unknown_attrs.push_back(a);
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsdt.Locate(FieldKey(rel_sym, static_cast<TupleId>(r),
                                             InternString(a))));
      comps.insert(loc.comp);
    }
    size_t target = conditional ? guard.comp()
                                : static_cast<size_t>(*comps.begin());
    MAYWSD_ASSIGN_OR_RETURN(bool composed, ComposeInto(wsdt, target, comps));
    if (composed) selected_valid = false;

    std::vector<std::pair<std::string, size_t>> attr_cols;
    for (const std::string& a : unknown_attrs) {
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsdt.Locate(FieldKey(rel_sym, static_cast<TupleId>(r),
                                             InternString(a))));
      attr_cols.emplace_back(a, static_cast<size_t>(loc.col));
    }
    if (conditional) {
      MAYWSD_RETURN_IF_ERROR(refresh_selected());
    }
    Component& comp = wsdt.mutable_component(target);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (conditional && !selected[w]) continue;
      bool absent = false;
      for (const auto& [a, col] : attr_cols) {
        if (comp.at(w, col).is_bottom()) absent = true;
      }
      if (absent) continue;
      auto get = [&](const std::string& name) -> rel::Value {
        for (const auto& [a, col] : attr_cols) {
          if (a == name) return comp.at(w, col);
        }
        auto idx = schema.IndexOf(name);
        return idx ? old_row[*idx] : rel::Value::Bottom();
      };
      if (EvalPredicateResolved(pred, get)) {
        for (const auto& [a, col] : attr_cols) {
          comp.at(w, col) = rel::Value::Bottom();
        }
      }
    }
    comp.PropagateBottom();
  }
  return Status::Ok();
}

Status WsdtModifyWhere(Wsdt& wsdt, const std::string& rel,
                       const rel::Predicate& pred,
                       std::span<const rel::Assignment> assignments,
                       const WsdtUpdateGuard& guard) {
  if (guard.mode() == WsdtUpdateGuard::Mode::kNever) return Status::Ok();
  const bool conditional =
      guard.mode() == WsdtUpdateGuard::Mode::kConditional;
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation * tmpl, wsdt.MutableTemplate(rel));
  const rel::Schema schema = tmpl->schema();
  Symbol rel_sym = InternString(rel);

  std::vector<std::string> ref_attrs = pred.ReferencedAttributes();
  std::sort(ref_attrs.begin(), ref_attrs.end());
  ref_attrs.erase(std::unique(ref_attrs.begin(), ref_attrs.end()),
                  ref_attrs.end());
  for (const std::string& a : ref_attrs) {
    if (!schema.Contains(a)) {
      return Status::NotFound("predicate attribute " + a + " not in " + rel);
    }
  }
  std::vector<std::pair<size_t, rel::Value>> assigned;  // column → value
  for (const rel::Assignment& a : assignments) {
    auto idx = schema.IndexOf(a.attr);
    if (!idx) {
      return Status::NotFound("assignment attribute " + a.attr + " not in " +
                              rel);
    }
    assigned.emplace_back(*idx, a.value);
  }

  // Guard bitmap, recomputed only after compositions into the guard
  // component (see WsdtDeleteWhere).
  std::vector<bool> selected;
  bool selected_valid = false;
  auto refresh_selected = [&]() -> Status {
    if (!selected_valid) {
      MAYWSD_ASSIGN_OR_RETURN(selected, guard.Selected(wsdt));
      selected_valid = true;
    }
    return Status::Ok();
  };

  const size_t num_rows = tmpl->NumRows();
  for (size_t r = 0; r < num_rows; ++r) {
    std::vector<rel::Value> old_row = tmpl->row(r).ToRow();
    rel::TupleRef row_ref(old_row.data(), old_row.size());
    MAYWSD_ASSIGN_OR_RETURN(Tri tri,
                            TriEvalPredicate(pred, schema, row_ref));
    if (tri == Tri::kFalse) continue;

    if (tri == Tri::kTrue && !conditional) {
      // Certain match, all worlds: overwrite in place (⊥s — absent
      // worlds — stay ⊥).
      for (const auto& [col, v] : assigned) {
        if (old_row[col].is_question()) {
          MAYWSD_ASSIGN_OR_RETURN(
              FieldLoc loc,
              wsdt.Locate(FieldKey(rel_sym, static_cast<TupleId>(r),
                                   schema.attr(col).name)));
          Component& comp = wsdt.mutable_component(loc.comp);
          size_t c = static_cast<size_t>(loc.col);
          for (size_t w = 0; w < comp.NumWorlds(); ++w) {
            if (!comp.at(w, c).is_bottom()) comp.at(w, c) = v;
          }
        } else {
          tmpl->SetCell(r, col, v);
        }
      }
      continue;
    }

    // Per-world match (unknown predicate and/or world condition): compose
    // everything the decision and the assignment depend on into one
    // component, then rewrite the selected local worlds.
    std::set<int32_t> comps;
    std::vector<std::string> unknown_attrs;
    for (const std::string& a : ref_attrs) {
      auto idx = schema.IndexOf(a);
      if (!idx || !old_row[*idx].is_question()) continue;
      unknown_attrs.push_back(a);
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsdt.Locate(FieldKey(rel_sym, static_cast<TupleId>(r),
                                             InternString(a))));
      comps.insert(loc.comp);
    }
    for (const auto& [col, v] : assigned) {
      if (!old_row[col].is_question()) continue;
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsdt.Locate(FieldKey(rel_sym, static_cast<TupleId>(r),
                                             schema.attr(col).name)));
      comps.insert(loc.comp);
    }
    size_t target;
    if (conditional) {
      target = guard.comp();
    } else if (!comps.empty()) {
      target = static_cast<size_t>(*comps.begin());
    } else {
      return Status::Internal("per-world modify without placeholders");
    }
    MAYWSD_ASSIGN_OR_RETURN(bool composed, ComposeInto(wsdt, target, comps));
    if (composed && target == guard.comp()) selected_valid = false;

    // Assigned attributes that were certain become placeholders with a
    // constant column in the target component, so their value can differ
    // per world from here on.
    for (const auto& [col, v] : assigned) {
      if (!old_row[col].is_question()) {
        FieldKey f(rel_sym, static_cast<TupleId>(r), schema.attr(col).name);
        tmpl->SetCell(r, col, rel::Value::Question());
        std::vector<rel::Value> column(
            wsdt.component(target).NumWorlds(), old_row[col]);
        MAYWSD_RETURN_IF_ERROR(wsdt.AddColumnToComponent(target, f, column));
      }
    }

    // Column positions of everything we read or write, in the target.
    std::vector<std::pair<std::string, size_t>> attr_cols;
    for (const std::string& a : unknown_attrs) {
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsdt.Locate(FieldKey(rel_sym, static_cast<TupleId>(r),
                                             InternString(a))));
      attr_cols.emplace_back(a, static_cast<size_t>(loc.col));
    }
    std::vector<std::pair<size_t, rel::Value>> assigned_cols;
    for (const auto& [col, v] : assigned) {
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsdt.Locate(FieldKey(rel_sym, static_cast<TupleId>(r),
                                             schema.attr(col).name)));
      std::string name(schema.attr(col).name_view());
      attr_cols.emplace_back(name, static_cast<size_t>(loc.col));
      assigned_cols.emplace_back(static_cast<size_t>(loc.col), v);
    }
    if (conditional) {
      MAYWSD_RETURN_IF_ERROR(refresh_selected());
    }
    Component& comp = wsdt.mutable_component(target);
    // Existing ⊥s of this tuple (absent worlds) flow into the freshly
    // added constant columns before any per-world decision.
    comp.PropagateBottom();
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (conditional && !selected[w]) continue;
      bool absent = false;
      for (const auto& [a, col] : attr_cols) {
        if (comp.at(w, col).is_bottom()) absent = true;
      }
      if (absent) continue;
      bool holds = true;
      if (tri == Tri::kUnknown) {
        auto get = [&](const std::string& name) -> rel::Value {
          for (const auto& [a, col] : attr_cols) {
            if (a == name) return comp.at(w, col);
          }
          auto idx = schema.IndexOf(name);
          return idx ? old_row[*idx] : rel::Value::Bottom();
        };
        holds = EvalPredicateResolved(pred, get);
      }
      if (holds) {
        for (const auto& [col, v] : assigned_cols) comp.at(w, col) = v;
      }
    }
  }
  return Status::Ok();
}

Status WsdtApplyUpdate(Wsdt& wsdt, const rel::UpdateOp& op,
                       const std::string& guard_rel) {
  WsdtUpdateGuard guard = WsdtUpdateGuard::Always();
  if (!guard_rel.empty()) {
    MAYWSD_ASSIGN_OR_RETURN(guard, WsdtUpdateGuard::Analyze(wsdt, guard_rel));
  }
  switch (op.kind()) {
    case rel::UpdateOp::Kind::kInsert:
      return WsdtInsertTuples(wsdt, op.relation(), op.tuples(), guard);
    case rel::UpdateOp::Kind::kDelete:
      return WsdtDeleteWhere(wsdt, op.relation(), op.predicate(), guard);
    case rel::UpdateOp::Kind::kModify:
      return WsdtModifyWhere(wsdt, op.relation(), op.predicate(),
                             op.assignments(), guard);
  }
  return Status::Internal("unknown update kind");
}

}  // namespace maywsd::core
