// The uniform relational encoding of WSDTs — UWSDTs (Section 3, Figure 8).
//
// DBMSs do not support relations of data-dependent arity, so the paper
// stores all components in three fixed-schema relations
//
//   C[REL, TID, ATTR, LWID, VAL]   — component values per local world
//   F[REL, TID, ATTR, CID]         — field → component mapping
//   W[CID, LWID, PR]               — local worlds and their probabilities
//
// plus one template relation R⁰ per database relation (placeholder '?' for
// uncertain fields). A placeholder missing its value in some local world
// (no C row for that LWID) encodes the tuple's absence in those worlds —
// "worlds of different sizes are represented by allowing for a same
// placeholder different amounts of values in different worlds".
//
// Exported template relations carry an explicit leading TID column so the
// F/C references are expressible relationally.
//
// UniformSelectConst implements the select[Aθc] rewriting of Figure 16
// literally against these relations through the rel:: engine, as the
// PostgreSQL prototype did with SQL.

#ifndef MAYWSD_CORE_UNIFORM_H_
#define MAYWSD_CORE_UNIFORM_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/database.h"
#include "rel/predicate.h"
#include "rel/update.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// Names of the three system relations in a uniform database.
inline constexpr const char* kUniformC = "C";
inline constexpr const char* kUniformF = "F";
inline constexpr const char* kUniformW = "W";
/// Name of the leading tuple-id column added to exported templates.
inline constexpr const char* kTidColumn = "__TID";

/// Exports a WSDT into the uniform encoding: template relations (with a
/// leading TID column) under their own names plus C, F, W.
Result<rel::Database> ExportUniform(const Wsdt& wsdt);

/// Rebuilds a WSDT from a uniform database. `templates` lists the template
/// relation names (defaults to every relation except C, F, W).
Result<Wsdt> ImportUniform(const rel::Database& db,
                           std::vector<std::string> templates = {});

/// Figure 16: evaluates P := σ_{AθC}(R) directly on the uniform relations
/// of `db`, adding template P and extending C and F (steps 1–6).
Status UniformSelectConst(rel::Database& db, const std::string& in_rel,
                          const std::string& out_rel, const std::string& attr,
                          rel::CmpOp op, const rel::Value& constant);

/// The Figure 16 rewriting generalized to attribute–attribute selections:
/// P := σ_{AθB}(R) directly on the uniform relations. Rows whose decision
/// rests on placeholder values are filtered per local world; when A and B
/// live in different components those components are first merged via
/// their independence product (the relational compose: W is rewritten to
/// the mixed-radix product, F is remapped and C expanded globally), so no
/// import → template → export round trip is paid.
Status UniformSelectAttrAttr(rel::Database& db, const std::string& in_rel,
                             const std::string& out_rel,
                             const std::string& attr_a, rel::CmpOp op,
                             const std::string& attr_b);

/// T := R ∪ S on the uniform relations: template rows are concatenated
/// with re-numbered TIDs; F and C entries are copied under the new FIDs
/// (Section 5's pure-SQL rewriting of the union of Figure 9).
Status UniformUnion(rel::Database& db, const std::string& left,
                    const std::string& right, const std::string& out);

/// P := δ(R) on the uniform relations: the template's columns and the
/// ATTR values in F and C are renamed.
Status UniformRename(
    rel::Database& db, const std::string& in_rel, const std::string& out_rel,
    const std::vector<std::pair<std::string, std::string>>& renames);

/// T := R × S on the uniform relations: the product of the templates with
/// TID pairing tᵢⱼ = i·|S| + j, F/C entries duplicated per partner tuple
/// (the paper's product of Figure 9, expressed relationally).
Status UniformProduct(rel::Database& db, const std::string& left,
                      const std::string& right, const std::string& out);

/// P := R on the uniform relations: the template is duplicated (same TIDs)
/// and the F/C entries are copied under the new name, sharing CIDs so the
/// copy stays correlated with its source.
Status UniformCopy(rel::Database& db, const std::string& in_rel,
                   const std::string& out_rel);

/// P := π_attrs(R) on the uniform relations: the template's columns are
/// projected (TID kept) and only the kept attributes' F/C entries are
/// copied — exact marginalization of the dropped component columns.
/// Returns Unsupported when a dropped placeholder encodes conditional
/// tuple presence (a ⊥, i.e. a local world with no C row): that projection
/// needs component composition, which is not expressible as a pure row
/// rewriting — callers fall back to the template semantics.
Status UniformProject(rel::Database& db, const std::string& in_rel,
                      const std::string& out_rel,
                      const std::vector<std::string>& attrs);

/// Removes a template relation and its F/C rows. Local worlds whose
/// component no longer has any field are garbage-collected by
/// UniformCompact, not here.
Status UniformDrop(rel::Database& db, const std::string& name);

// -- Native update fragment (see core/wsdt_update.h for the semantics) ------
//
// The purely relational slice of the update subsystem: operations that are
// row rewritings of the template (plus F/C bookkeeping) run directly on the
// store, exactly like the Figure 16 query rewritings. Anything needing
// component composition — a world condition, a predicate touching '?'
// cells, an assignment to a '?' cell — returns kUnsupported and the caller
// falls back to the template semantics (import → WSDT update → export).

/// Appends `tuples` (a fully certain instance) to template `rel` under
/// fresh TIDs — insert-in-every-world as a pure row rewriting.
Status UniformInsert(rel::Database& db, const std::string& rel,
                     const rel::Relation& tuples);

/// delete from `rel` where `pred` when every row's predicate decides on
/// certain template cells alone: decided-true rows are removed with their
/// F/C entries (explicit TIDs keep the others stable). kUnsupported when
/// any row's predicate is unknown.
Status UniformDeleteWhere(rel::Database& db, const std::string& rel,
                          const rel::Predicate& pred);

/// update `rel` set `assignments` where `pred` when every row decides
/// certainly and no affected row has a '?' in an assigned cell; otherwise
/// kUnsupported.
Status UniformModifyWhere(rel::Database& db, const std::string& rel,
                          const rel::Predicate& pred,
                          std::span<const rel::Assignment> assignments);

/// Garbage-collects W rows whose CID no longer appears in F (components
/// fully dropped with their last relation).
Status UniformCompact(rel::Database& db);

/// Referential-integrity check of a uniform database: templates carry a
/// leading unique TID column; every F row points at an existing '?' cell
/// and a CID present in W; every '?' cell is covered by exactly one F row;
/// every C row has a matching F row and an LWID declared in W; every W row's
/// CID appears in F (no orphans); per-CID probabilities sum to 1.
Status ValidateUniform(const rel::Database& db);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_UNIFORM_H_
