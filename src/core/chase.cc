#include "core/chase.h"

#include <algorithm>
#include <set>

namespace maywsd::core {

std::string EgdAtom::ToString() const {
  return attr + std::string(rel::CmpOpName(op)) + constant.ToString();
}

std::string Egd::ToString() const {
  std::string out;
  for (size_t i = 0; i < premises.size(); ++i) {
    if (i > 0) out += " AND ";
    out += premises[i].ToString();
  }
  out += " => " + conclusion.ToString();
  return out + " on " + relation;
}

std::string Fd::ToString() const {
  std::string out;
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) out += ",";
    out += lhs[i];
  }
  return out + " -> " + rhs + " on " + relation;
}

namespace {

/// Composes all components in `comps` (a set of live component indexes)
/// into one; returns the surviving index.
Result<size_t> ComposeAll(Wsd& wsd, const std::set<int32_t>& comps) {
  auto it = comps.begin();
  size_t target = static_cast<size_t>(*it);
  for (++it; it != comps.end(); ++it) {
    MAYWSD_RETURN_IF_ERROR(wsd.ComposeInPlace(target,
                                              static_cast<size_t>(*it)));
  }
  return target;
}

/// Removes the local worlds flagged in `remove` from component `comp_idx`,
/// renormalizing the rest. Inconsistent when nothing remains.
Status RemoveWorldsAndRenormalize(Wsd& wsd, size_t comp_idx,
                                  const std::vector<bool>& remove,
                                  const std::string& what) {
  Component& comp = wsd.mutable_component(comp_idx);
  bool any = false;
  for (bool r : remove) any |= r;
  if (!any) return Status::Ok();
  Component next(comp.fields());
  for (size_t w = 0; w < comp.NumWorlds(); ++w) {
    if (remove[w]) continue;
    std::vector<rel::Value> row;
    row.reserve(comp.NumFields());
    for (size_t c = 0; c < comp.NumFields(); ++c) row.push_back(comp.at(w, c));
    next.AddWorld(row, comp.prob(w));
  }
  if (next.empty()) {
    return Status::Inconsistent("world-set is inconsistent: chasing " + what +
                                " removed all local worlds");
  }
  MAYWSD_RETURN_IF_ERROR(next.NormalizeProbs());
  comp = std::move(next);
  return Status::Ok();
}

/// Components that constrain the *presence* of tuple slot t: those holding
/// a column of t that contains ⊥ in some local world. Needed so the chase
/// never removes worlds in which the tuple is absent (and the dependency
/// vacuous).
Result<std::set<int32_t>> PresenceComponents(const Wsd& wsd,
                                             const WsdRelation& rel,
                                             TupleId t) {
  std::set<int32_t> out;
  for (size_t a = 0; a < rel.schema.arity(); ++a) {
    FieldKey f(rel.name_sym, t, rel.schema.attr(a).name);
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f));
    if (wsd.component(loc.comp).ColumnHasBottom(
            static_cast<size_t>(loc.col))) {
      out.insert(loc.comp);
    }
  }
  // Extra-schema "exists" fields also decide presence.
  for (const FieldKey& pf : wsd.PresenceFieldsOfTuple(rel, t)) {
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(pf));
    if (wsd.component(loc.comp).ColumnHasBottom(
            static_cast<size_t>(loc.col))) {
      out.insert(loc.comp);
    }
  }
  return out;
}

/// True if the composed component's row `w` has a ⊥ in any column of slot
/// (rel, t) present in the component.
bool RowTupleAbsent(const Component& comp, size_t w, Symbol rel_sym,
                    TupleId t) {
  for (size_t c = 0; c < comp.NumFields(); ++c) {
    const FieldKey& f = comp.field(c);
    if (f.rel == rel_sym && f.tuple == t && comp.at(w, c).is_bottom()) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status ChaseEgd(Wsd& wsd, const Egd& egd) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel,
                          wsd.FindRelation(egd.relation));
  Symbol rel_sym = rel->name_sym;
  rel::Schema schema = rel->schema;
  TupleId max_tuples = rel->max_tuples;

  for (const EgdAtom& atom : egd.premises) {
    if (!schema.Contains(atom.attr)) {
      return Status::NotFound("EGD attribute " + atom.attr + " not in " +
                              egd.relation);
    }
  }
  if (!schema.Contains(egd.conclusion.attr)) {
    return Status::NotFound("EGD attribute " + egd.conclusion.attr +
                            " not in " + egd.relation);
  }

  for (TupleId t = 0; t < max_tuples; ++t) {
    FieldKey probe(rel_sym, t, schema.attr(0).name);
    if (!wsd.HasField(probe)) continue;  // removed slot

    // Refinement (end of Section 8): skip without composing when a premise
    // can never hold or the conclusion always holds. ⊥ rows are vacuous.
    bool skip = false;
    std::set<int32_t> needed;
    for (const EgdAtom& atom : egd.premises) {
      FieldKey f(rel_sym, t, InternString(atom.attr));
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f));
      const Component& comp = wsd.component(loc.comp);
      size_t col = static_cast<size_t>(loc.col);
      bool any_true = false;
      bool all_true = true;
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        const rel::Value& v = comp.at(w, col);
        if (v.is_bottom()) continue;  // absent: vacuous
        if (v.Satisfies(atom.op, atom.constant)) {
          any_true = true;
        } else {
          all_true = false;
        }
      }
      if (!any_true) {
        skip = true;
        break;
      }
      // Premises certain in all worlds need not be composed.
      if (!all_true || comp.ColumnHasBottom(col)) needed.insert(loc.comp);
    }
    if (skip) continue;
    {
      FieldKey f(rel_sym, t, InternString(egd.conclusion.attr));
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f));
      const Component& comp = wsd.component(loc.comp);
      size_t col = static_cast<size_t>(loc.col);
      bool all_true = true;
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        const rel::Value& v = comp.at(w, col);
        if (v.is_bottom()) continue;
        if (!v.Satisfies(egd.conclusion.op, egd.conclusion.constant)) {
          all_true = false;
          break;
        }
      }
      if (all_true) continue;  // conclusion certain: nothing to enforce
      needed.insert(loc.comp);
    }
    // Presence components keep vacuous (absent-tuple) worlds alive.
    MAYWSD_ASSIGN_OR_RETURN(std::set<int32_t> presence,
                            PresenceComponents(wsd, *rel, t));
    needed.insert(presence.begin(), presence.end());

    MAYWSD_ASSIGN_OR_RETURN(size_t target, ComposeAll(wsd, needed));
    const Component& comp = wsd.component(target);

    // Flag local worlds where the tuple is present, all premises hold and
    // the conclusion fails.
    std::vector<bool> remove(comp.NumWorlds(), false);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (RowTupleAbsent(comp, w, rel_sym, t)) continue;
      bool premises_hold = true;
      for (const EgdAtom& atom : egd.premises) {
        FieldKey f(rel_sym, t, InternString(atom.attr));
        int col = comp.FindField(f);
        if (col < 0) continue;  // certain-true premise not composed
        if (!comp.at(w, static_cast<size_t>(col))
                 .Satisfies(atom.op, atom.constant)) {
          premises_hold = false;
          break;
        }
      }
      if (!premises_hold) continue;
      FieldKey f(rel_sym, t, InternString(egd.conclusion.attr));
      int col = comp.FindField(f);
      if (col < 0) {
        return Status::Internal("conclusion column missing after compose");
      }
      if (!comp.at(w, static_cast<size_t>(col))
               .Satisfies(egd.conclusion.op, egd.conclusion.constant)) {
        remove[w] = true;
      }
    }
    MAYWSD_RETURN_IF_ERROR(
        RemoveWorldsAndRenormalize(wsd, target, remove, egd.ToString()));
  }
  return Status::Ok();
}

Status ChaseFd(Wsd& wsd, const Fd& fd) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* rel,
                          wsd.FindRelation(fd.relation));
  Symbol rel_sym = rel->name_sym;
  rel::Schema schema = rel->schema;
  TupleId max_tuples = rel->max_tuples;

  std::vector<Symbol> lhs;
  for (const std::string& a : fd.lhs) {
    if (!schema.Contains(a)) {
      return Status::NotFound("FD attribute " + a + " not in " + fd.relation);
    }
    lhs.push_back(InternString(a));
  }
  if (!schema.Contains(fd.rhs)) {
    return Status::NotFound("FD attribute " + fd.rhs + " not in " +
                            fd.relation);
  }
  Symbol rhs = InternString(fd.rhs);

  // Possible (non-⊥) values of a field, for the cheap pre-filter.
  auto possible_values = [&](TupleId t, Symbol attr)
      -> Result<std::vector<rel::Value>> {
    FieldKey f(rel_sym, t, attr);
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f));
    const Component& comp = wsd.component(loc.comp);
    std::vector<rel::Value> out;
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      const rel::Value& v = comp.at(w, static_cast<size_t>(loc.col));
      if (!v.is_bottom() &&
          std::find(out.begin(), out.end(), v) == out.end()) {
        out.push_back(v);
      }
    }
    return out;
  };

  for (TupleId s = 0; s < max_tuples; ++s) {
    if (!wsd.HasField(FieldKey(rel_sym, s, schema.attr(0).name))) continue;
    for (TupleId t = s + 1; t < max_tuples; ++t) {
      if (!wsd.HasField(FieldKey(rel_sym, t, schema.attr(0).name))) continue;

      // Pre-filter: the pair can only violate if every LHS attribute's
      // possible values intersect and the RHS values can differ.
      bool can_match = true;
      for (Symbol a : lhs) {
        MAYWSD_ASSIGN_OR_RETURN(std::vector<rel::Value> vs,
                                possible_values(s, a));
        MAYWSD_ASSIGN_OR_RETURN(std::vector<rel::Value> vt,
                                possible_values(t, a));
        bool overlap = false;
        for (const rel::Value& v : vs) {
          if (std::find(vt.begin(), vt.end(), v) != vt.end()) {
            overlap = true;
            break;
          }
        }
        if (!overlap) {
          can_match = false;
          break;
        }
      }
      if (!can_match) continue;
      {
        MAYWSD_ASSIGN_OR_RETURN(std::vector<rel::Value> vs,
                                possible_values(s, rhs));
        MAYWSD_ASSIGN_OR_RETURN(std::vector<rel::Value> vt,
                                possible_values(t, rhs));
        if (vs.size() == 1 && vt.size() == 1 && vs[0] == vt[0]) {
          continue;  // RHS certainly equal: cannot violate
        }
      }

      // Compose the components of both tuples' LHS/RHS fields plus their
      // presence components.
      std::set<int32_t> needed;
      for (Symbol a : lhs) {
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc l1,
                                wsd.Locate(FieldKey(rel_sym, s, a)));
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc l2,
                                wsd.Locate(FieldKey(rel_sym, t, a)));
        needed.insert(l1.comp);
        needed.insert(l2.comp);
      }
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc r1,
                              wsd.Locate(FieldKey(rel_sym, s, rhs)));
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc r2,
                              wsd.Locate(FieldKey(rel_sym, t, rhs)));
      needed.insert(r1.comp);
      needed.insert(r2.comp);
      MAYWSD_ASSIGN_OR_RETURN(std::set<int32_t> ps,
                              PresenceComponents(wsd, *rel, s));
      MAYWSD_ASSIGN_OR_RETURN(std::set<int32_t> pt,
                              PresenceComponents(wsd, *rel, t));
      needed.insert(ps.begin(), ps.end());
      needed.insert(pt.begin(), pt.end());

      MAYWSD_ASSIGN_OR_RETURN(size_t target, ComposeAll(wsd, needed));
      const Component& comp = wsd.component(target);

      std::vector<bool> remove(comp.NumWorlds(), false);
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        if (RowTupleAbsent(comp, w, rel_sym, s) ||
            RowTupleAbsent(comp, w, rel_sym, t)) {
          continue;
        }
        bool lhs_equal = true;
        for (Symbol a : lhs) {
          int c1 = comp.FindField(FieldKey(rel_sym, s, a));
          int c2 = comp.FindField(FieldKey(rel_sym, t, a));
          if (c1 < 0 || c2 < 0) {
            return Status::Internal("FD column missing after compose");
          }
          if (!(comp.at(w, static_cast<size_t>(c1)) ==
                comp.at(w, static_cast<size_t>(c2)))) {
            lhs_equal = false;
            break;
          }
        }
        if (!lhs_equal) continue;
        int c1 = comp.FindField(FieldKey(rel_sym, s, rhs));
        int c2 = comp.FindField(FieldKey(rel_sym, t, rhs));
        if (c1 < 0 || c2 < 0) {
          return Status::Internal("FD column missing after compose");
        }
        if (!(comp.at(w, static_cast<size_t>(c1)) ==
              comp.at(w, static_cast<size_t>(c2)))) {
          remove[w] = true;
        }
      }
      MAYWSD_RETURN_IF_ERROR(
          RemoveWorldsAndRenormalize(wsd, target, remove, fd.ToString()));
    }
  }
  return Status::Ok();
}

Status Chase(Wsd& wsd, const std::vector<Dependency>& dependencies) {
  for (const Dependency& dep : dependencies) {
    if (const Egd* egd = std::get_if<Egd>(&dep)) {
      MAYWSD_RETURN_IF_ERROR(ChaseEgd(wsd, *egd));
    } else {
      MAYWSD_RETURN_IF_ERROR(ChaseFd(wsd, std::get<Fd>(dep)));
    }
  }
  return Status::Ok();
}

namespace {

/// Does one relational database satisfy the dependency?
Result<bool> WorldSatisfies(const rel::Database& db, const Dependency& dep) {
  if (const Egd* egd = std::get_if<Egd>(&dep)) {
    auto rel_or = db.GetRelation(egd->relation);
    if (!rel_or.ok()) return true;  // relation absent: vacuous
    const rel::Relation& r = *rel_or.value();
    std::vector<size_t> pcols;
    for (const EgdAtom& atom : egd->premises) {
      auto idx = r.schema().IndexOf(atom.attr);
      if (!idx) return Status::NotFound("EGD attribute " + atom.attr);
      pcols.push_back(*idx);
    }
    auto cidx = r.schema().IndexOf(egd->conclusion.attr);
    if (!cidx) return Status::NotFound("EGD attribute " + egd->conclusion.attr);
    for (size_t i = 0; i < r.NumRows(); ++i) {
      rel::TupleRef row = r.row(i);
      bool premises = true;
      for (size_t p = 0; p < pcols.size(); ++p) {
        if (!row[pcols[p]].Satisfies(egd->premises[p].op,
                                     egd->premises[p].constant)) {
          premises = false;
          break;
        }
      }
      if (premises && !row[*cidx].Satisfies(egd->conclusion.op,
                                            egd->conclusion.constant)) {
        return false;
      }
    }
    return true;
  }
  const Fd& fd = std::get<Fd>(dep);
  auto rel_or = db.GetRelation(fd.relation);
  if (!rel_or.ok()) return true;
  const rel::Relation& r = *rel_or.value();
  std::vector<size_t> lhs;
  for (const std::string& a : fd.lhs) {
    auto idx = r.schema().IndexOf(a);
    if (!idx) return Status::NotFound("FD attribute " + a);
    lhs.push_back(*idx);
  }
  auto rhs = r.schema().IndexOf(fd.rhs);
  if (!rhs) return Status::NotFound("FD attribute " + fd.rhs);
  for (size_t i = 0; i < r.NumRows(); ++i) {
    for (size_t j = i + 1; j < r.NumRows(); ++j) {
      bool equal = true;
      for (size_t a : lhs) {
        if (!(r.row(i)[a] == r.row(j)[a])) {
          equal = false;
          break;
        }
      }
      if (equal && !(r.row(i)[*rhs] == r.row(j)[*rhs])) return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<PossibleWorld>> FilterWorldsByDependencies(
    const std::vector<PossibleWorld>& worlds,
    const std::vector<Dependency>& dependencies) {
  std::vector<PossibleWorld> out;
  double total = 0.0;
  for (const PossibleWorld& w : worlds) {
    bool ok = true;
    for (const Dependency& dep : dependencies) {
      MAYWSD_ASSIGN_OR_RETURN(bool sat, WorldSatisfies(w.db, dep));
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (ok) {
      out.push_back(w);
      total += w.prob;
    }
  }
  if (out.empty()) {
    return Status::Inconsistent("no world satisfies the dependencies");
  }
  for (PossibleWorld& w : out) w.prob /= total;
  return out;
}

}  // namespace maywsd::core
