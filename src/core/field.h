// Field identifiers: the paper addresses the A-attribute of tuple tᵢ of
// relation R as "R.tᵢ.A" (Section 3, the FID of the uniform representation).
// Relation and attribute names are interned symbols; tuple ids are dense
// 0-based slot numbers within a relation's inlining.

#ifndef MAYWSD_CORE_FIELD_H_
#define MAYWSD_CORE_FIELD_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.h"
#include "common/interner.h"

namespace maywsd::core {

/// Dense 0-based tuple slot number within a relation's inlining.
using TupleId = int32_t;

/// Identifies one field R.tᵢ.A of the world-set schema (the paper's FID).
struct FieldKey {
  Symbol rel = 0;
  TupleId tuple = 0;
  Symbol attr = 0;

  FieldKey() = default;
  FieldKey(Symbol r, TupleId t, Symbol a) : rel(r), tuple(t), attr(a) {}
  FieldKey(std::string_view r, TupleId t, std::string_view a)
      : rel(InternString(r)), tuple(t), attr(InternString(a)) {}

  bool operator==(const FieldKey& o) const {
    return rel == o.rel && tuple == o.tuple && attr == o.attr;
  }
  bool operator!=(const FieldKey& o) const { return !(*this == o); }
  bool operator<(const FieldKey& o) const {
    if (rel != o.rel) return SymbolName(rel) < SymbolName(o.rel);
    if (tuple != o.tuple) return tuple < o.tuple;
    return SymbolName(attr) < SymbolName(o.attr);
  }

  size_t Hash() const {
    size_t seed = 0x27d4eb2fu;
    maywsd::HashCombine(seed, rel);
    maywsd::HashCombine(seed, static_cast<size_t>(tuple));
    maywsd::HashCombine(seed, attr);
    return seed;
  }

  /// "R.t3.A" rendering.
  std::string ToString() const {
    return std::string(SymbolName(rel)) + ".t" + std::to_string(tuple) + "." +
           std::string(SymbolName(attr));
  }
};

}  // namespace maywsd::core

namespace std {
template <>
struct hash<maywsd::core::FieldKey> {
  size_t operator()(const maywsd::core::FieldKey& f) const { return f.Hash(); }
};
}  // namespace std

#endif  // MAYWSD_CORE_FIELD_H_
