// Relational algebra on world-set decompositions — Section 4 / Figure 9.
//
// Every operation extends the input WSD with a new result relation; the
// input relations are preserved so that subquery results stay correlated
// with their inputs (the WSD after the op represents {(A, Q₀(A)) | A ∈
// rep(W)}). Deleted tuples are marked with ⊥ and propagated within
// components (Figure 12); projection and attribute-attribute selection may
// compose components.
//
// WsdEvaluate() drives a full rel::Plan through these operators via the
// shared engine driver (core/engine/plan_driver.h): conjunctive selections
// become operator chains, disjunctions become unions of selections,
// negations are pushed to the leaves, and joins are lowered to product
// followed by selections.

#ifndef MAYWSD_CORE_WSD_ALGEBRA_H_
#define MAYWSD_CORE_WSD_ALGEBRA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rel/algebra.h"
#include "core/wsd.h"

namespace maywsd::core {

/// copy(R, P): P becomes a fresh relation that equals R in every world.
Status WsdCopy(Wsd& wsd, const std::string& src, const std::string& out);

/// P := σ_{Aθc}(R) — select[Aθc] of Figure 9.
Status WsdSelectConst(Wsd& wsd, const std::string& src, const std::string& out,
                      const std::string& attr, rel::CmpOp op,
                      const rel::Value& constant);

/// P := σ_{AθB}(R) — select[AθB] of Figure 9 (may compose components).
Status WsdSelectAttrAttr(Wsd& wsd, const std::string& src,
                         const std::string& out, const std::string& attr_a,
                         rel::CmpOp op, const std::string& attr_b);

/// T := R × S — product of Figure 9. Attribute sets must be disjoint.
Status WsdProduct(Wsd& wsd, const std::string& left, const std::string& right,
                  const std::string& out);

/// T := R ∪ S — union of Figure 9. Schemas must be equal.
Status WsdUnion(Wsd& wsd, const std::string& left, const std::string& right,
                const std::string& out);

/// P := π_U(R) — project[U] of Figure 9 (fixpoint ⊥-propagation).
Status WsdProject(Wsd& wsd, const std::string& src, const std::string& out,
                  const std::vector<std::string>& attrs);

/// P := π_U(R) with the "exists column" optimization (Section 4
/// Discussion): instead of composing components, a projected-away column
/// that carries ⊥ deletions is turned into an extra-schema presence field
/// of P (⊥ stays ⊥, values become the marker 1). No composition happens,
/// so this projection is polynomial; rep() treats a ⊥ presence field as
/// tuple deletion. Wsd::EliminatePresenceFields() converts back.
Status WsdProjectExists(Wsd& wsd, const std::string& src,
                        const std::string& out,
                        const std::vector<std::string>& attrs);

/// P := δ_{A→A'}(R) applied for every pair in `renames` — rename of
/// Figure 9, materialized as a fresh relation for compositionality.
Status WsdRename(Wsd& wsd, const std::string& src, const std::string& out,
                 const std::vector<std::pair<std::string, std::string>>&
                     renames);

/// P := R − S — difference of Figure 9 (composes components per tuple
/// pair; exponential in the worst case, as the paper notes).
Status WsdDifference(Wsd& wsd, const std::string& left,
                     const std::string& right, const std::string& out);

/// Evaluates an arbitrary relational algebra plan over the WSD through the
/// shared engine driver, adding the result under `out`. Leaf scans refer
/// to relations already in the WSD. Intermediate temporaries are dropped
/// unless `keep_temps`. (The plan lowering itself — including
/// NegatePredicate — lives in core/engine/plan_driver.h.)
///
/// Compatibility shim: new code should open an api::Session over the Wsd
/// (Session::Open) and call Run(); this entry point remains for callers
/// that already hold a bare Wsd.
Status WsdEvaluate(Wsd& wsd, const rel::Plan& plan, const std::string& out,
                   bool keep_temps = false);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSD_ALGEBRA_H_
