// Representation-native updates on WSDs (Section 4 decompositions).
//
// Same semantics as core/wsdt_update.h, expressed over components only (a
// WSD has no certain template): inserts grow the relation's slot range and
// register fresh fields, deletes ⊥-mark local worlds, modifies overwrite
// component values per world. Predicates are evaluated per local world
// after composing the components carrying the referenced fields of a tuple
// slot — components are split (composed) only where the predicate or the
// world condition forces it.

#ifndef MAYWSD_CORE_WSD_UPDATE_H_
#define MAYWSD_CORE_WSD_UPDATE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/predicate.h"
#include "rel/relation.h"
#include "rel/update.h"
#include "core/update_guard.h"
#include "core/wsd.h"

namespace maywsd::core {

/// UpdateGuard customization point (see core/update_guard.h): per alive
/// tuple slot of `guard_rel`, every field that could carry conditional
/// presence — the slot's schema and presence fields alike (a WSD has no
/// certain template, so any column may hold the ⊥).
Result<std::vector<std::vector<FieldKey>>> GuardSlotCandidates(
    const Wsd& wsd, const std::string& guard_rel);

/// How a world condition restricts an update on a WSD (see
/// core/update_guard.h for the mode semantics and the shared analysis).
using WsdUpdateGuard = UpdateGuard<Wsd>;

/// insert `tuples` into `rel` in the worlds selected by `guard`.
Status WsdInsertTuples(Wsd& wsd, const std::string& rel,
                       const rel::Relation& tuples,
                       const WsdUpdateGuard& guard);

/// delete from `rel` where `pred`, in the worlds selected by `guard`.
Status WsdDeleteWhere(Wsd& wsd, const std::string& rel,
                      const rel::Predicate& pred,
                      const WsdUpdateGuard& guard);

/// update `rel` set `assignments` where `pred`, in the worlds selected by
/// `guard`.
Status WsdModifyWhere(Wsd& wsd, const std::string& rel,
                      const rel::Predicate& pred,
                      std::span<const rel::Assignment> assignments,
                      const WsdUpdateGuard& guard);

/// Dispatches `op` to the operators above; `guard_rel` names the
/// materialized world-condition answer (empty = unconditional).
Status WsdApplyUpdate(Wsd& wsd, const rel::UpdateOp& op,
                      const std::string& guard_rel);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSD_UPDATE_H_
