// Representation-native updates on WSDs (Section 4 decompositions).
//
// Same semantics as core/wsdt_update.h, expressed over components only (a
// WSD has no certain template): inserts grow the relation's slot range and
// register fresh fields, deletes ⊥-mark local worlds, modifies overwrite
// component values per world. Predicates are evaluated per local world
// after composing the components carrying the referenced fields of a tuple
// slot — components are split (composed) only where the predicate or the
// world condition forces it.

#ifndef MAYWSD_CORE_WSD_UPDATE_H_
#define MAYWSD_CORE_WSD_UPDATE_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/predicate.h"
#include "rel/relation.h"
#include "rel/update.h"
#include "core/wsd.h"

namespace maywsd::core {

/// How a world condition restricts an update on a WSD (see
/// WsdtUpdateGuard for the mode semantics).
class WsdUpdateGuard {
 public:
  enum class Mode { kAlways, kNever, kConditional };

  static WsdUpdateGuard Always() { return WsdUpdateGuard(Mode::kAlways); }

  /// Analyzes relation `guard_rel`, composing its presence-carrying
  /// components (those with a ⊥ in a column of the relation, schema or
  /// presence fields alike) into one.
  static Result<WsdUpdateGuard> Analyze(Wsd& wsd,
                                        const std::string& guard_rel);

  Mode mode() const { return mode_; }
  size_t comp() const { return comp_; }

  /// Per-local-world selection bitmap of comp(); recompute after further
  /// compositions into comp().
  Result<std::vector<bool>> Selected(const Wsd& wsd) const;

 private:
  explicit WsdUpdateGuard(Mode mode) : mode_(mode) {}

  Mode mode_;
  size_t comp_ = 0;
  std::vector<std::vector<FieldKey>> slot_presence_fields_;
};

/// insert `tuples` into `rel` in the worlds selected by `guard`.
Status WsdInsertTuples(Wsd& wsd, const std::string& rel,
                       const rel::Relation& tuples,
                       const WsdUpdateGuard& guard);

/// delete from `rel` where `pred`, in the worlds selected by `guard`.
Status WsdDeleteWhere(Wsd& wsd, const std::string& rel,
                      const rel::Predicate& pred,
                      const WsdUpdateGuard& guard);

/// update `rel` set `assignments` where `pred`, in the worlds selected by
/// `guard`.
Status WsdModifyWhere(Wsd& wsd, const std::string& rel,
                      const rel::Predicate& pred,
                      std::span<const rel::Assignment> assignments,
                      const WsdUpdateGuard& guard);

/// Dispatches `op` to the operators above; `guard_rel` names the
/// materialized world-condition answer (empty = unconditional).
Status WsdApplyUpdate(Wsd& wsd, const rel::UpdateOp& op,
                      const std::string& guard_rel);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSD_UPDATE_H_
