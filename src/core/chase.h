// Chase-based data cleaning — Section 8 / Figure 24.
//
// Two dependency classes, per the paper:
//   * functional dependencies  A1,…,Am → A0 over a relation;
//   * single-tuple equality-generating dependencies (EGDs)
//     A1θ1c1 ∧ … ∧ Amθmcm ⇒ A0θ0c0.
//
// Chasing removes local worlds that make a dependency fail, composing
// components first when the dependency spans several, and renormalizing the
// remaining probabilities (y' = y / (1 − removed mass)). One pass suffices:
// removing worlds cannot introduce new violations (Theorem 2/3). A chase
// that empties a component reports kInconsistent ("world-set is
// inconsistent").
//
// The refinements at the end of Section 8 are implemented: components whose
// premise column can never satisfy its condition — or whose conclusion
// column always does — are skipped without composing.

#ifndef MAYWSD_CORE_CHASE_H_
#define MAYWSD_CORE_CHASE_H_

#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "rel/value.h"
#include "core/wsd.h"

namespace maywsd::core {

/// One comparison "A θ c" of an EGD.
struct EgdAtom {
  std::string attr;
  rel::CmpOp op = rel::CmpOp::kEq;
  rel::Value constant;

  std::string ToString() const;
};

/// Single-tuple equality-generating dependency:
/// premises₁ ∧ … ∧ premisesₘ ⇒ conclusion, per tuple of `relation`.
struct Egd {
  std::string relation;
  std::vector<EgdAtom> premises;
  EgdAtom conclusion;

  std::string ToString() const;
};

/// Functional dependency lhs → rhs over `relation` (a multi-attribute
/// right-hand side is equivalent to one FD per attribute).
struct Fd {
  std::string relation;
  std::vector<std::string> lhs;
  std::string rhs;

  std::string ToString() const;
};

/// A dependency to chase.
using Dependency = std::variant<Egd, Fd>;

/// Enforces one EGD on every tuple slot of its relation.
Status ChaseEgd(Wsd& wsd, const Egd& egd);

/// Enforces one FD on every pair of tuple slots of its relation.
Status ChaseFd(Wsd& wsd, const Fd& fd);

/// Chases all dependencies in order (single pass; see Theorem 2).
Status Chase(Wsd& wsd, const std::vector<Dependency>& dependencies);

/// Brute-force reference: filters the enumerated worlds by the
/// dependencies and renormalizes — the oracle the chase is tested against.
Result<std::vector<PossibleWorld>> FilterWorldsByDependencies(
    const std::vector<PossibleWorld>& worlds,
    const std::vector<Dependency>& dependencies);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_CHASE_H_
