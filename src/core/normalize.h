// WSD normalization — Section 7 / Figure 20.
//
// Three rewrites preserve rep(W) while shrinking the representation:
//   * remove invalid tuples — a tuple slot whose field is ⊥ in every local
//     world exists in no world and is removed outright;
//   * decompose — replace a component by its maximal product decomposition
//     ("prime factorization"); the paper delegates the polynomial algorithm
//     to its companion ICDT'07 paper, we implement an exact
//     minimal-separator search that is exponential only in component arity
//     (Figure 28: arity ≤ 5 in practice) with a conservative linear
//     fallback above kMaxExactFactorColumns;
//   * compress — merge duplicate local worlds, summing probabilities.

#ifndef MAYWSD_CORE_NORMALIZE_H_
#define MAYWSD_CORE_NORMALIZE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/wsd.h"

namespace maywsd::core {

/// Above this column count the exact factorization falls back to splitting
/// off independent single columns only (still a correct decomposition,
/// possibly non-maximal).
inline constexpr size_t kMaxExactFactorColumns = 16;

/// Maximal product decomposition of one component. Probabilities factor
/// into marginals; a split is taken only if both the value combinations and
/// the probabilities factor (within kProbEpsilon). The input is compressed
/// first. Returns {component} when prime.
std::vector<Component> FactorComponent(const Component& component);

/// Removes tuple slots that are invalid (⊥) in all worlds — Figure 20(a).
Status RemoveInvalidTuples(Wsd& wsd);

/// Splits every component into its prime factors — Figure 20(b).
Status DecomposeComponents(Wsd& wsd);

/// Merges duplicate local worlds in every component — Figure 20(c).
Status CompressComponents(Wsd& wsd);

/// Drops local worlds with probability ≤ `threshold` (e.g. mass removed by
/// the chase) and renormalizes. Worlds of probability 0 represent nothing.
Status DropZeroProbabilityWorlds(Wsd& wsd, double threshold = 1e-12);

/// Full normalization pipeline: compress → remove invalid tuples →
/// decompose → compact.
Status NormalizeWsd(Wsd& wsd);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_NORMALIZE_H_
