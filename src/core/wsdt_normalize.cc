#include "core/wsdt_normalize.h"

#include <algorithm>
#include <map>

#include "core/normalize.h"

namespace maywsd::core {

Status WsdtCompressComponents(Wsdt& wsdt) {
  for (size_t i : wsdt.LiveComponents()) {
    wsdt.mutable_component(i).Compress();
  }
  return Status::Ok();
}

Status WsdtPromoteCertainFields(Wsdt& wsdt) {
  // Collect constant columns first; dropping mutates column indexes.
  std::vector<std::pair<FieldKey, rel::Value>> certain;
  for (size_t i : wsdt.LiveComponents()) {
    const Component& comp = wsdt.component(i);
    for (size_t c = 0; c < comp.NumFields(); ++c) {
      if (comp.ColumnConstant(c) && !comp.at(0, c).is_bottom()) {
        certain.emplace_back(comp.field(c), comp.at(0, c));
      }
    }
  }
  for (const auto& [field, value] : certain) {
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Relation * tmpl,
        wsdt.MutableTemplate(std::string(SymbolName(field.rel))));
    auto attr = tmpl->schema().IndexOf(field.attr);
    if (!attr) {
      return Status::Internal("promoted field outside template schema: " +
                              field.ToString());
    }
    tmpl->SetCell(static_cast<size_t>(field.tuple), *attr, value);
    MAYWSD_RETURN_IF_ERROR(wsdt.DropField(field));
  }
  return Status::Ok();
}

Status WsdtRemoveInvalidRows(Wsdt& wsdt) {
  for (const std::string& name : wsdt.RelationNames()) {
    MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl_ptr,
                            wsdt.Template(name));
    const rel::Relation& tmpl = *tmpl_ptr;
    Symbol rel_sym = InternString(name);
    // Identify rows invalid in every world.
    std::vector<bool> invalid(tmpl.NumRows(), false);
    bool any = false;
    for (size_t r = 0; r < tmpl.NumRows(); ++r) {
      rel::TupleRef row = tmpl.row(r);
      for (size_t a = 0; a < tmpl.arity(); ++a) {
        if (!row[a].is_question()) continue;
        FieldKey f(rel_sym, static_cast<TupleId>(r),
                   tmpl.schema().attr(a).name);
        MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
        if (wsdt.component(loc.comp).ColumnAllBottom(
                static_cast<size_t>(loc.col))) {
          invalid[r] = true;
          any = true;
          break;
        }
      }
    }
    if (!any) continue;
    // Drop the invalid rows' fields, rebuild the template, remap tids.
    rel::Relation next(tmpl.schema(), name);
    std::map<TupleId, TupleId> remap;
    TupleId next_tid = 0;
    for (size_t r = 0; r < tmpl.NumRows(); ++r) {
      rel::TupleRef row = tmpl.row(r);
      if (invalid[r]) {
        for (size_t a = 0; a < tmpl.arity(); ++a) {
          if (!row[a].is_question()) continue;
          MAYWSD_RETURN_IF_ERROR(wsdt.DropField(
              FieldKey(rel_sym, static_cast<TupleId>(r),
                       tmpl.schema().attr(a).name)));
        }
        continue;
      }
      remap[static_cast<TupleId>(r)] = next_tid++;
      next.AppendRow(row.span());
    }
    // Remap surviving fields. Two passes (via fresh temporary keys) are
    // unnecessary because tids only shrink: process in increasing order.
    for (const auto& [old_tid, new_tid] : remap) {
      if (old_tid == new_tid) continue;
      rel::TupleRef row = tmpl.row(static_cast<size_t>(old_tid));
      for (size_t a = 0; a < tmpl.arity(); ++a) {
        if (!row[a].is_question()) continue;
        Symbol attr = tmpl.schema().attr(a).name;
        MAYWSD_RETURN_IF_ERROR(
            wsdt.RenameFieldKey(FieldKey(rel_sym, old_tid, attr),
                                FieldKey(rel_sym, new_tid, attr)));
      }
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::Relation * mutable_tmpl,
                            wsdt.MutableTemplate(name));
    *mutable_tmpl = std::move(next);
  }
  return Status::Ok();
}

Status WsdtDecomposeComponents(Wsdt& wsdt) {
  std::vector<size_t> live = wsdt.LiveComponents();
  for (size_t idx : live) {
    if (!wsdt.IsLiveComponent(idx)) continue;
    if (wsdt.component(idx).NumFields() <= 1) {
      wsdt.mutable_component(idx).Compress();
      continue;
    }
    std::vector<Component> parts = FactorComponent(wsdt.component(idx));
    if (parts.size() == 1) {
      wsdt.mutable_component(idx) = std::move(parts[0]);
      continue;
    }
    MAYWSD_RETURN_IF_ERROR(wsdt.ReplaceComponent(idx, std::move(parts)));
  }
  return Status::Ok();
}

Status WsdtNormalize(Wsdt& wsdt) {
  MAYWSD_RETURN_IF_ERROR(WsdtCompressComponents(wsdt));
  MAYWSD_RETURN_IF_ERROR(WsdtPromoteCertainFields(wsdt));
  MAYWSD_RETURN_IF_ERROR(WsdtRemoveInvalidRows(wsdt));
  MAYWSD_RETURN_IF_ERROR(WsdtDecomposeComponents(wsdt));
  wsdt.CompactComponents();
  return Status::Ok();
}

}  // namespace maywsd::core
