#include "core/wsdt_chase.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/hash.h"

namespace maywsd::core {

namespace {

/// '?' columns of template row r whose component column carries a ⊥ —
/// i.e. the fields that make the tuple's *presence* world-dependent.
Result<std::set<int32_t>> PresenceComps(const Wsdt& wsdt, Symbol rel_sym,
                                        const rel::Relation& tmpl, size_t r) {
  std::set<int32_t> out;
  rel::TupleRef row = tmpl.row(r);
  for (size_t a = 0; a < tmpl.arity(); ++a) {
    if (!row[a].is_question()) continue;
    FieldKey f(rel_sym, static_cast<TupleId>(r), tmpl.schema().attr(a).name);
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
    if (wsdt.component(loc.comp).ColumnHasBottom(
            static_cast<size_t>(loc.col))) {
      out.insert(loc.comp);
    }
  }
  return out;
}

Result<size_t> ComposeAll(Wsdt& wsdt, const std::set<int32_t>& comps) {
  auto it = comps.begin();
  size_t target = static_cast<size_t>(*it);
  for (++it; it != comps.end(); ++it) {
    MAYWSD_RETURN_IF_ERROR(
        wsdt.ComposeInPlace(target, static_cast<size_t>(*it)));
  }
  return target;
}

/// Rebuilds component `comp_idx` without the flagged local worlds,
/// renormalizing; kInconsistent when nothing remains.
Status RemoveWorlds(Wsdt& wsdt, size_t comp_idx,
                    const std::vector<bool>& remove, const std::string& what) {
  bool any = false;
  for (bool r : remove) any |= r;
  if (!any) return Status::Ok();
  Component& comp = wsdt.mutable_component(comp_idx);
  Component next(comp.fields());
  std::vector<rel::Value> row(comp.NumFields());
  for (size_t w = 0; w < comp.NumWorlds(); ++w) {
    if (remove[w]) continue;
    for (size_t c = 0; c < comp.NumFields(); ++c) row[c] = comp.at(w, c);
    next.AddWorld(row, comp.prob(w));
  }
  if (next.empty()) {
    return Status::Inconsistent("world-set is inconsistent: chasing " + what);
  }
  MAYWSD_RETURN_IF_ERROR(next.NormalizeProbs());
  comp = std::move(next);
  return Status::Ok();
}

/// Per-component absence index: the ⊥-carrying columns of each (relation,
/// tuple) slot, computed in ONE scan over the component's columns so the
/// per-world absence test only probes the handful of columns that can
/// actually make a tuple absent (columns without any ⊥ never can).
class AbsenceIndex {
 public:
  AbsenceIndex(const Component& comp, Symbol rel_sym) : comp_(&comp) {
    for (size_t c = 0; c < comp.NumFields(); ++c) {
      const FieldKey& f = comp.field(c);
      if (f.rel == rel_sym && comp.ColumnHasBottom(c)) {
        bottom_cols_[f.tuple].push_back(c);
      }
    }
  }

  /// True if, in local world `w`, any column of tuple `tid` is ⊥.
  bool TupleAbsentInWorld(size_t w, TupleId tid) const {
    auto it = bottom_cols_.find(tid);
    if (it == bottom_cols_.end()) return false;
    for (size_t c : it->second) {
      if (comp_->at(w, c).is_bottom()) return true;
    }
    return false;
  }

 private:
  const Component* comp_;
  std::unordered_map<TupleId, std::vector<size_t>> bottom_cols_;
};

}  // namespace

Status WsdtChaseEgd(Wsdt& wsdt, const Egd& egd) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl_ptr,
                          wsdt.Template(egd.relation));
  const rel::Relation& tmpl = *tmpl_ptr;
  const rel::Schema& schema = tmpl.schema();
  Symbol rel_sym = InternString(egd.relation);

  std::vector<size_t> premise_cols;
  for (const EgdAtom& atom : egd.premises) {
    auto idx = schema.IndexOf(atom.attr);
    if (!idx) {
      return Status::NotFound("EGD attribute " + atom.attr + " not in " +
                              egd.relation);
    }
    premise_cols.push_back(*idx);
  }
  auto ccol_or = schema.IndexOf(egd.conclusion.attr);
  if (!ccol_or) {
    return Status::NotFound("EGD attribute " + egd.conclusion.attr +
                            " not in " + egd.relation);
  }
  size_t ccol = *ccol_or;

  for (size_t r = 0; r < tmpl.NumRows(); ++r) {
    rel::TupleRef row = tmpl.row(r);

    // Certain-field evaluation. A certainly-false premise or certainly-true
    // conclusion settles the row without any component work.
    bool premise_certain_false = false;
    std::vector<size_t> uncertain_premises;
    for (size_t p = 0; p < premise_cols.size(); ++p) {
      const rel::Value& v = row[premise_cols[p]];
      if (v.is_question()) {
        uncertain_premises.push_back(p);
      } else if (!v.Satisfies(egd.premises[p].op, egd.premises[p].constant)) {
        premise_certain_false = true;
        break;
      }
    }
    if (premise_certain_false) continue;
    bool conclusion_uncertain = row[ccol].is_question();
    if (!conclusion_uncertain &&
        row[ccol].Satisfies(egd.conclusion.op, egd.conclusion.constant)) {
      continue;
    }

    MAYWSD_ASSIGN_OR_RETURN(std::set<int32_t> presence,
                            PresenceComps(wsdt, rel_sym, tmpl, r));

    if (uncertain_premises.empty() && !conclusion_uncertain) {
      // The tuple certainly violates whenever present.
      if (presence.empty()) {
        return Status::Inconsistent(
            "world-set is inconsistent: tuple " + std::to_string(r) + " of " +
            egd.relation + " violates " + egd.ToString() + " in every world");
      }
      MAYWSD_ASSIGN_OR_RETURN(size_t target, ComposeAll(wsdt, presence));
      const Component& comp = wsdt.component(target);
      AbsenceIndex absent(comp, rel_sym);
      std::vector<bool> remove(comp.NumWorlds(), false);
      for (size_t w = 0; w < comp.NumWorlds(); ++w) {
        remove[w] = !absent.TupleAbsentInWorld(w, static_cast<TupleId>(r));
      }
      MAYWSD_RETURN_IF_ERROR(
          RemoveWorlds(wsdt, target, remove, egd.ToString()));
      continue;
    }

    // Compose the components of the uncertain dependency fields (plus
    // presence components) and remove violating local worlds.
    std::set<int32_t> needed = presence;
    for (size_t p : uncertain_premises) {
      FieldKey f(rel_sym, static_cast<TupleId>(r),
                 schema.attr(premise_cols[p]).name);
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
      needed.insert(loc.comp);
    }
    if (conclusion_uncertain) {
      FieldKey f(rel_sym, static_cast<TupleId>(r), schema.attr(ccol).name);
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
      needed.insert(loc.comp);
    }
    MAYWSD_ASSIGN_OR_RETURN(size_t target, ComposeAll(wsdt, needed));
    const Component& comp = wsdt.component(target);

    auto field_value = [&](size_t col) -> rel::Value {
      return row[col];  // certain template value
    };
    AbsenceIndex absent(comp, rel_sym);
    std::vector<bool> remove(comp.NumWorlds(), false);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (absent.TupleAbsentInWorld(w, static_cast<TupleId>(r))) {
        continue;  // vacuous
      }
      bool premises_hold = true;
      for (size_t p = 0; p < premise_cols.size(); ++p) {
        rel::Value v;
        if (row[premise_cols[p]].is_question()) {
          int c = comp.FindField(FieldKey(rel_sym, static_cast<TupleId>(r),
                                          schema.attr(premise_cols[p]).name));
          if (c < 0) {
            return Status::Internal("EGD premise column missing");
          }
          v = comp.at(w, static_cast<size_t>(c));
        } else {
          v = field_value(premise_cols[p]);
        }
        if (!v.Satisfies(egd.premises[p].op, egd.premises[p].constant)) {
          premises_hold = false;
          break;
        }
      }
      if (!premises_hold) continue;
      rel::Value cv;
      if (conclusion_uncertain) {
        int c = comp.FindField(FieldKey(rel_sym, static_cast<TupleId>(r),
                                        schema.attr(ccol).name));
        if (c < 0) return Status::Internal("EGD conclusion column missing");
        cv = comp.at(w, static_cast<size_t>(c));
      } else {
        cv = field_value(ccol);
      }
      if (!cv.Satisfies(egd.conclusion.op, egd.conclusion.constant)) {
        remove[w] = true;
      }
    }
    MAYWSD_RETURN_IF_ERROR(RemoveWorlds(wsdt, target, remove, egd.ToString()));
  }
  return Status::Ok();
}

Status WsdtChaseFd(Wsdt& wsdt, const Fd& fd) {
  MAYWSD_ASSIGN_OR_RETURN(const rel::Relation* tmpl_ptr,
                          wsdt.Template(fd.relation));
  const rel::Relation& tmpl = *tmpl_ptr;
  const rel::Schema& schema = tmpl.schema();
  Symbol rel_sym = InternString(fd.relation);

  std::vector<size_t> lhs_cols;
  for (const std::string& a : fd.lhs) {
    auto idx = schema.IndexOf(a);
    if (!idx) {
      return Status::NotFound("FD attribute " + a + " not in " + fd.relation);
    }
    lhs_cols.push_back(*idx);
  }
  auto rhs_or = schema.IndexOf(fd.rhs);
  if (!rhs_or) {
    return Status::NotFound("FD attribute " + fd.rhs + " not in " +
                            fd.relation);
  }
  size_t rhs_col = *rhs_or;

  // Bucket rows by every possible LHS key (certain rows have one key).
  auto possible_of = [&](size_t r, size_t col) -> std::vector<rel::Value> {
    const rel::Value& v = tmpl.row(r)[col];
    if (!v.is_question()) return {v};
    std::vector<rel::Value> out;
    FieldKey f(rel_sym, static_cast<TupleId>(r), schema.attr(col).name);
    auto loc_or = wsdt.Locate(f);
    if (!loc_or.ok()) return out;
    const Component& comp = wsdt.component(loc_or.value().comp);
    size_t c = static_cast<size_t>(loc_or.value().col);
    std::unordered_set<rel::Value> seen;
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      const rel::Value& pv = comp.at(w, c);
      if (!pv.is_bottom() && seen.insert(pv).second) out.push_back(pv);
    }
    return out;
  };

  // Keys are Value::Hash combinations instead of serialized strings; a
  // hash collision only merges two buckets, which is harmless — bucketing
  // is a candidate filter, and process_pair() re-checks every pair.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  std::vector<size_t> catch_all;  // rows whose key set overflowed the cap
  for (size_t r = 0; r < tmpl.NumRows(); ++r) {
    // Enumerate possible key combinations (capped).
    std::vector<size_t> keys{0xcbf29ce484222325ULL};
    for (size_t col : lhs_cols) {
      std::vector<rel::Value> vals = possible_of(r, col);
      std::vector<size_t> next;
      for (size_t k : keys) {
        for (const rel::Value& v : vals) {
          size_t h = k;
          HashCombine(h, v.Hash());
          next.push_back(h);
          if (next.size() > kMaxFdKeyCombos) break;
        }
        if (next.size() > kMaxFdKeyCombos) break;
      }
      keys = std::move(next);
      if (keys.size() > kMaxFdKeyCombos) break;
    }
    if (keys.size() > kMaxFdKeyCombos) {
      catch_all.push_back(r);  // conservative: pairs with everything
      continue;
    }
    std::unordered_set<size_t> dedup(keys.begin(), keys.end());
    for (size_t k : dedup) buckets[k].push_back(r);
  }

  std::set<std::pair<size_t, size_t>> done;
  auto process_pair = [&](size_t s, size_t t) -> Status {
    if (s > t) std::swap(s, t);
    if (s == t || !done.insert({s, t}).second) return Status::Ok();
    rel::TupleRef rs = tmpl.row(s);
    rel::TupleRef rt = tmpl.row(t);

    // Certain-certain mismatch on any LHS attribute: cannot violate.
    for (size_t col : lhs_cols) {
      if (!rs[col].is_question() && !rt[col].is_question() &&
          !(rs[col] == rt[col])) {
        return Status::Ok();
      }
    }
    // RHS certainly equal: cannot violate.
    if (!rs[rhs_col].is_question() && !rt[rhs_col].is_question() &&
        rs[rhs_col] == rt[rhs_col]) {
      return Status::Ok();
    }

    std::set<int32_t> needed;
    auto add_field = [&](size_t r, size_t col) -> Status {
      if (!tmpl.row(r)[col].is_question()) return Status::Ok();
      FieldKey f(rel_sym, static_cast<TupleId>(r), schema.attr(col).name);
      MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsdt.Locate(f));
      needed.insert(loc.comp);
      return Status::Ok();
    };
    for (size_t col : lhs_cols) {
      MAYWSD_RETURN_IF_ERROR(add_field(s, col));
      MAYWSD_RETURN_IF_ERROR(add_field(t, col));
    }
    MAYWSD_RETURN_IF_ERROR(add_field(s, rhs_col));
    MAYWSD_RETURN_IF_ERROR(add_field(t, rhs_col));
    MAYWSD_ASSIGN_OR_RETURN(std::set<int32_t> ps,
                            PresenceComps(wsdt, rel_sym, tmpl, s));
    MAYWSD_ASSIGN_OR_RETURN(std::set<int32_t> pt,
                            PresenceComps(wsdt, rel_sym, tmpl, t));
    needed.insert(ps.begin(), ps.end());
    needed.insert(pt.begin(), pt.end());

    if (needed.empty()) {
      // Fully certain pair: both tuples always present, LHS equal, RHS
      // different — the world-set is flatly inconsistent.
      return Status::Inconsistent("world-set is inconsistent: tuples " +
                                  std::to_string(s) + "," + std::to_string(t) +
                                  " of " + fd.relation + " violate " +
                                  fd.ToString());
    }
    MAYWSD_ASSIGN_OR_RETURN(size_t target, ComposeAll(wsdt, needed));
    const Component& comp = wsdt.component(target);

    auto value_at = [&](size_t w, size_t r, size_t col) -> rel::Value {
      const rel::Value& v = tmpl.row(r)[col];
      if (!v.is_question()) return v;
      int c = comp.FindField(
          FieldKey(rel_sym, static_cast<TupleId>(r), schema.attr(col).name));
      // Fields not composed are certain-valued placeholders without ⊥;
      // they cannot be decided here, so treat the comparison
      // conservatively as "could be anything": such a field would have
      // been composed if it were part of the dependency.
      return c >= 0 ? comp.at(w, static_cast<size_t>(c)) : v;
    };

    AbsenceIndex absent(comp, rel_sym);
    std::vector<bool> remove(comp.NumWorlds(), false);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (absent.TupleAbsentInWorld(w, static_cast<TupleId>(s)) ||
          absent.TupleAbsentInWorld(w, static_cast<TupleId>(t))) {
        continue;
      }
      bool lhs_equal = true;
      for (size_t col : lhs_cols) {
        rel::Value vs = value_at(w, s, col);
        rel::Value vt = value_at(w, t, col);
        if (vs.is_bottom() || vt.is_bottom() || !(vs == vt)) {
          lhs_equal = false;
          break;
        }
      }
      if (!lhs_equal) continue;
      rel::Value vs = value_at(w, s, rhs_col);
      rel::Value vt = value_at(w, t, rhs_col);
      if (!vs.is_bottom() && !vt.is_bottom() && !(vs == vt)) {
        remove[w] = true;
      }
    }
    return RemoveWorlds(wsdt, target, remove, fd.ToString());
  };

  // A pair whose RHS values are both certain and equal can never violate
  // the FD (process_pair exits on it without touching components). Sort
  // each bucket by certain RHS value — uncertain rows last — so those
  // pairs form contiguous runs that are skipped wholesale instead of being
  // re-discovered one pair at a time in the O(bucket²) scan.
  auto rhs_of = [&](size_t r) -> const rel::Value& {
    return tmpl.row(r)[rhs_col];
  };
  for (auto& [key, rows] : buckets) {
    std::sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
      const rel::Value& va = rhs_of(a);
      const rel::Value& vb = rhs_of(b);
      bool qa = va.is_question();
      bool qb = vb.is_question();
      if (qa != qb) return qb;  // certain RHS first
      if (qa) return a < b;     // uncertain block: stable on row index
      int cmp = va.Compare(vb);
      return cmp != 0 ? cmp < 0 : a < b;
    });
    for (size_t i = 0; i < rows.size(); ++i) {
      // Skip the rest of the certainly-equal-RHS run in one step.
      size_t next = i + 1;
      if (!rhs_of(rows[i]).is_question()) {
        while (next < rows.size() && !rhs_of(rows[next]).is_question() &&
               rhs_of(rows[next]) == rhs_of(rows[i])) {
          ++next;
        }
      }
      for (size_t j = next; j < rows.size(); ++j) {
        MAYWSD_RETURN_IF_ERROR(process_pair(rows[i], rows[j]));
      }
      for (size_t c : catch_all) {
        MAYWSD_RETURN_IF_ERROR(process_pair(rows[i], c));
      }
    }
  }
  for (size_t i = 0; i < catch_all.size(); ++i) {
    for (size_t j = i + 1; j < catch_all.size(); ++j) {
      MAYWSD_RETURN_IF_ERROR(process_pair(catch_all[i], catch_all[j]));
    }
  }
  return Status::Ok();
}

Status WsdtChase(Wsdt& wsdt, const std::vector<Dependency>& dependencies) {
  for (const Dependency& dep : dependencies) {
    if (const Egd* egd = std::get_if<Egd>(&dep)) {
      MAYWSD_RETURN_IF_ERROR(WsdtChaseEgd(wsdt, *egd));
    } else {
      MAYWSD_RETURN_IF_ERROR(WsdtChaseFd(wsdt, std::get<Fd>(dep)));
    }
  }
  return Status::Ok();
}

}  // namespace maywsd::core
