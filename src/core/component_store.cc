#include "core/component_store.h"

#include <cassert>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace maywsd::core::store {

namespace {

struct Counters {
  std::atomic<uint64_t> live_nodes{0};
  std::atomic<uint64_t> live_cells{0};
  std::atomic<uint64_t> peak_cells{0};
  std::atomic<uint64_t> compose_nodes{0};
  std::atomic<uint64_t> ext_nodes{0};
  std::atomic<uint64_t> forced_evals{0};
  std::atomic<uint64_t> dedup_hits{0};
  std::atomic<uint64_t> cow_breaks{0};
};

Counters& counters() {
  static Counters c;
  return c;
}

std::atomic<bool> g_eager{false};

/// Striped locks guarding cache fills; children are always forced before
/// the parent's stripe is taken, so no two stripes nest.
std::mutex& ForceMutex(const Node* n) {
  static std::mutex stripes[64];
  return stripes[(reinterpret_cast<uintptr_t>(n) >> 6) % 64];
}

void ChargeCells(uint64_t add) {
  Counters& c = counters();
  uint64_t now = c.live_cells.fetch_add(add) + add;
  uint64_t peak = c.peak_cells.load(std::memory_order_relaxed);
  while (now > peak &&
         !c.peak_cells.compare_exchange_weak(peak, now)) {
  }
}

/// The certain-singleton intern table. Entries are raw pointers that do
/// NOT own a reference, so the table never keeps a node alive and leak
/// accounting stays exact. The revive/teardown protocol (with
/// CertainLeaf/ReleaseNode):
///
///  - A lookup hit revives the node with a CAS-if-nonzero increment under
///    the table mutex. A node observed at refs == 0 is *doomed* — its
///    final releaser is already past the decrement and committed to
///    deleting it — so the lookup refuses to resurrect it (0 → 1 would
///    hand out a reference to memory about to be freed), erases the stale
///    entry, and mints a fresh node instead.
///  - The final releaser (the unique thread whose fetch_sub returned 1)
///    takes the mutex, erases the entry only if it still points at this
///    node (a concurrent lookup may already have replaced it), then
///    deletes. Because refs can never go 0 → 1, no other thread can be
///    holding the node by then.
struct InternTable {
  std::mutex mu;
  std::unordered_map<rel::Value, Node*> map;
};

InternTable& intern_table() {
  static InternTable t;
  return t;
}

}  // namespace

Node::Node(NodeKind k, size_t w, size_t n)
    : kind(k), width(w), worlds(n), ready(k == NodeKind::kLeaf) {
  counters().live_nodes.fetch_add(1, std::memory_order_relaxed);
}

Node::~Node() {
  counters().live_nodes.fetch_sub(1, std::memory_order_relaxed);
  counters().live_cells.fetch_sub(accounted_cells,
                                  std::memory_order_relaxed);
}

void ReleaseNode(Node* n) noexcept {
  if (n == nullptr) return;
  if (n->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // Sole deleter from here on: refs never revives from 0 (CertainLeaf
  // refuses), so reading the node is safe even for interned entries.
  if (n->interned) {
    InternTable& t = intern_table();
    std::lock_guard<std::mutex> lock(t.mu);
    auto it = t.map.find(n->values[0]);
    if (it != t.map.end() && it->second == n) t.map.erase(it);
  }
  delete n;
}

StoreStats GetStoreStats() {
  Counters& c = counters();
  StoreStats s;
  s.live_nodes = c.live_nodes.load();
  s.live_cells = c.live_cells.load();
  s.peak_cells = c.peak_cells.load();
  s.compose_nodes = c.compose_nodes.load();
  s.ext_nodes = c.ext_nodes.load();
  s.forced_evals = c.forced_evals.load();
  s.dedup_hits = c.dedup_hits.load();
  s.cow_breaks = c.cow_breaks.load();
  return s;
}

void Account(Node& n) {
  size_t cells = n.values.size();
  if (cells >= n.accounted_cells) {
    ChargeCells(cells - n.accounted_cells);
  } else {
    counters().live_cells.fetch_sub(n.accounted_cells - cells);
  }
  n.accounted_cells = cells;
}

NodePtr NewLeaf(size_t width) {
  return NodeRef::Adopt(new Node(NodeKind::kLeaf, width, 0));
}

NodePtr CertainLeaf(const rel::Value& v) {
  InternTable& t = intern_table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.map.find(v);
  if (it != t.map.end()) {
    // Revive: increment iff the count is still nonzero. A node at 0 is
    // doomed (see InternTable) — drop the stale entry and mint fresh.
    Node* hit = it->second;
    uint32_t refs = hit->refs.load(std::memory_order_relaxed);
    while (refs != 0) {
      if (hit->refs.compare_exchange_weak(refs, refs + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
        counters().dedup_hits.fetch_add(1, std::memory_order_relaxed);
        return NodeRef::Adopt(hit);
      }
    }
    t.map.erase(it);  // the doomed node's final releaser still deletes it
  }
  NodePtr leaf = NodeRef::Adopt(new Node(NodeKind::kLeaf, 1, 1));
  leaf->values.push_back(v);
  leaf->probs.push_back(1.0);
  leaf->interned = true;
  Account(*leaf);
  t.map[v] = leaf.get();
  return leaf;
}

NodePtr Compose(const NodePtr& a, const NodePtr& b) {
  if (!a || !b) return nullptr;
  NodePtr node = NodeRef::Adopt(
      new Node(NodeKind::kCompose, a->width + b->width,
               a->worlds * b->worlds));
  node->a = a;
  node->b = b;
  counters().compose_nodes.fetch_add(1, std::memory_order_relaxed);
  if (g_eager.load(std::memory_order_relaxed) ||
      node->worlds * node->width <= kEagerCells) {
    Force(node);
  }
  return node;
}

NodePtr ExtDup(const NodePtr& n, size_t src_col) {
  if (!n) return nullptr;
  assert(src_col < n->width);
  NodePtr node =
      NodeRef::Adopt(new Node(NodeKind::kExtDup, n->width + 1, n->worlds));
  node->a = n;
  node->src_col = src_col;
  counters().ext_nodes.fetch_add(1, std::memory_order_relaxed);
  if (g_eager.load(std::memory_order_relaxed) ||
      node->worlds * node->width <= kEagerCells) {
    Force(node);
  }
  return node;
}

NodePtr ExtConst(const NodePtr& n, const rel::Value& v) {
  if (!n) return nullptr;
  NodePtr node =
      NodeRef::Adopt(new Node(NodeKind::kExtConst, n->width + 1, n->worlds));
  node->a = n;
  node->constant = v;
  counters().ext_nodes.fetch_add(1, std::memory_order_relaxed);
  if (g_eager.load(std::memory_order_relaxed) ||
      node->worlds * node->width <= kEagerCells) {
    Force(node);
  }
  return node;
}

namespace {

/// Fills a compose node's cache from its (already forced) children.
void FillCompose(Node& n) {
  const Node& a = *n.a;
  const Node& b = *n.b;
  n.values.reserve(n.worlds * n.width);
  n.probs.reserve(n.worlds);
  for (size_t i = 0; i < a.worlds; ++i) {
    const rel::Value* ra = a.values.data() + i * a.width;
    for (size_t j = 0; j < b.worlds; ++j) {
      const rel::Value* rb = b.values.data() + j * b.width;
      n.values.insert(n.values.end(), ra, ra + a.width);
      n.values.insert(n.values.end(), rb, rb + b.width);
      n.probs.push_back(a.probs[i] * b.probs[j]);
    }
  }
}

/// How one output column of an ext chain resolves: either a column of the
/// chain's base node or a constant.
struct ColSpec {
  bool is_const = false;
  size_t base_col = 0;
  const rel::Value* constant = nullptr;
};

/// Fills an ext node's cache by resolving the whole chain of consecutive
/// ext nodes below it down to its base in one pass — O(chain) to build the
/// column specs, then O(final cells) to fill, with no per-intermediate
/// materialization.
void FillExtChain(Node& n) {
  // Chain from n down to (excluding) the first non-ext node.
  std::vector<const Node*> chain;
  const Node* base = &n;
  while (base->kind == NodeKind::kExtDup ||
         base->kind == NodeKind::kExtConst) {
    // A ready intermediate already has its matrix; treat it as the base.
    if (base != &n && base->ready.load(std::memory_order_acquire)) break;
    chain.push_back(base);
    base = base->a.get();
  }
  // Specs bottom-up: base columns first, then each chain level appends
  // one resolved column.
  std::vector<ColSpec> specs;
  specs.reserve(n.width);
  for (size_t c = 0; c < base->width; ++c) {
    specs.push_back(ColSpec{false, c, nullptr});
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const Node* level = *it;
    if (level->kind == NodeKind::kExtConst) {
      specs.push_back(ColSpec{true, 0, &level->constant});
    } else {
      specs.push_back(specs[level->src_col]);
    }
  }
  assert(specs.size() == n.width);
  n.values.reserve(n.worlds * n.width);
  for (size_t w = 0; w < n.worlds; ++w) {
    const rel::Value* row = base->values.data() + w * base->width;
    for (const ColSpec& s : specs) {
      n.values.push_back(s.is_const ? *s.constant : row[s.base_col]);
    }
  }
  n.probs = base->probs;
}

}  // namespace

void Force(const NodePtr& n) {
  if (!n || n->ready.load(std::memory_order_acquire)) return;
  // Force the inputs first, outside our stripe lock (stripes never nest).
  switch (n->kind) {
    case NodeKind::kCompose:
      Force(n->a);
      Force(n->b);
      break;
    case NodeKind::kExtDup:
    case NodeKind::kExtConst: {
      NodePtr base = n->a;
      while ((base->kind == NodeKind::kExtDup ||
              base->kind == NodeKind::kExtConst) &&
             !base->ready.load(std::memory_order_acquire)) {
        base = base->a;
      }
      Force(base);
      break;
    }
    case NodeKind::kLeaf:
      return;
  }
  std::lock_guard<std::mutex> lock(ForceMutex(n.get()));
  if (n->ready.load(std::memory_order_relaxed)) return;
  if (n->kind == NodeKind::kCompose) {
    FillCompose(*n);
  } else {
    FillExtChain(*n);
  }
  Account(*n);
  counters().forced_evals.fetch_add(1, std::memory_order_relaxed);
  n->ready.store(true, std::memory_order_release);
}

NodePtr MutableLeaf(NodePtr n) {
  if (!n) return nullptr;
  if (n->kind == NodeKind::kLeaf && !n->interned && n.unique()) {
    return n;
  }
  Force(n);
  NodePtr leaf = NodeRef::Adopt(new Node(NodeKind::kLeaf, n->width, n->worlds));
  if (n.unique() && !n->interned) {
    // Uniquely held derived node: its cache can be stolen, not copied.
    leaf->values = std::move(n->values);
    leaf->probs = std::move(n->probs);
  } else {
    leaf->values = n->values;
    leaf->probs = n->probs;
    counters().cow_breaks.fetch_add(1, std::memory_order_relaxed);
  }
  Account(*leaf);
  return leaf;
}

bool ColumnHasBottom(const Node* n, size_t col) {
  while (true) {
    if (n == nullptr || n->worlds == 0) return false;
    if (n->ready.load(std::memory_order_acquire)) {
      for (size_t w = 0; w < n->worlds; ++w) {
        if (n->values[w * n->width + col].is_bottom()) return true;
      }
      return false;
    }
    switch (n->kind) {
      case NodeKind::kCompose:
        if (col < n->a->width) {
          n = n->a.get();
        } else {
          col -= n->a->width;
          n = n->b.get();
        }
        break;
      case NodeKind::kExtDup:
        if (col == n->width - 1) col = n->src_col;
        n = n->a.get();
        break;
      case NodeKind::kExtConst:
        if (col == n->width - 1) return n->constant.is_bottom();
        n = n->a.get();
        break;
      case NodeKind::kLeaf:
        return false;  // unreachable: leaves are always ready
    }
  }
}

bool ColumnAllBottom(const Node* n, size_t col) {
  while (true) {
    if (n == nullptr || n->worlds == 0) return false;
    if (n->ready.load(std::memory_order_acquire)) {
      for (size_t w = 0; w < n->worlds; ++w) {
        if (!n->values[w * n->width + col].is_bottom()) return false;
      }
      return true;
    }
    switch (n->kind) {
      case NodeKind::kCompose:
        if (col < n->a->width) {
          n = n->a.get();
        } else {
          col -= n->a->width;
          n = n->b.get();
        }
        break;
      case NodeKind::kExtDup:
        if (col == n->width - 1) col = n->src_col;
        n = n->a.get();
        break;
      case NodeKind::kExtConst:
        if (col == n->width - 1) return n->constant.is_bottom();
        n = n->a.get();
        break;
      case NodeKind::kLeaf:
        return false;
    }
  }
}

const rel::Value* ColumnConstantValue(const Node* n, size_t col) {
  while (true) {
    if (n == nullptr || n->worlds == 0) return nullptr;
    if (n->ready.load(std::memory_order_acquire)) {
      const rel::Value& first = n->values[col];
      for (size_t w = 1; w < n->worlds; ++w) {
        if (!(n->values[w * n->width + col] == first)) return nullptr;
      }
      return &first;
    }
    switch (n->kind) {
      // The column's per-world value pattern depends only on the owning
      // side's row, so constancy delegates.
      case NodeKind::kCompose:
        if (col < n->a->width) {
          n = n->a.get();
        } else {
          col -= n->a->width;
          n = n->b.get();
        }
        break;
      case NodeKind::kExtDup:
        if (col == n->width - 1) col = n->src_col;
        n = n->a.get();
        break;
      case NodeKind::kExtConst:
        if (col == n->width - 1) return &n->constant;
        n = n->a.get();
        break;
      case NodeKind::kLeaf:
        return &n->values[col];
    }
  }
}

bool ColumnConstant(const Node* n, size_t col) {
  return ColumnConstantValue(n, col) != nullptr;
}

double ProbSum(const Node* n) {
  if (n == nullptr) return 0;
  if (n->ready.load(std::memory_order_acquire)) {
    double sum = 0;
    for (double p : n->probs) sum += p;
    return sum;
  }
  switch (n->kind) {
    case NodeKind::kCompose:
      return ProbSum(n->a.get()) * ProbSum(n->b.get());
    case NodeKind::kExtDup:
    case NodeKind::kExtConst:
      return ProbSum(n->a.get());
    case NodeKind::kLeaf:
      return 0;  // unreachable
  }
  return 0;
}

void SetEagerForTesting(bool eager) { g_eager.store(eager); }
bool EagerForTesting() { return g_eager.load(); }

}  // namespace maywsd::core::store
