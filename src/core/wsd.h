// Wsd: a (probabilistic) world-set decomposition — Definitions 1 and 2.
//
// A Wsd holds, per relation of the world-set schema, the schema and the
// maximum tuple count |R|max across worlds, plus a set of components whose
// product is the represented world-set relation. Every field R.tᵢ.A of every
// declared relation belongs to exactly one component ("all fields covered,
// each exactly once"); certain fields simply live in a component whose
// column is constant. Tuple slots may be removed wholesale by normalization
// (tuples invalid in all worlds), in which case none of their fields remain.
//
// rep(W) — the represented finite set of possible worlds — is computable via
// EnumerateWorlds() (exponential; guarded by a cap) and is used as the
// ground truth in tests and ablation benchmarks.
//
// The component pool (components, liveness bits, field index) sits behind a
// copy-on-write handle: copying a Wsd shares the pool in O(1) and the first
// mutating call on either copy privatizes it wholesale. Components span
// relations, so pool sharing is all-or-nothing — but the component payloads
// themselves are refcounted store nodes, so even a privatized pool still
// shares every unmutated payload. This is what makes Session::Snapshot()
// and Session::Fork() O(relations) on the WSD backend.

#ifndef MAYWSD_CORE_WSD_H_
#define MAYWSD_CORE_WSD_H_

#include <map>
#include <string>
#include <vector>

#include "common/cow.h"
#include "common/status.h"
#include "rel/database.h"
#include "core/component.h"
#include "core/field.h"

namespace maywsd::core {

/// Declared relation of the world-set schema.
struct WsdRelation {
  std::string name;
  Symbol name_sym = 0;
  rel::Schema schema;
  TupleId max_tuples = 0;
  /// Extra-schema "exists" attributes (Section 4 Discussion): a presence
  /// field (R, t, e) with a ⊥ value deletes tuple t from that world just
  /// like a ⊥ in a schema field, letting projection drop ⊥-carrying
  /// columns without composing components.
  std::vector<Symbol> presence_attrs;
};

/// Location of a field: component index and column within it.
struct FieldLoc {
  int32_t comp = -1;
  int32_t col = -1;
};

/// One possible world with its probability.
struct PossibleWorld {
  rel::Database db;
  double prob = 1.0;
};

/// A probabilistic world-set decomposition.
class Wsd {
 public:
  Wsd() = default;

  /// Declares a relation with |R|max tuple slots.
  Status AddRelation(const std::string& name, rel::Schema schema,
                     TupleId max_tuples);

  /// Looks up a declared relation.
  Result<const WsdRelation*> FindRelation(const std::string& name) const;
  bool HasRelation(const std::string& name) const;
  std::vector<std::string> RelationNames() const;

  /// Removes a relation and all component columns referring to it.
  Status DropRelation(const std::string& name);

  /// Registers a component; all its fields must refer to declared relations
  /// and must not yet be covered by another component.
  Status AddComponent(Component component);

  /// Number of component slots, including dead ones; iterate with
  /// IsLiveComponent(). CompactComponents() removes tombstones.
  size_t NumComponentSlots() const { return pool().components.size(); }
  bool IsLiveComponent(size_t i) const { return pool().alive[i]; }
  const Component& component(size_t i) const { return pool().components[i]; }
  Component& mutable_component(size_t i) { return pool().components[i]; }

  /// Indexes of live components.
  std::vector<size_t> LiveComponents() const;
  size_t NumLiveComponents() const;

  /// Finds the component/column of a field. NotFound for removed slots.
  Result<FieldLoc> Locate(const FieldKey& field) const;
  bool HasField(const FieldKey& field) const;

  /// Composes component `b` into component `a` (paper's compose); `b`
  /// becomes a tombstone. No-op when a == b.
  Status ComposeInPlace(size_t a, size_t b);

  /// Removes one column; a component left with zero columns is dropped
  /// (exact marginalization: its probabilities summed to 1).
  Status DropField(const FieldKey& field);

  /// The paper's ext primitive with index maintenance: appends to the
  /// component of `src` a duplicate column registered as field `dst`.
  /// `dst`'s relation must be declared and `dst` not yet covered.
  Status CopyFieldInto(const FieldKey& src, const FieldKey& dst);

  /// Registers `dst` as a new single-field component holding `value` with
  /// probability 1 (used when materializing certain fields).
  Status AddCertainField(const FieldKey& dst, const rel::Value& value);

  /// Replaces the schema of a declared relation (projection shrinks it).
  /// All remaining fields of the relation must exist in the new schema.
  Status UpdateRelationSchema(const std::string& name, rel::Schema schema);

  /// Raises |R|max by `extra` tuple slots (the new slots start empty —
  /// absent in every world until components cover them). Used when merging
  /// shard results slot-range by slot-range.
  Status GrowRelation(const std::string& name, TupleId extra);

  /// Replaces a live component with the given components covering exactly
  /// the same fields (used by decompose-normalization).
  Status ReplaceComponent(size_t index, std::vector<Component> parts);

  /// Removes tombstoned component slots (invalidates component indexes).
  void CompactComponents();

  /// Checks structural invariants: full or empty coverage of each tuple
  /// slot, consistent field index, probabilities summing to 1.
  Status Validate() const;

  /// The fields of tuple slot (rel, tid) that are present in the index.
  std::vector<FieldKey> FieldsOfTuple(const WsdRelation& rel,
                                      TupleId tid) const;

  /// The presence ("exists") fields of slot (rel, tid), if any.
  std::vector<FieldKey> PresenceFieldsOfTuple(const WsdRelation& rel,
                                              TupleId tid) const;

  /// Reserves a fresh presence attribute on `relation` and returns the
  /// field key for slot `tid` (no column is created yet — follow with
  /// RenameField or CopyFieldInto).
  Result<FieldKey> MakePresenceField(const std::string& relation,
                                     TupleId tid);

  /// Re-registers the column of `from` under field `to` (same component,
  /// same values). `to` must be unregistered and declared (schema or
  /// presence attribute).
  Status RenameField(const FieldKey& from, const FieldKey& to);

  /// Removes all presence fields by composing each into a component of its
  /// tuple's schema fields and propagating the ⊥s (the inverse of the
  /// exists-column optimization; restores schema-only invariants).
  Status EliminatePresenceFields();

  /// True if any relation carries presence fields.
  bool HasPresenceFields() const;

  /// True if slot (rel, tid) has all its fields present.
  bool SlotPresent(const WsdRelation& rel, TupleId tid) const;

  /// Number of world combinations (product of live component sizes),
  /// saturating at `cap`.
  uint64_t WorldCombinationCount(uint64_t cap) const;

  /// Enumerates rep(W): one PossibleWorld per combination of local worlds.
  /// Worlds that coincide are NOT merged (see CollapseWorlds). If
  /// `relations` is non-empty, only those relations are materialized.
  /// Fails with kResourceExhausted beyond `max_worlds` combinations.
  Result<std::vector<PossibleWorld>> EnumerateWorlds(
      uint64_t max_worlds,
      const std::vector<std::string>& relations = {}) const;

  std::string ToString() const;

 private:
  Status CheckComponentFields(const Component& component) const;

  /// The shared-on-copy part of the store: everything that scales with the
  /// data. Accessed only through pool() so constness decides read vs
  /// privatize.
  struct Pool {
    std::vector<Component> components;
    std::vector<bool> alive;
    std::unordered_map<FieldKey, FieldLoc> field_index;
  };

  /// Read access to the pool; never copies.
  const Pool& pool() const { return pool_.get(); }
  /// Write access; breaks sharing with any copies first. References
  /// obtained from the pool before this call stay valid until the next
  /// privatization (common::Cow's retired-generation keepalive).
  Pool& pool() { return pool_.Mutable(); }

  std::vector<WsdRelation> relations_;
  std::map<std::string, size_t> relation_by_name_;
  Cow<Pool> pool_;
};

/// Merges equal worlds, summing probabilities; worlds are compared as sets
/// of tuples per relation. The result is sorted by canonical form.
std::vector<PossibleWorld> CollapseWorlds(std::vector<PossibleWorld> worlds);

/// True if the two world-sets are the same probability distribution over
/// worlds (after collapsing), within probability tolerance `eps`.
bool WorldSetsEquivalent(std::vector<PossibleWorld> a,
                         std::vector<PossibleWorld> b, double eps = 1e-6);

/// Canonical serialization of one world (sorted relations, sorted rows) —
/// the key used by CollapseWorlds/WorldSetsEquivalent.
std::string CanonicalWorldKey(const rel::Database& db);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSD_H_
