// Chase on WSDTs/UWSDTs — the Section 8 cleaning procedure on the
// template-based representation used at scale (Figure 26 runs this over the
// census data).
//
// Per template row, the dependency is first evaluated on certain fields; a
// row whose certain fields already decide the dependency is skipped without
// touching any component (the common case: placeholder densities are
// ≤ 0.1%). Only rows where a placeholder participates compose components
// and remove violating local worlds, renormalizing probabilities.

#ifndef MAYWSD_CORE_WSDT_CHASE_H_
#define MAYWSD_CORE_WSDT_CHASE_H_

#include <vector>

#include "common/status.h"
#include "core/chase.h"
#include "core/wsdt.h"

namespace maywsd::core {

/// Cap on enumerated possible LHS key combinations per tuple in the FD
/// chase bucketing (beyond it the tuple is paired conservatively with all).
inline constexpr size_t kMaxFdKeyCombos = 64;

/// Enforces one single-tuple EGD on every template row of its relation.
Status WsdtChaseEgd(Wsdt& wsdt, const Egd& egd);

/// Enforces one FD on every pair of possibly-conflicting template rows
/// (pairs are found via hash buckets over certain/possible LHS values).
Status WsdtChaseFd(Wsdt& wsdt, const Fd& fd);

/// Chases all dependencies in order (single pass, Theorem 2).
Status WsdtChase(Wsdt& wsdt, const std::vector<Dependency>& dependencies);

}  // namespace maywsd::core

#endif  // MAYWSD_CORE_WSDT_CHASE_H_
