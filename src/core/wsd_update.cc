#include "core/wsd_update.h"

#include <algorithm>
#include <functional>
#include <set>
#include <utility>

#include "core/wsdt_algebra.h"

namespace maywsd::core {

namespace {

/// Schema plus presence fields of slot (rel, tid); empty for removed slots.
std::vector<FieldKey> AllSlotFields(const Wsd& wsd, const WsdRelation& rel,
                                    TupleId tid) {
  std::vector<FieldKey> fields = wsd.FieldsOfTuple(rel, tid);
  if (fields.empty()) return fields;
  for (const FieldKey& pf : wsd.PresenceFieldsOfTuple(rel, tid)) {
    fields.push_back(pf);
  }
  return fields;
}

}  // namespace

Result<std::vector<std::vector<FieldKey>>> GuardSlotCandidates(
    const Wsd& wsd, const std::string& guard_rel) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* g, wsd.FindRelation(guard_rel));
  std::vector<std::vector<FieldKey>> slots;
  for (TupleId t = 0; t < g->max_tuples; ++t) {
    std::vector<FieldKey> fields = AllSlotFields(wsd, *g, t);
    if (fields.empty()) continue;  // slot removed by normalization
    slots.push_back(std::move(fields));
  }
  return slots;
}

Status WsdInsertTuples(Wsd& wsd, const std::string& rel,
                       const rel::Relation& tuples,
                       const WsdUpdateGuard& guard) {
  if (guard.mode() == WsdUpdateGuard::Mode::kNever) return Status::Ok();
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(rel));
  if (tuples.arity() != r->schema.arity()) {
    return Status::InvalidArgument("insert arity mismatch on " + rel);
  }
  rel::Schema schema = r->schema;
  Symbol rel_sym = r->name_sym;
  TupleId base = r->max_tuples;
  MAYWSD_RETURN_IF_ERROR(
      wsd.GrowRelation(rel, static_cast<TupleId>(tuples.NumRows())));

  const bool conditional =
      guard.mode() == WsdUpdateGuard::Mode::kConditional;
  for (size_t i = 0; i < tuples.NumRows(); ++i) {
    TupleId tid = base + static_cast<TupleId>(i);
    rel::TupleRef row = tuples.row(i);
    for (size_t a = 0; a < schema.arity(); ++a) {
      FieldKey f(rel_sym, tid, schema.attr(a).name);
      MAYWSD_RETURN_IF_ERROR(wsd.AddCertainField(f, row[a]));
    }
    if (!conditional) continue;
    // Correlate the tuple's presence with the guard: compose the first
    // attribute's fresh singleton into the guard component and ⊥ it in
    // the unselected worlds.
    FieldKey f0(rel_sym, tid, schema.attr(0).name);
    MAYWSD_ASSIGN_OR_RETURN(FieldLoc loc, wsd.Locate(f0));
    MAYWSD_RETURN_IF_ERROR(
        wsd.ComposeInPlace(guard.comp(), static_cast<size_t>(loc.comp)));
    MAYWSD_ASSIGN_OR_RETURN(loc, wsd.Locate(f0));
    MAYWSD_ASSIGN_OR_RETURN(std::vector<bool> selected, guard.Selected(wsd));
    Component& comp = wsd.mutable_component(guard.comp());
    size_t col = static_cast<size_t>(loc.col);
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (!selected[w]) comp.at(w, col) = rel::Value::Bottom();
    }
  }
  return Status::Ok();
}

namespace {

/// Shared core of delete and modify: per alive slot of `rel`, composes the
/// components carrying `attrs` (plus the guard component), then calls
/// `apply(comp, attr_cols, selected)` to rewrite local worlds in place.
/// `attr_cols` maps every attribute of `attrs` to its column in `comp`;
/// `selected` is empty for unconditional updates (all worlds selected).
Status ForEachSlotComposed(
    Wsd& wsd, const std::string& rel, const std::vector<std::string>& attrs,
    const WsdUpdateGuard& guard,
    const std::function<Status(
        Component& comp,
        const std::vector<std::pair<std::string, size_t>>& attr_cols,
        const std::vector<bool>& selected)>& apply) {
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(rel));
  for (const std::string& a : attrs) {
    if (!r->schema.Contains(a)) {
      return Status::NotFound("attribute " + a + " not in " + rel);
    }
  }
  const bool conditional =
      guard.mode() == WsdUpdateGuard::Mode::kConditional;
  Symbol rel_sym = r->name_sym;
  TupleId max_tuples = r->max_tuples;
  rel::Schema schema = r->schema;
  // The guard's selection bitmap only changes when a composition grows the
  // guard component's local-world set; recompute it lazily instead of per
  // slot.
  std::vector<bool> selected;
  bool selected_valid = false;
  for (TupleId t = 0; t < max_tuples; ++t) {
    FieldKey probe(rel_sym, t, schema.attr(0).name);
    if (!wsd.HasField(probe)) continue;  // removed slot
    std::set<int32_t> comps;
    for (const std::string& a : attrs) {
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsd.Locate(FieldKey(rel_sym, t, InternString(a))));
      comps.insert(loc.comp);
    }
    size_t target = conditional ? guard.comp()
                                : static_cast<size_t>(*comps.begin());
    for (int32_t c : comps) {
      if (static_cast<size_t>(c) == target) continue;
      MAYWSD_RETURN_IF_ERROR(
          wsd.ComposeInPlace(target, static_cast<size_t>(c)));
      if (target == guard.comp()) selected_valid = false;
    }
    std::vector<std::pair<std::string, size_t>> attr_cols;
    for (const std::string& a : attrs) {
      MAYWSD_ASSIGN_OR_RETURN(
          FieldLoc loc, wsd.Locate(FieldKey(rel_sym, t, InternString(a))));
      attr_cols.emplace_back(a, static_cast<size_t>(loc.col));
    }
    if (conditional && !selected_valid) {
      MAYWSD_ASSIGN_OR_RETURN(selected, guard.Selected(wsd));
      selected_valid = true;
    }
    MAYWSD_RETURN_IF_ERROR(
        apply(wsd.mutable_component(target), attr_cols, selected));
  }
  return Status::Ok();
}

}  // namespace

Status WsdDeleteWhere(Wsd& wsd, const std::string& rel,
                      const rel::Predicate& pred,
                      const WsdUpdateGuard& guard) {
  if (guard.mode() == WsdUpdateGuard::Mode::kNever) return Status::Ok();
  MAYWSD_ASSIGN_OR_RETURN(const WsdRelation* r, wsd.FindRelation(rel));
  std::vector<std::string> attrs = pred.ReferencedAttributes();
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  if (attrs.empty()) {
    // σ_true-style delete: any column works as the deletion mark.
    attrs.push_back(std::string(r->schema.attr(0).name_view()));
  }
  return ForEachSlotComposed(
      wsd, rel, attrs, guard,
      [&](Component& comp,
          const std::vector<std::pair<std::string, size_t>>& attr_cols,
          const std::vector<bool>& selected) -> Status {
        for (size_t w = 0; w < comp.NumWorlds(); ++w) {
          if (!selected.empty() && !selected[w]) continue;
          bool absent = false;
          for (const auto& [a, col] : attr_cols) {
            if (comp.at(w, col).is_bottom()) absent = true;
          }
          if (absent) continue;
          auto get = [&](const std::string& name) -> rel::Value {
            for (const auto& [a, col] : attr_cols) {
              if (a == name) return comp.at(w, col);
            }
            return rel::Value::Bottom();
          };
          if (EvalPredicateResolved(pred, get)) {
            for (const auto& [a, col] : attr_cols) {
              comp.at(w, col) = rel::Value::Bottom();
            }
          }
        }
        comp.PropagateBottom();
        return Status::Ok();
      });
}

Status WsdModifyWhere(Wsd& wsd, const std::string& rel,
                      const rel::Predicate& pred,
                      std::span<const rel::Assignment> assignments,
                      const WsdUpdateGuard& guard) {
  if (guard.mode() == WsdUpdateGuard::Mode::kNever) return Status::Ok();
  if (assignments.empty()) return Status::Ok();
  std::vector<std::string> attrs = pred.ReferencedAttributes();
  for (const rel::Assignment& a : assignments) attrs.push_back(a.attr);
  std::sort(attrs.begin(), attrs.end());
  attrs.erase(std::unique(attrs.begin(), attrs.end()), attrs.end());
  return ForEachSlotComposed(
      wsd, rel, attrs, guard,
      [&](Component& comp,
          const std::vector<std::pair<std::string, size_t>>& attr_cols,
          const std::vector<bool>& selected) -> Status {
        std::vector<std::pair<size_t, rel::Value>> assigned_cols;
        for (const rel::Assignment& as : assignments) {
          for (const auto& [a, col] : attr_cols) {
            if (a == as.attr) {
              assigned_cols.emplace_back(col, as.value);
              break;
            }
          }
        }
        for (size_t w = 0; w < comp.NumWorlds(); ++w) {
          if (!selected.empty() && !selected[w]) continue;
          bool absent = false;
          for (const auto& [a, col] : attr_cols) {
            if (comp.at(w, col).is_bottom()) absent = true;
          }
          if (absent) continue;
          auto get = [&](const std::string& name) -> rel::Value {
            for (const auto& [a, col] : attr_cols) {
              if (a == name) return comp.at(w, col);
            }
            return rel::Value::Bottom();
          };
          if (EvalPredicateResolved(pred, get)) {
            for (const auto& [col, v] : assigned_cols) comp.at(w, col) = v;
          }
        }
        return Status::Ok();
      });
}

Status WsdApplyUpdate(Wsd& wsd, const rel::UpdateOp& op,
                      const std::string& guard_rel) {
  WsdUpdateGuard guard = WsdUpdateGuard::Always();
  if (!guard_rel.empty()) {
    MAYWSD_ASSIGN_OR_RETURN(guard, WsdUpdateGuard::Analyze(wsd, guard_rel));
  }
  switch (op.kind()) {
    case rel::UpdateOp::Kind::kInsert:
      return WsdInsertTuples(wsd, op.relation(), op.tuples(), guard);
    case rel::UpdateOp::Kind::kDelete:
      return WsdDeleteWhere(wsd, op.relation(), op.predicate(), guard);
    case rel::UpdateOp::Kind::kModify:
      return WsdModifyWhere(wsd, op.relation(), op.predicate(),
                            op.assignments(), guard);
  }
  return Status::Internal("unknown update kind");
}

}  // namespace maywsd::core
