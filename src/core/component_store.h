// The shared, interned component store: refcounted local-world payloads
// behind every Component, with lazy composition.
//
// A Component used to own its local-world matrix by value, so compose(C1,
// C2) materialized the product of the local-world sets eagerly — the
// quadratic paths the paper's 10^10^6-worlds headline argues against.
// Here the payload is a refcounted node in a composition DAG:
//
//   kLeaf      owns a row-major value matrix and a probability vector;
//   kCompose   the product of two child payloads — O(1) to record,
//              |a|·|b| local worlds when (and only when) forced;
//   kExtDup    the paper's ext(C, A, B): one appended column duplicating
//              an existing column of the child — O(1) to record;
//   kExtConst  one appended column holding a constant in every world.
//
// Reads (`at`, `prob`) force a derived node on first touch and memoize
// the materialized matrix in the node itself, so repeated enumeration
// pays once per DAG node; column predicates (has-⊥ / all-⊥ / constant)
// and probability sums evaluate structurally on the DAG without forcing
// anything. Writers go through copy-on-write: a uniquely held leaf
// mutates in place, anything shared or derived is first forced into a
// fresh private leaf.
//
// Certain singleton leaves (one world, one column, probability 1 — the
// bulk of any census-style store) are interned in a process-wide table
// keyed on the value, so a million certain fields of the same value share
// one node. The table holds raw entries that lookups revive with a
// CAS-if-nonzero increment: dropping the last Component frees the node and
// clears its entry, which keeps the leak accounting exact.
//
// Thread-safety: nodes referenced by more than one owner are immutable
// (copy-on-write guarantees it), forcing is idempotent and guarded by a
// striped mutex, and the statistics are process-global atomics — so
// concurrent shard builds may share and force nodes freely. Nodes are
// refcounted intrusively (NodeRef) rather than via shared_ptr so that the
// mutate-in-place probe is a *sound* synchronization point: releases
// decrement with acq_rel, NodeRef::unique() loads with acquire, so a
// probe that observes 1 happens-after every prior owner's release — the
// guarantee shared_ptr::use_count() (a relaxed load) never gave. Sessions
// forked from one another may therefore share and release nodes from
// different threads with no lock beyond their own state locks. Mutating a
// Component still requires external synchronization, as before.

#ifndef MAYWSD_CORE_COMPONENT_STORE_H_
#define MAYWSD_CORE_COMPONENT_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "rel/value.h"

namespace maywsd::core::store {

enum class NodeKind : uint8_t { kLeaf, kCompose, kExtDup, kExtConst };

struct Node;

/// Destroys `n` if this release drops the last reference; unlinks interned
/// nodes from the certain-singleton table first. Out of line so NodeRef
/// stays header-only without pulling the intern table in.
void ReleaseNode(Node* n) noexcept;

/// Intrusive refcounted handle to a Node. Copy is a relaxed increment;
/// release is an acq_rel decrement (the dropping thread deletes);
/// unique() is an acquire load — a genuine synchronization point, unlike
/// shared_ptr::use_count(). Handles themselves are externally
/// synchronized; only the *count* is contended across sessions.
class NodeRef {
 public:
  NodeRef() = default;
  NodeRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Takes ownership of one existing reference (a freshly minted node, or
  /// a count the caller already incremented).
  static NodeRef Adopt(Node* n) {
    NodeRef r;
    r.n_ = n;
    return r;
  }

  NodeRef(const NodeRef& o) : n_(o.AcquireRaw()) {}
  NodeRef(NodeRef&& o) noexcept : n_(o.n_) { o.n_ = nullptr; }
  NodeRef& operator=(const NodeRef& o) {
    if (this != &o) {
      Node* acquired = o.AcquireRaw();
      ReleaseNode(n_);
      n_ = acquired;
    }
    return *this;
  }
  NodeRef& operator=(NodeRef&& o) noexcept {
    if (this != &o) {
      ReleaseNode(n_);
      n_ = o.n_;
      o.n_ = nullptr;
    }
    return *this;
  }
  ~NodeRef() { ReleaseNode(n_); }

  Node* get() const { return n_; }
  Node& operator*() const { return *n_; }
  Node* operator->() const { return n_; }
  explicit operator bool() const { return n_ != nullptr; }
  bool operator==(const NodeRef& o) const { return n_ == o.n_; }
  bool operator==(std::nullptr_t) const { return n_ == nullptr; }

  /// True iff this handle is the only reference. An acquire load paired
  /// with acq_rel release decrements: observing 1 happens-after every
  /// prior owner's release, so mutating in place is race-free.
  bool unique() const;

 private:
  Node* AcquireRaw() const;

  Node* n_ = nullptr;
};

using NodePtr = NodeRef;

/// One payload node of the composition DAG. `values`/`probs` are the owned
/// matrix for leaves and the memoized materialization for derived nodes
/// (valid once `ready` is set).
struct Node {
  Node(NodeKind k, size_t w, size_t n);
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeKind kind;
  size_t width;   ///< column count
  size_t worlds;  ///< local-world count (known at creation for every kind)

  std::vector<rel::Value> values;  ///< row-major: world * width + col
  std::vector<double> probs;
  std::atomic<bool> ready;  ///< values/probs are valid (always for leaves)
  bool interned = false;    ///< lives in the certain-singleton table

  /// Intrusive reference count; see NodeRef for the memory-order contract.
  std::atomic<uint32_t> refs{1};

  NodePtr a, b;             ///< children (kCompose: both; ext kinds: a)
  size_t src_col = 0;       ///< kExtDup: duplicated column of `a`
  rel::Value constant;      ///< kExtConst: the appended value

  /// Cells currently charged to the live-cell counter (see Account()).
  size_t accounted_cells = 0;
};

inline bool NodeRef::unique() const {
  return n_ != nullptr && n_->refs.load(std::memory_order_acquire) == 1;
}

inline Node* NodeRef::AcquireRaw() const {
  if (n_ != nullptr) n_->refs.fetch_add(1, std::memory_order_relaxed);
  return n_;
}

/// Derived nodes whose forced matrix would stay at or under this many
/// cells are materialized eagerly: below this size a node + chain walk
/// costs more than the copy, and bounded eager steps keep per-step cost
/// O(1) for long chains (each step re-crosses the threshold at most once).
inline constexpr size_t kEagerCells = 64;

/// Process-wide accounting, surfaced through api::SessionStats.
struct StoreStats {
  uint64_t live_nodes = 0;      ///< nodes currently alive
  uint64_t live_cells = 0;      ///< materialized value cells currently alive
  uint64_t peak_cells = 0;      ///< high-water mark of live_cells
  uint64_t compose_nodes = 0;   ///< kCompose nodes ever recorded
  uint64_t ext_nodes = 0;       ///< ext nodes ever recorded
  uint64_t forced_evals = 0;    ///< derived nodes materialized
  uint64_t dedup_hits = 0;      ///< certain-singleton intern hits
  uint64_t cow_breaks = 0;      ///< shared payloads privatized for writing
};

StoreStats GetStoreStats();

/// A fresh mutable leaf with `width` columns and no worlds.
NodePtr NewLeaf(size_t width);

/// The interned certain singleton [v | 1.0]. Never mutated in place.
NodePtr CertainLeaf(const rel::Value& v);

/// Records the product of `a` and `b` (either may be null = zero worlds,
/// yielding null). O(1) beyond kEagerCells; forces eagerly below it.
NodePtr Compose(const NodePtr& a, const NodePtr& b);

/// Records ext: one appended column duplicating `src_col` of `n`.
NodePtr ExtDup(const NodePtr& n, size_t src_col);

/// Records ext with a constant column.
NodePtr ExtConst(const NodePtr& n, const rel::Value& v);

/// Materializes `n` (and whatever of its inputs the fill needs), memoizing
/// into the node. Idempotent, thread-safe. Null is a no-op.
void Force(const NodePtr& n);

/// `n`, guaranteed forced (convenience for read paths).
inline const Node& ForcedRef(const NodePtr& n) {
  if (!n->ready.load(std::memory_order_acquire)) Force(n);
  return *n;
}

/// A leaf that is safe to mutate through `n`'s owner: `n` itself when it
/// is a uniquely held non-interned leaf, otherwise a fresh private leaf
/// with the same (forced) contents. Null stays null.
NodePtr MutableLeaf(NodePtr n);

/// Re-charges `n`'s materialized cells against the live/peak counters;
/// call after growing or shrinking a mutable leaf's matrix.
void Account(Node& n);

// -- Non-forcing structural probes --------------------------------------------
//
// Column predicates used by the algebra's certain-column fast paths and by
// UpdateGuard::Analyze. They recurse over the DAG (compose delegates to
// the side that owns the column, ext resolves the appended column), so
// probing never materializes a product. All return false for null or
// zero-world nodes, matching the eager semantics.

bool ColumnHasBottom(const Node* n, size_t col);
bool ColumnAllBottom(const Node* n, size_t col);
bool ColumnConstant(const Node* n, size_t col);

/// The value a constant column holds in every local world, or null when the
/// column is not constant (or the node is null / has no worlds). The pointer
/// is valid until the owning node is mutated or destroyed.
const rel::Value* ColumnConstantValue(const Node* n, size_t col);

/// Sum of local-world probabilities, computed structurally (compose
/// multiplies the children's sums).
double ProbSum(const Node* n);

/// When set, Compose/ExtDup/ExtConst force immediately on creation — the
/// lazy-vs-eager equivalence oracle runs the same workload both ways.
void SetEagerForTesting(bool eager);
bool EagerForTesting();

}  // namespace maywsd::core::store

#endif  // MAYWSD_CORE_COMPONENT_STORE_H_
