// CSV import/export for relations.
//
// Format: first line is a header of `name:type` pairs (type ∈ int, double,
// string, any); subsequent lines are rows. The special tokens `\bot` and `?`
// parse to ⊥ and the template placeholder. Used by the examples to persist
// generated census extracts.

#ifndef MAYWSD_REL_CSV_H_
#define MAYWSD_REL_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "rel/relation.h"

namespace maywsd::rel {

/// Writes `relation` as CSV.
Status WriteCsv(const Relation& relation, std::ostream& os);
Status WriteCsvFile(const Relation& relation, const std::string& path);

/// Reads a relation from CSV; `name` names the result.
Result<Relation> ReadCsv(std::istream& is, const std::string& name);
Result<Relation> ReadCsvFile(const std::string& path, const std::string& name);

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_CSV_H_
