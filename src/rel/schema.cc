#include "rel/schema.h"

#include <sstream>

namespace maywsd::rel {

namespace {

std::string_view TypeName(AttrType t) {
  switch (t) {
    case AttrType::kAny:
      return "any";
    case AttrType::kInt:
      return "int";
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
  }
  return "?";
}

}  // namespace

Schema Schema::FromNames(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  attrs.reserve(names.size());
  for (const auto& n : names) attrs.emplace_back(n);
  return Schema(std::move(attrs));
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  // Avoid interning probe strings: compare by content.
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name_view() == name) return i;
  }
  return std::nullopt;
}

std::optional<size_t> Schema::IndexOf(Symbol name) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return std::nullopt;
}

Status Schema::AddAttribute(Attribute attr) {
  if (IndexOf(attr.name)) {
    return Status::AlreadyExists("duplicate attribute " +
                                 std::string(attr.name_view()));
  }
  attrs_.push_back(attr);
  return Status::Ok();
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> out;
  out.reserve(names.size());
  for (const auto& n : names) {
    auto idx = IndexOf(n);
    if (!idx) return Status::NotFound("no attribute " + n + " in " + ToString());
    out.push_back(attrs_[*idx]);
  }
  return Schema(std::move(out));
}

Result<Schema> Schema::Rename(std::string_view from, std::string_view to) const {
  auto idx = IndexOf(from);
  if (!idx) {
    return Status::NotFound("no attribute " + std::string(from) + " in " +
                            ToString());
  }
  if (Contains(to) && to != from) {
    return Status::AlreadyExists("attribute " + std::string(to) +
                                 " already exists in " + ToString());
  }
  Schema out = *this;
  out.attrs_[*idx].name = InternString(to);
  return out;
}

Result<Schema> Schema::Concat(const Schema& other) const {
  Schema out = *this;
  for (const auto& a : other.attrs_) {
    MAYWSD_RETURN_IF_ERROR(out.AddAttribute(a));
  }
  return out;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) os << ", ";
    os << attrs_[i].name_view() << ":" << TypeName(attrs_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace maywsd::rel
