// Rule-based logical optimizer.
//
// Section 5 of the paper: "For the evaluation of a query involving join, we
// merge the product and the selections with join conditions and distribute
// projections and selections to the operands. When evaluating a query
// involving several selections and projections on the same relation, we
// again merge these operators." These are exactly the rewrites implemented
// here; they are applied both to plain plans (one-world baseline) and, by
// the UWSDT layer, before translating a plan into UWSDT operations.

#ifndef MAYWSD_REL_OPTIMIZER_H_
#define MAYWSD_REL_OPTIMIZER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rel/algebra.h"
#include "rel/database.h"

namespace maywsd::rel {

/// Applies rewrite rules until fixpoint:
///   1. Select(Select(x))        → Select(And, x)          (merge selections)
///   2. Select(Product(l, r))    → Join / pushed selections (σ(×) fusion)
///   3. Select(Join(l, r))       → Join with fused predicate
///   4. Project(Project(x))      → Project(x)              (merge projections)
///   5. Select(Union(l, r))      → Union(Select(l), Select(r))
/// `db` supplies schemas for attribute-scoping decisions.
Result<Plan> Optimize(const Plan& plan, const Database& db);

/// Same rewrites, but driven from a bare (name, schema) catalog — the form
/// the core engine's world-set backends provide (their relations are not
/// rel::Relations). Only schemas are consulted, never tuples.
Result<Plan> Optimize(
    const Plan& plan,
    const std::vector<std::pair<std::string, Schema>>& schemas);

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_OPTIMIZER_H_
