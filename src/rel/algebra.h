// Relational algebra plans (the named perspective of Section 2):
// σ selection, π projection, × product, ∪ union, − difference, δ renaming,
// plus ⋈ join as the optimizer's fused form of σ(×).
//
// Plan is an immutable value type with shared subtrees.

#ifndef MAYWSD_REL_ALGEBRA_H_
#define MAYWSD_REL_ALGEBRA_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rel/predicate.h"

namespace maywsd::rel {

/// A relational algebra expression tree.
class Plan {
 public:
  enum class Kind : uint8_t {
    kScan,
    kSelect,
    kProject,
    kProduct,
    kUnion,
    kDifference,
    kRename,
    kJoin,
  };

  /// Leaf: reads the named relation from the database.
  static Plan Scan(std::string relation);
  /// σ_pred(child).
  static Plan Select(Predicate pred, Plan child);
  /// π_attrs(child); attrs are kept in the given order.
  static Plan Project(std::vector<std::string> attrs, Plan child);
  /// left × right (attribute sets must be disjoint).
  static Plan Product(Plan left, Plan right);
  /// left ∪ right (schemas must match).
  static Plan Union(Plan left, Plan right);
  /// left − right (schemas must match).
  static Plan Difference(Plan left, Plan right);
  /// δ renaming several attributes at once: {old → new}.
  static Plan Rename(std::vector<std::pair<std::string, std::string>> renames,
                     Plan child);
  /// left ⋈_pred right — equivalent to Select(pred, Product(l, r)).
  static Plan Join(Predicate pred, Plan left, Plan right);

  Kind kind() const { return node_->kind; }

  const std::string& relation() const { return node_->relation; }
  const Predicate& predicate() const { return node_->pred; }
  const std::vector<std::string>& attributes() const { return node_->attrs; }
  const std::vector<std::pair<std::string, std::string>>& renames() const {
    return node_->renames;
  }
  const Plan& child() const { return *node_->left; }
  const Plan& left() const { return *node_->left; }
  const Plan& right() const { return *node_->right; }
  bool has_right() const { return node_->right != nullptr; }

  /// Number of operator nodes in the plan.
  size_t NodeCount() const;

  /// True when both values wrap the same underlying node (plans share
  /// subtrees through shared_ptr); identity fast path for PlanEqual.
  bool SharesNodeWith(const Plan& o) const { return node_ == o.node_; }

  std::string ToString() const;

 private:
  struct Node {
    Kind kind = Kind::kScan;
    std::string relation;
    Predicate pred = Predicate::True();
    std::vector<std::string> attrs;
    std::vector<std::pair<std::string, std::string>> renames;
    std::shared_ptr<const Plan> left;
    std::shared_ptr<const Plan> right;
  };

  explicit Plan(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_ALGEBRA_H_
