// Relation: an in-memory table with flat row-major Value storage.
//
// The engine uses set semantics (the paper's relational algebra is the
// classical set algebra); Relation itself stores rows in insertion order and
// offers SortDedup()/IsSetNormalized() so operators can normalize when an
// operation may introduce duplicates.
//
// Row storage is copy-on-write (common::Cow): copying a Relation shares the
// flat value vector in O(1) and the first mutation on either copy
// privatizes it. This is what makes rel::Database copies — and with them
// Session::Snapshot()/Fork() on the uniform and WSDT template stores —
// O(relations) instead of O(rows), with TID columns staying stable across
// the share because the rows themselves never move.

#ifndef MAYWSD_REL_RELATION_H_
#define MAYWSD_REL_RELATION_H_

#include <span>
#include <string>
#include <vector>

#include "common/cow.h"
#include "common/status.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace maywsd::rel {

/// A borrowed view of one row; valid while the relation is not mutated.
class TupleRef {
 public:
  TupleRef(const Value* data, size_t arity) : data_(data), arity_(arity) {}

  size_t arity() const { return arity_; }
  const Value& operator[](size_t i) const { return data_[i]; }
  const Value* data() const { return data_; }
  std::span<const Value> span() const { return {data_, arity_}; }

  /// Materializes the row.
  std::vector<Value> ToRow() const { return {data_, data_ + arity_}; }

  bool operator==(const TupleRef& o) const;
  /// Lexicographic order by Value::Compare.
  int Compare(const TupleRef& o) const;
  size_t Hash() const;

  /// True iff any field is ⊥ — i.e. this is a t⊥ padding tuple (Section 3).
  bool HasBottom() const;

  std::string ToString() const;

 private:
  const Value* data_;
  size_t arity_;
};

/// An in-memory relation instance.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema, std::string name = "")
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  size_t arity() const { return schema_.arity(); }
  size_t NumRows() const { return arity() == 0 ? 0 : data().size() / arity(); }
  bool empty() const { return data().empty(); }

  /// Row accessor (no bounds check in release builds).
  TupleRef row(size_t i) const {
    return TupleRef(data().data() + i * arity(), arity());
  }

  /// Appends a row; arity mismatch is a programming error (asserted).
  void AppendRow(std::span<const Value> values);
  void AppendRow(std::initializer_list<Value> values);

  /// Appends a row that is checked against the declared attribute types.
  Status AppendRowChecked(std::span<const Value> values);

  /// Overwrites one cell in place.
  void SetCell(size_t row, size_t col, const Value& v) {
    MutableData()[row * arity() + col] = v;
  }

  /// Removes all rows, keeping the schema.
  void Clear() {
    if (!data().empty()) data_.Reset({});
  }

  /// Sorts rows and removes duplicates (set-semantics normal form).
  void SortDedup();

  /// True if rows are sorted and duplicate-free.
  bool IsSetNormalized() const;

  /// Linear-scan membership test (use HashIndex for repeated probes).
  bool ContainsRow(std::span<const Value> values) const;

  /// Set equality irrespective of row order (copies + normalizes).
  bool EqualsAsSet(const Relation& other) const;

  /// Reserves storage for `rows` rows.
  void Reserve(size_t rows) { MutableData().reserve(rows * arity()); }

  /// Raw storage (row-major); used by storage-aware operators.
  const std::vector<Value>& data() const { return data_.get(); }

  /// True iff both relations share the same row storage (O(1) identity).
  bool SharesDataWith(const Relation& other) const {
    return data_.SharesWith(other.data_);
  }

  /// ASCII table rendering (for examples and debugging); caps at max_rows.
  std::string ToString(size_t max_rows = 50) const;

 private:
  /// Writable row storage; privatizes shared storage first.
  std::vector<Value>& MutableData() { return data_.Mutable(); }

  std::string name_;
  Schema schema_;
  Cow<std::vector<Value>> data_;
};

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_RELATION_H_
