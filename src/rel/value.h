// Value: the scalar domain of the engine.
//
// Besides ordinary constants (64-bit integers, doubles, interned strings)
// the paper's model needs two special markers:
//   ⊥ ("bottom")   — marks the field of a tuple deleted from some worlds
//                    (Section 3: any tuple containing ⊥ is a padding tuple
//                    and is dropped by inline⁻¹).
//   ? ("question") — placeholder in WSDT/UWSDT template relations for fields
//                    whose value differs across worlds (Section 3).
//
// Values are 16 bytes and trivially copyable; strings are interned symbols.

#ifndef MAYWSD_REL_VALUE_H_
#define MAYWSD_REL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "common/interner.h"

namespace maywsd::rel {

/// Runtime tag of a Value.
enum class ValueKind : uint8_t {
  kBottom = 0,  ///< ⊥ — deleted-tuple marker
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kQuestion = 4,  ///< ? — template placeholder
};

/// Comparison operators of the selection predicates (σ_{AθB}, σ_{Aθc}).
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Returns the textual form of a comparison operator ("=", "<>", ...).
std::string_view CmpOpName(CmpOp op);

/// Immutable tagged scalar. 16 bytes, trivially copyable.
class Value {
 public:
  /// Default-constructs ⊥.
  Value() : kind_(ValueKind::kBottom), int_(0) {}

  static Value Bottom() { return Value(); }
  static Value Question() {
    Value v;
    v.kind_ = ValueKind::kQuestion;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.kind_ = ValueKind::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.kind_ = ValueKind::kDouble;
    v.double_ = d;
    return v;
  }
  static Value String(std::string_view s) {
    Value v;
    v.kind_ = ValueKind::kString;
    v.sym_ = InternString(s);
    return v;
  }
  /// Wraps an already-interned symbol without a pool lookup.
  static Value StringSymbol(Symbol sym) {
    Value v;
    v.kind_ = ValueKind::kString;
    v.sym_ = sym;
    return v;
  }

  ValueKind kind() const { return kind_; }
  bool is_bottom() const { return kind_ == ValueKind::kBottom; }
  bool is_question() const { return kind_ == ValueKind::kQuestion; }
  bool is_int() const { return kind_ == ValueKind::kInt; }
  bool is_double() const { return kind_ == ValueKind::kDouble; }
  bool is_string() const { return kind_ == ValueKind::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Numeric payload accessors; only valid for the matching kind.
  int64_t AsInt() const { return int_; }
  double AsDouble() const {
    return kind_ == ValueKind::kDouble ? double_
                                       : static_cast<double>(int_);
  }
  Symbol AsSymbol() const { return sym_; }
  std::string_view AsStringView() const { return SymbolName(sym_); }

  /// Structural equality. Int and double compare numerically (1 == 1.0);
  /// ⊥ equals only ⊥ and ? equals only ?.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order used for sorting and set semantics:
  /// ⊥ < numerics (by numeric value) < strings (lexicographic) < ?.
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Three-way comparison consistent with operator== and operator<.
  int Compare(const Value& other) const;

  /// Evaluates `this θ other` with the paper's semantics: ⊥ and ? satisfy
  /// only (in)equality against themselves; strings and numbers are
  /// incomparable (every θ except ≠ is false).
  bool Satisfies(CmpOp op, const Value& other) const;

  /// Hash consistent with operator==.
  size_t Hash() const;

  /// Rendering for debugging and table output: ⊥, ?, 42, 3.5, 'abc'.
  std::string ToString() const;

 private:
  ValueKind kind_;
  union {
    int64_t int_;
    double double_;
    Symbol sym_;
  };
};

std::ostream& operator<<(std::ostream& os, const Value& v);

}  // namespace maywsd::rel

namespace std {
template <>
struct hash<maywsd::rel::Value> {
  size_t operator()(const maywsd::rel::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // MAYWSD_REL_VALUE_H_
