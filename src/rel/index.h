// HashIndex: an unclustered multi-column hash index over a Relation.
//
// The paper tunes its PostgreSQL rewritings "by employing indices and
// materializing often used temporary results" (Section 5); the UWSDT layer
// uses these indexes to find component values by field id and local worlds
// by component id.

#ifndef MAYWSD_REL_INDEX_H_
#define MAYWSD_REL_INDEX_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rel/relation.h"

namespace maywsd::rel {

/// A hash index over one or more columns. The index holds row numbers into
/// the relation it was built from; it is invalidated by any mutation of the
/// relation and must then be rebuilt.
class HashIndex {
 public:
  /// Builds an index on `relation` over the named columns.
  static Result<HashIndex> Build(const Relation& relation,
                                 const std::vector<std::string>& columns);

  /// Row numbers whose key columns equal `key` (same order as `columns`).
  /// Collisions are verified; results are exact.
  std::vector<size_t> Lookup(std::span<const Value> key) const;

  /// True if any row matches `key`.
  bool Contains(std::span<const Value> key) const;

  /// Number of indexed rows.
  size_t size() const { return num_rows_; }

 private:
  HashIndex(const Relation* rel, std::vector<size_t> cols)
      : relation_(rel), cols_(std::move(cols)) {}

  size_t KeyHashOfRow(size_t row) const;
  static size_t KeyHash(std::span<const Value> key);
  bool RowMatches(size_t row, std::span<const Value> key) const;

  const Relation* relation_;
  std::vector<size_t> cols_;
  std::unordered_multimap<size_t, size_t> map_;
  size_t num_rows_ = 0;
};

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_INDEX_H_
