#include "rel/predicate.h"

#include <functional>
#include <sstream>

namespace maywsd::rel {

Predicate Predicate::True() {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kTrue;
  return Predicate(std::move(node));
}

Predicate Predicate::Cmp(std::string attr, CmpOp op, Value constant) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kCmpConst;
  node->lhs = std::move(attr);
  node->op = op;
  node->constant = constant;
  return Predicate(std::move(node));
}

Predicate Predicate::CmpAttr(std::string lhs, CmpOp op, std::string rhs) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kCmpAttr;
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  node->op = op;
  return Predicate(std::move(node));
}

Predicate Predicate::And(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->left = std::make_shared<Predicate>(std::move(a));
  node->right = std::make_shared<Predicate>(std::move(b));
  return Predicate(std::move(node));
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->left = std::make_shared<Predicate>(std::move(a));
  node->right = std::make_shared<Predicate>(std::move(b));
  return Predicate(std::move(node));
}

Predicate Predicate::Not(Predicate a) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->left = std::make_shared<Predicate>(std::move(a));
  return Predicate(std::move(node));
}

Predicate Predicate::AndAll(std::vector<Predicate> preds) {
  if (preds.empty()) return True();
  Predicate acc = std::move(preds[0]);
  for (size_t i = 1; i < preds.size(); ++i) {
    acc = And(std::move(acc), std::move(preds[i]));
  }
  return acc;
}

namespace {

void CollectAttributes(const Predicate& p, std::vector<std::string>* out) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      return;
    case Predicate::Kind::kCmpConst:
      out->push_back(p.lhs_attr());
      return;
    case Predicate::Kind::kCmpAttr:
      out->push_back(p.lhs_attr());
      out->push_back(p.rhs_attr());
      return;
    case Predicate::Kind::kAnd:
    case Predicate::Kind::kOr:
      CollectAttributes(p.left(), out);
      CollectAttributes(p.right(), out);
      return;
    case Predicate::Kind::kNot:
      CollectAttributes(p.left(), out);
      return;
  }
}

void CollectConjuncts(const Predicate& p, std::vector<Predicate>* out) {
  if (p.kind() == Predicate::Kind::kAnd) {
    CollectConjuncts(p.left(), out);
    CollectConjuncts(p.right(), out);
  } else if (!p.is_true()) {
    out->push_back(p);
  }
}

}  // namespace

std::vector<std::string> Predicate::ReferencedAttributes() const {
  std::vector<std::string> out;
  CollectAttributes(*this, &out);
  return out;
}

std::vector<Predicate> Predicate::Conjuncts() const {
  std::vector<Predicate> out;
  CollectConjuncts(*this, &out);
  return out;
}

std::string Predicate::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kTrue:
      os << "true";
      break;
    case Kind::kCmpConst:
      os << lhs_attr() << CmpOpName(op()) << constant();
      break;
    case Kind::kCmpAttr:
      os << lhs_attr() << CmpOpName(op()) << rhs_attr();
      break;
    case Kind::kAnd:
      os << "(" << left().ToString() << " AND " << right().ToString() << ")";
      break;
    case Kind::kOr:
      os << "(" << left().ToString() << " OR " << right().ToString() << ")";
      break;
    case Kind::kNot:
      os << "NOT (" << left().ToString() << ")";
      break;
  }
  return os.str();
}

Result<BoundPredicate> BoundPredicate::Bind(const Predicate& pred,
                                            const Schema& schema) {
  BoundPredicate bound;
  // Recursive flattening into ops_; returns node index or -1 on error.
  Status error = Status::Ok();
  auto resolve = [&](const std::string& name) -> int {
    auto idx = schema.IndexOf(name);
    if (!idx) {
      if (error.ok()) {
        error = Status::NotFound("predicate references unknown attribute " +
                                 name + " in " + schema.ToString());
      }
      return -1;
    }
    return static_cast<int>(*idx);
  };
  // Explicit stack-free recursion via std::function for clarity; predicate
  // trees are tiny.
  std::function<int(const Predicate&)> build =
      [&](const Predicate& p) -> int {
    Op op;
    op.kind = p.kind();
    switch (p.kind()) {
      case Predicate::Kind::kTrue:
        break;
      case Predicate::Kind::kCmpConst: {
        int col = resolve(p.lhs_attr());
        if (col < 0) return -1;
        op.lhs_col = static_cast<size_t>(col);
        op.cmp = p.op();
        op.constant = p.constant();
        break;
      }
      case Predicate::Kind::kCmpAttr: {
        int l = resolve(p.lhs_attr());
        int r = resolve(p.rhs_attr());
        if (l < 0 || r < 0) return -1;
        op.lhs_col = static_cast<size_t>(l);
        op.rhs_col = static_cast<size_t>(r);
        op.cmp = p.op();
        break;
      }
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr: {
        op.left = build(p.left());
        op.right = build(p.right());
        if (op.left < 0 || op.right < 0) return -1;
        break;
      }
      case Predicate::Kind::kNot: {
        op.left = build(p.left());
        if (op.left < 0) return -1;
        break;
      }
    }
    bound.ops_.push_back(std::move(op));
    return static_cast<int>(bound.ops_.size() - 1);
  };
  bound.root_ = build(pred);
  if (bound.root_ < 0) return error;
  return bound;
}

bool BoundPredicate::EvalNode(int node, TupleRef row) const {
  const Op& op = ops_[node];
  switch (op.kind) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCmpConst:
      return row[op.lhs_col].Satisfies(op.cmp, op.constant);
    case Predicate::Kind::kCmpAttr:
      return row[op.lhs_col].Satisfies(op.cmp, row[op.rhs_col]);
    case Predicate::Kind::kAnd:
      return EvalNode(op.left, row) && EvalNode(op.right, row);
    case Predicate::Kind::kOr:
      return EvalNode(op.left, row) || EvalNode(op.right, row);
    case Predicate::Kind::kNot:
      return !EvalNode(op.left, row);
  }
  return false;
}

bool BoundPredicate::Eval(TupleRef row) const {
  return root_ >= 0 && EvalNode(root_, row);
}

}  // namespace maywsd::rel
