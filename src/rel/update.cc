#include "rel/update.h"

#include <algorithm>
#include <utility>

#include "common/hash.h"
#include "rel/eval.h"
#include "rel/plan_hash.h"

namespace maywsd::rel {

UpdateOp UpdateOp::InsertTuples(std::string relation, Relation tuples) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kInsert;
  node->relation = std::move(relation);
  node->tuples = std::move(tuples);
  return UpdateOp(std::move(node));
}

UpdateOp UpdateOp::DeleteWhere(std::string relation, Predicate pred) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kDelete;
  node->relation = std::move(relation);
  node->pred = std::move(pred);
  return UpdateOp(std::move(node));
}

UpdateOp UpdateOp::ModifyWhere(std::string relation, Predicate pred,
                               std::vector<Assignment> assignments) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kModify;
  node->relation = std::move(relation);
  node->pred = std::move(pred);
  node->assignments = std::move(assignments);
  return UpdateOp(std::move(node));
}

UpdateOp UpdateOp::When(Plan condition) const {
  auto node = std::make_shared<Node>(*node_);
  node->condition = std::make_shared<const Plan>(std::move(condition));
  return UpdateOp(std::move(node));
}

std::string UpdateOp::ToString() const {
  std::string out;
  switch (kind()) {
    case Kind::kInsert:
      out = "insert into " + relation() + " (" +
            std::to_string(tuples().NumRows()) + " tuples)";
      break;
    case Kind::kDelete:
      out = "delete from " + relation() + " where " + predicate().ToString();
      break;
    case Kind::kModify: {
      out = "update " + relation() + " set ";
      for (size_t i = 0; i < assignments().size(); ++i) {
        if (i > 0) out += ", ";
        out += assignments()[i].attr + " := " +
               assignments()[i].value.ToString();
      }
      out += " where " + predicate().ToString();
      break;
    }
  }
  if (has_world_condition()) {
    out += " when nonempty(" + world_condition().ToString() + ")";
  }
  return out;
}

size_t UpdateOpHash(const UpdateOp& op) {
  size_t seed = 0x9e3779b97f4a7c15ULL;
  HashCombine(seed, static_cast<size_t>(op.kind()));
  HashCombine(seed, std::hash<std::string>{}(op.relation()));
  switch (op.kind()) {
    case UpdateOp::Kind::kInsert: {
      const Relation& t = op.tuples();
      for (const Attribute& a : t.schema().attrs()) {
        HashCombine(seed, a.name);
      }
      HashCombine(seed, t.NumRows());
      for (size_t r = 0; r < t.NumRows(); ++r) {
        HashCombine(seed, t.row(r).Hash());
      }
      break;
    }
    case UpdateOp::Kind::kDelete:
      HashCombine(seed, PredicateHash(op.predicate()));
      break;
    case UpdateOp::Kind::kModify:
      HashCombine(seed, PredicateHash(op.predicate()));
      for (const Assignment& a : op.assignments()) {
        HashCombine(seed, std::hash<std::string>{}(a.attr));
        HashCombine(seed, a.value.Hash());
      }
      break;
  }
  if (op.has_world_condition()) {
    HashCombine(seed, PlanHash(op.world_condition()));
  }
  return seed;
}

bool UpdateOpEqual(const UpdateOp& a, const UpdateOp& b) {
  if (a.SharesNodeWith(b)) return true;
  if (a.kind() != b.kind() || a.relation() != b.relation()) return false;
  if (a.has_world_condition() != b.has_world_condition()) return false;
  if (a.has_world_condition() &&
      !PlanEqual(a.world_condition(), b.world_condition())) {
    return false;
  }
  switch (a.kind()) {
    case UpdateOp::Kind::kInsert: {
      const Relation& ta = a.tuples();
      const Relation& tb = b.tuples();
      if (ta.NumRows() != tb.NumRows() || ta.arity() != tb.arity()) {
        return false;
      }
      // Attribute names matter: ValidateUpdate matches them positionally
      // against the target schema.
      for (size_t i = 0; i < ta.arity(); ++i) {
        if (ta.schema().attr(i).name != tb.schema().attr(i).name) {
          return false;
        }
      }
      for (size_t r = 0; r < ta.NumRows(); ++r) {
        if (!(ta.row(r) == tb.row(r))) return false;
      }
      return true;
    }
    case UpdateOp::Kind::kDelete:
      return PredicateEqual(a.predicate(), b.predicate());
    case UpdateOp::Kind::kModify: {
      if (!PredicateEqual(a.predicate(), b.predicate())) return false;
      if (a.assignments().size() != b.assignments().size()) return false;
      for (size_t i = 0; i < a.assignments().size(); ++i) {
        if (a.assignments()[i].attr != b.assignments()[i].attr ||
            !(a.assignments()[i].value == b.assignments()[i].value)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

Status ApplyUpdate(Database& db, const UpdateOp& op) {
  if (op.has_world_condition()) {
    MAYWSD_ASSIGN_OR_RETURN(Relation guard,
                            Evaluate(op.world_condition(), db));
    if (guard.NumRows() == 0) return Status::Ok();  // world not selected
  }
  MAYWSD_ASSIGN_OR_RETURN(Relation * rel,
                          db.GetMutableRelation(op.relation()));
  switch (op.kind()) {
    case UpdateOp::Kind::kInsert: {
      if (op.tuples().arity() != rel->arity()) {
        return Status::InvalidArgument("insert arity mismatch on " +
                                       op.relation());
      }
      for (size_t r = 0; r < op.tuples().NumRows(); ++r) {
        rel->AppendRow(op.tuples().row(r).span());
      }
      rel->SortDedup();
      return Status::Ok();
    }
    case UpdateOp::Kind::kDelete: {
      MAYWSD_ASSIGN_OR_RETURN(
          BoundPredicate pred,
          BoundPredicate::Bind(op.predicate(), rel->schema()));
      Relation kept(rel->schema(), rel->name());
      for (size_t r = 0; r < rel->NumRows(); ++r) {
        if (!pred.Eval(rel->row(r))) kept.AppendRow(rel->row(r).span());
      }
      *rel = std::move(kept);
      return Status::Ok();
    }
    case UpdateOp::Kind::kModify: {
      MAYWSD_ASSIGN_OR_RETURN(
          BoundPredicate pred,
          BoundPredicate::Bind(op.predicate(), rel->schema()));
      std::vector<std::pair<size_t, Value>> cols;
      for (const Assignment& a : op.assignments()) {
        auto idx = rel->schema().IndexOf(a.attr);
        if (!idx) {
          return Status::NotFound("assignment attribute " + a.attr +
                                  " not in " + op.relation());
        }
        cols.emplace_back(*idx, a.value);
      }
      for (size_t r = 0; r < rel->NumRows(); ++r) {
        if (!pred.Eval(rel->row(r))) continue;
        for (const auto& [col, v] : cols) rel->SetCell(r, col, v);
      }
      rel->SortDedup();
      return Status::Ok();
    }
  }
  return Status::Internal("unknown update kind");
}

}  // namespace maywsd::rel
