#include "rel/value.h"

#include <cmath>
#include <ostream>
#include <sstream>

namespace maywsd::rel {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) return int_ == other.int_;
    return AsDouble() == other.AsDouble();
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ValueKind::kBottom:
    case ValueKind::kQuestion:
      return true;
    case ValueKind::kString:
      return sym_ == other.sym_;
    default:
      return false;  // unreachable: numerics handled above
  }
}

namespace {

/// Sort rank of a kind; numerics share a rank so they interleave by value.
int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kBottom:
      return 0;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 1;
    case ValueKind::kString:
      return 2;
    case ValueKind::kQuestion:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int lr = KindRank(kind_);
  int rr = KindRank(other.kind_);
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (kind_) {
    case ValueKind::kBottom:
    case ValueKind::kQuestion:
      return 0;
    case ValueKind::kInt:
      if (other.is_int()) {
        if (int_ != other.int_) return int_ < other.int_ ? -1 : 1;
        return 0;
      }
      [[fallthrough]];
    case ValueKind::kDouble: {
      double a = AsDouble();
      double b = other.AsDouble();
      if (a != b) return a < b ? -1 : 1;
      return 0;
    }
    case ValueKind::kString: {
      std::string_view a = AsStringView();
      std::string_view b = other.AsStringView();
      int c = a.compare(b);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

bool Value::Satisfies(CmpOp op, const Value& other) const {
  // ⊥ and ? are equal only to themselves and support only (in)equality.
  bool special = is_bottom() || is_question() || other.is_bottom() ||
                 other.is_question();
  // Strings and numbers are incomparable except via <> (which holds).
  bool mixed = (is_string() && other.is_numeric()) ||
               (is_numeric() && other.is_string());
  if (special || mixed) {
    bool eq = (*this == other);
    switch (op) {
      case CmpOp::kEq:
        return eq;
      case CmpOp::kNe:
        return !eq;
      default:
        return false;
    }
  }
  int c = Compare(other);
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

size_t Value::Hash() const {
  size_t seed = 0;
  switch (kind_) {
    case ValueKind::kBottom:
      return 0x6275a5c1u;
    case ValueKind::kQuestion:
      return 0x9d2e8f37u;
    case ValueKind::kInt:
      HashCombine(seed, std::hash<int64_t>{}(int_));
      return seed;
    case ValueKind::kDouble: {
      // Keep hash consistent with int==double equality: integral doubles
      // hash like the corresponding int.
      double d = double_;
      if (d == static_cast<double>(static_cast<int64_t>(d))) {
        HashCombine(seed, std::hash<int64_t>{}(static_cast<int64_t>(d)));
      } else {
        HashCombine(seed, std::hash<double>{}(d));
      }
      return seed;
    }
    case ValueKind::kString:
      HashCombine(seed, 0x51ed270bu);
      HashCombine(seed, std::hash<Symbol>{}(sym_));
      return seed;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kBottom:
      return "\xe2\x8a\xa5";  // ⊥
    case ValueKind::kQuestion:
      return "?";
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << double_;
      return os.str();
    }
    case ValueKind::kString: {
      // Built char-by-part: `"'" + std::string(...) + "'"` trips GCC 12's
      // -Wrestrict false positive (PR105651) under -O3.
      std::string out;
      std::string_view sv = AsStringView();
      out.reserve(sv.size() + 2);
      out += '\'';
      out += sv;
      out += '\'';
      return out;
    }
  }
  return "<invalid>";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace maywsd::rel
