#include "rel/csv.h"

#include <fstream>
#include <sstream>
#include <vector>

namespace maywsd::rel {

namespace {

std::string_view TypeToken(AttrType t) {
  switch (t) {
    case AttrType::kAny:
      return "any";
    case AttrType::kInt:
      return "int";
    case AttrType::kDouble:
      return "double";
    case AttrType::kString:
      return "string";
  }
  return "any";
}

Result<AttrType> ParseType(const std::string& token) {
  if (token == "any") return AttrType::kAny;
  if (token == "int") return AttrType::kInt;
  if (token == "double") return AttrType::kDouble;
  if (token == "string") return AttrType::kString;
  return Status::InvalidArgument("unknown attribute type " + token);
}

std::string EscapeCell(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBottom:
      return "\\bot";
    case ValueKind::kQuestion:
      return "?";
    case ValueKind::kInt:
      return std::to_string(v.AsInt());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << v.AsDouble();
      return os.str();
    }
    case ValueKind::kString: {
      std::string s(v.AsStringView());
      std::string out = "\"";
      for (char c : s) {
        if (c == '"') out += "\"\"";
        else out += c;
      }
      out += "\"";
      return out;
    }
  }
  return "";
}

Result<Value> ParseCell(const std::string& cell, AttrType type) {
  if (cell == "\\bot") return Value::Bottom();
  if (cell == "?") return Value::Question();
  if (!cell.empty() && cell.front() == '"' && cell.back() == '"' &&
      cell.size() >= 2) {
    std::string s;
    for (size_t i = 1; i + 1 < cell.size(); ++i) {
      if (cell[i] == '"' && i + 2 < cell.size() && cell[i + 1] == '"') {
        s += '"';
        ++i;
      } else {
        s += cell[i];
      }
    }
    return Value::String(s);
  }
  switch (type) {
    case AttrType::kInt: {
      try {
        return Value::Int(std::stoll(cell));
      } catch (...) {
        return Status::InvalidArgument("cannot parse int cell: " + cell);
      }
    }
    case AttrType::kDouble: {
      try {
        return Value::Double(std::stod(cell));
      } catch (...) {
        return Status::InvalidArgument("cannot parse double cell: " + cell);
      }
    }
    case AttrType::kString:
      return Value::String(cell);
    case AttrType::kAny: {
      // Best-effort: int, then double, else string.
      try {
        size_t pos = 0;
        int64_t i = std::stoll(cell, &pos);
        if (pos == cell.size()) return Value::Int(i);
      } catch (...) {
      }
      try {
        size_t pos = 0;
        double d = std::stod(cell, &pos);
        if (pos == cell.size()) return Value::Double(d);
      } catch (...) {
      }
      return Value::String(cell);
    }
  }
  return Status::InvalidArgument("unparseable cell: " + cell);
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      cur += c;
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      }
    } else if (c == '"') {
      cur += c;
      quoted = true;
    } else if (c == ',') {
      cells.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  cells.push_back(cur);
  return cells;
}

}  // namespace

Status WriteCsv(const Relation& relation, std::ostream& os) {
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < schema.arity(); ++i) {
    if (i > 0) os << ",";
    os << schema.attr(i).name_view() << ":" << TypeToken(schema.attr(i).type);
  }
  os << "\n";
  for (size_t r = 0; r < relation.NumRows(); ++r) {
    TupleRef row = relation.row(r);
    for (size_t c = 0; c < row.arity(); ++c) {
      if (c > 0) os << ",";
      os << EscapeCell(row[c]);
    }
    os << "\n";
  }
  return Status::Ok();
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open " + path);
  return WriteCsv(relation, f);
}

Result<Relation> ReadCsv(std::istream& is, const std::string& name) {
  std::string header;
  if (!std::getline(is, header)) {
    return Status::InvalidArgument("empty CSV input");
  }
  std::vector<Attribute> attrs;
  for (const std::string& cell : SplitCsvLine(header)) {
    size_t colon = cell.rfind(':');
    if (colon == std::string::npos) {
      attrs.emplace_back(cell);
      continue;
    }
    MAYWSD_ASSIGN_OR_RETURN(AttrType type, ParseType(cell.substr(colon + 1)));
    attrs.emplace_back(cell.substr(0, colon), type);
  }
  Relation rel{Schema(std::move(attrs)), name};
  std::string line;
  std::vector<Value> row(rel.arity());
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() != rel.arity()) {
      return Status::InvalidArgument("row arity mismatch in CSV: " + line);
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      MAYWSD_ASSIGN_OR_RETURN(row[i],
                              ParseCell(cells[i], rel.schema().attr(i).type));
    }
    rel.AppendRow(row);
  }
  return rel;
}

Result<Relation> ReadCsvFile(const std::string& path,
                             const std::string& name) {
  std::ifstream f(path);
  if (!f) return Status::InvalidArgument("cannot open " + path);
  return ReadCsv(f, name);
}

}  // namespace maywsd::rel
