#include "rel/optimizer.h"

#include "rel/eval.h"

namespace maywsd::rel {

namespace {

/// True if every attribute referenced by `pred` exists in `schema`.
bool CoveredBy(const Predicate& pred, const Schema& schema) {
  for (const auto& name : pred.ReferencedAttributes()) {
    if (!schema.Contains(name)) return false;
  }
  return true;
}

Result<Plan> Rewrite(const Plan& plan, const Database& db, bool* changed);

Result<Plan> RewriteChildren(const Plan& plan, const Database& db,
                             bool* changed) {
  switch (plan.kind()) {
    case Plan::Kind::kScan:
      return plan;
    case Plan::Kind::kSelect: {
      MAYWSD_ASSIGN_OR_RETURN(Plan c, Rewrite(plan.child(), db, changed));
      return Plan::Select(plan.predicate(), std::move(c));
    }
    case Plan::Kind::kProject: {
      MAYWSD_ASSIGN_OR_RETURN(Plan c, Rewrite(plan.child(), db, changed));
      return Plan::Project(plan.attributes(), std::move(c));
    }
    case Plan::Kind::kRename: {
      MAYWSD_ASSIGN_OR_RETURN(Plan c, Rewrite(plan.child(), db, changed));
      return Plan::Rename(plan.renames(), std::move(c));
    }
    case Plan::Kind::kProduct: {
      MAYWSD_ASSIGN_OR_RETURN(Plan l, Rewrite(plan.left(), db, changed));
      MAYWSD_ASSIGN_OR_RETURN(Plan r, Rewrite(plan.right(), db, changed));
      return Plan::Product(std::move(l), std::move(r));
    }
    case Plan::Kind::kUnion: {
      MAYWSD_ASSIGN_OR_RETURN(Plan l, Rewrite(plan.left(), db, changed));
      MAYWSD_ASSIGN_OR_RETURN(Plan r, Rewrite(plan.right(), db, changed));
      return Plan::Union(std::move(l), std::move(r));
    }
    case Plan::Kind::kDifference: {
      MAYWSD_ASSIGN_OR_RETURN(Plan l, Rewrite(plan.left(), db, changed));
      MAYWSD_ASSIGN_OR_RETURN(Plan r, Rewrite(plan.right(), db, changed));
      return Plan::Difference(std::move(l), std::move(r));
    }
    case Plan::Kind::kJoin: {
      MAYWSD_ASSIGN_OR_RETURN(Plan l, Rewrite(plan.left(), db, changed));
      MAYWSD_ASSIGN_OR_RETURN(Plan r, Rewrite(plan.right(), db, changed));
      return Plan::Join(plan.predicate(), std::move(l), std::move(r));
    }
  }
  return Status::Internal("unknown plan node");
}

Result<Plan> Rewrite(const Plan& plan, const Database& db, bool* changed) {
  MAYWSD_ASSIGN_OR_RETURN(Plan p, RewriteChildren(plan, db, changed));

  if (p.kind() != Plan::Kind::kSelect && p.kind() != Plan::Kind::kProject) {
    return p;
  }

  // Rule 4: merge nested projections (outer list wins; it must be a subset
  // of the inner list for the plan to be well-formed).
  if (p.kind() == Plan::Kind::kProject &&
      p.child().kind() == Plan::Kind::kProject) {
    *changed = true;
    return Plan::Project(p.attributes(), p.child().child());
  }

  if (p.kind() != Plan::Kind::kSelect) return p;
  const Plan& child = p.child();

  // Rule 1: merge stacked selections into one conjunction.
  if (child.kind() == Plan::Kind::kSelect) {
    *changed = true;
    return Plan::Select(Predicate::And(p.predicate(), child.predicate()),
                        child.child());
  }

  // Rule 3: fuse a selection into an existing join's predicate.
  if (child.kind() == Plan::Kind::kJoin) {
    *changed = true;
    return Plan::Join(Predicate::And(p.predicate(), child.predicate()),
                      child.left(), child.right());
  }

  // Rule 2: σ(×) — push branch-local conjuncts down, turn the rest into a
  // join predicate.
  if (child.kind() == Plan::Kind::kProduct) {
    MAYWSD_ASSIGN_OR_RETURN(Schema ls, OutputSchema(child.left(), db));
    MAYWSD_ASSIGN_OR_RETURN(Schema rs, OutputSchema(child.right(), db));
    std::vector<Predicate> left_local, right_local, cross;
    for (const Predicate& conj : p.predicate().Conjuncts()) {
      if (CoveredBy(conj, ls)) {
        left_local.push_back(conj);
      } else if (CoveredBy(conj, rs)) {
        right_local.push_back(conj);
      } else {
        cross.push_back(conj);
      }
    }
    Plan l = child.left();
    Plan r = child.right();
    if (!left_local.empty()) {
      l = Plan::Select(Predicate::AndAll(std::move(left_local)), std::move(l));
    }
    if (!right_local.empty()) {
      r = Plan::Select(Predicate::AndAll(std::move(right_local)),
                       std::move(r));
    }
    *changed = true;
    return Plan::Join(Predicate::AndAll(std::move(cross)), std::move(l),
                      std::move(r));
  }

  // Rule 5: distribute selection over union.
  if (child.kind() == Plan::Kind::kUnion) {
    *changed = true;
    return Plan::Union(Plan::Select(p.predicate(), child.left()),
                       Plan::Select(p.predicate(), child.right()));
  }

  return p;
}

}  // namespace

Result<Plan> Optimize(
    const Plan& plan,
    const std::vector<std::pair<std::string, Schema>>& schemas) {
  // Expose the catalog as empty relations; the rewrite rules only ever
  // look at schemas (OutputSchema), never at tuples.
  Database db;
  for (const auto& [name, schema] : schemas) {
    db.PutRelation(Relation(schema, name));
  }
  return Optimize(plan, db);
}

Result<Plan> Optimize(const Plan& plan, const Database& db) {
  Plan current = plan;
  // Fixpoint with a generous iteration bound (each rule strictly shrinks or
  // reshapes; the bound guards against rule-interaction cycles).
  for (int iter = 0; iter < 64; ++iter) {
    bool changed = false;
    MAYWSD_ASSIGN_OR_RETURN(current, Rewrite(current, db, &changed));
    if (!changed) break;
  }
  return current;
}

}  // namespace maywsd::rel
