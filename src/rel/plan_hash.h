// Structural hashing and equality over Plan and Predicate trees.
//
// Two plans are equal when they are the same expression: same operator
// kinds, same relation/attribute names, same comparison operators and
// constants, same child structure. Plans that merely share subtree nodes
// (the Plan value type aliases subtrees through shared_ptr) compare equal
// through the identity fast path without re-walking the shared part.
//
// This is the key of the engine's common-subplan cache: a batched
// Session::RunAll evaluates each distinct subtree once and reuses the
// materialized scratch relation for every later occurrence.

#ifndef MAYWSD_REL_PLAN_HASH_H_
#define MAYWSD_REL_PLAN_HASH_H_

#include <cstddef>

#include "rel/algebra.h"
#include "rel/predicate.h"

namespace maywsd::rel {

/// Structural hash of a predicate tree; consistent with PredicateEqual.
size_t PredicateHash(const Predicate& pred);

/// Structural equality of predicate trees (names, operators, constants).
bool PredicateEqual(const Predicate& a, const Predicate& b);

/// Structural hash of a plan tree; consistent with PlanEqual.
size_t PlanHash(const Plan& plan);

/// Structural equality of plan trees. Shared subtree nodes short-circuit.
bool PlanEqual(const Plan& a, const Plan& b);

/// Functors for hash containers keyed on plans.
struct PlanHasher {
  size_t operator()(const Plan& plan) const { return PlanHash(plan); }
};
struct PlanEq {
  bool operator()(const Plan& a, const Plan& b) const {
    return PlanEqual(a, b);
  }
};

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_PLAN_HASH_H_
