#include "rel/plan_hash.h"

#include <functional>
#include <string_view>

#include "common/hash.h"

namespace maywsd::rel {

namespace {

size_t StringHash(std::string_view s) {
  return std::hash<std::string_view>{}(s);
}

}  // namespace

size_t PredicateHash(const Predicate& pred) {
  using K = Predicate::Kind;
  size_t seed = 0x9ae16a3b2f90404fULL;
  HashCombine(seed, static_cast<size_t>(pred.kind()));
  switch (pred.kind()) {
    case K::kTrue:
      break;
    case K::kCmpConst:
      HashCombine(seed, StringHash(pred.lhs_attr()));
      HashCombine(seed, static_cast<size_t>(pred.op()));
      HashCombine(seed, pred.constant().Hash());
      break;
    case K::kCmpAttr:
      HashCombine(seed, StringHash(pred.lhs_attr()));
      HashCombine(seed, static_cast<size_t>(pred.op()));
      HashCombine(seed, StringHash(pred.rhs_attr()));
      break;
    case K::kAnd:
    case K::kOr:
      HashCombine(seed, PredicateHash(pred.left()));
      HashCombine(seed, PredicateHash(pred.right()));
      break;
    case K::kNot:
      HashCombine(seed, PredicateHash(pred.left()));
      break;
  }
  return seed;
}

bool PredicateEqual(const Predicate& a, const Predicate& b) {
  using K = Predicate::Kind;
  if (a.SharesNodeWith(b)) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case K::kTrue:
      return true;
    case K::kCmpConst:
      return a.op() == b.op() && a.lhs_attr() == b.lhs_attr() &&
             a.constant() == b.constant();
    case K::kCmpAttr:
      return a.op() == b.op() && a.lhs_attr() == b.lhs_attr() &&
             a.rhs_attr() == b.rhs_attr();
    case K::kAnd:
    case K::kOr:
      return PredicateEqual(a.left(), b.left()) &&
             PredicateEqual(a.right(), b.right());
    case K::kNot:
      return PredicateEqual(a.left(), b.left());
  }
  return false;
}

size_t PlanHash(const Plan& plan) {
  using K = Plan::Kind;
  size_t seed = 0xc3a5c85c97cb3127ULL;
  HashCombine(seed, static_cast<size_t>(plan.kind()));
  switch (plan.kind()) {
    case K::kScan:
      HashCombine(seed, StringHash(plan.relation()));
      return seed;
    case K::kSelect:
    case K::kJoin:
      HashCombine(seed, PredicateHash(plan.predicate()));
      break;
    case K::kProject:
      for (const std::string& a : plan.attributes()) {
        HashCombine(seed, StringHash(a));
      }
      break;
    case K::kRename:
      for (const auto& [from, to] : plan.renames()) {
        HashCombine(seed, StringHash(from));
        HashCombine(seed, StringHash(to));
      }
      break;
    case K::kProduct:
    case K::kUnion:
    case K::kDifference:
      break;
  }
  HashCombine(seed, PlanHash(plan.left()));
  if (plan.has_right()) HashCombine(seed, PlanHash(plan.right()));
  return seed;
}

bool PlanEqual(const Plan& a, const Plan& b) {
  using K = Plan::Kind;
  if (a.SharesNodeWith(b)) return true;
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case K::kScan:
      return a.relation() == b.relation();
    case K::kSelect:
      return PredicateEqual(a.predicate(), b.predicate()) &&
             PlanEqual(a.child(), b.child());
    case K::kProject:
      return a.attributes() == b.attributes() &&
             PlanEqual(a.child(), b.child());
    case K::kRename:
      return a.renames() == b.renames() && PlanEqual(a.child(), b.child());
    case K::kProduct:
    case K::kUnion:
    case K::kDifference:
      return PlanEqual(a.left(), b.left()) && PlanEqual(a.right(), b.right());
    case K::kJoin:
      return PredicateEqual(a.predicate(), b.predicate()) &&
             PlanEqual(a.left(), b.left()) && PlanEqual(a.right(), b.right());
  }
  return false;
}

}  // namespace maywsd::rel
