#include "rel/index.h"

#include "common/hash.h"

namespace maywsd::rel {

Result<HashIndex> HashIndex::Build(const Relation& relation,
                                   const std::vector<std::string>& columns) {
  std::vector<size_t> cols;
  cols.reserve(columns.size());
  for (const auto& name : columns) {
    auto idx = relation.schema().IndexOf(name);
    if (!idx) {
      return Status::NotFound("no column " + name + " in " +
                              relation.schema().ToString());
    }
    cols.push_back(*idx);
  }
  HashIndex index(&relation, std::move(cols));
  index.num_rows_ = relation.NumRows();
  index.map_.reserve(index.num_rows_);
  for (size_t i = 0; i < index.num_rows_; ++i) {
    index.map_.emplace(index.KeyHashOfRow(i), i);
  }
  return index;
}

size_t HashIndex::KeyHashOfRow(size_t row) const {
  TupleRef r = relation_->row(row);
  size_t seed = 0x85ebca6bu;
  for (size_t c : cols_) HashCombine(seed, r[c].Hash());
  return seed;
}

size_t HashIndex::KeyHash(std::span<const Value> key) {
  size_t seed = 0x85ebca6bu;
  for (const Value& v : key) HashCombine(seed, v.Hash());
  return seed;
}

bool HashIndex::RowMatches(size_t row, std::span<const Value> key) const {
  TupleRef r = relation_->row(row);
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (!(r[cols_[i]] == key[i])) return false;
  }
  return true;
}

std::vector<size_t> HashIndex::Lookup(std::span<const Value> key) const {
  std::vector<size_t> out;
  if (key.size() != cols_.size()) return out;
  auto [lo, hi] = map_.equal_range(KeyHash(key));
  for (auto it = lo; it != hi; ++it) {
    if (RowMatches(it->second, key)) out.push_back(it->second);
  }
  return out;
}

bool HashIndex::Contains(std::span<const Value> key) const {
  if (key.size() != cols_.size()) return false;
  auto [lo, hi] = map_.equal_range(KeyHash(key));
  for (auto it = lo; it != hi; ++it) {
    if (RowMatches(it->second, key)) return true;
  }
  return false;
}

}  // namespace maywsd::rel
