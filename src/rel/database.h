// Database: a named catalog of relations (one possible world, or the host
// store for UWSDT system relations).

#ifndef MAYWSD_REL_DATABASE_H_
#define MAYWSD_REL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/relation.h"

namespace maywsd::rel {

/// A set of named relation instances.
class Database {
 public:
  Database() = default;

  /// Adds a relation under its name; fails on collision.
  Status AddRelation(Relation relation);

  /// Adds or replaces a relation under its name.
  void PutRelation(Relation relation);

  /// Looks up a relation by name.
  Result<const Relation*> GetRelation(const std::string& name) const;
  Result<Relation*> GetMutableRelation(const std::string& name);

  /// Removes a relation; fails if absent.
  Status DropRelation(const std::string& name);

  bool Contains(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  /// Relation names in sorted order.
  std::vector<std::string> Names() const;

  size_t size() const { return relations_.size(); }

  /// Worlds compare equal when they contain the same relations with the
  /// same tuple sets (the paper's notion of equal worlds).
  bool EqualsAsWorld(const Database& other) const;

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_DATABASE_H_
