// Selection predicates: boolean trees over attribute/constant comparisons.
//
// Predicate is an immutable value type (shared subtrees) referencing
// attributes by name; Bind() resolves names against a schema once, yielding
// a BoundPredicate that evaluates per row without lookups.

#ifndef MAYWSD_REL_PREDICATE_H_
#define MAYWSD_REL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/relation.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace maywsd::rel {

/// Boolean predicate tree.
class Predicate {
 public:
  enum class Kind : uint8_t { kTrue, kCmpConst, kCmpAttr, kAnd, kOr, kNot };

  /// Always-true predicate (σ_true = identity).
  static Predicate True();
  /// Attribute-θ-constant comparison: `attr θ constant`.
  static Predicate Cmp(std::string attr, CmpOp op, Value constant);
  /// Attribute-θ-attribute comparison: `lhs θ rhs` (join-style condition).
  static Predicate CmpAttr(std::string lhs, CmpOp op, std::string rhs);
  static Predicate And(Predicate a, Predicate b);
  static Predicate Or(Predicate a, Predicate b);
  static Predicate Not(Predicate a);

  /// Conjunction of a list (True when empty).
  static Predicate AndAll(std::vector<Predicate> preds);

  Kind kind() const { return node_->kind; }
  bool is_true() const { return kind() == Kind::kTrue; }

  /// Accessors for leaf comparisons (valid per kind).
  const std::string& lhs_attr() const { return node_->lhs; }
  const std::string& rhs_attr() const { return node_->rhs; }
  CmpOp op() const { return node_->op; }
  const Value& constant() const { return node_->constant; }

  /// Children for kAnd/kOr/kNot.
  const Predicate& left() const { return *node_->left; }
  const Predicate& right() const { return *node_->right; }

  /// Names of all attributes referenced by the predicate.
  std::vector<std::string> ReferencedAttributes() const;

  /// Splits a conjunction into its flat list of conjuncts.
  std::vector<Predicate> Conjuncts() const;

  /// True when both values wrap the same underlying node; identity fast
  /// path for PredicateEqual.
  bool SharesNodeWith(const Predicate& o) const { return node_ == o.node_; }

  std::string ToString() const;

 private:
  struct Node {
    Kind kind = Kind::kTrue;
    std::string lhs;
    std::string rhs;
    CmpOp op = CmpOp::kEq;
    Value constant;
    std::shared_ptr<const Predicate> left;
    std::shared_ptr<const Predicate> right;
  };

  explicit Predicate(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// A predicate with attribute references resolved to column indexes.
class BoundPredicate {
 public:
  /// Resolves `pred` against `schema`; fails on unknown attributes.
  static Result<BoundPredicate> Bind(const Predicate& pred,
                                     const Schema& schema);

  /// Evaluates the predicate on one row.
  bool Eval(TupleRef row) const;

 private:
  struct Op {
    Predicate::Kind kind;
    CmpOp cmp = CmpOp::kEq;
    size_t lhs_col = 0;
    size_t rhs_col = 0;
    Value constant;
    // Children are indexes into the flattened ops_ array.
    int left = -1;
    int right = -1;
  };

  bool EvalNode(int node, TupleRef row) const;

  std::vector<Op> ops_;
  int root_ = -1;
};

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_PREDICATE_H_
