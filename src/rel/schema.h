// Relation schemas: ordered lists of named, typed attributes.

#ifndef MAYWSD_REL_SCHEMA_H_
#define MAYWSD_REL_SCHEMA_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "rel/value.h"

namespace maywsd::rel {

/// Declared attribute type. kAny admits every value kind; the census schema
/// uses kInt throughout, UWSDT system relations mix types via kAny.
enum class AttrType : uint8_t { kAny = 0, kInt, kDouble, kString };

/// A named, typed attribute.
struct Attribute {
  Symbol name = 0;
  AttrType type = AttrType::kAny;

  Attribute() = default;
  Attribute(std::string_view n, AttrType t = AttrType::kAny)
      : name(InternString(n)), type(t) {}

  std::string_view name_view() const { return SymbolName(name); }
  bool operator==(const Attribute& o) const {
    return name == o.name && type == o.type;
  }
};

/// Ordered attribute list. Lookup by name is linear — arities in this
/// system are small (≤ ~60 for the census relation, ≤ 5 for UWSDT tables).
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Attribute> attrs) : attrs_(attrs) {}
  explicit Schema(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  /// Builds an all-kAny schema from attribute names.
  static Schema FromNames(const std::vector<std::string>& names);

  size_t arity() const { return attrs_.size(); }
  const Attribute& attr(size_t i) const { return attrs_[i]; }
  const std::vector<Attribute>& attrs() const { return attrs_; }

  /// Index of the attribute named `name`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;
  std::optional<size_t> IndexOf(Symbol name) const;

  /// True if an attribute with this name exists.
  bool Contains(std::string_view name) const {
    return IndexOf(name).has_value();
  }

  /// Appends an attribute; fails on duplicate names.
  Status AddAttribute(Attribute attr);

  /// Schema with only the named attributes, in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// Schema with attribute `from` renamed to `to`.
  Result<Schema> Rename(std::string_view from, std::string_view to) const;

  /// Concatenation; fails if attribute names collide (paper requires
  /// products over disjoint attribute sets).
  Result<Schema> Concat(const Schema& other) const;

  /// Same names and types in the same order.
  bool operator==(const Schema& o) const { return attrs_ == o.attrs_; }
  bool operator!=(const Schema& o) const { return !(*this == o); }

  /// "R(A:int, B:any)"-style rendering.
  std::string ToString() const;

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_SCHEMA_H_
