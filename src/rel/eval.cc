#include "rel/eval.h"

#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace maywsd::rel {

namespace {

struct TupleRefHash {
  size_t operator()(const TupleRef& t) const { return t.Hash(); }
};
struct TupleRefEq {
  bool operator()(const TupleRef& a, const TupleRef& b) const { return a == b; }
};

Result<Relation> EvalNode(const Plan& plan, const Database& db);

Result<Relation> EvalSelect(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation in, EvalNode(plan.child(), db));
  MAYWSD_ASSIGN_OR_RETURN(BoundPredicate pred,
                          BoundPredicate::Bind(plan.predicate(), in.schema()));
  Relation out(in.schema());
  size_t n = in.NumRows();
  for (size_t i = 0; i < n; ++i) {
    TupleRef row = in.row(i);
    if (pred.Eval(row)) out.AppendRow(row.span());
  }
  return out;
}

Result<Relation> EvalProject(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation in, EvalNode(plan.child(), db));
  MAYWSD_ASSIGN_OR_RETURN(Schema out_schema,
                          in.schema().Project(plan.attributes()));
  std::vector<size_t> cols;
  cols.reserve(plan.attributes().size());
  for (const auto& name : plan.attributes()) {
    cols.push_back(*in.schema().IndexOf(name));
  }
  Relation out(out_schema);
  out.Reserve(in.NumRows());
  std::vector<Value> buf(cols.size());
  size_t n = in.NumRows();
  for (size_t i = 0; i < n; ++i) {
    TupleRef row = in.row(i);
    for (size_t c = 0; c < cols.size(); ++c) buf[c] = row[cols[c]];
    out.AppendRow(buf);
  }
  out.SortDedup();
  return out;
}

Result<Relation> EvalProduct(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation l, EvalNode(plan.left(), db));
  MAYWSD_ASSIGN_OR_RETURN(Relation r, EvalNode(plan.right(), db));
  MAYWSD_ASSIGN_OR_RETURN(Schema out_schema, l.schema().Concat(r.schema()));
  Relation out(out_schema);
  out.Reserve(l.NumRows() * r.NumRows());
  std::vector<Value> buf(out_schema.arity());
  for (size_t i = 0; i < l.NumRows(); ++i) {
    TupleRef lr = l.row(i);
    std::copy(lr.data(), lr.data() + lr.arity(), buf.begin());
    for (size_t j = 0; j < r.NumRows(); ++j) {
      TupleRef rr = r.row(j);
      std::copy(rr.data(), rr.data() + rr.arity(),
                buf.begin() + static_cast<long>(lr.arity()));
      out.AppendRow(buf);
    }
  }
  return out;
}

Result<Relation> EvalUnion(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation l, EvalNode(plan.left(), db));
  MAYWSD_ASSIGN_OR_RETURN(Relation r, EvalNode(plan.right(), db));
  if (l.schema() != r.schema()) {
    return Status::InvalidArgument("union of incompatible schemas " +
                                   l.schema().ToString() + " vs " +
                                   r.schema().ToString());
  }
  Relation out = std::move(l);
  for (size_t j = 0; j < r.NumRows(); ++j) out.AppendRow(r.row(j).span());
  out.SortDedup();
  return out;
}

Result<Relation> EvalDifference(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation l, EvalNode(plan.left(), db));
  MAYWSD_ASSIGN_OR_RETURN(Relation r, EvalNode(plan.right(), db));
  if (l.schema() != r.schema()) {
    return Status::InvalidArgument("difference of incompatible schemas " +
                                   l.schema().ToString() + " vs " +
                                   r.schema().ToString());
  }
  std::unordered_set<TupleRef, TupleRefHash, TupleRefEq> right_rows;
  right_rows.reserve(r.NumRows());
  for (size_t j = 0; j < r.NumRows(); ++j) right_rows.insert(r.row(j));
  Relation out(l.schema());
  for (size_t i = 0; i < l.NumRows(); ++i) {
    TupleRef row = l.row(i);
    if (!right_rows.count(row)) out.AppendRow(row.span());
  }
  out.SortDedup();
  return out;
}

Result<Relation> EvalRename(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation in, EvalNode(plan.child(), db));
  Schema schema = in.schema();
  for (const auto& [from, to] : plan.renames()) {
    MAYWSD_ASSIGN_OR_RETURN(schema, schema.Rename(from, to));
  }
  Relation out(schema, in.name());
  for (size_t i = 0; i < in.NumRows(); ++i) out.AppendRow(in.row(i).span());
  return out;
}

/// Extracts cross-schema equality conjuncts usable as hash-join keys.
void SplitJoinPredicate(const Predicate& pred, const Schema& left,
                        const Schema& right,
                        std::vector<std::pair<size_t, size_t>>* keys,
                        std::vector<Predicate>* residual) {
  for (const Predicate& conj : pred.Conjuncts()) {
    if (conj.kind() == Predicate::Kind::kCmpAttr && conj.op() == CmpOp::kEq) {
      auto l_in_left = left.IndexOf(conj.lhs_attr());
      auto r_in_right = right.IndexOf(conj.rhs_attr());
      if (l_in_left && r_in_right) {
        keys->emplace_back(*l_in_left, *r_in_right);
        continue;
      }
      auto l_in_right = right.IndexOf(conj.lhs_attr());
      auto r_in_left = left.IndexOf(conj.rhs_attr());
      if (r_in_left && l_in_right) {
        keys->emplace_back(*r_in_left, *l_in_right);
        continue;
      }
    }
    residual->push_back(conj);
  }
}

Result<Relation> EvalJoin(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation l, EvalNode(plan.left(), db));
  MAYWSD_ASSIGN_OR_RETURN(Relation r, EvalNode(plan.right(), db));
  MAYWSD_ASSIGN_OR_RETURN(Schema out_schema, l.schema().Concat(r.schema()));

  std::vector<std::pair<size_t, size_t>> keys;
  std::vector<Predicate> residual;
  SplitJoinPredicate(plan.predicate(), l.schema(), r.schema(), &keys,
                     &residual);
  Predicate residual_pred = Predicate::AndAll(residual);
  MAYWSD_ASSIGN_OR_RETURN(BoundPredicate bound,
                          BoundPredicate::Bind(residual_pred, out_schema));

  Relation out(out_schema);
  std::vector<Value> buf(out_schema.arity());

  if (keys.empty()) {
    // No usable equality key: filtered nested loop.
    for (size_t i = 0; i < l.NumRows(); ++i) {
      TupleRef lr = l.row(i);
      std::copy(lr.data(), lr.data() + lr.arity(), buf.begin());
      for (size_t j = 0; j < r.NumRows(); ++j) {
        TupleRef rr = r.row(j);
        std::copy(rr.data(), rr.data() + rr.arity(),
                  buf.begin() + static_cast<long>(lr.arity()));
        if (bound.Eval(TupleRef(buf.data(), buf.size()))) out.AppendRow(buf);
      }
    }
    out.SortDedup();
    return out;
  }

  // Hash join: build on the smaller side.
  bool build_left = l.NumRows() <= r.NumRows();
  const Relation& build = build_left ? l : r;
  const Relation& probe = build_left ? r : l;
  auto key_of = [&](TupleRef row, bool left_side) {
    size_t seed = 0;
    for (const auto& [lc, rc] : keys) {
      HashCombine(seed, row[left_side ? lc : rc].Hash());
    }
    return seed;
  };
  std::unordered_multimap<size_t, size_t> table;
  table.reserve(build.NumRows());
  for (size_t i = 0; i < build.NumRows(); ++i) {
    table.emplace(key_of(build.row(i), build_left), i);
  }
  for (size_t j = 0; j < probe.NumRows(); ++j) {
    TupleRef pr = probe.row(j);
    auto [lo, hi] = table.equal_range(key_of(pr, !build_left));
    for (auto it = lo; it != hi; ++it) {
      TupleRef br = build.row(it->second);
      TupleRef lr = build_left ? br : pr;
      TupleRef rr = build_left ? pr : br;
      // Verify keys (hash collisions) then residual predicate.
      bool match = true;
      for (const auto& [lc, rc] : keys) {
        if (!(lr[lc] == rr[rc])) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      std::copy(lr.data(), lr.data() + lr.arity(), buf.begin());
      std::copy(rr.data(), rr.data() + rr.arity(),
                buf.begin() + static_cast<long>(lr.arity()));
      if (bound.Eval(TupleRef(buf.data(), buf.size()))) out.AppendRow(buf);
    }
  }
  out.SortDedup();
  return out;
}

Result<Relation> EvalNode(const Plan& plan, const Database& db) {
  switch (plan.kind()) {
    case Plan::Kind::kScan: {
      MAYWSD_ASSIGN_OR_RETURN(const Relation* rel,
                              db.GetRelation(plan.relation()));
      return *rel;
    }
    case Plan::Kind::kSelect:
      return EvalSelect(plan, db);
    case Plan::Kind::kProject:
      return EvalProject(plan, db);
    case Plan::Kind::kProduct:
      return EvalProduct(plan, db);
    case Plan::Kind::kUnion:
      return EvalUnion(plan, db);
    case Plan::Kind::kDifference:
      return EvalDifference(plan, db);
    case Plan::Kind::kRename:
      return EvalRename(plan, db);
    case Plan::Kind::kJoin:
      return EvalJoin(plan, db);
  }
  return Status::Internal("unknown plan node");
}

}  // namespace

Result<Relation> Evaluate(const Plan& plan, const Database& db) {
  MAYWSD_ASSIGN_OR_RETURN(Relation out, EvalNode(plan, db));
  out.SortDedup();
  return out;
}

Result<Schema> OutputSchema(const Plan& plan, const Database& db) {
  switch (plan.kind()) {
    case Plan::Kind::kScan: {
      MAYWSD_ASSIGN_OR_RETURN(const Relation* rel,
                              db.GetRelation(plan.relation()));
      return rel->schema();
    }
    case Plan::Kind::kSelect:
      return OutputSchema(plan.child(), db);
    case Plan::Kind::kProject: {
      MAYWSD_ASSIGN_OR_RETURN(Schema in, OutputSchema(plan.child(), db));
      return in.Project(plan.attributes());
    }
    case Plan::Kind::kProduct:
    case Plan::Kind::kJoin: {
      MAYWSD_ASSIGN_OR_RETURN(Schema l, OutputSchema(plan.left(), db));
      MAYWSD_ASSIGN_OR_RETURN(Schema r, OutputSchema(plan.right(), db));
      return l.Concat(r);
    }
    case Plan::Kind::kUnion:
    case Plan::Kind::kDifference:
      return OutputSchema(plan.left(), db);
    case Plan::Kind::kRename: {
      MAYWSD_ASSIGN_OR_RETURN(Schema s, OutputSchema(plan.child(), db));
      for (const auto& [from, to] : plan.renames()) {
        MAYWSD_ASSIGN_OR_RETURN(s, s.Rename(from, to));
      }
      return s;
    }
  }
  return Status::Internal("unknown plan node");
}

}  // namespace maywsd::rel
