// Update operations over incomplete databases.
//
// The WSD line of work treats updates as first-class alongside queries:
// inserts, deletes and modifications are applied uniformly across all
// worlds, or conditionally in the worlds selected by a *world condition* —
// a relational algebra plan whose non-empty answer picks the worlds the
// mutation applies in ("insert t into R if Q is non-empty").
//
// UpdateOp is an immutable value type like Plan. Its one-world semantics
// (ApplyUpdate on a Database) double as the specification: a world-set
// update must behave as if the one-world update ran in every represented
// world independently. The engine backends implement the same semantics
// representation-natively (core/{wsd,wsdt}_update.h, core/uniform.h).

#ifndef MAYWSD_REL_UPDATE_H_
#define MAYWSD_REL_UPDATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/algebra.h"
#include "rel/database.h"
#include "rel/predicate.h"
#include "rel/relation.h"

namespace maywsd::rel {

/// One `attr := constant` assignment of a ModifyWhere.
struct Assignment {
  std::string attr;
  Value value;
};

/// One update: an insert, delete or modify against a named relation,
/// optionally guarded by a world condition.
class UpdateOp {
 public:
  enum class Kind : uint8_t { kInsert, kDelete, kModify };

  /// insert `tuples` into `relation` — the tuples (a fully certain
  /// instance matching the relation's schema) are added in every world.
  static UpdateOp InsertTuples(std::string relation, Relation tuples);

  /// delete from `relation` where `pred` — per world, every tuple
  /// satisfying `pred` is removed.
  static UpdateOp DeleteWhere(std::string relation, Predicate pred);

  /// update `relation` set `assignments` where `pred` — per world, every
  /// tuple satisfying `pred` has the assigned attributes overwritten.
  static UpdateOp ModifyWhere(std::string relation, Predicate pred,
                              std::vector<Assignment> assignments);

  /// Returns a copy guarded by `condition`: the mutation applies only in
  /// worlds where the condition plan's answer is non-empty.
  UpdateOp When(Plan condition) const;

  Kind kind() const { return node_->kind; }
  const std::string& relation() const { return node_->relation; }

  /// Valid for kInsert.
  const Relation& tuples() const { return node_->tuples; }
  /// Valid for kDelete and kModify.
  const Predicate& predicate() const { return node_->pred; }
  /// Valid for kModify.
  const std::vector<Assignment>& assignments() const {
    return node_->assignments;
  }

  bool has_world_condition() const { return node_->condition != nullptr; }
  /// Valid when has_world_condition().
  const Plan& world_condition() const { return *node_->condition; }

  /// True when both values wrap the same node; identity fast path.
  bool SharesNodeWith(const UpdateOp& o) const { return node_ == o.node_; }

  std::string ToString() const;

 private:
  struct Node {
    Kind kind = Kind::kInsert;
    std::string relation;
    Relation tuples;
    Predicate pred = Predicate::True();
    std::vector<Assignment> assignments;
    std::shared_ptr<const Plan> condition;
  };

  explicit UpdateOp(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Structural hash of an update; consistent with UpdateOpEqual.
size_t UpdateOpHash(const UpdateOp& op);

/// Structural equality (kind, relation, tuples, predicate, assignments,
/// world condition).
bool UpdateOpEqual(const UpdateOp& a, const UpdateOp& b);

/// Functors for hash containers keyed on updates.
struct UpdateOpHasher {
  size_t operator()(const UpdateOp& op) const { return UpdateOpHash(op); }
};
struct UpdateOpEq {
  bool operator()(const UpdateOp& a, const UpdateOp& b) const {
    return UpdateOpEqual(a, b);
  }
};

/// One-world reference semantics: applies `op` to the single world `db`
/// (evaluating the world condition against `db` first, when present). The
/// test suite uses this per world as the oracle for every backend's
/// world-set update.
Status ApplyUpdate(Database& db, const UpdateOp& op);

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_UPDATE_H_
