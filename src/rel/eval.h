// Plan evaluator: executes a relational algebra plan against a Database,
// producing a set-semantics Relation.

#ifndef MAYWSD_REL_EVAL_H_
#define MAYWSD_REL_EVAL_H_

#include "common/status.h"
#include "rel/algebra.h"
#include "rel/database.h"

namespace maywsd::rel {

/// Evaluates `plan` on `db`. Result rows are set-normalized (sorted,
/// duplicate-free). Joins with at least one equality conjunct use a hash
/// join; otherwise a filtered nested loop.
Result<Relation> Evaluate(const Plan& plan, const Database& db);

/// Computes the output schema of `plan` without evaluating it.
Result<Schema> OutputSchema(const Plan& plan, const Database& db);

}  // namespace maywsd::rel

#endif  // MAYWSD_REL_EVAL_H_
