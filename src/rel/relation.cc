#include "rel/relation.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

namespace maywsd::rel {

bool TupleRef::operator==(const TupleRef& o) const {
  if (arity_ != o.arity_) return false;
  for (size_t i = 0; i < arity_; ++i) {
    if (!(data_[i] == o.data_[i])) return false;
  }
  return true;
}

int TupleRef::Compare(const TupleRef& o) const {
  size_t n = std::min(arity_, o.arity_);
  for (size_t i = 0; i < n; ++i) {
    int c = data_[i].Compare(o.data_[i]);
    if (c != 0) return c;
  }
  if (arity_ != o.arity_) return arity_ < o.arity_ ? -1 : 1;
  return 0;
}

size_t TupleRef::Hash() const {
  size_t seed = 0x811c9dc5u;
  for (size_t i = 0; i < arity_; ++i) {
    HashCombine(seed, data_[i].Hash());
  }
  return seed;
}

bool TupleRef::HasBottom() const {
  for (size_t i = 0; i < arity_; ++i) {
    if (data_[i].is_bottom()) return true;
  }
  return false;
}

std::string TupleRef::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < arity_; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  os << ")";
  return os.str();
}

void Relation::AppendRow(std::span<const Value> values) {
  assert(values.size() == arity());
  std::vector<Value>& rows = MutableData();
  rows.insert(rows.end(), values.begin(), values.end());
}

void Relation::AppendRow(std::initializer_list<Value> values) {
  AppendRow(std::span<const Value>(values.begin(), values.size()));
}

Status Relation::AppendRowChecked(std::span<const Value> values) {
  if (values.size() != arity()) {
    return Status::InvalidArgument(
        "arity mismatch appending to " + name_ + ": got " +
        std::to_string(values.size()) + ", want " + std::to_string(arity()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    AttrType t = schema_.attr(i).type;
    const Value& v = values[i];
    bool ok = true;
    switch (t) {
      case AttrType::kAny:
        break;
      case AttrType::kInt:
        ok = v.is_int() || v.is_bottom() || v.is_question();
        break;
      case AttrType::kDouble:
        ok = v.is_numeric() || v.is_bottom() || v.is_question();
        break;
      case AttrType::kString:
        ok = v.is_string() || v.is_bottom() || v.is_question();
        break;
    }
    if (!ok) {
      return Status::InvalidArgument(
          "type mismatch in " + name_ + " attribute " +
          std::string(schema_.attr(i).name_view()) + ": " + v.ToString());
    }
  }
  AppendRow(values);
  return Status::Ok();
}

void Relation::SortDedup() {
  size_t n = NumRows();
  if (n <= 1) return;
  size_t k = arity();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const Value* base = data().data();
  auto cmp_idx = [&](uint32_t a, uint32_t b) {
    return TupleRef(base + a * k, k).Compare(TupleRef(base + b * k, k)) < 0;
  };
  std::sort(order.begin(), order.end(), cmp_idx);
  std::vector<Value> out;
  out.reserve(data().size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && TupleRef(base + order[i] * k, k) ==
                     TupleRef(base + order[i - 1] * k, k)) {
      continue;
    }
    const Value* src = base + order[i] * k;
    out.insert(out.end(), src, src + k);
  }
  data_.Reset(std::move(out));
}

bool Relation::IsSetNormalized() const {
  size_t n = NumRows();
  for (size_t i = 1; i < n; ++i) {
    if (row(i - 1).Compare(row(i)) >= 0) return false;
  }
  return true;
}

bool Relation::ContainsRow(std::span<const Value> values) const {
  if (values.size() != arity()) return false;
  TupleRef probe(values.data(), values.size());
  size_t n = NumRows();
  for (size_t i = 0; i < n; ++i) {
    if (row(i) == probe) return true;
  }
  return false;
}

bool Relation::EqualsAsSet(const Relation& other) const {
  if (arity() != other.arity()) return false;
  Relation a = *this;
  Relation b = other;
  a.SortDedup();
  b.SortDedup();
  return a.data() == b.data();
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << (name_.empty() ? "<anon>" : name_) << schema_.ToString() << " ["
     << NumRows() << " rows]\n";
  size_t n = std::min(NumRows(), max_rows);
  for (size_t i = 0; i < n; ++i) {
    os << "  " << row(i).ToString() << "\n";
  }
  if (n < NumRows()) os << "  ... (" << NumRows() - n << " more)\n";
  return os.str();
}

}  // namespace maywsd::rel
