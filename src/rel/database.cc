#include "rel/database.h"

#include <sstream>

namespace maywsd::rel {

Status Database::AddRelation(Relation relation) {
  std::string name = relation.name();
  if (name.empty()) {
    return Status::InvalidArgument("relation must be named to enter a catalog");
  }
  auto [it, inserted] = relations_.emplace(name, std::move(relation));
  (void)it;
  if (!inserted) return Status::AlreadyExists("relation " + name);
  return Status::Ok();
}

void Database::PutRelation(Relation relation) {
  std::string name = relation.name();
  relations_.insert_or_assign(name, std::move(relation));
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("relation " + name);
  return &it->second;
}

Result<Relation*> Database::GetMutableRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("relation " + name);
  return &it->second;
}

Status Database::DropRelation(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound("relation " + name);
  }
  return Status::Ok();
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) names.push_back(name);
  return names;
}

bool Database::EqualsAsWorld(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (const auto& [name, rel] : relations_) {
    auto it = other.relations_.find(name);
    if (it == other.relations_.end()) return false;
    if (!rel.EqualsAsSet(it->second)) return false;
  }
  return true;
}

std::string Database::ToString() const {
  std::ostringstream os;
  for (const auto& [name, rel] : relations_) os << rel.ToString();
  return os.str();
}

}  // namespace maywsd::rel
