#include "rel/algebra.h"

#include <sstream>

namespace maywsd::rel {

Plan Plan::Scan(std::string relation) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kScan;
  node->relation = std::move(relation);
  return Plan(std::move(node));
}

Plan Plan::Select(Predicate pred, Plan child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kSelect;
  node->pred = std::move(pred);
  node->left = std::make_shared<Plan>(std::move(child));
  return Plan(std::move(node));
}

Plan Plan::Project(std::vector<std::string> attrs, Plan child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProject;
  node->attrs = std::move(attrs);
  node->left = std::make_shared<Plan>(std::move(child));
  return Plan(std::move(node));
}

Plan Plan::Product(Plan left, Plan right) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kProduct;
  node->left = std::make_shared<Plan>(std::move(left));
  node->right = std::make_shared<Plan>(std::move(right));
  return Plan(std::move(node));
}

Plan Plan::Union(Plan left, Plan right) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kUnion;
  node->left = std::make_shared<Plan>(std::move(left));
  node->right = std::make_shared<Plan>(std::move(right));
  return Plan(std::move(node));
}

Plan Plan::Difference(Plan left, Plan right) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kDifference;
  node->left = std::make_shared<Plan>(std::move(left));
  node->right = std::make_shared<Plan>(std::move(right));
  return Plan(std::move(node));
}

Plan Plan::Rename(std::vector<std::pair<std::string, std::string>> renames,
                  Plan child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kRename;
  node->renames = std::move(renames);
  node->left = std::make_shared<Plan>(std::move(child));
  return Plan(std::move(node));
}

Plan Plan::Join(Predicate pred, Plan left, Plan right) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kJoin;
  node->pred = std::move(pred);
  node->left = std::make_shared<Plan>(std::move(left));
  node->right = std::make_shared<Plan>(std::move(right));
  return Plan(std::move(node));
}

size_t Plan::NodeCount() const {
  size_t n = 1;
  if (node_->left) n += node_->left->NodeCount();
  if (node_->right) n += node_->right->NodeCount();
  return n;
}

std::string Plan::ToString() const {
  std::ostringstream os;
  switch (kind()) {
    case Kind::kScan:
      os << relation();
      break;
    case Kind::kSelect:
      os << "select[" << predicate().ToString() << "](" << child().ToString()
         << ")";
      break;
    case Kind::kProject: {
      os << "project[";
      for (size_t i = 0; i < attributes().size(); ++i) {
        if (i > 0) os << ",";
        os << attributes()[i];
      }
      os << "](" << child().ToString() << ")";
      break;
    }
    case Kind::kProduct:
      os << "product(" << left().ToString() << ", " << right().ToString()
         << ")";
      break;
    case Kind::kUnion:
      os << "union(" << left().ToString() << ", " << right().ToString() << ")";
      break;
    case Kind::kDifference:
      os << "difference(" << left().ToString() << ", " << right().ToString()
         << ")";
      break;
    case Kind::kRename: {
      os << "rename[";
      for (size_t i = 0; i < renames().size(); ++i) {
        if (i > 0) os << ",";
        os << renames()[i].first << "->" << renames()[i].second;
      }
      os << "](" << child().ToString() << ")";
      break;
    }
    case Kind::kJoin:
      os << "join[" << predicate().ToString() << "](" << left().ToString()
         << ", " << right().ToString() << ")";
      break;
  }
  return os.str();
}

}  // namespace maywsd::rel
