#include "server/protocol.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "rel/predicate.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace maywsd::server {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(std::move(tok));
  return tokens;
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// An integer token is an integer value; anything else is a string.
rel::Value ParseValue(const std::string& token) {
  if (!token.empty()) {
    char* end = nullptr;
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() + token.size()) return rel::Value::Int(v);
  }
  return rel::Value::String(token);
}

Result<rel::CmpOp> ParseCmpOp(const std::string& token) {
  if (token == "=") return rel::CmpOp::kEq;
  if (token == "!=" || token == "<>") return rel::CmpOp::kNe;
  if (token == "<") return rel::CmpOp::kLt;
  if (token == "<=") return rel::CmpOp::kLe;
  if (token == ">") return rel::CmpOp::kGt;
  if (token == ">=") return rel::CmpOp::kGe;
  return Status::InvalidArgument("bad comparison operator: " + token);
}

Result<rel::Relation> ParseRows(const std::string& name,
                                const std::string& attrs_token,
                                const std::vector<std::string>& row_tokens) {
  std::vector<rel::Attribute> attrs;
  for (const std::string& a : SplitComma(attrs_token)) {
    if (a.empty()) {
      return Status::InvalidArgument("empty attribute in " + attrs_token);
    }
    attrs.emplace_back(a);
  }
  rel::Relation out(rel::Schema(std::move(attrs)), name);
  for (const std::string& row_token : row_tokens) {
    std::vector<rel::Value> row;
    for (const std::string& v : SplitComma(row_token)) {
      // The grammar cannot spell an empty string value; an empty item is a
      // truncated or doubled comma, not data.
      if (v.empty()) {
        return Status::InvalidArgument("empty value in row " + row_token);
      }
      row.push_back(ParseValue(v));
    }
    if (row.size() != out.arity()) {
      return Status::InvalidArgument("row " + row_token + " has " +
                                     std::to_string(row.size()) +
                                     " values, schema wants " +
                                     std::to_string(out.arity()));
    }
    out.AppendRow(row);
  }
  return out;
}

/// run <sid> <out> <scan|select|project> ... — tokens[3:] here.
Result<rel::Plan> ParsePlan(const std::vector<std::string>& t) {
  if (t.empty()) return Status::InvalidArgument("run: missing plan");
  const std::string& op = t[0];
  if (op == "scan") {
    if (t.size() != 2) return Status::InvalidArgument("run: scan <rel>");
    return rel::Plan::Scan(t[1]);
  }
  if (op == "select") {
    if (t.size() != 5) {
      return Status::InvalidArgument("run: select <rel> <attr> <op> <value>");
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::CmpOp cmp, ParseCmpOp(t[3]));
    return rel::Plan::Select(rel::Predicate::Cmp(t[2], cmp, ParseValue(t[4])),
                             rel::Plan::Scan(t[1]));
  }
  if (op == "project") {
    if (t.size() != 3) {
      return Status::InvalidArgument("run: project <rel> <attr,attr,...>");
    }
    std::vector<std::string> attrs = SplitComma(t[2]);
    for (const std::string& a : attrs) {
      if (a.empty()) {
        return Status::InvalidArgument("empty attribute in " + t[2]);
      }
    }
    return rel::Plan::Project(std::move(attrs), rel::Plan::Scan(t[1]));
  }
  return Status::InvalidArgument("run: unknown plan operator " + op);
}

/// apply <sid> <insert|delete|modify> ... — tokens[2:] here.
Result<rel::UpdateOp> ParseUpdate(const std::vector<std::string>& t) {
  if (t.size() < 2) return Status::InvalidArgument("apply: missing update");
  const std::string& op = t[0];
  const std::string& relation = t[1];
  if (op == "insert") {
    // Session::Apply validates inserted attribute names against the
    // target, so the wire carries them (same shape register uses).
    if (t.size() < 4) {
      return Status::InvalidArgument(
          "apply: insert <rel> <attr,attr,...> <v,v,...> ...");
    }
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Relation rows,
        ParseRows(relation, t[2],
                  std::vector<std::string>(t.begin() + 3, t.end())));
    return rel::UpdateOp::InsertTuples(relation, std::move(rows));
  }
  if (op == "delete") {
    if (t.size() != 5) {
      return Status::InvalidArgument("apply: delete <rel> <attr> <op> <value>");
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::CmpOp cmp, ParseCmpOp(t[3]));
    return rel::UpdateOp::DeleteWhere(
        relation, rel::Predicate::Cmp(t[2], cmp, ParseValue(t[4])));
  }
  if (op == "modify") {
    if (t.size() != 7 || t[5] != "set") {
      return Status::InvalidArgument(
          "apply: modify <rel> <attr> <op> <value> set <attr>=<value>[,...]");
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::CmpOp cmp, ParseCmpOp(t[3]));
    std::vector<rel::Assignment> assignments;
    for (const std::string& a : SplitComma(t[6])) {
      size_t eq = a.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == a.size()) {
        return Status::InvalidArgument("bad assignment: " + a);
      }
      assignments.push_back(
          {a.substr(0, eq), ParseValue(a.substr(eq + 1))});
    }
    return rel::UpdateOp::ModifyWhere(
        relation, rel::Predicate::Cmp(t[2], cmp, ParseValue(t[4])),
        std::move(assignments));
  }
  return Status::InvalidArgument("apply: unknown update kind " + op);
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  std::vector<std::string> t = Tokenize(line);
  if (t.empty()) return Status::InvalidArgument("empty request");
  const std::string& verb = t[0];
  Request req;

  if (verb == "sessions") {
    req.kind = Request::Kind::kListSessions;
    return req;
  }
  if (t.size() < 2) {
    return Status::InvalidArgument(verb + ": missing session id");
  }
  req.session = t[1];

  if (verb == "open") {
    if (t.size() != 3) {
      return Status::InvalidArgument("open <sid> <wsd|wsdt|uniform|urel>");
    }
    req.kind = Request::Kind::kOpenSession;
    MAYWSD_ASSIGN_OR_RETURN(req.backend, api::ParseBackendKind(t[2]));
    return req;
  }
  if (verb == "close") {
    req.kind = Request::Kind::kCloseSession;
    return req;
  }
  if (verb == "register") {
    if (t.size() < 4) {
      return Status::InvalidArgument(
          "register <sid> <rel> <attr,attr,...> [<v,v,...> ...]");
    }
    req.kind = Request::Kind::kRegister;
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Relation relation,
        ParseRows(t[2], t[3],
                  std::vector<std::string>(t.begin() + 4, t.end())));
    req.relation = std::move(relation);
    return req;
  }
  if (verb == "run") {
    if (t.size() < 4) return Status::InvalidArgument("run <sid> <out> <plan>");
    req.kind = Request::Kind::kRun;
    req.target = t[2];
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Plan plan,
        ParsePlan(std::vector<std::string>(t.begin() + 3, t.end())));
    req.plan = std::move(plan);
    return req;
  }
  if (verb == "apply") {
    req.kind = Request::Kind::kApply;
    MAYWSD_ASSIGN_OR_RETURN(
        rel::UpdateOp update,
        ParseUpdate(std::vector<std::string>(t.begin() + 2, t.end())));
    req.update = std::move(update);
    return req;
  }
  if (verb == "possible" || verb == "certain" || verb == "read" ||
      verb == "conf") {
    if (t.size() < 3) {
      return Status::InvalidArgument(verb + " <sid> <rel>");
    }
    req.target = t[2];
    if (verb == "possible") {
      req.kind = Request::Kind::kPossible;
    } else if (verb == "certain") {
      req.kind = Request::Kind::kCertain;
    } else if (verb == "read") {
      req.kind = Request::Kind::kSnapshotRead;
    } else {
      if (t.size() != 4) {
        return Status::InvalidArgument("conf <sid> <rel> <v,v,...>");
      }
      req.kind = Request::Kind::kConfidence;
      for (const std::string& v : SplitComma(t[3])) {
        if (v.empty()) {
          return Status::InvalidArgument("empty value in tuple " + t[3]);
        }
        req.tuple.push_back(ParseValue(v));
      }
    }
    return req;
  }
  if (verb == "stats") {
    req.kind = Request::Kind::kStats;
    return req;
  }
  return Status::InvalidArgument("unknown verb: " + verb);
}

namespace {

/// Canonical operator spellings (kNe formats as "!="; "<>" parses only).
std::string_view FormatCmpOp(rel::CmpOp op) {
  switch (op) {
    case rel::CmpOp::kEq:
      return "=";
    case rel::CmpOp::kNe:
      return "!=";
    case rel::CmpOp::kLt:
      return "<";
    case rel::CmpOp::kLe:
      return "<=";
    case rel::CmpOp::kGt:
      return ">";
    case rel::CmpOp::kGe:
      return ">=";
  }
  return "=";
}

/// A value as a wire token; fails when the token would not survive
/// re-tokenization (whitespace/comma split, or a string that re-parses as
/// an integer).
Result<std::string> FormatValue(const rel::Value& v) {
  if (v.is_int()) return std::to_string(v.AsInt());
  if (!v.is_string()) {
    return Status::InvalidArgument("value not expressible on the wire: " +
                                   v.ToString());
  }
  std::string s(v.AsStringView());
  if (s.empty()) return Status::InvalidArgument("empty string value");
  for (char c : s) {
    if (c == ',' || c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      return Status::InvalidArgument("string value would not re-tokenize: " +
                                     s);
    }
  }
  if (!(ParseValue(s) == v)) {
    return Status::InvalidArgument("string value re-parses as integer: " + s);
  }
  return s;
}

/// <v,v,...> tokens of a relation's rows, appended after `out`.
Status FormatRows(const rel::Relation& r, std::ostringstream& os) {
  for (size_t i = 0; i < r.NumRows(); ++i) {
    os << " ";
    const auto row = r.row(i).span();
    for (size_t c = 0; c < row.size(); ++c) {
      MAYWSD_ASSIGN_OR_RETURN(std::string tok, FormatValue(row[c]));
      os << (c == 0 ? "" : ",") << tok;
    }
  }
  return Status::Ok();
}

/// <rel> <attr,attr,...> [<v,v,...> ...] — the register/insert shape.
Status FormatRelation(const rel::Relation& r, std::ostringstream& os) {
  os << r.name();
  if (r.arity() == 0) {
    return Status::InvalidArgument("relation without attributes: " + r.name());
  }
  os << " ";
  for (size_t a = 0; a < r.arity(); ++a) {
    os << (a == 0 ? "" : ",") << r.schema().attr(a).name_view();
  }
  return FormatRows(r, os);
}

/// <attr> <op> <value> of a simple comparison predicate.
Status FormatCmpPredicate(const rel::Predicate& p, std::ostringstream& os) {
  if (p.kind() != rel::Predicate::Kind::kCmpConst) {
    return Status::InvalidArgument("predicate beyond the wire grammar");
  }
  MAYWSD_ASSIGN_OR_RETURN(std::string tok, FormatValue(p.constant()));
  os << p.lhs_attr() << " " << FormatCmpOp(p.op()) << " " << tok;
  return Status::Ok();
}

/// scan/select/project over a scan — the single-operator plan fragment.
Status FormatPlan(const rel::Plan& plan, std::ostringstream& os) {
  switch (plan.kind()) {
    case rel::Plan::Kind::kScan:
      os << "scan " << plan.relation();
      return Status::Ok();
    case rel::Plan::Kind::kSelect: {
      if (plan.child().kind() != rel::Plan::Kind::kScan) break;
      os << "select " << plan.child().relation() << " ";
      return FormatCmpPredicate(plan.predicate(), os);
    }
    case rel::Plan::Kind::kProject: {
      if (plan.child().kind() != rel::Plan::Kind::kScan) break;
      os << "project " << plan.child().relation() << " ";
      const std::vector<std::string>& attrs = plan.attributes();
      for (size_t a = 0; a < attrs.size(); ++a) {
        os << (a == 0 ? "" : ",") << attrs[a];
      }
      return Status::Ok();
    }
    default:
      break;
  }
  return Status::InvalidArgument("plan beyond the wire grammar");
}

Status FormatUpdate(const rel::UpdateOp& update, std::ostringstream& os) {
  if (update.has_world_condition()) {
    return Status::InvalidArgument("world conditions have no wire syntax");
  }
  switch (update.kind()) {
    case rel::UpdateOp::Kind::kInsert: {
      os << "insert ";
      const rel::Relation& rows = update.tuples();
      if (rows.empty()) {
        return Status::InvalidArgument("insert without rows: " +
                                       update.relation());
      }
      return FormatRelation(rows, os);
    }
    case rel::UpdateOp::Kind::kDelete:
      os << "delete " << update.relation() << " ";
      return FormatCmpPredicate(update.predicate(), os);
    case rel::UpdateOp::Kind::kModify: {
      os << "modify " << update.relation() << " ";
      MAYWSD_RETURN_IF_ERROR(FormatCmpPredicate(update.predicate(), os));
      os << " set ";
      const std::vector<rel::Assignment>& as = update.assignments();
      if (as.empty()) {
        return Status::InvalidArgument("modify without assignments");
      }
      for (size_t i = 0; i < as.size(); ++i) {
        MAYWSD_ASSIGN_OR_RETURN(std::string tok, FormatValue(as[i].value));
        os << (i == 0 ? "" : ",") << as[i].attr << "=" << tok;
      }
      return Status::Ok();
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

}  // namespace

Result<std::string> FormatRequest(const Request& request) {
  std::ostringstream os;
  switch (request.kind) {
    case Request::Kind::kListSessions:
      return std::string("sessions");
    case Request::Kind::kOpenSession:
      os << "open " << request.session << " "
         << api::BackendKindName(request.backend);
      return os.str();
    case Request::Kind::kCloseSession:
      os << "close " << request.session;
      return os.str();
    case Request::Kind::kRegister: {
      if (!request.relation.has_value()) {
        return Status::InvalidArgument("register without relation");
      }
      os << "register " << request.session << " ";
      MAYWSD_RETURN_IF_ERROR(FormatRelation(*request.relation, os));
      return os.str();
    }
    case Request::Kind::kRun: {
      if (!request.plan.has_value()) {
        return Status::InvalidArgument("run without plan");
      }
      os << "run " << request.session << " " << request.target << " ";
      MAYWSD_RETURN_IF_ERROR(FormatPlan(*request.plan, os));
      return os.str();
    }
    case Request::Kind::kApply: {
      if (!request.update.has_value()) {
        return Status::InvalidArgument("apply without update");
      }
      os << "apply " << request.session << " ";
      MAYWSD_RETURN_IF_ERROR(FormatUpdate(*request.update, os));
      return os.str();
    }
    case Request::Kind::kPossible:
      os << "possible " << request.session << " " << request.target;
      return os.str();
    case Request::Kind::kCertain:
      os << "certain " << request.session << " " << request.target;
      return os.str();
    case Request::Kind::kSnapshotRead:
      os << "read " << request.session << " " << request.target;
      return os.str();
    case Request::Kind::kConfidence: {
      os << "conf " << request.session << " " << request.target << " ";
      if (request.tuple.empty()) {
        return Status::InvalidArgument("conf without tuple");
      }
      for (size_t i = 0; i < request.tuple.size(); ++i) {
        MAYWSD_ASSIGN_OR_RETURN(std::string tok,
                                FormatValue(request.tuple[i]));
        os << (i == 0 ? "" : ",") << tok;
      }
      return os.str();
    }
    case Request::Kind::kStats:
      os << "stats " << request.session;
      return os.str();
  }
  return Status::InvalidArgument("unknown request kind");
}

std::string FormatResponse(const Response& response) {
  if (!response.status.ok()) return "ERR " + response.status.ToString();
  std::ostringstream os;
  os << "OK";
  if (response.relation.has_value()) {
    const rel::Relation& r = *response.relation;
    os << " " << r.NumRows() << " rows";
    for (size_t i = 0; i < r.NumRows(); ++i) {
      os << "\n";
      const auto row = r.row(i).span();
      for (size_t c = 0; c < row.size(); ++c) {
        os << (c == 0 ? "" : ",") << row[c].ToString();
      }
    }
  } else if (response.number.has_value()) {
    os << " " << *response.number;
  } else if (!response.text.empty()) {
    os << " " << response.text;
  }
  return os.str();
}

}  // namespace maywsd::server
