#include "server/protocol.h"

#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "rel/predicate.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace maywsd::server {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) tokens.push_back(std::move(tok));
  return tokens;
}

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// An integer token is an integer value; anything else is a string.
rel::Value ParseValue(const std::string& token) {
  if (!token.empty()) {
    char* end = nullptr;
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (end == token.c_str() + token.size()) return rel::Value::Int(v);
  }
  return rel::Value::String(token);
}

Result<rel::CmpOp> ParseCmpOp(const std::string& token) {
  if (token == "=") return rel::CmpOp::kEq;
  if (token == "!=" || token == "<>") return rel::CmpOp::kNe;
  if (token == "<") return rel::CmpOp::kLt;
  if (token == "<=") return rel::CmpOp::kLe;
  if (token == ">") return rel::CmpOp::kGt;
  if (token == ">=") return rel::CmpOp::kGe;
  return Status::InvalidArgument("bad comparison operator: " + token);
}

Result<rel::Relation> ParseRows(const std::string& name,
                                const std::string& attrs_token,
                                const std::vector<std::string>& row_tokens) {
  std::vector<rel::Attribute> attrs;
  for (const std::string& a : SplitComma(attrs_token)) {
    if (a.empty()) {
      return Status::InvalidArgument("empty attribute in " + attrs_token);
    }
    attrs.emplace_back(a);
  }
  rel::Relation out(rel::Schema(std::move(attrs)), name);
  for (const std::string& row_token : row_tokens) {
    std::vector<rel::Value> row;
    for (const std::string& v : SplitComma(row_token)) row.push_back(ParseValue(v));
    if (row.size() != out.arity()) {
      return Status::InvalidArgument("row " + row_token + " has " +
                                     std::to_string(row.size()) +
                                     " values, schema wants " +
                                     std::to_string(out.arity()));
    }
    out.AppendRow(row);
  }
  return out;
}

/// run <sid> <out> <scan|select|project> ... — tokens[3:] here.
Result<rel::Plan> ParsePlan(const std::vector<std::string>& t) {
  if (t.empty()) return Status::InvalidArgument("run: missing plan");
  const std::string& op = t[0];
  if (op == "scan") {
    if (t.size() != 2) return Status::InvalidArgument("run: scan <rel>");
    return rel::Plan::Scan(t[1]);
  }
  if (op == "select") {
    if (t.size() != 5) {
      return Status::InvalidArgument("run: select <rel> <attr> <op> <value>");
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::CmpOp cmp, ParseCmpOp(t[3]));
    return rel::Plan::Select(rel::Predicate::Cmp(t[2], cmp, ParseValue(t[4])),
                             rel::Plan::Scan(t[1]));
  }
  if (op == "project") {
    if (t.size() != 3) {
      return Status::InvalidArgument("run: project <rel> <attr,attr,...>");
    }
    return rel::Plan::Project(SplitComma(t[2]), rel::Plan::Scan(t[1]));
  }
  return Status::InvalidArgument("run: unknown plan operator " + op);
}

/// apply <sid> <insert|delete|modify> ... — tokens[2:] here.
Result<rel::UpdateOp> ParseUpdate(const std::vector<std::string>& t) {
  if (t.size() < 2) return Status::InvalidArgument("apply: missing update");
  const std::string& op = t[0];
  const std::string& relation = t[1];
  if (op == "insert") {
    // Session::Apply validates inserted attribute names against the
    // target, so the wire carries them (same shape register uses).
    if (t.size() < 4) {
      return Status::InvalidArgument(
          "apply: insert <rel> <attr,attr,...> <v,v,...> ...");
    }
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Relation rows,
        ParseRows(relation, t[2],
                  std::vector<std::string>(t.begin() + 3, t.end())));
    return rel::UpdateOp::InsertTuples(relation, std::move(rows));
  }
  if (op == "delete") {
    if (t.size() != 5) {
      return Status::InvalidArgument("apply: delete <rel> <attr> <op> <value>");
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::CmpOp cmp, ParseCmpOp(t[3]));
    return rel::UpdateOp::DeleteWhere(
        relation, rel::Predicate::Cmp(t[2], cmp, ParseValue(t[4])));
  }
  if (op == "modify") {
    if (t.size() != 7 || t[5] != "set") {
      return Status::InvalidArgument(
          "apply: modify <rel> <attr> <op> <value> set <attr>=<value>[,...]");
    }
    MAYWSD_ASSIGN_OR_RETURN(rel::CmpOp cmp, ParseCmpOp(t[3]));
    std::vector<rel::Assignment> assignments;
    for (const std::string& a : SplitComma(t[6])) {
      size_t eq = a.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("bad assignment: " + a);
      }
      assignments.push_back(
          {a.substr(0, eq), ParseValue(a.substr(eq + 1))});
    }
    return rel::UpdateOp::ModifyWhere(
        relation, rel::Predicate::Cmp(t[2], cmp, ParseValue(t[4])),
        std::move(assignments));
  }
  return Status::InvalidArgument("apply: unknown update kind " + op);
}

}  // namespace

Result<Request> ParseRequest(const std::string& line) {
  std::vector<std::string> t = Tokenize(line);
  if (t.empty()) return Status::InvalidArgument("empty request");
  const std::string& verb = t[0];
  Request req;

  if (verb == "sessions") {
    req.kind = Request::Kind::kListSessions;
    return req;
  }
  if (t.size() < 2) {
    return Status::InvalidArgument(verb + ": missing session id");
  }
  req.session = t[1];

  if (verb == "open") {
    if (t.size() != 3) {
      return Status::InvalidArgument("open <sid> <wsd|wsdt|uniform|urel>");
    }
    req.kind = Request::Kind::kOpenSession;
    MAYWSD_ASSIGN_OR_RETURN(req.backend, api::ParseBackendKind(t[2]));
    return req;
  }
  if (verb == "close") {
    req.kind = Request::Kind::kCloseSession;
    return req;
  }
  if (verb == "register") {
    if (t.size() < 4) {
      return Status::InvalidArgument(
          "register <sid> <rel> <attr,attr,...> [<v,v,...> ...]");
    }
    req.kind = Request::Kind::kRegister;
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Relation relation,
        ParseRows(t[2], t[3],
                  std::vector<std::string>(t.begin() + 4, t.end())));
    req.relation = std::move(relation);
    return req;
  }
  if (verb == "run") {
    if (t.size() < 4) return Status::InvalidArgument("run <sid> <out> <plan>");
    req.kind = Request::Kind::kRun;
    req.target = t[2];
    MAYWSD_ASSIGN_OR_RETURN(
        rel::Plan plan,
        ParsePlan(std::vector<std::string>(t.begin() + 3, t.end())));
    req.plan = std::move(plan);
    return req;
  }
  if (verb == "apply") {
    req.kind = Request::Kind::kApply;
    MAYWSD_ASSIGN_OR_RETURN(
        rel::UpdateOp update,
        ParseUpdate(std::vector<std::string>(t.begin() + 2, t.end())));
    req.update = std::move(update);
    return req;
  }
  if (verb == "possible" || verb == "certain" || verb == "read" ||
      verb == "conf") {
    if (t.size() < 3) {
      return Status::InvalidArgument(verb + " <sid> <rel>");
    }
    req.target = t[2];
    if (verb == "possible") {
      req.kind = Request::Kind::kPossible;
    } else if (verb == "certain") {
      req.kind = Request::Kind::kCertain;
    } else if (verb == "read") {
      req.kind = Request::Kind::kSnapshotRead;
    } else {
      if (t.size() != 4) {
        return Status::InvalidArgument("conf <sid> <rel> <v,v,...>");
      }
      req.kind = Request::Kind::kConfidence;
      for (const std::string& v : SplitComma(t[3])) {
        req.tuple.push_back(ParseValue(v));
      }
    }
    return req;
  }
  if (verb == "stats") {
    req.kind = Request::Kind::kStats;
    return req;
  }
  return Status::InvalidArgument("unknown verb: " + verb);
}

std::string FormatResponse(const Response& response) {
  if (!response.status.ok()) return "ERR " + response.status.ToString();
  std::ostringstream os;
  os << "OK";
  if (response.relation.has_value()) {
    const rel::Relation& r = *response.relation;
    os << " " << r.NumRows() << " rows";
    for (size_t i = 0; i < r.NumRows(); ++i) {
      os << "\n";
      const auto row = r.row(i).span();
      for (size_t c = 0; c < row.size(); ++c) {
        os << (c == 0 ? "" : ",") << row[c].ToString();
      }
    }
  } else if (response.number.has_value()) {
    os << " " << *response.number;
  } else if (!response.text.empty()) {
    os << " " << response.text;
  }
  return os.str();
}

}  // namespace maywsd::server
