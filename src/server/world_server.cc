#include "server/world_server.h"

#include <functional>
#include <sstream>
#include <utility>

#include "core/engine/parallel.h"

namespace maywsd::server {

namespace {

std::string FormatSessionStats(const api::SessionStats& s) {
  std::ostringstream os;
  os << "runs=" << s.runs << " sharded_runs=" << s.sharded_runs
     << " applies=" << s.applies << " sharded_applies=" << s.sharded_applies
     << " snapshots=" << s.snapshots << " forks=" << s.forks
     << " reader_blocked_waits=" << s.reader_blocked_waits
     << " answer_cache_hits=" << s.answer_cache_hits
     << " answer_cache_misses=" << s.answer_cache_misses;
  return os.str();
}

}  // namespace

WorldServer::WorldServer(api::SessionOptions session_options)
    : session_options_(session_options) {}

Response WorldServer::Execute(const Request& request) {
  Response resp = Dispatch(request);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.requests++;
    if (!resp.status.ok()) stats_.errors++;
    if (resp.status.ok()) {
      if (request.kind == Request::Kind::kOpenSession) stats_.sessions_opened++;
      if (request.kind == Request::Kind::kSnapshotRead) stats_.snapshot_reads++;
    }
  }
  return resp;
}

std::vector<Response> WorldServer::ExecuteAll(
    const std::vector<Request>& requests) {
  std::vector<Response> responses(requests.size());
  std::vector<std::function<Status()>> tasks;
  tasks.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    tasks.push_back([this, &requests, &responses, i] {
      responses[i] = Execute(requests[i]);
      return Status::Ok();  // per-request status travels in the Response
    });
  }
  core::engine::ThreadPool::Shared().RunAll(tasks);
  return responses;
}

std::vector<std::string> WorldServer::SessionIds() const {
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  std::vector<std::string> ids;
  ids.reserve(sessions_.size());
  for (const auto& [id, _] : sessions_) ids.push_back(id);
  return ids;
}

ServerStats WorldServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Response WorldServer::Dispatch(const Request& request) {
  Response resp;
  switch (request.kind) {
    case Request::Kind::kOpenSession: {
      if (request.session.empty()) {
        resp.status = Status::InvalidArgument("open: empty session id");
        return resp;
      }
      std::unique_lock<std::shared_mutex> lock(registry_mu_);
      if (sessions_.count(request.session) != 0) {
        resp.status =
            Status::AlreadyExists("session " + request.session + " is open");
        return resp;
      }
      sessions_.emplace(request.session,
                        std::make_unique<api::Session>(api::Session::Open(
                            request.backend, session_options_)));
      resp.text = "opened " + request.session + " over " +
                  std::string(api::BackendKindName(request.backend));
      return resp;
    }
    case Request::Kind::kCloseSession: {
      // Exclusive: waits for every in-flight request on any session to
      // drain (they hold the registry lock shared) before destroying.
      std::unique_lock<std::shared_mutex> lock(registry_mu_);
      if (sessions_.erase(request.session) == 0) {
        resp.status = Status::NotFound("session " + request.session);
        return resp;
      }
      resp.text = "closed " + request.session;
      return resp;
    }
    case Request::Kind::kListSessions: {
      std::shared_lock<std::shared_mutex> lock(registry_mu_);
      std::string out;
      for (const auto& [id, session] : sessions_) {
        if (!out.empty()) out += ' ';
        out += id + ':' + std::string(session->BackendName());
      }
      resp.text = std::move(out);
      return resp;
    }
    default:
      break;
  }

  // Session-scoped request: hold the registry shared so kCloseSession
  // cannot destroy the session mid-call. The Session synchronizes itself.
  std::shared_lock<std::shared_mutex> lock(registry_mu_);
  auto it = sessions_.find(request.session);
  if (it == sessions_.end()) {
    resp.status = Status::NotFound("session " + request.session);
    return resp;
  }
  api::Session& session = *it->second;
  switch (request.kind) {
    case Request::Kind::kRegister:
      resp.status = request.relation.has_value()
                        ? session.Register(*request.relation)
                        : Status::InvalidArgument("register: no relation");
      if (resp.status.ok()) {
        resp.text = "registered " + request.relation->name();
      }
      return resp;
    case Request::Kind::kRun:
      if (!request.plan.has_value()) {
        resp.status = Status::InvalidArgument("run: no plan");
        return resp;
      }
      resp.status = session.Run(*request.plan, request.target);
      if (resp.status.ok()) resp.text = "materialized " + request.target;
      return resp;
    case Request::Kind::kApply:
      resp.status = request.update.has_value()
                        ? session.Apply(*request.update)
                        : Status::InvalidArgument("apply: no update");
      if (resp.status.ok()) resp.text = "applied to " + request.update->relation();
      return resp;
    case Request::Kind::kPossible: {
      auto r = session.PossibleTuples(request.target);
      if (r.ok()) {
        resp.relation = std::move(r.value());
      } else {
        resp.status = r.status();
      }
      return resp;
    }
    case Request::Kind::kCertain: {
      auto r = session.CertainTuples(request.target);
      if (r.ok()) {
        resp.relation = std::move(r.value());
      } else {
        resp.status = r.status();
      }
      return resp;
    }
    case Request::Kind::kConfidence: {
      auto r = session.TupleConfidence(request.target, request.tuple);
      if (r.ok()) {
        resp.number = r.value();
      } else {
        resp.status = r.status();
      }
      return resp;
    }
    case Request::Kind::kSnapshotRead: {
      // Pin an MVCC view, answer from the private copy: never blocks
      // behind (or observes) a writer applying updates to this session.
      // Repinning per request is O(relations) — the snapshot is a
      // copy-on-write clone of the store, not a data copy.
      api::Snapshot snapshot = session.Snapshot();
      auto r = snapshot.PossibleTuples(request.target);
      if (r.ok()) {
        resp.relation = std::move(r.value());
      } else {
        resp.status = r.status();
      }
      return resp;
    }
    case Request::Kind::kStats:
      resp.text = FormatSessionStats(session.Stats());
      return resp;
    case Request::Kind::kOpenSession:
    case Request::Kind::kCloseSession:
    case Request::Kind::kListSessions:
      break;  // handled above
  }
  resp.status = Status::Internal("unhandled request kind");
  return resp;
}

}  // namespace maywsd::server
