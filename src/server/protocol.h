// The serve_worlds line protocol: one request per line, space-separated
// tokens, comma-separated tuples. Values parse as integers when the whole
// token is one, as strings otherwise. Comparison operators spell as
// = != <> < <= > >=.
//
// Grammar (sid = session id, rel = relation name):
//   open <sid> <wsd|wsdt|uniform|urel>
//   close <sid>
//   sessions
//   register <sid> <rel> <attr,attr,...> [<v,v,...> ...]
//   run <sid> <out> scan <rel>
//   run <sid> <out> select <rel> <attr> <op> <value>
//   run <sid> <out> project <rel> <attr,attr,...>
//   apply <sid> insert <rel> <attr,attr,...> <v,v,...> [<v,v,...> ...]
//   apply <sid> delete <rel> <attr> <op> <value>
//   apply <sid> modify <rel> <attr> <op> <value> set <attr>=<value>[,...]
//   possible <sid> <rel>
//   certain <sid> <rel>
//   conf <sid> <rel> <v,v,...>
//   read <sid> <rel>           (snapshot read: answers from a pinned view)
//   stats <sid>
//
// The grammar covers the single-operator plans a REPL needs; programs
// drive WorldServer::Execute directly with arbitrary rel::Plans.

#ifndef MAYWSD_SERVER_PROTOCOL_H_
#define MAYWSD_SERVER_PROTOCOL_H_

#include <string>

#include "common/status.h"
#include "server/world_server.h"

namespace maywsd::server {

/// Parses one line into a Request; InvalidArgument names the offending
/// token. Blank lines and `#` comments are the caller's job to skip.
Result<Request> ParseRequest(const std::string& line);

/// Renders a Request back to its canonical protocol line — the inverse of
/// ParseRequest over its canonical output: Parse(Format(r)) reproduces r,
/// and Format(Parse(line)) == line whenever `line` uses canonical operator
/// spellings (`!=` for kNe) and single spacing. InvalidArgument when the
/// request cannot be expressed in the grammar (plans beyond
/// scan/select/project, values whose text would not re-tokenize — embedded
/// whitespace or commas).
Result<std::string> FormatRequest(const Request& request);

/// Renders a Response for the wire: "OK" / "OK <payload>" on one or more
/// lines (relations print one row per line), "ERR <code>: <message>" on
/// failure.
std::string FormatResponse(const Response& response);

}  // namespace maywsd::server

#endif  // MAYWSD_SERVER_PROTOCOL_H_
