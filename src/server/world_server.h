// WorldServer: many independent Sessions behind one request API.
//
// The paper's PostgreSQL prototype was a client/server system — world-set
// relations lived in a shared database and many clients queried them. This
// subsystem reproduces that shape over the in-process engine: a WorldServer
// owns a registry of named api::Sessions (each over any of the four
// backends), serves value-typed Requests against them, and fans a batch of
// requests out over the shared worker pool (ExecuteAll). Concurrency is
// layered: the server's registry lock only guards the session map (open,
// close, lookup — held shared for the whole request so a session cannot be
// closed under an in-flight call); each Session synchronizes its own state,
// and snapshot reads (Request::Kind::kSnapshotRead) pin an MVCC view so
// they never wait behind a concurrent writer on the same session.
//
// The wire front end (protocol.h, serve_worlds.cc) is a thin layer over
// this class; tests and benches drive it directly with Requests.

#ifndef MAYWSD_SERVER_WORLD_SERVER_H_
#define MAYWSD_SERVER_WORLD_SERVER_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/session.h"
#include "common/status.h"
#include "rel/algebra.h"
#include "rel/relation.h"
#include "rel/update.h"
#include "rel/value.h"

namespace maywsd::server {

/// One request against the server. Which fields are read depends on kind;
/// unset optional fields on a kind that needs them are InvalidArgument.
struct Request {
  enum class Kind {
    kOpenSession,   ///< open `session` over `backend`
    kCloseSession,  ///< close `session` (waits out in-flight requests on it)
    kListSessions,  ///< list open session ids
    kRegister,      ///< register `relation` in `session`
    kRun,           ///< evaluate `plan`, materializing `target` in `session`
    kApply,         ///< apply `update` to `session`
    kPossible,      ///< possible(`target`) — direct (locking) read
    kCertain,       ///< certain(`target`) — direct (locking) read
    kConfidence,    ///< conf(`tuple` in `target`)
    kSnapshotRead,  ///< possible(`target`) via a pinned MVCC snapshot
    kStats,         ///< the session's SessionStats, formatted
  };

  Kind kind = Kind::kListSessions;
  std::string session;
  api::BackendKind backend = api::BackendKind::kWsdt;  // kOpenSession
  std::optional<rel::Relation> relation;               // kRegister
  std::optional<rel::Plan> plan;                       // kRun
  std::optional<rel::UpdateOp> update;                 // kApply
  std::string target;            // output (kRun) / answer relation name
  std::vector<rel::Value> tuple;  // kConfidence
};

/// The outcome of one request. Exactly one payload field is set on success
/// (which one depends on the request kind); none on error.
struct Response {
  Status status = Status::Ok();
  std::optional<rel::Relation> relation;  ///< relational answers
  std::optional<double> number;           ///< kConfidence
  std::string text;                       ///< lists, stats, acknowledgments
};

/// Cumulative server-level counters (session-level ones live in
/// api::SessionStats, reachable via Request::Kind::kStats).
struct ServerStats {
  uint64_t requests = 0;         ///< requests executed (including failed)
  uint64_t errors = 0;           ///< requests that returned a non-OK status
  uint64_t sessions_opened = 0;  ///< kOpenSession successes
  uint64_t snapshot_reads = 0;   ///< kSnapshotRead successes
};

class WorldServer {
 public:
  /// Every session the server opens inherits `session_options` (thread
  /// budget for Run/ApplyAll fan-outs, caching policy).
  explicit WorldServer(api::SessionOptions session_options = {});

  WorldServer(const WorldServer&) = delete;
  WorldServer& operator=(const WorldServer&) = delete;

  /// Executes one request against the registry. Session-scoped kinds hold
  /// the registry lock shared for the duration of the call, so a
  /// concurrent kCloseSession waits for them to drain.
  Response Execute(const Request& request);

  /// Executes a batch concurrently over the shared worker pool, one
  /// response per request (same order). Requests against the same session
  /// serialize on that session's own lock; requests against different
  /// sessions proceed in parallel.
  std::vector<Response> ExecuteAll(const std::vector<Request>& requests);

  std::vector<std::string> SessionIds() const;
  ServerStats Stats() const;

 private:
  Response Dispatch(const Request& request);

  api::SessionOptions session_options_;
  mutable std::shared_mutex registry_mu_;
  std::map<std::string, std::unique_ptr<api::Session>> sessions_;
  mutable std::mutex stats_mu_;
  ServerStats stats_;
};

}  // namespace maywsd::server

#endif  // MAYWSD_SERVER_WORLD_SERVER_H_
