// serve_worlds: a line-protocol front end over WorldServer.
//
// Reads one request per line from stdin, writes one response per request
// to stdout (see protocol.h for the grammar). Blank lines and lines
// starting with '#' are skipped; "quit" / "exit" ends the loop.
//
//   $ serve_worlds --threads=4
//   open s wsdt
//   register s R a,b 1,2 3,4
//   read s R
//
// Each session the server opens inherits --threads as its fan-out budget
// (Run and unconditional-update sharding); requests stream sequentially
// here — concurrent serving is exercised by WorldServer::ExecuteAll in
// bench/fig_serving.cc.

#include <cstdlib>
#include <iostream>
#include <string>

#include "api/session.h"
#include "server/protocol.h"
#include "server/world_server.h"

namespace {

void PrintUsage() {
  std::cout << "usage: serve_worlds [--threads=N]\n"
               "  --threads=N  per-session fan-out budget (default 1;\n"
               "               0 = hardware concurrency)\n";
}

}  // namespace

int main(int argc, char** argv) {
  maywsd::api::SessionOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::atoi(arg.c_str() + 10);
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintUsage();
      return 2;
    }
  }

  maywsd::server::WorldServer server(options);
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first);
    if (line[0] == '#') continue;
    if (line == "quit" || line == "exit") break;
    auto request = maywsd::server::ParseRequest(line);
    if (!request.ok()) {
      std::cout << "ERR " << request.status().ToString() << "\n" << std::flush;
      continue;
    }
    maywsd::server::Response response = server.Execute(request.value());
    std::cout << maywsd::server::FormatResponse(response) << "\n" << std::flush;
  }
  return 0;
}
