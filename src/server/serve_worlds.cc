// serve_worlds: a line-protocol front end over WorldServer.
//
// Reads one request per line from stdin, writes one response per request
// to stdout (see protocol.h for the grammar). Blank lines and lines
// starting with '#' are skipped; "quit" / "exit" ends the loop.
//
//   $ serve_worlds --threads=4
//   open s wsdt
//   register s R a,b 1,2 3,4
//   read s R
//
// With --script <file> the requests are read from the file instead and the
// process exits after the last one — non-zero as soon as a request fails
// to parse or execute, so examples and CI can drive the server
// non-interactively and assert on the outcome.
//
// Each session the server opens inherits --threads as its fan-out budget
// (Run and unconditional-update sharding); requests stream sequentially
// here — concurrent serving is exercised by WorldServer::ExecuteAll in
// bench/fig_serving.cc.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <istream>
#include <string>

#include "api/session.h"
#include "server/protocol.h"
#include "server/world_server.h"

namespace {

void PrintUsage() {
  std::cout << "usage: serve_worlds [--threads=N] [--script FILE]\n"
               "  --threads=N    per-session fan-out budget (default 1;\n"
               "                 0 = hardware concurrency)\n"
               "  --script FILE  execute the requests in FILE and exit;\n"
               "                 non-zero on the first parse or request "
               "error\n";
}

/// Streams requests from `in` into `server`. With `fail_fast` (script
/// mode), the first parse error or non-OK response stops the stream with
/// exit code 1; interactively, errors are printed and the loop continues.
int RunStream(std::istream& in, maywsd::server::WorldServer& server,
              bool fail_fast) {
  std::string line;
  while (std::getline(in, line)) {
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    line = line.substr(first);
    if (line[0] == '#') continue;
    if (line == "quit" || line == "exit") break;
    auto request = maywsd::server::ParseRequest(line);
    if (!request.ok()) {
      std::cout << "ERR " << request.status().ToString() << "\n" << std::flush;
      if (fail_fast) {
        std::cerr << "script error at: " << line << "\n";
        return 1;
      }
      continue;
    }
    maywsd::server::Response response = server.Execute(request.value());
    std::cout << maywsd::server::FormatResponse(response) << "\n" << std::flush;
    if (fail_fast && !response.status.ok()) {
      std::cerr << "script error at: " << line << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  maywsd::api::SessionOptions options;
  std::string script;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--script=", 0) == 0) {
      script = arg.substr(9);
    } else if (arg == "--script" && i + 1 < argc) {
      script = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintUsage();
      return 2;
    }
  }

  maywsd::server::WorldServer server(options);
  if (!script.empty()) {
    std::ifstream file(script);
    if (!file) {
      std::cerr << "cannot open script: " << script << "\n";
      return 2;
    }
    return RunStream(file, server, /*fail_fast=*/true);
  }
  return RunStream(std::cin, server, /*fail_fast=*/false);
}
