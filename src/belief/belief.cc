#include "belief/belief.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "rel/predicate.h"
#include "rel/relation.h"
#include "rel/schema.h"
#include "rel/value.h"

namespace maywsd::belief {
namespace {

using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using rel::Value;

/// P(alive) below this mass counts as "every world eliminated" — the
/// conditional-probability denominator would be numerically meaningless.
constexpr double kDeadMass = 1e-9;

rel::Relation MarkerRelation(const char* name, const char* attr) {
  rel::Relation r(rel::Schema{{attr, rel::AttrType::kInt}}, name);
  r.AppendRow({Value::Int(0)});
  return r;
}

std::string TupleKey(std::span<const Value> tuple) {
  std::string key;
  for (const Value& v : tuple) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

}  // namespace

std::vector<UpdateOp> ObservationOps(const Plan& fact) {
  // The marker dies exactly in the worlds where `fact` has no witness:
  // delete-all-of-obs guarded by  unit − π_{__UNIT}(fact × unit),
  // which is non-empty precisely in the fact-violating worlds. Dead worlds
  // are unaffected (their marker is already gone).
  Plan unit = Plan::Scan(kUnitRelation);
  Plan witnessed = Plan::Project({kUnitAttr}, Plan::Product(fact, unit));
  Plan eliminated = Plan::Difference(unit, witnessed);
  std::vector<UpdateOp> ops;
  ops.push_back(UpdateOp::DeleteWhere(kAliveRelation, Predicate::True())
                    .When(eliminated));
  return ops;
}

namespace internal {

/// The per-session half of an Agent or Successor: the owned Session, the
/// version-stamped witness-relation cache, and the belief-layer counters.
/// One mutex serializes everything per state; cross-state work (other
/// agents, the Game successor cache) never nests inside it.
class KnowledgeState {
 public:
  explicit KnowledgeState(api::Session session)
      : session_(std::move(session)) {}

  api::Session& session() { return session_; }
  const api::Session& session() const { return session_; }

  /// Registers the alive/unit markers when absent and drops any reserved
  /// witness relations inherited from a parent session (a forked successor
  /// starts with fresh bookkeeping, so inherited materializations are
  /// unreachable garbage and their names must be freed for reuse).
  Status Init() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& name : session_.RelationNames()) {
      if (name.rfind(kDerivedPrefix, 0) == 0) {
        MAYWSD_RETURN_IF_ERROR(session_.Drop(name));
      }
    }
    MAYWSD_RETURN_IF_ERROR(EnsureMarker(kAliveRelation, kAliveAttr));
    return EnsureMarker(kUnitRelation, kUnitAttr);
  }

  Status Observe(std::span<const UpdateOp> ops) {
    std::lock_guard<std::mutex> lock(mu_);
    MAYWSD_RETURN_IF_ERROR(session_.ApplyAll(ops));
    ++observes_;
    applies_ += ops.size();
    return Status::Ok();
  }

  /// A game step or successor expansion: same application, not counted as
  /// an observation.
  Status Apply(std::span<const UpdateOp> ops) {
    std::lock_guard<std::mutex> lock(mu_);
    MAYWSD_RETURN_IF_ERROR(session_.ApplyAll(ops));
    applies_ += ops.size();
    return Status::Ok();
  }

  Result<bool> Knows(std::string_view relation,
                     std::span<const Value> tuple) {
    std::lock_guard<std::mutex> lock(mu_);
    ++knowledge_queries_;
    MAYWSD_ASSIGN_OR_RETURN(Predicate match,
                            MatchPredicateLocked(relation, tuple));
    // Non-empty in a world  ⟺  the world is alive and lacks t: Knows is
    // the emptiness of its possible answer. Exact — no float thresholds.
    Plan has_t = Plan::Project(
        {kUnitAttr},
        Plan::Product(Plan::Select(match, Plan::Scan(std::string(relation))),
                      Plan::Scan(kUnitRelation)));
    Plan missing_t = Plan::Difference(Plan::Scan(kUnitRelation), has_t);
    Plan bad = Plan::Project(
        {kUnitAttr}, Plan::Product(missing_t, Plan::Scan(kAliveRelation)));
    MAYWSD_ASSIGN_OR_RETURN(
        std::string witness,
        EnsureDerivedLocked("knows:" + std::string(relation) + ":" +
                                TupleKey(tuple),
                            relation, bad));
    MAYWSD_ASSIGN_OR_RETURN(rel::Relation possible,
                            session_.PossibleTuples(witness));
    return possible.empty();
  }

  Result<bool> ConsidersPossible(std::string_view relation,
                                 std::span<const Value> tuple) {
    std::lock_guard<std::mutex> lock(mu_);
    ++knowledge_queries_;
    MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema,
                            session_.RelationSchema(relation));
    if (tuple.size() != schema.arity()) {
      return Status::InvalidArgument("tuple arity does not match relation '" +
                                     std::string(relation) + "'");
    }
    MAYWSD_ASSIGN_OR_RETURN(std::string live, EnsureLiveLocked(relation));
    MAYWSD_ASSIGN_OR_RETURN(rel::Relation possible,
                            session_.PossibleTuples(live));
    return possible.ContainsRow(tuple);
  }

  Result<double> Confidence(std::string_view relation,
                            std::span<const Value> tuple) {
    std::lock_guard<std::mutex> lock(mu_);
    ++knowledge_queries_;
    return ConfidenceLocked(relation, tuple);
  }

  Result<bool> Believes(std::string_view relation,
                        std::span<const Value> tuple, double threshold) {
    std::lock_guard<std::mutex> lock(mu_);
    ++knowledge_queries_;
    MAYWSD_ASSIGN_OR_RETURN(double conf, ConfidenceLocked(relation, tuple));
    return conf >= threshold;
  }

  BeliefStats Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    BeliefStats s;
    s.observes = observes_;
    s.applies = applies_;
    s.knowledge_queries = knowledge_queries_;
    s.knowledge_cache_hits = knowledge_cache_hits_;
    s.knowledge_cache_misses = knowledge_cache_misses_;
    api::SessionStats ss = session_.Stats();
    s.answer_cache_hits = ss.answer_cache_hits;
    s.answer_cache_misses = ss.answer_cache_misses;
    return s;
  }

 private:
  struct DerivedEntry {
    std::string name;
    uint64_t base_version = 0;
    uint64_t alive_version = 0;
  };

  Status EnsureMarker(const char* name, const char* attr) {
    if (session_.HasRelation(name)) {
      MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema,
                              session_.RelationSchema(name));
      if (schema.arity() != 1 || schema.attr(0).name_view() != attr) {
        return Status::InvalidArgument(
            std::string("relation '") + name +
            "' exists with a schema other than the reserved belief marker");
      }
      return Status::Ok();
    }
    return session_.Register(MarkerRelation(name, attr));
  }

  /// Materializes `plan` once per (base relation version, alive version)
  /// under a reserved name and reuses it until either input changes, so
  /// repeated questions hit the Session's memoized answer surface.
  Result<std::string> EnsureDerivedLocked(const std::string& key,
                                          std::string_view base_relation,
                                          const Plan& plan) {
    const uint64_t base_version = session_.RelationVersion(base_relation);
    const uint64_t alive_version = session_.RelationVersion(kAliveRelation);
    auto it = derived_.find(key);
    if (it != derived_.end() && it->second.base_version == base_version &&
        it->second.alive_version == alive_version &&
        session_.HasRelation(it->second.name)) {
      ++knowledge_cache_hits_;
      return it->second.name;
    }
    ++knowledge_cache_misses_;
    if (it != derived_.end() && session_.HasRelation(it->second.name)) {
      MAYWSD_RETURN_IF_ERROR(session_.Drop(it->second.name));
    }
    std::string name;
    do {
      name = std::string(kDerivedPrefix) + std::to_string(next_id_++);
    } while (session_.HasRelation(name));
    MAYWSD_RETURN_IF_ERROR(session_.Run(plan, name));
    derived_[key] = DerivedEntry{name, base_version, alive_version};
    return name;
  }

  /// R restricted to alive worlds (empty wherever the marker is gone).
  Result<std::string> EnsureLiveLocked(std::string_view relation) {
    MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema,
                            session_.RelationSchema(relation));
    std::vector<std::string> attrs;
    attrs.reserve(schema.arity());
    for (const rel::Attribute& a : schema.attrs()) {
      attrs.emplace_back(a.name_view());
    }
    Plan live =
        Plan::Project(attrs, Plan::Product(Plan::Scan(std::string(relation)),
                                           Plan::Scan(kAliveRelation)));
    return EnsureDerivedLocked("live:" + std::string(relation), relation,
                               live);
  }

  Result<Predicate> MatchPredicateLocked(std::string_view relation,
                                         std::span<const Value> tuple) {
    MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema,
                            session_.RelationSchema(relation));
    if (tuple.size() != schema.arity()) {
      return Status::InvalidArgument("tuple arity does not match relation '" +
                                     std::string(relation) + "'");
    }
    std::vector<Predicate> eqs;
    eqs.reserve(tuple.size());
    for (size_t i = 0; i < tuple.size(); ++i) {
      eqs.push_back(Predicate::Cmp(std::string(schema.attr(i).name_view()),
                                   rel::CmpOp::kEq, tuple[i]));
    }
    return Predicate::AndAll(std::move(eqs));
  }

  Result<double> ConfidenceLocked(std::string_view relation,
                                  std::span<const Value> tuple) {
    MAYWSD_ASSIGN_OR_RETURN(rel::Schema schema,
                            session_.RelationSchema(relation));
    if (tuple.size() != schema.arity()) {
      return Status::InvalidArgument("tuple arity does not match relation '" +
                                     std::string(relation) + "'");
    }
    const Value marker[] = {Value::Int(0)};
    MAYWSD_ASSIGN_OR_RETURN(double alive,
                            session_.TupleConfidence(kAliveRelation, marker));
    if (alive < kDeadMass) {
      return Status::Inconsistent(
          "observations eliminated every world; conditional confidence is "
          "undefined");
    }
    MAYWSD_ASSIGN_OR_RETURN(std::string live, EnsureLiveLocked(relation));
    MAYWSD_ASSIGN_OR_RETURN(double joint,
                            session_.TupleConfidence(live, tuple));
    return joint / alive;
  }

  api::Session session_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, DerivedEntry> derived_;
  uint64_t next_id_ = 0;
  uint64_t observes_ = 0;
  uint64_t applies_ = 0;
  uint64_t knowledge_queries_ = 0;
  uint64_t knowledge_cache_hits_ = 0;
  uint64_t knowledge_cache_misses_ = 0;
};

}  // namespace internal

// -- Agent --------------------------------------------------------------------

Agent::Agent(std::string name, std::unique_ptr<internal::KnowledgeState> know)
    : name_(std::move(name)), know_(std::move(know)) {}

Agent::Agent(Agent&&) noexcept = default;
Agent& Agent::operator=(Agent&&) noexcept = default;
Agent::~Agent() = default;

Result<Agent> Agent::Make(std::string name, api::Session session) {
  if (name.empty()) {
    return Status::InvalidArgument("agent name must be non-empty");
  }
  auto know = std::make_unique<internal::KnowledgeState>(std::move(session));
  MAYWSD_RETURN_IF_ERROR(know->Init());
  return Agent(std::move(name), std::move(know));
}

api::Session& Agent::session() { return know_->session(); }
const api::Session& Agent::session() const { return know_->session(); }

Status Agent::Observe(std::span<const rel::UpdateOp> ops) {
  // Apply first (the knowledge state's lock is released on return), then
  // invalidate — the game mutex is never taken while holding it.
  MAYWSD_RETURN_IF_ERROR(know_->Observe(ops));
  if (game_ != nullptr) game_->InvalidateSuccessors(name_);
  return Status::Ok();
}

Status Agent::Observe(const rel::Plan& fact) {
  std::vector<rel::UpdateOp> ops = ObservationOps(fact);
  return Observe(std::span<const rel::UpdateOp>(ops));
}

Result<bool> Agent::Knows(std::string_view relation,
                          std::span<const rel::Value> tuple) {
  return know_->Knows(relation, tuple);
}

Result<bool> Agent::ConsidersPossible(std::string_view relation,
                                      std::span<const rel::Value> tuple) {
  return know_->ConsidersPossible(relation, tuple);
}

Result<double> Agent::Confidence(std::string_view relation,
                                 std::span<const rel::Value> tuple) {
  return know_->Confidence(relation, tuple);
}

Result<bool> Agent::Believes(std::string_view relation,
                             std::span<const rel::Value> tuple,
                             double threshold) {
  return know_->Believes(relation, tuple, threshold);
}

BeliefStats Agent::Stats() const { return know_->Stats(); }

// -- Successor ----------------------------------------------------------------

Successor::Successor(std::unique_ptr<internal::KnowledgeState> know)
    : know_(std::move(know)) {}

Successor::~Successor() = default;

const api::Session& Successor::session() const { return know_->session(); }

Result<bool> Successor::Knows(std::string_view relation,
                              std::span<const rel::Value> tuple) {
  return know_->Knows(relation, tuple);
}

Result<bool> Successor::ConsidersPossible(std::string_view relation,
                                          std::span<const rel::Value> tuple) {
  return know_->ConsidersPossible(relation, tuple);
}

Result<double> Successor::Confidence(std::string_view relation,
                                     std::span<const rel::Value> tuple) {
  return know_->Confidence(relation, tuple);
}

Result<bool> Successor::Believes(std::string_view relation,
                                 std::span<const rel::Value> tuple,
                                 double threshold) {
  return know_->Believes(relation, tuple, threshold);
}

BeliefStats Successor::Stats() const { return know_->Stats(); }

// -- Game ---------------------------------------------------------------------

namespace {

/// Successor-cache key: the agent plus the structural identity of the
/// action batch (rel::UpdateOpHash/Equal — order-sensitive, as update
/// batches are).
struct SuccKey {
  std::string agent;
  std::vector<UpdateOp> actions;
};

struct SuccKeyHash {
  size_t operator()(const SuccKey& k) const {
    size_t h = std::hash<std::string>{}(k.agent);
    for (const UpdateOp& op : k.actions) HashCombine(h, rel::UpdateOpHash(op));
    return h;
  }
};

struct SuccKeyEq {
  bool operator()(const SuccKey& a, const SuccKey& b) const {
    if (a.agent != b.agent || a.actions.size() != b.actions.size()) {
      return false;
    }
    for (size_t i = 0; i < a.actions.size(); ++i) {
      if (!rel::UpdateOpEqual(a.actions[i], b.actions[i])) return false;
    }
    return true;
  }
};

}  // namespace

struct Game::Rep {
  mutable std::mutex mu;
  /// unique_ptr for pointer stability across push_back (AddAgent hands out
  /// raw pointers that must survive later additions).
  std::vector<std::unique_ptr<Agent>> agents;
  std::unordered_map<SuccKey, std::shared_ptr<Successor>, SuccKeyHash,
                     SuccKeyEq>
      successors;
  uint64_t steps = 0;
  uint64_t speculations = 0;
  uint64_t successor_hits = 0;
  uint64_t successor_misses = 0;
  /// Speculation work only — agent-level applies are aggregated from the
  /// agents themselves in Stats().
  uint64_t forks = 0;
  uint64_t applies = 0;

  Agent* FindLocked(std::string_view name) {
    for (const auto& a : agents) {
      if (a->name() == name) return a.get();
    }
    return nullptr;
  }
};

Game::Game() : rep_(std::make_unique<Rep>()) {}
Game::~Game() = default;

Result<Agent*> Game::AddAgent(std::string name, api::Session session) {
  MAYWSD_ASSIGN_OR_RETURN(Agent made,
                          Agent::Make(std::move(name), std::move(session)));
  std::lock_guard<std::mutex> lock(rep_->mu);
  if (rep_->FindLocked(made.name()) != nullptr) {
    return Status::AlreadyExists("agent '" + made.name() +
                                 "' already exists in this game");
  }
  rep_->agents.push_back(std::make_unique<Agent>(std::move(made)));
  Agent* agent = rep_->agents.back().get();
  agent->game_ = this;
  return agent;
}

Agent* Game::agent(std::string_view name) {
  std::lock_guard<std::mutex> lock(rep_->mu);
  return rep_->FindLocked(name);
}

const Agent* Game::agent(std::string_view name) const {
  std::lock_guard<std::mutex> lock(rep_->mu);
  return rep_->FindLocked(name);
}

std::vector<std::string> Game::AgentNames() const {
  std::lock_guard<std::mutex> lock(rep_->mu);
  std::vector<std::string> names;
  names.reserve(rep_->agents.size());
  for (const auto& a : rep_->agents) names.push_back(a->name());
  return names;
}

Status Game::Step(std::span<const rel::UpdateOp> actions) {
  std::lock_guard<std::mutex> lock(rep_->mu);
  for (const auto& a : rep_->agents) {
    MAYWSD_RETURN_IF_ERROR(a->know_->Apply(actions));
  }
  ++rep_->steps;
  // The real state advanced: every cached successor is now the expansion
  // of a stale belief state.
  rep_->successors.clear();
  return Status::Ok();
}

Status Game::Observe(std::string_view agent_name,
                     std::span<const rel::UpdateOp> ops) {
  Agent* ag = agent(agent_name);
  if (ag == nullptr) {
    return Status::NotFound("no agent named '" + std::string(agent_name) +
                            "'");
  }
  return ag->Observe(ops);
}

Status Game::Observe(std::string_view agent_name, const rel::Plan& fact) {
  std::vector<rel::UpdateOp> ops = ObservationOps(fact);
  return Observe(agent_name, std::span<const rel::UpdateOp>(ops));
}

Result<std::shared_ptr<Successor>> Game::Speculate(
    std::string_view agent_name, std::span<const rel::UpdateOp> actions) {
  std::lock_guard<std::mutex> lock(rep_->mu);
  Agent* ag = rep_->FindLocked(agent_name);
  if (ag == nullptr) {
    return Status::NotFound("no agent named '" + std::string(agent_name) +
                            "'");
  }
  ++rep_->speculations;
  SuccKey key{std::string(agent_name),
              std::vector<UpdateOp>(actions.begin(), actions.end())};
  auto it = rep_->successors.find(key);
  if (it != rep_->successors.end()) {
    // Re-pin the memoized fork: no new fork, no re-applied batch.
    ++rep_->successor_hits;
    return it->second;
  }
  ++rep_->successor_misses;
  auto know =
      std::make_unique<internal::KnowledgeState>(ag->know_->session().Fork());
  ++rep_->forks;
  MAYWSD_RETURN_IF_ERROR(know->Init());
  MAYWSD_RETURN_IF_ERROR(know->Apply(actions));
  rep_->applies += actions.size();
  std::shared_ptr<Successor> succ(new Successor(std::move(know)));
  rep_->successors.emplace(std::move(key), succ);
  return succ;
}

Result<bool> Game::CommonlyKnown(std::string_view relation,
                                 std::span<const rel::Value> tuple) {
  // Snapshot the agent list, then query without the game mutex — agents
  // are stable (append-only, unique_ptr) and knowledge queries synchronize
  // per agent.
  std::vector<Agent*> agents;
  {
    std::lock_guard<std::mutex> lock(rep_->mu);
    agents.reserve(rep_->agents.size());
    for (const auto& a : rep_->agents) agents.push_back(a.get());
  }
  for (Agent* a : agents) {
    MAYWSD_ASSIGN_OR_RETURN(bool knows, a->Knows(relation, tuple));
    if (!knows) return false;
  }
  return true;  // vacuously over an agentless game
}

void Game::InvalidateSuccessors(std::string_view agent) {
  std::lock_guard<std::mutex> lock(rep_->mu);
  for (auto it = rep_->successors.begin(); it != rep_->successors.end();) {
    if (it->first.agent == agent) {
      it = rep_->successors.erase(it);
    } else {
      ++it;
    }
  }
}

BeliefStats Game::Stats() const {
  std::lock_guard<std::mutex> lock(rep_->mu);
  BeliefStats s;
  s.steps = rep_->steps;
  s.speculations = rep_->speculations;
  s.successor_hits = rep_->successor_hits;
  s.successor_misses = rep_->successor_misses;
  s.forks = rep_->forks;
  s.applies = rep_->applies;
  for (const auto& a : rep_->agents) {
    BeliefStats as = a->Stats();
    s.observes += as.observes;
    s.applies += as.applies;
    s.knowledge_queries += as.knowledge_queries;
    s.knowledge_cache_hits += as.knowledge_cache_hits;
    s.knowledge_cache_misses += as.knowledge_cache_misses;
    s.answer_cache_hits += as.answer_cache_hits;
    s.answer_cache_misses += as.answer_cache_misses;
  }
  return s;
}

}  // namespace maywsd::belief
