// Belief tracking over world-set sessions.
//
// The paper's pitch — "what is possible / certain given what I've seen" at
// 10^10^6-world scale — becomes an agent model here: each belief::Agent
// owns a world set over shared game state in an api::Session (any
// backend), every move or observation is a guarded rel::UpdateOp batch,
// and the knowledge surface (Knows / ConsidersPossible / Believes /
// CommonlyKnown) is answered through the Session's memoized Section 6
// answer cache.
//
// Epistemics with update semantics only. A world-set update never removes
// a world (its one-world reference semantics runs in every world
// independently), so Bayesian conditioning is encoded as state: each agent
// session carries an alive-marker relation (kAliveRelation, one certain
// row) and observing a fact deletes the marker exactly in the worlds where
// the fact's plan evaluates empty (ObservationOps). Eliminated worlds stay
// represented but marked dead, and every knowledge query is asked relative
// to the alive worlds:
//
//   ConsidersPossible(R, t)  t ∈ R in some alive world
//   Knows(R, t)              t ∈ R in every alive world (exact — decided
//                            by possible() on a derived witness relation,
//                            no float thresholds)
//   Confidence(R, t)         P(t ∈ R | alive) = conf(live R) / conf(alive)
//   Believes(R, t, τ)        Confidence(R, t) ≥ τ
//
// The derived witness relations are materialized once per (query, input
// versions) and invalidated by RelationVersion, so repeated questions are
// answered from the Session answer cache (BeliefStats counts both layers).
//
// Speculation. Game::Speculate(agent, actions) expands a successor belief
// state: an O(1) copy-on-write Session::Fork of the agent's world set with
// the action batch applied. Successors are memoized per structurally equal
// action batch (rel::UpdateOpHash/UpdateOpEqual — the GDL-style
// successor-by-action-hash cache), so re-expanding the same move during
// game-tree search re-pins the cached fork: no new fork, no re-applied
// updates (BeliefStats.successor_hits, and the fig_belief CI invariant).
// Game::Step advances the real state and invalidates the cache.
//
// Names starting with "__belief" (the alive/unit markers and derived
// witness relations) are reserved; game relations must not use the
// "__OB"/"__UNIT" attribute names, which the witness plans join on.
//
// Thread safety: Agents and Games are internally synchronized. Knowledge
// queries, Observe, Step and Speculate may race freely; AddAgent is
// setup-time only (not concurrent with anything else).

#ifndef MAYWSD_BELIEF_BELIEF_H_
#define MAYWSD_BELIEF_BELIEF_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/session.h"
#include "common/status.h"
#include "rel/algebra.h"
#include "rel/update.h"

namespace maywsd::belief {

/// The per-agent alive marker: one certain row (0); an observation deletes
/// it in the worlds the observed fact eliminates.
inline constexpr const char* kAliveRelation = "__belief_obs";
inline constexpr const char* kAliveAttr = "__OB";
/// A constant one-row relation the witness plans join against.
inline constexpr const char* kUnitRelation = "__belief_unit";
inline constexpr const char* kUnitAttr = "__UNIT";
/// Prefix of the materialized witness relations (reserved).
inline constexpr const char* kDerivedPrefix = "__belief_k_";

/// The conditioning batch for observing that `fact` holds: one guarded
/// delete that removes the alive marker exactly in the worlds where the
/// fact's answer is empty. Pure UpdateOp semantics — the per-world
/// reference oracle (rel::ApplyUpdate) specifies it like any other update.
/// `fact` must not reference the reserved __belief relations and its
/// output schema must not contain kUnitAttr.
std::vector<rel::UpdateOp> ObservationOps(const rel::Plan& fact);

/// Cumulative counters of an Agent / Game (see Stats()).
struct BeliefStats {
  uint64_t observes = 0;       ///< Observe batches applied
  uint64_t steps = 0;          ///< Game::Step calls
  uint64_t speculations = 0;   ///< Game::Speculate calls
  uint64_t successor_hits = 0;    ///< speculations served from the cache
  uint64_t successor_misses = 0;  ///< speculations that forked + applied
  uint64_t forks = 0;    ///< sessions forked by the belief layer
  uint64_t applies = 0;  ///< update ops applied by the belief layer
  uint64_t knowledge_queries = 0;     ///< knowledge-surface calls
  uint64_t knowledge_cache_hits = 0;  ///< witness relations reused
  uint64_t knowledge_cache_misses = 0;  ///< witness relations materialized
  uint64_t answer_cache_hits = 0;    ///< session answer-cache hits (agents)
  uint64_t answer_cache_misses = 0;  ///< session answer-cache misses
};

namespace internal {
class KnowledgeState;
}  // namespace internal

class Game;

/// One agent: a name plus a world set over the game state. Construct with
/// Make (registers the alive/unit markers when absent) or through
/// Game::AddAgent.
class Agent {
 public:
  /// Wraps `session` as an agent belief state, registering the
  /// kAliveRelation / kUnitRelation markers if the session lacks them.
  static Result<Agent> Make(std::string name, api::Session session);

  Agent(Agent&&) noexcept;
  Agent& operator=(Agent&&) noexcept;
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;
  ~Agent();

  const std::string& name() const { return name_; }
  api::Session& session();
  const api::Session& session() const;

  /// Applies a guarded update batch to this agent's world set (a private
  /// move or hand-written conditioning ops).
  Status Observe(std::span<const rel::UpdateOp> ops);
  /// Conditioning observation: applies ObservationOps(fact).
  Status Observe(const rel::Plan& fact);

  /// t ∈ R in every alive world. Exact (decided structurally via
  /// possible(), not by comparing confidences).
  Result<bool> Knows(std::string_view relation,
                     std::span<const rel::Value> tuple);
  /// t ∈ R in at least one alive world.
  Result<bool> ConsidersPossible(std::string_view relation,
                                 std::span<const rel::Value> tuple);
  /// P(t ∈ R | alive). Inconsistent when the agent's observations
  /// eliminated every world.
  Result<double> Confidence(std::string_view relation,
                            std::span<const rel::Value> tuple);
  /// Confidence(R, t) ≥ threshold.
  Result<bool> Believes(std::string_view relation,
                        std::span<const rel::Value> tuple, double threshold);

  BeliefStats Stats() const;

 private:
  friend class Game;
  Agent(std::string name, std::unique_ptr<internal::KnowledgeState> know);

  std::string name_;
  std::unique_ptr<internal::KnowledgeState> know_;
  Game* game_ = nullptr;  ///< set by Game::AddAgent; successor invalidation
};

/// A memoized successor belief state: a COW fork of an agent's session
/// with one action batch applied. Shared between repeated Speculate calls
/// for the same batch; offers the same knowledge surface as the agent it
/// was expanded from. Must not outlive its Game.
class Successor {
 public:
  ~Successor();
  Successor(const Successor&) = delete;
  Successor& operator=(const Successor&) = delete;

  const api::Session& session() const;

  Result<bool> Knows(std::string_view relation,
                     std::span<const rel::Value> tuple);
  Result<bool> ConsidersPossible(std::string_view relation,
                                 std::span<const rel::Value> tuple);
  Result<double> Confidence(std::string_view relation,
                            std::span<const rel::Value> tuple);
  Result<bool> Believes(std::string_view relation,
                        std::span<const rel::Value> tuple, double threshold);

  /// Counters of this successor's private knowledge state and session
  /// (not aggregated into Game::Stats()).
  BeliefStats Stats() const;

 private:
  friend class Game;
  explicit Successor(std::unique_ptr<internal::KnowledgeState> know);

  std::unique_ptr<internal::KnowledgeState> know_;
};

/// A set of agents over one game: public moves, private observations, and
/// the successor cache for speculative expansion.
class Game {
 public:
  Game();
  ~Game();
  Game(const Game&) = delete;
  Game& operator=(const Game&) = delete;

  /// Adds an agent over `session` (its private world set — typically all
  /// deals consistent with the agent's private information). Setup-time
  /// only. Fails on duplicate names.
  Result<Agent*> AddAgent(std::string name, api::Session session);

  Agent* agent(std::string_view name);
  const Agent* agent(std::string_view name) const;
  std::vector<std::string> AgentNames() const;

  /// Applies a public action batch to every agent's world set and
  /// invalidates the successor cache. For a public announcement that
  /// `fact` holds, pass ObservationOps(fact).
  Status Step(std::span<const rel::UpdateOp> actions);

  /// Private observation: applies `ops` to one agent and invalidates that
  /// agent's cached successors.
  Status Observe(std::string_view agent, std::span<const rel::UpdateOp> ops);
  Status Observe(std::string_view agent, const rel::Plan& fact);

  /// Expands the successor of `agent` under `actions`: an O(1) COW fork
  /// with the batch applied, memoized per structurally equal batch.
  /// Repeated expansion of the same batch returns the cached successor
  /// without forking or re-applying anything.
  Result<std::shared_ptr<Successor>> Speculate(
      std::string_view agent, std::span<const rel::UpdateOp> actions);

  /// Every agent Knows(R, t) — the E-knowledge ("everybody knows")
  /// approximation of common knowledge; see the README for the
  /// fixed-point caveat.
  Result<bool> CommonlyKnown(std::string_view relation,
                             std::span<const rel::Value> tuple);

  /// Game counters plus the aggregated counters of every agent (successor
  /// states report their own via Successor::Stats()).
  BeliefStats Stats() const;

 private:
  friend class Agent;
  struct Rep;
  void InvalidateSuccessors(std::string_view agent);

  std::unique_ptr<Rep> rep_;
};

}  // namespace maywsd::belief

#endif  // MAYWSD_BELIEF_BELIEF_H_
