// Copy-on-write value holder for O(1) session forks.
//
// Cow<T> is a handle to a shared, immutable-unless-unique T. Copying a
// handle is O(1) (one relaxed atomic increment); reading through get()
// never copies; Mutable() returns a writable T&, privatizing (deep-copying
// the payload) first iff the node is shared. This is the primitive behind
// per-relation store sharing between a Session and its Snapshot()/Fork()
// clones: pinning shares handles, the first write on either side breaks
// sharing for that payload only.
//
// Memory-order discipline (the PR 8 TSan lesson, designed in):
//  - copy:    fetch_add(1, relaxed) — publishing the handle itself is the
//             caller's job (here: the session state lock).
//  - release: fetch_sub(1, acq_rel); the thread that drops the count to
//             zero deletes. The acq_rel RMW chain means the deleter
//             observes every write made by earlier owners.
//  - Mutable: shares.load(acquire) == 1 is a genuine synchronization
//             point: if it reads 1, it read the value written by the last
//             releasing fetch_sub and synchronizes-with it, so mutating in
//             place cannot race a concurrent reader. (Contrast
//             shared_ptr::use_count(), a relaxed load that promises
//             nothing.) A count that concurrently *grows* is impossible:
//             new shares are only minted from an existing handle, and
//             handles are externally synchronized — the session state lock
//             serializes Fork()/Snapshot() against mutators.
//
// Retired-generation keepalive: privatization does not free the previously
// shared node even when this handle turns out to hold the last reference —
// the old node parks in retired_ until the *next* privatization (or Reset,
// or handle destruction). Mutator code is therefore free to hold
// `const T&` references obtained before the first write of an epoch across
// that write: the referenced payload stays alive for the whole epoch.
// Cost: at most one extra generation per handle, transient.

#ifndef MAYWSD_COMMON_COW_H_
#define MAYWSD_COMMON_COW_H_

#include <atomic>
#include <cstdint>
#include <utility>

namespace maywsd {

template <typename T>
class Cow {
 public:
  /// An empty handle; get() yields a default-constructed T, the first
  /// Mutable() materializes one.
  Cow() = default;

  explicit Cow(T value) : node_(new Node(std::move(value))) {}

  Cow(const Cow& o) : node_(o.Acquire()) {}
  Cow(Cow&& o) noexcept : node_(o.node_), retired_(o.retired_) {
    o.node_ = nullptr;
    o.retired_ = nullptr;
  }
  Cow& operator=(const Cow& o) {
    if (this == &o) return *this;
    Node* acquired = o.Acquire();
    DropRetired();
    Release(node_);
    node_ = acquired;
    return *this;
  }
  Cow& operator=(Cow&& o) noexcept {
    if (this == &o) return *this;
    DropRetired();
    Release(node_);
    node_ = o.node_;
    retired_ = o.retired_;
    o.node_ = nullptr;
    o.retired_ = nullptr;
    return *this;
  }
  ~Cow() {
    DropRetired();
    Release(node_);
  }

  /// Read access; never copies. Valid until this handle is destroyed or
  /// two privatizing operations happen (see keepalive note above).
  const T& get() const { return node_ != nullptr ? node_->value : Empty(); }

  /// Write access; privatizes first iff the payload is shared. References
  /// into the *previous* payload stay valid until the next privatization.
  T& Mutable() {
    if (node_ == nullptr) {
      node_ = new Node(T{});
    } else if (node_->shares.load(std::memory_order_acquire) != 1) {
      Retire(std::exchange(node_, new Node(node_->value)));
    }
    return node_->value;
  }

  /// Installs `value` as a fresh private payload without copying the old
  /// one first — what Clear()/SortDedup()-style full overwrites want. The
  /// old payload is retired, not freed, same keepalive as Mutable().
  void Reset(T value) {
    Retire(std::exchange(node_, new Node(std::move(value))));
  }

  /// True iff both handles share the same payload node (O(1) identity).
  bool SharesWith(const Cow& o) const {
    return node_ != nullptr && node_ == o.node_;
  }

 private:
  struct Node {
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<uint32_t> shares{1};
    T value;
  };

  static const T& Empty() {
    static const T empty{};
    return empty;
  }

  Node* Acquire() const {
    if (node_ != nullptr) node_->shares.fetch_add(1, std::memory_order_relaxed);
    return node_;
  }
  static void Release(Node* n) {
    if (n != nullptr && n->shares.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete n;
    }
  }
  void Retire(Node* old) {
    DropRetired();
    retired_ = old;  // keeps its share; freed on the next Retire/destruction
  }
  void DropRetired() {
    Release(retired_);
    retired_ = nullptr;
  }

  Node* node_ = nullptr;
  Node* retired_ = nullptr;
};

}  // namespace maywsd

#endif  // MAYWSD_COMMON_COW_H_
