#include "common/interner.h"

#include <cassert>

namespace maywsd {

StringInterner& StringInterner::Global() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

StringInterner::StringInterner() {
  // Symbol 0 is reserved for the empty string so that a default-constructed
  // symbol is always valid.
  strings_.emplace_back("");
  index_.emplace(strings_.back(), 0);
}

Symbol StringInterner::Intern(std::string_view s) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  strings_.emplace_back(s);
  Symbol sym = static_cast<Symbol>(strings_.size() - 1);
  index_.emplace(strings_.back(), sym);
  return sym;
}

std::string_view StringInterner::Lookup(Symbol sym) const {
  std::lock_guard<std::mutex> lock(mu_);
  assert(sym < strings_.size());
  return strings_[sym];
}

size_t StringInterner::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return strings_.size();
}

}  // namespace maywsd
