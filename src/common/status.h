// Status and Result<T>: RocksDB-style error propagation without exceptions.
//
// Core library code returns Status (or Result<T> when a value is produced).
// Callers either handle the error or propagate it with MAYWSD_RETURN_IF_ERROR.

#ifndef MAYWSD_COMMON_STATUS_H_
#define MAYWSD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace maywsd {

/// Machine-readable error category, modeled on rocksdb::Status codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something structurally wrong
  kNotFound,          ///< named relation/attribute/component does not exist
  kAlreadyExists,     ///< name collision on creation
  kInconsistent,      ///< world-set has no world satisfying the constraints
  kUnsupported,       ///< operation valid but not implemented for this rep
  kResourceExhausted, ///< enumeration/composition blow-up guard tripped
  kInternal,          ///< invariant violation; indicates a bug
};

/// Lightweight status object; cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Inconsistent(std::string msg) {
    return Status(StatusCode::kInconsistent, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: no such attribute".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Result<T> is a Status plus a value on success (a minimal StatusOr).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return some_relation;`.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  /// Implicit from error status. Must not be OK (an OK Result needs a value).
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result requires a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace maywsd

/// Propagates a non-OK Status from the current function.
#define MAYWSD_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::maywsd::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Evaluates a Result expression; on error returns the status, otherwise
/// moves the value into `lhs`. (`lhs` may be a declaration.)
#define MAYWSD_ASSIGN_OR_RETURN(lhs, expr)      \
  MAYWSD_ASSIGN_OR_RETURN_IMPL(                 \
      MAYWSD_STATUS_CONCAT(_result_, __LINE__), lhs, expr)

#define MAYWSD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define MAYWSD_STATUS_CONCAT_INNER(a, b) a##b
#define MAYWSD_STATUS_CONCAT(a, b) MAYWSD_STATUS_CONCAT_INNER(a, b)

#endif  // MAYWSD_COMMON_STATUS_H_
