// Process-wide string interning.
//
// Values, attribute names and relation names are stored as 32-bit symbols
// pointing into a global pool. This keeps Value at 16 bytes (which matters:
// the census benches materialize tens of millions of fields) and makes
// string equality O(1). Interned strings live for the process lifetime,
// mirroring how a DBMS catalog pins dictionary-encoded strings.

#ifndef MAYWSD_COMMON_INTERNER_H_
#define MAYWSD_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace maywsd {

/// Symbol handle returned by the interner; 0 is the empty string.
using Symbol = uint32_t;

/// Thread-safe append-only string pool.
class StringInterner {
 public:
  /// Returns the process-wide interner.
  static StringInterner& Global();

  /// Interns `s`, returning a stable symbol. Idempotent.
  Symbol Intern(std::string_view s);

  /// Resolves a symbol; the view is valid for the process lifetime.
  std::string_view Lookup(Symbol sym) const;

  /// Number of distinct strings interned so far.
  size_t size() const;

 private:
  StringInterner();

  mutable std::mutex mu_;
  // deque: stable addresses under growth, so Lookup() views never dangle.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, Symbol> index_;
};

/// Convenience wrappers around the global interner.
inline Symbol InternString(std::string_view s) {
  return StringInterner::Global().Intern(s);
}
inline std::string_view SymbolName(Symbol sym) {
  return StringInterner::Global().Lookup(sym);
}

}  // namespace maywsd

#endif  // MAYWSD_COMMON_INTERNER_H_
