// Hash combination helpers shared by values, tuples and field identifiers.

#ifndef MAYWSD_COMMON_HASH_H_
#define MAYWSD_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace maywsd {

/// Mixes `v` into the running seed (boost::hash_combine recipe, 64-bit).
inline void HashCombine(size_t& seed, size_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
}

/// Hash of a contiguous range of hashable items.
template <typename It>
size_t HashRange(It begin, It end) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (It it = begin; it != end; ++it) {
    HashCombine(seed, std::hash<typename std::iterator_traits<It>::value_type>{}(*it));
  }
  return seed;
}

}  // namespace maywsd

#endif  // MAYWSD_COMMON_HASH_H_
