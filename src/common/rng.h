// Deterministic pseudo-random number generation for data generators and
// property tests. All workloads are seeded so every experiment is exactly
// reproducible run-to-run (a requirement for regenerating the paper tables).

#ifndef MAYWSD_COMMON_RNG_H_
#define MAYWSD_COMMON_RNG_H_

#include <cassert>
#include <cstdint>

namespace maywsd {

/// xorshift128+ generator: fast, decent quality, fully deterministic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding to avoid weak all-zero-ish states.
    uint64_t z = seed;
    auto split_mix = [&z]() {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    };
    s0_ = split_mix();
    s1_ = split_mix();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace maywsd

#endif  // MAYWSD_COMMON_RNG_H_
