// Session: the one front door of the query engine.
//
// The paper's central claim is that one relational algebra (Figure 9) runs
// over interchangeable representations of incomplete information — WSDs
// (Section 4), WSDTs/UWSDTs (Section 5), the C/F/W uniform relational
// encoding the PostgreSQL prototype stored (Section 3, Figure 8), and the
// columnar U-relations of the authors' follow-up work (core/urel.h). A
// Session makes that claim an API: open it over any representation with
// Session::Open (backends are data — a BackendKind value — not method
// names), register base relations, run rel::Plans through the shared
// engine driver (scratch lifecycle managed), and ask the Section 6
// answer-side questions — PossibleTuples, CertainTuples, TupleConfidence —
// through one interface regardless of which backend holds the data.
//
// Representation-level tooling (chase, normalization, statistics, or-set
// noise) stays below the facade; wsd()/wsdt()/uniform()/urel() expose the
// owned representation for it. The historical per-representation entry
// points (WsdEvaluate, WsdtEvaluate*, confidence.h, wsdt_confidence.h)
// remain as thin compatibility shims over the same engine code.
//
// Concurrency: a Session is internally synchronized. Mutators (Register,
// Drop, Run*, Apply*, the mutable representation accessors) serialize
// behind a writer lock; the const catalog and answer surface runs under a
// shared reader lock and counts every read that had to wait behind an
// in-flight writer (SessionStats::reader_blocked_waits). Readers that must
// never wait take a Snapshot() — an immutable read view pinned to the
// per-relation version vector at creation time. Pinning is O(relations),
// not O(data): every backend store shares its bulk state copy-on-write
// (component payloads and pools, template and uniform rows, urel columns
// and symbols), and the first write on either side privatizes only what it
// touches. Fork() hands out the same cheap clone as a fully writable
// independent Session.

#ifndef MAYWSD_API_SESSION_H_
#define MAYWSD_API_SESSION_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/engine/world_set_ops.h"
#include "core/urel.h"
#include "core/wsd.h"
#include "core/wsdt.h"
#include "rel/algebra.h"
#include "rel/database.h"
#include "rel/relation.h"
#include "rel/update.h"

namespace maywsd::api {

/// The representation a Session runs over.
enum class BackendKind { kWsd, kWsdt, kUniform, kUrel };

/// "wsd" / "wsdt" / "uniform" / "urel".
std::string_view BackendKindName(BackendKind kind);

/// Parses a backend tag ("wsd", "wsdt", "uniform", "urel" — the
/// BackendKindName spellings) for --backend= style flags; InvalidArgument
/// on anything else, listing the accepted spellings.
Result<BackendKind> ParseBackendKind(std::string_view name);

/// Execution policy of a Session.
struct SessionOptions {
  /// Worker threads for the Run and ApplyAll fan-outs: 1 evaluates
  /// sequentially (the default), N > 1 shards the plan's partitionable
  /// input relation — or an unconditional delete/modify's target relation —
  /// across at most N workers, 0 uses the hardware concurrency. Plans,
  /// updates or backends that cannot shard fall back to sequential
  /// execution automatically.
  int threads = 1;
  /// Caching: common subplans across a RunAll workload, and the memoized
  /// answer surface (PossibleTuples/CertainTuples/TupleConfidence per
  /// relation version, invalidated by Apply).
  bool cache = true;
};

/// Cumulative execution counters of a Session (see Stats()).
struct SessionStats {
  uint64_t runs = 0;           ///< Run/RunOptimized calls
  uint64_t sharded_runs = 0;   ///< runs that fanned out across workers
  uint64_t shards_executed = 0;  ///< total shards across sharded runs
  uint64_t fallback_runs = 0;  ///< runs that fell back to a single shard
  uint64_t batches = 0;        ///< RunAll calls
  uint64_t cache_hits = 0;     ///< RunAll subplan-cache hits
  uint64_t cache_misses = 0;   ///< RunAll subplan-cache misses
  uint64_t applies = 0;          ///< Apply/ApplyAll update operations
  uint64_t sharded_applies = 0;  ///< updates that fanned out across workers
  uint64_t apply_shards_executed = 0;  ///< total shards across sharded applies
  uint64_t snapshots = 0;        ///< Snapshot() views taken
  uint64_t forks = 0;            ///< Fork() clones taken
  /// Reads (answer surface, Stats, Snapshot) that had to wait behind an
  /// in-flight writer holding the session's state lock. Always 0 on a
  /// Snapshot's own stats: no writer ever touches a snapshot's private
  /// copy.
  uint64_t reader_blocked_waits = 0;
  uint64_t answer_cache_hits = 0;    ///< memoized answer-surface hits
  uint64_t answer_cache_misses = 0;  ///< memoized answer-surface misses
  /// ApplyAll guard sharing: world conditions actually evaluated + copied
  /// versus updates served by a batch-cached guard (structurally equal
  /// conditions share one materialization until an applied update mutates
  /// a relation the condition reads).
  uint64_t guard_materializations = 0;
  uint64_t guard_shares = 0;
  /// Import → template semantics → export round trips the backend paid for
  /// operators outside its native fragment (uniform and urel backends;
  /// always 0 for wsd/wsdt).
  uint64_t round_trips = 0;
  /// Interned component-store counters, snapshotted from the process-wide
  /// store at Stats() time (the store is shared by every session in the
  /// process — benches diff two snapshots around a workload).
  uint64_t store_compose_nodes = 0;  ///< lazy compose DAG nodes recorded
  uint64_t store_forced_evals = 0;   ///< derived nodes actually materialized
  uint64_t store_live_cells = 0;     ///< value cells currently materialized
  uint64_t store_peak_cells = 0;     ///< high-water mark of live cells
  uint64_t store_dedup_hits = 0;     ///< certain-singleton intern hits
  uint64_t store_cow_breaks = 0;     ///< shared payloads privatized
};

class Snapshot;

/// A query session over one world-set representation.
class Session {
 public:
  // -- Opening a session ----------------------------------------------------
  //
  // One factory, backends as data: Open(kind) starts empty, the
  // adopt-existing overloads wrap a representation you already built, and
  // Open(kind, wsdt) converts a WSDT into any backend's encoding. Adding a
  // backend adds a BackendKind value, not a factory name.

  /// Over an empty store of the given kind.
  static Session Open(BackendKind kind, SessionOptions options = {});

  /// Over an existing Section 4 world-set decomposition.
  static Session Open(core::Wsd wsd, SessionOptions options = {});

  /// Over an existing Section 5 template decomposition.
  static Session Open(core::Wsdt wsdt, SessionOptions options = {});

  /// Over an existing uniform store (templates with a leading __TID column
  /// plus the C, F, W system relations).
  static Session Open(rel::Database db, SessionOptions options = {});

  /// Over an existing columnar U-relations store.
  static Session Open(core::Urel urel, SessionOptions options = {});

  /// Over the `kind` encoding of an existing WSDT (kWsd via ToWsd, kWsdt
  /// by copy, kUniform via ExportUniform, kUrel via ExportUrel).
  static Result<Session> Open(BackendKind kind, const core::Wsdt& wsdt,
                              SessionOptions options = {});

  ~Session();
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  BackendKind kind() const;
  /// Backend tag as reported by the engine ("wsd", "wsdt", "uniform",
  /// "urel").
  std::string_view BackendName() const;

  // -- Execution policy ------------------------------------------------------

  const SessionOptions& options() const;
  void set_options(const SessionOptions& options);

  /// Cumulative execution counters (runs, shard fan-outs, cache hits,
  /// representation round trips). Returns a snapshot by value — safe
  /// against concurrent const getters updating the answer-cache counters.
  SessionStats Stats() const;

  // -- Catalog --------------------------------------------------------------

  bool HasRelation(std::string_view name) const;
  std::vector<std::string> RelationNames() const;
  Result<rel::Schema> RelationSchema(std::string_view name) const;

  /// Registers a fully certain base relation under its name (equal in
  /// every world). Uncertainty is introduced below the facade — or-sets,
  /// noise injection, chase — against the owned representation.
  Status Register(const rel::Relation& relation);

  Status Drop(std::string_view name);

  // -- Query evaluation -----------------------------------------------------

  /// Evaluates `plan` through the shared engine driver, adding the result
  /// under `out`. Scratch relations are dropped on every path. With
  /// options().threads > 1, plans whose partitionable input relation
  /// splits into independent tuple groups fan out across a worker pool;
  /// the result relation's world-set is identical to the sequential one
  /// (its correlation to the input relations is weakened — shard results
  /// attach to slice copies of the input components).
  Status Run(const rel::Plan& plan, const std::string& out);

  /// Runs the Section 5 logical optimizations against the session catalog
  /// first, then evaluates the rewritten plan (same fan-out policy).
  Status RunOptimized(const rel::Plan& plan, const std::string& out);

  /// Evaluates a workload of plans in order, `plans[i]` materializing
  /// under `outs[i]`, sharing one scratch lifecycle; common subplans
  /// across the workload are evaluated once (options().cache). Later
  /// plans may scan earlier outputs. On error, outputs already
  /// materialized remain.
  Status RunAll(std::span<const rel::Plan> plans,
                std::span<const std::string> outs);

  // -- Updates --------------------------------------------------------------

  /// Applies one update — insert, delete or conditional modify, optionally
  /// world-conditional — through the engine's update driver. Mutates the
  /// owned representation in place, bumps the target relation's version
  /// and invalidates its memoized answers (and, on the next RunAll, any
  /// subplan cache is rebuilt — it never outlives one batch).
  Status Apply(const rel::UpdateOp& op);

  /// Applies a workload of updates in order; stops at the first error
  /// (already-applied updates remain — updates are not transactional).
  /// With options().threads > 1, runs of consecutive unconditional
  /// deletes/modifies on one relation fan out over shard slices of that
  /// relation (sliced once per run, so the copy amortizes over the run's
  /// length) and merge back in shard order as workers finish — the same
  /// slicing Run uses; inserts and world-conditional updates stay
  /// sequential.
  Status ApplyAll(std::span<const rel::UpdateOp> ops);

  /// Monotonic per-relation version: bumped by Register, Apply, Drop and
  /// by Run/RunAll materializing the relation. Keys the answer cache.
  uint64_t RelationVersion(std::string_view name) const;

  // -- Snapshot reads (MVCC) ------------------------------------------------

  /// Pins an immutable read view: an O(relations) copy-on-write clone of
  /// the representation (component pools, template and uniform rows, urel
  /// columns and symbols are all shared handles; nothing that scales with
  /// the data is copied) plus the per-relation version vector at creation
  /// time. Reads on the returned Snapshot never block behind and never
  /// observe a later Apply/Run on this session. Taking the snapshot
  /// itself briefly holds the reader lock (counted in
  /// reader_blocked_waits when it had to wait).
  api::Snapshot Snapshot() const;

  /// Clones this session into an independent, fully writable Session — the
  /// same O(relations) copy-on-write pin Snapshot() takes (options and the
  /// per-relation versions carry over; stats and caches start fresh).
  /// Writes on either side privatize only the relation they touch; neither
  /// side ever observes the other's mutations. Teardown needs no
  /// coordination with the parent: the store's refcount discipline
  /// (acquire/release intrusive counts) makes cross-session release safe
  /// from any thread.
  Session Fork() const;

  // -- Answers (Section 6) --------------------------------------------------
  //
  // With options().cache, answers are memoized per (relation, version) and
  // served from the cache until an Apply/Run invalidates the relation;
  // Stats() exposes the hit/miss counters.

  /// possible(R): tuples appearing in at least one world.
  Result<rel::Relation> PossibleTuples(std::string_view relation) const;

  /// possibleᵖ(R): possible tuples with a trailing "conf" column.
  Result<rel::Relation> PossibleTuplesWithConfidence(
      std::string_view relation) const;

  /// certain(R): tuples occurring in every world.
  Result<rel::Relation> CertainTuples(std::string_view relation) const;

  /// conf(t): probability that `tuple` ∈ R in a random world.
  Result<double> TupleConfidence(std::string_view relation,
                                 std::span<const rel::Value> tuple) const;

  /// certain(t): true iff conf(t) = 1.
  Result<bool> TupleCertain(std::string_view relation,
                            std::span<const rel::Value> tuple) const;

  // -- Representation access ------------------------------------------------
  //
  // Taking MUTABLE access through any accessor below drops the whole
  // memoized answer surface (the cache cannot see what you change); the
  // const overloads leave it intact.

  /// The engine backend (for code driving WorldSetOps directly).
  core::engine::WorldSetOps& ops();
  const core::engine::WorldSetOps& ops() const;

  /// The owned representation; non-null only for the matching kind().
  core::Wsd* wsd();
  const core::Wsd* wsd() const;
  core::Wsdt* wsdt();
  const core::Wsdt* wsdt() const;
  rel::Database* uniform();
  const rel::Database* uniform() const;
  core::Urel* urel();
  const core::Urel* urel() const;

 private:
  struct Rep;
  friend class Snapshot;
  explicit Session(std::shared_ptr<Rep> rep);

  /// Clone backing Snapshot()/Fork(): O(relations) COW copy of the
  /// representation plus the version vector, taken under the reader lock.
  Session CowClone(SessionOptions clone_options,
                   std::unordered_map<std::string, uint64_t>* versions) const;

  std::shared_ptr<Rep> rep_;
};

/// An immutable MVCC read view of a Session (see Session::Snapshot()).
///
/// A Snapshot owns a private copy of the parent's representation and the
/// version vector that was current when it was taken. Its answer surface
/// mirrors the Session's, but no writer can ever touch the private copy:
/// reads here never wait (the snapshot's own
/// SessionStats::reader_blocked_waits is 0 by construction) and never see
/// a later update. Run materializes only inside the snapshot — the parent
/// session never observes snapshot-local relations.
///
/// The private copy *shares* copy-on-write state with the parent (the
/// component pool, template and uniform rows, urel columns and symbols);
/// writers privatize before mutating, so sharing is never observable.
/// Teardown is lock-free and independent of the parent — every shared
/// handle releases through acquire/release refcounts whose uniqueness
/// probes are genuine synchronization points, so a snapshot may outlive
/// its session and die on any thread.
class Snapshot {
 public:
  ~Snapshot();
  Snapshot(Snapshot&&) noexcept = default;
  Snapshot& operator=(Snapshot&&) noexcept;

  BackendKind kind() const;
  std::string_view BackendName() const;

  // -- Catalog (of the pinned view) -----------------------------------------

  bool HasRelation(std::string_view name) const;
  std::vector<std::string> RelationNames() const;
  Result<rel::Schema> RelationSchema(std::string_view name) const;

  /// The pinned version of `name` — what Session::RelationVersion returned
  /// when the snapshot was taken. Relations materialized inside the
  /// snapshot by Run report the snapshot-local version instead.
  uint64_t RelationVersion(std::string_view name) const;

  /// The whole pinned version vector.
  const std::unordered_map<std::string, uint64_t>& Versions() const;

  // -- Answers --------------------------------------------------------------

  Result<rel::Relation> PossibleTuples(std::string_view relation) const;
  Result<rel::Relation> PossibleTuplesWithConfidence(
      std::string_view relation) const;
  Result<rel::Relation> CertainTuples(std::string_view relation) const;
  Result<double> TupleConfidence(std::string_view relation,
                                 std::span<const rel::Value> tuple) const;
  Result<bool> TupleCertain(std::string_view relation,
                            std::span<const rel::Value> tuple) const;

  /// Evaluates `plan` against the pinned view, materializing `out` inside
  /// the snapshot only. `out` must be a fresh name: a snapshot never
  /// replaces a pinned relation.
  Status Run(const rel::Plan& plan, const std::string& out);

  /// Counters of the snapshot's private session; reader_blocked_waits is
  /// structurally 0.
  SessionStats Stats() const;

 private:
  friend class Session;
  Snapshot(Session session,
           std::unordered_map<std::string, uint64_t> versions);

  Session session_;
  std::unordered_map<std::string, uint64_t> versions_;
};

}  // namespace maywsd::api

#endif  // MAYWSD_API_SESSION_H_
