#include "api/session.h"

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <variant>

#include "core/engine/parallel.h"
#include "core/engine/plan_driver.h"
#include "core/engine/uniform_backend.h"
#include "core/engine/update_plan.h"
#include "core/engine/urel_backend.h"
#include "core/engine/wsd_backend.h"
#include "core/engine/wsdt_backend.h"
#include "core/component_store.h"
#include "core/uniform.h"

namespace maywsd::api {

std::string_view BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kWsd:
      return "wsd";
    case BackendKind::kWsdt:
      return "wsdt";
    case BackendKind::kUniform:
      return "uniform";
    case BackendKind::kUrel:
      return "urel";
  }
  return "?";
}

Result<BackendKind> ParseBackendKind(std::string_view name) {
  for (BackendKind kind : {BackendKind::kWsd, BackendKind::kWsdt,
                           BackendKind::kUniform, BackendKind::kUrel}) {
    if (name == BackendKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown backend \"" + std::string(name) +
                                 "\" (expected wsd, wsdt, uniform or urel)");
}

/// Lexicographic order over tuples via Value::Compare (a kind-ranked total
/// order), so the per-tuple cache keys distinguish any two distinct tuples
/// — including doubles that only differ past printing precision.
struct TupleLess {
  bool operator()(const std::vector<rel::Value>& a,
                  const std::vector<rel::Value>& b) const {
    if (a.size() != b.size()) return a.size() < b.size();
    return rel::TupleRef(a.data(), a.size())
               .Compare(rel::TupleRef(b.data(), b.size())) < 0;
  }
};

/// Memoized answers of one relation at one version.
struct AnswerEntry {
  std::optional<rel::Relation> possible;
  std::optional<rel::Relation> possible_conf;
  std::optional<rel::Relation> certain;
  std::map<std::vector<rel::Value>, double, TupleLess> confidence;
  std::map<std::vector<rel::Value>, bool, TupleLess> tuple_certain;
};

/// The owned representation plus its engine adapter. The variant lives in
/// a heap-allocated Rep so the adapter's pointer into it stays stable
/// across Session moves.
struct Session::Rep {
  BackendKind kind;
  std::variant<core::Wsd, core::Wsdt, rel::Database, core::Urel> data;
  std::unique_ptr<core::engine::WorldSetOps> backend;
  SessionOptions options;
  // Two-level locking, always state_mu before cache_mu:
  //  - state_mu serializes the representation itself. Mutators (Register,
  //    Drop, Run*, Apply*, mutable accessors) hold it exclusively; the
  //    const catalog/answer surface holds it shared, so reads run
  //    concurrently with each other and block only behind writers.
  //  - cache_mu guards the memoized answers, versions and counters — held
  //    only for map probes/publishes, never across backend work.
  mutable std::shared_mutex state_mu;
  mutable std::mutex cache_mu;
  mutable SessionStats stats;
  /// Reads that found a writer in flight (see
  /// SessionStats::reader_blocked_waits). Atomic: bumped before the
  /// blocking lock acquisition, so no lock protects it.
  mutable std::atomic<uint64_t> blocked_reads{0};
  std::unordered_map<std::string, uint64_t> versions;
  mutable std::unordered_map<std::string, AnswerEntry> answers;

  /// Shared (reader) lock on the representation, counting the acquisitions
  /// that had to wait behind an exclusive holder.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    std::shared_lock<std::shared_mutex> lock(state_mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      blocked_reads.fetch_add(1, std::memory_order_relaxed);
      lock.lock();
    }
    return lock;
  }

  /// Bumps a relation's version and forgets its memoized answers — called
  /// on every state change touching `name`.
  void Invalidate(const std::string& name) {
    std::lock_guard<std::mutex> lock(cache_mu);
    ++versions[name];
    answers.erase(name);
  }

  /// Forgets every memoized answer and bumps every known relation's
  /// version: called when a caller takes mutable access to the backend or
  /// the owned representation, which can change any relation behind the
  /// cache's back.
  void InvalidateAll() {
    std::vector<std::string> names = backend->RelationNames();
    std::lock_guard<std::mutex> lock(cache_mu);
    for (const std::string& name : names) ++versions[name];
    answers.clear();
  }
};

namespace {

/// Resolves the option value to a worker count (0 = hardware concurrency).
size_t ResolveThreads(int threads) {
  if (threads > 1) return static_cast<size_t>(threads);
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return 1;
}

}  // namespace

Session::Session(std::shared_ptr<Rep> rep) : rep_(std::move(rep)) {}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

Session Session::Open(core::Wsd wsd, SessionOptions options) {
  auto rep = std::make_unique<Rep>();
  rep->kind = BackendKind::kWsd;
  rep->data = std::move(wsd);
  rep->backend = std::make_unique<core::engine::WsdBackend>(
      std::get<core::Wsd>(rep->data));
  rep->options = options;
  return Session(std::move(rep));
}

Session Session::Open(core::Wsdt wsdt, SessionOptions options) {
  auto rep = std::make_unique<Rep>();
  rep->kind = BackendKind::kWsdt;
  rep->data = std::move(wsdt);
  rep->backend = std::make_unique<core::engine::WsdtBackend>(
      std::get<core::Wsdt>(rep->data));
  rep->options = options;
  return Session(std::move(rep));
}

Session Session::Open(rel::Database db, SessionOptions options) {
  auto rep = std::make_unique<Rep>();
  rep->kind = BackendKind::kUniform;
  rep->data = std::move(db);
  rep->backend = std::make_unique<core::engine::UniformBackend>(
      std::get<rel::Database>(rep->data));
  rep->options = options;
  return Session(std::move(rep));
}

Session Session::Open(core::Urel urel, SessionOptions options) {
  auto rep = std::make_unique<Rep>();
  rep->kind = BackendKind::kUrel;
  rep->data = std::move(urel);
  rep->backend = std::make_unique<core::engine::UrelBackend>(
      std::get<core::Urel>(rep->data));
  rep->options = options;
  return Session(std::move(rep));
}

Session Session::Open(BackendKind kind, SessionOptions options) {
  switch (kind) {
    case BackendKind::kWsd:
      return Open(core::Wsd(), options);
    case BackendKind::kWsdt:
      break;
    case BackendKind::kUniform:
      // The export of an empty WSDT is a store with empty C, F, W.
      return Open(core::ExportUniform(core::Wsdt()).value(), options);
    case BackendKind::kUrel:
      return Open(core::Urel(), options);
  }
  return Open(core::Wsdt(), options);
}

Result<Session> Session::Open(BackendKind kind, const core::Wsdt& wsdt,
                              SessionOptions options) {
  switch (kind) {
    case BackendKind::kWsd: {
      MAYWSD_ASSIGN_OR_RETURN(core::Wsd wsd, wsdt.ToWsd());
      return Open(std::move(wsd), options);
    }
    case BackendKind::kWsdt:
      break;
    case BackendKind::kUniform: {
      MAYWSD_ASSIGN_OR_RETURN(rel::Database db, core::ExportUniform(wsdt));
      return Open(std::move(db), options);
    }
    case BackendKind::kUrel: {
      MAYWSD_ASSIGN_OR_RETURN(core::Urel urel, core::ExportUrel(wsdt));
      return Open(std::move(urel), options);
    }
  }
  return Open(core::Wsdt(wsdt), options);
}

BackendKind Session::kind() const { return rep_->kind; }

std::string_view Session::BackendName() const {
  return rep_->backend->BackendName();
}

bool Session::HasRelation(std::string_view name) const {
  auto read = rep_->ReadLock();
  return rep_->backend->HasRelation(std::string(name));
}

std::vector<std::string> Session::RelationNames() const {
  auto read = rep_->ReadLock();
  return rep_->backend->RelationNames();
}

Result<rel::Schema> Session::RelationSchema(std::string_view name) const {
  auto read = rep_->ReadLock();
  return rep_->backend->RelationSchema(std::string(name));
}

Status Session::Register(const rel::Relation& relation) {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->Invalidate(relation.name());
  return rep_->backend->AddCertainRelation(relation);
}

Status Session::Drop(std::string_view name) {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  std::string key(name);
  rep_->Invalidate(key);
  return rep_->backend->Drop(key);
}

const SessionOptions& Session::options() const { return rep_->options; }
void Session::set_options(const SessionOptions& options) {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->options = options;
}

SessionStats Session::Stats() const {
  auto read = rep_->ReadLock();
  std::lock_guard<std::mutex> lock(rep_->cache_mu);
  SessionStats snapshot = rep_->stats;
  snapshot.reader_blocked_waits =
      rep_->blocked_reads.load(std::memory_order_relaxed);
  snapshot.round_trips = rep_->backend->RoundTrips();
  core::store::StoreStats ss = core::store::GetStoreStats();
  snapshot.store_compose_nodes = ss.compose_nodes;
  snapshot.store_forced_evals = ss.forced_evals;
  snapshot.store_live_cells = ss.live_cells;
  snapshot.store_peak_cells = ss.peak_cells;
  snapshot.store_dedup_hits = ss.dedup_hits;
  snapshot.store_cow_breaks = ss.cow_breaks;
  return snapshot;
}

Status Session::Run(const rel::Plan& plan, const std::string& out) {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->stats.runs++;
  rep_->Invalidate(out);
  core::engine::ParallelStats ps;
  Status st = core::engine::EvaluateParallel(
      *rep_->backend, plan, out, ResolveThreads(rep_->options.threads), &ps);
  if (ps.sharded) {
    rep_->stats.sharded_runs++;
    rep_->stats.shards_executed += ps.shards;
  } else if (ResolveThreads(rep_->options.threads) > 1) {
    rep_->stats.fallback_runs++;
  }
  return st;
}

Status Session::RunOptimized(const rel::Plan& plan, const std::string& out) {
  // Optimize against the catalog under the reader lock, then release it
  // before Run takes the writer lock. A writer slipping in between can
  // only make the rewrite stale, never wrong — the rewritten plan is
  // re-resolved against the catalog when it executes.
  auto optimized = [&]() -> Result<rel::Plan> {
    auto read = rep_->ReadLock();
    return core::engine::OptimizeForBackend(*rep_->backend, plan);
  }();
  if (!optimized.ok()) return optimized.status();
  return Run(optimized.value(), out);
}

Status Session::RunAll(std::span<const rel::Plan> plans,
                       std::span<const std::string> outs) {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->stats.batches++;
  for (const std::string& out : outs) rep_->Invalidate(out);
  core::engine::BatchStats bs;
  Status st = core::engine::EvaluateBatch(*rep_->backend, plans, outs,
                                          rep_->options.cache, &bs);
  rep_->stats.cache_hits += bs.cache_hits;
  rep_->stats.cache_misses += bs.cache_misses;
  return st;
}

Status Session::Apply(const rel::UpdateOp& op) {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->stats.applies++;
  // Invalidate up front: a failed conditional update may still have
  // composed components, and a stale answer is worse than a recompute.
  rep_->Invalidate(op.relation());
  return core::engine::ApplyUpdate(*rep_->backend, op);
}

Status Session::ApplyAll(std::span<const rel::UpdateOp> ops) {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  // Counted and invalidated up front for the same reason Apply invalidates
  // eagerly: a mid-batch failure leaves earlier updates applied, and a
  // stale answer is worse than a recompute.
  rep_->stats.applies += ops.size();
  for (const rel::UpdateOp& op : ops) rep_->Invalidate(op.relation());
  core::engine::UpdateBatchStats ubs;
  Status st = core::engine::ApplyUpdates(
      *rep_->backend, ops, ResolveThreads(rep_->options.threads), &ubs);
  {
    std::lock_guard<std::mutex> lock(rep_->cache_mu);
    rep_->stats.guard_materializations += ubs.guard_materializations;
    rep_->stats.guard_shares += ubs.guard_shares;
    rep_->stats.sharded_applies += ubs.sharded_applies;
    rep_->stats.apply_shards_executed += ubs.apply_shards;
  }
  return st;
}

uint64_t Session::RelationVersion(std::string_view name) const {
  std::lock_guard<std::mutex> lock(rep_->cache_mu);
  auto it = rep_->versions.find(std::string(name));
  return it == rep_->versions.end() ? 0 : it->second;
}

Session Session::CowClone(SessionOptions clone_options,
                          std::unordered_map<std::string, uint64_t>* versions)
    const {
  auto read = rep_->ReadLock();
  // Representation copies are O(relations): every backend shares its bulk
  // state copy-on-write (component pools, template/uniform rows, urel
  // columns and symbols). The reader lock orders the pin against in-flight
  // writers; after that, the store's acquire/release refcounts make the
  // shared state safe without further coordination.
  std::optional<Session> clone;
  switch (rep_->kind) {
    case BackendKind::kWsd:
      clone = Open(core::Wsd(std::get<core::Wsd>(rep_->data)), clone_options);
      break;
    case BackendKind::kWsdt:
      clone = Open(core::Wsdt(std::get<core::Wsdt>(rep_->data)), clone_options);
      break;
    case BackendKind::kUniform:
      clone = Open(rel::Database(std::get<rel::Database>(rep_->data)),
                   clone_options);
      break;
    case BackendKind::kUrel:
      clone = Open(core::Urel(std::get<core::Urel>(rep_->data)), clone_options);
      break;
  }
  std::lock_guard<std::mutex> lock(rep_->cache_mu);
  if (versions != nullptr) *versions = rep_->versions;
  clone->rep_->versions = rep_->versions;
  return std::move(*clone);
}

api::Snapshot Session::Snapshot() const {
  SessionOptions opts = rep_->options;
  // The private copy is read by one caller at a time; its own Run fan-out
  // stays sequential (a snapshot read should not commandeer the pool).
  opts.threads = 1;
  std::unordered_map<std::string, uint64_t> versions;
  Session inner = CowClone(opts, &versions);
  {
    std::lock_guard<std::mutex> lock(rep_->cache_mu);
    rep_->stats.snapshots++;
  }
  return api::Snapshot(std::move(inner), std::move(versions));
}

Session Session::Fork() const {
  Session clone = CowClone(rep_->options, nullptr);
  {
    std::lock_guard<std::mutex> lock(rep_->cache_mu);
    rep_->stats.forks++;
  }
  return clone;
}

namespace {

// One memoization protocol for every cached answer getter: probe under
// cache_mu WITHOUT creating an entry, run the backend computation with the
// lock RELEASED (concurrent read-only use stays parallel; two racing
// misses both compute, first store wins), then re-take the lock to count
// the miss and publish. A failed computation touches neither the counters
// nor the map, so bad relation names cannot pollute either. Entry
// references are never held across the unlock — the map may rehash.

/// Relation-level answers (possible / possible-with-conf / certain).
template <typename Fn>
Result<rel::Relation> MemoizedRelationAnswer(
    std::mutex& mu, SessionStats& stats,
    std::unordered_map<std::string, AnswerEntry>& answers,
    const std::string& relation,
    std::optional<rel::Relation> AnswerEntry::* slot, Fn&& compute) {
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = answers.find(relation);
    if (it != answers.end() && it->second.*slot) {
      stats.answer_cache_hits++;
      return *(it->second.*slot);
    }
  }
  MAYWSD_ASSIGN_OR_RETURN(rel::Relation out, compute());
  std::lock_guard<std::mutex> lock(mu);
  stats.answer_cache_misses++;
  AnswerEntry& entry = answers[relation];
  if (!(entry.*slot)) entry.*slot = std::move(out);
  return *(entry.*slot);
}

/// Per-tuple answers (confidence / certainty).
template <typename V, typename Fn>
Result<V> MemoizedTupleAnswer(
    std::mutex& mu, SessionStats& stats,
    std::unordered_map<std::string, AnswerEntry>& answers,
    const std::string& relation,
    std::map<std::vector<rel::Value>, V, TupleLess> AnswerEntry::* slot,
    std::span<const rel::Value> tuple, Fn&& compute) {
  std::vector<rel::Value> key(tuple.begin(), tuple.end());
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = answers.find(relation);
    if (it != answers.end()) {
      auto hit = (it->second.*slot).find(key);
      if (hit != (it->second.*slot).end()) {
        stats.answer_cache_hits++;
        return hit->second;
      }
    }
  }
  MAYWSD_ASSIGN_OR_RETURN(V out, compute());
  std::lock_guard<std::mutex> lock(mu);
  stats.answer_cache_misses++;
  (answers[relation].*slot).emplace(std::move(key), out);
  return out;
}

}  // namespace

Result<rel::Relation> Session::PossibleTuples(std::string_view relation) const {
  auto read = rep_->ReadLock();
  std::string rel_name(relation);
  if (!rep_->options.cache) return rep_->backend->PossibleTuples(rel_name);
  return MemoizedRelationAnswer(
      rep_->cache_mu, rep_->stats, rep_->answers, rel_name,
      &AnswerEntry::possible,
      [&] { return rep_->backend->PossibleTuples(rel_name); });
}

Result<rel::Relation> Session::PossibleTuplesWithConfidence(
    std::string_view relation) const {
  auto read = rep_->ReadLock();
  std::string rel_name(relation);
  if (!rep_->options.cache) {
    return rep_->backend->PossibleTuplesWithConfidence(rel_name);
  }
  return MemoizedRelationAnswer(
      rep_->cache_mu, rep_->stats, rep_->answers, rel_name,
      &AnswerEntry::possible_conf,
      [&] { return rep_->backend->PossibleTuplesWithConfidence(rel_name); });
}

Result<rel::Relation> Session::CertainTuples(std::string_view relation) const {
  auto read = rep_->ReadLock();
  std::string rel_name(relation);
  if (!rep_->options.cache) return rep_->backend->CertainTuples(rel_name);
  return MemoizedRelationAnswer(
      rep_->cache_mu, rep_->stats, rep_->answers, rel_name,
      &AnswerEntry::certain,
      [&] { return rep_->backend->CertainTuples(rel_name); });
}

Result<double> Session::TupleConfidence(
    std::string_view relation, std::span<const rel::Value> tuple) const {
  auto read = rep_->ReadLock();
  std::string rel_name(relation);
  if (!rep_->options.cache) {
    return rep_->backend->TupleConfidence(rel_name, tuple);
  }
  return MemoizedTupleAnswer<double>(
      rep_->cache_mu, rep_->stats, rep_->answers, rel_name,
      &AnswerEntry::confidence, tuple,
      [&] { return rep_->backend->TupleConfidence(rel_name, tuple); });
}

Result<bool> Session::TupleCertain(std::string_view relation,
                                   std::span<const rel::Value> tuple) const {
  auto read = rep_->ReadLock();
  std::string rel_name(relation);
  if (!rep_->options.cache) {
    return rep_->backend->TupleCertain(rel_name, tuple);
  }
  return MemoizedTupleAnswer<bool>(
      rep_->cache_mu, rep_->stats, rep_->answers, rel_name,
      &AnswerEntry::tuple_certain, tuple,
      [&] { return rep_->backend->TupleCertain(rel_name, tuple); });
}

// Representation accessors hand out raw pointers, so the session's
// internal locks cannot cover the caller's accesses — concurrent use of
// the pointers still requires external synchronization against writers.
// The mutable overloads invalidate the answer surface (under the writer
// lock, so in-flight reads never see a half-invalidated cache).

core::engine::WorldSetOps& Session::ops() {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  // Mutable access can change any relation behind the answer cache's back.
  rep_->InvalidateAll();
  return *rep_->backend;
}
const core::engine::WorldSetOps& Session::ops() const {
  return *rep_->backend;
}

core::Wsd* Session::wsd() {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->InvalidateAll();
  return std::get_if<core::Wsd>(&rep_->data);
}
const core::Wsd* Session::wsd() const {
  return std::get_if<core::Wsd>(&rep_->data);
}
core::Wsdt* Session::wsdt() {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->InvalidateAll();
  return std::get_if<core::Wsdt>(&rep_->data);
}
const core::Wsdt* Session::wsdt() const {
  return std::get_if<core::Wsdt>(&rep_->data);
}
rel::Database* Session::uniform() {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->InvalidateAll();
  return std::get_if<rel::Database>(&rep_->data);
}
const rel::Database* Session::uniform() const {
  return std::get_if<rel::Database>(&rep_->data);
}
core::Urel* Session::urel() {
  std::unique_lock<std::shared_mutex> write(rep_->state_mu);
  rep_->InvalidateAll();
  return std::get_if<core::Urel>(&rep_->data);
}
const core::Urel* Session::urel() const {
  return std::get_if<core::Urel>(&rep_->data);
}

// -- Snapshot -----------------------------------------------------------------

Snapshot::Snapshot(Session session,
                   std::unordered_map<std::string, uint64_t> versions)
    : session_(std::move(session)), versions_(std::move(versions)) {}

// Teardown needs no coordination with the parent session: the private copy
// shares copy-on-write state with it (component pools and payload nodes,
// relation rows, urel symbols), but every shared handle releases through
// an acq_rel refcount decrement, and the parent's mutate-in-place probes
// are acquire loads — a probe that observes uniqueness happens-after this
// snapshot's release, reads included. (Under the old shared_ptr scheme the
// probe was a relaxed use_count() and teardown had to hide behind the
// parent's reader lock.)
Snapshot::~Snapshot() = default;

Snapshot& Snapshot::operator=(Snapshot&& other) noexcept {
  if (this != &other) {
    session_ = std::move(other.session_);
    versions_ = std::move(other.versions_);
  }
  return *this;
}

BackendKind Snapshot::kind() const { return session_.kind(); }
std::string_view Snapshot::BackendName() const {
  return session_.BackendName();
}

bool Snapshot::HasRelation(std::string_view name) const {
  return session_.HasRelation(name);
}
std::vector<std::string> Snapshot::RelationNames() const {
  return session_.RelationNames();
}
Result<rel::Schema> Snapshot::RelationSchema(std::string_view name) const {
  return session_.RelationSchema(name);
}

uint64_t Snapshot::RelationVersion(std::string_view name) const {
  auto it = versions_.find(std::string(name));
  if (it != versions_.end()) return it->second;
  return session_.RelationVersion(name);
}

const std::unordered_map<std::string, uint64_t>& Snapshot::Versions() const {
  return versions_;
}

Result<rel::Relation> Snapshot::PossibleTuples(
    std::string_view relation) const {
  return session_.PossibleTuples(relation);
}
Result<rel::Relation> Snapshot::PossibleTuplesWithConfidence(
    std::string_view relation) const {
  return session_.PossibleTuplesWithConfidence(relation);
}
Result<rel::Relation> Snapshot::CertainTuples(
    std::string_view relation) const {
  return session_.CertainTuples(relation);
}
Result<double> Snapshot::TupleConfidence(
    std::string_view relation, std::span<const rel::Value> tuple) const {
  return session_.TupleConfidence(relation, tuple);
}
Result<bool> Snapshot::TupleCertain(std::string_view relation,
                                    std::span<const rel::Value> tuple) const {
  return session_.TupleCertain(relation, tuple);
}

Status Snapshot::Run(const rel::Plan& plan, const std::string& out) {
  // Fresh names only: a snapshot's pinned catalog is immutable by
  // contract — Run may only add snapshot-local derived relations.
  if (session_.HasRelation(out)) {
    return Status::AlreadyExists("snapshot relation " + out);
  }
  return session_.Run(plan, out);
}

SessionStats Snapshot::Stats() const { return session_.Stats(); }

}  // namespace maywsd::api
