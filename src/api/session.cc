#include "api/session.h"

#include <thread>
#include <utility>
#include <variant>

#include "core/engine/parallel.h"
#include "core/engine/plan_driver.h"
#include "core/engine/uniform_backend.h"
#include "core/engine/wsd_backend.h"
#include "core/engine/wsdt_backend.h"
#include "core/uniform.h"

namespace maywsd::api {

std::string_view BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kWsd:
      return "wsd";
    case BackendKind::kWsdt:
      return "wsdt";
    case BackendKind::kUniform:
      return "uniform";
  }
  return "?";
}

/// The owned representation plus its engine adapter. The variant lives in
/// a heap-allocated Rep so the adapter's pointer into it stays stable
/// across Session moves.
struct Session::Rep {
  BackendKind kind;
  std::variant<core::Wsd, core::Wsdt, rel::Database> data;
  std::unique_ptr<core::engine::WorldSetOps> backend;
  SessionOptions options;
  SessionStats stats;
};

namespace {

/// Resolves the option value to a worker count (0 = hardware concurrency).
size_t ResolveThreads(int threads) {
  if (threads > 1) return static_cast<size_t>(threads);
  if (threads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return 1;
}

}  // namespace

Session::Session(std::unique_ptr<Rep> rep) : rep_(std::move(rep)) {}
Session::~Session() = default;
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;

Session Session::OverWsd(core::Wsd wsd, SessionOptions options) {
  auto rep = std::make_unique<Rep>();
  rep->kind = BackendKind::kWsd;
  rep->data = std::move(wsd);
  rep->backend = std::make_unique<core::engine::WsdBackend>(
      std::get<core::Wsd>(rep->data));
  rep->options = options;
  return Session(std::move(rep));
}

Session Session::OverWsdt(core::Wsdt wsdt, SessionOptions options) {
  auto rep = std::make_unique<Rep>();
  rep->kind = BackendKind::kWsdt;
  rep->data = std::move(wsdt);
  rep->backend = std::make_unique<core::engine::WsdtBackend>(
      std::get<core::Wsdt>(rep->data));
  rep->options = options;
  return Session(std::move(rep));
}

Session Session::OverUniformDatabase(rel::Database db, SessionOptions options) {
  auto rep = std::make_unique<Rep>();
  rep->kind = BackendKind::kUniform;
  rep->data = std::move(db);
  rep->backend = std::make_unique<core::engine::UniformBackend>(
      std::get<rel::Database>(rep->data));
  rep->options = options;
  return Session(std::move(rep));
}

Session Session::OverUniform() {
  // The export of an empty WSDT is a store with empty C, F, W.
  return OverUniformDatabase(core::ExportUniform(core::Wsdt()).value());
}

Result<Session> Session::OverUniform(const core::Wsdt& wsdt,
                                     SessionOptions options) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Database db, core::ExportUniform(wsdt));
  return OverUniformDatabase(std::move(db), options);
}

BackendKind Session::kind() const { return rep_->kind; }

std::string_view Session::BackendName() const {
  return rep_->backend->BackendName();
}

bool Session::HasRelation(const std::string& name) const {
  return rep_->backend->HasRelation(name);
}

std::vector<std::string> Session::RelationNames() const {
  return rep_->backend->RelationNames();
}

Result<rel::Schema> Session::RelationSchema(const std::string& name) const {
  return rep_->backend->RelationSchema(name);
}

Status Session::Register(const rel::Relation& relation) {
  return rep_->backend->AddCertainRelation(relation);
}

Status Session::Drop(const std::string& name) {
  return rep_->backend->Drop(name);
}

const SessionOptions& Session::options() const { return rep_->options; }
void Session::set_options(const SessionOptions& options) {
  rep_->options = options;
}

const SessionStats& Session::Stats() const { return rep_->stats; }

Status Session::Run(const rel::Plan& plan, const std::string& out) {
  rep_->stats.runs++;
  core::engine::ParallelStats ps;
  Status st = core::engine::EvaluateParallel(
      *rep_->backend, plan, out, ResolveThreads(rep_->options.threads), &ps);
  if (ps.sharded) {
    rep_->stats.sharded_runs++;
    rep_->stats.shards_executed += ps.shards;
  } else if (ResolveThreads(rep_->options.threads) > 1) {
    rep_->stats.fallback_runs++;
  }
  return st;
}

Status Session::RunOptimized(const rel::Plan& plan, const std::string& out) {
  MAYWSD_ASSIGN_OR_RETURN(rel::Plan optimized,
                          core::engine::OptimizeForBackend(*rep_->backend,
                                                           plan));
  return Run(optimized, out);
}

Status Session::RunAll(std::span<const rel::Plan> plans,
                       std::span<const std::string> outs) {
  rep_->stats.batches++;
  core::engine::BatchStats bs;
  Status st = core::engine::EvaluateBatch(*rep_->backend, plans, outs,
                                          rep_->options.cache, &bs);
  rep_->stats.cache_hits += bs.cache_hits;
  rep_->stats.cache_misses += bs.cache_misses;
  return st;
}

Result<rel::Relation> Session::PossibleTuples(
    const std::string& relation) const {
  return rep_->backend->PossibleTuples(relation);
}

Result<rel::Relation> Session::PossibleTuplesWithConfidence(
    const std::string& relation) const {
  return rep_->backend->PossibleTuplesWithConfidence(relation);
}

Result<rel::Relation> Session::CertainTuples(
    const std::string& relation) const {
  return rep_->backend->CertainTuples(relation);
}

Result<double> Session::TupleConfidence(
    const std::string& relation, std::span<const rel::Value> tuple) const {
  return rep_->backend->TupleConfidence(relation, tuple);
}

Result<bool> Session::TupleCertain(const std::string& relation,
                                   std::span<const rel::Value> tuple) const {
  return rep_->backend->TupleCertain(relation, tuple);
}

core::engine::WorldSetOps& Session::ops() { return *rep_->backend; }
const core::engine::WorldSetOps& Session::ops() const {
  return *rep_->backend;
}

core::Wsd* Session::wsd() { return std::get_if<core::Wsd>(&rep_->data); }
const core::Wsd* Session::wsd() const {
  return std::get_if<core::Wsd>(&rep_->data);
}
core::Wsdt* Session::wsdt() { return std::get_if<core::Wsdt>(&rep_->data); }
const core::Wsdt* Session::wsdt() const {
  return std::get_if<core::Wsdt>(&rep_->data);
}
rel::Database* Session::uniform() {
  return std::get_if<rel::Database>(&rep_->data);
}
const rel::Database* Session::uniform() const {
  return std::get_if<rel::Database>(&rep_->data);
}

}  // namespace maywsd::api
