#include "census/ipums.h"

namespace maywsd::census {

CensusSchema CensusSchema::Standard() {
  CensusSchema s;
  // Attributes referenced by Figures 25 and 29, with IPUMS-style domains.
  // POWSTATE/POB/RPOB use codes 0..58 so that exactly eight codes exceed 50
  // (the paper's Q5 selects "eight 'states', e.g. Washington, Wisconsin,
  // Abroad").
  s.attrs_ = {
      {"CITIZEN", 5},   {"IMMIGR", 11},  {"FEB55", 2},    {"MILITARY", 5},
      {"KOREAN", 2},    {"VIETNAM", 2},  {"WWII", 2},     {"MARITAL", 5},
      {"RSPOUSE", 7},   {"LANG1", 3},    {"ENGLISH", 5},  {"RPOB", 59},
      {"SCHOOL", 3},    {"YEARSCH", 18}, {"POWSTATE", 59},{"POB", 59},
      {"FERTIL", 14},
      // IPUMS-named fillers to reach the 50 multiple-choice attributes.
      {"AGE", 91},      {"SEX", 2},      {"RACE", 10},    {"HISPANIC", 4},
      {"ANCSTRY1", 51}, {"ANCSTRY2", 51},{"AVAIL", 5},    {"CLASS", 10},
      {"DEPART", 25},   {"DISABL1", 3},  {"DISABL2", 3},  {"HOUR89", 15},
      {"HOURS", 15},    {"INDUSTRY", 24},{"LOOKING", 3},  {"MEANS", 13},
      {"MIGSTATE", 59}, {"MOBILITY", 3}, {"MOBILLIM", 3}, {"OCCUP", 26},
      {"OTHRSERV", 2},  {"PERSCARE", 3}, {"POVERTY", 12}, {"RAGECHLD", 5},
      {"RELAT1", 13},   {"RELAT2", 8},   {"REMPLPAR", 9}, {"RIDERS", 9},
      {"RLABOR", 7},    {"ROWNCHLD", 3}, {"RVETSERV", 8}, {"SEPT80", 2},
      {"WORKLWK", 3},
  };
  return s;
}

int64_t CensusSchema::DomainOf(const std::string& name) const {
  for (const CensusAttribute& a : attrs_) {
    if (a.name == name) return a.domain_size;
  }
  return 0;
}

rel::Schema CensusSchema::ToRelSchema() const {
  std::vector<rel::Attribute> attrs;
  attrs.reserve(attrs_.size());
  for (const CensusAttribute& a : attrs_) {
    attrs.emplace_back(a.name, rel::AttrType::kInt);
  }
  return rel::Schema(std::move(attrs));
}

namespace {

/// Repairs one generated record so it satisfies the Figure 25 dependencies
/// (conclusions are enforced when premises hold; the fix order never
/// re-introduces a violation).
void EnforceDependencies(const CensusSchema& schema,
                         std::vector<int64_t>* rec) {
  auto idx = [&](const char* name) {
    for (size_t i = 0; i < schema.attributes().size(); ++i) {
      if (schema.attributes()[i].name == name) return i;
    }
    return size_t{0};
  };
  static const size_t kCitizen = 0;
  (void)kCitizen;
  size_t citizen = idx("CITIZEN"), immigr = idx("IMMIGR"),
         feb55 = idx("FEB55"), military = idx("MILITARY"),
         korean = idx("KOREAN"), vietnam = idx("VIETNAM"), wwii = idx("WWII"),
         marital = idx("MARITAL"), rspouse = idx("RSPOUSE"),
         lang1 = idx("LANG1"), english = idx("ENGLISH"), rpob = idx("RPOB"),
         school = idx("SCHOOL");
  std::vector<int64_t>& r = *rec;
  // 9: RPOB = 52 ⇒ CITIZEN ≠ 0.
  if (r[rpob] == 52 && r[citizen] == 0) r[citizen] = 1;
  // 1: CITIZEN = 0 ⇒ IMMIGR = 0.
  if (r[citizen] == 0) r[immigr] = 0;
  // 10–12: SCHOOL = 0 ⇒ KOREAN ≠ 1, FEB55 ≠ 1, WWII ≠ 1.
  if (r[school] == 0) {
    if (r[korean] == 1) r[korean] = 0;
    if (r[feb55] == 1) r[feb55] = 0;
    if (r[wwii] == 1) r[wwii] = 0;
  }
  // 2–5: FEB55/KOREAN/VIETNAM/WWII = 1 ⇒ MILITARY ≠ 4.
  if ((r[feb55] == 1 || r[korean] == 1 || r[vietnam] == 1 || r[wwii] == 1) &&
      r[military] == 4) {
    r[military] = 1;
  }
  // 6–7: MARITAL = 0 ⇒ RSPOUSE ∉ {5, 6}.
  if (r[marital] == 0 && (r[rspouse] == 5 || r[rspouse] == 6)) {
    r[rspouse] = 1;
  }
  // 8: LANG1 = 2 ⇒ ENGLISH ≠ 4.
  if (r[lang1] == 2 && r[english] == 4) r[english] = 3;
}

}  // namespace

rel::Relation GenerateCensus(const CensusSchema& schema, size_t rows,
                             uint64_t seed, const std::string& name) {
  rel::Relation out(schema.ToRelSchema(), name);
  out.Reserve(rows);
  Rng rng(seed);
  std::vector<int64_t> rec(schema.arity());
  std::vector<rel::Value> row(schema.arity());
  for (size_t i = 0; i < rows; ++i) {
    for (size_t a = 0; a < schema.arity(); ++a) {
      rec[a] = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(
              schema.attributes()[a].domain_size)));
    }
    EnforceDependencies(schema, &rec);
    for (size_t a = 0; a < schema.arity(); ++a) {
      row[a] = rel::Value::Int(rec[a]);
    }
    out.AppendRow(row);
  }
  return out;
}

}  // namespace maywsd::census
