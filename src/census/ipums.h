// Synthetic IPUMS-like census data — the substrate for Section 9.
//
// The paper uses the public 5% extract of the 1990 US census: one relation
// of 50 exclusively multiple-choice attributes. The dataset itself is not
// shipped here, so we generate a synthetic extract with the same shape:
// the attributes referenced by the paper's dependencies (Figure 25) and
// queries (Figure 29) carry their IPUMS names and realistic code domains
// (e.g. POWSTATE has 8 codes above 50, matching the "eight states" Q5
// selects); the remaining attributes are IPUMS-named fillers. Base data is
// generated uniformly per domain and then repaired to satisfy all twelve
// cleaning dependencies — noise later (re-)introduces the violations the
// chase removes, exactly as in the paper's setup.

#ifndef MAYWSD_CENSUS_IPUMS_H_
#define MAYWSD_CENSUS_IPUMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rel/relation.h"

namespace maywsd::census {

/// One multiple-choice attribute: values are codes 0..domain_size-1.
struct CensusAttribute {
  std::string name;
  int64_t domain_size = 2;
};

/// The 50-attribute census schema.
class CensusSchema {
 public:
  /// Builds the standard 50-attribute schema.
  static CensusSchema Standard();

  const std::vector<CensusAttribute>& attributes() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }

  /// Domain size of the named attribute (0 when unknown).
  int64_t DomainOf(const std::string& name) const;

  /// The rel:: schema (all kInt).
  rel::Schema ToRelSchema() const;

 private:
  std::vector<CensusAttribute> attrs_;
};

/// Generates `rows` census records as relation `name`, deterministic in
/// `seed`, satisfying all Figure 25 dependencies.
rel::Relation GenerateCensus(const CensusSchema& schema, size_t rows,
                             uint64_t seed, const std::string& name = "R");

}  // namespace maywsd::census

#endif  // MAYWSD_CENSUS_IPUMS_H_
