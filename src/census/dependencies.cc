#include "census/dependencies.h"

namespace maywsd::census {

namespace {

core::Egd MakeEgd(const std::string& relation, const std::string& pre_attr,
                  int64_t pre_val, const std::string& con_attr,
                  rel::CmpOp con_op, int64_t con_val) {
  core::Egd egd;
  egd.relation = relation;
  egd.premises = {{pre_attr, rel::CmpOp::kEq, rel::Value::Int(pre_val)}};
  egd.conclusion = {con_attr, con_op, rel::Value::Int(con_val)};
  return egd;
}

}  // namespace

std::vector<core::Dependency> CensusDependencies(const std::string& r) {
  using rel::CmpOp;
  return {
      // 1: citizens born in the USA are not immigrants.
      MakeEgd(r, "CITIZEN", 0, "IMMIGR", CmpOp::kEq, 0),
      // 2–5: service-period flags imply military service was done.
      MakeEgd(r, "FEB55", 1, "MILITARY", CmpOp::kNe, 4),
      MakeEgd(r, "KOREAN", 1, "MILITARY", CmpOp::kNe, 4),
      MakeEgd(r, "VIETNAM", 1, "MILITARY", CmpOp::kNe, 4),
      MakeEgd(r, "WWII", 1, "MILITARY", CmpOp::kNe, 4),
      // 6–7: marital status constrains the spouse code.
      MakeEgd(r, "MARITAL", 0, "RSPOUSE", CmpOp::kNe, 6),
      MakeEgd(r, "MARITAL", 0, "RSPOUSE", CmpOp::kNe, 5),
      // 8: language at home constrains English proficiency.
      MakeEgd(r, "LANG1", 2, "ENGLISH", CmpOp::kNe, 4),
      // 9: born in a US outlying area implies citizenship status ≠ 0.
      MakeEgd(r, "RPOB", 52, "CITIZEN", CmpOp::kNe, 0),
      // 10–12: not in school implies no service-period flags.
      MakeEgd(r, "SCHOOL", 0, "KOREAN", CmpOp::kNe, 1),
      MakeEgd(r, "SCHOOL", 0, "FEB55", CmpOp::kNe, 1),
      MakeEgd(r, "SCHOOL", 0, "WWII", CmpOp::kNe, 1),
  };
}

}  // namespace maywsd::census
