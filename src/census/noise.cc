#include "census/noise.h"

#include <algorithm>

namespace maywsd::census {

namespace {

/// Draws the or-set for one field: the original value plus distinct random
/// codes, sized uniform in [2, min(8, domain)].
std::vector<rel::Value> DrawOrSet(Rng& rng, int64_t original, int64_t domain) {
  int64_t max_size = std::min<int64_t>(8, domain);
  int64_t size = rng.UniformInt(2, std::max<int64_t>(2, max_size));
  std::vector<rel::Value> out{rel::Value::Int(original)};
  // Rejection-sample distinct codes; domains are small, so this converges
  // quickly (size ≤ 8 ≤ domain).
  while (static_cast<int64_t>(out.size()) < size) {
    rel::Value v = rel::Value::Int(
        static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(domain))));
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

}  // namespace

Result<core::Wsdt> MakeNoisyWsdt(const rel::Relation& base,
                                 const CensusSchema& schema, double density,
                                 uint64_t seed, NoiseReport* report) {
  Rng rng(seed);
  core::Wsdt wsdt;
  rel::Relation tmpl(base.schema(), base.name());
  tmpl.Reserve(base.NumRows());
  Symbol rel_sym = InternString(base.name());
  size_t placeholders = 0;
  size_t orset_values = 0;
  std::vector<rel::Value> row(base.arity());
  // Components are registered after the template, so build them on the side.
  std::vector<core::Component> comps;
  for (size_t r = 0; r < base.NumRows(); ++r) {
    rel::TupleRef src = base.row(r);
    for (size_t a = 0; a < base.arity(); ++a) {
      int64_t domain = schema.attributes()[a].domain_size;
      if (domain >= 2 && rng.NextDouble() < density) {
        std::vector<rel::Value> options =
            DrawOrSet(rng, src[a].AsInt(), domain);
        core::Component comp({core::FieldKey(
            rel_sym, static_cast<core::TupleId>(r),
            base.schema().attr(a).name)});
        double p = 1.0 / static_cast<double>(options.size());
        for (const rel::Value& v : options) comp.AddWorld({v}, p);
        comps.push_back(std::move(comp));
        row[a] = rel::Value::Question();
        ++placeholders;
        orset_values += options.size();
      } else {
        row[a] = src[a];
      }
    }
    tmpl.AppendRow(row);
  }
  MAYWSD_RETURN_IF_ERROR(wsdt.AddTemplateRelation(std::move(tmpl)));
  for (core::Component& comp : comps) {
    MAYWSD_RETURN_IF_ERROR(wsdt.AddComponent(std::move(comp)));
  }
  if (report != nullptr) {
    report->fields_total = base.NumRows() * base.arity();
    report->placeholders = placeholders;
    report->avg_orset_size =
        placeholders == 0
            ? 0.0
            : static_cast<double>(orset_values) /
                  static_cast<double>(placeholders);
  }
  return wsdt;
}

Result<core::OrSetRelation> MakeNoisyOrSetRelation(const rel::Relation& base,
                                                   const CensusSchema& schema,
                                                   double density,
                                                   uint64_t seed) {
  Rng rng(seed);
  core::OrSetRelation out(base.schema(), base.name());
  for (size_t r = 0; r < base.NumRows(); ++r) {
    rel::TupleRef src = base.row(r);
    std::vector<core::OrSetField> row;
    row.reserve(base.arity());
    for (size_t a = 0; a < base.arity(); ++a) {
      int64_t domain = schema.attributes()[a].domain_size;
      if (domain >= 2 && rng.NextDouble() < density) {
        row.emplace_back(DrawOrSet(rng, src[a].AsInt(), domain));
      } else {
        row.emplace_back(src[a]);
      }
    }
    MAYWSD_RETURN_IF_ERROR(out.AppendRow(std::move(row)));
  }
  return out;
}

}  // namespace maywsd::census
