#include "census/queries.h"

#include <cassert>

namespace maywsd::census {

namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::Value;

Plan Q1(const std::string& r) {
  return Plan::Select(
      Predicate::And(Predicate::Cmp("YEARSCH", CmpOp::kEq, Value::Int(17)),
                     Predicate::Cmp("CITIZEN", CmpOp::kEq, Value::Int(0))),
      Plan::Scan(r));
}

Plan Q2(const std::string& r) {
  return Plan::Project(
      {"POWSTATE", "CITIZEN", "IMMIGR"},
      Plan::Select(
          Predicate::And(Predicate::Cmp("CITIZEN", CmpOp::kNe, Value::Int(0)),
                         Predicate::Cmp("ENGLISH", CmpOp::kGt, Value::Int(3))),
          Plan::Scan(r)));
}

Plan Q3(const std::string& r) {
  return Plan::Project(
      {"POWSTATE", "MARITAL", "FERTIL"},
      Plan::Select(
          Predicate::CmpAttr("POWSTATE", CmpOp::kEq, "POB"),
          Plan::Select(
              Predicate::And(
                  Predicate::Cmp("FERTIL", CmpOp::kGt, Value::Int(4)),
                  Predicate::Cmp("MARITAL", CmpOp::kEq, Value::Int(1))),
              Plan::Scan(r))));
}

Plan Q4(const std::string& r) {
  return Plan::Select(
      Predicate::And(
          Predicate::Cmp("FERTIL", CmpOp::kEq, Value::Int(1)),
          Predicate::Or(Predicate::Cmp("RSPOUSE", CmpOp::kEq, Value::Int(1)),
                        Predicate::Cmp("RSPOUSE", CmpOp::kEq, Value::Int(2)))),
      Plan::Scan(r));
}

Plan Q5(const std::string& r) {
  Plan left = Plan::Rename(
      {{"POWSTATE", "P1"}},
      Plan::Select(Predicate::Cmp("POWSTATE", CmpOp::kGt, Value::Int(50)),
                   Q2(r)));
  Plan right = Plan::Rename(
      {{"POWSTATE", "P2"}},
      Plan::Select(Predicate::Cmp("POWSTATE", CmpOp::kGt, Value::Int(50)),
                   Q3(r)));
  return Plan::Join(Predicate::CmpAttr("P1", CmpOp::kEq, "P2"),
                    std::move(left), std::move(right));
}

Plan Q6(const std::string& r) {
  return Plan::Project(
      {"POWSTATE", "POB"},
      Plan::Select(Predicate::Cmp("ENGLISH", CmpOp::kEq, Value::Int(3)),
                   Plan::Scan(r)));
}

}  // namespace

rel::Plan CensusQuery(int i, const std::string& relation) {
  switch (i) {
    case 1:
      return Q1(relation);
    case 2:
      return Q2(relation);
    case 3:
      return Q3(relation);
    case 4:
      return Q4(relation);
    case 5:
      return Q5(relation);
    case 6:
      return Q6(relation);
    default:
      assert(false && "census query index must be 1..6");
      return Q1(relation);
  }
}

std::vector<rel::Plan> AllCensusQueries(const std::string& relation) {
  std::vector<rel::Plan> out;
  for (int i = 1; i <= 6; ++i) out.push_back(CensusQuery(i, relation));
  return out;
}

}  // namespace maywsd::census
