// The six evaluation queries of Figure 29.

#ifndef MAYWSD_CENSUS_QUERIES_H_
#define MAYWSD_CENSUS_QUERIES_H_

#include <string>
#include <vector>

#include "rel/algebra.h"

namespace maywsd::census {

/// Builds query Qi (1 ≤ i ≤ 6) of Figure 29 over relation `relation`:
///   Q1 = σ_{YEARSCH=17 ∧ CITIZEN=0}(R)
///   Q2 = π_{POWSTATE,CITIZEN,IMMIGR}(σ_{CITIZEN≠0 ∧ ENGLISH>3}(R))
///   Q3 = π_{POWSTATE,MARITAL,FERTIL}(σ_{POWSTATE=POB}(σ_{FERTIL>4 ∧ MARITAL=1}(R)))
///   Q4 = σ_{FERTIL=1 ∧ (RSPOUSE=1 ∨ RSPOUSE=2)}(R)
///   Q5 = δ_{POWSTATE→P1}(σ_{POWSTATE>50}(Q2)) ⋈_{P1=P2} δ_{POWSTATE→P2}(σ_{POWSTATE>50}(Q3))
///   Q6 = π_{POWSTATE,POB}(σ_{ENGLISH=3}(R))
rel::Plan CensusQuery(int i, const std::string& relation = "R");

/// All six queries, in order (index 0 = Q1).
std::vector<rel::Plan> AllCensusQueries(const std::string& relation = "R");

}  // namespace maywsd::census

#endif  // MAYWSD_CENSUS_QUERIES_H_
