// The twelve real-life cleaning dependencies of Figure 25.

#ifndef MAYWSD_CENSUS_DEPENDENCIES_H_
#define MAYWSD_CENSUS_DEPENDENCIES_H_

#include <string>
#include <vector>

#include "core/chase.h"

namespace maywsd::census {

/// The 12 equality-generating dependencies of Figure 25 over relation
/// `relation` ("citizens born in the USA are not immigrants", "citizens who
/// served in WWII have done their military service", ...).
std::vector<core::Dependency> CensusDependencies(
    const std::string& relation = "R");

}  // namespace maywsd::census

#endif  // MAYWSD_CENSUS_DEPENDENCIES_H_
