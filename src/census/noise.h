// Noise injection — the paper's incompleteness model (Section 9).
//
// A fraction `density` of all fields (e.g. 0.001 = 0.1%) is replaced by an
// or-set of size uniform in [2, min(8, |domain|)] that contains the
// original value (average ≈ 3.5 values, as reported). Every or-set becomes
// a single-placeholder component with uniform probabilities; the result is
// a WSDT whose world count is the product of the or-set sizes.

#ifndef MAYWSD_CENSUS_NOISE_H_
#define MAYWSD_CENSUS_NOISE_H_

#include <cstdint>

#include "common/status.h"
#include "core/orset.h"
#include "core/wsdt.h"
#include "census/ipums.h"

namespace maywsd::census {

/// Summary of an injection run.
struct NoiseReport {
  size_t fields_total = 0;
  size_t placeholders = 0;       ///< fields turned into or-sets
  double avg_orset_size = 0.0;
};

/// Replaces a `density` fraction of fields of `base` with or-sets,
/// returning the WSDT (template + one component per noisy field).
/// Deterministic in `seed`.
Result<core::Wsdt> MakeNoisyWsdt(const rel::Relation& base,
                                 const CensusSchema& schema, double density,
                                 uint64_t seed, NoiseReport* report = nullptr);

/// Same noise process, but producing an explicit or-set relation (used by
/// the WSD-path tests and the ablation benchmarks at small scale).
Result<core::OrSetRelation> MakeNoisyOrSetRelation(const rel::Relation& base,
                                                   const CensusSchema& schema,
                                                   double density,
                                                   uint64_t seed);

}  // namespace maywsd::census

#endif  // MAYWSD_CENSUS_NOISE_H_
