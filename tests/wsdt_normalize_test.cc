#include "core/wsdt_normalize.h"

#include <gtest/gtest.h>

#include "census/dependencies.h"
#include "census/ipums.h"
#include "census/noise.h"
#include "core/storage.h"
#include "core/wsdt_algebra.h"
#include "core/wsdt_chase.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::Q;

TEST(WsdtNormalizeTest, PromoteCertainFields) {
  // A placeholder whose component column became constant (e.g. after a
  // chase removed the alternatives) moves back into the template.
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({Q(), Q()});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c1({FieldKey("R", 0, "A")});
  c1.AddWorld({I(7)}, 1.0);  // constant: promotable
  ASSERT_TRUE(wsdt.AddComponent(std::move(c1)).ok());
  Component c2({FieldKey("R", 0, "B")});
  c2.AddWorld({I(1)}, 0.5);
  c2.AddWorld({I(2)}, 0.5);
  ASSERT_TRUE(wsdt.AddComponent(std::move(c2)).ok());

  ASSERT_TRUE(WsdtPromoteCertainFields(wsdt).ok());
  ASSERT_TRUE(wsdt.Validate().ok());
  const rel::Relation* t = wsdt.Template("R").value();
  EXPECT_EQ(t->row(0)[0], I(7));
  EXPECT_TRUE(t->row(0)[1].is_question());
  EXPECT_EQ(wsdt.ComputeStats().num_components, 1u);
}

TEST(WsdtNormalizeTest, CompressAfterDuplicateWorlds) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({Q()});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c({FieldKey("R", 0, "A")});
  c.AddWorld({I(1)}, 0.25);
  c.AddWorld({I(1)}, 0.25);
  c.AddWorld({I(2)}, 0.5);
  ASSERT_TRUE(wsdt.AddComponent(std::move(c)).ok());
  ASSERT_TRUE(WsdtCompressComponents(wsdt).ok());
  const Component& comp = wsdt.component(wsdt.LiveComponents()[0]);
  EXPECT_EQ(comp.NumWorlds(), 2u);
  EXPECT_NEAR(comp.ProbSum(), 1.0, 1e-9);
}

TEST(WsdtNormalizeTest, RemoveInvalidRowsRenumbersFields) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({I(0)});   // row 0: certain, stays
  tmpl.AppendRow({Q()});    // row 1: always ⊥ — invalid
  tmpl.AppendRow({Q()});    // row 2: conditional, must become row 1
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component dead({FieldKey("R", 1, "A")});
  dead.AddWorld({testutil::Bot()}, 1.0);
  ASSERT_TRUE(wsdt.AddComponent(std::move(dead)).ok());
  Component live({FieldKey("R", 2, "A")});
  live.AddWorld({I(9)}, 0.5);
  live.AddWorld({testutil::Bot()}, 0.5);
  ASSERT_TRUE(wsdt.AddComponent(std::move(live)).ok());

  auto before =
      CollapseWorlds(wsdt.ToWsd().value().EnumerateWorlds(100).value());
  ASSERT_TRUE(WsdtRemoveInvalidRows(wsdt).ok());
  ASSERT_TRUE(wsdt.Validate().ok());
  EXPECT_EQ(wsdt.Template("R").value()->NumRows(), 2u);
  EXPECT_TRUE(wsdt.HasField(FieldKey("R", 1, "A")));
  EXPECT_FALSE(wsdt.HasField(FieldKey("R", 2, "A")));
  auto after =
      CollapseWorlds(wsdt.ToWsd().value().EnumerateWorlds(100).value());
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(WsdtNormalizeTest, DecomposeSplitsProducts) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({Q(), Q()});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c({FieldKey("R", 0, "A"), FieldKey("R", 0, "B")});
  // Independent product: splits into two singleton components.
  c.AddWorld({I(0), I(0)}, 0.25);
  c.AddWorld({I(0), I(1)}, 0.25);
  c.AddWorld({I(1), I(0)}, 0.25);
  c.AddWorld({I(1), I(1)}, 0.25);
  ASSERT_TRUE(wsdt.AddComponent(std::move(c)).ok());
  ASSERT_TRUE(WsdtDecomposeComponents(wsdt).ok());
  ASSERT_TRUE(wsdt.Validate().ok());
  EXPECT_EQ(wsdt.ComputeStats().num_components, 2u);
}

class WsdtNormalizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(WsdtNormalizeProperty, PipelinePreservesWorlds) {
  Rng rng(GetParam());
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 3, 2}}, 4,
                                /*decompose=*/false);
  auto wsdt = Wsdt::FromWsd(wsd).value();
  auto before = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  ASSERT_TRUE(WsdtNormalize(wsdt).ok());
  ASSERT_TRUE(wsdt.Validate().ok());
  auto after = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after)) << "seed " << GetParam();
}

TEST_P(WsdtNormalizeProperty, NormalizeAfterQueryShrinksRepresentation) {
  Rng rng(GetParam() + 50);
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 3, 2}}, 4);
  auto wsdt = Wsdt::FromWsd(wsd).value();
  rel::Plan q = rel::Plan::Select(
      rel::Predicate::Cmp("A", rel::CmpOp::kEq, I(1)), rel::Plan::Scan("R"));
  ASSERT_TRUE(WsdtEvaluate(wsdt, q, "OUT").ok());
  auto before = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  WsdtStats pre = wsdt.ComputeStats();
  ASSERT_TRUE(WsdtNormalize(wsdt).ok());
  WsdtStats post = wsdt.ComputeStats();
  EXPECT_LE(post.c_size, pre.c_size);
  EXPECT_LE(post.template_rows, pre.template_rows);
  auto after = wsdt.ToWsd().value().EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WsdtNormalizeProperty,
                         ::testing::Range(0, 12));

TEST(StorageTest, SaveLoadRoundTrip) {
  census::CensusSchema schema = census::CensusSchema::Standard();
  rel::Relation base = census::GenerateCensus(schema, 200, 9);
  auto wsdt = census::MakeNoisyWsdt(base, schema, 0.01, 4).value();
  ASSERT_TRUE(WsdtChase(wsdt, census::CensusDependencies("R")).ok());

  std::string dir = ::testing::TempDir() + "/maywsd_storage_test";
  ASSERT_TRUE(SaveWsdt(wsdt, dir).ok());
  auto back = LoadWsdt(dir);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_TRUE(back->Validate().ok());
  WsdtStats a = wsdt.ComputeStats();
  WsdtStats b = back->ComputeStats();
  EXPECT_EQ(a.num_components, b.num_components);
  EXPECT_EQ(a.num_components_multi, b.num_components_multi);
  EXPECT_EQ(a.c_size, b.c_size);
  EXPECT_EQ(a.template_rows, b.template_rows);
  // Template content identical.
  EXPECT_TRUE(back->Template("R").value()->EqualsAsSet(
      *wsdt.Template("R").value()));
}

TEST(StorageTest, LoadMissingDirectoryFails) {
  EXPECT_EQ(LoadWsdt("/nonexistent/maywsd").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace maywsd::core
