// The update subsystem, end to end:
//   - UpdateOp value-type basics (accessors, hashing, equality),
//   - the one-world reference semantics (rel::ApplyUpdate),
//   - hand-built world-conditional scenarios on every backend,
//   - the cross-backend update-equivalence oracle: random sequences of
//     InsertTuples/DeleteWhere/ModifyWhere (including world-conditional
//     ones) applied to every enrolled backend (WSD, WSDT, uniform,
//     U-relations), with the expanded world sets compared against the
//     per-world reference after every step,
//   - query/update interleavings: a cached, threaded Session must return
//     exactly the answers of a fresh cache-off sequential session,
//   - answer-surface cache hit/miss/invalidation accounting.

#include <gtest/gtest.h>

#include "api/session.h"
#include "core/component_store.h"
#include "core/engine/uniform_backend.h"
#include "core/engine/update_plan.h"
#include "core/engine/urel_backend.h"
#include "core/engine/wsd_backend.h"
#include "core/engine/wsdt_backend.h"
#include "core/uniform.h"
#include "core/urel.h"
#include "core/worldset.h"
#include "rel/update.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::Assignment;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using testutil::I;
using testutil::RelSpec;
using testutil::SeededRng;

bool Contains(const rel::Relation& r, std::initializer_list<rel::Value> row) {
  std::vector<rel::Value> values(row);
  return r.ContainsRow(values);
}

rel::Relation Tuples(const std::vector<std::string>& attrs,
                     std::vector<std::vector<rel::Value>> rows) {
  rel::Relation out(rel::Schema::FromNames(attrs), "tuples");
  for (const auto& row : rows) out.AppendRow(row);
  return out;
}

TEST(UpdateOpTest, AccessorsAndToString) {
  UpdateOp ins =
      UpdateOp::InsertTuples("R", Tuples({"A", "B"}, {{I(1), I(2)}}));
  EXPECT_EQ(ins.kind(), UpdateOp::Kind::kInsert);
  EXPECT_EQ(ins.relation(), "R");
  EXPECT_EQ(ins.tuples().NumRows(), 1u);
  EXPECT_FALSE(ins.has_world_condition());

  UpdateOp del =
      UpdateOp::DeleteWhere("R", Predicate::Cmp("A", CmpOp::kEq, I(1)));
  EXPECT_EQ(del.kind(), UpdateOp::Kind::kDelete);
  EXPECT_NE(del.ToString().find("delete from R"), std::string::npos);

  UpdateOp mod = UpdateOp::ModifyWhere(
      "R", Predicate::Cmp("A", CmpOp::kEq, I(1)), {{"B", I(9)}});
  EXPECT_EQ(mod.kind(), UpdateOp::Kind::kModify);
  EXPECT_EQ(mod.assignments().size(), 1u);

  UpdateOp guarded = mod.When(Plan::Scan("S"));
  EXPECT_TRUE(guarded.has_world_condition());
  EXPECT_EQ(guarded.world_condition().kind(), Plan::Kind::kScan);
  EXPECT_FALSE(mod.has_world_condition());  // When() copies
  EXPECT_NE(guarded.ToString().find("when nonempty"), std::string::npos);
}

TEST(UpdateOpTest, HashAndEqualityAreStructural) {
  auto mk = [] {
    return UpdateOp::ModifyWhere("R", Predicate::Cmp("A", CmpOp::kLt, I(3)),
                                 {{"B", I(7)}});
  };
  UpdateOp a = mk();
  UpdateOp b = mk();
  EXPECT_TRUE(rel::UpdateOpEqual(a, b));
  EXPECT_EQ(rel::UpdateOpHash(a), rel::UpdateOpHash(b));

  UpdateOp c = UpdateOp::ModifyWhere(
      "R", Predicate::Cmp("A", CmpOp::kLt, I(3)), {{"B", I(8)}});
  EXPECT_FALSE(rel::UpdateOpEqual(a, c));

  UpdateOp d = a.When(Plan::Scan("S"));
  EXPECT_FALSE(rel::UpdateOpEqual(a, d));
  EXPECT_TRUE(rel::UpdateOpEqual(d, b.When(Plan::Scan("S"))));

  UpdateOp ins1 = UpdateOp::InsertTuples("R", Tuples({"A"}, {{I(1)}}));
  UpdateOp ins2 = UpdateOp::InsertTuples("R", Tuples({"A"}, {{I(2)}}));
  EXPECT_FALSE(rel::UpdateOpEqual(ins1, ins2));
}

TEST(UpdateOpTest, OneWorldReferenceSemantics) {
  rel::Database db;
  rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
  r.AppendRow({I(1), I(1)});
  r.AppendRow({I(2), I(2)});
  db.PutRelation(r);
  rel::Relation s(rel::Schema::FromNames({"C"}), "S");
  db.PutRelation(s);  // empty

  // Insert applies unconditionally.
  ASSERT_TRUE(
      rel::ApplyUpdate(db, UpdateOp::InsertTuples(
                               "R", Tuples({"A", "B"}, {{I(3), I(3)}})))
          .ok());
  EXPECT_EQ(db.GetRelation("R").value()->NumRows(), 3u);

  // A world condition over the empty S makes the delete a no-op.
  ASSERT_TRUE(rel::ApplyUpdate(
                  db, UpdateOp::DeleteWhere("R", Predicate::True())
                          .When(Plan::Scan("S")))
                  .ok());
  EXPECT_EQ(db.GetRelation("R").value()->NumRows(), 3u);

  // Unconditional modify rewrites matching rows and merges duplicates.
  ASSERT_TRUE(rel::ApplyUpdate(
                  db, UpdateOp::ModifyWhere(
                          "R", Predicate::Cmp("A", CmpOp::kGe, I(2)),
                          {{"A", I(9)}, {"B", I(9)}}))
                  .ok());
  const rel::Relation* after = db.GetRelation("R").value();
  EXPECT_EQ(after->NumRows(), 2u);  // (9,9) merged from rows 2 and 3
  EXPECT_TRUE(Contains(*after, {I(9), I(9)}));

  ASSERT_TRUE(
      rel::ApplyUpdate(db, UpdateOp::DeleteWhere(
                               "R", Predicate::Cmp("A", CmpOp::kEq, I(1))))
          .ok());
  EXPECT_EQ(db.GetRelation("R").value()->NumRows(), 1u);
}

// -- Backend fixtures ---------------------------------------------------------

struct BackendUnderTest {
  std::string name;
  std::unique_ptr<Wsd> wsd;
  std::unique_ptr<Wsdt> wsdt;
  std::unique_ptr<rel::Database> udb;
  std::unique_ptr<Urel> urel;
  std::unique_ptr<engine::WorldSetOps> ops;

  Status Validate() const {
    if (wsd) return wsd->Validate();
    if (wsdt) return wsdt->Validate();
    if (udb) return ValidateUniform(*udb);
    return ValidateUrel(*urel);
  }

  Result<std::vector<PossibleWorld>> Expand(
      const std::vector<std::string>& relations) const {
    if (wsd) return wsd->EnumerateWorlds(4000000, relations);
    if (wsdt) {
      MAYWSD_ASSIGN_OR_RETURN(Wsd w, wsdt->ToWsd());
      return w.EnumerateWorlds(4000000, relations);
    }
    Result<Wsdt> t = udb ? ImportUniform(*udb) : ImportUrel(*urel);
    MAYWSD_RETURN_IF_ERROR(t.status());
    MAYWSD_ASSIGN_OR_RETURN(Wsd w, t->ToWsd());
    return w.EnumerateWorlds(4000000, relations);
  }
};

std::vector<BackendUnderTest> MakeBackends(const Wsd& wsd) {
  std::vector<BackendUnderTest> out;
  {
    BackendUnderTest b;
    b.name = "wsd";
    b.wsd = std::make_unique<Wsd>(wsd);
    b.ops = std::make_unique<engine::WsdBackend>(*b.wsd);
    out.push_back(std::move(b));
  }
  {
    BackendUnderTest b;
    b.name = "wsdt";
    b.wsdt = std::make_unique<Wsdt>(Wsdt::FromWsd(wsd).value());
    b.ops = std::make_unique<engine::WsdtBackend>(*b.wsdt);
    out.push_back(std::move(b));
  }
  {
    BackendUnderTest b;
    b.name = "uniform";
    b.udb = std::make_unique<rel::Database>(
        ExportUniform(Wsdt::FromWsd(wsd).value()).value());
    b.ops = std::make_unique<engine::UniformBackend>(*b.udb);
    out.push_back(std::move(b));
  }
  {
    BackendUnderTest b;
    b.name = "urel";
    b.urel = std::make_unique<Urel>(
        ExportUrel(Wsdt::FromWsd(wsd).value()).value());
    b.ops = std::make_unique<engine::UrelBackend>(*b.urel);
    out.push_back(std::move(b));
  }
  return out;
}

/// Two worlds: S holds (5) in the first, nothing in the second.
Wsd TwoWorldWsd() {
  std::vector<PossibleWorld> worlds(2);
  rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
  r.AppendRow({I(1), I(1)});
  rel::Relation s1(rel::Schema::FromNames({"C"}), "S");
  s1.AppendRow({I(5)});
  rel::Relation s2(rel::Schema::FromNames({"C"}), "S");
  worlds[0].db.PutRelation(r);
  worlds[0].db.PutRelation(s1);
  worlds[0].prob = 0.25;
  worlds[1].db.PutRelation(r);
  worlds[1].db.PutRelation(s2);
  worlds[1].prob = 0.75;
  return WsdFromWorlds(worlds).value();
}

TEST(ConditionalUpdateTest, InsertGuardedByUncertainRelation) {
  // Companion to the scratch-relation leak check below: guard evaluation
  // and the update itself must release every component-store node and
  // cell once the backends die.
  store::StoreStats store_before = store::GetStoreStats();
  for (BackendUnderTest& b : MakeBackends(TwoWorldWsd())) {
    UpdateOp op = UpdateOp::InsertTuples("R", Tuples({"A", "B"},
                                                     {{I(2), I(2)}}))
                      .When(Plan::Scan("S"));
    ASSERT_TRUE(engine::ApplyUpdate(*b.ops, op).ok()) << b.name;
    ASSERT_TRUE(b.Validate().ok()) << b.name;

    // (2,2) exists exactly in the S-nonempty world: possible, not certain,
    // confidence 0.25.
    auto possible = b.ops->PossibleTuples("R");
    ASSERT_TRUE(possible.ok()) << b.name;
    EXPECT_TRUE(Contains(*possible, {I(2), I(2)})) << b.name;
    auto certain = b.ops->CertainTuples("R");
    ASSERT_TRUE(certain.ok()) << b.name;
    EXPECT_FALSE(Contains(*certain, {I(2), I(2)})) << b.name;
    EXPECT_TRUE(Contains(*certain, {I(1), I(1)})) << b.name;
    std::vector<rel::Value> t{I(2), I(2)};
    auto conf = b.ops->TupleConfidence("R", t);
    ASSERT_TRUE(conf.ok()) << b.name;
    EXPECT_NEAR(*conf, 0.25, 1e-9) << b.name;

    // No scratch (guard) relation may survive the update.
    for (const std::string& name : b.ops->RelationNames()) {
      EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
          << b.name << " leaked scratch relation " << name;
    }
  }
  store::StoreStats store_after = store::GetStoreStats();
  EXPECT_EQ(store_after.live_nodes, store_before.live_nodes)
      << "leaked component-store nodes";
  EXPECT_EQ(store_after.live_cells, store_before.live_cells)
      << "leaked component-store cells";
}

TEST(ConditionalUpdateTest, DeleteGuardedBySelection) {
  for (BackendUnderTest& b : MakeBackends(TwoWorldWsd())) {
    // Delete R tuples with A=1 in worlds where σ_{C=5}(S) is non-empty.
    UpdateOp op = UpdateOp::DeleteWhere("R", Predicate::Cmp("A", CmpOp::kEq,
                                                            I(1)))
                      .When(Plan::Select(
                          Predicate::Cmp("C", CmpOp::kEq, I(5)),
                          Plan::Scan("S")));
    ASSERT_TRUE(engine::ApplyUpdate(*b.ops, op).ok()) << b.name;
    ASSERT_TRUE(b.Validate().ok()) << b.name;
    std::vector<rel::Value> t{I(1), I(1)};
    auto conf = b.ops->TupleConfidence("R", t);
    ASSERT_TRUE(conf.ok()) << b.name;
    EXPECT_NEAR(*conf, 0.75, 1e-9) << b.name;  // survives only where S empty
  }
}

TEST(ConditionalUpdateTest, SelfConditionReadsPreUpdateState) {
  for (BackendUnderTest& b : MakeBackends(TwoWorldWsd())) {
    // "Empty R where R is non-empty": must empty R in every world (R was
    // non-empty everywhere before the update) — the guard snapshots the
    // pre-update state instead of observing its own deletions.
    UpdateOp op = UpdateOp::DeleteWhere("R", Predicate::True())
                      .When(Plan::Scan("R"));
    ASSERT_TRUE(engine::ApplyUpdate(*b.ops, op).ok()) << b.name;
    ASSERT_TRUE(b.Validate().ok()) << b.name;
    auto possible = b.ops->PossibleTuples("R");
    ASSERT_TRUE(possible.ok()) << b.name;
    EXPECT_EQ(possible->NumRows(), 0u) << b.name;
  }
}

TEST(ConditionalUpdateTest, UnconditionalDeleteAllEmptiesEveryWorld) {
  for (BackendUnderTest& b : MakeBackends(TwoWorldWsd())) {
    ASSERT_TRUE(engine::ApplyUpdate(
                    *b.ops, UpdateOp::DeleteWhere("R", Predicate::True()))
                    .ok())
        << b.name;
    ASSERT_TRUE(b.Validate().ok()) << b.name;
    auto possible = b.ops->PossibleTuples("R");
    ASSERT_TRUE(possible.ok()) << b.name;
    EXPECT_EQ(possible->NumRows(), 0u) << b.name;
    // The uncertain S is untouched.
    auto s = b.ops->PossibleTuples("S");
    ASSERT_TRUE(s.ok()) << b.name;
    EXPECT_EQ(s->NumRows(), 1u) << b.name;
  }
}

// -- Random update-sequence oracle -------------------------------------------

Predicate RandomUpdatePredicate(Rng& rng,
                                const std::vector<std::string>& attrs,
                                int depth) {
  auto cmp = [&]() {
    CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kGe};
    const std::string& lhs = attrs[rng.Uniform(attrs.size())];
    if (attrs.size() > 1 && rng.Bernoulli(0.25)) {
      return Predicate::CmpAttr(lhs, ops[rng.Uniform(4)],
                                attrs[rng.Uniform(attrs.size())]);
    }
    return Predicate::Cmp(lhs, ops[rng.Uniform(4)],
                          I(static_cast<int64_t>(rng.Uniform(3))));
  };
  if (depth <= 0 || rng.Bernoulli(0.6)) return cmp();
  switch (rng.Uniform(3)) {
    case 0:
      return Predicate::And(RandomUpdatePredicate(rng, attrs, depth - 1),
                            RandomUpdatePredicate(rng, attrs, depth - 1));
    case 1:
      return Predicate::Or(RandomUpdatePredicate(rng, attrs, depth - 1),
                           RandomUpdatePredicate(rng, attrs, depth - 1));
    default:
      return Predicate::Not(RandomUpdatePredicate(rng, attrs, depth - 1));
  }
}

UpdateOp RandomUpdateOp(Rng& rng) {
  struct Target {
    const char* name;
    std::vector<std::string> attrs;
  };
  static const Target targets[] = {
      {"R", {"A", "B"}}, {"S", {"C", "D"}}, {"R2", {"A", "B"}}};
  const Target& target = targets[rng.Uniform(3)];

  UpdateOp op = [&] {
    switch (rng.Uniform(3)) {
      case 0: {
        rel::Relation tuples(rel::Schema::FromNames(target.attrs), "tuples");
        size_t n = 1 + rng.Uniform(2);
        std::vector<rel::Value> row(target.attrs.size());
        for (size_t i = 0; i < n; ++i) {
          for (rel::Value& v : row) {
            v = I(static_cast<int64_t>(rng.Uniform(3)));
          }
          tuples.AppendRow(row);
        }
        return UpdateOp::InsertTuples(target.name, std::move(tuples));
      }
      case 1:
        return UpdateOp::DeleteWhere(
            target.name, RandomUpdatePredicate(rng, target.attrs, 1));
      default: {
        std::vector<Assignment> assignments;
        assignments.push_back(
            {target.attrs[rng.Uniform(target.attrs.size())],
             I(static_cast<int64_t>(rng.Uniform(3)))});
        return UpdateOp::ModifyWhere(
            target.name, RandomUpdatePredicate(rng, target.attrs, 1),
            std::move(assignments));
      }
    }
  }();

  if (rng.Bernoulli(0.4)) {
    // World condition over one of the OTHER relations (or the target
    // itself — the guard must snapshot).
    const Target& cond = targets[rng.Uniform(3)];
    Plan plan = Plan::Scan(cond.name);
    if (rng.Bernoulli(0.5)) {
      plan = Plan::Select(RandomUpdatePredicate(rng, cond.attrs, 0),
                          std::move(plan));
    }
    op = op.When(std::move(plan));
  }
  return op;
}

class UpdateOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(UpdateOracleProperty, AllThreeBackendsMatchPerWorldReference) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 86243 + 17);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  const std::vector<std::string> names = {"R", "S", "R2"};
  Wsd wsd = testutil::RandomWsd(rng, specs, 3);

  // Ground truth: the per-world reference over the expanded world set.
  auto truth_or = wsd.EnumerateWorlds(100000, names);
  ASSERT_TRUE(truth_or.ok());
  std::vector<PossibleWorld> truth = std::move(truth_or).value();

  std::vector<BackendUnderTest> backends = MakeBackends(wsd);
  for (int step = 0; step < 5; ++step) {
    UpdateOp op = RandomUpdateOp(rng);
    for (PossibleWorld& world : truth) {
      ASSERT_TRUE(rel::ApplyUpdate(world.db, op).ok())
          << op.ToString() << " step " << step;
    }
    for (BackendUnderTest& b : backends) {
      Status st = engine::ApplyUpdate(*b.ops, op);
      ASSERT_TRUE(st.ok())
          << b.name << " failed on " << op.ToString() << " step " << step
          << ": " << st;
      ASSERT_TRUE(b.Validate().ok())
          << b.name << " invalid after " << op.ToString() << " step "
          << step;
      auto expanded = b.Expand(names);
      ASSERT_TRUE(expanded.ok())
          << b.name << " after " << op.ToString() << ": "
          << expanded.status();
      EXPECT_TRUE(WorldSetsEquivalent(truth, *expanded))
          << b.name << " diverges from the per-world reference after "
          << op.ToString() << " at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateOracleProperty, ::testing::Range(0, 12));

// -- Query/update interleavings through the Session facade --------------------

class InterleavingProperty : public ::testing::TestWithParam<int> {};

TEST_P(InterleavingProperty, CachedThreadedSessionMatchesCacheOffSession) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 49999 + 3);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  Wsd wsd = testutil::RandomWsd(rng, specs, 3);

  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    auto cached_or = testutil::OpenSessionOver(
        kind, wsd, api::SessionOptions{.threads = 2, .cache = true});
    auto plain_or = testutil::OpenSessionOver(
        kind, wsd, api::SessionOptions{.threads = 1, .cache = false});
    ASSERT_TRUE(cached_or.ok() && plain_or.ok());
    api::Session cached = std::move(cached_or).value();
    api::Session plain = std::move(plain_or).value();

    auto compare_answers = [&](const std::string& relation) {
      auto pc = cached.PossibleTuples(relation);
      auto pp = plain.PossibleTuples(relation);
      ASSERT_TRUE(pc.ok() && pp.ok()) << relation;
      EXPECT_TRUE(pc->EqualsAsSet(*pp))
          << "possible(" << relation << ") diverges on "
          << api::BackendKindName(kind) << " seed " << GetParam();
      auto cc = cached.CertainTuples(relation);
      auto cp = plain.CertainTuples(relation);
      ASSERT_TRUE(cc.ok() && cp.ok()) << relation;
      EXPECT_TRUE(cc->EqualsAsSet(*cp))
          << "certain(" << relation << ") diverges on "
          << api::BackendKindName(kind) << " seed " << GetParam();
      for (size_t r = 0; r < pp->NumRows(); ++r) {
        std::vector<rel::Value> tuple = pp->row(r).ToRow();
        auto conf_c = cached.TupleConfidence(relation, tuple);
        auto conf_p = plain.TupleConfidence(relation, tuple);
        ASSERT_TRUE(conf_c.ok() && conf_p.ok());
        EXPECT_NEAR(*conf_c, *conf_p, 1e-9)
            << "conf(" << relation << ") diverges on "
            << api::BackendKindName(kind);
      }
    };

    int out_id = 0;
    for (int step = 0; step < 6; ++step) {
      if (rng.Bernoulli(0.5)) {
        UpdateOp op = RandomUpdateOp(rng);
        Status sc = cached.Apply(op);
        Status sp = plain.Apply(op);
        ASSERT_TRUE(sc.ok()) << op.ToString() << ": " << sc;
        ASSERT_TRUE(sp.ok()) << op.ToString() << ": " << sp;
        compare_answers(op.relation());
        // Ask again: the second round must be served from the cache yet
        // stay equal.
        compare_answers(op.relation());
      } else if (rng.Bernoulli(0.6)) {
        std::string out = "OUT" + std::to_string(out_id++);
        Plan plan = Plan::Select(
            RandomUpdatePredicate(rng, {"A", "B"}, 1),
            rng.Bernoulli(0.5) ? Plan::Scan("R") : Plan::Scan("R2"));
        ASSERT_TRUE(cached.Run(plan, out).ok());
        ASSERT_TRUE(plain.Run(plan, out).ok());
        compare_answers(out);
      } else {
        // Batched workload sharing a subtree, straight after updates: the
        // subplan cache is rebuilt per batch, so it must see the post-
        // update state.
        Plan base = Plan::Select(RandomUpdatePredicate(rng, {"A", "B"}, 0),
                                 Plan::Scan("R"));
        std::vector<Plan> workload = {
            base, Plan::Project({"A"}, base),
            Plan::Union(base, Plan::Scan("R2"))};
        std::vector<std::string> outs;
        for (int i = 0; i < 3; ++i) {
          outs.push_back("OUT" + std::to_string(out_id++));
        }
        ASSERT_TRUE(cached.RunAll(workload, outs).ok());
        ASSERT_TRUE(plain.RunAll(workload, outs).ok());
        for (const std::string& out : outs) compare_answers(out);
      }
    }
    EXPECT_GT(cached.Stats().applies, 0u);
    EXPECT_GT(cached.Stats().answer_cache_hits, 0u)
        << "answer surface never hit the cache on "
        << api::BackendKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterleavingProperty, ::testing::Range(0, 8));

// -- Answer-cache accounting --------------------------------------------------

TEST(AnswerCacheTest, HitsMissesAndInvalidation) {
  api::Session session = api::Session::Open(api::BackendKind::kWsdt);
  rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
  r.AppendRow({I(1), I(1)});
  ASSERT_TRUE(session.Register(r).ok());
  EXPECT_EQ(session.RelationVersion("R"), 1u);

  ASSERT_TRUE(session.PossibleTuples("R").ok());
  EXPECT_EQ(session.Stats().answer_cache_misses, 1u);
  EXPECT_EQ(session.Stats().answer_cache_hits, 0u);
  ASSERT_TRUE(session.PossibleTuples("R").ok());
  EXPECT_EQ(session.Stats().answer_cache_hits, 1u);

  // Apply bumps the version and invalidates: the next ask recomputes and
  // sees the inserted tuple.
  ASSERT_TRUE(
      session.Apply(UpdateOp::InsertTuples(
                        "R", Tuples({"A", "B"}, {{I(2), I(2)}})))
          .ok());
  EXPECT_EQ(session.RelationVersion("R"), 2u);
  auto possible = session.PossibleTuples("R");
  ASSERT_TRUE(possible.ok());
  EXPECT_TRUE(Contains(*possible, {I(2), I(2)}));
  EXPECT_EQ(session.Stats().answer_cache_misses, 2u);
  EXPECT_EQ(session.Stats().applies, 1u);

  // TupleConfidence caches per tuple.
  std::vector<rel::Value> t{I(2), I(2)};
  ASSERT_TRUE(session.TupleConfidence("R", t).ok());
  ASSERT_TRUE(session.TupleConfidence("R", t).ok());
  EXPECT_EQ(session.Stats().answer_cache_hits, 2u);

  // cache=false bypasses the memo entirely.
  api::Session raw =
      api::Session::Open(Wsdt(), api::SessionOptions{.cache = false});
  ASSERT_TRUE(raw.Register(r).ok());
  ASSERT_TRUE(raw.PossibleTuples("R").ok());
  ASSERT_TRUE(raw.PossibleTuples("R").ok());
  EXPECT_EQ(raw.Stats().answer_cache_hits, 0u);
  EXPECT_EQ(raw.Stats().answer_cache_misses, 0u);
}

TEST(SessionUpdateTest, ApplyAllAppliesInOrder) {
  api::Session session = api::Session::Open(api::BackendKind::kWsdt);
  rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
  ASSERT_TRUE(session.Register(r).ok());
  std::vector<UpdateOp> ops = {
      UpdateOp::InsertTuples("R", Tuples({"A", "B"},
                                         {{I(1), I(1)}, {I(2), I(2)}})),
      UpdateOp::ModifyWhere("R", Predicate::Cmp("A", CmpOp::kEq, I(1)),
                            {{"B", I(5)}}),
      UpdateOp::DeleteWhere("R", Predicate::Cmp("A", CmpOp::kEq, I(2))),
  };
  ASSERT_TRUE(session.ApplyAll(ops).ok());
  EXPECT_EQ(session.Stats().applies, 3u);
  auto possible = session.PossibleTuples("R");
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(possible->NumRows(), 1u);
  EXPECT_TRUE(Contains(*possible, {I(1), I(5)}));
}

// Updates racing pinned views: a Snapshot pinned before an Apply keeps the
// pre-update answers, a Fork written after the pin diverges privately, and
// tearing the whole family down releases the component store exactly —
// the COW break the update forced must not strand the shared payloads.
TEST(SessionUpdateTest, SnapshotAndForkTeardownAfterUpdatesReleasesStore) {
  store::StoreStats store_before = store::GetStoreStats();
  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(api::BackendKindName(kind));
    api::Session session = api::Session::Open(kind);
    rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
    r.AppendRow({I(1), I(1)});
    ASSERT_TRUE(session.Register(r).ok());

    api::Snapshot pinned = session.Snapshot();
    api::Session fork = session.Fork();

    // Parent mutates after the pin: snapshot and fork keep the old rows.
    ASSERT_TRUE(
        session
            .Apply(UpdateOp::InsertTuples(
                "R", Tuples({"A", "B"}, {{I(2), I(2)}})))
            .ok());
    auto pinned_rows = pinned.PossibleTuples("R");
    ASSERT_TRUE(pinned_rows.ok());
    EXPECT_EQ(pinned_rows->NumRows(), 1u);
    EXPECT_FALSE(Contains(*pinned_rows, {I(2), I(2)}));

    // Fork mutates privately: parent keeps its own state.
    ASSERT_TRUE(fork.Apply(UpdateOp::ModifyWhere(
                               "R", Predicate::Cmp("A", CmpOp::kEq, I(1)),
                               {{"B", I(9)}}))
                    .ok());
    auto fork_rows = fork.PossibleTuples("R");
    ASSERT_TRUE(fork_rows.ok());
    EXPECT_TRUE(Contains(*fork_rows, {I(1), I(9)}));
    auto parent_rows = session.PossibleTuples("R");
    ASSERT_TRUE(parent_rows.ok());
    EXPECT_TRUE(Contains(*parent_rows, {I(1), I(1)}));
    EXPECT_FALSE(Contains(*parent_rows, {I(1), I(9)}));
  }
  store::StoreStats store_after = store::GetStoreStats();
  EXPECT_EQ(store_after.live_nodes, store_before.live_nodes)
      << "post-update snapshot/fork teardown leaked nodes";
  EXPECT_EQ(store_after.live_cells, store_before.live_cells)
      << "post-update snapshot/fork teardown leaked cells";
}

TEST(SessionUpdateTest, ValidationRejectsBadUpdates) {
  api::Session session = api::Session::Open(api::BackendKind::kWsdt);
  rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
  ASSERT_TRUE(session.Register(r).ok());

  EXPECT_EQ(session.Apply(UpdateOp::DeleteWhere("NOPE", Predicate::True()))
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      session
          .Apply(UpdateOp::InsertTuples("R", Tuples({"A"}, {{I(1)}})))
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(session
                .Apply(UpdateOp::DeleteWhere(
                    "R", Predicate::Cmp("Z", CmpOp::kEq, I(1))))
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session
                .Apply(UpdateOp::ModifyWhere("R", Predicate::True(),
                                             {{"A", I(1)}, {"A", I(2)}}))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session
                .Apply(UpdateOp::ModifyWhere("R", Predicate::True(), {}))
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace maywsd::core
