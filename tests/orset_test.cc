#include "core/orset.h"

#include <gtest/gtest.h>

#include "core/confidence.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::S;

TEST(OrSetTest, IntroExampleWorldCount) {
  // The introduction's or-set relation: 2·2·2·4 = 32 worlds (names certain).
  OrSetRelation r(rel::Schema::FromNames({"S", "N", "M"}), "R");
  ASSERT_TRUE(r.AppendRow({{I(185), I(785)}, {S("Smith")}, {I(1), I(2)}})
                  .ok());
  ASSERT_TRUE(
      r.AppendRow({{I(185), I(186)}, {S("Brown")}, {I(1), I(2), I(3), I(4)}})
          .ok());
  EXPECT_EQ(r.WorldCount(1000), 32u);
  auto wsd = r.ToWsd();
  ASSERT_TRUE(wsd.ok());
  EXPECT_TRUE(wsd->Validate().ok());
  // WSD size is linear in the or-set relation: one component per field.
  EXPECT_EQ(wsd->NumLiveComponents(), 6u);
  EXPECT_EQ(wsd->EnumerateWorlds(100)->size(), 32u);
}

TEST(OrSetTest, ExplicitProbabilities) {
  OrSetRelation r(rel::Schema::FromNames({"A"}), "R");
  ASSERT_TRUE(r.AppendRow({OrSetField({I(1), I(2)}, {0.7, 0.3})}).ok());
  auto wsd = r.ToWsd().value();
  auto worlds = CollapseWorlds(wsd.EnumerateWorlds(10).value());
  ASSERT_EQ(worlds.size(), 2u);
  for (const auto& w : worlds) {
    int64_t v = w.db.GetRelation("R").value()->row(0)[0].AsInt();
    EXPECT_NEAR(w.prob, v == 1 ? 0.7 : 0.3, 1e-9);
  }
}

TEST(OrSetTest, RejectsBadRows) {
  OrSetRelation r(rel::Schema::FromNames({"A", "B"}), "R");
  EXPECT_FALSE(r.AppendRow({{I(1)}}).ok());              // arity
  EXPECT_FALSE(r.AppendRow({{I(1)}, OrSetField{}}).ok());  // empty or-set
  EXPECT_FALSE(
      r.AppendRow({{I(1)}, OrSetField({I(1), I(2)}, {0.5, 0.2})}).ok());
}

/// The tuple-independent probabilistic database of Figure 6: S with s1
/// (conf 0.8) and s2 (conf 0.5), T with t1 (conf 0.6) — eight worlds with
/// the probabilities listed in Figure 6(b).
TupleIndependentDb Figure6() {
  TupleIndependentDb db;
  EXPECT_TRUE(db.AddRelation("S", rel::Schema::FromNames({"A", "B"})).ok());
  EXPECT_TRUE(db.AddRelation("T", rel::Schema::FromNames({"C", "D"})).ok());
  EXPECT_TRUE(db.AddTuple("S", {S("m"), I(1)}, 0.8).ok());
  EXPECT_TRUE(db.AddTuple("S", {S("n"), I(1)}, 0.5).ok());
  EXPECT_TRUE(db.AddTuple("T", {I(1), S("p")}, 0.6).ok());
  return db;
}

TEST(TupleIndependentTest, Figure6WorldProbabilities) {
  TupleIndependentDb db = Figure6();
  EXPECT_EQ(db.WorldCount(100), 8u);
  auto wsd = db.ToWsd();
  ASSERT_TRUE(wsd.ok());
  EXPECT_TRUE(wsd->Validate().ok());
  // One component per tuple (Figure 7).
  EXPECT_EQ(wsd->NumLiveComponents(), 3u);
  auto worlds = CollapseWorlds(wsd->EnumerateWorlds(100).value());
  ASSERT_EQ(worlds.size(), 8u);
  // Check D3 = {s2, t1} with probability (1-0.8)·0.5·0.6 = 0.06.
  bool found = false;
  for (const auto& w : worlds) {
    const rel::Relation* s = w.db.GetRelation("S").value();
    const rel::Relation* t = w.db.GetRelation("T").value();
    if (s->NumRows() == 1 && s->row(0)[0] == S("n") && t->NumRows() == 1) {
      EXPECT_NEAR(w.prob, 0.06, 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TupleIndependentTest, ConfidenceRecoversInputConfidences) {
  auto wsd = Figure6().ToWsd().value();
  std::vector<rel::Value> s1{S("m"), I(1)};
  std::vector<rel::Value> s2{S("n"), I(1)};
  std::vector<rel::Value> t1{I(1), S("p")};
  EXPECT_NEAR(TupleConfidence(wsd, "S", s1).value(), 0.8, 1e-9);
  EXPECT_NEAR(TupleConfidence(wsd, "S", s2).value(), 0.5, 1e-9);
  EXPECT_NEAR(TupleConfidence(wsd, "T", t1).value(), 0.6, 1e-9);
}

TEST(TupleIndependentTest, CertainTupleHasNoEmptyWorld) {
  TupleIndependentDb db;
  ASSERT_TRUE(db.AddRelation("S", rel::Schema::FromNames({"A"})).ok());
  ASSERT_TRUE(db.AddTuple("S", {I(1)}, 1.0).ok());
  auto wsd = db.ToWsd().value();
  auto worlds = wsd.EnumerateWorlds(10).value();
  ASSERT_EQ(worlds.size(), 1u);
  EXPECT_EQ(worlds[0].db.GetRelation("S").value()->NumRows(), 1u);
}

TEST(TupleIndependentTest, RejectsBadInput) {
  TupleIndependentDb db;
  ASSERT_TRUE(db.AddRelation("S", rel::Schema::FromNames({"A"})).ok());
  EXPECT_FALSE(db.AddTuple("Z", {I(1)}, 0.5).ok());
  EXPECT_FALSE(db.AddTuple("S", {I(1), I(2)}, 0.5).ok());
  EXPECT_FALSE(db.AddTuple("S", {I(1)}, 1.5).ok());
}

}  // namespace
}  // namespace maywsd::core
