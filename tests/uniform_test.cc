#include "core/uniform.h"

#include <gtest/gtest.h>

#include "census/ipums.h"
#include "census/noise.h"
#include "core/engine/plan_driver.h"
#include "core/engine/uniform_backend.h"
#include "core/wsdt_algebra.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::Q;
using testutil::S;

/// The WSDT behind the UWSDT of Figure 8: t0.S, t1.S share component C1
/// (0.2/0.4/0.4), t0.M has C2 (0.7/0.3); t1.M is certain (value 3).
Wsdt Figure8Wsdt() {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"S", "N", "M"}), "R");
  tmpl.AppendRow({Q(), S("Smith"), Q()});
  tmpl.AppendRow({Q(), S("Brown"), I(3)});
  EXPECT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c1({FieldKey("R", 0, "S"), FieldKey("R", 1, "S")});
  c1.AddWorld({I(185), I(186)}, 0.2);
  c1.AddWorld({I(785), I(185)}, 0.4);
  c1.AddWorld({I(785), I(186)}, 0.4);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c1)).ok());
  Component c2({FieldKey("R", 0, "M")});
  c2.AddWorld({I(1)}, 0.7);
  c2.AddWorld({I(2)}, 0.3);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c2)).ok());
  return wsdt;
}

TEST(UniformTest, ExportMatchesFigure8Counts) {
  auto db = ExportUniform(Figure8Wsdt());
  ASSERT_TRUE(db.ok());
  // Figure 8: C has 8 rows (6 for the S component, 2 for t0.M), F has 3
  // placeholder mappings, W has 5 local worlds.
  EXPECT_EQ(db->GetRelation(kUniformC).value()->NumRows(), 8u);
  EXPECT_EQ(db->GetRelation(kUniformF).value()->NumRows(), 3u);
  EXPECT_EQ(db->GetRelation(kUniformW).value()->NumRows(), 5u);
  // The template kept its certain values and placeholders.
  const rel::Relation* r0 = db->GetRelation("R").value();
  EXPECT_EQ(r0->NumRows(), 2u);
  EXPECT_TRUE(r0->row(0)[1].is_question());  // S of t0 (col 0 = TID)
  EXPECT_EQ(r0->row(1)[3], I(3));            // M of t1 is certain
}

TEST(UniformTest, ExportImportRoundTrip) {
  Wsdt wsdt = Figure8Wsdt();
  auto before =
      CollapseWorlds(wsdt.ToWsd().value().EnumerateWorlds(1000).value());
  auto db = ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  auto back = ImportUniform(*db);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->Validate().ok());
  auto after =
      CollapseWorlds(back->ToWsd().value().EnumerateWorlds(1000).value());
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(UniformTest, RoundTripWithBottomEncodedAsAbsence) {
  // A ⊥ value (conditional tuple presence) must survive the round trip via
  // the "missing value" encoding.
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({Q()});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c({FieldKey("R", 0, "A")});
  c.AddWorld({I(4)}, 0.5);
  c.AddWorld({testutil::Bot()}, 0.5);
  ASSERT_TRUE(wsdt.AddComponent(std::move(c)).ok());

  auto db = ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  // Only one C row: the ⊥ local world is encoded by absence.
  EXPECT_EQ(db->GetRelation(kUniformC).value()->NumRows(), 1u);
  EXPECT_EQ(db->GetRelation(kUniformW).value()->NumRows(), 2u);
  auto back = ImportUniform(*db);
  ASSERT_TRUE(back.ok());
  auto before = wsdt.ToWsd().value().EnumerateWorlds(100).value();
  auto after = back->ToWsd().value().EnumerateWorlds(100).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(UniformTest, Figure16SelectConstMatchesNativePath) {
  // Literal Figure 16 rewriting vs. the native WSDT selection.
  for (auto [attr, op, constant] :
       {std::tuple<const char*, rel::CmpOp, int64_t>{"S", rel::CmpOp::kEq,
                                                     785},
        {"M", rel::CmpOp::kEq, 1},
        {"S", rel::CmpOp::kGt, 200},
        {"M", rel::CmpOp::kLt, 9}}) {
    Wsdt wsdt = Figure8Wsdt();
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        UniformSelectConst(*db, "R", "P", attr, op, I(constant)).ok());
    auto uniform_result = ImportUniform(*db, {"R", "P"});
    ASSERT_TRUE(uniform_result.ok());
    ASSERT_TRUE(uniform_result->Validate().ok());
    auto uniform_worlds = uniform_result->ToWsd()
                              .value()
                              .EnumerateWorlds(10000, {"P"})
                              .value();

    Wsdt native = Figure8Wsdt();
    ASSERT_TRUE(
        WsdtSelect(native, "R", "P",
                   rel::Predicate::Cmp(attr, op, I(constant)))
            .ok());
    auto native_worlds =
        native.ToWsd().value().EnumerateWorlds(10000, {"P"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uniform_worlds, native_worlds))
        << attr << " " << rel::CmpOpName(op) << " " << constant;
  }
}

TEST(UniformTest, Figure16RemovesTuplesWithEmptyPlaceholders) {
  // σ_{M=9}: t0's M-placeholder loses every value, so t0 leaves P⁰; t1's
  // certain M=3 fails outright — P is empty.
  Wsdt wsdt = Figure8Wsdt();
  auto db = ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      UniformSelectConst(*db, "R", "P", "M", rel::CmpOp::kEq, I(9)).ok());
  EXPECT_EQ(db->GetRelation("P").value()->NumRows(), 0u);
}

/// Random small WSDT for rewriting-equivalence tests.
Wsdt RandomSmallWsdt(uint64_t seed) {
  Rng rng(seed);
  Wsd wsd = testutil::RandomWsd(
      rng, {{"R", {"A", "B"}, 2, 3}, {"S", {"C", "D"}, 2, 3},
            {"R2", {"A", "B"}, 2, 3}},
      3);
  return Wsdt::FromWsd(wsd).value();
}

TEST(UniformTest, UniformUnionMatchesNativePath) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Wsdt wsdt = RandomSmallWsdt(seed);
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformUnion(*db, "R", "R2", "T").ok());
    auto uniform = ImportUniform(*db, {"R", "R2", "S", "T"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

    Wsdt native = RandomSmallWsdt(seed);
    ASSERT_TRUE(WsdtUnion(native, "R", "R2", "T").ok());
    auto nw =
        native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uw, nw)) << "seed " << seed;
  }
}

TEST(UniformTest, UniformRenameMatchesNativePath) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Wsdt wsdt = RandomSmallWsdt(seed);
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformRename(*db, "R", "T", {{"A", "X"}}).ok());
    auto uniform = ImportUniform(*db, {"R", "R2", "S", "T"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

    Wsdt native = RandomSmallWsdt(seed);
    ASSERT_TRUE(WsdtRename(native, "R", "T", {{"A", "X"}}).ok());
    auto nw =
        native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uw, nw)) << "seed " << seed;
  }
}

TEST(UniformTest, UniformProductMatchesNativePath) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Wsdt wsdt = RandomSmallWsdt(seed);
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformProduct(*db, "R", "S", "T").ok());
    auto uniform = ImportUniform(*db, {"R", "R2", "S", "T"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

    Wsdt native = RandomSmallWsdt(seed);
    ASSERT_TRUE(WsdtProduct(native, "R", "S", "T").ok());
    auto nw =
        native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uw, nw)) << "seed " << seed;
  }
}

TEST(UniformTest, UniformProductRejectsCollidingAttrs) {
  Wsdt wsdt = RandomSmallWsdt(1);
  auto db = ExportUniform(wsdt).value();
  EXPECT_FALSE(UniformProduct(db, "R", "R2", "T").ok());
}

TEST(UniformTest, UniformSelectOnRandomCensusAgreesWithNative) {
  // Beyond the Figure 8 golden case: random census-shaped instances.
  census::CensusSchema schema = census::CensusSchema::Standard();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    rel::Relation base = census::GenerateCensus(schema, 15, seed);
    auto wsdt = census::MakeNoisyWsdt(base, schema, 0.02, seed + 7).value();
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformSelectConst(*db, "R", "P", "MARITAL",
                                   rel::CmpOp::kEq, I(1))
                    .ok());
    auto uniform = ImportUniform(*db, {"R", "P"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(4000000, {"P"});
    if (!uw.ok()) continue;  // too many worlds for the oracle — skip seed

    Wsdt native = census::MakeNoisyWsdt(base, schema, 0.02, seed + 7).value();
    ASSERT_TRUE(WsdtSelect(native, "R", "P",
                           rel::Predicate::Cmp("MARITAL", rel::CmpOp::kEq,
                                               I(1)))
                    .ok());
    auto nw = native.ToWsd().value().EnumerateWorlds(4000000, {"P"});
    ASSERT_TRUE(nw.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*uw, *nw)) << "seed " << seed;
  }
}

TEST(UniformTest, ImportRejectsDanglingReferences) {
  Wsdt wsdt = Figure8Wsdt();
  auto db = ExportUniform(wsdt).value();
  // Corrupt F with a reference to a non-existent tuple.
  rel::Relation* f = db.GetMutableRelation(kUniformF).value();
  f->AppendRow({S("R"), I(99), S("S"), I(0)});
  EXPECT_FALSE(ImportUniform(db).ok());
}

TEST(UniformTest, ValidateUniformAcceptsExportsAndCatchesCorruption) {
  Wsdt wsdt = Figure8Wsdt();
  ASSERT_TRUE(ValidateUniform(ExportUniform(wsdt).value()).ok());

  // An orphaned W row (component no relation references) is caught …
  rel::Database db = ExportUniform(wsdt).value();
  db.GetMutableRelation(kUniformW).value()->AppendRow(
      {I(99), I(0), rel::Value::Double(1.0)});
  EXPECT_FALSE(ValidateUniform(db).ok());
  // … and UniformCompact garbage-collects it.
  ASSERT_TRUE(UniformCompact(db).ok());
  EXPECT_TRUE(ValidateUniform(db).ok());

  // An orphaned C row (value without a placeholder) is caught.
  db = ExportUniform(wsdt).value();
  db.GetMutableRelation(kUniformC).value()->AppendRow(
      {S("R"), I(1), S("N"), I(0), S("X")});
  EXPECT_FALSE(ValidateUniform(db).ok());

  // A duplicate F coverage of one placeholder is caught.
  db = ExportUniform(wsdt).value();
  rel::TupleRef first = db.GetRelation(kUniformF).value()->row(0);
  db.GetMutableRelation(kUniformF).value()->AppendRow(first.span());
  EXPECT_FALSE(ValidateUniform(db).ok());
}

/// Satellite property: Export → (engine ops) → Import must round-trip.
/// Random plans run against the uniform store through the engine driver;
/// afterwards the store must still satisfy the C/F/W referential
/// invariants (no orphaned rows left behind by the Figure 16 rewritings or
/// the scratch-relation lifecycle) and import to the same world set that
/// the WSDT path computes natively.
class UniformEngineRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(UniformEngineRoundTrip, EngineOpsPreserveStoreIntegrity) {
  Rng rng(GetParam() * 60013 + 29);
  for (int round = 0; round < 3; ++round) {
    Wsdt wsdt = RandomSmallWsdt(rng.Uniform(1u << 20));
    auto db_or = ExportUniform(wsdt);
    ASSERT_TRUE(db_or.ok());
    rel::Database db = std::move(db_or).value();

    // A random operator chain through the driver: σ, π, ∪, −, ×/⋈ mixes.
    rel::Plan plan = [&] {
      switch (rng.Uniform(4)) {
        case 0:
          return rel::Plan::Project(
              {"A"}, rel::Plan::Select(
                         rel::Predicate::Cmp("B", rel::CmpOp::kLt,
                                             I(static_cast<int64_t>(
                                                 rng.Uniform(3)))),
                         rel::Plan::Scan("R")));
        case 1:
          return rel::Plan::Difference(
              rel::Plan::Union(rel::Plan::Scan("R"), rel::Plan::Scan("R2")),
              rel::Plan::Scan("R2"));
        case 2:
          return rel::Plan::Join(
              rel::Predicate::CmpAttr("A", rel::CmpOp::kEq, "C"),
              rel::Plan::Scan("R"), rel::Plan::Scan("S"));
        default:
          return rel::Plan::Select(
              rel::Predicate::CmpAttr("X", rel::CmpOp::kGe, "B"),
              rel::Plan::Rename({{"A", "X"}}, rel::Plan::Scan("R")));
      }
    }();

    engine::UniformBackend backend(db);
    Status st = engine::Evaluate(backend, plan, "OUT");
    ASSERT_TRUE(st.ok()) << plan.ToString() << ": " << st;

    // No scratch leaks, no orphaned C/F/W rows.
    for (const std::string& name : db.Names()) {
      EXPECT_NE(name.rfind("__eng_tmp", 0), 0u)
          << "leaked scratch relation " << name;
    }
    Status integrity = ValidateUniform(db);
    EXPECT_TRUE(integrity.ok()) << plan.ToString() << ": " << integrity;

    // Import round-trips to the world set the WSDT path computes.
    auto back = ImportUniform(db);
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_TRUE(back->Validate().ok());
    auto uniform_worlds =
        back->ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
    ASSERT_TRUE(uniform_worlds.ok());

    Wsdt native = wsdt;
    ASSERT_TRUE(WsdtEvaluate(native, plan, "OUT").ok()) << plan.ToString();
    auto native_worlds =
        native.ToWsd().value().EnumerateWorlds(4000000, {"OUT"});
    ASSERT_TRUE(native_worlds.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*uniform_worlds, *native_worlds))
        << plan.ToString() << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformEngineRoundTrip,
                         ::testing::Range(0, 10));

TEST(UniformTest, SelectAttrAttrMatchesNativePath) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    for (rel::CmpOp op : {rel::CmpOp::kEq, rel::CmpOp::kNe, rel::CmpOp::kLt,
                          rel::CmpOp::kGe}) {
      Wsdt wsdt = RandomSmallWsdt(seed);
      auto db = ExportUniform(wsdt);
      ASSERT_TRUE(db.ok());
      ASSERT_TRUE(UniformSelectAttrAttr(*db, "R", "T", "A", op, "B").ok());
      ASSERT_TRUE(ValidateUniform(*db).ok())
          << "seed " << seed << " " << rel::CmpOpName(op);
      auto uniform = ImportUniform(*db, {"R", "R2", "S", "T"});
      ASSERT_TRUE(uniform.ok()) << uniform.status();
      auto uw =
          uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

      Wsdt native = RandomSmallWsdt(seed);
      ASSERT_TRUE(WsdtSelect(native, "R", "T",
                             rel::Predicate::CmpAttr("A", op, "B"))
                      .ok());
      auto nw =
          native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
      EXPECT_TRUE(WorldSetsEquivalent(uw, nw))
          << "seed " << seed << " " << rel::CmpOpName(op);
    }
  }
}

/// A and B of the same tuple in *different* components: σ_{A=B} must merge
/// them (the independence product on W/F/C) and then filter per product
/// world. A ⊥ world for A additionally encodes conditional presence — the
/// tuple must stay absent in those worlds.
TEST(UniformTest, SelectAttrAttrMergesCrossComponentFields) {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({Q(), Q()});        // both uncertain, independent
  tmpl.AppendRow({I(5), I(5)});      // certain, satisfies A=B
  tmpl.AppendRow({I(6), I(7)});      // certain, fails A=B
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component ca({FieldKey("R", 0, "A")});
  ca.AddWorld({I(1)}, 0.5);
  ca.AddWorld({I(2)}, 0.3);
  ca.AddWorld({testutil::Bot()}, 0.2);  // tuple absent in this world
  ASSERT_TRUE(wsdt.AddComponent(std::move(ca)).ok());
  Component cb({FieldKey("R", 0, "B")});
  cb.AddWorld({I(1)}, 0.4);
  cb.AddWorld({I(2)}, 0.6);
  ASSERT_TRUE(wsdt.AddComponent(std::move(cb)).ok());

  auto db = ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      UniformSelectAttrAttr(*db, "R", "T", "A", rel::CmpOp::kEq, "B").ok());
  ASSERT_TRUE(ValidateUniform(*db).ok());
  auto uniform = ImportUniform(*db, {"R", "T"});
  ASSERT_TRUE(uniform.ok()) << uniform.status();
  auto uw = uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

  Wsdt native;
  {
    rel::Relation t2(rel::Schema::FromNames({"A", "B"}), "R");
    t2.AppendRow({Q(), Q()});
    t2.AppendRow({I(5), I(5)});
    t2.AppendRow({I(6), I(7)});
    ASSERT_TRUE(native.AddTemplateRelation(std::move(t2)).ok());
    Component ca2({FieldKey("R", 0, "A")});
    ca2.AddWorld({I(1)}, 0.5);
    ca2.AddWorld({I(2)}, 0.3);
    ca2.AddWorld({testutil::Bot()}, 0.2);
    ASSERT_TRUE(native.AddComponent(std::move(ca2)).ok());
    Component cb2({FieldKey("R", 0, "B")});
    cb2.AddWorld({I(1)}, 0.4);
    cb2.AddWorld({I(2)}, 0.6);
    ASSERT_TRUE(native.AddComponent(std::move(cb2)).ok());
  }
  ASSERT_TRUE(WsdtSelect(native, "R", "T",
                         rel::Predicate::CmpAttr("A", rel::CmpOp::kEq, "B"))
                  .ok());
  auto nw = native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
  EXPECT_TRUE(WorldSetsEquivalent(uw, nw));

  // P(t0 ∈ T) = P(A=B, A≠⊥) = 0.5·0.4 + 0.3·0.6 = 0.38.
  Wsd check = uniform->ToWsd().value();
  std::vector<PossibleWorld> check_worlds =
      check.EnumerateWorlds(1000000, {"T"}).value();
  double mass = 0;
  for (const PossibleWorld& w : check_worlds) {
    auto t = w.db.GetRelation("T");
    if (t.ok() && t.value()->ContainsRow(std::vector<rel::Value>{I(1), I(1)})) {
      mass += w.prob;
    }
    if (t.ok() && t.value()->ContainsRow(std::vector<rel::Value>{I(2), I(2)})) {
      mass += w.prob;
    }
  }
  EXPECT_NEAR(mass, 0.38, 1e-12);
}

/// The satellite's contract at the Session layer: an attribute–attribute
/// selection on the uniform backend runs natively — zero import → template
/// → export round trips — and still agrees with the wsd backend.
TEST(UniformTest, SessionSelectAttrAttrPaysNoRoundTrip) {
  Rng rng(404);
  Wsd wsd = testutil::RandomWsd(rng, {{"R", {"A", "B"}, 3, 3}}, 4);
  rel::Plan plan = rel::Plan::Select(
      rel::Predicate::CmpAttr("A", rel::CmpOp::kEq, "B"),
      rel::Plan::Scan("R"));

  auto uniform = testutil::OpenSessionOver(api::BackendKind::kUniform, wsd);
  ASSERT_TRUE(uniform.ok());
  ASSERT_TRUE(uniform->Run(plan, "P").ok());
  EXPECT_EQ(uniform->Stats().round_trips, 0u)
      << "select[AθB] must not fall back to the template semantics";

  auto reference = testutil::OpenSessionOver(api::BackendKind::kWsd, wsd);
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE(reference->Run(plan, "P").ok());
  auto up = uniform->PossibleTuples("P");
  auto rp = reference->PossibleTuples("P");
  ASSERT_TRUE(up.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_TRUE(up->EqualsAsSet(*rp));
}

}  // namespace
}  // namespace maywsd::core
