#include "core/uniform.h"

#include <gtest/gtest.h>

#include "census/ipums.h"
#include "census/noise.h"
#include "core/wsdt_algebra.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::Q;
using testutil::S;

/// The WSDT behind the UWSDT of Figure 8: t0.S, t1.S share component C1
/// (0.2/0.4/0.4), t0.M has C2 (0.7/0.3); t1.M is certain (value 3).
Wsdt Figure8Wsdt() {
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"S", "N", "M"}), "R");
  tmpl.AppendRow({Q(), S("Smith"), Q()});
  tmpl.AppendRow({Q(), S("Brown"), I(3)});
  EXPECT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c1({FieldKey("R", 0, "S"), FieldKey("R", 1, "S")});
  c1.AddWorld({I(185), I(186)}, 0.2);
  c1.AddWorld({I(785), I(185)}, 0.4);
  c1.AddWorld({I(785), I(186)}, 0.4);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c1)).ok());
  Component c2({FieldKey("R", 0, "M")});
  c2.AddWorld({I(1)}, 0.7);
  c2.AddWorld({I(2)}, 0.3);
  EXPECT_TRUE(wsdt.AddComponent(std::move(c2)).ok());
  return wsdt;
}

TEST(UniformTest, ExportMatchesFigure8Counts) {
  auto db = ExportUniform(Figure8Wsdt());
  ASSERT_TRUE(db.ok());
  // Figure 8: C has 8 rows (6 for the S component, 2 for t0.M), F has 3
  // placeholder mappings, W has 5 local worlds.
  EXPECT_EQ(db->GetRelation(kUniformC).value()->NumRows(), 8u);
  EXPECT_EQ(db->GetRelation(kUniformF).value()->NumRows(), 3u);
  EXPECT_EQ(db->GetRelation(kUniformW).value()->NumRows(), 5u);
  // The template kept its certain values and placeholders.
  const rel::Relation* r0 = db->GetRelation("R").value();
  EXPECT_EQ(r0->NumRows(), 2u);
  EXPECT_TRUE(r0->row(0)[1].is_question());  // S of t0 (col 0 = TID)
  EXPECT_EQ(r0->row(1)[3], I(3));            // M of t1 is certain
}

TEST(UniformTest, ExportImportRoundTrip) {
  Wsdt wsdt = Figure8Wsdt();
  auto before =
      CollapseWorlds(wsdt.ToWsd().value().EnumerateWorlds(1000).value());
  auto db = ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  auto back = ImportUniform(*db);
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->Validate().ok());
  auto after =
      CollapseWorlds(back->ToWsd().value().EnumerateWorlds(1000).value());
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(UniformTest, RoundTripWithBottomEncodedAsAbsence) {
  // A ⊥ value (conditional tuple presence) must survive the round trip via
  // the "missing value" encoding.
  Wsdt wsdt;
  rel::Relation tmpl(rel::Schema::FromNames({"A"}), "R");
  tmpl.AppendRow({Q()});
  ASSERT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  Component c({FieldKey("R", 0, "A")});
  c.AddWorld({I(4)}, 0.5);
  c.AddWorld({testutil::Bot()}, 0.5);
  ASSERT_TRUE(wsdt.AddComponent(std::move(c)).ok());

  auto db = ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  // Only one C row: the ⊥ local world is encoded by absence.
  EXPECT_EQ(db->GetRelation(kUniformC).value()->NumRows(), 1u);
  EXPECT_EQ(db->GetRelation(kUniformW).value()->NumRows(), 2u);
  auto back = ImportUniform(*db);
  ASSERT_TRUE(back.ok());
  auto before = wsdt.ToWsd().value().EnumerateWorlds(100).value();
  auto after = back->ToWsd().value().EnumerateWorlds(100).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(UniformTest, Figure16SelectConstMatchesNativePath) {
  // Literal Figure 16 rewriting vs. the native WSDT selection.
  for (auto [attr, op, constant] :
       {std::tuple<const char*, rel::CmpOp, int64_t>{"S", rel::CmpOp::kEq,
                                                     785},
        {"M", rel::CmpOp::kEq, 1},
        {"S", rel::CmpOp::kGt, 200},
        {"M", rel::CmpOp::kLt, 9}}) {
    Wsdt wsdt = Figure8Wsdt();
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        UniformSelectConst(*db, "R", "P", attr, op, I(constant)).ok());
    auto uniform_result = ImportUniform(*db, {"R", "P"});
    ASSERT_TRUE(uniform_result.ok());
    ASSERT_TRUE(uniform_result->Validate().ok());
    auto uniform_worlds = uniform_result->ToWsd()
                              .value()
                              .EnumerateWorlds(10000, {"P"})
                              .value();

    Wsdt native = Figure8Wsdt();
    ASSERT_TRUE(
        WsdtSelect(native, "R", "P",
                   rel::Predicate::Cmp(attr, op, I(constant)))
            .ok());
    auto native_worlds =
        native.ToWsd().value().EnumerateWorlds(10000, {"P"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uniform_worlds, native_worlds))
        << attr << " " << rel::CmpOpName(op) << " " << constant;
  }
}

TEST(UniformTest, Figure16RemovesTuplesWithEmptyPlaceholders) {
  // σ_{M=9}: t0's M-placeholder loses every value, so t0 leaves P⁰; t1's
  // certain M=3 fails outright — P is empty.
  Wsdt wsdt = Figure8Wsdt();
  auto db = ExportUniform(wsdt);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(
      UniformSelectConst(*db, "R", "P", "M", rel::CmpOp::kEq, I(9)).ok());
  EXPECT_EQ(db->GetRelation("P").value()->NumRows(), 0u);
}

/// Random small WSDT for rewriting-equivalence tests.
Wsdt RandomSmallWsdt(uint64_t seed) {
  Rng rng(seed);
  Wsd wsd = testutil::RandomWsd(
      rng, {{"R", {"A", "B"}, 2, 3}, {"S", {"C", "D"}, 2, 3},
            {"R2", {"A", "B"}, 2, 3}},
      3);
  return Wsdt::FromWsd(wsd).value();
}

TEST(UniformTest, UniformUnionMatchesNativePath) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Wsdt wsdt = RandomSmallWsdt(seed);
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformUnion(*db, "R", "R2", "T").ok());
    auto uniform = ImportUniform(*db, {"R", "R2", "S", "T"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

    Wsdt native = RandomSmallWsdt(seed);
    ASSERT_TRUE(WsdtUnion(native, "R", "R2", "T").ok());
    auto nw =
        native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uw, nw)) << "seed " << seed;
  }
}

TEST(UniformTest, UniformRenameMatchesNativePath) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Wsdt wsdt = RandomSmallWsdt(seed);
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformRename(*db, "R", "T", {{"A", "X"}}).ok());
    auto uniform = ImportUniform(*db, {"R", "R2", "S", "T"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

    Wsdt native = RandomSmallWsdt(seed);
    ASSERT_TRUE(WsdtRename(native, "R", "T", {{"A", "X"}}).ok());
    auto nw =
        native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uw, nw)) << "seed " << seed;
  }
}

TEST(UniformTest, UniformProductMatchesNativePath) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Wsdt wsdt = RandomSmallWsdt(seed);
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformProduct(*db, "R", "S", "T").ok());
    auto uniform = ImportUniform(*db, {"R", "R2", "S", "T"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();

    Wsdt native = RandomSmallWsdt(seed);
    ASSERT_TRUE(WsdtProduct(native, "R", "S", "T").ok());
    auto nw =
        native.ToWsd().value().EnumerateWorlds(1000000, {"T"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(uw, nw)) << "seed " << seed;
  }
}

TEST(UniformTest, UniformProductRejectsCollidingAttrs) {
  Wsdt wsdt = RandomSmallWsdt(1);
  auto db = ExportUniform(wsdt).value();
  EXPECT_FALSE(UniformProduct(db, "R", "R2", "T").ok());
}

TEST(UniformTest, UniformSelectOnRandomCensusAgreesWithNative) {
  // Beyond the Figure 8 golden case: random census-shaped instances.
  census::CensusSchema schema = census::CensusSchema::Standard();
  for (uint64_t seed = 0; seed < 3; ++seed) {
    rel::Relation base = census::GenerateCensus(schema, 15, seed);
    auto wsdt = census::MakeNoisyWsdt(base, schema, 0.02, seed + 7).value();
    auto db = ExportUniform(wsdt);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(UniformSelectConst(*db, "R", "P", "MARITAL",
                                   rel::CmpOp::kEq, I(1))
                    .ok());
    auto uniform = ImportUniform(*db, {"R", "P"});
    ASSERT_TRUE(uniform.ok()) << uniform.status();
    auto uw =
        uniform->ToWsd().value().EnumerateWorlds(4000000, {"P"});
    if (!uw.ok()) continue;  // too many worlds for the oracle — skip seed

    Wsdt native = census::MakeNoisyWsdt(base, schema, 0.02, seed + 7).value();
    ASSERT_TRUE(WsdtSelect(native, "R", "P",
                           rel::Predicate::Cmp("MARITAL", rel::CmpOp::kEq,
                                               I(1)))
                    .ok());
    auto nw = native.ToWsd().value().EnumerateWorlds(4000000, {"P"});
    ASSERT_TRUE(nw.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*uw, *nw)) << "seed " << seed;
  }
}

TEST(UniformTest, ImportRejectsDanglingReferences) {
  Wsdt wsdt = Figure8Wsdt();
  auto db = ExportUniform(wsdt).value();
  // Corrupt F with a reference to a non-existent tuple.
  rel::Relation* f = db.GetMutableRelation(kUniformF).value();
  f->AppendRow({S("R"), I(99), S("S"), I(0)});
  EXPECT_FALSE(ImportUniform(db).ok());
}

}  // namespace
}  // namespace maywsd::core
