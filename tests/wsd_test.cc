#include "core/wsd.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using testutil::I;
using testutil::S;

/// The introduction's census forms (Example 1): two tuples over R[S,N,M],
/// each field an independent component — 2·1·2·2·1·4 = 32 worlds.
Wsd IntroWsd() {
  Wsd wsd;
  EXPECT_TRUE(wsd.AddRelation("R", rel::Schema::FromNames({"S", "N", "M"}), 2)
                  .ok());
  auto add1 = [&](TupleId t, const char* attr,
                  std::vector<rel::Value> values) {
    Component comp({FieldKey("R", t, attr)});
    double p = 1.0 / static_cast<double>(values.size());
    for (const rel::Value& v : values) comp.AddWorld({v}, p);
    EXPECT_TRUE(wsd.AddComponent(std::move(comp)).ok());
  };
  add1(0, "S", {I(185), I(785)});
  add1(0, "N", {S("Smith")});
  add1(0, "M", {I(1), I(2)});
  add1(1, "S", {I(185), I(186)});
  add1(1, "N", {S("Brown")});
  add1(1, "M", {I(1), I(2), I(3), I(4)});
  return wsd;
}

TEST(WsdTest, IntroExampleHas32Worlds) {
  Wsd wsd = IntroWsd();
  EXPECT_TRUE(wsd.Validate().ok());
  EXPECT_EQ(wsd.NumLiveComponents(), 6u);
  EXPECT_EQ(wsd.WorldCombinationCount(1000), 32u);
  auto worlds = wsd.EnumerateWorlds(100);
  ASSERT_TRUE(worlds.ok());
  EXPECT_EQ(worlds->size(), 32u);
  double total = 0;
  for (const auto& w : *worlds) total += w.prob;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(WsdTest, AddComponentValidation) {
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A"}), 1).ok());
  // Unknown relation.
  Component c1({FieldKey("Z", 0, "A")});
  c1.AddWorld({I(1)}, 1.0);
  EXPECT_EQ(wsd.AddComponent(std::move(c1)).code(), StatusCode::kNotFound);
  // Unknown attribute.
  Component c2({FieldKey("R", 0, "Z")});
  c2.AddWorld({I(1)}, 1.0);
  EXPECT_EQ(wsd.AddComponent(std::move(c2)).code(), StatusCode::kNotFound);
  // Tuple id out of range.
  Component c3({FieldKey("R", 5, "A")});
  c3.AddWorld({I(1)}, 1.0);
  EXPECT_EQ(wsd.AddComponent(std::move(c3)).code(),
            StatusCode::kInvalidArgument);
  // Good one, then a duplicate field.
  Component c4({FieldKey("R", 0, "A")});
  c4.AddWorld({I(1)}, 1.0);
  EXPECT_TRUE(wsd.AddComponent(std::move(c4)).ok());
  Component c5({FieldKey("R", 0, "A")});
  c5.AddWorld({I(2)}, 1.0);
  EXPECT_EQ(wsd.AddComponent(std::move(c5)).code(),
            StatusCode::kAlreadyExists);
}

TEST(WsdTest, ComposeInPlacePreservesRep) {
  Wsd wsd = IntroWsd();
  auto before = wsd.EnumerateWorlds(100).value();
  // Compose the components of R.t0.S and R.t1.S.
  FieldLoc a = wsd.Locate(FieldKey("R", 0, "S")).value();
  FieldLoc b = wsd.Locate(FieldKey("R", 1, "S")).value();
  ASSERT_TRUE(wsd.ComposeInPlace(a.comp, b.comp).ok());
  EXPECT_TRUE(wsd.Validate().ok());
  EXPECT_EQ(wsd.NumLiveComponents(), 5u);
  auto after = wsd.EnumerateWorlds(100).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(WsdTest, CopyFieldIntoTracksComponent) {
  Wsd wsd = IntroWsd();
  ASSERT_TRUE(
      wsd.AddRelation("P", rel::Schema::FromNames({"S", "N", "M"}), 2).ok());
  ASSERT_TRUE(
      wsd.CopyFieldInto(FieldKey("R", 0, "S"), FieldKey("P", 0, "S")).ok());
  FieldLoc src = wsd.Locate(FieldKey("R", 0, "S")).value();
  FieldLoc dst = wsd.Locate(FieldKey("P", 0, "S")).value();
  EXPECT_EQ(src.comp, dst.comp);
  EXPECT_NE(src.col, dst.col);
  // Copy onto an existing field fails.
  EXPECT_EQ(wsd.CopyFieldInto(FieldKey("R", 0, "S"), FieldKey("P", 0, "S"))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST(WsdTest, DropFieldRemovesEmptyComponent) {
  Wsd wsd = IntroWsd();
  size_t before = wsd.NumLiveComponents();
  ASSERT_TRUE(wsd.DropField(FieldKey("R", 0, "N")).ok());
  EXPECT_EQ(wsd.NumLiveComponents(), before - 1);
  EXPECT_FALSE(wsd.HasField(FieldKey("R", 0, "N")));
}

TEST(WsdTest, DropRelationRemovesAllFields) {
  Wsd wsd = IntroWsd();
  ASSERT_TRUE(
      wsd.AddRelation("P", rel::Schema::FromNames({"X"}), 1).ok());
  Component comp({FieldKey("P", 0, "X")});
  comp.AddWorld({I(9)}, 1.0);
  ASSERT_TRUE(wsd.AddComponent(std::move(comp)).ok());
  ASSERT_TRUE(wsd.DropRelation("P").ok());
  EXPECT_FALSE(wsd.HasRelation("P"));
  EXPECT_TRUE(wsd.Validate().ok());
  EXPECT_EQ(wsd.EnumerateWorlds(100)->size(), 32u);
}

TEST(WsdTest, SlotPresentAndFieldsOfTuple) {
  Wsd wsd = IntroWsd();
  const WsdRelation* r = wsd.FindRelation("R").value();
  EXPECT_TRUE(wsd.SlotPresent(*r, 0));
  EXPECT_TRUE(wsd.SlotPresent(*r, 1));
  EXPECT_EQ(wsd.FieldsOfTuple(*r, 0).size(), 3u);
}

TEST(WsdTest, MultiFieldComponentCorrelatesValues) {
  // A two-field component representing a perfectly correlated pair.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 1).ok());
  Component comp({FieldKey("R", 0, "A"), FieldKey("R", 0, "B")});
  comp.AddWorld({I(0), I(0)}, 0.5);
  comp.AddWorld({I(1), I(1)}, 0.5);
  ASSERT_TRUE(wsd.AddComponent(std::move(comp)).ok());
  auto worlds = wsd.EnumerateWorlds(10).value();
  ASSERT_EQ(worlds.size(), 2u);
  for (const auto& w : worlds) {
    const rel::Relation* r = w.db.GetRelation("R").value();
    ASSERT_EQ(r->NumRows(), 1u);
    EXPECT_EQ(r->row(0)[0], r->row(0)[1]);  // always correlated
  }
}

TEST(WsdTest, BottomTupleDroppedFromWorlds) {
  // Component with a ⊥ local world: the tuple exists in only one world.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A"}), 1).ok());
  Component comp({FieldKey("R", 0, "A")});
  comp.AddWorld({I(7)}, 0.6);
  comp.AddWorld({testutil::Bot()}, 0.4);
  ASSERT_TRUE(wsd.AddComponent(std::move(comp)).ok());
  auto worlds = CollapseWorlds(wsd.EnumerateWorlds(10).value());
  ASSERT_EQ(worlds.size(), 2u);
  // One world has the tuple (p=0.6), the other is empty (p=0.4).
  size_t empty = 0, full = 0;
  for (const auto& w : worlds) {
    size_t n = w.db.GetRelation("R").value()->NumRows();
    if (n == 0) {
      ++empty;
      EXPECT_NEAR(w.prob, 0.4, 1e-9);
    } else {
      ++full;
      EXPECT_NEAR(w.prob, 0.6, 1e-9);
    }
  }
  EXPECT_EQ(empty, 1u);
  EXPECT_EQ(full, 1u);
}

TEST(WsdTest, ValidatePartialSlotFails) {
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 1).ok());
  Component comp({FieldKey("R", 0, "A")});
  comp.AddWorld({I(1)}, 1.0);
  ASSERT_TRUE(wsd.AddComponent(std::move(comp)).ok());
  // B is uncovered: partial slot.
  EXPECT_EQ(wsd.Validate().code(), StatusCode::kInternal);
}

TEST(WsdTest, UpdateRelationSchemaChecksCoverage) {
  Wsd wsd = IntroWsd();
  // Shrinking to S,N while M fields exist must fail.
  EXPECT_EQ(
      wsd.UpdateRelationSchema("R", rel::Schema::FromNames({"S", "N"}))
          .code(),
      StatusCode::kInvalidArgument);
  // After dropping the M fields it succeeds.
  ASSERT_TRUE(wsd.DropField(FieldKey("R", 0, "M")).ok());
  ASSERT_TRUE(wsd.DropField(FieldKey("R", 1, "M")).ok());
  EXPECT_TRUE(
      wsd.UpdateRelationSchema("R", rel::Schema::FromNames({"S", "N"})).ok());
  EXPECT_TRUE(wsd.Validate().ok());
}

TEST(WsdTest, ReplaceComponentChecksFieldSet) {
  Wsd wsd = IntroWsd();
  FieldLoc loc = wsd.Locate(FieldKey("R", 0, "S")).value();
  // Replacement with wrong fields fails.
  Component wrong({FieldKey("R", 0, "M")});
  wrong.AddWorld({I(1)}, 1.0);
  EXPECT_FALSE(wsd.ReplaceComponent(loc.comp, {wrong}).ok());
  // Replacement with the same field succeeds.
  Component right({FieldKey("R", 0, "S")});
  right.AddWorld({I(185)}, 0.5);
  right.AddWorld({I(785)}, 0.5);
  EXPECT_TRUE(wsd.ReplaceComponent(loc.comp, {right}).ok());
  EXPECT_TRUE(wsd.Validate().ok());
}

}  // namespace
}  // namespace maywsd::core
