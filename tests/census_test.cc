#include <gtest/gtest.h>

#include "census/dependencies.h"
#include "census/ipums.h"
#include "census/noise.h"
#include "census/queries.h"
#include "core/chase.h"
#include "rel/eval.h"
#include "tests/test_util.h"

namespace maywsd::census {
namespace {

using testutil::I;

TEST(CensusSchemaTest, HasFiftyMultipleChoiceAttributes) {
  CensusSchema schema = CensusSchema::Standard();
  EXPECT_EQ(schema.arity(), 50u);
  for (const CensusAttribute& a : schema.attributes()) {
    EXPECT_GE(a.domain_size, 2) << a.name;
  }
  // The attributes used by Figures 25 and 29 are present.
  for (const char* name :
       {"CITIZEN", "IMMIGR", "FEB55", "MILITARY", "KOREAN", "VIETNAM",
        "WWII", "MARITAL", "RSPOUSE", "LANG1", "ENGLISH", "RPOB", "SCHOOL",
        "YEARSCH", "POWSTATE", "POB", "FERTIL"}) {
    EXPECT_GT(schema.DomainOf(name), 0) << name;
  }
  // Eight POWSTATE codes above 50 (the Q5 "eight states").
  EXPECT_EQ(schema.DomainOf("POWSTATE") - 51, 8);
}

TEST(CensusGeneratorTest, DeterministicAndInDomain) {
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation a = GenerateCensus(schema, 100, 7);
  rel::Relation b = GenerateCensus(schema, 100, 7);
  EXPECT_TRUE(a.EqualsAsSet(b));
  rel::Relation c = GenerateCensus(schema, 100, 8);
  EXPECT_FALSE(a.EqualsAsSet(c));
  for (size_t r = 0; r < a.NumRows(); ++r) {
    for (size_t col = 0; col < a.arity(); ++col) {
      int64_t v = a.row(r)[col].AsInt();
      EXPECT_GE(v, 0);
      EXPECT_LT(v, schema.attributes()[col].domain_size);
    }
  }
}

TEST(CensusGeneratorTest, BaseDataSatisfiesAllDependencies) {
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 2000, 42);
  for (const core::Dependency& dep : CensusDependencies("R")) {
    const core::Egd& egd = std::get<core::Egd>(dep);
    auto pidx = base.schema().IndexOf(egd.premises[0].attr);
    auto cidx = base.schema().IndexOf(egd.conclusion.attr);
    ASSERT_TRUE(pidx && cidx);
    for (size_t r = 0; r < base.NumRows(); ++r) {
      if (base.row(r)[*pidx].Satisfies(egd.premises[0].op,
                                       egd.premises[0].constant)) {
        EXPECT_TRUE(base.row(r)[*cidx].Satisfies(egd.conclusion.op,
                                                 egd.conclusion.constant))
            << egd.ToString() << " violated at row " << r;
      }
    }
  }
}

TEST(NoiseTest, DensityAndOrSetSizes) {
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 2000, 1);
  NoiseReport report;
  auto wsdt = MakeNoisyWsdt(base, schema, 0.001, 5, &report);
  ASSERT_TRUE(wsdt.ok());
  ASSERT_TRUE(wsdt->Validate().ok());
  EXPECT_EQ(report.fields_total, 2000u * 50u);
  // Density 0.1% of 100k fields ≈ 100 placeholders (loose 3σ bounds).
  EXPECT_GT(report.placeholders, 60u);
  EXPECT_LT(report.placeholders, 160u);
  // Average or-set size ≈ 3.5 (paper's measured average).
  EXPECT_GT(report.avg_orset_size, 2.5);
  EXPECT_LT(report.avg_orset_size, 4.5);
  // One single-placeholder component per noisy field.
  core::WsdtStats stats = wsdt->ComputeStats();
  EXPECT_EQ(stats.num_components, report.placeholders);
  EXPECT_EQ(stats.num_components_multi, 0u);
}

TEST(NoiseTest, OrSetsContainOriginalValue) {
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 200, 2);
  auto wsdt = MakeNoisyWsdt(base, schema, 0.01, 3).value();
  const rel::Relation* tmpl = wsdt.Template("R").value();
  for (size_t i : wsdt.LiveComponents()) {
    const core::Component& comp = wsdt.component(i);
    ASSERT_EQ(comp.NumFields(), 1u);
    const core::FieldKey& f = comp.field(0);
    rel::Value original = base.row(f.tuple)[*base.schema().IndexOf(
        std::string(SymbolName(f.attr)))];
    bool found = false;
    for (size_t w = 0; w < comp.NumWorlds(); ++w) {
      if (comp.at(w, 0) == original) found = true;
    }
    EXPECT_TRUE(found) << f.ToString();
    EXPECT_TRUE(tmpl->row(f.tuple)[*tmpl->schema().IndexOf(
                                       std::string(SymbolName(f.attr)))]
                    .is_question());
  }
}

TEST(NoiseTest, OrSetRelationPathAgrees) {
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 20, 3);
  auto orset = MakeNoisyOrSetRelation(base, schema, 0.02, 9);
  ASSERT_TRUE(orset.ok());
  auto wsd = orset->ToWsd();
  ASSERT_TRUE(wsd.ok());
  EXPECT_TRUE(wsd->Validate().ok());
  // Same seed ⇒ same placeholder count as the WSDT path.
  NoiseReport report;
  auto wsdt = MakeNoisyWsdt(base, schema, 0.02, 9, &report);
  ASSERT_TRUE(wsdt.ok());
  size_t orset_uncertain = 0;
  for (size_t r = 0; r < orset->NumRows(); ++r) {
    for (size_t a = 0; a < schema.arity(); ++a) {
      if (!orset->field(r, a).certain()) ++orset_uncertain;
    }
  }
  EXPECT_EQ(orset_uncertain, report.placeholders);
}

TEST(CensusQueriesTest, AllSixEvaluateOnOneWorld) {
  CensusSchema schema = CensusSchema::Standard();
  rel::Relation base = GenerateCensus(schema, 3000, 11);
  rel::Database db;
  db.PutRelation(base);
  for (int i = 1; i <= 6; ++i) {
    auto out = rel::Evaluate(CensusQuery(i, "R"), db);
    ASSERT_TRUE(out.ok()) << "Q" << i << ": " << out.status();
  }
  // Selectivity sanity (paper: Q4 very unselective, Q1 selective).
  auto q1 = rel::Evaluate(CensusQuery(1, "R"), db).value();
  auto q4 = rel::Evaluate(CensusQuery(4, "R"), db).value();
  EXPECT_LT(q1.NumRows(), q4.NumRows());
  // Q5's schema is the renamed join schema.
  auto q5 = rel::Evaluate(CensusQuery(5, "R"), db).value();
  EXPECT_TRUE(q5.schema().Contains("P1"));
  EXPECT_TRUE(q5.schema().Contains("P2"));
  EXPECT_EQ(q5.schema().arity(), 6u);
}

TEST(CensusDependenciesTest, TwelveEgds) {
  auto deps = CensusDependencies("R");
  EXPECT_EQ(deps.size(), 12u);
  for (const core::Dependency& dep : deps) {
    EXPECT_TRUE(std::holds_alternative<core::Egd>(dep));
  }
}

}  // namespace
}  // namespace maywsd::census
