// Concurrency/determinism layer for the sharded Session::Run fan-out.
//
// The headline property: for random plans over random world-sets, Run with
// threads=1 and threads=N produce identical world sets for the result
// relation on every enrolled backend (WSD, WSDT, uniform C/F/W,
// U-relations — testutil::AllBackendKinds), across 100+ seeded iterations. Plans cover both the sharded path (single-scan
// select/project/rename chains, products/joins/differences against a
// certain auxiliary) and the fallback path (unions, repeated scans,
// component-composing WSD operators).
//
// Also here: a deterministic known-shardable case per backend (so the
// fan-out path itself cannot silently stop being exercised), a
// ThreadPool unit test, and a many-sessions concurrency smoke that the
// TSan CI job leans on.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "api/session.h"
#include "core/engine/parallel.h"
#include "core/uniform.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::Value;
using testutil::I;
using testutil::RelSpec;
using testutil::SeededRng;

constexpr uint64_t kWorldCap = 4000000;

/// Enumerates the world set of relation OUT regardless of representation.
Result<std::vector<PossibleWorld>> OutWorlds(const api::Session& session) {
  return testutil::SessionWorlds(session, kWorldCap, {"OUT"});
}

/// A fully certain relation with `rows` random tuples.
rel::Relation RandomCertain(Rng& rng, const std::string& name,
                            const std::vector<std::string>& attrs,
                            size_t rows, int64_t domain) {
  rel::Relation r(rel::Schema::FromNames(attrs), name);
  std::vector<Value> row(attrs.size());
  for (size_t i = 0; i < rows; ++i) {
    for (size_t a = 0; a < attrs.size(); ++a) {
      row[a] = Value::Int(
          static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(domain))));
    }
    r.AppendRow(row);
  }
  r.SortDedup();
  return r;
}

/// Random plan over uncertain R/R2 ({A,B}) and certain S ({C,D}) and
/// S2 ({A,B}); biased toward shapes the fan-out can shard (single scan of
/// R behind σ/π/δ, × and ⋈ against certain relations, − with a certain
/// right side) while keeping fallback shapes (union, uncertain difference)
/// in the mix.
Plan RandomParallelPlan(Rng& rng) {
  auto pred = [&rng](const char* a, const char* b) {
    CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kGe};
    CmpOp op = ops[rng.Uniform(4)];
    if (rng.Bernoulli(0.3)) return Predicate::CmpAttr(a, op, b);
    return Predicate::Cmp(rng.Bernoulli(0.5) ? a : b, op,
                          I(static_cast<int64_t>(rng.Uniform(3))));
  };
  Plan scan_r = Plan::Scan("R");
  switch (rng.Uniform(8)) {
    case 0:  // selection chain over R
      return Plan::Select(pred("A", "B"),
                          Plan::Select(pred("A", "B"), scan_r));
    case 1:  // projection over a selection
      return Plan::Project({rng.Bernoulli(0.5) ? "A" : "B"},
                           Plan::Select(pred("A", "B"), scan_r));
    case 2:  // rename over a selection
      return Plan::Rename({{"A", "X"}}, Plan::Select(pred("A", "B"), scan_r));
    case 3:  // product with a certain relation
      return Plan::Product(Plan::Select(pred("A", "B"), scan_r),
                           Plan::Scan("S"));
    case 4:  // join with a certain relation
      return Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"), scan_r,
                        Plan::Scan("S"));
    case 5:  // difference with a certain right side
      return Plan::Difference(Plan::Select(pred("A", "B"), scan_r),
                              Plan::Scan("S2"));
    case 6:  // union: never sharded
      return Plan::Union(scan_r, Plan::Scan("R2"));
    default:  // difference with an uncertain right side: never sharded
      return Plan::Difference(Plan::Select(pred("A", "B"), scan_r),
                              Plan::Scan("R2"));
  }
}

/// Opens seq/par sessions over identical representations of `wsd` for one
/// backend kind, registering the same certain relations in both.
struct SessionPair {
  api::Session seq;
  api::Session par;
};

Result<SessionPair> MakePair(api::BackendKind kind, const Wsd& wsd,
                             const std::vector<rel::Relation>& certain,
                             int par_threads) {
  MAYWSD_ASSIGN_OR_RETURN(api::Session seq,
                          testutil::OpenSessionOver(kind, wsd));
  MAYWSD_ASSIGN_OR_RETURN(api::Session par,
                          testutil::OpenSessionOver(kind, wsd));
  par.set_options({.threads = par_threads, .cache = true});
  for (const rel::Relation& r : certain) {
    MAYWSD_RETURN_IF_ERROR(seq.Register(r));
    MAYWSD_RETURN_IF_ERROR(par.Register(r));
  }
  return SessionPair{std::move(seq), std::move(par)};
}

class ParallelDeterminismProperty : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminismProperty, ThreadedRunMatchesSequentialRun) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 99991 + 17);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 4, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 3; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<rel::Relation> certain;
    certain.push_back(RandomCertain(rng, "S", {"C", "D"}, 2, 3));
    certain.push_back(RandomCertain(rng, "S2", {"A", "B"}, 2, 3));
    Plan plan = RandomParallelPlan(rng);
    int threads = 2 + static_cast<int>(rng.Uniform(3));  // 2..4

    for (api::BackendKind kind : testutil::AllBackendKinds()) {
      auto pair_or = MakePair(kind, wsd, certain, threads);
      ASSERT_TRUE(pair_or.ok()) << pair_or.status();
      api::Session seq = std::move(pair_or->seq);
      api::Session par = std::move(pair_or->par);

      Status seq_st = seq.Run(plan, "OUT");
      Status par_st = par.Run(plan, "OUT");
      ASSERT_EQ(seq_st.ok(), par_st.ok())
          << plan.ToString() << " on " << api::BackendKindName(kind) << ": "
          << seq_st << " vs " << par_st;
      if (!seq_st.ok()) continue;

      auto seq_worlds = OutWorlds(seq);
      auto par_worlds = OutWorlds(par);
      ASSERT_TRUE(seq_worlds.ok()) << seq_worlds.status();
      ASSERT_TRUE(par_worlds.ok()) << par_worlds.status();
      EXPECT_TRUE(WorldSetsEquivalent(*seq_worlds, *par_worlds))
          << "threads=1 vs threads=" << threads << " disagree on "
          << plan.ToString() << " over " << api::BackendKindName(kind)
          << (par.Stats().sharded_runs > 0 ? " (sharded)" : " (fallback)");

      // The scratch lifecycle must stay leak-free on the parallel path.
      for (const std::string& name : par.RelationNames()) {
        EXPECT_NE(name.rfind("__eng_", 0), 0u)
            << "leaked engine relation " << name;
      }
    }
  }
}

// 35 seeds × 3 rounds = 105 plan/world-set iterations per backend.
INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismProperty,
                         ::testing::Range(0, 35));

/// A world set that is shardable by construction: three template rows,
/// two independent placeholder components, one certain row.
Wsdt KnownShardableWsdt() {
  rel::Relation tmpl(rel::Schema::FromNames({"A", "B"}), "R");
  tmpl.AppendRow({I(1), Value::Question()});
  tmpl.AppendRow({I(2), Value::Question()});
  tmpl.AppendRow({I(3), I(4)});
  Wsdt wsdt;
  EXPECT_TRUE(wsdt.AddTemplateRelation(std::move(tmpl)).ok());
  EXPECT_TRUE(
      wsdt.AddFieldComponent(FieldKey("R", 0, "B"), {I(5), I(6)}, {0.5, 0.5})
          .ok());
  EXPECT_TRUE(
      wsdt.AddFieldComponent(FieldKey("R", 1, "B"), {I(7), I(8)}, {0.25, 0.75})
          .ok());
  return wsdt;
}

TEST(ParallelSessionTest, ShardedPathActuallyRunsOnAllBackends) {
  // The U-relations and WSDT backends decline single-leaf plans (building
  // a shard slice costs about as much as the one pass a unary chain
  // performs), so their known-shardable cases carry a certain join leaf.
  Plan linear = Plan::Select(Predicate::Cmp("A", CmpOp::kGe, I(0)),
                             Plan::Scan("R"));
  Plan join = Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                         Plan::Scan("R"), Plan::Scan("S"));
  rel::Relation s(rel::Schema::FromNames({"C"}), "S");
  s.AppendRow({I(1)});
  s.AppendRow({I(2)});
  s.AppendRow({I(3)});
  Wsdt wsdt = KnownShardableWsdt();

  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    const Plan& plan = (kind == api::BackendKind::kUrel ||
                        kind == api::BackendKind::kWsdt)
                           ? join
                           : linear;
    auto seq_or = api::Session::Open(kind, wsdt);
    auto par_or = api::Session::Open(kind, wsdt);
    ASSERT_TRUE(seq_or.ok() && par_or.ok());
    api::Session seq = std::move(seq_or).value();
    api::Session par = std::move(par_or).value();
    ASSERT_TRUE(seq.Register(s).ok());
    ASSERT_TRUE(par.Register(s).ok());
    par.set_options({.threads = 4, .cache = true});

    ASSERT_TRUE(seq.Run(plan, "OUT").ok());
    ASSERT_TRUE(par.Run(plan, "OUT").ok());
    // The fan-out must actually have happened — this is the guard that
    // keeps the determinism property non-vacuous.
    EXPECT_EQ(par.Stats().sharded_runs, 1u) << api::BackendKindName(kind);
    EXPECT_GE(par.Stats().shards_executed, 2u) << api::BackendKindName(kind);
    EXPECT_EQ(seq.Stats().sharded_runs, 0u);

    auto seq_worlds = OutWorlds(seq);
    auto par_worlds = OutWorlds(par);
    ASSERT_TRUE(seq_worlds.ok() && par_worlds.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*seq_worlds, *par_worlds))
        << api::BackendKindName(kind);
  }
}

TEST(ParallelSessionTest, CostGateDeclinesFanOutForSingleLeafPlans) {
  // Cost gate (urel and wsdt): a unary select/project chain over one leaf
  // is a single bandwidth-bound pass; building shard slices would copy
  // the partitioned relation first, so the threaded run must take the
  // sequential path — and still produce the same world set.
  Plan plan = Plan::Select(Predicate::Cmp("A", CmpOp::kGe, I(0)),
                           Plan::Scan("R"));
  Wsdt wsdt = KnownShardableWsdt();

  for (api::BackendKind kind :
       {api::BackendKind::kUrel, api::BackendKind::kWsdt}) {
    auto seq_or = api::Session::Open(kind, wsdt);
    auto par_or = api::Session::Open(kind, wsdt);
    ASSERT_TRUE(seq_or.ok() && par_or.ok());
    api::Session seq = std::move(seq_or).value();
    api::Session par = std::move(par_or).value();
    par.set_options({.threads = 4, .cache = true});

    ASSERT_TRUE(seq.Run(plan, "OUT").ok());
    ASSERT_TRUE(par.Run(plan, "OUT").ok());
    EXPECT_EQ(par.Stats().sharded_runs, 0u) << api::BackendKindName(kind);
    EXPECT_EQ(par.Stats().shards_executed, 0u) << api::BackendKindName(kind);

    auto seq_worlds = OutWorlds(seq);
    auto par_worlds = OutWorlds(par);
    ASSERT_TRUE(seq_worlds.ok() && par_worlds.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*seq_worlds, *par_worlds))
        << api::BackendKindName(kind);
  }
}

TEST(ParallelSessionTest, ShardedApplyMatchesSequentialApply) {
  // Unconditional deletes/modifies fan out over the same shard slices Run
  // uses (slice once per run, mutate each slice, stream them back). The
  // world set after a threaded ApplyAll must equal the sequential one on
  // every backend; wsdt must actually take the sharded path, while wsd
  // (absorb folds presence fields — superlinear), uniform and urel
  // (native one-pass updates beat the slice round trip) decline it.
  std::vector<rel::UpdateOp> updates;
  updates.push_back(rel::UpdateOp::ModifyWhere(
      "R", Predicate::Cmp("A", CmpOp::kEq, I(1)), {{"A", I(9)}}));
  updates.push_back(rel::UpdateOp::DeleteWhere(
      "R", Predicate::Cmp("A", CmpOp::kGe, I(3))));
  Wsdt wsdt = KnownShardableWsdt();

  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    auto seq_or = api::Session::Open(kind, wsdt);
    auto par_or = api::Session::Open(kind, wsdt);
    ASSERT_TRUE(seq_or.ok() && par_or.ok());
    api::Session seq = std::move(seq_or).value();
    api::Session par = std::move(par_or).value();
    par.set_options({.threads = 4, .cache = true});

    ASSERT_TRUE(seq.ApplyAll(updates).ok()) << api::BackendKindName(kind);
    ASSERT_TRUE(par.ApplyAll(updates).ok()) << api::BackendKindName(kind);

    bool shards_updates = kind == api::BackendKind::kWsdt;
    EXPECT_EQ(par.Stats().sharded_applies, shards_updates ? 2u : 0u)
        << api::BackendKindName(kind);
    EXPECT_EQ(seq.Stats().sharded_applies, 0u);

    auto seq_worlds = testutil::SessionWorlds(seq, kWorldCap, {"R"});
    auto par_worlds = testutil::SessionWorlds(par, kWorldCap, {"R"});
    ASSERT_TRUE(seq_worlds.ok() && par_worlds.ok())
        << api::BackendKindName(kind);
    EXPECT_TRUE(WorldSetsEquivalent(*seq_worlds, *par_worlds))
        << api::BackendKindName(kind);
  }
}

TEST(ParallelSessionTest, FallbackDeclaredForWsdProduct) {
  // WSD declares Product non-shardable; the run must fall back (and still
  // be correct — covered by the property above). WSDT shards the same
  // plan.
  Plan plan = Plan::Product(Plan::Scan("R"), Plan::Scan("S"));
  Wsdt wsdt = KnownShardableWsdt();
  rel::Relation s(rel::Schema::FromNames({"C"}), "S");
  s.AppendRow({I(9)});

  auto wsd = wsdt.ToWsd();
  ASSERT_TRUE(wsd.ok());
  api::Session wsd_session =
      api::Session::Open(*wsd, {.threads = 4, .cache = true});
  ASSERT_TRUE(wsd_session.Register(s).ok());
  ASSERT_TRUE(wsd_session.Run(plan, "OUT").ok());
  EXPECT_EQ(wsd_session.Stats().sharded_runs, 0u);
  EXPECT_EQ(wsd_session.Stats().fallback_runs, 1u);

  api::Session wsdt_session =
      api::Session::Open(Wsdt(wsdt), {.threads = 4, .cache = true});
  ASSERT_TRUE(wsdt_session.Register(s).ok());
  ASSERT_TRUE(wsdt_session.Run(plan, "OUT").ok());
  EXPECT_EQ(wsdt_session.Stats().sharded_runs, 1u);
}

TEST(ParallelSessionTest, ThreadPoolRunsTasksAndKeepsOrder) {
  engine::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([i, &ran]() -> Status {
      ran.fetch_add(1);
      if (i % 5 == 3) return Status::Internal("task " + std::to_string(i));
      return Status::Ok();
    });
  }
  std::vector<Status> results = pool.RunAll(std::move(tasks));
  EXPECT_EQ(ran.load(), 32);
  ASSERT_EQ(results.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(results[i].ok(), i % 5 != 3) << i;
    if (i % 5 == 3) {
      EXPECT_NE(results[i].ToString().find(std::to_string(i)),
                std::string::npos);
    }
  }
  // Nested RunAll from a worker runs inline instead of deadlocking.
  engine::ThreadPool single(1);
  std::vector<Status> nested = single.RunAll({[&single]() -> Status {
    std::vector<Status> inner = single.RunAll(
        {[]() -> Status { return Status::Ok(); },
         []() -> Status { return Status::Internal("inner"); }});
    return inner[1];
  }});
  ASSERT_EQ(nested.size(), 1u);
  EXPECT_FALSE(nested[0].ok());
}

TEST(ParallelSessionTest, ConcurrentSessionsSmoke) {
  // Many sessions fanning out at once: stresses the shared pool, the
  // interner and the scratch-name counter. TSan watches this one.
  Wsdt base = KnownShardableWsdt();
  Plan plan = Plan::Project(
      {"B"}, Plan::Select(Predicate::Cmp("A", CmpOp::kGe, I(0)),
                          Plan::Scan("R")));
  constexpr int kSessions = 8;
  std::vector<std::thread> threads;
  std::vector<Status> statuses(kSessions, Status::Ok());
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&base, &plan, &statuses, i] {
      api::Session session =
          api::Session::Open(Wsdt(base), {.threads = 2, .cache = true});
      for (int r = 0; r < 3 && statuses[i].ok(); ++r) {
        statuses[i] = session.Run(plan, "OUT" + std::to_string(r));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kSessions; ++i) {
    EXPECT_TRUE(statuses[i].ok()) << i << ": " << statuses[i];
  }
}

}  // namespace
}  // namespace maywsd::core
