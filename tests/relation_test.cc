#include "rel/relation.h"

#include <gtest/gtest.h>

#include "rel/database.h"
#include "tests/test_util.h"

namespace maywsd::rel {
namespace {

using testutil::I;
using testutil::S;

Relation MakeR() {
  Relation r(Schema::FromNames({"A", "B"}), "R");
  r.AppendRow({I(2), I(1)});
  r.AppendRow({I(1), I(1)});
  r.AppendRow({I(2), I(1)});
  return r;
}

TEST(SchemaTest, IndexOfAndContains) {
  Schema s = Schema::FromNames({"A", "B", "C"});
  EXPECT_EQ(s.IndexOf("B"), 1u);
  EXPECT_FALSE(s.IndexOf("Z").has_value());
  EXPECT_TRUE(s.Contains("C"));
}

TEST(SchemaTest, AddDuplicateAttributeFails) {
  Schema s = Schema::FromNames({"A"});
  EXPECT_EQ(s.AddAttribute(Attribute("A")).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ProjectKeepsOrder) {
  Schema s = Schema::FromNames({"A", "B", "C"});
  auto p = s.Project({"C", "A"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->attr(0).name_view(), "C");
  EXPECT_EQ(p->attr(1).name_view(), "A");
  EXPECT_FALSE(s.Project({"Z"}).ok());
}

TEST(SchemaTest, RenameAndCollision) {
  Schema s = Schema::FromNames({"A", "B"});
  auto r = s.Rename("A", "X");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Contains("X"));
  EXPECT_FALSE(r->Contains("A"));
  EXPECT_EQ(s.Rename("A", "B").status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(s.Rename("Z", "Y").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatRequiresDisjointNames) {
  Schema a = Schema::FromNames({"A"});
  Schema b = Schema::FromNames({"B"});
  EXPECT_TRUE(a.Concat(b).ok());
  EXPECT_FALSE(a.Concat(a).ok());
}

TEST(RelationTest, AppendAndAccess) {
  Relation r = MakeR();
  EXPECT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.row(0)[0], I(2));
  EXPECT_EQ(r.row(1)[1], I(1));
}

TEST(RelationTest, SortDedup) {
  Relation r = MakeR();
  r.SortDedup();
  EXPECT_EQ(r.NumRows(), 2u);
  EXPECT_TRUE(r.IsSetNormalized());
  EXPECT_EQ(r.row(0)[0], I(1));
  EXPECT_EQ(r.row(1)[0], I(2));
}

TEST(RelationTest, ContainsRow) {
  Relation r = MakeR();
  std::vector<Value> probe{I(1), I(1)};
  EXPECT_TRUE(r.ContainsRow(probe));
  probe[1] = I(9);
  EXPECT_FALSE(r.ContainsRow(probe));
}

TEST(RelationTest, EqualsAsSetIgnoresOrderAndDuplicates) {
  Relation a = MakeR();
  Relation b(Schema::FromNames({"A", "B"}), "R2");
  b.AppendRow({I(1), I(1)});
  b.AppendRow({I(2), I(1)});
  EXPECT_TRUE(a.EqualsAsSet(b));
  b.AppendRow({I(3), I(3)});
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(RelationTest, AppendRowCheckedTypes) {
  Relation r(Schema({Attribute("A", AttrType::kInt),
                     Attribute("B", AttrType::kString)}),
             "T");
  std::vector<Value> good{I(1), S("x")};
  EXPECT_TRUE(r.AppendRowChecked(good).ok());
  std::vector<Value> bad{S("x"), S("y")};
  EXPECT_EQ(r.AppendRowChecked(bad).code(), StatusCode::kInvalidArgument);
  std::vector<Value> wrong_arity{I(1)};
  EXPECT_EQ(r.AppendRowChecked(wrong_arity).code(),
            StatusCode::kInvalidArgument);
  // ⊥ and ? are allowed in any typed column.
  std::vector<Value> special{Value::Bottom(), Value::Question()};
  EXPECT_TRUE(r.AppendRowChecked(special).ok());
}

TEST(RelationTest, TupleRefHasBottom) {
  Relation r(Schema::FromNames({"A", "B"}), "T");
  r.AppendRow({I(1), Value::Bottom()});
  r.AppendRow({I(1), I(2)});
  EXPECT_TRUE(r.row(0).HasBottom());
  EXPECT_FALSE(r.row(1).HasBottom());
}

TEST(RelationTest, SetCell) {
  Relation r = MakeR();
  r.SetCell(0, 1, I(99));
  EXPECT_EQ(r.row(0)[1], I(99));
}

TEST(DatabaseTest, AddGetDrop) {
  Database db;
  EXPECT_TRUE(db.AddRelation(MakeR()).ok());
  EXPECT_EQ(db.AddRelation(MakeR()).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.GetRelation("R").ok());
  EXPECT_EQ(db.GetRelation("Z").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(db.DropRelation("R").ok());
  EXPECT_FALSE(db.Contains("R"));
}

TEST(DatabaseTest, EqualsAsWorld) {
  Database a, b;
  a.PutRelation(MakeR());
  Relation r2 = MakeR();
  r2.SortDedup();
  b.PutRelation(r2);
  EXPECT_TRUE(a.EqualsAsWorld(b));  // set semantics
  Relation extra(Schema::FromNames({"X"}), "S");
  b.PutRelation(extra);
  EXPECT_FALSE(a.EqualsAsWorld(b));
}

}  // namespace
}  // namespace maywsd::rel
