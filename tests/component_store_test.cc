// The interned component store, from the node layer up:
//   - unit semantics: certain-singleton interning, copy-on-write breaks,
//     O(1) lazy composition with memoized forcing, O(1) WithFields slices,
//     and exact node/cell leak accounting across scopes,
//   - the COW-vs-eager equivalence oracle: the same random plans and
//     random update batches run with lazy composition (production mode)
//     and with SetEagerForTesting(true) (every derived node materialized
//     on creation) over all four backends — expanded world sets must be
//     identical, so laziness is unobservable except in the counters,
//   - ApplyAll guard sharing: structurally equal world conditions pay one
//     materialization per batch (Session::Stats() counters), and the
//     shared guard still matches sequential Apply semantics, including
//     the self-conditioned case where every step must re-materialize.

#include "core/component_store.h"

#include <gtest/gtest.h>

#include <vector>

#include "api/session.h"
#include "core/component.h"
#include "core/worldset.h"
#include "core/wsd.h"
#include "rel/update.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::Assignment;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using rel::UpdateOp;
using testutil::I;
using testutil::RelSpec;
using testutil::SeededRng;

/// Scoped eager mode: every Compose/ExtDup/ExtConst forces on creation.
struct EagerMode {
  explicit EagerMode(bool eager) { store::SetEagerForTesting(eager); }
  ~EagerMode() { store::SetEagerForTesting(false); }
};

// -- Node-layer unit semantics ------------------------------------------------

TEST(ComponentStoreTest, CertainSingletonsShareOneInternedNode) {
  store::StoreStats before = store::GetStoreStats();
  Component a = Component::Certain(FieldKey("R", 0, "A"), I(7));
  Component b = Component::Certain(FieldKey("R", 1, "B"), I(7));
  EXPECT_TRUE(a.SharesPayloadWith(b));
  EXPECT_GE(store::GetStoreStats().dedup_hits, before.dedup_hits + 1);
  Component c = Component::Certain(FieldKey("R", 2, "A"), I(8));
  EXPECT_FALSE(a.SharesPayloadWith(c));
}

TEST(ComponentStoreTest, CopyOnWriteBreaksSharingAndPreservesTheOriginal) {
  Component a({FieldKey("R", 0, "A")});
  a.AddWorld({I(1)}, 0.5);
  a.AddWorld({I(2)}, 0.5);
  Component b = a;
  EXPECT_TRUE(a.SharesPayloadWith(b));

  store::StoreStats before = store::GetStoreStats();
  b.at(0, 0) = I(9);
  EXPECT_FALSE(a.SharesPayloadWith(b));
  EXPECT_EQ(a.at(0, 0), I(1)) << "write through the copy leaked back";
  EXPECT_EQ(b.at(0, 0), I(9));
  EXPECT_GE(store::GetStoreStats().cow_breaks, before.cow_breaks + 1);
}

TEST(ComponentStoreTest, ComposeRecordsO1AndForcesLazily) {
  // 100 worlds each: the 10000-world product is far above kEagerCells, so
  // recording it must not materialize (or even touch) a single cell.
  Component a({FieldKey("R", 0, "A")});
  Component b({FieldKey("R", 0, "B")});
  for (int i = 0; i < 100; ++i) {
    a.AddWorld({I(i)}, 0.01);
    b.AddWorld({I(i)}, 0.01);
  }
  store::StoreStats before = store::GetStoreStats();
  Component c = Component::Compose(a, b);
  store::StoreStats mid = store::GetStoreStats();
  EXPECT_EQ(mid.compose_nodes, before.compose_nodes + 1);
  EXPECT_EQ(mid.forced_evals, before.forced_evals);
  EXPECT_EQ(mid.live_cells, before.live_cells);
  ASSERT_EQ(c.NumWorlds(), 10000u);

  // Forcing happens on first read, materializes the a-major product, and
  // memoizes: the second read forces nothing further.
  const Component& cc = c;
  EXPECT_EQ(cc.at(3 * 100 + 7, 0), I(3));
  EXPECT_EQ(cc.at(3 * 100 + 7, 1), I(7));
  EXPECT_NEAR(cc.prob(3 * 100 + 7), 0.0001, 1e-12);
  store::StoreStats after = store::GetStoreStats();
  EXPECT_EQ(after.forced_evals, mid.forced_evals + 1);
  EXPECT_EQ(cc.at(42, 1), I(42));
  EXPECT_EQ(store::GetStoreStats().forced_evals, after.forced_evals);
}

TEST(ComponentStoreTest, WithFieldsIsAPureHandleShare) {
  Component a({FieldKey("R", 0, "A")});
  for (int i = 0; i < 100; ++i) a.AddWorld({I(i)}, 0.01);
  store::StoreStats before = store::GetStoreStats();
  Component sliced = a.WithFields({FieldKey("OUT", 3, "A")});
  EXPECT_TRUE(a.SharesPayloadWith(sliced));
  EXPECT_EQ(sliced.field(0), FieldKey("OUT", 3, "A"));
  store::StoreStats after = store::GetStoreStats();
  EXPECT_EQ(after.live_cells, before.live_cells);
  EXPECT_EQ(after.forced_evals, before.forced_evals);
}

TEST(ComponentStoreTest, NodesAndCellsAreReleasedExactly) {
  store::StoreStats before = store::GetStoreStats();
  {
    Component a({FieldKey("R", 0, "A")});
    Component b({FieldKey("R", 0, "B")});
    for (int i = 0; i < 100; ++i) {
      a.AddWorld({I(i)}, 0.01);
      b.AddWorld({I(i)}, 0.01);
    }
    Component c = Component::Compose(a, b);
    (void)static_cast<const Component&>(c).at(0, 0);  // force + memoize
    Component copy = c;
    copy.at(0, 1) = I(-1);  // COW break: private leaf
    Component certain = Component::Certain(FieldKey("R", 1, "A"), I(3));
  }
  store::StoreStats after = store::GetStoreStats();
  EXPECT_EQ(after.live_nodes, before.live_nodes) << "leaked payload nodes";
  EXPECT_EQ(after.live_cells, before.live_cells) << "leaked value cells";
}

// -- COW-vs-eager equivalence oracle ------------------------------------------

/// Compact random plan over R/R2{A,B}, S{C,D} (the random_plan_test shapes:
/// stacked selections, projection, union, difference, join). `attrs` tracks
/// the output schema so nested predicates stay well-typed.
Plan RandomOraclePlan(Rng& rng, int depth, std::vector<std::string>* attrs) {
  if (depth <= 0) {
    switch (rng.Uniform(3)) {
      case 0:
        *attrs = {"A", "B"};
        return Plan::Scan("R");
      case 1:
        *attrs = {"A", "B"};
        return Plan::Scan("R2");
      default:
        *attrs = {"C", "D"};
        return Plan::Scan("S");
    }
  }
  switch (rng.Uniform(5)) {
    case 0: {
      Plan child = RandomOraclePlan(rng, depth - 1, attrs);
      CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kGe};
      const std::string& lhs = (*attrs)[rng.Uniform(attrs->size())];
      Predicate pred =
          rng.Bernoulli(0.3)
              ? Predicate::CmpAttr(lhs, ops[rng.Uniform(4)],
                                   (*attrs)[rng.Uniform(attrs->size())])
              : Predicate::Cmp(lhs, ops[rng.Uniform(4)],
                               I(static_cast<int64_t>(rng.Uniform(3))));
      return Plan::Select(std::move(pred), std::move(child));
    }
    case 1:
      *attrs = {"A"};
      return Plan::Project({"A"}, Plan::Scan(rng.Bernoulli(0.5) ? "R"
                                                                : "R2"));
    case 2:
      *attrs = {"A", "B"};
      return Plan::Union(Plan::Scan("R"), Plan::Scan("R2"));
    case 3:
      *attrs = {"A", "B"};
      return Plan::Difference(Plan::Scan("R"), Plan::Scan("R2"));
    default:
      *attrs = {"A", "B", "C", "D"};
      return Plan::Join(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                        Plan::Scan("R"), Plan::Scan("S"));
  }
}

class CowVsEagerPlanOracle : public ::testing::TestWithParam<int> {};

TEST_P(CowVsEagerPlanOracle, LazyAndEagerStoresExpandIdentically) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 60013 + 7);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  for (int round = 0; round < 2; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<std::string> attrs;
    Plan plan = RandomOraclePlan(rng, 2, &attrs);
    for (api::BackendKind kind : testutil::AllBackendKinds()) {
      SCOPED_TRACE(::testing::Message()
                   << "backend " << api::BackendKindName(kind) << " plan "
                   << plan.ToString());
      std::vector<std::vector<PossibleWorld>> expansions;
      for (bool eager : {false, true}) {
        EagerMode mode(eager);
        auto session_or = testutil::OpenSessionOver(kind, wsd);
        ASSERT_TRUE(session_or.ok());
        api::Session session = std::move(session_or).value();
        Status st = session.Run(plan, "OUT");
        ASSERT_TRUE(st.ok()) << (eager ? "eager: " : "lazy: ") << st;
        auto out = testutil::SessionWorlds(session, 4000000, {"OUT"});
        ASSERT_TRUE(out.ok()) << out.status();
        expansions.push_back(std::move(out).value());
      }
      EXPECT_TRUE(WorldSetsEquivalent(expansions[0], expansions[1]))
          << "lazy and eager stores disagree, seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowVsEagerPlanOracle, ::testing::Range(0, 10));

/// Random update batch over the oracle schema; conditions may read any
/// relation, including the target (guard-snapshot semantics).
UpdateOp RandomOracleUpdate(Rng& rng) {
  struct Target {
    const char* name;
    std::vector<std::string> attrs;
  };
  static const Target targets[] = {
      {"R", {"A", "B"}}, {"S", {"C", "D"}}, {"R2", {"A", "B"}}};
  const Target& target = targets[rng.Uniform(3)];
  CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kGe};
  Predicate pred = Predicate::Cmp(target.attrs[rng.Uniform(2)],
                                  ops[rng.Uniform(4)],
                                  I(static_cast<int64_t>(rng.Uniform(3))));
  UpdateOp op = [&] {
    switch (rng.Uniform(3)) {
      case 0: {
        rel::Relation tuples(rel::Schema::FromNames(target.attrs), "tuples");
        tuples.AppendRow({I(static_cast<int64_t>(rng.Uniform(3))),
                          I(static_cast<int64_t>(rng.Uniform(3)))});
        return UpdateOp::InsertTuples(target.name, std::move(tuples));
      }
      case 1:
        return UpdateOp::DeleteWhere(target.name, pred);
      default:
        return UpdateOp::ModifyWhere(
            target.name, pred,
            {Assignment{target.attrs[rng.Uniform(2)],
                        I(static_cast<int64_t>(rng.Uniform(3)))}});
    }
  }();
  if (rng.Bernoulli(0.5)) {
    const Target& cond = targets[rng.Uniform(3)];
    Plan when = Plan::Scan(cond.name);
    if (rng.Bernoulli(0.5)) {
      when = Plan::Select(Predicate::Cmp(cond.attrs[rng.Uniform(2)],
                                         ops[rng.Uniform(4)],
                                         I(static_cast<int64_t>(
                                             rng.Uniform(3)))),
                          std::move(when));
    }
    op = op.When(std::move(when));
  }
  return op;
}

class CowVsEagerUpdateOracle : public ::testing::TestWithParam<int> {};

TEST_P(CowVsEagerUpdateOracle, LazyAndEagerBatchesExpandIdentically) {
  SeededRng rng(static_cast<uint64_t>(GetParam()) * 35969 + 11);
  MAYWSD_SEED_TRACE(rng);
  std::vector<RelSpec> specs = {RelSpec{"R", {"A", "B"}, 2, 3},
                                RelSpec{"S", {"C", "D"}, 2, 3},
                                RelSpec{"R2", {"A", "B"}, 2, 3}};
  const std::vector<std::string> names = {"R", "S", "R2"};
  Wsd wsd = testutil::RandomWsd(rng, specs, 3);
  std::vector<UpdateOp> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(RandomOracleUpdate(rng));

  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(::testing::Message() << "backend "
                                      << api::BackendKindName(kind));
    std::vector<std::vector<PossibleWorld>> expansions;
    for (bool eager : {false, true}) {
      EagerMode mode(eager);
      auto session_or = testutil::OpenSessionOver(kind, wsd);
      ASSERT_TRUE(session_or.ok());
      api::Session session = std::move(session_or).value();
      Status st = session.ApplyAll(batch);
      ASSERT_TRUE(st.ok()) << (eager ? "eager: " : "lazy: ") << st;
      auto out = testutil::SessionWorlds(session, 4000000, names);
      ASSERT_TRUE(out.ok()) << out.status();
      expansions.push_back(std::move(out).value());
    }
    EXPECT_TRUE(WorldSetsEquivalent(expansions[0], expansions[1]))
        << "lazy and eager update batches disagree, seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CowVsEagerUpdateOracle,
                         ::testing::Range(0, 10));

// -- ApplyAll guard sharing ---------------------------------------------------

/// Two worlds: S holds (5) in the first (p=0.25), nothing in the second.
Wsd GuardWsd() {
  std::vector<PossibleWorld> worlds(2);
  rel::Relation r(rel::Schema::FromNames({"A", "B"}), "R");
  r.AppendRow({I(1), I(1)});
  r.AppendRow({I(2), I(3)});
  rel::Relation s1(rel::Schema::FromNames({"C"}), "S");
  s1.AppendRow({I(5)});
  rel::Relation s2(rel::Schema::FromNames({"C"}), "S");
  worlds[0].db.PutRelation(r);
  worlds[0].db.PutRelation(s1);
  worlds[0].prob = 0.25;
  worlds[1].db.PutRelation(r);
  worlds[1].db.PutRelation(s2);
  worlds[1].prob = 0.75;
  return WsdFromWorlds(worlds).value();
}

TEST(GuardSharingTest, BatchMaterializesOneGuardForEqualConditions) {
  const std::vector<std::string> names = {"R", "S"};
  Plan condition = Plan::Select(Predicate::Cmp("C", CmpOp::kEq, I(5)),
                                Plan::Scan("S"));
  std::vector<UpdateOp> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(UpdateOp::ModifyWhere(
                        "R", Predicate::Cmp("A", CmpOp::kEq, I(1)),
                        {Assignment{"B", I(10 + i)}})
                        .When(condition));
  }
  Wsd wsd = GuardWsd();
  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(::testing::Message() << "backend "
                                      << api::BackendKindName(kind));
    auto batched_or = testutil::OpenSessionOver(kind, wsd);
    auto seq_or = testutil::OpenSessionOver(kind, wsd);
    ASSERT_TRUE(batched_or.ok() && seq_or.ok());
    api::Session batched = std::move(batched_or).value();
    api::Session seq = std::move(seq_or).value();

    ASSERT_TRUE(batched.ApplyAll(batch).ok());
    api::SessionStats stats = batched.Stats();
    EXPECT_EQ(stats.applies, batch.size());
    // The condition never reads the mutated relation, so the whole batch
    // shares the first materialization.
    EXPECT_EQ(stats.guard_materializations, 1u);
    EXPECT_EQ(stats.guard_shares, batch.size() - 1);

    for (const UpdateOp& op : batch) ASSERT_TRUE(seq.Apply(op).ok());
    auto b = testutil::SessionWorlds(batched, 100000, names);
    auto s = testutil::SessionWorlds(seq, 100000, names);
    ASSERT_TRUE(b.ok() && s.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*b, *s))
        << "shared guard diverges from sequential Apply";
  }
}

TEST(GuardSharingTest, SelfConditionedBatchRematerializesEveryStep) {
  const std::vector<std::string> names = {"R", "S"};
  // The condition reads the mutated relation: sequential semantics force a
  // fresh guard per step, so the cache must invalidate after every apply.
  std::vector<UpdateOp> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(UpdateOp::ModifyWhere(
                        "R", Predicate::Cmp("A", CmpOp::kEq, I(1)),
                        {Assignment{"B", I(20 + i)}})
                        .When(Plan::Scan("R")));
  }
  Wsd wsd = GuardWsd();
  for (api::BackendKind kind : testutil::AllBackendKinds()) {
    SCOPED_TRACE(::testing::Message() << "backend "
                                      << api::BackendKindName(kind));
    auto batched_or = testutil::OpenSessionOver(kind, wsd);
    auto seq_or = testutil::OpenSessionOver(kind, wsd);
    ASSERT_TRUE(batched_or.ok() && seq_or.ok());
    api::Session batched = std::move(batched_or).value();
    api::Session seq = std::move(seq_or).value();

    ASSERT_TRUE(batched.ApplyAll(batch).ok());
    api::SessionStats stats = batched.Stats();
    EXPECT_EQ(stats.guard_materializations, batch.size());
    EXPECT_EQ(stats.guard_shares, 0u);

    for (const UpdateOp& op : batch) ASSERT_TRUE(seq.Apply(op).ok());
    auto b = testutil::SessionWorlds(batched, 100000, names);
    auto s = testutil::SessionWorlds(seq, 100000, names);
    ASSERT_TRUE(b.ok() && s.ok());
    EXPECT_TRUE(WorldSetsEquivalent(*b, *s))
        << "self-conditioned batch diverges from sequential Apply";
  }
}

}  // namespace
}  // namespace maywsd::core
