// The "exists column" projection (Section 4 Discussion): projection
// without component composition. Tests cover oracle equivalence, the
// no-composition guarantee, interaction with every downstream operator,
// confidence computation over presence fields, and the fold-back
// conversion (EliminatePresenceFields).

#include <gtest/gtest.h>

#include "core/chase.h"
#include "core/confidence.h"
#include "core/normalize.h"
#include "core/wsd_algebra.h"
#include "core/wsdt.h"
#include "core/worldset.h"
#include "tests/test_util.h"

namespace maywsd::core {
namespace {

using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using testutil::I;

/// Largest local-world count across live components.
size_t MaxComponentWorlds(const Wsd& wsd) {
  size_t m = 0;
  for (size_t i : wsd.LiveComponents()) {
    m = std::max(m, wsd.component(i).NumWorlds());
  }
  return m;
}

/// A WSD shaped to make compose-based projection expensive: the kept
/// attribute A of all `n` tuples shares one component, while each dropped
/// attribute B carries its own conditional-presence component. π_A with
/// composition chains every B component into the shared one (2^n rows);
/// the exists-column projection stays linear.
Wsd AdversarialProjectionInput(int n) {
  Wsd wsd;
  EXPECT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}),
                      static_cast<TupleId>(n))
          .ok());
  std::vector<FieldKey> a_fields;
  for (int t = 0; t < n; ++t) a_fields.emplace_back("R", t, "A");
  Component shared(a_fields);
  std::vector<rel::Value> row0, row1;
  for (int t = 0; t < n; ++t) {
    row0.push_back(I(t));
    row1.push_back(I(t + 100));
  }
  shared.AddWorld(row0, 0.5);
  shared.AddWorld(row1, 0.5);
  EXPECT_TRUE(wsd.AddComponent(std::move(shared)).ok());
  for (int t = 0; t < n; ++t) {
    Component c({FieldKey("R", t, "B")});
    c.AddWorld({I(7)}, 0.5);
    c.AddWorld({testutil::Bot()}, 0.5);
    EXPECT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  return wsd;
}

TEST(ExistsProjectionTest, MatchesComposeProjectionOnFigure15) {
  // The Figure 15 scenario through the exists path.
  Wsd wsd;
  ASSERT_TRUE(
      wsd.AddRelation("R", rel::Schema::FromNames({"A", "B"}), 2).ok());
  {
    Component c({FieldKey("R", 0, "A")});
    c.AddWorld({testutil::S("a")}, 1.0);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 1, "A")});
    c.AddWorld({testutil::S("b")}, 1.0);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  {
    Component c({FieldKey("R", 0, "B"), FieldKey("R", 1, "B")});
    c.AddWorld({testutil::S("c"), testutil::Bot()}, 0.5);
    c.AddWorld({testutil::Bot(), testutil::S("d")}, 0.5);
    ASSERT_TRUE(wsd.AddComponent(std::move(c)).ok());
  }
  auto before = wsd.EnumerateWorlds(1000).value();
  auto expected = EvaluatePerWorld(
      before, Plan::Project({"A"}, Plan::Scan("R")), "P");
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(WsdProjectExists(wsd, "R", "P", {"A"}).ok());
  ASSERT_TRUE(wsd.Validate().ok());
  auto actual = wsd.EnumerateWorlds(10000, {"P"}).value();
  EXPECT_TRUE(WorldSetsEquivalent(*expected, actual));
}

TEST(ExistsProjectionTest, NoCompositionOnAdversarialInput) {
  constexpr int kN = 10;
  Wsd compose_wsd = AdversarialProjectionInput(kN);
  Wsd exists_wsd = AdversarialProjectionInput(kN);
  ASSERT_TRUE(WsdProject(compose_wsd, "R", "P", {"A"}).ok());
  ASSERT_TRUE(WsdProjectExists(exists_wsd, "R", "P", {"A"}).ok());
  // Compose-based projection blows up exponentially; the exists column
  // keeps every component at its original size.
  EXPECT_GE(MaxComponentWorlds(compose_wsd), 1u << kN);
  EXPECT_EQ(MaxComponentWorlds(exists_wsd), 2u);
  // Both are correct.
  auto a = compose_wsd.EnumerateWorlds(1u << 20, {"P"}).value();
  auto b = exists_wsd.EnumerateWorlds(1u << 20, {"P"}).value();
  EXPECT_TRUE(WorldSetsEquivalent(a, b));
}

TEST(ExistsProjectionTest, EliminatePresenceFieldsRoundTrip) {
  Wsd wsd = AdversarialProjectionInput(4);
  ASSERT_TRUE(WsdProjectExists(wsd, "R", "P", {"A"}).ok());
  EXPECT_TRUE(wsd.HasPresenceFields());
  auto before = wsd.EnumerateWorlds(100000).value();
  ASSERT_TRUE(wsd.EliminatePresenceFields().ok());
  EXPECT_FALSE(wsd.HasPresenceFields());
  ASSERT_TRUE(wsd.Validate().ok());
  auto after = wsd.EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

TEST(ExistsProjectionTest, DownstreamOperatorsSeePresence) {
  // Select, union, product and difference applied after an
  // exists-projection must still treat conditionally-present tuples
  // correctly (presence fields are copied along).
  Wsd base = AdversarialProjectionInput(3);
  ASSERT_TRUE(WsdProjectExists(base, "R", "P", {"A"}).ok());
  auto p_worlds = base.EnumerateWorlds(100000, {"P"}).value();

  {  // σ on P.
    Wsd wsd = base;
    auto expected = EvaluatePerWorld(
        p_worlds, Plan::Select(Predicate::Cmp("A", CmpOp::kGe, I(100)),
                               Plan::Scan("P")),
        "OUT");
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(
        WsdSelectConst(wsd, "P", "OUT", "A", CmpOp::kGe, I(100)).ok());
    auto actual = wsd.EnumerateWorlds(1000000, {"OUT"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(*expected, actual)) << "select";
  }
  {  // P ∪ P (idempotent per world).
    Wsd wsd = base;
    auto expected =
        EvaluatePerWorld(p_worlds, Plan::Scan("P"), "OUT");
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(WsdUnion(wsd, "P", "P", "OUT").ok());
    auto actual = wsd.EnumerateWorlds(1000000, {"OUT"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(*expected, actual)) << "union";
  }
  {  // P − P is empty in every world.
    Wsd wsd = base;
    ASSERT_TRUE(WsdDifference(wsd, "P", "P", "OUT").ok());
    auto actual =
        CollapseWorlds(wsd.EnumerateWorlds(1000000, {"OUT"}).value());
    ASSERT_EQ(actual.size(), 1u);
    EXPECT_EQ(actual[0].db.GetRelation("OUT").value()->NumRows(), 0u);
  }
  {  // Another projection on top (chains presence fields).
    Wsd wsd = base;
    auto expected =
        EvaluatePerWorld(p_worlds, Plan::Project({"A"}, Plan::Scan("P")),
                         "OUT");
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(WsdProjectExists(wsd, "P", "OUT", {"A"}).ok());
    auto actual = wsd.EnumerateWorlds(1000000, {"OUT"}).value();
    EXPECT_TRUE(WorldSetsEquivalent(*expected, actual)) << "re-project";
  }
}

TEST(ExistsProjectionTest, ConfidenceOverPresenceFields) {
  Wsd wsd = AdversarialProjectionInput(3);
  ASSERT_TRUE(WsdProjectExists(wsd, "R", "P", {"A"}).ok());
  // Tuple (0) exists iff t0's B was present: confidence 0.5 × P(A-world 0).
  std::vector<rel::Value> t{I(0)};
  auto conf = TupleConfidence(wsd, "P", t);
  ASSERT_TRUE(conf.ok());
  EXPECT_NEAR(*conf, 0.25, 1e-9);
  auto possible = PossibleTuples(wsd, "P").value();
  EXPECT_EQ(possible.NumRows(), 6u);  // {0,1,2} and {100,101,102}
}

TEST(ExistsProjectionTest, ChaseOverPresenceFields) {
  // An EGD on P must treat conditionally-present tuples vacuously.
  Wsd wsd = AdversarialProjectionInput(2);
  ASSERT_TRUE(WsdProjectExists(wsd, "R", "P", {"A"}).ok());
  auto before = wsd.EnumerateWorlds(100000).value();
  Egd egd;
  egd.relation = "P";
  egd.premises = {{"A", rel::CmpOp::kGe, I(0)}};
  egd.conclusion = {"A", rel::CmpOp::kLt, I(100)};
  std::vector<Dependency> deps{egd};
  auto expected = FilterWorldsByDependencies(before, deps);
  Status st = ChaseEgd(wsd, egd);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(st.ok()) << st;
  auto after = wsd.EnumerateWorlds(100000).value();
  // Compare only the P relation (the chase on P also constrains R via the
  // shared components, as it must — P is a copy of R's fields).
  auto restrict = [](std::vector<PossibleWorld> worlds) {
    for (auto& w : worlds) {
      rel::Relation p = *w.db.GetRelation("P").value();
      rel::Database db;
      db.PutRelation(std::move(p));
      w.db = std::move(db);
    }
    return worlds;
  };
  EXPECT_TRUE(
      WorldSetsEquivalent(restrict(*expected), restrict(after)));
}

TEST(ExistsProjectionTest, FromWsdFoldsPresenceFields) {
  Wsd wsd = AdversarialProjectionInput(3);
  ASSERT_TRUE(WsdProjectExists(wsd, "R", "P", {"A"}).ok());
  auto before = wsd.EnumerateWorlds(100000).value();
  auto wsdt = Wsdt::FromWsd(wsd);
  ASSERT_TRUE(wsdt.ok());
  ASSERT_TRUE(wsdt->Validate().ok());
  auto after = wsdt->ToWsd().value().EnumerateWorlds(100000).value();
  EXPECT_TRUE(WorldSetsEquivalent(before, after));
}

class ExistsProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExistsProjectionProperty, AgreesWithComposeProjection) {
  Rng rng(GetParam());
  Wsd a = testutil::RandomWsd(rng, {{"R", {"A", "B", "C"}, 3, 2}}, 4);
  Wsd b = a;
  Wsd c = a;
  ASSERT_TRUE(WsdProject(a, "R", "P", {"A"}).ok());
  ASSERT_TRUE(WsdProjectExists(b, "R", "P", {"A"}).ok());
  auto wa = a.EnumerateWorlds(1000000, {"P"}).value();
  auto wb = b.EnumerateWorlds(1000000, {"P"}).value();
  EXPECT_TRUE(WorldSetsEquivalent(wa, wb)) << "seed " << GetParam();
  // After a selection (introduces ⊥s), too.
  ASSERT_TRUE(WsdSelectConst(c, "R", "S1", "B", CmpOp::kEq, I(1)).ok());
  Wsd d = c;
  ASSERT_TRUE(WsdProject(c, "S1", "P", {"A"}).ok());
  ASSERT_TRUE(WsdProjectExists(d, "S1", "P", {"A"}).ok());
  auto wc = c.EnumerateWorlds(1000000, {"P"}).value();
  auto wd = d.EnumerateWorlds(1000000, {"P"}).value();
  EXPECT_TRUE(WorldSetsEquivalent(wc, wd)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExistsProjectionProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace maywsd::core
