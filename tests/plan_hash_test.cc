// PlanHash/PlanEqual unit coverage: structurally identical plans collide
// (including plans rebuilt node by node, i.e. alpha-equivalent spellings
// of the same expression), while semantically different plans — swapped
// selection constants, reordered children of non-commutative operators —
// do not compare equal.

#include <gtest/gtest.h>

#include <unordered_map>

#include "rel/plan_hash.h"

namespace maywsd::rel {
namespace {

Plan SelectChain() {
  return Plan::Select(
      Predicate::And(Predicate::Cmp("A", CmpOp::kEq, Value::Int(1)),
                     Predicate::Cmp("B", CmpOp::kLt, Value::Int(3))),
      Plan::Project({"A", "B"}, Plan::Scan("R")));
}

TEST(PlanHashTest, RebuiltPlansCollideAndCompareEqual) {
  Plan a = SelectChain();
  Plan b = SelectChain();  // separately built nodes, same expression
  EXPECT_FALSE(a.SharesNodeWith(b));
  EXPECT_TRUE(PlanEqual(a, b));
  EXPECT_EQ(PlanHash(a), PlanHash(b));
}

TEST(PlanHashTest, SharedSubtreeFastPath) {
  Plan base = SelectChain();
  Plan c = Plan::Project({"A"}, base);
  Plan d = Plan::Project({"A"}, base);
  EXPECT_TRUE(c.child().SharesNodeWith(d.child()));
  EXPECT_TRUE(PlanEqual(c, d));
  EXPECT_EQ(PlanHash(c), PlanHash(d));
}

TEST(PlanHashTest, SwappedSelectionConstantsDiffer) {
  Plan a = Plan::Select(Predicate::Cmp("A", CmpOp::kEq, Value::Int(1)),
                        Plan::Scan("R"));
  Plan b = Plan::Select(Predicate::Cmp("A", CmpOp::kEq, Value::Int(2)),
                        Plan::Scan("R"));
  EXPECT_FALSE(PlanEqual(a, b));
  EXPECT_NE(PlanHash(a), PlanHash(b));
}

TEST(PlanHashTest, ComparisonOperatorMatters) {
  Plan a = Plan::Select(Predicate::Cmp("A", CmpOp::kLt, Value::Int(1)),
                        Plan::Scan("R"));
  Plan b = Plan::Select(Predicate::Cmp("A", CmpOp::kGe, Value::Int(1)),
                        Plan::Scan("R"));
  EXPECT_FALSE(PlanEqual(a, b));
  EXPECT_NE(PlanHash(a), PlanHash(b));
}

TEST(PlanHashTest, ReorderedDifferenceChildrenDiffer) {
  // Difference is not commutative: R − S and S − R must not collide.
  Plan a = Plan::Difference(Plan::Scan("R"), Plan::Scan("S"));
  Plan b = Plan::Difference(Plan::Scan("S"), Plan::Scan("R"));
  EXPECT_FALSE(PlanEqual(a, b));
  EXPECT_NE(PlanHash(a), PlanHash(b));
}

TEST(PlanHashTest, ScanNamesDistinguish) {
  EXPECT_FALSE(PlanEqual(Plan::Scan("R"), Plan::Scan("S")));
  EXPECT_NE(PlanHash(Plan::Scan("R")), PlanHash(Plan::Scan("S")));
  EXPECT_TRUE(PlanEqual(Plan::Scan("R"), Plan::Scan("R")));
}

TEST(PlanHashTest, ProjectionOrderMatters) {
  // π keeps attribute order (the named perspective); {A,B} ≠ {B,A}.
  Plan a = Plan::Project({"A", "B"}, Plan::Scan("R"));
  Plan b = Plan::Project({"B", "A"}, Plan::Scan("R"));
  EXPECT_FALSE(PlanEqual(a, b));
  EXPECT_NE(PlanHash(a), PlanHash(b));
}

TEST(PlanHashTest, RenamePairsDistinguish) {
  Plan a = Plan::Rename({{"A", "X"}}, Plan::Scan("R"));
  Plan b = Plan::Rename({{"A", "Y"}}, Plan::Scan("R"));
  Plan c = Plan::Rename({{"A", "X"}}, Plan::Scan("R"));
  EXPECT_FALSE(PlanEqual(a, b));
  EXPECT_TRUE(PlanEqual(a, c));
  EXPECT_EQ(PlanHash(a), PlanHash(c));
}

TEST(PlanHashTest, PredicateStructureDistinguishes) {
  Predicate p = Predicate::Cmp("A", CmpOp::kEq, Value::Int(1));
  Predicate q = Predicate::Cmp("B", CmpOp::kEq, Value::Int(1));
  EXPECT_FALSE(PredicateEqual(Predicate::And(p, q), Predicate::And(q, p)));
  EXPECT_FALSE(PredicateEqual(Predicate::And(p, q), Predicate::Or(p, q)));
  EXPECT_TRUE(PredicateEqual(Predicate::Not(p), Predicate::Not(p)));
  EXPECT_NE(PredicateHash(Predicate::And(p, q)),
            PredicateHash(Predicate::Or(p, q)));
}

TEST(PlanHashTest, DifferentKindsSameChildrenDiffer) {
  Plan a = Plan::Union(Plan::Scan("R"), Plan::Scan("S"));
  Plan b = Plan::Product(Plan::Scan("R"), Plan::Scan("S"));
  EXPECT_FALSE(PlanEqual(a, b));
  EXPECT_NE(PlanHash(a), PlanHash(b));
}

TEST(PlanHashTest, UsableAsHashMapKey) {
  std::unordered_map<Plan, int, PlanHasher, PlanEq> memo;
  memo.emplace(SelectChain(), 1);
  memo.emplace(Plan::Scan("R"), 2);
  EXPECT_EQ(memo.size(), 2u);
  auto it = memo.find(SelectChain());
  ASSERT_NE(it, memo.end());
  EXPECT_EQ(it->second, 1);
  // Re-inserting an equal plan does not grow the map.
  memo.emplace(SelectChain(), 3);
  EXPECT_EQ(memo.size(), 2u);
}

}  // namespace
}  // namespace maywsd::rel
