// Compile-and-run check for the deprecated Session factory shims: the
// [[deprecated]] Over* wrappers must keep working (one release of grace
// for out-of-tree callers) and must open the same backends as
// Session::Open. This file is the only in-tree caller of the old names —
// everything else migrated — so it locally silences the deprecation
// warnings the -Werror CI build would otherwise turn fatal.

#include <gtest/gtest.h>

#include "api/session.h"
#include "tests/test_util.h"

#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

namespace maywsd::api {
namespace {

using core::Wsd;
using core::Wsdt;
using testutil::I;

TEST(DeprecatedFactoryTest, ShimsOpenTheSameBackendsAsOpen) {
  Session wsd = Session::OverWsd();
  EXPECT_EQ(wsd.kind(), BackendKind::kWsd);

  Session wsdt = Session::OverWsdt();
  EXPECT_EQ(wsdt.kind(), BackendKind::kWsdt);

  Session uniform = Session::OverUniform();
  EXPECT_EQ(uniform.kind(), BackendKind::kUniform);

  auto uniform_over = Session::OverUniform(Wsdt());
  ASSERT_TRUE(uniform_over.ok());
  EXPECT_EQ(uniform_over->kind(), BackendKind::kUniform);

  rel::Database db;
  Session uniform_db = Session::OverUniformDatabase(std::move(db));
  EXPECT_EQ(uniform_db.kind(), BackendKind::kUniform);
}

TEST(DeprecatedFactoryTest, ShimsStillQueryEndToEnd) {
  Session session = Session::OverWsdt();
  rel::Relation r(rel::Schema::FromNames({"A"}), "R");
  r.AppendRow({I(1)});
  ASSERT_TRUE(session.Register(r).ok());
  ASSERT_TRUE(session.Run(rel::Plan::Scan("R"), "OUT").ok());
  auto possible = session.PossibleTuples("OUT");
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(possible->NumRows(), 1u);
}

}  // namespace
}  // namespace maywsd::api
