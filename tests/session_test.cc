// api::Session: the representation-agnostic facade must behave
// identically over every backend — same catalog semantics, same
// query results, same Section 6 answers — and manage the scratch
// lifecycle so no engine temporaries leak into any representation.

#include "api/session.h"

#include <gtest/gtest.h>

#include "core/uniform.h"
#include "core/wsdt.h"
#include "tests/test_util.h"

namespace maywsd::api {
namespace {

using core::Wsd;
using core::Wsdt;
using rel::CmpOp;
using rel::Plan;
using rel::Predicate;
using testutil::I;

/// One session per enrolled backend over one random world set.
std::vector<Session> SessionsOver(const Wsd& wsd) {
  std::vector<Session> sessions;
  for (BackendKind kind : testutil::AllBackendKinds()) {
    auto session = testutil::OpenSessionOver(kind, wsd);
    EXPECT_TRUE(session.ok()) << BackendKindName(kind);
    sessions.push_back(std::move(session).value());
  }
  return sessions;
}

TEST(SessionTest, KindAndRepresentationAccess) {
  std::vector<Session> sessions = SessionsOver(Wsd());
  ASSERT_EQ(sessions.size(), 4u);
  EXPECT_EQ(sessions[0].kind(), BackendKind::kWsd);
  EXPECT_EQ(sessions[1].kind(), BackendKind::kWsdt);
  EXPECT_EQ(sessions[2].kind(), BackendKind::kUniform);
  EXPECT_EQ(sessions[3].kind(), BackendKind::kUrel);
  for (const Session& s : sessions) {
    EXPECT_EQ(s.BackendName(), BackendKindName(s.kind()));
  }
  EXPECT_NE(sessions[0].wsd(), nullptr);
  EXPECT_EQ(sessions[0].wsdt(), nullptr);
  EXPECT_EQ(sessions[0].uniform(), nullptr);
  EXPECT_EQ(sessions[0].urel(), nullptr);
  EXPECT_NE(sessions[1].wsdt(), nullptr);
  EXPECT_NE(sessions[2].uniform(), nullptr);
  EXPECT_EQ(sessions[2].wsd(), nullptr);
  EXPECT_NE(sessions[3].urel(), nullptr);
  EXPECT_EQ(sessions[3].wsd(), nullptr);
}

TEST(SessionTest, ParseBackendKindRoundTripsAndRejects) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    auto parsed = ParseBackendKind(BackendKindName(kind));
    ASSERT_TRUE(parsed.ok()) << BackendKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  auto bad = ParseBackendKind("no-such-backend");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, OpenByKindStartsEmpty) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    Session session = Session::Open(kind);
    EXPECT_EQ(session.kind(), kind);
    EXPECT_TRUE(session.RelationNames().empty()) << BackendKindName(kind);
  }
}

TEST(SessionTest, OpenAdoptsExistingRepresentations) {
  // The adopt-existing overloads must open the matching backend kind
  // (the old Over* factory shims promised this; Open(repr) carries it).
  EXPECT_EQ(Session::Open(Wsd()).kind(), BackendKind::kWsd);
  EXPECT_EQ(Session::Open(Wsdt()).kind(), BackendKind::kWsdt);
  EXPECT_EQ(Session::Open(rel::Database()).kind(), BackendKind::kUniform);
  EXPECT_EQ(Session::Open(core::Urel()).kind(), BackendKind::kUrel);
  for (BackendKind kind : testutil::AllBackendKinds()) {
    auto converted = Session::Open(kind, Wsdt());
    ASSERT_TRUE(converted.ok()) << BackendKindName(kind);
    EXPECT_EQ(converted->kind(), kind);
  }
}

TEST(SessionTest, SnapshotPinsAViewAcrossApplies) {
  for (BackendKind kind : testutil::AllBackendKinds()) {
    Session session = Session::Open(kind);
    rel::Relation base(rel::Schema::FromNames({"A"}), "R");
    base.AppendRow({I(1)});
    base.AppendRow({I(2)});
    ASSERT_TRUE(session.Register(base).ok()) << BackendKindName(kind);

    Snapshot snapshot = session.Snapshot();
    uint64_t pinned = snapshot.RelationVersion("R");
    EXPECT_EQ(pinned, session.RelationVersion("R"));

    // Mutate the parent after the snapshot: the snapshot keeps answering
    // from its pinned view, the parent sees the update.
    ASSERT_TRUE(session
                    .Apply(rel::UpdateOp::DeleteWhere(
                        "R", Predicate::Cmp("A", CmpOp::kEq, I(1))))
                    .ok())
        << BackendKindName(kind);
    auto snap_rows = snapshot.PossibleTuples("R");
    auto live_rows = session.PossibleTuples("R");
    ASSERT_TRUE(snap_rows.ok() && live_rows.ok()) << BackendKindName(kind);
    EXPECT_EQ(snap_rows->NumRows(), 2u) << BackendKindName(kind);
    EXPECT_EQ(live_rows->NumRows(), 1u) << BackendKindName(kind);
    EXPECT_EQ(snapshot.RelationVersion("R"), pinned);
    EXPECT_NE(session.RelationVersion("R"), pinned);

    // Snapshot-local Run materializes only inside the snapshot.
    ASSERT_TRUE(snapshot.Run(Plan::Scan("R"), "LOCAL").ok());
    EXPECT_TRUE(snapshot.HasRelation("LOCAL"));
    EXPECT_FALSE(session.HasRelation("LOCAL"));

    EXPECT_EQ(snapshot.Stats().reader_blocked_waits, 0u);
    EXPECT_EQ(session.Stats().snapshots, 1u);
  }
}

TEST(SessionTest, RegisterRunAnswerOnEveryBackend) {
  rel::Relation base(rel::Schema::FromNames({"A", "B"}), "R");
  base.AppendRow({I(1), I(10)});
  base.AppendRow({I(2), I(20)});
  base.AppendRow({I(3), I(30)});

  for (BackendKind kind : testutil::AllBackendKinds()) {
    Session session = Session::Open(kind);
    SCOPED_TRACE(std::string(session.BackendName()));
    ASSERT_TRUE(session.Register(base).ok());
    EXPECT_FALSE(session.Register(base).ok());  // name collision
    EXPECT_TRUE(session.HasRelation("R"));
    auto schema = session.RelationSchema("R");
    ASSERT_TRUE(schema.ok());
    EXPECT_EQ(*schema, base.schema());  // uniform hides its TID column
    EXPECT_EQ(session.RelationNames(), std::vector<std::string>{"R"});

    Plan plan = Plan::Project(
        {"A"}, Plan::Select(Predicate::Cmp("B", CmpOp::kGe, I(20)),
                            Plan::Scan("R")));
    ASSERT_TRUE(session.Run(plan, "OUT").ok());

    auto possible = session.PossibleTuples("OUT");
    ASSERT_TRUE(possible.ok());
    rel::Relation expected(rel::Schema::FromNames({"A"}), "expected");
    expected.AppendRow({I(2)});
    expected.AppendRow({I(3)});
    EXPECT_TRUE(possible->EqualsAsSet(expected));

    // Certain data: certain answers coincide with possible ones, and every
    // tuple has confidence 1.
    auto certain = session.CertainTuples("OUT");
    ASSERT_TRUE(certain.ok());
    EXPECT_TRUE(certain->EqualsAsSet(expected));
    for (size_t i = 0; i < expected.NumRows(); ++i) {
      auto conf = session.TupleConfidence("OUT", expected.row(i).span());
      ASSERT_TRUE(conf.ok());
      EXPECT_NEAR(*conf, 1.0, 1e-12);
      EXPECT_TRUE(session.TupleCertain("OUT", expected.row(i).span()).value());
    }

    // No engine scratch relations leaked into the catalog.
    for (const std::string& name : session.RelationNames()) {
      EXPECT_NE(name.rfind("__eng_tmp", 0), 0u) << name;
    }

    // Drop removes the result from the catalog.
    ASSERT_TRUE(session.Drop("OUT").ok());
    EXPECT_FALSE(session.HasRelation("OUT"));
  }
}

TEST(SessionTest, RegisterRejectsPlaceholdersAndBottom) {
  rel::Relation bad(rel::Schema::FromNames({"A"}), "R");
  bad.AppendRow({rel::Value::Question()});
  rel::Relation bot(rel::Schema::FromNames({"A"}), "R");
  bot.AppendRow({rel::Value::Bottom()});
  for (BackendKind kind : testutil::AllBackendKinds()) {
    Session session = Session::Open(kind);
    SCOPED_TRACE(std::string(session.BackendName()));
    EXPECT_FALSE(session.Register(bad).ok());
    EXPECT_FALSE(session.Register(bot).ok());
  }
}

TEST(SessionTest, AnswersAgreeAcrossBackendsOnUncertainData) {
  Rng rng(977);
  std::vector<testutil::RelSpec> specs = {{"R", {"A", "B"}, 2, 3},
                                          {"S", {"C", "D"}, 2, 3}};
  for (int round = 0; round < 5; ++round) {
    Wsd wsd = testutil::RandomWsd(rng, specs, 3);
    std::vector<Session> sessions = SessionsOver(wsd);

    Plan plan = Plan::Project(
        {"A"}, Plan::Select(Predicate::Cmp("B", CmpOp::kLt, I(2)),
                            Plan::Scan("R")));
    for (Session& session : sessions) {
      ASSERT_TRUE(session.Run(plan, "OUT").ok())
          << session.BackendName();
    }

    auto reference = sessions[0].PossibleTuples("OUT");
    ASSERT_TRUE(reference.ok());
    auto reference_certain = sessions[0].CertainTuples("OUT");
    ASSERT_TRUE(reference_certain.ok());
    for (size_t s = 1; s < sessions.size(); ++s) {
      SCOPED_TRACE(std::string(sessions[s].BackendName()));
      auto possible = sessions[s].PossibleTuples("OUT");
      ASSERT_TRUE(possible.ok());
      EXPECT_TRUE(possible->EqualsAsSet(*reference));
      auto certain = sessions[s].CertainTuples("OUT");
      ASSERT_TRUE(certain.ok());
      EXPECT_TRUE(certain->EqualsAsSet(*reference_certain));
      for (size_t i = 0; i < reference->NumRows(); ++i) {
        auto a = sessions[0].TupleConfidence("OUT", reference->row(i).span());
        auto b = sessions[s].TupleConfidence("OUT", reference->row(i).span());
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_NEAR(*a, *b, 1e-9);
      }
    }
  }
}

TEST(SessionTest, RunOptimizedMatchesRun) {
  Rng rng(31337);
  std::vector<testutil::RelSpec> specs = {{"R", {"A", "B"}, 2, 3},
                                          {"S", {"C", "D"}, 2, 3}};
  Wsd wsd = testutil::RandomWsd(rng, specs, 3);
  // σ(×) — the optimizer fuses this into a join on every backend.
  Plan plan = Plan::Select(Predicate::CmpAttr("A", CmpOp::kEq, "C"),
                           Plan::Product(Plan::Scan("R"), Plan::Scan("S")));
  for (Session& session : SessionsOver(wsd)) {
    SCOPED_TRACE(std::string(session.BackendName()));
    ASSERT_TRUE(session.Run(plan, "PLAIN").ok());
    ASSERT_TRUE(session.RunOptimized(plan, "OPT").ok());
    auto plain = session.PossibleTuples("PLAIN");
    auto opt = session.PossibleTuples("OPT");
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(opt.ok());
    EXPECT_TRUE(plain->EqualsAsSet(*opt));
    // Confidences are compared with a tolerance: the two plans associate
    // the 1−Π(1−c) combination differently.
    for (size_t i = 0; i < plain->NumRows(); ++i) {
      auto a = session.TupleConfidence("PLAIN", plain->row(i).span());
      auto b = session.TupleConfidence("OPT", plain->row(i).span());
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_NEAR(*a, *b, 1e-9);
    }
  }
}

TEST(SessionTest, UniformSessionKeepsStoreImportable) {
  Rng rng(555);
  std::vector<testutil::RelSpec> specs = {{"R", {"A", "B"}, 2, 3},
                                          {"R2", {"A", "B"}, 2, 3}};
  Wsd wsd = testutil::RandomWsd(rng, specs, 2);
  auto session_or =
      Session::Open(BackendKind::kUniform, Wsdt::FromWsd(wsd).value());
  ASSERT_TRUE(session_or.ok());
  Session session = std::move(session_or).value();
  Plan plan = Plan::Difference(Plan::Scan("R"), Plan::Scan("R2"));
  ASSERT_TRUE(session.Run(plan, "OUT").ok());
  // The store still satisfies the C/F/W referential invariants and
  // re-imports as a valid WSDT.
  ASSERT_TRUE(core::ValidateUniform(*session.uniform()).ok());
  auto back = core::ImportUniform(*session.uniform());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Validate().ok());
}

}  // namespace
}  // namespace maywsd::api
