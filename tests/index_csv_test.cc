#include <gtest/gtest.h>

#include <sstream>

#include "rel/csv.h"
#include "rel/index.h"
#include "tests/test_util.h"

namespace maywsd::rel {
namespace {

using testutil::I;
using testutil::S;

Relation MakeR() {
  Relation r(Schema({Attribute("A", AttrType::kInt),
                     Attribute("B", AttrType::kInt)}),
             "R");
  r.AppendRow({I(1), I(10)});
  r.AppendRow({I(2), I(20)});
  r.AppendRow({I(2), I(21)});
  return r;
}

TEST(HashIndexTest, SingleColumnLookup) {
  Relation r = MakeR();
  auto idx = HashIndex::Build(r, {"A"});
  ASSERT_TRUE(idx.ok());
  std::vector<Value> key{I(2)};
  auto rows = idx->Lookup(key);
  EXPECT_EQ(rows.size(), 2u);
  key[0] = I(9);
  EXPECT_TRUE(idx->Lookup(key).empty());
  EXPECT_FALSE(idx->Contains(key));
}

TEST(HashIndexTest, MultiColumnLookup) {
  Relation r = MakeR();
  auto idx = HashIndex::Build(r, {"A", "B"});
  ASSERT_TRUE(idx.ok());
  std::vector<Value> key{I(2), I(21)};
  EXPECT_EQ(idx->Lookup(key).size(), 1u);
}

TEST(HashIndexTest, UnknownColumnFails) {
  Relation r = MakeR();
  EXPECT_EQ(HashIndex::Build(r, {"Z"}).status().code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, RoundTripWithTypesAndSpecials) {
  Relation r(Schema({Attribute("A", AttrType::kInt),
                     Attribute("B", AttrType::kString),
                     Attribute("C", AttrType::kDouble)}),
             "T");
  r.AppendRow({I(1), S("hello"), Value::Double(2.5)});
  r.AppendRow({Value::Bottom(), S("with,comma"), Value::Double(-1)});
  r.AppendRow({I(3), Value::Question(), Value::Double(0)});
  r.AppendRow({I(4), S("quote\"inside"), Value::Double(9)});

  std::ostringstream os;
  ASSERT_TRUE(WriteCsv(r, os).ok());
  std::istringstream is(os.str());
  auto back = ReadCsv(is, "T");
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->NumRows(), r.NumRows());
  for (size_t i = 0; i < r.NumRows(); ++i) {
    EXPECT_EQ(back->row(i), r.row(i)) << "row " << i;
  }
}

TEST(CsvTest, RejectsArityMismatch) {
  std::istringstream is("A:int,B:int\n1,2\n3\n");
  EXPECT_FALSE(ReadCsv(is, "T").ok());
}

TEST(CsvTest, ParsesAnyTypedCells) {
  std::istringstream is("A:any\n42\n2.5\nfoo\n");
  auto r = ReadCsv(is, "T");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->row(0)[0].is_int());
  EXPECT_TRUE(r->row(1)[0].is_double());
  EXPECT_TRUE(r->row(2)[0].is_string());
}

}  // namespace
}  // namespace maywsd::rel
