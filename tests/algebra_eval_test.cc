#include "rel/eval.h"

#include <gtest/gtest.h>

#include "rel/optimizer.h"
#include "tests/test_util.h"

namespace maywsd::rel {
namespace {

using testutil::I;

Database MakeDb() {
  Database db;
  Relation r(Schema::FromNames({"A", "B"}), "R");
  r.AppendRow({I(1), I(10)});
  r.AppendRow({I(2), I(20)});
  r.AppendRow({I(3), I(20)});
  db.PutRelation(std::move(r));
  Relation s(Schema::FromNames({"C", "D"}), "S");
  s.AppendRow({I(10), I(100)});
  s.AppendRow({I(20), I(200)});
  db.PutRelation(std::move(s));
  Relation r2(Schema::FromNames({"A", "B"}), "R2");
  r2.AppendRow({I(2), I(20)});
  r2.AppendRow({I(4), I(40)});
  db.PutRelation(std::move(r2));
  return db;
}

TEST(EvalTest, Scan) {
  Database db = MakeDb();
  auto out = Evaluate(Plan::Scan("R"), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 3u);
  EXPECT_EQ(Evaluate(Plan::Scan("nope"), db).status().code(),
            StatusCode::kNotFound);
}

TEST(EvalTest, SelectConst) {
  Database db = MakeDb();
  auto out = Evaluate(
      Plan::Select(Predicate::Cmp("B", CmpOp::kEq, I(20)), Plan::Scan("R")),
      db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);
}

TEST(EvalTest, SelectAttrAttrAndBoolOps) {
  Database db = MakeDb();
  // A <> 2 AND (B = 10 OR B = 20) — everything except row A=2.
  Predicate p = Predicate::And(
      Predicate::Cmp("A", CmpOp::kNe, I(2)),
      Predicate::Or(Predicate::Cmp("B", CmpOp::kEq, I(10)),
                    Predicate::Cmp("B", CmpOp::kEq, I(20))));
  auto out = Evaluate(Plan::Select(p, Plan::Scan("R")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);
  auto not_out = Evaluate(
      Plan::Select(Predicate::Not(p), Plan::Scan("R")), db);
  ASSERT_TRUE(not_out.ok());
  EXPECT_EQ(not_out->NumRows(), 1u);
}

TEST(EvalTest, SelectUnknownAttributeFails) {
  Database db = MakeDb();
  auto out = Evaluate(
      Plan::Select(Predicate::Cmp("Z", CmpOp::kEq, I(1)), Plan::Scan("R")),
      db);
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST(EvalTest, ProjectDeduplicates) {
  Database db = MakeDb();
  auto out = Evaluate(Plan::Project({"B"}, Plan::Scan("R")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);  // 10, 20
  EXPECT_EQ(out->schema().arity(), 1u);
}

TEST(EvalTest, Product) {
  Database db = MakeDb();
  auto out = Evaluate(Plan::Product(Plan::Scan("R"), Plan::Scan("S")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 6u);
  EXPECT_EQ(out->schema().arity(), 4u);
}

TEST(EvalTest, ProductAttributeCollisionFails) {
  Database db = MakeDb();
  auto out = Evaluate(Plan::Product(Plan::Scan("R"), Plan::Scan("R2")), db);
  EXPECT_FALSE(out.ok());
}

TEST(EvalTest, UnionAndSchemaCheck) {
  Database db = MakeDb();
  auto out = Evaluate(Plan::Union(Plan::Scan("R"), Plan::Scan("R2")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 4u);  // {1,2,3,4} rows; (2,20) merged
  EXPECT_FALSE(Evaluate(Plan::Union(Plan::Scan("R"), Plan::Scan("S")), db)
                   .ok());
}

TEST(EvalTest, Difference) {
  Database db = MakeDb();
  auto out =
      Evaluate(Plan::Difference(Plan::Scan("R"), Plan::Scan("R2")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);  // rows A=1, A=3
}

TEST(EvalTest, Rename) {
  Database db = MakeDb();
  auto out = Evaluate(Plan::Rename({{"A", "X"}}, Plan::Scan("R")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->schema().Contains("X"));
  EXPECT_FALSE(out->schema().Contains("A"));
}

TEST(EvalTest, HashJoinMatchesProductSelect) {
  Database db = MakeDb();
  Predicate join_pred = Predicate::CmpAttr("B", CmpOp::kEq, "C");
  auto join = Evaluate(
      Plan::Join(join_pred, Plan::Scan("R"), Plan::Scan("S")), db);
  auto prod_sel = Evaluate(
      Plan::Select(join_pred, Plan::Product(Plan::Scan("R"), Plan::Scan("S"))),
      db);
  ASSERT_TRUE(join.ok());
  ASSERT_TRUE(prod_sel.ok());
  EXPECT_TRUE(join->EqualsAsSet(*prod_sel));
  EXPECT_EQ(join->NumRows(), 3u);
}

TEST(EvalTest, JoinWithResidualPredicate) {
  Database db = MakeDb();
  Predicate pred = Predicate::And(Predicate::CmpAttr("B", CmpOp::kEq, "C"),
                                  Predicate::Cmp("A", CmpOp::kGt, I(1)));
  auto out =
      Evaluate(Plan::Join(pred, Plan::Scan("R"), Plan::Scan("S")), db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->NumRows(), 2u);
}

TEST(EvalTest, JoinWithoutEqualityFallsBackToNestedLoop) {
  Database db = MakeDb();
  Predicate pred = Predicate::CmpAttr("B", CmpOp::kLt, "C");
  auto out =
      Evaluate(Plan::Join(pred, Plan::Scan("R"), Plan::Scan("S")), db);
  ASSERT_TRUE(out.ok());
  // B=10 < C=20 (1 row); B=10 < C=10 no; B=20 < 20 no.
  EXPECT_EQ(out->NumRows(), 1u);
}

TEST(EvalTest, OutputSchema) {
  Database db = MakeDb();
  auto s = OutputSchema(
      Plan::Project({"B"}, Plan::Select(Predicate::True(), Plan::Scan("R"))),
      db);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->arity(), 1u);
  EXPECT_EQ(s->attr(0).name_view(), "B");
}

TEST(OptimizerTest, MergesSelectsAndFormsJoin) {
  Database db = MakeDb();
  Plan plan = Plan::Select(
      Predicate::CmpAttr("B", CmpOp::kEq, "C"),
      Plan::Select(Predicate::Cmp("A", CmpOp::kGt, I(0)),
                   Plan::Product(Plan::Scan("R"), Plan::Scan("S"))));
  auto opt = Optimize(plan, db);
  ASSERT_TRUE(opt.ok());
  // Expect a join at the top after fusion.
  EXPECT_EQ(opt->kind(), Plan::Kind::kJoin);
  auto a = Evaluate(plan, db);
  auto b = Evaluate(*opt, db);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->EqualsAsSet(*b));
}

TEST(OptimizerTest, PushesSelectionsIntoProductBranches) {
  Database db = MakeDb();
  Plan plan = Plan::Select(
      Predicate::And(Predicate::Cmp("A", CmpOp::kGt, I(1)),
                     Predicate::Cmp("D", CmpOp::kEq, I(200))),
      Plan::Product(Plan::Scan("R"), Plan::Scan("S")));
  auto opt = Optimize(plan, db);
  ASSERT_TRUE(opt.ok());
  auto a = Evaluate(plan, db);
  auto b = Evaluate(*opt, db);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->EqualsAsSet(*b));
  // Both branch selections must have been pushed below the join.
  EXPECT_EQ(opt->kind(), Plan::Kind::kJoin);
  EXPECT_EQ(opt->left().kind(), Plan::Kind::kSelect);
  EXPECT_EQ(opt->right().kind(), Plan::Kind::kSelect);
}

TEST(OptimizerTest, DistributesSelectOverUnion) {
  Database db = MakeDb();
  Plan plan = Plan::Select(Predicate::Cmp("B", CmpOp::kEq, I(20)),
                           Plan::Union(Plan::Scan("R"), Plan::Scan("R2")));
  auto opt = Optimize(plan, db);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->kind(), Plan::Kind::kUnion);
  auto a = Evaluate(plan, db);
  auto b = Evaluate(*opt, db);
  EXPECT_TRUE(a->EqualsAsSet(*b));
}

TEST(PredicateTest, ConjunctsFlattening) {
  Predicate p = Predicate::And(
      Predicate::Cmp("A", CmpOp::kEq, I(1)),
      Predicate::And(Predicate::Cmp("B", CmpOp::kEq, I(2)),
                     Predicate::CmpAttr("A", CmpOp::kLt, "B")));
  EXPECT_EQ(p.Conjuncts().size(), 3u);
  EXPECT_EQ(Predicate::True().Conjuncts().size(), 0u);
}

TEST(PredicateTest, ReferencedAttributes) {
  Predicate p = Predicate::Or(Predicate::Cmp("A", CmpOp::kEq, I(1)),
                              Predicate::CmpAttr("B", CmpOp::kLt, "C"));
  auto attrs = p.ReferencedAttributes();
  EXPECT_EQ(attrs.size(), 3u);
}

TEST(PredicateTest, AndAllEmptyIsTrue) {
  EXPECT_TRUE(Predicate::AndAll({}).is_true());
}

}  // namespace
}  // namespace maywsd::rel
